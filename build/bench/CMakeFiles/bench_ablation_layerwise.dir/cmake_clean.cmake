file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_layerwise.dir/bench_ablation_layerwise.cpp.o"
  "CMakeFiles/bench_ablation_layerwise.dir/bench_ablation_layerwise.cpp.o.d"
  "bench_ablation_layerwise"
  "bench_ablation_layerwise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_layerwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
