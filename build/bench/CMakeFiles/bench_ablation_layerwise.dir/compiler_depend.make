# Empty compiler generated dependencies file for bench_ablation_layerwise.
# This may be replaced when dependencies are built.
