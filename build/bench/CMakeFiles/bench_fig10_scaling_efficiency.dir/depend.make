# Empty dependencies file for bench_fig10_scaling_efficiency.
# This may be replaced when dependencies are built.
