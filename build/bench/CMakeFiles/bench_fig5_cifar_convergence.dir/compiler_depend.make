# Empty compiler generated dependencies file for bench_fig5_cifar_convergence.
# This may be replaced when dependencies are built.
