# Empty compiler generated dependencies file for bench_fig13_batch1024_accuracy.
# This may be replaced when dependencies are built.
