# Empty dependencies file for bench_fig12_density_sweep.
# This may be replaced when dependencies are built.
