file(REMOVE_RECURSE
  "CMakeFiles/bench_ps_vs_allreduce.dir/bench_ps_vs_allreduce.cpp.o"
  "CMakeFiles/bench_ps_vs_allreduce.dir/bench_ps_vs_allreduce.cpp.o.d"
  "bench_ps_vs_allreduce"
  "bench_ps_vs_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ps_vs_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
