
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ps_vs_allreduce.cpp" "bench/CMakeFiles/bench_ps_vs_allreduce.dir/bench_ps_vs_allreduce.cpp.o" "gcc" "bench/CMakeFiles/bench_ps_vs_allreduce.dir/bench_ps_vs_allreduce.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ps/CMakeFiles/gtopk_ps.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/gtopk_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/gtopk_train.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gtopk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/gtopk_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/gtopk_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/gtopk_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/collectives/CMakeFiles/gtopk_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/gtopk_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/gtopk_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gtopk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
