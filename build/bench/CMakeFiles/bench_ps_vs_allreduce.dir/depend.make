# Empty dependencies file for bench_ps_vs_allreduce.
# This may be replaced when dependencies are built.
