file(REMOVE_RECURSE
  "libgtopk_util.a"
)
