file(REMOVE_RECURSE
  "CMakeFiles/gtopk_util.dir/log.cpp.o"
  "CMakeFiles/gtopk_util.dir/log.cpp.o.d"
  "CMakeFiles/gtopk_util.dir/rng.cpp.o"
  "CMakeFiles/gtopk_util.dir/rng.cpp.o.d"
  "CMakeFiles/gtopk_util.dir/stats.cpp.o"
  "CMakeFiles/gtopk_util.dir/stats.cpp.o.d"
  "CMakeFiles/gtopk_util.dir/table.cpp.o"
  "CMakeFiles/gtopk_util.dir/table.cpp.o.d"
  "libgtopk_util.a"
  "libgtopk_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtopk_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
