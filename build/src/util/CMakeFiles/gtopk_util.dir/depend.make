# Empty dependencies file for gtopk_util.
# This may be replaced when dependencies are built.
