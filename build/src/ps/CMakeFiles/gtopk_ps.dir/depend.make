# Empty dependencies file for gtopk_ps.
# This may be replaced when dependencies are built.
