file(REMOVE_RECURSE
  "CMakeFiles/gtopk_ps.dir/ps_cost_model.cpp.o"
  "CMakeFiles/gtopk_ps.dir/ps_cost_model.cpp.o.d"
  "CMakeFiles/gtopk_ps.dir/ps_trainer.cpp.o"
  "CMakeFiles/gtopk_ps.dir/ps_trainer.cpp.o.d"
  "libgtopk_ps.a"
  "libgtopk_ps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtopk_ps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
