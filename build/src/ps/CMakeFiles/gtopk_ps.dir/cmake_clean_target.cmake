file(REMOVE_RECURSE
  "libgtopk_ps.a"
)
