file(REMOVE_RECURSE
  "CMakeFiles/gtopk_train.dir/metrics_io.cpp.o"
  "CMakeFiles/gtopk_train.dir/metrics_io.cpp.o.d"
  "CMakeFiles/gtopk_train.dir/trainer.cpp.o"
  "CMakeFiles/gtopk_train.dir/trainer.cpp.o.d"
  "libgtopk_train.a"
  "libgtopk_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtopk_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
