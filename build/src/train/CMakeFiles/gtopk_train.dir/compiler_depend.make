# Empty compiler generated dependencies file for gtopk_train.
# This may be replaced when dependencies are built.
