file(REMOVE_RECURSE
  "libgtopk_train.a"
)
