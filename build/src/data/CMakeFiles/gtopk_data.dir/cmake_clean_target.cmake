file(REMOVE_RECURSE
  "libgtopk_data.a"
)
