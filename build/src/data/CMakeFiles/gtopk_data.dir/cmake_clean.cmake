file(REMOVE_RECURSE
  "CMakeFiles/gtopk_data.dir/sampler.cpp.o"
  "CMakeFiles/gtopk_data.dir/sampler.cpp.o.d"
  "CMakeFiles/gtopk_data.dir/sequence_data.cpp.o"
  "CMakeFiles/gtopk_data.dir/sequence_data.cpp.o.d"
  "CMakeFiles/gtopk_data.dir/synthetic_images.cpp.o"
  "CMakeFiles/gtopk_data.dir/synthetic_images.cpp.o.d"
  "libgtopk_data.a"
  "libgtopk_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtopk_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
