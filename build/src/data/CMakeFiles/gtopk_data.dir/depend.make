# Empty dependencies file for gtopk_data.
# This may be replaced when dependencies are built.
