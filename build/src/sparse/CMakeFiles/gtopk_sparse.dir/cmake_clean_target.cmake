file(REMOVE_RECURSE
  "libgtopk_sparse.a"
)
