# Empty dependencies file for gtopk_sparse.
# This may be replaced when dependencies are built.
