
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/selection_policy.cpp" "src/sparse/CMakeFiles/gtopk_sparse.dir/selection_policy.cpp.o" "gcc" "src/sparse/CMakeFiles/gtopk_sparse.dir/selection_policy.cpp.o.d"
  "/root/repo/src/sparse/sparse_gradient.cpp" "src/sparse/CMakeFiles/gtopk_sparse.dir/sparse_gradient.cpp.o" "gcc" "src/sparse/CMakeFiles/gtopk_sparse.dir/sparse_gradient.cpp.o.d"
  "/root/repo/src/sparse/topk_merge.cpp" "src/sparse/CMakeFiles/gtopk_sparse.dir/topk_merge.cpp.o" "gcc" "src/sparse/CMakeFiles/gtopk_sparse.dir/topk_merge.cpp.o.d"
  "/root/repo/src/sparse/topk_select.cpp" "src/sparse/CMakeFiles/gtopk_sparse.dir/topk_select.cpp.o" "gcc" "src/sparse/CMakeFiles/gtopk_sparse.dir/topk_select.cpp.o.d"
  "/root/repo/src/sparse/wire.cpp" "src/sparse/CMakeFiles/gtopk_sparse.dir/wire.cpp.o" "gcc" "src/sparse/CMakeFiles/gtopk_sparse.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gtopk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
