file(REMOVE_RECURSE
  "CMakeFiles/gtopk_sparse.dir/selection_policy.cpp.o"
  "CMakeFiles/gtopk_sparse.dir/selection_policy.cpp.o.d"
  "CMakeFiles/gtopk_sparse.dir/sparse_gradient.cpp.o"
  "CMakeFiles/gtopk_sparse.dir/sparse_gradient.cpp.o.d"
  "CMakeFiles/gtopk_sparse.dir/topk_merge.cpp.o"
  "CMakeFiles/gtopk_sparse.dir/topk_merge.cpp.o.d"
  "CMakeFiles/gtopk_sparse.dir/topk_select.cpp.o"
  "CMakeFiles/gtopk_sparse.dir/topk_select.cpp.o.d"
  "CMakeFiles/gtopk_sparse.dir/wire.cpp.o"
  "CMakeFiles/gtopk_sparse.dir/wire.cpp.o.d"
  "libgtopk_sparse.a"
  "libgtopk_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtopk_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
