# Empty compiler generated dependencies file for gtopk_quant.
# This may be replaced when dependencies are built.
