file(REMOVE_RECURSE
  "libgtopk_quant.a"
)
