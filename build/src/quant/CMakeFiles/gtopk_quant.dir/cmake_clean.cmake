file(REMOVE_RECURSE
  "CMakeFiles/gtopk_quant.dir/quantizer.cpp.o"
  "CMakeFiles/gtopk_quant.dir/quantizer.cpp.o.d"
  "libgtopk_quant.a"
  "libgtopk_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtopk_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
