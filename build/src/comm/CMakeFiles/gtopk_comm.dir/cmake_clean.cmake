file(REMOVE_RECURSE
  "CMakeFiles/gtopk_comm.dir/cluster.cpp.o"
  "CMakeFiles/gtopk_comm.dir/cluster.cpp.o.d"
  "CMakeFiles/gtopk_comm.dir/communicator.cpp.o"
  "CMakeFiles/gtopk_comm.dir/communicator.cpp.o.d"
  "CMakeFiles/gtopk_comm.dir/mailbox.cpp.o"
  "CMakeFiles/gtopk_comm.dir/mailbox.cpp.o.d"
  "CMakeFiles/gtopk_comm.dir/transport.cpp.o"
  "CMakeFiles/gtopk_comm.dir/transport.cpp.o.d"
  "libgtopk_comm.a"
  "libgtopk_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtopk_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
