file(REMOVE_RECURSE
  "libgtopk_comm.a"
)
