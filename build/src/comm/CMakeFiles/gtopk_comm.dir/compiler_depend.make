# Empty compiler generated dependencies file for gtopk_comm.
# This may be replaced when dependencies are built.
