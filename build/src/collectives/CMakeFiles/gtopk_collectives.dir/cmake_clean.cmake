file(REMOVE_RECURSE
  "CMakeFiles/gtopk_collectives.dir/cost_model.cpp.o"
  "CMakeFiles/gtopk_collectives.dir/cost_model.cpp.o.d"
  "CMakeFiles/gtopk_collectives.dir/schedule.cpp.o"
  "CMakeFiles/gtopk_collectives.dir/schedule.cpp.o.d"
  "libgtopk_collectives.a"
  "libgtopk_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtopk_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
