# Empty dependencies file for gtopk_collectives.
# This may be replaced when dependencies are built.
