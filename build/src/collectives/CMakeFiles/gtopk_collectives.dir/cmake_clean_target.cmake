file(REMOVE_RECURSE
  "libgtopk_collectives.a"
)
