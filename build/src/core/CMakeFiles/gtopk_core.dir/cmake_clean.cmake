file(REMOVE_RECURSE
  "CMakeFiles/gtopk_core.dir/aggregators.cpp.o"
  "CMakeFiles/gtopk_core.dir/aggregators.cpp.o.d"
  "libgtopk_core.a"
  "libgtopk_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtopk_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
