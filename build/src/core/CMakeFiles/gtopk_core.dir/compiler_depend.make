# Empty compiler generated dependencies file for gtopk_core.
# This may be replaced when dependencies are built.
