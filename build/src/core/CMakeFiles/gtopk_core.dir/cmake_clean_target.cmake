file(REMOVE_RECURSE
  "libgtopk_core.a"
)
