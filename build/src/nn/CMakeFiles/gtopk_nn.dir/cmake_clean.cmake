file(REMOVE_RECURSE
  "CMakeFiles/gtopk_nn.dir/activations.cpp.o"
  "CMakeFiles/gtopk_nn.dir/activations.cpp.o.d"
  "CMakeFiles/gtopk_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/gtopk_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/gtopk_nn.dir/classifier_model.cpp.o"
  "CMakeFiles/gtopk_nn.dir/classifier_model.cpp.o.d"
  "CMakeFiles/gtopk_nn.dir/conv2d.cpp.o"
  "CMakeFiles/gtopk_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/gtopk_nn.dir/dropout.cpp.o"
  "CMakeFiles/gtopk_nn.dir/dropout.cpp.o.d"
  "CMakeFiles/gtopk_nn.dir/init.cpp.o"
  "CMakeFiles/gtopk_nn.dir/init.cpp.o.d"
  "CMakeFiles/gtopk_nn.dir/layer.cpp.o"
  "CMakeFiles/gtopk_nn.dir/layer.cpp.o.d"
  "CMakeFiles/gtopk_nn.dir/linear.cpp.o"
  "CMakeFiles/gtopk_nn.dir/linear.cpp.o.d"
  "CMakeFiles/gtopk_nn.dir/loss.cpp.o"
  "CMakeFiles/gtopk_nn.dir/loss.cpp.o.d"
  "CMakeFiles/gtopk_nn.dir/lstm.cpp.o"
  "CMakeFiles/gtopk_nn.dir/lstm.cpp.o.d"
  "CMakeFiles/gtopk_nn.dir/model_zoo.cpp.o"
  "CMakeFiles/gtopk_nn.dir/model_zoo.cpp.o.d"
  "CMakeFiles/gtopk_nn.dir/pool2d.cpp.o"
  "CMakeFiles/gtopk_nn.dir/pool2d.cpp.o.d"
  "CMakeFiles/gtopk_nn.dir/residual.cpp.o"
  "CMakeFiles/gtopk_nn.dir/residual.cpp.o.d"
  "CMakeFiles/gtopk_nn.dir/sequential.cpp.o"
  "CMakeFiles/gtopk_nn.dir/sequential.cpp.o.d"
  "CMakeFiles/gtopk_nn.dir/tensor.cpp.o"
  "CMakeFiles/gtopk_nn.dir/tensor.cpp.o.d"
  "libgtopk_nn.a"
  "libgtopk_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtopk_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
