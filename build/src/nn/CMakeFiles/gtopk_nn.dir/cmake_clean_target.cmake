file(REMOVE_RECURSE
  "libgtopk_nn.a"
)
