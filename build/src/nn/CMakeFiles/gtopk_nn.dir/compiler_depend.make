# Empty compiler generated dependencies file for gtopk_nn.
# This may be replaced when dependencies are built.
