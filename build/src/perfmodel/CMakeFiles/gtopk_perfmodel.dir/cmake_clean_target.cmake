file(REMOVE_RECURSE
  "libgtopk_perfmodel.a"
)
