file(REMOVE_RECURSE
  "CMakeFiles/gtopk_perfmodel.dir/iteration_model.cpp.o"
  "CMakeFiles/gtopk_perfmodel.dir/iteration_model.cpp.o.d"
  "CMakeFiles/gtopk_perfmodel.dir/model_profile.cpp.o"
  "CMakeFiles/gtopk_perfmodel.dir/model_profile.cpp.o.d"
  "CMakeFiles/gtopk_perfmodel.dir/overlap_model.cpp.o"
  "CMakeFiles/gtopk_perfmodel.dir/overlap_model.cpp.o.d"
  "CMakeFiles/gtopk_perfmodel.dir/stack_model.cpp.o"
  "CMakeFiles/gtopk_perfmodel.dir/stack_model.cpp.o.d"
  "libgtopk_perfmodel.a"
  "libgtopk_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtopk_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
