
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perfmodel/iteration_model.cpp" "src/perfmodel/CMakeFiles/gtopk_perfmodel.dir/iteration_model.cpp.o" "gcc" "src/perfmodel/CMakeFiles/gtopk_perfmodel.dir/iteration_model.cpp.o.d"
  "/root/repo/src/perfmodel/model_profile.cpp" "src/perfmodel/CMakeFiles/gtopk_perfmodel.dir/model_profile.cpp.o" "gcc" "src/perfmodel/CMakeFiles/gtopk_perfmodel.dir/model_profile.cpp.o.d"
  "/root/repo/src/perfmodel/overlap_model.cpp" "src/perfmodel/CMakeFiles/gtopk_perfmodel.dir/overlap_model.cpp.o" "gcc" "src/perfmodel/CMakeFiles/gtopk_perfmodel.dir/overlap_model.cpp.o.d"
  "/root/repo/src/perfmodel/stack_model.cpp" "src/perfmodel/CMakeFiles/gtopk_perfmodel.dir/stack_model.cpp.o" "gcc" "src/perfmodel/CMakeFiles/gtopk_perfmodel.dir/stack_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/collectives/CMakeFiles/gtopk_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/gtopk_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gtopk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
