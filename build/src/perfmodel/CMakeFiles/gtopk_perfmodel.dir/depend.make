# Empty dependencies file for gtopk_perfmodel.
# This may be replaced when dependencies are built.
