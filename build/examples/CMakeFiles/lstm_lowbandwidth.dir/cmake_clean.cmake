file(REMOVE_RECURSE
  "CMakeFiles/lstm_lowbandwidth.dir/lstm_lowbandwidth.cpp.o"
  "CMakeFiles/lstm_lowbandwidth.dir/lstm_lowbandwidth.cpp.o.d"
  "lstm_lowbandwidth"
  "lstm_lowbandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lstm_lowbandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
