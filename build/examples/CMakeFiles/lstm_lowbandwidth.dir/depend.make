# Empty dependencies file for lstm_lowbandwidth.
# This may be replaced when dependencies are built.
