# Empty compiler generated dependencies file for cifar_distributed.
# This may be replaced when dependencies are built.
