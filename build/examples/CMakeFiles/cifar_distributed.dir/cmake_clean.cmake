file(REMOVE_RECURSE
  "CMakeFiles/cifar_distributed.dir/cifar_distributed.cpp.o"
  "CMakeFiles/cifar_distributed.dir/cifar_distributed.cpp.o.d"
  "cifar_distributed"
  "cifar_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cifar_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
