# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/comm_test[1]_include.cmake")
include("/root/repo/build/tests/collectives_test[1]_include.cmake")
include("/root/repo/build/tests/collectives_timing_test[1]_include.cmake")
include("/root/repo/build/tests/sparse_test[1]_include.cmake")
include("/root/repo/build/tests/topk_select_property_test[1]_include.cmake")
include("/root/repo/build/tests/core_aggregators_test[1]_include.cmake")
include("/root/repo/build/tests/gtopk_property_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/nn_gradcheck_test[1]_include.cmake")
include("/root/repo/build/tests/lstm_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/perfmodel_test[1]_include.cmake")
include("/root/repo/build/tests/trainer_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/ps_test[1]_include.cmake")
include("/root/repo/build/tests/layerwise_test[1]_include.cmake")
include("/root/repo/build/tests/selection_policy_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_io_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/quant_test[1]_include.cmake")
include("/root/repo/build/tests/batchnorm_test[1]_include.cmake")
