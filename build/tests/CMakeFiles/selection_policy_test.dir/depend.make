# Empty dependencies file for selection_policy_test.
# This may be replaced when dependencies are built.
