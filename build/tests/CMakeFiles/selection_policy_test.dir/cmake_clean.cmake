file(REMOVE_RECURSE
  "CMakeFiles/selection_policy_test.dir/selection_policy_test.cpp.o"
  "CMakeFiles/selection_policy_test.dir/selection_policy_test.cpp.o.d"
  "selection_policy_test"
  "selection_policy_test.pdb"
  "selection_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
