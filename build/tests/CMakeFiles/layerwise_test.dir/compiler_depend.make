# Empty compiler generated dependencies file for layerwise_test.
# This may be replaced when dependencies are built.
