file(REMOVE_RECURSE
  "CMakeFiles/layerwise_test.dir/layerwise_test.cpp.o"
  "CMakeFiles/layerwise_test.dir/layerwise_test.cpp.o.d"
  "layerwise_test"
  "layerwise_test.pdb"
  "layerwise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layerwise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
