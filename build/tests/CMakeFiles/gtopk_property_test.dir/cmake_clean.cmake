file(REMOVE_RECURSE
  "CMakeFiles/gtopk_property_test.dir/gtopk_property_test.cpp.o"
  "CMakeFiles/gtopk_property_test.dir/gtopk_property_test.cpp.o.d"
  "gtopk_property_test"
  "gtopk_property_test.pdb"
  "gtopk_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtopk_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
