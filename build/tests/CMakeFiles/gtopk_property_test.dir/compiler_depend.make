# Empty compiler generated dependencies file for gtopk_property_test.
# This may be replaced when dependencies are built.
