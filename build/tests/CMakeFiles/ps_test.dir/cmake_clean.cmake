file(REMOVE_RECURSE
  "CMakeFiles/ps_test.dir/ps_test.cpp.o"
  "CMakeFiles/ps_test.dir/ps_test.cpp.o.d"
  "ps_test"
  "ps_test.pdb"
  "ps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
