file(REMOVE_RECURSE
  "CMakeFiles/batchnorm_test.dir/batchnorm_test.cpp.o"
  "CMakeFiles/batchnorm_test.dir/batchnorm_test.cpp.o.d"
  "batchnorm_test"
  "batchnorm_test.pdb"
  "batchnorm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batchnorm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
