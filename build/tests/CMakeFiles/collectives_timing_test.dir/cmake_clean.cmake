file(REMOVE_RECURSE
  "CMakeFiles/collectives_timing_test.dir/collectives_timing_test.cpp.o"
  "CMakeFiles/collectives_timing_test.dir/collectives_timing_test.cpp.o.d"
  "collectives_timing_test"
  "collectives_timing_test.pdb"
  "collectives_timing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collectives_timing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
