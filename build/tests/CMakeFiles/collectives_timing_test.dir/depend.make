# Empty dependencies file for collectives_timing_test.
# This may be replaced when dependencies are built.
