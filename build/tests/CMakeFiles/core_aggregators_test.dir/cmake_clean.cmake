file(REMOVE_RECURSE
  "CMakeFiles/core_aggregators_test.dir/core_aggregators_test.cpp.o"
  "CMakeFiles/core_aggregators_test.dir/core_aggregators_test.cpp.o.d"
  "core_aggregators_test"
  "core_aggregators_test.pdb"
  "core_aggregators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_aggregators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
