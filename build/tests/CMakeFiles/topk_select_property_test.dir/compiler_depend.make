# Empty compiler generated dependencies file for topk_select_property_test.
# This may be replaced when dependencies are built.
