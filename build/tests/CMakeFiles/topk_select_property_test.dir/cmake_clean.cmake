file(REMOVE_RECURSE
  "CMakeFiles/topk_select_property_test.dir/topk_select_property_test.cpp.o"
  "CMakeFiles/topk_select_property_test.dir/topk_select_property_test.cpp.o.d"
  "topk_select_property_test"
  "topk_select_property_test.pdb"
  "topk_select_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_select_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
