// Fig. 10: scaling efficiency of S-SGD with DenseAllReduce, TopKAllReduce
// and gTopKAllReduce on the four CNNs, P = 4..32, 1GbE.
// Uses the calibrated testbed stack (PyTorch + Horovod/NCCL on PCIe-x1
// hosts) — see EXPERIMENTS.md for how the stack constants were fitted to
// the paper's own measurements.
#include <iostream>

#include "bench_common.hpp"
#include "perfmodel/iteration_model.hpp"
#include "util/table.hpp"

int main() {
    using namespace gtopk;
    using namespace gtopk::perfmodel;
    using util::TextTable;
    bench::quiet_logs();

    const StackModel stack = StackModel::calibrated();
    bench::print_header("Fig. 10 — Scaling efficiency (%) on 1GbE, k = 0.001*m",
                        "calibrated testbed stack; e = (tf+tb)/titer (Eq. 4)");

    for (const auto& model : table4_models()) {
        std::cout << "\n" << model.name << " (m = " << model.params
                  << ", b = " << model.batch << ")\n";
        TextTable table({"P", "Dense S-SGD", "Top-k S-SGD", "gTop-k S-SGD"});
        for (int p : {4, 8, 16, 32}) {
            auto pct = [&](Algo algo) {
                return TextTable::fmt(
                    100.0 * scaling_efficiency(model, algo, p, 1e-3, stack), 1);
            };
            table.add_row({TextTable::fmt_int(p), pct(Algo::Dense), pct(Algo::Topk),
                           pct(Algo::Gtopk)});
        }
        table.print(std::cout);
    }

    std::cout << "\nPaper's qualitative claims to verify against the rows above:\n"
              << "  * dense S-SGD has the worst efficiency everywhere;\n"
              << "  * Top-k S-SGD degrades visibly from 16 to 32 workers;\n"
              << "  * gTop-k S-SGD stays nearly flat as P grows;\n"
              << "  * ResNets reach much higher efficiency than VGG/AlexNet\n"
              << "    (low communication-to-computation ratio).\n";
    return 0;
}
