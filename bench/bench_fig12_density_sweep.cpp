// Fig. 12: convergence sensitivity of gTop-k S-SGD to the density rho
// (paper: rho in {0.001, 0.0005, 0.0001} on VGG-16 / ResNet-20, P = 4).
// We use an MLP with ~85k parameters so the paper's exact densities remain
// meaningful (k = 85, 42, 8).
#include <iostream>

#include "convergence_common.hpp"
#include "data/sampler.hpp"
#include "data/synthetic_images.hpp"
#include "nn/model_zoo.hpp"

int main() {
    using namespace gtopk;
    bench::quiet_logs();
    bench::print_header("Fig. 12 — gTop-k convergence vs density, P = 4",
                        "MLP with ~85k params; rho in {1e-3, 5e-4, 1e-4}");

    data::SyntheticImageDataset::Config dcfg;
    dcfg.image_size = 8;
    dcfg.noise_std = 2.0f;  // hard task: curves separate by density
    data::SyntheticImageDataset dataset(dcfg, 99);
    data::ShardedSampler sampler(8192, 1024, 4, 1);

    nn::MlpConfig mcfg;
    mcfg.input_dim = dataset.feature_dim();  // 192
    mcfg.hidden_dims = {256, 128};           // ~85k params
    const auto probe = nn::make_mlp(mcfg, 0);
    std::cout << "model parameters m = " << probe->num_params() << "\n";

    std::vector<std::pair<std::string, train::TrainConfig>> configs;
    for (double rho : {1e-3, 5e-4, 1e-4}) {
        train::TrainConfig c;
        c.algorithm = train::Algorithm::GtopkSsgd;
        c.epochs = 12;
        c.iters_per_epoch = 30;
        c.lr = 0.05f;
        c.density = rho;
        c.warmup_densities = {0.25};  // short warmup so rho governs the tail
        configs.emplace_back("rho=" + util::TextTable::fmt(rho, 4), c);
    }

    const auto series = bench::run_configs(
        4, configs, [&](std::uint64_t seed) { return nn::make_mlp(mcfg, seed); },
        [&](std::int64_t step, int rank) {
            return dataset.batch_flat(sampler.batch_indices(step, rank, 8));
        },
        [&] { return dataset.batch_flat(sampler.test_indices(128)); });

    bench::print_loss_series(series);
    return 0;
}
