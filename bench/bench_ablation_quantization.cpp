// Extension bench (paper Sec. VI): combining gTop-k sparsification with
// value quantization. Reports convergence per scheme and the end-to-end
// compression ratio vs dense fp32 gradients (Lin et al. report 270-600x
// for sparsification+tricks; sparsity 0.001 plus 2-bit values lands in
// the same regime).
#include <iostream>

#include "convergence_common.hpp"
#include "data/sampler.hpp"
#include "data/synthetic_images.hpp"
#include "nn/model_zoo.hpp"
#include "quant/quantizer.hpp"
#include "util/table.hpp"

int main() {
    using namespace gtopk;
    using quant::Scheme;
    using util::TextTable;
    bench::quiet_logs();

    bench::print_header("Extension — gTop-k + value quantization (Sec. VI)",
                        "P = 4, density 0.01; error feedback absorbs the loss");

    data::SyntheticImageDataset::Config dcfg;
    dcfg.image_size = 8;
    dcfg.noise_std = 0.6f;
    data::SyntheticImageDataset dataset(dcfg, 61);
    data::ShardedSampler sampler(8192, 1024, 4, 23);
    nn::MlpConfig mcfg;
    mcfg.input_dim = dataset.feature_dim();
    mcfg.hidden_dims = {64, 32};

    std::vector<std::pair<std::string, train::TrainConfig>> configs;
    for (Scheme scheme : {Scheme::None, Scheme::Uint8MinMax, Scheme::Ternary,
                          Scheme::OneBit}) {
        train::TrainConfig c;
        c.algorithm = train::Algorithm::GtopkSsgd;
        c.epochs = 8;
        c.iters_per_epoch = 30;
        c.lr = 0.05f;
        c.density = 0.01;
        c.value_quantizer = scheme;
        configs.emplace_back(quant::scheme_name(scheme), c);
    }
    const auto series = bench::run_configs(
        4, configs, [&](std::uint64_t seed) { return nn::make_mlp(mcfg, seed); },
        [&](std::int64_t step, int rank) {
            return dataset.batch_flat(sampler.batch_indices(step, rank, 16));
        },
        [&] { return dataset.batch_flat(sampler.test_indices(256)); });
    bench::print_loss_series(series);

    std::cout << "\nEnd-to-end compression vs dense fp32 gradients "
                 "(m = 25e6, rho = 0.001):\n";
    TextTable table({"value encoding", "bits/entry (idx+val)", "compression"});
    for (Scheme scheme : {Scheme::None, Scheme::Uint8MinMax, Scheme::Uint4MinMax,
                          Scheme::Ternary, Scheme::OneBit}) {
        table.add_row({quant::scheme_name(scheme),
                       TextTable::fmt(32.0 + quant::bits_per_value(scheme), 0),
                       TextTable::fmt(
                           quant::compression_ratio(25'000'000, 25'000, scheme), 0) +
                           "x"});
    }
    table.print(std::cout);
    return 0;
}
