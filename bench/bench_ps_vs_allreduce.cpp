// Extension bench (paper footnote 2): gTop-k under a Parameter-Server
// topology vs the decentralized gTopKAllReduce tree, both end-to-end on the
// virtual 1GbE cluster and analytically. Shows WHY the paper goes
// decentralized: the PS star is O(kP) on the server uplink.
#include <iostream>

#include "bench_common.hpp"
#include "collectives/cost_model.hpp"
#include "data/sampler.hpp"
#include "data/synthetic_images.hpp"
#include "nn/model_zoo.hpp"
#include "ps/ps_cost_model.hpp"
#include "ps/ps_trainer.hpp"
#include "train/trainer.hpp"
#include "util/table.hpp"

int main() {
    using namespace gtopk;
    using util::TextTable;
    bench::quiet_logs();

    bench::print_header(
        "Extension — gTop-k: Parameter-Server star vs decentralized tree",
        "model costs at paper alpha/beta; measured = training on virtual 1GbE");

    const auto net = comm::NetworkModel::one_gbps_ethernet();
    {
        TextTable table({"P", "PS star [ms]", "AllReduce tree [ms]", "tree speedup"});
        for (int p : {4, 8, 16, 32, 64, 128}) {
            const double star = ps::ps_gtopk_time_s(net, p, 25'000) * 1e3;
            const double tree = collectives::gtopk_allreduce_time_s(net, p, 25'000) * 1e3;
            table.add_row({TextTable::fmt_int(p), TextTable::fmt(star, 2),
                           TextTable::fmt(tree, 2),
                           TextTable::fmt(star / tree, 2) + "x"});
        }
        std::cout << "k = 25000 (m = 25e6, rho = 0.001):\n";
        table.print(std::cout);
    }

    // End-to-end: identical training (same model/seeds/batches), measured
    // virtual comm per iteration under both topologies.
    data::SyntheticImageDataset dataset({}, 7);
    nn::MlpConfig mcfg;
    mcfg.input_dim = dataset.feature_dim();
    mcfg.hidden_dims = {128, 64};
    const auto factory = [&](std::uint64_t seed) { return nn::make_mlp(mcfg, seed); };

    std::cout << "\nMeasured on the virtual cluster (per-iteration comm, worker 0):\n";
    TextTable table({"P", "PS gTop-k [ms]", "AllReduce gTop-k [ms]"});
    for (int workers : {4, 8}) {
        data::ShardedSampler sampler(8192, 1024, workers, 3);
        auto batches = [&](std::int64_t step, int rank) {
            return dataset.batch_flat(sampler.batch_indices(step, rank, 8));
        };
        ps::PsTrainConfig ps_config;
        ps_config.epochs = 1;
        ps_config.iters_per_epoch = 8;
        ps_config.density = 0.05;
        const auto ps_run = ps::train_parameter_server(workers, net, ps_config,
                                                       factory, batches, nullptr);
        train::TrainConfig ar_config;
        ar_config.algorithm = train::Algorithm::GtopkSsgd;
        ar_config.epochs = 1;
        ar_config.iters_per_epoch = 8;
        ar_config.density = 0.05;
        const auto ar_run = train::train_distributed(workers, net, ar_config, factory,
                                                     batches, nullptr);
        table.add_row({TextTable::fmt_int(workers),
                       TextTable::fmt(ps_run.mean_comm_virtual_s * 1e3, 2),
                       TextTable::fmt(ar_run.mean_comm_virtual_s * 1e3, 2)});
    }
    table.print(std::cout);
    return 0;
}
