// Table IV: system training throughput (samples/s) on the 32-worker 1GbE
// cluster, with the g/d and g/t speedups, printed next to the paper's
// measured numbers.
#include <iostream>

#include "bench_common.hpp"
#include "perfmodel/iteration_model.hpp"
#include "util/table.hpp"

int main() {
    using namespace gtopk;
    using namespace gtopk::perfmodel;
    using util::TextTable;
    bench::quiet_logs();

    const StackModel stack = StackModel::calibrated();
    bench::print_header("Table IV — Training throughput on a 32-GPU cluster",
                        "ours = calibrated model; paper columns from Table IV");

    TextTable table({"Model", "Dense", "Top-k", "gTop-k", "g/d", "g/t",
                     "paper Dense", "paper Top-k", "paper gTop-k", "paper g/d",
                     "paper g/t"});
    const auto models = table4_models();
    const auto paper = paper_table4();
    for (std::size_t i = 0; i < models.size(); ++i) {
        const auto& m = models[i];
        const double dense = throughput_sps(m, Algo::Dense, 32, 1e-3, stack);
        const double topk = throughput_sps(m, Algo::Topk, 32, 1e-3, stack);
        const double gtopk = throughput_sps(m, Algo::Gtopk, 32, 1e-3, stack);
        table.add_row({m.name, TextTable::fmt(dense, 0), TextTable::fmt(topk, 0),
                       TextTable::fmt(gtopk, 0),
                       TextTable::fmt(gtopk / dense, 1) + "x",
                       TextTable::fmt(gtopk / topk, 1) + "x",
                       TextTable::fmt(paper[i].dense, 0),
                       TextTable::fmt(paper[i].topk, 0),
                       TextTable::fmt(paper[i].gtopk, 0),
                       TextTable::fmt(paper[i].gtopk / paper[i].dense, 1) + "x",
                       TextTable::fmt(paper[i].gtopk / paper[i].topk, 1) + "x"});
    }
    table.print(std::cout);
    return 0;
}
