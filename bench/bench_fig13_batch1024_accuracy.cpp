// Fig. 13: top-1 validation accuracy of gTop-k vs Top-k with a LARGE
// global batch (paper: B = 1024, P = 32). With few total updates, gTop-k
// updates only k weights per iteration while Top-k updates up to k*P, so
// gTop-k lags — the paper's observed generalization gap.
//
// Scaled setting: P = 8, large per-worker batch, few iterations.
#include <iostream>

#include "convergence_common.hpp"
#include "data/sampler.hpp"
#include "data/synthetic_images.hpp"
#include "nn/model_zoo.hpp"

int main() {
    using namespace gtopk;
    bench::quiet_logs();
    bench::print_header(
        "Fig. 13 — gTop-k vs Top-k validation accuracy, LARGE batch",
        "P = 8, b = 32 (global 256), few updates -> gTop-k may lag Top-k");

    const int world = 8;
    data::SyntheticImageDataset::Config dcfg;
    dcfg.image_size = 8;
    dcfg.noise_std = 2.2f;  // hard task so the update-starvation gap persists
    data::SyntheticImageDataset dataset(dcfg, 4242);
    data::ShardedSampler sampler(8192, 1024, world, 11);

    nn::MlpConfig mcfg;
    mcfg.input_dim = dataset.feature_dim();
    mcfg.hidden_dims = {128, 64};

    train::TrainConfig topk;
    topk.algorithm = train::Algorithm::TopkSsgd;
    topk.epochs = 10;
    topk.iters_per_epoch = 8;  // few updates, like the paper's N = 5880/32
    topk.lr = 0.08f;
    topk.density = 0.001;

    train::TrainConfig gtopk = topk;
    gtopk.algorithm = train::Algorithm::GtopkSsgd;

    const auto series = bench::run_configs(
        world, {{"Top-k B=256", topk}, {"gTop-k B=256", gtopk}},
        [&](std::uint64_t seed) { return nn::make_mlp(mcfg, seed); },
        [&](std::int64_t step, int rank) {
            return dataset.batch_flat(sampler.batch_indices(step, rank, 32));
        },
        [&] { return dataset.batch_flat(sampler.test_indices(256)); });

    bench::print_accuracy_series(series);
    std::cout << "\nExpected shape (paper): with a large batch and few updates,\n"
                 "Top-k reaches higher accuracy than gTop-k (k*P vs k weights\n"
                 "updated per iteration).\n";
    return 0;
}
