// Table I: communication complexity of gradient aggregation algorithms.
// Prints the symbolic complexity/time-cost columns and evaluates the time
// models at the paper's measured constants for a sweep of worker counts.
#include <iostream>

#include "bench_common.hpp"
#include "collectives/cost_model.hpp"
#include "comm/network_model.hpp"
#include "util/table.hpp"

int main() {
    using namespace gtopk;
    using util::TextTable;
    bench::quiet_logs();

    bench::print_header(
        "Table I — Communication complexity of gradient aggregation algorithms",
        "alpha = 0.436 ms, beta = 3.6e-5 ms/element (paper Fig. 8); "
        "m = 25e6 (ResNet-50), rho = 0.001, k = rho*m = 25000");

    TextTable symbolic({"Aggregation Algorithm", "Complexity", "Time Cost"});
    symbolic.add_row({"DenseAllReduce", "O(m)", "2(P-1)a + 2(P-1)/P m b"});
    symbolic.add_row({"TopKAllReduce", "O(kP)", "log(P)a + 2(P-1)k b"});
    symbolic.add_row({"Ours (gTopKAllReduce)", "O(k logP)", "2log(P)a + 4k log(P) b"});
    symbolic.print(std::cout);
    std::cout << "\n";

    const comm::NetworkModel net = comm::NetworkModel::one_gbps_ethernet();
    const std::uint64_t m = 25'000'000;
    const std::uint64_t k = 25'000;

    TextTable table({"P", "Dense [ms]", "Top-k [ms]", "gTop-k [ms]",
                     "gTop-k speedup vs Dense", "vs Top-k"});
    for (int p : {4, 8, 16, 32, 64, 128}) {
        const double dense = collectives::dense_allreduce_time_s(net, p, m) * 1e3;
        const double topk = collectives::topk_allreduce_time_s(net, p, k) * 1e3;
        const double gtopk = collectives::gtopk_allreduce_time_s(net, p, k) * 1e3;
        table.add_row({TextTable::fmt_int(p), TextTable::fmt(dense, 2),
                       TextTable::fmt(topk, 2), TextTable::fmt(gtopk, 2),
                       TextTable::fmt(dense / gtopk, 1) + "x",
                       TextTable::fmt(topk / gtopk, 2) + "x"});
    }
    table.print(std::cout);
    return 0;
}
