// Ablation: local selection policy (exact top-k vs static threshold vs
// adaptive threshold) under gTop-k S-SGD — convergence AND the traffic each
// policy actually generates (threshold policies can't bound nnz, which is
// the reason the paper pins k exactly).
#include <iostream>

#include "convergence_common.hpp"
#include "data/sampler.hpp"
#include "data/synthetic_images.hpp"
#include "nn/model_zoo.hpp"
#include "sparse/selection_policy.hpp"
#include "util/table.hpp"

int main() {
    using namespace gtopk;
    using util::TextTable;
    bench::quiet_logs();

    bench::print_header("Ablation — local selection policy under gTop-k S-SGD",
                        "P = 4, target density 0.01; threshold tuned roughly");

    data::SyntheticImageDataset::Config dcfg;
    dcfg.image_size = 8;
    dcfg.noise_std = 0.6f;
    data::SyntheticImageDataset dataset(dcfg, 31);
    data::ShardedSampler sampler(8192, 1024, 4, 17);
    nn::MlpConfig mcfg;
    mcfg.input_dim = dataset.feature_dim();
    mcfg.hidden_dims = {64, 32};

    std::vector<std::pair<std::string, train::TrainConfig>> configs;
    for (auto [name, policy] :
         std::vector<std::pair<std::string, sparse::SelectionPolicy>>{
             {"exact top-k", sparse::SelectionPolicy::ExactTopk},
             {"static thr", sparse::SelectionPolicy::StaticThreshold},
             {"adaptive thr", sparse::SelectionPolicy::AdaptiveThreshold},
             {"sampled top-k", sparse::SelectionPolicy::SampledTopk}}) {
        train::TrainConfig c;
        c.algorithm = train::Algorithm::GtopkSsgd;
        c.epochs = 8;
        c.iters_per_epoch = 30;
        c.lr = 0.05f;
        c.density = 0.01;
        c.selection = policy;
        c.static_threshold = 0.02f;
        configs.emplace_back(name, c);
    }

    const auto series = bench::run_configs(
        4, configs, [&](std::uint64_t seed) { return nn::make_mlp(mcfg, seed); },
        [&](std::int64_t step, int rank) {
            return dataset.batch_flat(sampler.batch_indices(step, rank, 16));
        },
        [&] { return dataset.batch_flat(sampler.test_indices(256)); });
    bench::print_loss_series(series);

    std::cout << "\nTraffic generated (rank 0, whole run):\n";
    TextTable table({"policy", "MB sent", "messages"});
    for (const auto& s : series) {
        table.add_row({s.label,
                       TextTable::fmt(static_cast<double>(s.result.rank0_comm.bytes_sent) / 1e6, 3),
                       TextTable::fmt_int(static_cast<long long>(
                           s.result.rank0_comm.messages_sent))});
    }
    table.print(std::cout);
    std::cout << "\nExact top-k pins the traffic; threshold policies trade\n"
                 "selection cost for unbounded and drifting message sizes.\n";
    return 0;
}
