// Fig. 5: training-loss convergence of VGG-16 and ResNet-20 (Cifar-10)
// with gTop-k S-SGD vs dense S-SGD, P = 4, with the paper's warmup
// schedule (densities [0.25, 0.0725, 0.015, 0.004] then 0.001-scale).
//
// Substitution: MiniVgg / MiniResNet on the synthetic image task;
// densities scaled to the smaller m so k stays >= 1 (DESIGN.md §2).
#include <iostream>

#include "convergence_common.hpp"
#include "data/sampler.hpp"
#include "data/synthetic_images.hpp"
#include "nn/model_zoo.hpp"

namespace {

using namespace gtopk;

void run_model(const std::string& name, const train::ModelFactory& factory,
               const data::SyntheticImageDataset& dataset,
               const data::ShardedSampler& sampler, float lr) {
    std::cout << "\n--- " << name << " ---\n";
    train::TrainConfig dense;
    dense.algorithm = train::Algorithm::DenseSsgd;
    dense.epochs = 12;
    dense.iters_per_epoch = 40;
    dense.lr = lr;

    train::TrainConfig gtopk = dense;
    gtopk.algorithm = train::Algorithm::GtopkSsgd;
    gtopk.density = 0.005;
    gtopk.warmup_densities = {0.25, 0.0725, 0.015};

    const auto series = bench::run_configs(
        4, {{"S-SGD", dense}, {"gTop-k S-SGD", gtopk}}, factory,
        [&](std::int64_t step, int rank) {
            return dataset.batch_images(sampler.batch_indices(step, rank, 8));
        },
        [&] { return dataset.batch_images(sampler.test_indices(128)); });
    bench::print_loss_series(series);
}

}  // namespace

int main() {
    bench::quiet_logs();
    bench::print_header("Fig. 5 — Convergence of VGG-16 and ResNet-20, P = 4",
                        "gTop-k S-SGD must track dense S-SGD closely");

    data::SyntheticImageDataset::Config dcfg;
    dcfg.image_size = 8;
    dcfg.noise_std = 0.6f;
    data::SyntheticImageDataset dataset(dcfg, 555);
    data::ShardedSampler sampler(8192, 1024, 4, 3);

    nn::MiniVggConfig vgg;
    vgg.image_size = 8;
    vgg.conv_channels = 4;
    vgg.fc_dim = 64;
    run_model("VGG-16 (MiniVgg stand-in)",
              [&](std::uint64_t seed) { return nn::make_mini_vgg(vgg, seed); },
              dataset, sampler, 0.015f);

    nn::MiniResNetConfig res;
    res.image_size = 8;
    res.channels = 4;
    res.blocks = 2;
    run_model("ResNet-20 (MiniResNet stand-in)",
              [&](std::uint64_t seed) { return nn::make_mini_resnet(res, seed); },
              dataset, sampler, 0.04f);
    return 0;
}
