// Fig. 1: convergence of a ResNet-style model on 4 workers when only k
// global elements are updated per iteration ("select k from k*P") vs dense
// S-SGD. The paper uses this to justify gTop-k: re-sparsifying the
// aggregated Top-k result barely affects convergence.
//
// Substitution: ResNet-20/Cifar-10 -> MiniResNet on the synthetic image
// task (see DESIGN.md §2); density scaled so k stays meaningful at the
// smaller m.
#include <iostream>

#include "convergence_common.hpp"
#include "data/sampler.hpp"
#include "data/synthetic_images.hpp"
#include "nn/model_zoo.hpp"

int main() {
    using namespace gtopk;
    bench::quiet_logs();
    bench::print_header(
        "Fig. 1 — 'select k from k*P' vs dense S-SGD (ResNet stand-in, P = 4)",
        "MiniResNet on synthetic images; the sparsified run must track dense");

    const int world = 4;
    data::SyntheticImageDataset::Config dcfg;
    dcfg.image_size = 8;
    dcfg.noise_std = 0.6f;
    data::SyntheticImageDataset dataset(dcfg, 2024);
    data::ShardedSampler sampler(8192, 1024, world, 7);

    nn::MiniResNetConfig mcfg;
    mcfg.image_size = 8;
    mcfg.channels = 4;
    mcfg.blocks = 2;

    train::TrainConfig dense;
    dense.algorithm = train::Algorithm::DenseSsgd;
    dense.epochs = 10;
    dense.iters_per_epoch = 25;
    dense.lr = 0.04f;

    train::TrainConfig select = dense;
    select.algorithm = train::Algorithm::SelectKFromKP;
    select.density = 0.01;

    const auto series = bench::run_configs(
        world,
        {{"Dense S-SGD", dense}, {"Select k from k*P", select}},
        [&](std::uint64_t seed) { return nn::make_mini_resnet(mcfg, seed); },
        [&](std::int64_t step, int rank) {
            return dataset.batch_images(sampler.batch_indices(step, rank, 8));
        },
        [&] { return dataset.batch_images(sampler.test_indices(128)); });

    bench::print_loss_series(series);
    return 0;
}
