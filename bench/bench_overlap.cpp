// bench_overlap — closes the loop on the overlapped layer-wise gTop-k
// engine (DESIGN.md §14) at the paper's Fig. 11 operating points.
//
// For VGG-16 (m = 14.7M, rho = 1e-3) on the measured 1 GbE alpha-beta
// network and P in {8, 16, 32}, it runs the REAL runtime — bucketed
// AsyncGtopkAllreduce handles over the virtual-time cluster, issued at the
// bucketer's ready times — twice per point:
//
//   baseline   modeled forward + full backward, then the per-bucket gTop-k
//              collectives serialized (the overlap=false trainer path);
//   overlap    each bucket's handle issued the moment its gradient is ready
//              (backward order), drained front-bucket-first.
//
// and reports, in VIRTUAL seconds:
//   * measured end-to-end iteration time and speedup (baseline / overlap),
//   * the measured hidden fraction 1 - exposed/total comm,
//   * the perfmodel::overlapped_iteration prediction of both, plus the
//     relative deviation |measured - predicted| / predicted.
//
// Both runs aggregate identical gradients; the bench asserts the overlap
// results are BIT-IDENTICAL to the serialized ones before timing counts.
//
// Acceptance gates (exit 1 on failure):
//   * at the best operating point the measured speedup is >= 1.2x where the
//     model predicts hideable communication,
//   * every point's measured hidden fraction is within 15% of prediction.
//
// Usage: bench_overlap [--out BENCH_overlap.json]
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "comm/cluster.hpp"
#include "core/aggregators.hpp"
#include "core/async_gtopk.hpp"
#include "perfmodel/model_profile.hpp"
#include "perfmodel/overlap_model.hpp"
#include "sparse/sparse_gradient.hpp"
#include "train/bucketer.hpp"
#include "util/table.hpp"

namespace {

using namespace gtopk;

// VGG-16 (Cifar-10) weight tensors in forward order, elements. Sums to
// ~14.7M — the paper's Table III "m" for this model.
const std::vector<std::size_t> kVgg16Layers = {
    1'728,     36'864,    73'728,    147'456,   294'912,
    589'824,   589'824,   1'179'648, 2'359'296, 2'359'296,
    2'359'296, 2'359'296, 2'359'296, 262'144,   5'120,
};

constexpr double kRho = 1e-3;
constexpr std::int64_t kBucketBytes = 2 << 20;  // 2 MiB fusion threshold

struct PointResult {
    int workers = 0;
    int buckets = 0;
    double baseline_iter_s = 0.0;   // measured, virtual
    double overlap_iter_s = 0.0;    // measured, virtual
    double measured_hidden = 0.0;
    double predicted_iter_s = 0.0;
    double predicted_hidden = 0.0;
    double measured_speedup() const {
        return overlap_iter_s > 0 ? baseline_iter_s / overlap_iter_s : 0.0;
    }
    double hidden_deviation() const {
        return predicted_hidden > 0
                   ? std::abs(measured_hidden - predicted_hidden) / predicted_hidden
                   : std::abs(measured_hidden);
    }
};

std::size_t k_of(std::size_t elems) {
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(kRho * static_cast<double>(elems))));
}

/// Deterministic synthetic per-bucket sparse gradient for (rank, bucket):
/// k strided strictly-increasing indices (stride >> world keeps them
/// strictly increasing after the +rank stagger) with rank-dependent values.
sparse::SparseGradient make_local(int rank, int bucket, std::size_t elems) {
    const std::size_t k = k_of(elems);
    sparse::SparseGradient g;
    g.dense_size = static_cast<std::int64_t>(elems);
    g.indices.reserve(k);
    g.values.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
        std::size_t idx = (i * elems) / k + static_cast<std::size_t>(rank);
        if (idx >= elems) idx = elems - 1 - (k - 1 - i);
        g.indices.push_back(static_cast<std::int32_t>(idx));
        g.values.push_back(1.0f +
                           0.25f * static_cast<float>((rank * 7 + bucket * 3 + static_cast<int>(i)) % 11) *
                               ((i % 2) ? -1.0f : 1.0f));
    }
    return g;
}

PointResult run_point(int workers, const perfmodel::ModelProfile& profile) {
    const comm::NetworkModel net = comm::NetworkModel::one_gbps_ethernet();
    const double t_f = profile.t_compute_s / 3.0;
    const double t_b = profile.t_compute_s - t_f;

    // Bucketize exactly as the trainer does.
    std::vector<std::size_t> seg_offsets(1, 0);
    for (std::size_t n : kVgg16Layers) seg_offsets.push_back(seg_offsets.back() + n);
    const std::size_t m = seg_offsets.back();
    const std::vector<train::GradBucket> buckets =
        train::fuse_buckets(seg_offsets, kBucketBytes);
    const std::vector<double> ready =
        train::bucket_ready_fractions(buckets, m);
    const std::size_t nb = buckets.size();

    PointResult r;
    r.workers = workers;
    r.buckets = static_cast<int>(nb);

    // Per-rank local contributions, identical across both runs.
    auto locals_for = [&](int rank) {
        std::vector<sparse::SparseGradient> locals;
        locals.reserve(nb);
        for (std::size_t b = 0; b < nb; ++b) {
            locals.push_back(make_local(rank, static_cast<int>(b), buckets[b].size()));
        }
        return locals;
    };

    std::vector<double> base_iter(static_cast<std::size_t>(workers), 0.0);
    std::vector<std::vector<sparse::SparseGradient>> base_globals(
        static_cast<std::size_t>(workers));
    comm::Cluster::run(workers, net, [&](comm::Communicator& comm) {
        const auto locals = locals_for(comm.rank());
        core::GtopkWorkspace ws;
        core::GtopkOptions opts;
        opts.workspace = &ws;
        const double it0 = comm.clock().now_s();
        comm.clock().advance(t_f + t_b);  // full compute before any comm
        for (std::size_t b = 0; b < nb; ++b) {
            base_globals[static_cast<std::size_t>(comm.rank())].push_back(
                core::gtopk_allreduce(comm, locals[b], locals[b].nnz(), opts).global);
        }
        base_iter[static_cast<std::size_t>(comm.rank())] = comm.clock().now_s() - it0;
    });

    std::vector<double> over_iter(static_cast<std::size_t>(workers), 0.0);
    std::vector<std::vector<sparse::SparseGradient>> over_globals(
        static_cast<std::size_t>(workers));
    comm::Cluster::run(workers, net, [&](comm::Communicator& comm) {
        const auto locals = locals_for(comm.rank());
        sparse::MergeScratch scratch;
        const double it0 = comm.clock().now_s();
        comm.clock().advance(t_f);
        const double bw0 = comm.clock().now_s();
        std::vector<std::unique_ptr<core::AsyncGtopkAllreduce>> handles(nb);
        for (std::size_t b = nb; b-- > 0;) {  // backward (gradient-ready) order
            comm.clock().advance_to(bw0 + ready[b] * t_b);
            handles[b] = std::make_unique<core::AsyncGtopkAllreduce>(
                comm, locals[b], locals[b].nnz(), &scratch);
            handles[b]->set_priority(buckets[b].priority);
            handles[b]->start();
        }
        comm.clock().advance_to(bw0 + t_b);
        for (std::size_t b = 0; b < nb; ++b) {  // front-bucket-first drain
            handles[b]->wait();
            over_globals[static_cast<std::size_t>(comm.rank())].push_back(
                handles[b]->result());
        }
        over_iter[static_cast<std::size_t>(comm.rank())] = comm.clock().now_s() - it0;
    });

    // Scheduling must not change math: overlapped aggregation bit-identical
    // to the serialized one, on every rank.
    for (int rank = 0; rank < workers; ++rank) {
        for (std::size_t b = 0; b < nb; ++b) {
            const auto& x = base_globals[static_cast<std::size_t>(rank)][b];
            const auto& y = over_globals[static_cast<std::size_t>(rank)][b];
            if (x.indices != y.indices || x.values != y.values) {
                throw std::logic_error(
                    "overlap aggregation diverged from serialized baseline at "
                    "rank " + std::to_string(rank) + " bucket " + std::to_string(b));
            }
        }
    }

    // Iteration ends when the SLOWEST rank finishes (the next forward pass
    // needs every replica updated).
    for (double v : base_iter) r.baseline_iter_s = std::max(r.baseline_iter_s, v);
    for (double v : over_iter) r.overlap_iter_s = std::max(r.overlap_iter_s, v);

    const double total_comm = r.baseline_iter_s - (t_f + t_b);
    const double exposed = r.overlap_iter_s - (t_f + t_b);
    r.measured_hidden = total_comm > 0 ? 1.0 - exposed / total_comm : 1.0;

    // Prediction over the SAME bucket sizes (forward order), single channel
    // — the virtual-time transport serializes each rank's sends.
    std::vector<std::int64_t> bucket_sizes;
    for (const train::GradBucket& b : buckets) {
        bucket_sizes.push_back(static_cast<std::int64_t>(b.size()));
    }
    const perfmodel::OverlapResult pred = perfmodel::overlapped_iteration(
        net, workers, bucket_sizes, kRho, t_f, t_b, /*channels=*/1);
    r.predicted_iter_s = pred.iteration_s;
    r.predicted_hidden = pred.hidden_fraction;
    return r;
}

}  // namespace

int main(int argc, char** argv) {
    std::string out_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr << "usage: bench_overlap [--out FILE.json]\n";
            return 2;
        }
    }

    gtopk::bench::quiet_logs();
    gtopk::bench::print_header(
        "bench_overlap — layer-wise gTop-k communication/computation overlap",
        "VGG-16, rho=1e-3, 1GbE alpha-beta network, virtual-time runtime vs "
        "perfmodel::overlapped_iteration");

    const gtopk::perfmodel::ModelProfile profile = gtopk::perfmodel::vgg16_profile();
    std::vector<PointResult> points;
    for (int workers : {8, 16, 32}) {
        points.push_back(run_point(workers, profile));
    }

    gtopk::util::TextTable table({"P", "buckets", "base iter [s]", "ovl iter [s]",
                                  "speedup", "hidden meas", "hidden pred",
                                  "deviation"});
    for (const PointResult& p : points) {
        table.add_row({std::to_string(p.workers), std::to_string(p.buckets),
                       gtopk::util::TextTable::fmt(p.baseline_iter_s, 4),
                       gtopk::util::TextTable::fmt(p.overlap_iter_s, 4),
                       gtopk::util::TextTable::fmt(p.measured_speedup(), 2) + "x",
                       gtopk::util::TextTable::fmt(p.measured_hidden, 3),
                       gtopk::util::TextTable::fmt(p.predicted_hidden, 3),
                       gtopk::util::TextTable::fmt(p.hidden_deviation() * 100, 1) + "%"});
    }
    table.print(std::cout);

    bool ok = true;
    double best_speedup = 0.0;
    for (const PointResult& p : points) {
        best_speedup = std::max(best_speedup, p.measured_speedup());
        if (p.hidden_deviation() > 0.15) {
            ok = false;
            std::cout << "FAIL: P=" << p.workers
                      << " measured hidden fraction deviates "
                      << p.hidden_deviation() * 100 << "% from prediction (>15%)\n";
        }
    }
    std::cout << "best measured overlap speedup: " << best_speedup << "x  "
              << (best_speedup >= 1.2 ? "(meets the >=1.2x acceptance bar)"
                                      : "(below the 1.2x bar)")
              << "\n";
    if (best_speedup < 1.2) ok = false;

    if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (!out) {
            std::cerr << "cannot open " << out_path << "\n";
            return 1;
        }
        // Same report shape as BENCH_hotpath.json so `gtopktop
        // bench-compare` can diff overlap iteration times across commits.
        out << "{\n  \"bench\": \"overlap\",\n  \"config\": {\"model\": \"VGG-16\", "
            << "\"m\": " << 14'727'488 << ", \"rho\": " << kRho
            << ", \"bucket_bytes\": " << kBucketBytes << "},\n  \"phases\": {\n";
        for (std::size_t i = 0; i < points.size(); ++i) {
            const PointResult& p = points[i];
            out << "    \"overlap_iter_P" << p.workers
                << "\": {\"legacy_s\": " << p.baseline_iter_s
                << ", \"optimized_s\": " << p.overlap_iter_s
                << ", \"speedup\": " << p.measured_speedup()
                << ", \"hidden_measured\": " << p.measured_hidden
                << ", \"hidden_predicted\": " << p.predicted_hidden << "}"
                << (i + 1 < points.size() ? "," : "") << "\n";
        }
        out << "  }\n}\n";
        std::cout << "written to " << out_path << "\n";
    }
    return ok ? 0 : 1;
}
