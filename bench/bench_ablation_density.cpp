// Ablation: predicted communication time vs density rho for the three
// aggregation algorithms (P = 32, m = 25e6), plus the density at which
// sparsification stops paying on this network.
#include <iostream>

#include "bench_common.hpp"
#include "collectives/cost_model.hpp"
#include "util/table.hpp"

int main() {
    using namespace gtopk;
    using util::TextTable;
    bench::quiet_logs();

    bench::print_header("Ablation — comm time vs density (P = 32, m = 25e6, 1GbE)",
                        "Table I models at the paper's alpha/beta");

    const comm::NetworkModel net = comm::NetworkModel::one_gbps_ethernet();
    const std::uint64_t m = 25'000'000;
    const double dense_ms = collectives::dense_allreduce_time_s(net, 32, m) * 1e3;

    TextTable table({"rho", "k", "Top-k [ms]", "gTop-k [ms]", "Dense [ms]",
                     "gTop-k wins?"});
    for (double rho : {1e-1, 1e-2, 5e-3, 1e-3, 5e-4, 1e-4, 1e-5}) {
        const auto k = static_cast<std::uint64_t>(rho * static_cast<double>(m));
        const double topk = collectives::topk_allreduce_time_s(net, 32, k) * 1e3;
        const double gtopk = collectives::gtopk_allreduce_time_s(net, 32, k) * 1e3;
        table.add_row({TextTable::fmt(rho, 5), TextTable::fmt_int(static_cast<long long>(k)),
                       TextTable::fmt(topk, 2), TextTable::fmt(gtopk, 2),
                       TextTable::fmt(dense_ms, 1),
                       gtopk < topk && gtopk < dense_ms ? "yes" : "no"});
    }
    table.print(std::cout);
    return 0;
}
