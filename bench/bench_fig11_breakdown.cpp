// Fig. 11: per-iteration time breakdown (compute / compression /
// communication) of gTop-k S-SGD on 32 workers, as percentages.
//
//   $ ./bench_fig11_breakdown [--trace-out trace.json]
//
// Section 1 is the paper's analytic breakdown from the calibrated stack
// model. Section 2 derives the same three phases from the observability
// tracer AND the cluster telemetry plane's global snapshots on an actual
// simulated training run (per-rank spans, virtual time for communication,
// host time for compute/compress) and cross-checks all three sources
// against the trainer's legacy accumulator means — they must agree
// within 1%.
#include <cmath>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "data/sampler.hpp"
#include "data/synthetic_images.hpp"
#include "nn/model_zoo.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "perfmodel/iteration_model.hpp"
#include "train/trainer.hpp"
#include "util/table.hpp"

namespace {

double pct_delta(double traced, double accumulated) {
    if (accumulated == 0.0) return traced == 0.0 ? 0.0 : 100.0;
    return 100.0 * std::abs(traced - accumulated) / accumulated;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace gtopk;
    using namespace gtopk::perfmodel;
    using util::TextTable;
    bench::quiet_logs();

    std::string trace_out;
    bool trace_requested = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
            trace_out = argv[++i];
            trace_requested = true;
        } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
            trace_out = argv[i] + 12;
            trace_requested = true;
        }
    }
    if (trace_requested && trace_out.empty()) {
        std::cerr << "error: --trace-out requires a non-empty path\n";
        return 2;
    }

    const StackModel stack = StackModel::calibrated();
    bench::print_header(
        "Fig. 11 — Time breakdown of gTop-k S-SGD at P = 32 (percent)",
        "Compu. = forward+backward, Compr. = top-k selection, Commu. = "
        "gTopKAllReduce");

    TextTable table({"Model", "Compu. %", "Compr. %", "Commu. %", "titer [s]"});
    for (const auto& model : table4_models()) {
        const Breakdown b =
            iteration_breakdown(model, Algo::Gtopk, 32, model.default_density, stack);
        const double total = b.total_s();
        table.add_row({model.name, TextTable::fmt(100 * b.compute_s / total, 1),
                       TextTable::fmt(100 * b.compress_s / total, 1),
                       TextTable::fmt(100 * b.comm_s / total, 1),
                       TextTable::fmt(total, 3)});
    }
    table.print(std::cout);

    std::cout << "\nExpected shape (paper): VGG-16/AlexNet dominated by "
                 "compression+communication;\nResNet-20/ResNet-50 dominated by "
                 "computation.\n";

    // --- Section 2: the same breakdown measured from the tracer on a real
    // simulated run (small MLP, P = 8, 1GbE), cross-checked against the
    // trainer's accumulator means.
    const int workers = 8;
    data::SyntheticImageDataset::Config dcfg;
    dcfg.image_size = 8;
    data::SyntheticImageDataset dataset(dcfg, /*seed=*/1);
    data::ShardedSampler sampler(8192, 1024, workers, /*seed=*/2);
    nn::MlpConfig mcfg;
    mcfg.input_dim = dataset.feature_dim();
    mcfg.hidden_dims = {64, 32};

    train::TrainConfig config;
    config.algorithm = train::Algorithm::GtopkSsgd;
    config.epochs = 2;
    config.iters_per_epoch = 25;
    config.density = 0.01;

    obs::Tracer tracer(workers);
    config.tracer = &tracer;
    obs::Telemetry telemetry(workers);
    config.telemetry = &telemetry;

    const auto result = train::train_distributed(
        workers, comm::NetworkModel::one_gbps_ethernet(), config,
        [&](std::uint64_t seed) { return nn::make_mlp(mcfg, seed); },
        [&](std::int64_t step, int rank) {
            return dataset.batch_flat(sampler.batch_indices(step, rank, 16));
        },
        {});

    // Rank 0's phase means out of the telemetry plane's global snapshots —
    // a third independent derivation of the same breakdown.
    double tm_compute = 0, tm_compress = 0, tm_comm = 0;
    std::int64_t tm_iters = 0;
    for (const obs::IterSnapshot& snap : telemetry.snapshots()) {
        for (const obs::RankIterStats& r : snap.ranks) {
            if (r.physical_rank != 0) continue;
            tm_compute += r.compute_host_s;
            tm_compress += r.compress_host_s;
            tm_comm += r.comm_virtual_s;
            ++tm_iters;
        }
    }
    if (tm_iters > 0) {
        tm_compute /= static_cast<double>(tm_iters);
        tm_compress /= static_cast<double>(tm_iters);
        tm_comm /= static_cast<double>(tm_iters);
    }

    const obs::PhaseTotals tp = result.rank0_traced_phases;
    bench::print_header(
        "Fig. 11b — Same breakdown derived from the trace (MLP, P = 8)",
        "trace = sum of per-span durations; telemetry = global snapshot "
        "stream; accum = trainer's legacy per-phase accumulators");
    TextTable measured({"Source", "Compu. [ms]", "Compr. [ms]", "Commu. [ms]"});
    measured.add_row({"trace", TextTable::fmt(tp.mean_compute_s() * 1e3, 4),
                      TextTable::fmt(tp.mean_compress_s() * 1e3, 4),
                      TextTable::fmt(tp.mean_comm_virtual_s() * 1e3, 4)});
    measured.add_row({"telemetry", TextTable::fmt(tm_compute * 1e3, 4),
                      TextTable::fmt(tm_compress * 1e3, 4),
                      TextTable::fmt(tm_comm * 1e3, 4)});
    measured.add_row({"accum", TextTable::fmt(result.mean_compute_s * 1e3, 4),
                      TextTable::fmt(result.mean_compress_s * 1e3, 4),
                      TextTable::fmt(result.mean_comm_virtual_s * 1e3, 4)});
    measured.print(std::cout);

    const double worst = std::max(
        {pct_delta(tp.mean_compute_s(), result.mean_compute_s),
         pct_delta(tp.mean_compress_s(), result.mean_compress_s),
         pct_delta(tp.mean_comm_virtual_s(), result.mean_comm_virtual_s),
         pct_delta(tm_compute, result.mean_compute_s),
         pct_delta(tm_compress, result.mean_compress_s),
         pct_delta(tm_comm, result.mean_comm_virtual_s)});
    std::cout << "\nmax cross-source deviation vs accumulators: " << worst
              << " %  "
              << (worst <= 1.0 ? "(OK, within 1%)" : "(EXCEEDS 1% BOUND)") << "\n";

    if (!trace_out.empty()) {
        if (!tracer.write_chrome_trace_file(trace_out)) return 1;
        std::cout << "trace written to " << trace_out
                  << "  (load in https://ui.perfetto.dev)\n";
    }
    return worst <= 1.0 ? 0 : 1;
}
