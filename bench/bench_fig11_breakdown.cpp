// Fig. 11: per-iteration time breakdown (compute / compression /
// communication) of gTop-k S-SGD on 32 workers, as percentages.
#include <iostream>

#include "bench_common.hpp"
#include "perfmodel/iteration_model.hpp"
#include "util/table.hpp"

int main() {
    using namespace gtopk;
    using namespace gtopk::perfmodel;
    using util::TextTable;
    bench::quiet_logs();

    const StackModel stack = StackModel::calibrated();
    bench::print_header(
        "Fig. 11 — Time breakdown of gTop-k S-SGD at P = 32 (percent)",
        "Compu. = forward+backward, Compr. = top-k selection, Commu. = "
        "gTopKAllReduce");

    TextTable table({"Model", "Compu. %", "Compr. %", "Commu. %", "titer [s]"});
    for (const auto& model : table4_models()) {
        const Breakdown b =
            iteration_breakdown(model, Algo::Gtopk, 32, model.default_density, stack);
        const double total = b.total_s();
        table.add_row({model.name, TextTable::fmt(100 * b.compute_s / total, 1),
                       TextTable::fmt(100 * b.compress_s / total, 1),
                       TextTable::fmt(100 * b.comm_s / total, 1),
                       TextTable::fmt(total, 3)});
    }
    table.print(std::cout);

    std::cout << "\nExpected shape (paper): VGG-16/AlexNet dominated by "
                 "compression+communication;\nResNet-20/ResNet-50 dominated by "
                 "computation.\n";
    return 0;
}
