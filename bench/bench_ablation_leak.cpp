// Extension bench: the error-feedback LEAK of Algorithm 4's line 10.
//
// Line 10 returns to the residual every locally-sent entry whose INDEX did
// not survive the global selection. But the tree fold can drop worker g's
// contribution at index i in an intermediate round while i still reaches
// the final selection through another branch. Worker g then sees i in
// gMask, returns nothing, and its contribution is in neither the applied
// update nor any residual — silently lost. The paper does not discuss
// this; here we replay the tree with per-index contributor provenance and
// measure the lost mass across worker counts.
#include <iostream>
#include <map>
#include <set>

#include "bench_common.hpp"
#include "collectives/schedule.hpp"
#include "sparse/topk_merge.hpp"
#include "sparse/topk_select.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace gtopk;
using sparse::SparseGradient;

/// Sparse gradient with per-index contributor sets, merged exactly as
/// gtopk_allreduce merges (⊤ plus provenance union).
struct Tracked {
    SparseGradient grad;
    std::map<std::int32_t, std::set<int>> contributors;
};

Tracked merge(const Tracked& a, const Tracked& b, std::size_t k) {
    Tracked out;
    out.grad = sparse::topk_merge(a.grad, b.grad, k);
    for (std::int32_t idx : out.grad.indices) {
        auto& who = out.contributors[idx];
        if (auto it = a.contributors.find(idx); it != a.contributors.end()) {
            who.insert(it->second.begin(), it->second.end());
        }
        if (auto it = b.contributors.find(idx); it != b.contributors.end()) {
            who.insert(it->second.begin(), it->second.end());
        }
    }
    return out;
}

struct LeakStats {
    double sent_mass = 0.0;
    double applied_mass = 0.0;
    double returned_mass = 0.0;
    double leaked_mass = 0.0;
};

LeakStats measure_leak(int world, std::int64_t m, std::size_t k, std::uint64_t seed) {
    std::vector<Tracked> nodes;
    for (int r = 0; r < world; ++r) {
        util::Xoshiro256 rng = util::Xoshiro256(seed).fork(static_cast<std::uint64_t>(r));
        std::vector<float> dense(static_cast<std::size_t>(m));
        for (auto& v : dense) v = static_cast<float>(rng.next_gaussian());
        Tracked t;
        t.grad = sparse::topk_select(dense, k);
        for (std::int32_t idx : t.grad.indices) t.contributors[idx] = {r};
        nodes.push_back(std::move(t));
    }
    const std::vector<Tracked> locals = nodes;  // keep originals

    // Replay the exact schedule of core::gtopk_allreduce.
    const int base = 1 << collectives::ilog2_floor(world);
    for (int r = base; r < world; ++r) {
        nodes[static_cast<std::size_t>(r - base)] =
            merge(nodes[static_cast<std::size_t>(r - base)],
                  nodes[static_cast<std::size_t>(r)], k);
    }
    for (int stride = 1; stride < base; stride *= 2) {
        for (int r = 0; r + stride < base; r += 2 * stride) {
            nodes[static_cast<std::size_t>(r)] =
                merge(nodes[static_cast<std::size_t>(r)],
                      nodes[static_cast<std::size_t>(r + stride)], k);
        }
    }
    const Tracked& final_result = nodes[0];
    std::set<std::int32_t> final_idx(final_result.grad.indices.begin(),
                                     final_result.grad.indices.end());

    LeakStats stats;
    for (int g = 0; g < world; ++g) {
        const auto& local = locals[static_cast<std::size_t>(g)].grad;
        for (std::size_t i = 0; i < local.nnz(); ++i) {
            const std::int32_t idx = local.indices[i];
            const double mass = std::abs(local.values[i]);
            stats.sent_mass += mass;
            if (!final_idx.count(idx)) {
                stats.returned_mass += mass;  // line 10 puts it back
            } else if (final_result.contributors.at(idx).count(g)) {
                stats.applied_mass += mass;
            } else {
                stats.leaked_mass += mass;  // in gMask, but g's value dropped
            }
        }
    }
    return stats;
}

}  // namespace

int main() {
    using util::TextTable;
    bench::quiet_logs();
    bench::print_header(
        "Extension — error-feedback leak of Algorithm 4 line 10",
        "tree-fold provenance replay; leaked = sent mass neither applied nor "
        "returned");

    const std::int64_t m = 20'000;
    const std::size_t k = 100;
    TextTable table({"P", "applied %", "returned %", "LEAKED %"});
    for (int world : {2, 4, 8, 16, 32, 64}) {
        util::RunningStats leak_pct;
        LeakStats total;
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
            const LeakStats s = measure_leak(world, m, k, seed);
            total.sent_mass += s.sent_mass;
            total.applied_mass += s.applied_mass;
            total.returned_mass += s.returned_mass;
            total.leaked_mass += s.leaked_mass;
            leak_pct.add(100.0 * s.leaked_mass / s.sent_mass);
        }
        table.add_row({TextTable::fmt_int(world),
                       TextTable::fmt(100.0 * total.applied_mass / total.sent_mass, 2),
                       TextTable::fmt(100.0 * total.returned_mass / total.sent_mass, 2),
                       TextTable::fmt(100.0 * total.leaked_mass / total.sent_mass, 2) +
                           " (+-" + TextTable::fmt(leak_pct.stddev(), 2) + ")"});
    }
    table.print(std::cout);
    std::cout << "\nAt P = 2 the tree IS the global selection, so nothing leaks;\n"
                 "deeper trees drop a growing sliver of sent mass. The residual\n"
                 "error-feedback loop cannot see it, which is one reason gTop-k\n"
                 "needs slightly more updates than Top-k (paper Figs. 13-14).\n";
    return 0;
}
