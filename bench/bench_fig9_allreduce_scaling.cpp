// Fig. 9: TopKAllReduce vs gTopKAllReduce communication time.
//   Left:  vs number of workers (4..128) at m = 25e6, rho = 0.001.
//   Right: vs number of parameters (1e6..1e8) at P = 32.
// The paper computes this figure from the measured alpha/beta and the
// Table I models; we print the same model values AND validate them against
// end-to-end measurements on the virtual-time cluster where the worker
// count is practical (<= 32 threads).
#include <algorithm>
#include <iostream>
#include <set>

#include "bench_common.hpp"
#include "collectives/cost_model.hpp"
#include "comm/cluster.hpp"
#include "core/aggregators.hpp"
#include "sparse/topk_select.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace gtopk;

double measure(int world, std::int64_t m, std::size_t k, bool gtopk) {
    auto result = comm::Cluster::run_timed(
        world, comm::NetworkModel::one_gbps_ethernet(), [&](comm::Communicator& comm) {
            util::Xoshiro256 rng(static_cast<std::uint64_t>(comm.rank()) + 17);
            // Build a k-sparse gradient directly (materializing m = 25e6
            // dense floats x 32 ranks would be pointless here).
            std::vector<std::int32_t> idx;
            std::vector<float> vals;
            std::set<std::int64_t> used;
            while (idx.size() < k) {
                const auto i = static_cast<std::int32_t>(
                    rng.next_below(static_cast<std::uint64_t>(m)));
                if (used.insert(i).second) {
                    idx.push_back(i);
                    vals.push_back(static_cast<float>(rng.next_gaussian()));
                }
            }
            const auto local = sparse::from_pairs(m, std::move(idx), std::move(vals));
            if (gtopk) {
                (void)core::gtopk_allreduce(comm, local, k);
            } else {
                (void)core::topk_allreduce(comm, local);
            }
        });
    double t = 0;
    for (double x : result.final_time_s) t = std::max(t, x);
    return t;
}

}  // namespace

int main() {
    using util::TextTable;
    bench::quiet_logs();
    const comm::NetworkModel net = comm::NetworkModel::one_gbps_ethernet();

    bench::print_header(
        "Fig. 9 (left) — AllReduce time vs workers (m = 25e6, rho = 0.001)",
        "model = Table I formulas at measured alpha/beta; measured = "
        "virtual-time cluster (P <= 32)");
    {
        const std::int64_t m = 25'000'000;
        const std::size_t k = 25'000;
        TextTable table({"P", "TopK model [ms]", "gTopK model [ms]",
                         "TopK measured [ms]", "gTopK measured [ms]"});
        for (int p : {4, 8, 16, 32, 64, 128}) {
            const double topk_model =
                collectives::topk_allreduce_time_s(net, p, k) * 1e3;
            const double gtopk_model =
                collectives::gtopk_allreduce_time_s(net, p, k) * 1e3;
            std::string topk_meas = "-", gtopk_meas = "-";
            if (p <= 32) {
                topk_meas = TextTable::fmt(measure(p, m, k, false) * 1e3, 2);
                gtopk_meas = TextTable::fmt(measure(p, m, k, true) * 1e3, 2);
            }
            table.add_row({TextTable::fmt_int(p), TextTable::fmt(topk_model, 2),
                           TextTable::fmt(gtopk_model, 2), topk_meas, gtopk_meas});
        }
        table.print(std::cout);
    }

    bench::print_header(
        "Fig. 9 (right) — AllReduce time vs model size (P = 32, rho = 0.001)",
        "k = rho * m");
    {
        TextTable table({"m", "k", "TopK model [ms]", "gTopK model [ms]",
                         "gTopK speedup"});
        for (double m : {1e6, 2e6, 5e6, 1e7, 2.5e7, 5e7, 1e8}) {
            const auto k = static_cast<std::uint64_t>(m * 1e-3);
            const double topk = collectives::topk_allreduce_time_s(net, 32, k) * 1e3;
            const double gtopk = collectives::gtopk_allreduce_time_s(net, 32, k) * 1e3;
            table.add_row({TextTable::fmt(m, 0), TextTable::fmt_int(static_cast<long long>(k)),
                           TextTable::fmt(topk, 2), TextTable::fmt(gtopk, 2),
                           TextTable::fmt(topk / gtopk, 2) + "x"});
        }
        table.print(std::cout);
    }
    return 0;
}
