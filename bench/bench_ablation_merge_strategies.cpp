// Ablation over this repo's design choices inside the aggregators:
//   * gTopKAllReduce phase 2: binomial-tree vs flat-tree broadcast (the
//     paper says "flat-tree" but quotes the logP binomial cost — this
//     bench quantifies the difference);
//   * TopKAllReduce: recursive-doubling vs ring AllGather.
// Measured end-to-end in virtual time on the simulated 1GbE cluster.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "comm/cluster.hpp"
#include "core/aggregators.hpp"
#include "sparse/topk_select.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace gtopk;

sparse::SparseGradient local_grad(int rank, std::int64_t m, std::size_t k) {
    util::Xoshiro256 rng(static_cast<std::uint64_t>(rank) + 41);
    std::vector<float> dense(static_cast<std::size_t>(m));
    for (auto& v : dense) v = static_cast<float>(rng.next_gaussian());
    return sparse::topk_select(dense, k);
}

template <typename Fn>
double timed(int world, Fn&& fn) {
    auto result = comm::Cluster::run_timed(
        world, comm::NetworkModel::one_gbps_ethernet(), std::forward<Fn>(fn));
    return *std::max_element(result.final_time_s.begin(), result.final_time_s.end());
}

}  // namespace

int main() {
    using util::TextTable;
    bench::quiet_logs();
    const std::int64_t m = 200'000;
    const std::size_t k = 2'000;

    bench::print_header("Ablation — broadcast algorithm inside gTopKAllReduce",
                        "m = 200k, k = 2000, virtual 1GbE");
    {
        TextTable table({"P", "binomial bcast [ms]", "flat-tree bcast [ms]", "ratio"});
        for (int p : {4, 8, 16, 32}) {
            const double binom = timed(p, [&](comm::Communicator& comm) {
                (void)core::gtopk_allreduce(comm, local_grad(comm.rank(), m, k), k);
            });
            const double flat = timed(p, [&](comm::Communicator& comm) {
                core::GtopkOptions opt;
                opt.bcast = collectives::BcastAlgo::FlatTree;
                (void)core::gtopk_allreduce(comm, local_grad(comm.rank(), m, k), k, opt);
            });
            table.add_row({TextTable::fmt_int(p), TextTable::fmt(binom * 1e3, 2),
                           TextTable::fmt(flat * 1e3, 2),
                           TextTable::fmt(flat / binom, 2) + "x"});
        }
        table.print(std::cout);
    }

    bench::print_header("Ablation — DenseAllReduce algorithm (the paper's baseline)",
                        "virtual 1GbE; ring = Eq. 5, Rabenseifner = 2logP a + ring bandwidth");
    {
        TextTable table({"P", "m", "ring [ms]", "rec.doubling [ms]",
                         "Rabenseifner [ms]"});
        for (int p : {8, 32}) {
            for (std::size_t mm : {static_cast<std::size_t>(p) * 128,
                                   static_cast<std::size_t>(p) * 65536}) {
                auto run_algo = [&](collectives::AllreduceAlgo algo) {
                    return timed(p, [&](comm::Communicator& comm) {
                        std::vector<float> data(mm, 1.0f);
                        collectives::allreduce_sum(comm, data, algo);
                    });
                };
                table.add_row(
                    {TextTable::fmt_int(p), TextTable::fmt_int(static_cast<long long>(mm)),
                     TextTable::fmt(run_algo(collectives::AllreduceAlgo::Ring) * 1e3, 2),
                     TextTable::fmt(
                         run_algo(collectives::AllreduceAlgo::RecursiveDoubling) * 1e3, 2),
                     TextTable::fmt(
                         run_algo(collectives::AllreduceAlgo::Rabenseifner) * 1e3, 2)});
            }
        }
        table.print(std::cout);
        std::cout << "\nRabenseifner matches the ring's bandwidth term with only\n"
                     "2logP latency terms, so under the alpha-beta model it never\n"
                     "loses to the ring; recursive doubling pays full-vector\n"
                     "bandwidth logP times — fastest for small m, hopeless at\n"
                     "scale. (Real NCCL prefers rings for pipelining reasons the\n"
                     "alpha-beta model does not capture.)\n\n";
    }

    bench::print_header("Ablation — AllGather algorithm inside TopKAllReduce",
                        "m = 200k, k = 2000, virtual 1GbE");
    {
        TextTable table({"P", "recursive doubling [ms]", "ring [ms]", "ratio"});
        for (int p : {4, 8, 16, 32}) {
            const double rd = timed(p, [&](comm::Communicator& comm) {
                (void)core::topk_allreduce(comm, local_grad(comm.rank(), m, k),
                                           collectives::AllgatherAlgo::RecursiveDoubling);
            });
            const double ring = timed(p, [&](comm::Communicator& comm) {
                (void)core::topk_allreduce(comm, local_grad(comm.rank(), m, k),
                                           collectives::AllgatherAlgo::Ring);
            });
            table.add_row({TextTable::fmt_int(p), TextTable::fmt(rd * 1e3, 2),
                           TextTable::fmt(ring * 1e3, 2),
                           TextTable::fmt(ring / rd, 2) + "x"});
        }
        table.print(std::cout);
    }
    return 0;
}
