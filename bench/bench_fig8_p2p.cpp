// Fig. 8: point-to-point transfer time vs message size, plus the alpha-beta
// fit. The paper measures its 1GbE testbed with the OSU benchmark and fits
// alpha = 0.436 ms, beta = 3.6e-5 ms/element; we run the same protocol on
// the virtual-time transport and recover the constants by least squares —
// pinning the simulator to the paper's network.
#include <iostream>

#include "bench_common.hpp"
#include "comm/cluster.hpp"
#include "comm/tags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
    using namespace gtopk;
    using util::TextTable;
    bench::quiet_logs();

    bench::print_header("Fig. 8 — Point-to-point transfer time vs message size",
                        "Simulated 1GbE transport; linear fit recovers alpha/beta");

    const comm::NetworkModel net = comm::NetworkModel::one_gbps_ethernet();
    std::vector<double> sizes, times;
    TextTable table({"# of parameters", "measured [ms]", "predicted [ms]"});
    for (std::size_t n : {0u, 50'000u, 100'000u, 200'000u, 400'000u, 600'000u,
                          800'000u, 1'000'000u}) {
        auto result = comm::Cluster::run_timed(2, net, [&](comm::Communicator& comm) {
            std::vector<float> payload(n, 1.0f);
            if (comm.rank() == 0) {
                comm.send_vec<float>(1, gtopk::comm::kTagBenchP2p, payload);
            } else {
                (void)comm.recv(0, gtopk::comm::kTagBenchP2p);
            }
        });
        const double measured_ms = result.final_time_s[1] * 1e3;
        const double predicted_ms = net.transfer_time_elems(n) * 1e3;
        sizes.push_back(static_cast<double>(n));
        times.push_back(measured_ms);
        table.add_row({TextTable::fmt_int(static_cast<long long>(n)),
                       TextTable::fmt(measured_ms, 3), TextTable::fmt(predicted_ms, 3)});
    }
    table.print(std::cout);

    const util::LinearFit fit = util::linear_fit(sizes, times);
    std::cout << "\nFitted alpha = " << TextTable::fmt(fit.intercept, 3)
              << " ms (paper: 0.436 ms), beta = " << fit.slope * 1e3
              << " us/element (paper: 0.036 us/element), R^2 = "
              << TextTable::fmt(fit.r2, 6) << "\n";
    return 0;
}
