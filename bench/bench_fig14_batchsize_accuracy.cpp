// Fig. 14: the batch-size dependence of the Fig. 13 gap. With a SMALL
// per-worker batch (many updates), gTop-k closes most of the accuracy gap
// to Top-k; with a LARGE batch the gap widens.
#include <iostream>

#include "convergence_common.hpp"
#include "data/sampler.hpp"
#include "data/synthetic_images.hpp"
#include "nn/model_zoo.hpp"

namespace {

using namespace gtopk;

void run_batch(const data::SyntheticImageDataset& dataset, int world,
               std::int64_t per_worker_batch, int iters_per_epoch, float lr) {
    std::cout << "\n--- per-worker batch b = " << per_worker_batch
              << " (global B = " << per_worker_batch * world << "), "
              << iters_per_epoch << " iters/epoch ---\n";
    data::ShardedSampler sampler(8192, 1024, world, 21);
    nn::MlpConfig mcfg;
    mcfg.input_dim = dataset.feature_dim();
    mcfg.hidden_dims = {128, 64};

    train::TrainConfig topk;
    topk.algorithm = train::Algorithm::TopkSsgd;
    topk.epochs = 10;
    topk.iters_per_epoch = iters_per_epoch;
    topk.lr = lr;
    topk.density = 0.001;
    train::TrainConfig gtopk = topk;
    gtopk.algorithm = train::Algorithm::GtopkSsgd;

    const auto series = bench::run_configs(
        world, {{"Top-k", topk}, {"gTop-k", gtopk}},
        [&](std::uint64_t seed) { return nn::make_mlp(mcfg, seed); },
        [&](std::int64_t step, int rank) {
            return dataset.batch_flat(
                sampler.batch_indices(step, rank, per_worker_batch));
        },
        [&] { return dataset.batch_flat(sampler.test_indices(256)); });
    bench::print_accuracy_series(series);
}

}  // namespace

int main() {
    bench::quiet_logs();
    bench::print_header("Fig. 14 — accuracy gap vs batch size (gTop-k vs Top-k)",
                        "small batch: many updates, gap closes; large batch: gap widens");

    data::SyntheticImageDataset::Config dcfg;
    dcfg.image_size = 8;
    dcfg.noise_std = 2.2f;  // hard task so the update-starvation gap persists
    data::SyntheticImageDataset dataset(dcfg, 777);

    // Small batch, many updates per epoch (lr scaled down with batch).
    run_batch(dataset, 8, 4, 32, 0.02f);
    // Large batch, few updates per epoch (same samples/epoch).
    run_batch(dataset, 8, 64, 2, 0.08f);
    return 0;
}
