// Extension bench (paper Sec. VII): layer-wise gTop-k sparsification and
// communication/computation overlap.
//   1. Convergence: layer-wise vs global selection on a real training run.
//   2. Timing: per-model serialized layer-wise comm vs global comm, and the
//      WFBP-style overlap prediction (how much hides behind backprop).
#include <iostream>

#include "collectives/cost_model.hpp"
#include "convergence_common.hpp"
#include "data/sampler.hpp"
#include "data/synthetic_images.hpp"
#include "nn/model_zoo.hpp"
#include "perfmodel/iteration_model.hpp"
#include "perfmodel/overlap_model.hpp"
#include "util/table.hpp"

int main() {
    using namespace gtopk;
    using util::TextTable;
    bench::quiet_logs();

    bench::print_header("Extension — layer-wise gTop-k: convergence",
                        "global vs per-tensor selection, P = 4");
    {
        data::SyntheticImageDataset::Config dcfg;
        dcfg.image_size = 8;
        dcfg.noise_std = 0.6f;
        data::SyntheticImageDataset dataset(dcfg, 42);
        data::ShardedSampler sampler(8192, 1024, 4, 2);
        nn::MlpConfig mcfg;
        mcfg.input_dim = dataset.feature_dim();
        mcfg.hidden_dims = {64, 32};

        train::TrainConfig global;
        global.algorithm = train::Algorithm::GtopkSsgd;
        global.epochs = 8;
        global.iters_per_epoch = 30;
        global.lr = 0.05f;
        global.density = 0.01;
        train::TrainConfig layerwise = global;
        layerwise.algorithm = train::Algorithm::LayerwiseGtopkSsgd;

        const auto series = bench::run_configs(
            4, {{"global gTop-k", global}, {"layer-wise gTop-k", layerwise}},
            [&](std::uint64_t seed) { return nn::make_mlp(mcfg, seed); },
            [&](std::int64_t step, int rank) {
                return dataset.batch_flat(sampler.batch_indices(step, rank, 16));
            },
            [&] { return dataset.batch_flat(sampler.test_indices(256)); });
        bench::print_loss_series(series);
    }

    bench::print_header("Extension — overlap model on the paper's DNNs (P = 32)",
                        "segments approximated as equal tensor blocks per model");
    {
        const auto net = comm::NetworkModel::one_gbps_ethernet();
        TextTable table({"Model", "global comm [ms]", "layer-wise serial [ms]",
                         "overlapped iter [s]", "plain iter [s]", "hidden %"});
        struct Row {
            perfmodel::ModelProfile profile;
            int segments;
        };
        for (const auto& [profile, segments] :
             {Row{perfmodel::vgg16_profile(), 16}, Row{perfmodel::resnet20_profile(), 20},
              Row{perfmodel::alexnet_profile(), 8},
              Row{perfmodel::resnet50_profile(), 50}}) {
            std::vector<std::int64_t> segs(
                static_cast<std::size_t>(segments),
                profile.params / segments);
            const double global_ms =
                collectives::gtopk_allreduce_time_s(
                    net, 32, static_cast<std::uint64_t>(profile.params / 1000)) *
                1e3;
            const double serial_ms =
                perfmodel::layerwise_gtopk_comm_time_s(net, 32, segs, 1e-3) * 1e3;
            // Split profile compute 1/3 forward, 2/3 backward (typical).
            const double tf = profile.t_compute_s / 3.0;
            const double tb = profile.t_compute_s * 2.0 / 3.0;
            const auto overlap =
                perfmodel::overlapped_iteration(net, 32, segs, 1e-3, tf, tb);
            const double plain = profile.t_compute_s + global_ms / 1e3;
            table.add_row({profile.name, TextTable::fmt(global_ms, 2),
                           TextTable::fmt(serial_ms, 2),
                           TextTable::fmt(overlap.iteration_s, 3),
                           TextTable::fmt(plain, 3),
                           TextTable::fmt(100.0 * overlap.hidden_fraction, 1)});
        }
        table.print(std::cout);
        std::cout << "\nLayer-wise pays more latency (one tree per tensor) but can\n"
                     "hide most of it behind backprop — the paper's Sec. VII bet.\n";
    }
    return 0;
}
