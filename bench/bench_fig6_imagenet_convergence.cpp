// Fig. 6: convergence of AlexNet and ResNet-50 (ImageNet) with gTop-k
// S-SGD vs dense S-SGD, P = 4, rho = 0.001.
//
// Substitution: ImageNet-scale training is replaced by a harder synthetic
// task (more classes, larger inputs, more noise) with an FC-heavy MLP
// standing in for AlexNet (its cost is dominated by fully connected
// layers) and a deeper MiniResNet for ResNet-50 (DESIGN.md §2). Density is
// scaled to keep k meaningful at the smaller m.
#include <iostream>

#include "convergence_common.hpp"
#include "data/sampler.hpp"
#include "data/synthetic_images.hpp"
#include "nn/model_zoo.hpp"

int main() {
    using namespace gtopk;
    bench::quiet_logs();
    bench::print_header("Fig. 6 — Convergence of AlexNet and ResNet-50, P = 4",
                        "harder synthetic task (20 classes); gTop-k vs dense");

    data::SyntheticImageDataset::Config dcfg;
    dcfg.classes = 20;
    dcfg.image_size = 10;
    dcfg.noise_std = 0.9f;
    data::SyntheticImageDataset dataset(dcfg, 808);
    data::ShardedSampler sampler(8192, 1024, 4, 9);

    auto run = [&](const std::string& name, const train::ModelFactory& factory,
                   bool conv_input) {
        std::cout << "\n--- " << name << " ---\n";
        train::TrainConfig dense;
        dense.algorithm = train::Algorithm::DenseSsgd;
        dense.epochs = 12;
        dense.iters_per_epoch = 25;
        dense.lr = 0.03f;
        train::TrainConfig gtopk = dense;
        gtopk.algorithm = train::Algorithm::GtopkSsgd;
        gtopk.density = 0.005;
        gtopk.warmup_densities = {0.25, 0.0725, 0.015};

        const auto series = bench::run_configs(
            4, {{"S-SGD", dense}, {"gTop-k S-SGD", gtopk}}, factory,
            [&](std::int64_t step, int rank) {
                const auto idx = sampler.batch_indices(step, rank, 8);
                return conv_input ? dataset.batch_images(idx) : dataset.batch_flat(idx);
            },
            [&] {
                const auto idx = sampler.test_indices(128);
                return conv_input ? dataset.batch_images(idx) : dataset.batch_flat(idx);
            });
        bench::print_loss_series(series);
    };

    nn::MlpConfig alex;  // FC-heavy stand-in for AlexNet
    alex.input_dim = dataset.feature_dim();
    alex.hidden_dims = {128, 64};
    alex.classes = 20;
    run("AlexNet (FC-heavy MLP stand-in)",
        [&](std::uint64_t seed) { return nn::make_mlp(alex, seed); },
        /*conv_input=*/false);

    nn::MiniResNetConfig res;  // deeper residual net for ResNet-50
    res.image_size = 10;
    res.channels = 6;
    res.blocks = 3;
    res.classes = 20;
    res.batch_norm = true;  // like the real ResNet-50
    run("ResNet-50 (deep MiniResNet stand-in)",
        [&](std::uint64_t seed) { return nn::make_mini_resnet(res, seed); },
        /*conv_input=*/true);
    return 0;
}
