// Fig. 7: convergence of the LSTM language model with gTop-k S-SGD vs
// dense S-SGD, P = 4, rho = 0.005 (the paper's LSTM density).
//
// Substitution: LSTM-PTB -> single-layer LSTM LM on synthetic Markov-chain
// sequences (DESIGN.md §2).
#include <iostream>

#include "convergence_common.hpp"
#include "data/sampler.hpp"
#include "data/sequence_data.hpp"
#include "nn/model_zoo.hpp"

int main() {
    using namespace gtopk;
    bench::quiet_logs();
    bench::print_header("Fig. 7 — Convergence of LSTM, P = 4, rho = 0.005",
                        "LSTM LM on synthetic Markov sequences");

    data::SequenceDataset ds({.vocab = 16, .seq_len = 10, .peakedness = 10.0}, 31);
    data::ShardedSampler sampler(8192, 1024, 4, 5);
    // 2 layers, like the paper's LSTM-PTB.
    nn::LstmConfig mcfg{.vocab = 16, .embed_dim = 12, .hidden_dim = 32,
                        .num_layers = 2};

    train::TrainConfig dense;
    dense.algorithm = train::Algorithm::DenseSsgd;
    dense.epochs = 20;
    dense.iters_per_epoch = 60;
    dense.lr = 0.8f;
    dense.momentum = 0.5f;

    train::TrainConfig gtopk = dense;
    gtopk.algorithm = train::Algorithm::GtopkSsgd;
    gtopk.density = 0.005;
    gtopk.warmup_densities = {0.25, 0.0725, 0.015};

    const auto series = bench::run_configs(
        4, {{"S-SGD", dense}, {"gTop-k S-SGD", gtopk}},
        [&](std::uint64_t seed) { return nn::make_lstm_lm(mcfg, seed); },
        [&](std::int64_t step, int rank) {
            return ds.batch(sampler.batch_indices(step, rank, 6));
        },
        [&] { return ds.batch(sampler.test_indices(64)); });

    bench::print_loss_series(series);
    std::cout << "\nChain entropy floor (nats/token): " << ds.transition_entropy()
              << " — both runs should approach it together.\n";
    return 0;
}
