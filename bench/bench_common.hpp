// Shared helpers for the report benches: each bench binary reproduces one
// table or figure of the paper and prints it as aligned text rows.
#pragma once

#include <iostream>
#include <string>

#include "util/log.hpp"
#include "util/table.hpp"

namespace gtopk::bench {

inline void print_header(const std::string& artifact, const std::string& note) {
    std::cout << "==============================================================\n"
              << artifact << "\n"
              << note << "\n"
              << "==============================================================\n";
}

inline void quiet_logs() { util::set_log_level(util::LogLevel::Warn); }

}  // namespace gtopk::bench
