// Hot-path A/B bench: legacy (owning, allocate-per-call) vs optimized
// (pooled buffers, zero-copy wire views, reused workspaces) host costs of
// one gTop-k iteration, measured in the SAME run so the speedup is
// apples-to-apples on this machine.
//
//   $ ./bench_hotpath [--m N] [--world P] [--rho R] [--iters I]
//                     [--out BENCH_hotpath.json] [--small]
//
// Default config is the paper's largest setting that fits a host run:
// m = 25e6 parameters, P = 32 workers, rho = 0.001 (k = 25 000). --small
// is the CI smoke preset (m = 2^20, P = 8).
//
// Phases (all host wall-clock, virtual-time network is free):
//   select            one-shot topk_select  vs  workspace + sampled prefilter
//   kth_magnitude     fresh kth_largest_magnitude  vs  workspace overload
//   wire_roundtrip    serialize+deserialize  vs  serialize_into + view
//   merge             topk_merge (allocate-add-reselect)  vs  topk_merge_into
//   e2e_gtopk_iteration   select + gtopk_allreduce on a P-rank cluster,
//                         GtopkOptions::pooled off vs on
//
// Every optimized phase result is checked bit-identical against its legacy
// counterpart before timings are reported.
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "comm/cluster.hpp"
#include "core/aggregators.hpp"
#include "sparse/topk_merge.hpp"
#include "sparse/topk_select.hpp"
#include "sparse/wire.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace gtopk;

double now_s() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::vector<float> random_dense(std::size_t m, std::uint64_t seed) {
    util::Xoshiro256 rng(seed);
    std::vector<float> v(m);
    // Uniform, not gaussian: filling 32 ranks x 25e6 entries must not
    // dominate the bench's own startup.
    for (auto& x : v) x = rng.next_uniform(-1.0f, 1.0f);
    return v;
}

void require_equal(const sparse::SparseGradient& a, const sparse::SparseGradient& b,
                   const char* what) {
    if (a.dense_size != b.dense_size || a.indices != b.indices ||
        a.values != b.values) {
        throw std::logic_error(std::string("bit-identical check failed: ") + what);
    }
}

struct Phase {
    std::string name;
    double legacy_s = 0;
    double optimized_s = 0;
    double speedup() const { return optimized_s > 0 ? legacy_s / optimized_s : 0; }
};

struct Config {
    std::size_t m = 25'000'000;
    int world = 32;
    double rho = 0.001;
    int iters = 2;
    std::string out = "BENCH_hotpath.json";
    std::size_t k() const {
        return std::max<std::size_t>(
            1, static_cast<std::size_t>(std::llround(rho * static_cast<double>(m))));
    }
};

Phase bench_select(const Config& cfg, const std::vector<float>& dense) {
    Phase p{"select"};
    const std::size_t k = cfg.k();
    sparse::TopkWorkspace ws;
    sparse::SparseGradient out;
    // Warm both paths once (first-touch page faults, workspace growth) and
    // check equivalence on the warmed result.
    const sparse::SparseGradient ref = sparse::topk_select(dense, k);
    sparse::topk_select_into(dense, k, ws, out);
    require_equal(ref, out, "select");
    double t = now_s();
    for (int i = 0; i < cfg.iters; ++i) {
        const sparse::SparseGradient g = sparse::topk_select(dense, k);
        if (g.nnz() != k) throw std::logic_error("select nnz");
    }
    p.legacy_s = (now_s() - t) / cfg.iters;
    t = now_s();
    for (int i = 0; i < cfg.iters; ++i) {
        sparse::topk_select_into(dense, k, ws, out);
    }
    p.optimized_s = (now_s() - t) / cfg.iters;
    return p;
}

Phase bench_kth(const Config& cfg, const std::vector<float>& dense) {
    Phase p{"kth_magnitude"};
    const std::size_t k = cfg.k();
    sparse::TopkWorkspace ws;
    const float fresh = sparse::kth_largest_magnitude(dense, k);
    const float reused = sparse::kth_largest_magnitude(dense, k, ws);
    if (fresh != reused) throw std::logic_error("kth_magnitude mismatch");
    double t = now_s();
    float sink = 0;
    for (int i = 0; i < cfg.iters; ++i) {
        sink += sparse::kth_largest_magnitude(dense, k);
    }
    p.legacy_s = (now_s() - t) / cfg.iters;
    t = now_s();
    for (int i = 0; i < cfg.iters; ++i) {
        sink += sparse::kth_largest_magnitude(dense, k, ws);
    }
    p.optimized_s = (now_s() - t) / cfg.iters;
    if (sink == -1.0f) std::cout << "";  // keep the calls observable
    return p;
}

Phase bench_wire(const Config& cfg, const sparse::SparseGradient& g) {
    Phase p{"wire_roundtrip"};
    // More reps than the big-m phases: one round trip is microseconds.
    const int reps = cfg.iters * 200;
    std::vector<std::byte> buf;
    sparse::serialize_into(g, buf);
    require_equal(g, sparse::deserialize_view(buf).materialize(), "wire view");
    double t = now_s();
    double sink = 0;
    for (int i = 0; i < reps; ++i) {
        const sparse::SparseGradient back = sparse::deserialize(sparse::serialize(g));
        sink += back.values[0];
    }
    p.legacy_s = (now_s() - t) / reps;
    t = now_s();
    for (int i = 0; i < reps; ++i) {
        sparse::serialize_into(g, buf);
        const sparse::SparseGradientView v = sparse::deserialize_view(buf);
        sink += v.values[0];
    }
    p.optimized_s = (now_s() - t) / reps;
    if (sink == -1.0) std::cout << "";
    return p;
}

Phase bench_merge(const Config& cfg, const sparse::SparseGradient& a,
                  const sparse::SparseGradient& b) {
    Phase p{"merge"};
    const std::size_t k = cfg.k();
    const int reps = cfg.iters * 50;
    sparse::MergeScratch scratch;
    {
        sparse::SparseGradient acc = a;
        sparse::topk_merge_into(acc, b.dense_size, b.indices, b.values, k, scratch);
        require_equal(sparse::topk_merge(a, b, k), acc, "merge");
    }
    sparse::SparseGradient acc;
    double t = now_s();
    for (int i = 0; i < reps; ++i) {
        acc = a;
        acc = sparse::topk_merge(acc, b, k);
    }
    p.legacy_s = (now_s() - t) / reps;
    t = now_s();
    for (int i = 0; i < reps; ++i) {
        acc = a;
        sparse::topk_merge_into(acc, b.dense_size, b.indices, b.values, k, scratch);
    }
    p.optimized_s = (now_s() - t) / reps;
    return p;
}

/// One full gTop-k iteration's host cost (select + gTopKAllReduce) on a
/// P-rank in-process cluster, every rank selecting from its own m-sized
/// dense gradient. `pooled` toggles legacy vs optimized end to end.
double run_e2e(const Config& cfg, const std::vector<std::vector<float>>& grads,
               bool optimized, std::vector<float>* rank0_out) {
    const std::size_t k = cfg.k();
    const double t = now_s();
    comm::Cluster::run(cfg.world, comm::NetworkModel::free(), [&](comm::Communicator& comm) {
        const auto& dense = grads[static_cast<std::size_t>(comm.rank())];
        sparse::TopkWorkspace select_ws;
        sparse::SparseGradient local;
        core::GtopkWorkspace agg_ws;
        core::GtopkOptions options;
        options.pooled = optimized;
        if (optimized) options.workspace = &agg_ws;
        const sparse::TopkOptions select_opts{.sampled_prefilter = optimized};
        for (int i = 0; i < cfg.iters; ++i) {
            if (optimized) {
                sparse::topk_select_into(dense, k, select_ws, local, select_opts);
            } else {
                local = sparse::topk_select(dense, k);
            }
            core::GtopkResult res = core::gtopk_allreduce(comm, local, k, options);
            if (comm.rank() == 0 && i == 0 && rank0_out) *rank0_out = res.global.values;
        }
    });
    return (now_s() - t) / cfg.iters;
}

}  // namespace

int main(int argc, char** argv) {
    using util::TextTable;
    bench::quiet_logs();

    Config cfg;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char* flag) -> std::string {
            if (i + 1 >= argc) {
                throw std::invalid_argument(std::string(flag) + " needs a value");
            }
            return argv[++i];
        };
        if (arg == "--m") {
            cfg.m = static_cast<std::size_t>(std::stoull(next("--m")));
        } else if (arg == "--world") {
            cfg.world = std::stoi(next("--world"));
        } else if (arg == "--rho") {
            cfg.rho = std::stod(next("--rho"));
        } else if (arg == "--iters") {
            cfg.iters = std::stoi(next("--iters"));
        } else if (arg == "--out") {
            cfg.out = next("--out");
        } else if (arg == "--small") {
            cfg.m = 1 << 20;
            cfg.world = 8;
            cfg.iters = 3;
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            return 2;
        }
    }

    bench::print_header(
        "Hot-path A/B — legacy (owning) vs optimized (pooled/zero-copy/workspace)",
        "m=" + std::to_string(cfg.m) + " P=" + std::to_string(cfg.world) +
            " rho=" + std::to_string(cfg.rho) + " k=" + std::to_string(cfg.k()) +
            " iters=" + std::to_string(cfg.iters) + ", host wall-clock seconds");

    const auto dense = random_dense(cfg.m, 1);
    const auto a = sparse::topk_select(dense, cfg.k());
    const auto b = sparse::topk_select(random_dense(cfg.m, 2), cfg.k());

    std::vector<Phase> phases;
    phases.push_back(bench_select(cfg, dense));
    phases.push_back(bench_kth(cfg, dense));
    phases.push_back(bench_wire(cfg, a));
    phases.push_back(bench_merge(cfg, a, b));

    {
        std::vector<std::vector<float>> grads;
        grads.reserve(static_cast<std::size_t>(cfg.world));
        for (int r = 0; r < cfg.world; ++r) {
            grads.push_back(random_dense(cfg.m, 100 + static_cast<std::uint64_t>(r)));
        }
        Phase e2e{"e2e_gtopk_iteration"};
        std::vector<float> legacy_out, optimized_out;
        e2e.legacy_s = run_e2e(cfg, grads, /*optimized=*/false, &legacy_out);
        e2e.optimized_s = run_e2e(cfg, grads, /*optimized=*/true, &optimized_out);
        if (legacy_out != optimized_out) {
            throw std::logic_error("e2e legacy vs optimized results diverge");
        }
        phases.push_back(e2e);
    }

    TextTable table({"Phase", "legacy [s]", "optimized [s]", "speedup"});
    for (const Phase& p : phases) {
        table.add_row({p.name, TextTable::fmt(p.legacy_s, 6),
                       TextTable::fmt(p.optimized_s, 6),
                       TextTable::fmt(p.speedup(), 2) + "x"});
    }
    table.print(std::cout);

    std::ofstream out(cfg.out);
    if (!out) {
        std::cerr << "cannot open " << cfg.out << "\n";
        return 1;
    }
    out << "{\n  \"bench\": \"hotpath\",\n  \"config\": {\"m\": " << cfg.m
        << ", \"world\": " << cfg.world << ", \"rho\": " << cfg.rho
        << ", \"k\": " << cfg.k() << ", \"iters\": " << cfg.iters << "},\n"
        << "  \"phases\": {\n";
    for (std::size_t i = 0; i < phases.size(); ++i) {
        const Phase& p = phases[i];
        out << "    \"" << p.name << "\": {\"legacy_s\": " << p.legacy_s
            << ", \"optimized_s\": " << p.optimized_s
            << ", \"speedup\": " << p.speedup() << "}"
            << (i + 1 < phases.size() ? "," : "") << "\n";
    }
    out << "  }\n}\n";
    std::cout << "\nwritten to " << cfg.out << "\n";

    const double e2e_speedup = phases.back().speedup();
    std::cout << "e2e gTop-k iteration speedup: " << e2e_speedup << "x  "
              << (e2e_speedup >= 2.0 ? "(meets the >=2x acceptance bar)"
                                     : "(below the 2x bar)")
              << "\n";
    return 0;
}
