// google-benchmark microbenches for the hot kernels: top-k selection
// strategies, the ⊤ merge, wire (de)serialization, and host-side costs of
// the aggregation algorithms on a small cluster.
#include <benchmark/benchmark.h>

#include "comm/cluster.hpp"
#include "comm/fault_transport.hpp"
#include "core/aggregators.hpp"
#include "sparse/selection_policy.hpp"
#include "sparse/topk_merge.hpp"
#include "sparse/topk_select.hpp"
#include "sparse/wire.hpp"
#include "util/rng.hpp"

namespace {

using namespace gtopk;

std::vector<float> random_dense(std::size_t m, std::uint64_t seed) {
    util::Xoshiro256 rng(seed);
    std::vector<float> v(m);
    for (auto& x : v) x = static_cast<float>(rng.next_gaussian());
    return v;
}

void BM_TopkSelect(benchmark::State& state, sparse::TopkStrategy strategy) {
    const auto m = static_cast<std::size_t>(state.range(0));
    const std::size_t k = std::max<std::size_t>(1, m / 1000);
    const auto dense = random_dense(m, 1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sparse::topk_select(dense, k, strategy));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(m));
}
BENCHMARK_CAPTURE(BM_TopkSelect, nth_element, sparse::TopkStrategy::NthElement)
    ->Arg(100'000)
    ->Arg(1'000'000);
BENCHMARK_CAPTURE(BM_TopkSelect, heap, sparse::TopkStrategy::Heap)
    ->Arg(100'000)
    ->Arg(1'000'000);
BENCHMARK_CAPTURE(BM_TopkSelect, full_sort, sparse::TopkStrategy::FullSort)
    ->Arg(100'000)
    ->Arg(1'000'000);

void BM_TopkSelectWorkspace(benchmark::State& state, bool prefilter) {
    // Workspace-reusing selection (identical results to BM_TopkSelect /
    // nth_element), with and without the sampled-threshold pre-filter.
    const auto m = static_cast<std::size_t>(state.range(0));
    const std::size_t k = std::max<std::size_t>(1, m / 1000);
    const auto dense = random_dense(m, 1);
    sparse::TopkWorkspace ws;
    sparse::SparseGradient out;
    const sparse::TopkOptions options{.sampled_prefilter = prefilter};
    for (auto _ : state) {
        sparse::topk_select_into(dense, k, ws, out, options);
        benchmark::DoNotOptimize(out.indices.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(m));
}
BENCHMARK_CAPTURE(BM_TopkSelectWorkspace, exact, false)
    ->Arg(100'000)
    ->Arg(1'000'000);
BENCHMARK_CAPTURE(BM_TopkSelectWorkspace, prefilter, true)
    ->Arg(100'000)
    ->Arg(1'000'000);

void BM_SampledTopkSelect(benchmark::State& state) {
    // The DGC-style sampling estimate — compare against BM_TopkSelect to
    // see the practical answer to the paper's Sec. IV-E complaint that
    // exact selection is expensive.
    const auto m = static_cast<std::size_t>(state.range(0));
    const std::size_t k = std::max<std::size_t>(1, m / 1000);
    const auto dense = random_dense(m, 1);
    gtopk::util::Xoshiro256 rng(5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(gtopk::sparse::sampled_topk_select(dense, k, rng));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(m));
}
BENCHMARK(BM_SampledTopkSelect)->Arg(100'000)->Arg(1'000'000);

void BM_TopkMerge(benchmark::State& state) {
    const auto k = static_cast<std::size_t>(state.range(0));
    const auto a = sparse::topk_select(random_dense(100 * k, 2), k);
    const auto b = sparse::topk_select(random_dense(100 * k, 3), k);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sparse::topk_merge(a, b, k));
    }
}
BENCHMARK(BM_TopkMerge)->Arg(1000)->Arg(25'000);

void BM_WireRoundTrip(benchmark::State& state) {
    const auto k = static_cast<std::size_t>(state.range(0));
    const auto g = sparse::topk_select(random_dense(100 * k, 4), k);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sparse::deserialize(sparse::serialize(g)));
    }
}
BENCHMARK(BM_WireRoundTrip)->Arg(1000)->Arg(25'000);

void BM_TopkMergeInto(benchmark::State& state) {
    // In-place ⊤ merge with reused scratch — compare against BM_TopkMerge's
    // allocate-add-reselect chain.
    const auto k = static_cast<std::size_t>(state.range(0));
    const auto a = sparse::topk_select(random_dense(100 * k, 2), k);
    const auto b = sparse::topk_select(random_dense(100 * k, 3), k);
    sparse::MergeScratch scratch;
    sparse::SparseGradient acc;
    for (auto _ : state) {
        acc = a;
        sparse::topk_merge_into(acc, b.dense_size, b.indices, b.values, k, scratch);
        benchmark::DoNotOptimize(acc.indices.data());
    }
}
BENCHMARK(BM_TopkMergeInto)->Arg(1000)->Arg(25'000);

void BM_WireRoundTripPooled(benchmark::State& state) {
    // serialize_into a reused buffer + zero-copy view — compare against
    // BM_WireRoundTrip's owning serialize/deserialize pair.
    const auto k = static_cast<std::size_t>(state.range(0));
    const auto g = sparse::topk_select(random_dense(100 * k, 4), k);
    std::vector<std::byte> buf;
    for (auto _ : state) {
        sparse::serialize_into(g, buf);
        const sparse::SparseGradientView v = sparse::deserialize_view(buf);
        benchmark::DoNotOptimize(v.values.data());
    }
}
BENCHMARK(BM_WireRoundTripPooled)->Arg(1000)->Arg(25'000);

void BM_GtopkAllreduceHostCost(benchmark::State& state) {
    // Host-side (wall clock) cost of the full tree aggregation on a small
    // in-process cluster — measures our implementation overhead, not the
    // modeled network.
    const int world = static_cast<int>(state.range(0));
    const std::size_t k = 1000;
    for (auto _ : state) {
        comm::Cluster::run(world, comm::NetworkModel::free(),
                           [&](comm::Communicator& comm) {
                               const auto local = sparse::topk_select(
                                   random_dense(50'000, static_cast<std::uint64_t>(
                                                            comm.rank() + 10)),
                                   k);
                               benchmark::DoNotOptimize(
                                   core::gtopk_allreduce(comm, local, k));
                           });
    }
}
BENCHMARK(BM_GtopkAllreduceHostCost)->Arg(2)->Arg(4)->Arg(8);

void BM_GtopkAllreduceFaultTransport(benchmark::State& state) {
    // Same aggregation as BM_GtopkAllreduceHostCost but through a
    // FaultInjectingTransport with an EMPTY plan: the delta against the
    // plain run is the decorator's pure passthrough overhead (per-message
    // rule scan + counters), which must stay negligible so chaos tests run
    // at test-suite speed.
    const int world = static_cast<int>(state.range(0));
    const std::size_t k = 1000;
    for (auto _ : state) {
        comm::FaultInjectingTransport transport(world, comm::FaultPlan{});
        comm::Cluster::run_on(transport, comm::NetworkModel::free(),
                              [&](comm::Communicator& comm) {
                                  const auto local = sparse::topk_select(
                                      random_dense(50'000,
                                                   static_cast<std::uint64_t>(
                                                       comm.rank() + 10)),
                                      k);
                                  benchmark::DoNotOptimize(
                                      core::gtopk_allreduce(comm, local, k));
                              });
    }
}
BENCHMARK(BM_GtopkAllreduceFaultTransport)->Arg(2)->Arg(4)->Arg(8);

void BM_RingAllreduceHostCost(benchmark::State& state) {
    const int world = static_cast<int>(state.range(0));
    for (auto _ : state) {
        comm::Cluster::run(world, comm::NetworkModel::free(),
                           [&](comm::Communicator& comm) {
                               auto data = random_dense(
                                   50'000, static_cast<std::uint64_t>(comm.rank()));
                               collectives::allreduce_sum_ring(comm, data);
                               benchmark::DoNotOptimize(data.data());
                           });
    }
}
BENCHMARK(BM_RingAllreduceHostCost)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
