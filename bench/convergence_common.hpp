// Shared harness for the convergence benches (Figs. 1, 5, 6, 7, 12-14):
// runs distributed training for a set of configurations over the same data
// and prints loss/accuracy series per epoch, one column per configuration.
#pragma once

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "comm/network_model.hpp"
#include "train/trainer.hpp"
#include "util/table.hpp"

namespace gtopk::bench {

struct Series {
    std::string label;
    train::TrainResult result;
};

inline void print_loss_series(const std::vector<Series>& series) {
    using util::TextTable;
    std::vector<std::string> header{"epoch"};
    for (const auto& s : series) header.push_back(s.label + " loss");
    TextTable table(header);
    const std::size_t epochs = series.front().result.epochs.size();
    for (std::size_t e = 0; e < epochs; ++e) {
        std::vector<std::string> row{TextTable::fmt_int(static_cast<long long>(e))};
        for (const auto& s : series) {
            row.push_back(TextTable::fmt(s.result.epochs[e].train_loss, 4));
        }
        table.add_row(std::move(row));
    }
    table.print(std::cout);
}

inline void print_accuracy_series(const std::vector<Series>& series) {
    using util::TextTable;
    std::vector<std::string> header{"epoch"};
    for (const auto& s : series) header.push_back(s.label + " val-acc");
    TextTable table(header);
    const std::size_t epochs = series.front().result.epochs.size();
    for (std::size_t e = 0; e < epochs; ++e) {
        std::vector<std::string> row{TextTable::fmt_int(static_cast<long long>(e))};
        for (const auto& s : series) {
            row.push_back(TextTable::fmt(s.result.epochs[e].val_accuracy, 4));
        }
        table.add_row(std::move(row));
    }
    table.print(std::cout);
}

/// Run the same (factory, data) under several configs on a zero-cost
/// network (convergence benches care about optimization, not timing).
inline std::vector<Series> run_configs(
    int world, const std::vector<std::pair<std::string, train::TrainConfig>>& configs,
    const train::ModelFactory& factory, const train::TrainBatchProvider& batches,
    const train::EvalBatchProvider& eval) {
    std::vector<Series> out;
    for (const auto& [label, config] : configs) {
        std::cout << "  running: " << label << " ..." << std::flush;
        out.push_back(
            {label, train::train_distributed(world, comm::NetworkModel::free(), config,
                                             factory, batches, eval)});
        std::cout << " done (final loss "
                  << out.back().result.epochs.back().train_loss << ")\n";
    }
    return out;
}

}  // namespace gtopk::bench
