#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <sstream>
#include <string>

#include "comm/cluster.hpp"
#include "comm/tags.hpp"
#include "comm/network_model.hpp"
#include "core/aggregators.hpp"
#include "data/sampler.hpp"
#include "data/synthetic_images.hpp"
#include "nn/model_zoo.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sparse/topk_select.hpp"
#include "train/trainer.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace {

using gtopk::comm::Cluster;
using gtopk::comm::Communicator;
using gtopk::comm::NetworkModel;
using gtopk::comm::kTagTestData;
using gtopk::comm::VirtualClock;
using gtopk::obs::Histogram;
using gtopk::obs::PhaseTotals;
using gtopk::obs::ScopedSpan;
using gtopk::obs::Span;
using gtopk::obs::Tracer;

// --- A minimal recursive-descent JSON validator: enough of RFC 8259 to
// prove the Chrome-trace export is well-formed (objects, arrays, strings
// with escapes, numbers, literals). Returns false on any syntax error.
class JsonValidator {
public:
    explicit JsonValidator(const std::string& text) : s_(text) {}

    bool valid() {
        skip_ws();
        if (!value()) return false;
        skip_ws();
        return pos_ == s_.size();
    }

private:
    bool value() {
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
            case '{': return object();
            case '[': return array();
            case '"': return string();
            case 't': return literal("true");
            case 'f': return literal("false");
            case 'n': return literal("null");
            default: return number();
        }
    }
    bool object() {
        ++pos_;  // '{'
        skip_ws();
        if (peek() == '}') { ++pos_; return true; }
        for (;;) {
            skip_ws();
            if (!string()) return false;
            skip_ws();
            if (peek() != ':') return false;
            ++pos_;
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }
    bool array() {
        ++pos_;  // '['
        skip_ws();
        if (peek() == ']') { ++pos_; return true; }
        for (;;) {
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }
    bool string() {
        if (peek() != '"') return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size()) return false;
                const char e = s_[pos_];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= s_.size() || !std::isxdigit(
                                static_cast<unsigned char>(s_[pos_]))) {
                            return false;
                        }
                    }
                } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
                    return false;
                }
            }
            ++pos_;
        }
        if (pos_ >= s_.size()) return false;
        ++pos_;  // closing quote
        return true;
    }
    bool number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
        if (peek() == '.') {
            ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-') ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
        }
        return pos_ > start;
    }
    bool literal(const char* word) {
        const std::size_t n = std::strlen(word);
        if (s_.compare(pos_, n, word) != 0) return false;
        pos_ += n;
        return true;
    }
    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
    void skip_ws() {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_]))) {
            ++pos_;
        }
    }

    const std::string& s_;
    std::size_t pos_ = 0;
};

Span make_span(int rank, const char* name, double v0, double v1) {
    Span s;
    s.name = name;
    s.category = "test";
    s.rank = rank;
    s.v_begin_s = v0;
    s.v_end_s = v1;
    return s;
}

TEST(MetricsTest, CounterAndGauge) {
    gtopk::obs::MetricsRegistry reg;
    reg.counter("a").add(3);
    reg.counter("a").add(2);
    EXPECT_EQ(reg.counter("a").value(), 5u);
    EXPECT_EQ(reg.find_counter("missing"), nullptr);

    reg.gauge("g").set(2.5);
    reg.gauge("g").set(1.0);
    EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 1.0);
    EXPECT_DOUBLE_EQ(reg.gauge("g").max(), 2.5);
}

TEST(MetricsTest, HistogramLog2Buckets) {
    Histogram h;
    // bucket 0 <- 0; bucket 1 <- 1; bucket 2 <- {2, 3}; bucket 3 <- {4..7}
    for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 7ull}) h.record(v);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.sum(), 17u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 2u);
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(Histogram::bucket_lo(3), 4u);
    EXPECT_EQ(Histogram::bucket_hi(3), 7u);
    EXPECT_NEAR(h.mean(), 17.0 / 6.0, 1e-12);
}

TEST(MetricsTest, HistogramQuantiles) {
    Histogram empty;
    EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);

    // 90 samples of 1 (an exact single-value bucket), 10 large outliers.
    Histogram h;
    for (int i = 0; i < 90; ++i) h.record(1);
    for (int i = 0; i < 10; ++i) h.record(1u << 20);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.9), 1.0);
    // p95 lands inside the outlier bucket, interpolated within its range.
    const double p95 = h.quantile(0.95);
    EXPECT_GE(p95, static_cast<double>(Histogram::bucket_lo(21)));
    EXPECT_LE(p95, static_cast<double>(Histogram::bucket_hi(21)));
    // Monotone in q, clamped at the ends.
    EXPECT_LE(h.quantile(0.50), h.quantile(0.95));
    EXPECT_LE(h.quantile(0.95), h.quantile(0.99));
    EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
    EXPECT_LE(h.quantile(2.0), static_cast<double>(Histogram::bucket_hi(21)));
}

TEST(MetricsTest, GaugeResetMaxRearmsTheHighWaterMark) {
    gtopk::obs::MetricsRegistry reg;
    auto& g = reg.gauge("depth");
    g.set(5.0);
    g.set(2.0);
    EXPECT_DOUBLE_EQ(g.max(), 5.0);
    g.reset_max();
    // The mark restarts from the CURRENT value, not zero.
    EXPECT_DOUBLE_EQ(g.max(), 2.0);
    g.set(3.0);
    EXPECT_DOUBLE_EQ(g.max(), 3.0);
}

TEST(MetricsTest, WriteTextAndJsonCarryQuantiles) {
    gtopk::obs::MetricsRegistry reg;
    reg.counter("msgs").add(7);
    reg.gauge("depth").set(2.5);
    auto& h = reg.histogram("bytes");
    for (int i = 0; i < 10; ++i) h.record(64);

    std::ostringstream text;
    reg.write_text(text);
    const std::string t = text.str();
    EXPECT_NE(t.find("msgs 7"), std::string::npos) << t;
    EXPECT_NE(t.find("depth"), std::string::npos);
    EXPECT_NE(t.find("p95="), std::string::npos);

    std::ostringstream json;
    reg.write_json(json);
    const std::string j = json.str();
    EXPECT_TRUE(JsonValidator(j).valid()) << j;
    EXPECT_NE(j.find("\"p50\""), std::string::npos);
    EXPECT_NE(j.find("\"p95\""), std::string::npos);
    EXPECT_NE(j.find("\"p99\""), std::string::npos);
}

TEST(TracerTest, RingBufferWraparound) {
    Tracer tracer(1, /*capacity_per_rank=*/4);
    for (int i = 0; i < 10; ++i) {
        Span s = make_span(0, "s", i, i + 1);
        s.attrs.round = i;
        tracer.record(s);
    }
    EXPECT_EQ(tracer.recorded(0), 10u);
    EXPECT_EQ(tracer.dropped(0), 6u);
    const auto spans = tracer.rank_spans(0);
    ASSERT_EQ(spans.size(), 4u);
    // Oldest-first: the surviving spans are rounds 6, 7, 8, 9.
    for (int i = 0; i < 4; ++i) EXPECT_EQ(spans[static_cast<std::size_t>(i)].attrs.round, 6 + i);
}

TEST(TracerTest, ScopedSpanNesting) {
    Tracer tracer(1);
    VirtualClock clock;
    {
        ScopedSpan outer(&tracer, clock, 0, "outer", "test");
        clock.advance(1.0);
        {
            ScopedSpan inner(&tracer, clock, 0, "inner", "test");
            clock.advance(2.0);
        }
        clock.advance(1.0);
    }
    ScopedSpan after(&tracer, clock, 0, "after", "test");
    after.finish();

    const auto spans = tracer.rank_spans(0);
    ASSERT_EQ(spans.size(), 3u);
    // Children close (and record) before parents.
    EXPECT_STREQ(spans[0].name, "inner");
    EXPECT_EQ(spans[0].depth, 1);
    EXPECT_STREQ(spans[1].name, "outer");
    EXPECT_EQ(spans[1].depth, 0);
    EXPECT_STREQ(spans[2].name, "after");
    EXPECT_EQ(spans[2].depth, 0);  // depth resets once the stack unwinds
    // The child's virtual window nests inside the parent's.
    EXPECT_GE(spans[0].v_begin_s, spans[1].v_begin_s);
    EXPECT_LE(spans[0].v_end_s, spans[1].v_end_s);
    EXPECT_DOUBLE_EQ(spans[0].v_end_s - spans[0].v_begin_s, 2.0);
    EXPECT_DOUBLE_EQ(spans[1].v_end_s - spans[1].v_begin_s, 4.0);
    // Host stamps are monotone over the span.
    EXPECT_GE(spans[1].h_end_s, spans[1].h_begin_s);
}

TEST(TracerTest, DisabledTracerAddsNoSpans) {
    // Null-tracer ScopedSpan is a no-op (and attrs stay writable).
    VirtualClock clock;
    {
        ScopedSpan span(nullptr, clock, 0, "ghost", "test");
        span.attrs().bytes = 123;
        EXPECT_FALSE(span.enabled());
    }

    // A cluster run WITHOUT a tracer leaves an existing tracer untouched.
    Tracer tracer(2);
    Cluster::run(2, NetworkModel::free(), [](Communicator& comm) {
        EXPECT_EQ(comm.tracer(), nullptr);
        std::vector<float> v{1.0f, 2.0f};
        if (comm.rank() == 0) {
            comm.send_vec<float>(1, kTagTestData, v);
        } else {
            (void)comm.recv_vec<float>(0, kTagTestData);
        }
    });
    EXPECT_EQ(tracer.recorded(0), 0u);
    EXPECT_EQ(tracer.recorded(1), 0u);
}

TEST(TracerTest, ClusterRejectsUndersizedTracer) {
    Tracer tracer(2);
    EXPECT_THROW(Cluster::run(4, NetworkModel::free(),
                              [](Communicator&) {}, &tracer),
                 std::invalid_argument);
}

TEST(TracerTest, ChromeTraceJsonIsWellFormed) {
    const int world = 4;
    Tracer tracer(world);
    Cluster::run(world, NetworkModel::one_gbps_ethernet(),
                 [](Communicator& comm) {
                     gtopk::util::Xoshiro256 rng(
                         17 + static_cast<std::uint64_t>(comm.rank()));
                     std::vector<float> dense(4096);
                     for (auto& x : dense) x = static_cast<float>(rng.next_gaussian());
                     const auto local = gtopk::sparse::topk_select(dense, 64);
                     (void)gtopk::core::gtopk_allreduce(comm, local, 64);
                 },
                 &tracer);

    std::ostringstream oss;
    tracer.write_chrome_trace(oss);
    const std::string json = oss.str();

    EXPECT_TRUE(JsonValidator(json).valid()) << json.substr(0, 400);
    // Required span inventory (ISSUE acceptance): merge rounds, broadcast,
    // point-to-point phases, per-rank process metadata.
    EXPECT_NE(json.find("\"gtopk.merge_round\""), std::string::npos);
    EXPECT_NE(json.find("\"broadcast\""), std::string::npos);
    EXPECT_NE(json.find("\"send\""), std::string::npos);
    EXPECT_NE(json.find("\"recv_wait\""), std::string::npos);
    EXPECT_NE(json.find("\"rank 3\""), std::string::npos);
    EXPECT_NE(json.find("\"virtual time\""), std::string::npos);
    EXPECT_NE(json.find("\"metrics\""), std::string::npos);
}

TEST(TracerTest, ChromeTraceReportsDroppedSpanCounts) {
    Tracer tracer(1, /*capacity_per_rank=*/4);
    VirtualClock clock;
    for (int i = 0; i < 10; ++i) {
        Span s = make_span(0, "s", i, i + 1);
        tracer.record(s);
    }
    std::ostringstream oss;
    tracer.write_chrome_trace(oss);
    const std::string json = oss.str();
    EXPECT_TRUE(JsonValidator(json).valid()) << json.substr(0, 400);
    // The span_buffer metadata row makes ring truncation visible to anyone
    // reading the timeline: 10 recorded, 6 fell off the 4-deep ring.
    EXPECT_NE(json.find("\"span_buffer\""), std::string::npos);
    EXPECT_NE(json.find("\"recorded\":10"), std::string::npos);
    EXPECT_NE(json.find("\"dropped\":6"), std::string::npos);
}

TEST(TracerTest, TrainerPhaseTotalsMatchAccumulators) {
    const int workers = 4;
    gtopk::data::SyntheticImageDataset::Config dcfg;
    dcfg.image_size = 6;
    gtopk::data::SyntheticImageDataset dataset(dcfg, /*seed=*/1);
    gtopk::data::ShardedSampler sampler(1024, 256, workers, /*seed=*/2);
    gtopk::nn::MlpConfig mcfg;
    mcfg.input_dim = dataset.feature_dim();
    mcfg.hidden_dims = {16};

    gtopk::train::TrainConfig config;
    config.algorithm = gtopk::train::Algorithm::GtopkSsgd;
    config.epochs = 2;
    config.iters_per_epoch = 10;
    config.density = 0.02;

    gtopk::obs::Tracer tracer(workers);
    config.tracer = &tracer;

    const auto result = gtopk::train::train_distributed(
        workers, gtopk::comm::NetworkModel::one_gbps_ethernet(), config,
        [&](std::uint64_t seed) { return gtopk::nn::make_mlp(mcfg, seed); },
        [&](std::int64_t step, int rank) {
            return dataset.batch_flat(sampler.batch_indices(step, rank, 8));
        },
        {});

    const PhaseTotals& tp = result.rank0_traced_phases;
    EXPECT_EQ(tp.iterations, 20u);
    // Virtual time is deterministic: trace and accumulator read the same
    // clock, so the comm phase matches to double precision.
    EXPECT_NEAR(tp.mean_comm_virtual_s(), result.mean_comm_virtual_s,
                1e-12 * (1.0 + result.mean_comm_virtual_s));
    // Host-timed phases differ only by the span bookkeeping outside the
    // stamps; allow 1% plus a fixed few-microsecond slack for the stamp
    // bookkeeping itself, which dominates once a phase shrinks to
    // microseconds (the workspace-reusing select under TSan).
    EXPECT_NEAR(tp.mean_compute_s(), result.mean_compute_s,
                0.01 * result.mean_compute_s + 1e-5);
    EXPECT_NEAR(tp.mean_compress_s(), result.mean_compress_s,
                0.01 * result.mean_compress_s + 1e-5);

    // Every rank recorded spans; none wrapped at this scale.
    for (int r = 0; r < workers; ++r) {
        EXPECT_GT(tracer.recorded(r), 0u) << "rank " << r;
        EXPECT_EQ(tracer.dropped(r), 0u) << "rank " << r;
    }
    // gTop-k merge rounds happened on every iteration: the P=4 tree does
    // 3 pairwise merges per invocation (2 in round 0, 1 in round 1), each
    // counted once on its receiving rank.
    EXPECT_EQ(tracer.metrics().counter("gtopk.merge_rounds").value(),
              static_cast<std::uint64_t>(20 * 3));
}

TEST(LogFormatTest, TimestampAndRankPrefix) {
    using gtopk::util::format_log_line;
    using gtopk::util::LogLevel;
    const std::string with_rank = format_log_line(LogLevel::Info, "hello", 3);
    // "[I HH:MM:SS.mmm r03] hello"
    ASSERT_GE(with_rank.size(), 21u);
    EXPECT_EQ(with_rank[0], '[');
    EXPECT_EQ(with_rank[1], 'I');
    EXPECT_EQ(with_rank[5], ':');
    EXPECT_EQ(with_rank[8], ':');
    EXPECT_EQ(with_rank[11], '.');
    EXPECT_NE(with_rank.find(" r03] hello"), std::string::npos);

    const std::string no_rank = format_log_line(LogLevel::Warn, "x", -1);
    EXPECT_EQ(no_rank[1], 'W');
    EXPECT_EQ(no_rank.find(" r"), std::string::npos);
    EXPECT_NE(no_rank.find("] x"), std::string::npos);
}

}  // namespace
