// Runtime conformance: live threaded runs, recorded through
// comm::RecordingTransport, must emit EXACTLY the message streams the
// static schedule generators predict — same edges, same absolute tags,
// same byte counts, zero diff. This closes commcheck's loop: the verified
// spec is provably the executed protocol.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "analysis/conformance.hpp"
#include "collectives/collectives.hpp"
#include "collectives/schedule.hpp"
#include "comm/cluster.hpp"
#include "comm/recording_transport.hpp"
#include "comm/tags.hpp"
#include "data/sampler.hpp"
#include "data/synthetic_images.hpp"
#include "nn/model_zoo.hpp"
#include "sparse/wire.hpp"
#include "train/trainer.hpp"

namespace gtopk {
namespace {

using analysis::SchedulePredictor;
using analysis::diff_conformance;
using collectives::AllgatherAlgo;
using collectives::BcastAlgo;
using comm::NetworkModel;
using train::Algorithm;
using train::TrainConfig;

// ---------------------------------------------------------------------------
// Raw collectives: a fixed SPMD sequence over a RecordingTransport diffs
// clean against the same generators, on power-of-two AND awkward worlds.
// ---------------------------------------------------------------------------

void expect_zero_diff(const SchedulePredictor& pred,
                      const comm::RecordingTransport& rec) {
    const std::vector<comm::RecordedMsg> log = rec.log();
    const auto report = diff_conformance(pred, log);
    EXPECT_TRUE(report.ok) << report.divergence;
    EXPECT_EQ(report.expected_messages, report.actual_messages);
    EXPECT_EQ(report.matched_messages, report.expected_messages);
}

class CollectivesConformance : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Worlds, CollectivesConformance,
                         ::testing::Values(2, 3, 4, 5, 8));

TEST_P(CollectivesConformance, MixedSequenceDiffsClean) {
    const int world = GetParam();
    comm::RecordingTransport rec(world);
    std::vector<int> end_cursor(static_cast<std::size_t>(world), -1);

    comm::Cluster::run_on(rec, NetworkModel::free(), [&](comm::Communicator& c) {
        const int rank = c.rank();
        collectives::barrier(c);
        std::vector<float> b(6, static_cast<float>(rank));
        collectives::broadcast(c, b, /*root=*/1);
        std::vector<float> v(17, 1.0f);
        collectives::allreduce_sum_ring(c, v);
        const double trio[3] = {1.0, 2.0, static_cast<double>(rank)};
        (void)collectives::allgather<double>(c, std::span<const double>(trio, 3));
        std::vector<float> uneven(static_cast<std::size_t>(rank) + 1, 2.0f);
        (void)collectives::allgatherv<float>(c, uneven);
        std::vector<float> g3(3, static_cast<float>(rank));
        (void)collectives::gather<float>(c, g3, /*root=*/world - 1);
        (void)collectives::reduce_sum<float>(c, v, /*root=*/0);
        end_cursor[static_cast<std::size_t>(rank)] = c.fresh_tag_cursor();
    });

    // The predictor mirrors the worker's calls one-for-one, turning tag
    // offsets into absolute tags by replaying the SPMD fresh-tag cursor.
    SchedulePredictor pred(world);
    pred.add(collectives::barrier_schedule(world));
    pred.add(collectives::broadcast_schedule(world, 1, 6 * 4));
    pred.add(collectives::allreduce_ring_schedule(world, 17, 4));
    pred.add(collectives::allgather_schedule(world, 3, 8));
    std::vector<std::int64_t> uneven_bytes;
    for (int r = 0; r < world; ++r) uneven_bytes.push_back(4 * (r + 1));
    pred.add(collectives::allgatherv_schedule(world, uneven_bytes));
    pred.add(collectives::gather_schedule(world, world - 1, 3 * 4));
    pred.add(collectives::reduce_schedule(world, 0, 17 * 4));
    expect_zero_diff(pred, rec);

    // SPMD lockstep: every rank's fresh-tag cursor ends exactly where the
    // predictor's replay says it must.
    for (int r = 0; r < world; ++r) {
        EXPECT_EQ(end_cursor[static_cast<std::size_t>(r)], pred.fresh_cursor());
    }
}

TEST(CollectivesConformance, DivergenceIsDetectedAndNamed) {
    // Predict a different payload size than the run ships: the diff must
    // fire with a readable first-divergence report, not silently pass.
    const int world = 4;
    comm::RecordingTransport rec(world);
    comm::Cluster::run_on(rec, NetworkModel::free(), [&](comm::Communicator& c) {
        std::vector<float> v(17, 1.0f);
        collectives::allreduce_sum_ring(c, v);
    });
    SchedulePredictor pred(world);
    pred.add(collectives::allreduce_ring_schedule(world, 18, 4));  // wrong m
    const auto report = diff_conformance(pred, rec.log());
    EXPECT_FALSE(report.ok);
    EXPECT_FALSE(report.divergence.empty());
    EXPECT_NE(report.divergence.find("allreduce.ring"), std::string::npos)
        << report.divergence;
}

// ---------------------------------------------------------------------------
// Full training runs: every aggregation algorithm's end-to-end message
// stream (iterations x epochs, plus the per-epoch loss allgather) matches
// the statically generated schedules exactly.
// ---------------------------------------------------------------------------

struct TrainHarness {
    data::SyntheticImageDataset dataset;
    data::ShardedSampler sampler;
    nn::MlpConfig mlp;
    std::int64_t batch = 8;

    explicit TrainHarness(int world)
        : dataset(
              []() {
                  data::SyntheticImageDataset::Config cfg;
                  cfg.image_size = 8;
                  cfg.noise_std = 0.6f;
                  return cfg;
              }(),
              1234),
          sampler(2048, 256, world, 99) {
        mlp.input_dim = dataset.feature_dim();
        mlp.hidden_dims = {16};
        mlp.classes = 10;
    }

    train::ModelFactory factory() const {
        return [cfg = mlp](std::uint64_t seed) { return nn::make_mlp(cfg, seed); };
    }
    train::TrainBatchProvider train_batches() const {
        return [this](std::int64_t step, int rank) {
            return dataset.batch_flat(sampler.batch_indices(step, rank, batch));
        };
    }
};

class TrainerConformance : public ::testing::TestWithParam<Algorithm> {};
INSTANTIATE_TEST_SUITE_P(Algorithms, TrainerConformance,
                         ::testing::Values(Algorithm::DenseSsgd, Algorithm::TopkSsgd,
                                           Algorithm::GtopkSsgd,
                                           Algorithm::NaiveGtopkSsgd));

TEST_P(TrainerConformance, LiveRunMatchesStaticScheduleExactly) {
    const int world = 4;
    TrainHarness h(world);

    TrainConfig config;
    config.algorithm = GetParam();
    config.epochs = 2;
    config.iters_per_epoch = 3;
    config.density = 0.01;
    config.check_invariants = false;  // keeps the comm pattern = the paper's

    comm::RecordingTransport rec(world);
    config.transport = &rec;
    (void)train::train_distributed(world, NetworkModel::free(), config, h.factory(),
                                   h.train_batches(), train::EvalBatchProvider{});

    // Reconstruct the run's comm plan from the generators alone.
    const auto probe = h.factory()(config.model_seed);
    const std::size_t m = probe->flat_params().size();
    // Mirrors the trainer's k derivation (no warmup configured).
    const std::size_t k = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::llround(config.density * static_cast<double>(m))));
    // ExactTopk keeps nnz == k through every merge (a union of k-sets has
    // at least k entries), so the sparse wire payloads are statically known.
    const auto wire = static_cast<std::int64_t>(sparse::wire_size_bytes(k));

    SchedulePredictor pred(world);
    const std::vector<std::int64_t> wire_per_rank(static_cast<std::size_t>(world),
                                                  wire);
    for (int epoch = 0; epoch < config.epochs; ++epoch) {
        for (int it = 0; it < config.iters_per_epoch; ++it) {
            switch (config.algorithm) {
                case Algorithm::DenseSsgd:
                    pred.add(collectives::allreduce_ring_schedule(
                        world, static_cast<std::int64_t>(m), 4));
                    break;
                case Algorithm::TopkSsgd:
                    pred.add(collectives::allgather_schedule(
                        world, wire, 1, AllgatherAlgo::RecursiveDoubling));
                    break;
                case Algorithm::GtopkSsgd:
                    pred.add(collectives::gtopk_merge_schedule(world, wire));
                    pred.add(collectives::broadcast_schedule(
                        world, 0, wire, BcastAlgo::BinomialTree));
                    break;
                case Algorithm::NaiveGtopkSsgd:
                    pred.add(collectives::allgatherv_schedule(world, wire_per_rank));
                    break;
                default:
                    FAIL() << "unexpected algorithm";
            }
        }
        // End-of-epoch loss averaging: one double per rank, ring allgather.
        pred.add(collectives::allgather_schedule(world, 1, 8, AllgatherAlgo::Ring));
    }

    expect_zero_diff(pred, rec);
}

}  // namespace
}  // namespace gtopk
