// Self-healing over real TCP (ctest label: tcp) — the end-to-end gates for
// the wire ARQ + reconnect + elastic-regroup stack:
//
//   * a 10% seeded drop/corrupt plan injected UNDER the reliable layer in
//     every process (launched through gtopkrun, the production path) is
//     fully masked by the wire ARQ: final params bit-identical to the
//     fault-free in-process baseline;
//   * seeded SOCKET chaos — hard connection kills and mid-frame
//     truncations — forces real reconnect/session-resume cycles under
//     load, and the run is STILL bit-identical (the resumed link replays
//     the lost frames from the ARQ buffer);
//   * a real mid-run SIGKILL of one rank (uncatchable, kernel-level, no
//     farewell) routes the survivors through heartbeat detection, wire
//     membership regroup, checkpoint rollback and a converged finish, with
//     a parseable flight-recorder bundle explaining the incident.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "tcp_parity_common.hpp"

namespace gtopk {
namespace {

using tcptest::ParityScenario;

// ---------------------------------------------------------------------------
// Process plumbing (same shape as tcp_transport_test.cpp).

std::string binary_beside_self(const char* name) {
    const std::filesystem::path self =
        std::filesystem::read_symlink("/proc/self/exe");
    return (self.parent_path() / name).string();
}

std::string gtopkrun_binary() {
    const std::filesystem::path self =
        std::filesystem::read_symlink("/proc/self/exe");
    return (self.parent_path().parent_path() / "tools" / "gtopkrun").string();
}

std::string fresh_dir() {
    std::string tmpl = "/tmp/gtopk_tcprec_XXXXXX";
    char* dir = ::mkdtemp(tmpl.data());
    EXPECT_NE(dir, nullptr);
    return dir ? std::string(dir) : std::string("/tmp");
}

pid_t spawn(const std::vector<std::string>& args) {
    const pid_t pid = ::fork();
    if (pid != 0) return pid;
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    ::_exit(127);
}

/// Exit code, or 128+sig for a signal death (so SIGKILL reads as 137).
int wait_exit(pid_t pid) {
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0) {
        if (errno != EINTR) return -1;
    }
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
    return -1;
}

/// Parse a worker --stats-out dump: "key value" lines plus one
/// "members a b c..." line.
struct WorkerStats {
    std::map<std::string, double> scalar;
    std::vector<int> members;

    double get(const std::string& key) const {
        const auto it = scalar.find(key);
        EXPECT_NE(it, scalar.end()) << "stats file missing key: " << key;
        return it == scalar.end() ? 0.0 : it->second;
    }
};

WorkerStats read_stats(const std::string& path) {
    WorkerStats st;
    std::ifstream is(path);
    EXPECT_TRUE(is.good()) << path;
    std::string line;
    while (std::getline(is, line)) {
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "members") {
            int m = 0;
            while (ls >> m) st.members.push_back(m);
        } else if (!key.empty()) {
            double v = 0;
            ls >> v;
            st.scalar[key] = v;
        }
    }
    return st;
}

void expect_params_match_baseline(const std::string& file,
                                  const std::vector<float>& baseline,
                                  const std::string& who) {
    const std::vector<float> params = tcptest::read_params(file);
    ASSERT_EQ(params.size(), baseline.size()) << who;
    EXPECT_EQ(0, std::memcmp(params.data(), baseline.data(),
                             params.size() * sizeof(float)))
        << who << " diverged from the fault-free in-process baseline";
}

// ---------------------------------------------------------------------------
// Wire ARQ under a 10% drop + 10% corruption plan, production launch path.

TEST(TcpRecovery, TenPercentDropAndCorruptionOverGtopkrunIsBitIdentical) {
    const int world = 4;
    ParityScenario scenario(world);
    const train::TrainResult baseline =
        scenario.run(scenario.config(train::Algorithm::GtopkSsgd));
    ASSERT_FALSE(baseline.final_params.empty());

    const std::string dir = fresh_dir();
    // gtopkrun wires rank/world/rendezvous through the environment; the
    // worker suffixes output paths with ".<rank>".
    const int code = wait_exit(spawn(
        {gtopkrun_binary(), "-n", std::to_string(world), "--",
         binary_beside_self("tcp_rank_worker"), "--algo", "gtopk",
         "--out", dir + "/params.bin", "--stats-out", dir + "/stats.txt",
         "--reliable", "--drop-prob", "0.10", "--corrupt-prob", "0.10",
         "--fault-seed", "11"}));
    ASSERT_EQ(code, 0) << "gtopkrun reported a failing rank";

    std::uint64_t drops = 0;
    std::uint64_t corruptions = 0;
    for (int r = 0; r < world; ++r) {
        const std::string sfx = "." + std::to_string(r);
        expect_params_match_baseline(dir + "/params.bin" + sfx,
                                     baseline.final_params,
                                     "rank " + std::to_string(r));
        const WorkerStats st = read_stats(dir + "/stats.txt" + sfx);
        drops += static_cast<std::uint64_t>(st.get("injected_drops"));
        corruptions +=
            static_cast<std::uint64_t>(st.get("injected_corruptions"));
    }
    // Guard against a vacuous pass: the plan really injected faults, and
    // the ARQ really recovered every one of them.
    EXPECT_GT(drops, 0u);
    EXPECT_GT(corruptions, 0u);
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Socket chaos: seeded connection kills + mid-frame truncations force the
// reconnect/session-resume path under load; the resumed link must replay
// lost frames from the ARQ buffer with zero trajectory impact.

TEST(TcpRecovery, SeededSocketKillsReconnectAndStayBitIdentical) {
    const int world = 4;
    ParityScenario scenario(world);
    const train::TrainResult baseline =
        scenario.run(scenario.config(train::Algorithm::GtopkSsgd));

    const std::string dir = fresh_dir();
    const int port = tcptest::probe_free_port();
    ASSERT_GT(port, 0);
    const std::string bin = binary_beside_self("tcp_rank_worker");
    std::vector<pid_t> pids;
    for (int r = 0; r < world; ++r) {
        pids.push_back(spawn(
            {bin, "--rank", std::to_string(r), "--world", std::to_string(world),
             "--port", std::to_string(port), "--algo", "gtopk",
             "--out", dir + "/params_" + std::to_string(r) + ".bin",
             "--stats-out", dir + "/stats_" + std::to_string(r) + ".txt",
             // Bounded burst: sustained periodic kills can outpace the ARQ
             // replay forever (each connection incarnation delivers fewer
             // frames than the growing backlog); 5 faults per rank is a
             // transient storm the link must fully absorb.
             "--reliable", "--socket-kill-every", "25",
             "--socket-truncate-every", "37", "--socket-max-faults", "5",
             "--socket-fault-seed", std::to_string(5 + r)}));
    }
    std::uint64_t reconnects = 0;
    std::uint64_t socket_faults = 0;
    for (int r = 0; r < world; ++r) {
        ASSERT_EQ(wait_exit(pids[static_cast<std::size_t>(r)]), tcptest::kExitOk)
            << "rank " << r;
        expect_params_match_baseline(dir + "/params_" + std::to_string(r) + ".bin",
                                     baseline.final_params,
                                     "rank " + std::to_string(r));
        const WorkerStats st =
            read_stats(dir + "/stats_" + std::to_string(r) + ".txt");
        reconnects += static_cast<std::uint64_t>(st.get("reconnects"));
        socket_faults += static_cast<std::uint64_t>(st.get("socket_faults"));
    }
    // The chaos really hit connections and the links really resumed —
    // bit-identity above is only meaningful because of this.
    EXPECT_GT(socket_faults, 0u);
    EXPECT_GT(reconnects, 0u);
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Real SIGKILL mid-run: survivors regroup over the wire, roll back to the
// agreed checkpoint, converge on the 3-rank world, and the flight recorder
// explains what happened.

TEST(TcpRecovery, MidRunSigkillSurvivorsRegroupConvergeAndDumpFlightBundle) {
    const int world = 4;
    const int victim = 3;
    const std::string dir = fresh_dir();
    const int port = tcptest::probe_free_port();
    ASSERT_GT(port, 0);
    const std::string bin = binary_beside_self("tcp_rank_worker");
    std::vector<pid_t> pids;
    for (int r = 0; r < world; ++r) {
        std::vector<std::string> args = {
            bin, "--rank", std::to_string(r), "--world", std::to_string(world),
            "--port", std::to_string(port), "--algo", "gtopk",
            "--out", dir + "/params_" + std::to_string(r) + ".bin",
            "--stats-out", dir + "/stats_" + std::to_string(r) + ".txt",
            "--reliable", "--elastic",
            // Telemetry's stats collective is all-ranks: every process
            // attaches it (the victim's bundle simply never hits disk).
            "--flight-out", dir + "/flight_" + std::to_string(r) + ".json"};
        if (r == victim) {
            // Dies by raising SIGKILL at the step-9 iteration boundary —
            // mid second epoch, past the step-8 checkpoint.
            args.insert(args.end(), {"--sigkill-at-step", "9"});
        }
        pids.push_back(spawn(args));
    }

    std::vector<int> codes;
    for (const pid_t pid : pids) codes.push_back(wait_exit(pid));
    EXPECT_EQ(codes[victim], 137) << "victim must die by real SIGKILL";

    std::vector<std::vector<float>> survivor_params;
    for (int r = 0; r < world; ++r) {
        if (r == victim) continue;
        ASSERT_EQ(codes[static_cast<std::size_t>(r)], tcptest::kExitOk)
            << "survivor rank " << r << " did not finish the run";
        survivor_params.push_back(
            tcptest::read_params(dir + "/params_" + std::to_string(r) + ".bin"));

        const WorkerStats st =
            read_stats(dir + "/stats_" + std::to_string(r) + ".txt");
        EXPECT_GE(st.get("regroups"), 1) << "rank " << r;
        EXPECT_GE(st.get("epoch"), 1) << "rank " << r;
        EXPECT_EQ(st.members, (std::vector<int>{0, 1, 2})) << "rank " << r;
        // "Converged": the run kept training after the regroup.
        EXPECT_LT(st.get("loss_last"), st.get("loss_first"))
            << "rank " << r;

        // The flight bundle is parseable JSON containing the incident
        // narrative (comm error -> regroup -> new membership view).
        std::ifstream fb(dir + "/flight_" + std::to_string(r) + ".json");
        ASSERT_TRUE(fb.good()) << "rank " << r << " wrote no flight bundle";
        std::stringstream ss;
        ss << fb.rdbuf();
        const std::string bundle = ss.str();
        EXPECT_EQ(bundle.front(), '{') << "rank " << r;
        EXPECT_NE(bundle.find("\"regroup\""), std::string::npos) << "rank " << r;
        EXPECT_NE(bundle.find("\"dump_seq\""), std::string::npos) << "rank " << r;
    }
    // Post-regroup synchronous SGD on the survivor world: every survivor
    // replica must be bit-identical (§12 consistency contract, now across
    // real processes).
    ASSERT_EQ(survivor_params.size(), 3u);
    for (std::size_t i = 1; i < survivor_params.size(); ++i) {
        EXPECT_EQ(survivor_params[i], survivor_params[0])
            << "survivor replica divergence at member index " << i;
    }
    std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace gtopk
