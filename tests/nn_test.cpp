// Forward-semantics tests for the nn substrate (shapes, known values,
// mode behavior). Gradient correctness lives in nn_gradcheck_test.cpp.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.hpp"
#include "nn/classifier_model.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/model_zoo.hpp"
#include "nn/pool2d.hpp"
#include "nn/residual.hpp"
#include "nn/sequential.hpp"
#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace {

using namespace gtopk::nn;
using gtopk::util::Xoshiro256;

TEST(TensorTest, ShapeAndNumel) {
    Tensor t({2, 3, 4});
    EXPECT_EQ(t.numel(), 24);
    EXPECT_EQ(t.rank(), 3u);
    EXPECT_EQ(t.dim(1), 3);
    for (auto v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(TensorTest, ReshapePreservesData) {
    Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor r = t.reshaped({3, 2});
    EXPECT_EQ(r.at2(2, 1), 6.0f);
    EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(TensorTest, RejectsMismatchedData) {
    EXPECT_THROW(Tensor({2, 2}, {1.0f}), std::invalid_argument);
    EXPECT_THROW(Tensor({-1}), std::invalid_argument);
}

TEST(TensorTest, IndexedAccess) {
    Tensor t({2, 2});
    t.at2(1, 0) = 5.0f;
    EXPECT_EQ(t[2], 5.0f);
    Tensor u({1, 2, 2, 2});
    u.at4(0, 1, 1, 1) = 3.0f;
    EXPECT_EQ(u[7], 3.0f);
}

TEST(LinearTest, ComputesAffineMap) {
    Xoshiro256 rng(1);
    Linear lin(2, 3, rng);
    std::vector<ParamView> params;
    lin.collect_params(params);
    ASSERT_EQ(params.size(), 2u);
    // Overwrite with known weights: W = [[1,2],[3,4],[5,6]], b = [.1,.2,.3]
    *params[0].value = {1, 2, 3, 4, 5, 6};
    *params[1].value = {0.1f, 0.2f, 0.3f};
    Tensor x({1, 2}, {10, 20});
    Tensor y = lin.forward(x, false);
    EXPECT_FLOAT_EQ(y.at2(0, 0), 50.1f);
    EXPECT_FLOAT_EQ(y.at2(0, 1), 110.2f);
    EXPECT_FLOAT_EQ(y.at2(0, 2), 170.3f);
}

TEST(LinearTest, RejectsWrongInputShape) {
    Xoshiro256 rng(1);
    Linear lin(4, 2, rng);
    Tensor bad({1, 3});
    EXPECT_THROW(lin.forward(bad, false), std::invalid_argument);
}

TEST(ActivationTest, ReluClampsNegatives) {
    ReLU relu;
    Tensor x({1, 4}, {-1, 0, 2, -3});
    Tensor y = relu.forward(x, true);
    EXPECT_EQ(y.data()[0], 0.0f);
    EXPECT_EQ(y.data()[2], 2.0f);
    Tensor dy({1, 4}, {1, 1, 1, 1});
    Tensor dx = relu.backward(dy);
    EXPECT_EQ(dx.data()[0], 0.0f);  // gradient blocked where x <= 0
    EXPECT_EQ(dx.data()[2], 1.0f);
}

TEST(ActivationTest, TanhAndSigmoidValues) {
    Tanh tanh_layer;
    Sigmoid sig;
    Tensor x({1, 1}, {0.5f});
    EXPECT_NEAR(tanh_layer.forward(x, false).data()[0], std::tanh(0.5f), 1e-6f);
    EXPECT_NEAR(sig.forward(x, false).data()[0], 1.0f / (1.0f + std::exp(-0.5f)),
                1e-6f);
}

TEST(FlattenTest, CollapsesTrailingDims) {
    Flatten f;
    Tensor x({2, 3, 4, 4});
    Tensor y = f.forward(x, true);
    EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{2, 48}));
    Tensor dy({2, 48});
    EXPECT_EQ(f.backward(dy).shape(), x.shape());
}

TEST(Conv2dTest, IdentityKernelPreservesInput) {
    Xoshiro256 rng(2);
    Conv2d conv(1, 1, 3, 1, 1, rng);
    std::vector<ParamView> params;
    conv.collect_params(params);
    // 3x3 kernel with 1 at center: identity under padding=1.
    *params[0].value = {0, 0, 0, 0, 1, 0, 0, 0, 0};
    *params[1].value = {0};
    Tensor x({1, 1, 4, 4});
    for (std::int64_t i = 0; i < 16; ++i) x[static_cast<std::size_t>(i)] = static_cast<float>(i);
    Tensor y = conv.forward(x, false);
    EXPECT_EQ(y.shape(), x.shape());
    for (std::size_t i = 0; i < 16; ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2dTest, KnownSmallConvolution) {
    Xoshiro256 rng(2);
    Conv2d conv(1, 1, 2, 1, 0, rng);
    std::vector<ParamView> params;
    conv.collect_params(params);
    *params[0].value = {1, 2, 3, 4};
    *params[1].value = {0.5f};
    Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
    Tensor y = conv.forward(x, false);
    EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{1, 1, 1, 1}));
    EXPECT_FLOAT_EQ(y[0], 1 * 1 + 2 * 2 + 3 * 3 + 4 * 4 + 0.5f);
}

TEST(Conv2dTest, StrideShrinksOutput) {
    Xoshiro256 rng(2);
    Conv2d conv(3, 5, 3, 2, 1, rng);
    Tensor x({2, 3, 8, 8});
    Tensor y = conv.forward(x, false);
    EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{2, 5, 4, 4}));
}

TEST(MaxPoolTest, PicksWindowMaxAndRoutesGradient) {
    MaxPool2d pool(2);
    Tensor x({1, 1, 2, 2}, {1, 5, 3, 2});
    Tensor y = pool.forward(x, true);
    EXPECT_EQ(y.numel(), 1);
    EXPECT_FLOAT_EQ(y[0], 5.0f);
    Tensor dy({1, 1, 1, 1}, {10.0f});
    Tensor dx = pool.backward(dy);
    EXPECT_FLOAT_EQ(dx[1], 10.0f);  // only the argmax receives gradient
    EXPECT_FLOAT_EQ(dx[0], 0.0f);
}

TEST(MaxPoolTest, RejectsIndivisibleDims) {
    MaxPool2d pool(2);
    Tensor x({1, 1, 3, 3});
    EXPECT_THROW(pool.forward(x, false), std::invalid_argument);
}

TEST(DropoutTest, EvalModeIsIdentity) {
    Dropout drop(0.5f, 1);
    Tensor x({1, 100});
    x.fill(1.0f);
    Tensor y = drop.forward(x, false);
    for (auto v : y.data()) EXPECT_EQ(v, 1.0f);
}

TEST(DropoutTest, TrainModeZeroesAndRescales) {
    Dropout drop(0.5f, 1);
    Tensor x({1, 10000});
    x.fill(1.0f);
    Tensor y = drop.forward(x, true);
    int zeros = 0;
    double sum = 0;
    for (auto v : y.data()) {
        if (v == 0.0f) {
            ++zeros;
        } else {
            EXPECT_FLOAT_EQ(v, 2.0f);  // 1/(1-p)
        }
        sum += v;
    }
    EXPECT_NEAR(zeros / 10000.0, 0.5, 0.03);
    EXPECT_NEAR(sum / 10000.0, 1.0, 0.06);  // inverted dropout preserves mean
}

TEST(ResidualTest, AddsSkipConnection) {
    auto body = std::make_unique<Sequential>();
    // Empty body: y = x + x.
    ResidualBlock block(std::move(body));
    Tensor x({1, 3}, {1, 2, 3});
    Tensor y = block.forward(x, true);
    EXPECT_FLOAT_EQ(y.data()[1], 4.0f);
    Tensor dy({1, 3}, {1, 1, 1});
    Tensor dx = block.backward(dy);
    EXPECT_FLOAT_EQ(dx.data()[0], 2.0f);
}

TEST(LossTest, SoftmaxCrossEntropyKnownValue) {
    // Uniform logits over C classes -> loss = log(C).
    Tensor logits({2, 4});
    std::vector<std::int32_t> labels{0, 3};
    const LossResult lr = softmax_cross_entropy(logits, labels);
    EXPECT_NEAR(lr.loss, std::log(4.0f), 1e-5f);
    // Gradient: (p - onehot)/N with p = 1/4.
    EXPECT_NEAR(lr.dlogits.at2(0, 0), (0.25f - 1.0f) / 2.0f, 1e-6f);
    EXPECT_NEAR(lr.dlogits.at2(0, 1), 0.25f / 2.0f, 1e-6f);
}

TEST(LossTest, GradientRowsSumToZero) {
    Tensor logits({3, 5}, {1, 2, 3, 4, 5, -1, 0, 1, 0, -1, 2, 2, 2, 2, 2});
    std::vector<std::int32_t> labels{2, 0, 4};
    const LossResult lr = softmax_cross_entropy(logits, labels);
    for (std::int64_t i = 0; i < 3; ++i) {
        float row_sum = 0;
        for (std::int64_t j = 0; j < 5; ++j) row_sum += lr.dlogits.at2(i, j);
        EXPECT_NEAR(row_sum, 0.0f, 1e-6f);
    }
}

TEST(LossTest, RejectsBadLabels) {
    Tensor logits({1, 3});
    std::vector<std::int32_t> labels{5};
    EXPECT_THROW(softmax_cross_entropy(logits, labels), std::invalid_argument);
}

TEST(LossTest, MseKnownValue) {
    Tensor out({1, 2}, {1.0f, 3.0f});
    Tensor target({1, 2}, {0.0f, 0.0f});
    const LossResult lr = mse_loss(out, target);
    EXPECT_FLOAT_EQ(lr.loss, 5.0f);
    EXPECT_FLOAT_EQ(lr.dlogits.data()[1], 3.0f);  // 2*d/n = 2*3/2
}

TEST(LossTest, AccuracyCountsArgmax) {
    Tensor logits({2, 3}, {0, 5, 0, 1, 0, 0});
    std::vector<std::int32_t> labels{1, 2};
    EXPECT_DOUBLE_EQ(accuracy(logits, labels), 0.5);
}

TEST(ModelZoo, MiniVggDropoutVariantTrains) {
    MiniVggConfig cfg;
    cfg.image_size = 8;
    cfg.conv_channels = 3;
    cfg.fc_dim = 32;
    cfg.dropout = 0.3f;
    auto model = make_mini_vgg(cfg, 5);
    // Dropout layers carry no parameters.
    EXPECT_EQ(model->num_params(), make_mini_vgg([&] {
                                       auto c = cfg;
                                       c.dropout = 0.0f;
                                       return c;
                                   }(),
                                                 5)
                                       ->num_params());
    Batch batch;
    batch.x = Tensor({2, 3, 8, 8});
    batch.x.fill(0.3f);
    batch.targets = {1, 4};
    const double first = model->train_step_gradients(batch);
    EXPECT_TRUE(std::isfinite(first));
    // Eval mode is deterministic (no masks): two eval losses agree.
    EXPECT_EQ(model->eval_loss(batch), model->eval_loss(batch));
}

TEST(ModelZoo, FactoriesAreDeterministic) {
    const auto a = make_mini_vgg({}, 7);
    const auto b = make_mini_vgg({}, 7);
    const auto c = make_mini_vgg({}, 8);
    EXPECT_EQ(a->flat_params(), b->flat_params());
    EXPECT_NE(a->flat_params(), c->flat_params());
}

TEST(ModelZoo, ParamCountsArePositiveAndStable) {
    EXPECT_GT(make_mlp({}, 1)->num_params(), 0u);
    EXPECT_GT(make_mini_vgg({}, 1)->num_params(), 0u);
    EXPECT_GT(make_mini_resnet({}, 1)->num_params(), 0u);
    EXPECT_GT(make_lstm_lm({}, 1)->num_params(), 0u);
    // Same config -> same structure.
    EXPECT_EQ(make_mini_resnet({}, 1)->num_params(), make_mini_resnet({}, 2)->num_params());
}

TEST(ModelInterface, FlatRoundTrip) {
    auto model = make_mlp({8, {4}, 3}, 3);
    auto w = model->flat_params();
    ASSERT_EQ(w.size(), model->num_params());
    for (auto& x : w) x += 1.0f;
    model->set_flat_params(w);
    EXPECT_EQ(model->flat_params(), w);
    std::vector<float> delta(w.size(), 0.5f);
    model->add_flat_delta(delta);
    EXPECT_FLOAT_EQ(model->flat_params()[0], w[0] + 0.5f);
}

TEST(ModelInterface, TrainStepFillsGradients) {
    auto model = make_mlp({8, {4}, 3}, 3);
    Batch batch;
    batch.x = Tensor({2, 8});
    batch.x.fill(0.1f);
    batch.targets = {0, 2};
    const float loss = model->train_step_gradients(batch);
    EXPECT_GT(loss, 0.0f);
    const auto grads = model->flat_grads();
    double norm = 0;
    for (float g : grads) norm += std::abs(g);
    EXPECT_GT(norm, 0.0);
}

}  // namespace
