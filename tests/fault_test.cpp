// Robustness: the transport abstraction under adverse conditions — message
// reordering across tags, worker failures mid-collective, and corrupt wire
// payloads. The simulated cluster must fail loudly, never hang or corrupt.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <mutex>
#include <optional>
#include <thread>

#include "collectives/collectives.hpp"
#include "comm/cluster.hpp"
#include "core/aggregators.hpp"
#include "sparse/topk_select.hpp"
#include "sparse/wire.hpp"
#include "util/rng.hpp"

namespace {

using namespace gtopk;
using namespace gtopk::collectives;
using comm::Communicator;
using comm::InProcTransport;
using comm::Message;
using comm::NetworkModel;
using comm::Transport;

/// Transport wrapper that delays delivery of every Nth message, releasing
/// it only after the next message to the same destination — reordering
/// traffic across tags while preserving per-(source, tag) FIFO order, the
/// only ordering MPI (and our mailbox matching) guarantees.
class ReorderingTransport final : public Transport {
public:
    explicit ReorderingTransport(int world) : inner_(world) {}

    int world_size() const override { return inner_.world_size(); }

    void deliver(int dst, Message msg) override {
        std::unique_lock<std::mutex> lock(mutex_);
        auto& held = held_[static_cast<std::size_t>(dst)];
        ++counter_;
        if (counter_ % 3 == 0 && !held.has_value()) {
            held = std::move(msg);  // hold this one back
            return;
        }
        std::optional<Message> first;   // must precede msg (same stream: FIFO)
        std::optional<Message> second;  // may follow msg (cross-stream reorder)
        if (held.has_value()) {
            if (held->source == msg.source && held->tag == msg.tag) {
                first = std::move(held);
            } else {
                second = std::move(held);
            }
            held.reset();
        }
        lock.unlock();
        if (first) inner_.deliver(dst, std::move(*first));
        inner_.deliver(dst, std::move(msg));
        if (second) inner_.deliver(dst, std::move(*second));
    }

    Message receive(int rank, int source, int tag) override {
        // Poll rather than block: a sender may HOLD a message after we have
        // already started waiting, so the held slot must be re-checked
        // until the matched message shows up (or the transport shuts down).
        for (;;) {
            {
                std::unique_lock<std::mutex> lock(mutex_);
                auto& held = held_[static_cast<std::size_t>(rank)];
                if (held.has_value()) {
                    Message m = std::move(*held);
                    held.reset();
                    lock.unlock();
                    inner_.deliver(rank, std::move(m));
                }
            }
            if (auto msg = inner_.try_receive(rank, source, tag)) {
                return std::move(*msg);
            }
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
    }

    void shutdown() override { inner_.shutdown(); }

private:
    InProcTransport inner_;
    std::mutex mutex_;
    std::uint64_t counter_ = 0;
    std::array<std::optional<Message>, 64> held_;
};

/// Run a worker fn over an arbitrary transport (bypasses Cluster to inject).
template <typename Fn>
void run_on(Transport& transport, int world, Fn&& fn) {
    std::vector<std::thread> threads;
    std::mutex error_mutex;
    std::exception_ptr first;
    for (int r = 0; r < world; ++r) {
        threads.emplace_back([&, r] {
            Communicator comm(transport, r, NetworkModel::free());
            try {
                fn(comm);
            } catch (const comm::MailboxClosed&) {
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first) first = std::current_exception();
                transport.shutdown();
            }
        });
    }
    for (auto& t : threads) t.join();
    if (first) std::rethrow_exception(first);
}

TEST(FaultTest, CollectivesSurviveCrossTagReordering) {
    ReorderingTransport transport(4);
    run_on(transport, 4, [](Communicator& comm) {
        for (int round = 0; round < 10; ++round) {
            std::vector<float> data(16, static_cast<float>(comm.rank() + 1));
            allreduce_sum_ring(comm, data);
            for (float v : data) ASSERT_FLOAT_EQ(v, 10.0f);  // 1+2+3+4
            barrier(comm);
        }
    });
}

TEST(FaultTest, GtopkSurvivesCrossTagReordering) {
    ReorderingTransport transport(8);
    std::vector<sparse::SparseGradient> results(8);
    run_on(transport, 8, [&](Communicator& comm) {
        util::Xoshiro256 rng(static_cast<std::uint64_t>(comm.rank()) + 1);
        std::vector<float> dense(256);
        for (auto& v : dense) v = static_cast<float>(rng.next_gaussian());
        const auto local = sparse::topk_select(dense, 10);
        for (int round = 0; round < 5; ++round) {
            const auto r = core::gtopk_allreduce(comm, local, 10);
            if (round == 0) results[static_cast<std::size_t>(comm.rank())] = r.global;
            ASSERT_EQ(r.global, results[static_cast<std::size_t>(comm.rank())]);
        }
    });
    for (int r = 1; r < 8; ++r) {
        EXPECT_EQ(results[static_cast<std::size_t>(r)], results[0]);
    }
}

TEST(FaultTest, PooledGtopkMatchesOwningUnderReordering) {
    // The pooled/zero-copy wire path must agree bit-for-bit with the owning
    // baseline even when the transport reorders messages across tags, and
    // the per-rank buffer pools must actually recycle payloads (pool hits)
    // rather than silently allocating fresh ones.
    std::array<std::vector<sparse::SparseGradient>, 2> results;
    for (const bool pooled : {false, true}) {
        ReorderingTransport transport(8);
        auto& out = results[pooled ? 1 : 0];
        out.resize(8);
        run_on(transport, 8, [&](Communicator& comm) {
            util::Xoshiro256 rng(static_cast<std::uint64_t>(comm.rank()) + 1);
            std::vector<float> dense(512);
            for (auto& v : dense) v = static_cast<float>(rng.next_gaussian());
            const auto local = sparse::topk_select(dense, 16);
            core::GtopkOptions options;
            options.pooled = pooled;
            core::GtopkWorkspace ws;
            if (pooled) options.workspace = &ws;
            sparse::SparseGradient first;
            for (int round = 0; round < 6; ++round) {
                const auto r = core::gtopk_allreduce(comm, local, 16, options);
                if (round == 0) first = r.global;
                ASSERT_EQ(r.global, first);
            }
            out[static_cast<std::size_t>(comm.rank())] = first;
            if (pooled && comm.rank() == 0) {
                // Rounds 2+ must serve sends from recycled receive buffers.
                EXPECT_GT(comm.buffer_pool().stats().pool_hits, 0u);
            }
        });
    }
    EXPECT_EQ(results[0], results[1]);
}

TEST(FaultTest, WorkerFailureMidCollectiveUnblocksPeers) {
    // Rank 2 dies between the reduce and the broadcast; all other ranks are
    // blocked in recv and must be woken by the abort, and the failure must
    // surface to the caller.
    EXPECT_THROW(
        comm::Cluster::run(4, NetworkModel::free(),
                           [](Communicator& comm) {
                               std::vector<float> data(32, 1.0f);
                               allreduce_sum_ring(comm, data);
                               if (comm.rank() == 2) {
                                   throw std::runtime_error("injected crash");
                               }
                               // Everyone else proceeds into a barrier that
                               // can never complete.
                               barrier(comm);
                               barrier(comm);
                           }),
        std::runtime_error);
}

TEST(FaultTest, FirstErrorWins) {
    try {
        comm::Cluster::run(4, NetworkModel::free(), [](Communicator& comm) {
            if (comm.rank() == 1) throw std::runtime_error("rank1");
            barrier(comm);
            barrier(comm);
        });
        FAIL() << "expected a throw";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "rank1");
    }
}

TEST(FaultTest, CorruptSparsePayloadIsRejectedNotMisread) {
    // A peer sends garbage where a serialized SparseGradient is expected;
    // deserialize must throw rather than fabricate a gradient.
    EXPECT_THROW(
        comm::Cluster::run(2, NetworkModel::free(),
                           [](Communicator& comm) {
                               if (comm.rank() == 1) {
                                   std::vector<std::byte> junk(24, std::byte{0xAB});
                                   comm.send(0, 7, junk);
                               } else {
                                   const auto bytes = comm.recv(1, 7);
                                   (void)sparse::deserialize(bytes);
                               }
                           }),
        std::invalid_argument);
}

TEST(FaultTest, ShutdownIsIdempotent) {
    InProcTransport transport(2);
    transport.shutdown();
    transport.shutdown();  // second shutdown must be harmless
    EXPECT_THROW(transport.receive(0, 1, 1), comm::MailboxClosed);
}

TEST(FaultTest, ManyConcurrentClustersDoNotInterfere) {
    // Cluster instances are fully isolated: run several concurrently and
    // verify each one's allreduce result.
    std::vector<std::thread> runners;
    std::atomic<int> failures{0};
    for (int c = 0; c < 4; ++c) {
        runners.emplace_back([&, c] {
            comm::Cluster::run(3, NetworkModel::free(), [&](Communicator& comm) {
                std::vector<float> v(8, static_cast<float>(c + 1));
                allreduce_sum_ring(comm, v);
                for (float x : v) {
                    if (x != 3.0f * static_cast<float>(c + 1)) failures.fetch_add(1);
                }
            });
        });
    }
    for (auto& t : runners) t.join();
    EXPECT_EQ(failures.load(), 0);
}

}  // namespace
