// Robustness: the transport abstraction under adverse conditions — message
// reordering across tags, worker failures mid-collective, and corrupt wire
// payloads. The simulated cluster must fail loudly, never hang or corrupt.
//
// Reordering here runs on the production FaultInjectingTransport with a
// scheduled reorder_every_n plan: every 3rd message of each edge is parked
// and released out of cross-stream order while per-(source, tag) FIFO — the
// only ordering MPI (and our mailbox matching) guarantees — is preserved.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <thread>

#include "collectives/collectives.hpp"
#include "comm/cluster.hpp"
#include "comm/tags.hpp"
#include "comm/fault_transport.hpp"
#include "core/aggregators.hpp"
#include "sparse/topk_select.hpp"
#include "sparse/wire.hpp"
#include "util/rng.hpp"

namespace {

using namespace gtopk;
using namespace gtopk::collectives;
using comm::Communicator;
using comm::FaultInjectingTransport;
using comm::FaultPlan;
using comm::FaultRule;
using comm::InProcTransport;
using comm::NetworkModel;
using gtopk::comm::kTagTestData;

/// Park-and-release every 3rd message on every edge.
FaultPlan reorder_plan() {
    FaultRule rule;
    rule.reorder_every_n = 3;
    FaultPlan plan;
    plan.seed = 42;
    return plan.add(rule);
}

/// Run a worker fn over a transport; Cluster::run_on aborts on the first
/// rank failure and rethrows it, exactly like the in-proc entry point.
template <typename Fn>
void run_on(comm::Transport& transport, int /*world*/, Fn&& fn) {
    comm::Cluster::run_on(transport, NetworkModel::free(),
                          [&fn](Communicator& comm) { fn(comm); });
}

TEST(FaultTest, CollectivesSurviveCrossTagReordering) {
    FaultInjectingTransport transport(4, reorder_plan());
    run_on(transport, 4, [](Communicator& comm) {
        for (int round = 0; round < 10; ++round) {
            std::vector<float> data(16, static_cast<float>(comm.rank() + 1));
            allreduce_sum_ring(comm, data);
            for (float v : data) ASSERT_FLOAT_EQ(v, 10.0f);  // 1+2+3+4
            barrier(comm);
        }
    });
    // The plan must actually have exercised the reorder machinery.
    EXPECT_GT(transport.counts().reordered, 0u);
}

TEST(FaultTest, GtopkSurvivesCrossTagReordering) {
    FaultInjectingTransport transport(8, reorder_plan());
    std::vector<sparse::SparseGradient> results(8);
    run_on(transport, 8, [&](Communicator& comm) {
        util::Xoshiro256 rng(static_cast<std::uint64_t>(comm.rank()) + 1);
        std::vector<float> dense(256);
        for (auto& v : dense) v = static_cast<float>(rng.next_gaussian());
        const auto local = sparse::topk_select(dense, 10);
        for (int round = 0; round < 5; ++round) {
            const auto r = core::gtopk_allreduce(comm, local, 10);
            if (round == 0) results[static_cast<std::size_t>(comm.rank())] = r.global;
            ASSERT_EQ(r.global, results[static_cast<std::size_t>(comm.rank())]);
        }
    });
    for (int r = 1; r < 8; ++r) {
        EXPECT_EQ(results[static_cast<std::size_t>(r)], results[0]);
    }
}

TEST(FaultTest, PooledGtopkMatchesOwningUnderReordering) {
    // The pooled/zero-copy wire path must agree bit-for-bit with the owning
    // baseline even when the transport reorders messages across tags, and
    // the per-rank buffer pools must actually recycle payloads (pool hits)
    // rather than silently allocating fresh ones.
    std::array<std::vector<sparse::SparseGradient>, 2> results;
    for (const bool pooled : {false, true}) {
        FaultInjectingTransport transport(8, reorder_plan());
        auto& out = results[pooled ? 1 : 0];
        out.resize(8);
        run_on(transport, 8, [&](Communicator& comm) {
            util::Xoshiro256 rng(static_cast<std::uint64_t>(comm.rank()) + 1);
            std::vector<float> dense(512);
            for (auto& v : dense) v = static_cast<float>(rng.next_gaussian());
            const auto local = sparse::topk_select(dense, 16);
            core::GtopkOptions options;
            options.pooled = pooled;
            core::GtopkWorkspace ws;
            if (pooled) options.workspace = &ws;
            sparse::SparseGradient first;
            for (int round = 0; round < 6; ++round) {
                const auto r = core::gtopk_allreduce(comm, local, 16, options);
                if (round == 0) first = r.global;
                ASSERT_EQ(r.global, first);
            }
            out[static_cast<std::size_t>(comm.rank())] = first;
            if (pooled && comm.rank() == 0) {
                // Rounds 2+ must serve sends from recycled receive buffers.
                EXPECT_GT(comm.buffer_pool().stats().pool_hits, 0u);
            }
        });
    }
    EXPECT_EQ(results[0], results[1]);
}

TEST(FaultTest, WorkerFailureMidCollectiveUnblocksPeers) {
    // Rank 2 dies between the reduce and the broadcast; all other ranks are
    // blocked in recv and must be woken by the abort, and the failure must
    // surface to the caller.
    EXPECT_THROW(
        comm::Cluster::run(4, NetworkModel::free(),
                           [](Communicator& comm) {
                               std::vector<float> data(32, 1.0f);
                               allreduce_sum_ring(comm, data);
                               if (comm.rank() == 2) {
                                   throw std::runtime_error("injected crash");
                               }
                               // Everyone else proceeds into a barrier that
                               // can never complete.
                               barrier(comm);
                               barrier(comm);
                           }),
        std::runtime_error);
}

TEST(FaultTest, FirstErrorWins) {
    try {
        comm::Cluster::run(4, NetworkModel::free(), [](Communicator& comm) {
            if (comm.rank() == 1) throw std::runtime_error("rank1");
            barrier(comm);
            barrier(comm);
        });
        FAIL() << "expected a throw";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "rank1");
    }
}

TEST(FaultTest, CorruptSparsePayloadIsRejectedNotMisread) {
    // A peer sends garbage where a serialized SparseGradient is expected;
    // deserialize must throw rather than fabricate a gradient.
    EXPECT_THROW(
        comm::Cluster::run(2, NetworkModel::free(),
                           [](Communicator& comm) {
                               if (comm.rank() == 1) {
                                   std::vector<std::byte> junk(24, std::byte{0xAB});
                                   comm.send(0, kTagTestData, junk);
                               } else {
                                   const auto bytes = comm.recv(1, kTagTestData);
                                   (void)sparse::deserialize(bytes);
                               }
                           }),
        std::invalid_argument);
}

TEST(FaultTest, ShutdownIsIdempotent) {
    InProcTransport transport(2);
    transport.shutdown();
    transport.shutdown();  // second shutdown must be harmless
    EXPECT_THROW(transport.receive(0, 1, kTagTestData), comm::MailboxClosed);
}

TEST(FaultTest, ManyConcurrentClustersDoNotInterfere) {
    // Cluster instances are fully isolated: run several concurrently and
    // verify each one's allreduce result.
    std::vector<std::thread> runners;
    std::atomic<int> failures{0};
    for (int c = 0; c < 4; ++c) {
        runners.emplace_back([&, c] {
            comm::Cluster::run(3, NetworkModel::free(), [&](Communicator& comm) {
                std::vector<float> v(8, static_cast<float>(c + 1));
                allreduce_sum_ring(comm, v);
                for (float x : v) {
                    if (x != 3.0f * static_cast<float>(c + 1)) failures.fetch_add(1);
                }
            });
        });
    }
    for (auto& t : runners) t.join();
    EXPECT_EQ(failures.load(), 0);
}

}  // namespace
