// Hot-path equivalence tests: the pooled-buffer / zero-copy-view /
// workspace-reusing fast paths introduced for the allocation-free hot path
// must be bit-identical to their owning counterparts, and the wire view
// must reject malformed bytes exactly like the owning deserializer.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "comm/buffer_pool.hpp"
#include "comm/cluster.hpp"
#include "core/aggregators.hpp"
#include "data/sampler.hpp"
#include "data/synthetic_images.hpp"
#include "nn/model_zoo.hpp"
#include "sparse/topk_merge.hpp"
#include "sparse/topk_select.hpp"
#include "sparse/wire.hpp"
#include "train/trainer.hpp"
#include "util/rng.hpp"

namespace {

using namespace gtopk;
using sparse::SparseGradient;

std::vector<float> random_dense(std::size_t m, std::uint64_t seed) {
    util::Xoshiro256 rng(seed);
    std::vector<float> v(m);
    for (auto& x : v) x = static_cast<float>(rng.next_gaussian());
    return v;
}

SparseGradient sample_gradient(std::size_t m, std::size_t k, std::uint64_t seed) {
    return sparse::topk_select(random_dense(m, seed), k);
}

// ---------------------------------------------------------------- wire view

TEST(WireView, RoundTripMatchesOwningDeserialize) {
    const SparseGradient g = sample_gradient(4096, 100, 7);
    const auto bytes = sparse::serialize(g);
    const sparse::SparseGradientView v = sparse::deserialize_view(bytes);
    EXPECT_EQ(v.dense_size, g.dense_size);
    ASSERT_EQ(v.nnz(), g.nnz());
    EXPECT_TRUE(std::equal(v.indices.begin(), v.indices.end(), g.indices.begin()));
    EXPECT_TRUE(std::equal(v.values.begin(), v.values.end(), g.values.begin()));
    EXPECT_EQ(v.materialize(), sparse::deserialize(bytes));
}

TEST(WireView, EmptyGradientRoundTrips) {
    SparseGradient g;
    g.dense_size = 5;
    const auto bytes = sparse::serialize(g);
    const sparse::SparseGradientView v = sparse::deserialize_view(bytes);
    EXPECT_EQ(v.dense_size, 5);
    EXPECT_EQ(v.nnz(), 0u);
    EXPECT_EQ(v.materialize(), g);
    std::vector<float> dense(5, 1.0f);
    v.scatter_add(dense);  // no-op, must not touch anything
    for (float x : dense) EXPECT_EQ(x, 1.0f);
}

TEST(WireView, ScatterAddMatchesMaterializedScatter) {
    const SparseGradient g = sample_gradient(512, 40, 3);
    const auto bytes = sparse::serialize(g);
    std::vector<float> a(512, 0.5f);
    std::vector<float> b = a;
    sparse::deserialize_view(bytes).scatter_add(a);
    for (std::size_t i = 0; i < g.nnz(); ++i) {
        b[static_cast<std::size_t>(g.indices[i])] += g.values[i];
    }
    EXPECT_EQ(a, b);
}

TEST(WireView, TruncatedAndCorruptBytesThrow) {
    const SparseGradient g = sample_gradient(1024, 16, 11);
    const auto bytes = sparse::serialize(g);
    // Truncated header and truncated payload.
    EXPECT_THROW(sparse::deserialize_view({bytes.data(), 8}), std::invalid_argument);
    EXPECT_THROW(sparse::deserialize_view({bytes.data(), bytes.size() - 4}),
                 std::invalid_argument);
    // Garbage that is long enough to parse a header.
    const std::vector<std::byte> junk(24, std::byte{0xAB});
    EXPECT_THROW(sparse::deserialize_view(junk), std::invalid_argument);
    // Out-of-range index (first index -> dense_size + 1).
    std::vector<std::byte> bad = bytes;
    const std::int32_t huge = static_cast<std::int32_t>(g.dense_size) + 1;
    std::memcpy(bad.data() + 16, &huge, sizeof(huge));
    EXPECT_THROW(sparse::deserialize_view(bad), std::invalid_argument);
    // Non-increasing indices (duplicate the second index into the first).
    std::vector<std::byte> dup = bytes;
    std::memcpy(dup.data() + 16, dup.data() + 20, 4);
    EXPECT_THROW(sparse::deserialize_view(dup), std::invalid_argument);
}

TEST(WireView, MisalignedPayloadThrowsInsteadOfAliasing) {
    const SparseGradient g = sample_gradient(256, 8, 5);
    const auto bytes = sparse::serialize(g);
    std::vector<std::byte> shifted(bytes.size() + 1);
    std::memcpy(shifted.data() + 1, bytes.data(), bytes.size());
    EXPECT_THROW(
        sparse::deserialize_view({shifted.data() + 1, bytes.size()}),
        std::invalid_argument);
}

TEST(WireView, SerializeIntoReusesCapacityAndMatchesSerialize) {
    const SparseGradient big = sample_gradient(4096, 200, 1);
    const SparseGradient small = sample_gradient(4096, 10, 2);
    std::vector<std::byte> buf;
    sparse::serialize_into(big, buf);
    EXPECT_EQ(buf, sparse::serialize(big));
    const std::size_t cap = buf.capacity();
    sparse::serialize_into(small, buf);
    EXPECT_EQ(buf, sparse::serialize(small));
    EXPECT_EQ(buf.capacity(), cap);  // shrink never reallocates
    sparse::serialize_into(big, buf);
    EXPECT_EQ(buf, sparse::serialize(big));
    EXPECT_EQ(buf.capacity(), cap);  // regrow within old capacity either
}

// -------------------------------------------------------------- buffer pool

TEST(BufferPool, RecyclesReleasedBuffers) {
    comm::BufferPool pool;
    auto a = pool.acquire(100);
    EXPECT_EQ(a.size(), 100u);
    EXPECT_EQ(pool.stats().acquires, 1u);
    EXPECT_EQ(pool.stats().pool_hits, 0u);  // nothing to reuse yet
    pool.release(std::move(a));
    EXPECT_EQ(pool.free_count(), 1u);
    auto b = pool.acquire(60);  // fits in the recycled 100-byte buffer
    EXPECT_EQ(b.size(), 60u);
    EXPECT_GE(b.capacity(), 100u);
    EXPECT_EQ(pool.stats().pool_hits, 1u);
    EXPECT_EQ(pool.free_count(), 0u);
}

TEST(BufferPool, BestFitPrefersSmallestSufficientBuffer) {
    comm::BufferPool pool;
    pool.release(std::vector<std::byte>(1000));
    pool.release(std::vector<std::byte>(100));
    const auto got = pool.acquire(50);
    EXPECT_GE(got.capacity(), 100u);
    EXPECT_LT(got.capacity(), 1000u);  // took the 100-byte one
    EXPECT_EQ(pool.stats().pool_hits, 1u);
}

TEST(BufferPool, RetentionIsCapped) {
    comm::BufferPool pool;
    for (int i = 0; i < 12; ++i) {
        pool.release(std::vector<std::byte>(64));
    }
    EXPECT_LE(pool.free_count(), comm::BufferPool::kMaxFree);
    EXPECT_EQ(pool.stats().releases, 12u);
    EXPECT_EQ(pool.stats().dropped, 12u - comm::BufferPool::kMaxFree);
}

TEST(BufferPool, PooledBufferReleasesOnDestructionAndMove) {
    comm::BufferPool pool;
    {
        comm::PooledBuffer buf(pool.acquire(32), &pool);
        EXPECT_EQ(buf.size(), 32u);
        comm::PooledBuffer moved = std::move(buf);
        EXPECT_EQ(moved.size(), 32u);
        EXPECT_EQ(pool.free_count(), 0u);  // still owned by `moved`
    }
    EXPECT_EQ(pool.free_count(), 1u);  // exactly one release despite the move
    EXPECT_EQ(pool.stats().releases, 1u);
}

// ---------------------------------------------------- selection equivalence

sparse::SparseGradient exact_reference(std::span<const float> dense, std::size_t k) {
    return sparse::topk_select(dense, k);  // one-shot, no prefilter
}

void expect_prefilter_invariant(std::span<const float> dense, std::size_t k) {
    sparse::TopkWorkspace ws;
    const SparseGradient ref = exact_reference(dense, k);
    const SparseGradient off =
        sparse::topk_select(dense, k, ws, {.sampled_prefilter = false});
    const SparseGradient on =
        sparse::topk_select(dense, k, ws, {.sampled_prefilter = true});
    EXPECT_EQ(ref, off);
    EXPECT_EQ(ref, on);
}

TEST(TopkPrefilter, GaussianMatchesExact) {
    // Large enough to engage the prefilter (m >= kPrefilterMinDense) with a
    // density that keeps the sampled rank usable.
    const auto dense = random_dense(1 << 15, 21);
    expect_prefilter_invariant(dense, 128);
}

TEST(TopkPrefilter, HeavyTailMatchesExact) {
    auto dense = random_dense(1 << 15, 22);
    for (auto& v : dense) v = v * v * v;  // cube: heavy-tailed magnitudes
    expect_prefilter_invariant(dense, 128);
}

TEST(TopkPrefilter, MassiveTiesMatchExact) {
    // Quantize to very few distinct magnitudes so ties abound and the
    // index tie-break carries the ordering.
    auto dense = random_dense(1 << 15, 23);
    for (auto& v : dense) v = std::round(v * 2.0f) / 2.0f;
    expect_prefilter_invariant(dense, 128);
}

TEST(TopkPrefilter, AllZeroMatchesExact) {
    const std::vector<float> dense(1 << 15, 0.0f);
    expect_prefilter_invariant(dense, 128);
}

TEST(TopkPrefilter, OvershootingSampleFallsBackToExact) {
    // Spikes exactly on the sampling stride: the strided sample sees only
    // large magnitudes, the estimated cut overshoots, fewer than k
    // candidates survive and the code must fall back to the full exact
    // path. m = 2^15 -> sample_size = 2048, stride = 16.
    const std::size_t m = 1 << 15;
    auto dense = random_dense(m, 24);
    for (auto& v : dense) v *= 0.01f;
    for (std::size_t i = 0; i < m; i += 16) dense[i] = 10.0f;
    expect_prefilter_invariant(dense, 4096);  // k > number of spikes (2048)
}

TEST(TopkPrefilter, BelowMinSizeAndDegenerateCasesMatch) {
    const auto small = random_dense(1000, 25);  // below kPrefilterMinDense
    expect_prefilter_invariant(small, 10);
    sparse::TopkWorkspace ws;
    // k == 0 and k >= m mirror the one-shot degenerate semantics.
    EXPECT_EQ(sparse::topk_select(small, 0, ws), exact_reference(small, 0));
    EXPECT_EQ(sparse::topk_select(small, 1000, ws), exact_reference(small, 1000));
    EXPECT_EQ(sparse::topk_select(small, 5000, ws), exact_reference(small, 5000));
}

TEST(TopkPrefilter, WorkspaceReuseAcrossDifferentSizes) {
    sparse::TopkWorkspace ws;
    sparse::SparseGradient out;
    for (const std::size_t m : {1u << 15, 1u << 10, 1u << 16}) {
        const auto dense = random_dense(m, 26 + m);
        sparse::topk_select_into(dense, m / 256, ws, out);
        EXPECT_EQ(out, exact_reference(dense, m / 256));
    }
}

TEST(TopkSelect, HeapAndFullSortDelegateUnchanged) {
    sparse::TopkWorkspace ws;
    const auto dense = random_dense(5000, 27);
    for (const auto strategy :
         {sparse::TopkStrategy::Heap, sparse::TopkStrategy::FullSort}) {
        EXPECT_EQ(sparse::topk_select(dense, 50, ws, {.strategy = strategy}),
                  sparse::topk_select(dense, 50, strategy));
    }
}

TEST(KthMagnitude, WorkspaceOverloadMatchesFresh) {
    sparse::TopkWorkspace ws;
    const auto dense = random_dense(10'000, 28);
    for (const std::size_t k : {1u, 7u, 100u, 10'000u, 20'000u}) {
        EXPECT_EQ(sparse::kth_largest_magnitude(dense, k),
                  sparse::kth_largest_magnitude(dense, k, ws));
    }
    EXPECT_EQ(sparse::kth_largest_magnitude(dense, 0, ws), 0.0f);
}

// ------------------------------------------------------- in-place ⊤ merge

void expect_merge_equivalent(const SparseGradient& a, const SparseGradient& b,
                             std::size_t k) {
    sparse::MergeScratch scratch;
    SparseGradient acc = a;
    sparse::topk_merge_into(acc, b.dense_size, b.indices, b.values, k, scratch);
    EXPECT_EQ(acc, sparse::topk_merge(a, b, k));
}

TEST(TopkMergeInto, MatchesTopkMergeOnOverlapAndDisjoint) {
    const SparseGradient a = sample_gradient(2048, 64, 31);
    const SparseGradient b = sample_gradient(2048, 64, 32);  // partial overlap
    expect_merge_equivalent(a, b, 64);
    expect_merge_equivalent(a, b, 10);   // heavy truncation
    expect_merge_equivalent(a, b, 500);  // nnz < k: pure union
    expect_merge_equivalent(a, a, 64);   // full overlap (values double)
}

TEST(TopkMergeInto, CancellationProducesIdenticalSelection) {
    // b annihilates a on the shared indices; the zero-magnitude survivors
    // must rank identically in both implementations.
    SparseGradient a = sample_gradient(1024, 32, 33);
    SparseGradient b = a;
    for (auto& v : b.values) v = -v;
    expect_merge_equivalent(a, b, 32);
    expect_merge_equivalent(a, b, 8);
}

TEST(TopkMergeInto, EmptySidesAndScratchReuse) {
    sparse::MergeScratch scratch;
    SparseGradient empty;
    empty.dense_size = 1024;
    const SparseGradient g = sample_gradient(1024, 16, 34);
    SparseGradient acc = empty;
    sparse::topk_merge_into(acc, g.dense_size, g.indices, g.values, 16, scratch);
    EXPECT_EQ(acc, g);
    // Reuse the same scratch with the operands swapped.
    acc = g;
    sparse::topk_merge_into(acc, empty.dense_size, empty.indices, empty.values, 16,
                            scratch);
    EXPECT_EQ(acc, g);
}

TEST(TopkMergeInto, DenseSizeMismatchThrows) {
    sparse::MergeScratch scratch;
    SparseGradient acc;
    acc.dense_size = 100;
    const SparseGradient g = sample_gradient(200, 8, 35);
    EXPECT_THROW(
        sparse::topk_merge_into(acc, g.dense_size, g.indices, g.values, 8, scratch),
        std::invalid_argument);
}

// -------------------------------------------- pooled aggregation end-to-end

TEST(PooledGtopk, BitIdenticalToOwningPath) {
    for (const int world : {5, 8}) {  // 5 exercises the non-power-of-two fold
        std::vector<SparseGradient> pooled_out(static_cast<std::size_t>(world));
        std::vector<SparseGradient> owning_out(static_cast<std::size_t>(world));
        for (const bool pooled : {false, true}) {
            auto& out = pooled ? pooled_out : owning_out;
            comm::Cluster::run(
                world, comm::NetworkModel::free(), [&](comm::Communicator& comm) {
                    const SparseGradient local = sample_gradient(
                        4096, 128, 40 + static_cast<std::uint64_t>(comm.rank()));
                    core::GtopkWorkspace ws;
                    core::GtopkOptions options;
                    options.pooled = pooled;
                    if (pooled) options.workspace = &ws;
                    for (int round = 0; round < 3; ++round) {
                        const auto r =
                            core::gtopk_allreduce(comm, local, 128, options);
                        if (round == 0) {
                            out[static_cast<std::size_t>(comm.rank())] = r.global;
                        } else {
                            ASSERT_EQ(r.global,
                                      out[static_cast<std::size_t>(comm.rank())]);
                        }
                    }
                });
        }
        EXPECT_EQ(pooled_out, owning_out) << "world=" << world;
        for (int r = 1; r < world; ++r) {
            EXPECT_EQ(pooled_out[static_cast<std::size_t>(r)], pooled_out[0]);
        }
    }
}

TEST(PooledGtopk, TopkAllreduceViewPathMatchesDenseSum) {
    // The AllGather path now scatters straight off zero-copy views of the
    // gathered blocks; the result must equal the locally-computed dense sum
    // of every rank's contribution.
    const int world = 4;
    std::vector<SparseGradient> locals;
    for (int r = 0; r < world; ++r) {
        locals.push_back(
            sample_gradient(1024, 32, 60 + static_cast<std::uint64_t>(r)));
    }
    std::vector<float> expect(1024, 0.0f);
    for (const auto& g : locals) {
        for (std::size_t i = 0; i < g.nnz(); ++i) {
            expect[static_cast<std::size_t>(g.indices[i])] += g.values[i];
        }
    }
    comm::Cluster::run(world, comm::NetworkModel::free(),
                       [&](comm::Communicator& comm) {
                           const auto dense = core::topk_allreduce(
                               comm, locals[static_cast<std::size_t>(comm.rank())]);
                           ASSERT_EQ(dense, expect);
                       });
}

// ------------------------------------------------- trainer determinism

TEST(TrainerDeterminism, PrefilterOnAndOffAreBitIdentical) {
    // A model big enough to engage the prefilter on the flat gradient
    // (num_params >= kPrefilterMinDense); the trajectories with the sampled
    // prefilter enabled and disabled must agree on every bit.
    data::SyntheticImageDataset::Config dcfg;
    dcfg.image_size = 8;
    data::SyntheticImageDataset dataset(dcfg, 1234);
    data::ShardedSampler sampler(4096, 1024, 4, 99);
    nn::MlpConfig mcfg;
    mcfg.input_dim = dataset.feature_dim();
    mcfg.hidden_dims = {256};
    mcfg.classes = 10;

    train::TrainConfig config;
    config.algorithm = train::Algorithm::GtopkSsgd;
    config.epochs = 2;
    config.iters_per_epoch = 10;
    config.density = 0.01;

    auto run_with = [&](bool prefilter) {
        train::TrainConfig c = config;
        c.topk_sampled_prefilter = prefilter;
        return train::train_distributed(
            4, comm::NetworkModel::free(), c,
            [&](std::uint64_t seed) { return nn::make_mlp(mcfg, seed); },
            [&](std::int64_t step, int rank) {
                return dataset.batch_flat(sampler.batch_indices(step, rank, 16));
            },
            {});
    };

    const auto with = run_with(true);
    const auto without = run_with(false);
    ASSERT_GE(with.final_params.size(), sparse::kPrefilterMinDense);
    EXPECT_EQ(with.final_params, without.final_params);
    EXPECT_EQ(with.epochs.back().train_loss, without.epochs.back().train_loss);
}

}  // namespace
