// Large-P virtual-time scale suite: the threaded cluster at P = 64/128/256.
//
// What melts at scale is not the math, it's the plumbing — O(P) heartbeat
// fan-out per rank per interval, O(queue) mailbox scans under the fresh-tag
// wrap check, tag-band aliasing once hundreds of ranks burn tag blocks.
// These tests pin the three fixes:
//
//   * gTop-k aggregation smoke at P = 64/128 (every rank bit-identical,
//     naive oracle agrees) and membership regroup at P = 64 with bounded
//     heartbeat fan-out;
//   * fresh-tag wrap under collective pressure at P = 256: the cursor wraps
//     onto the band base mid-run on every rank simultaneously and the
//     collectives keep working — plus the wrap refusal when a fresh-band
//     message is still in flight;
//   * mailbox band counters: count_tag_at_least at the three band bases is
//     O(1) and must agree exactly with a linear scan through pushes, pops
//     and epoch purges — and Mailbox::pop_for's host-clock deadline is
//     computed once, so a notification storm cannot extend it.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "collectives/collectives.hpp"
#include "comm/cluster.hpp"
#include "comm/mailbox.hpp"
#include "comm/membership.hpp"
#include "comm/tags.hpp"
#include "core/aggregators.hpp"
#include "sparse/sparse_gradient.hpp"

namespace gtopk {
namespace {

using comm::InProcTransport;
using comm::Mailbox;
using comm::Message;
using comm::NetworkModel;

// ---------------------------------------------------------------------------
// gTop-k collective smoke at P = 64 / 128

sparse::SparseGradient rank_gradient(int rank, std::int64_t dense_size,
                                     std::size_t k) {
    sparse::SparseGradient g;
    g.dense_size = dense_size;
    for (std::size_t i = 0; i < k; ++i) {
        // Strictly increasing per rank; overlapping across ranks so the
        // tree merges actually combine entries.
        g.indices.push_back(static_cast<std::int32_t>(i * 64 + (rank % 32)));
        g.values.push_back(1.0f + static_cast<float>((rank * 7 + i * 13) % 29) -
                           14.0f);
    }
    return g;
}

class GtopkScaleSmoke : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Worlds, GtopkScaleSmoke, ::testing::Values(64, 128));

TEST_P(GtopkScaleSmoke, AllRanksBitIdenticalForTreeAndNaive) {
    // The tree fold (Algorithm 3) and the naive AllGather path (Algorithm 2)
    // are different estimators on overlapping/cancelling inputs — what MUST
    // hold at scale is that each of them is bit-identical across all P
    // ranks (replica consistency is what training correctness rides on).
    const int world = GetParam();
    constexpr std::size_t k = 16;
    InProcTransport transport(world);
    std::vector<sparse::SparseGradient> tree(static_cast<std::size_t>(world));
    std::vector<sparse::SparseGradient> naive(static_cast<std::size_t>(world));
    std::vector<double> clock_s(static_cast<std::size_t>(world), -1.0);

    comm::Cluster::run_on(
        transport, NetworkModel::one_gbps_ethernet(),
        [&](comm::Communicator& c) {
            const int rank = c.rank();
            const sparse::SparseGradient local = rank_gradient(rank, 4096, k);
            tree[static_cast<std::size_t>(rank)] =
                core::gtopk_allreduce(c, local, k).global;
            naive[static_cast<std::size_t>(rank)] =
                core::naive_gtopk_allreduce(c, local, k).global;
            clock_s[static_cast<std::size_t>(rank)] = c.clock().now_s();
        });

    for (int r = 1; r < world; ++r) {
        EXPECT_EQ(tree[static_cast<std::size_t>(r)], tree[0]) << "rank " << r;
        EXPECT_EQ(naive[static_cast<std::size_t>(r)], naive[0]) << "rank " << r;
    }
    // A modeled (non-free) network must have advanced virtual time.
    for (int r = 0; r < world; ++r) {
        EXPECT_GT(clock_s[static_cast<std::size_t>(r)], 0.0) << "rank " << r;
    }
}

// ---------------------------------------------------------------------------
// Membership at scale: regroup with bounded heartbeat fan-out

TEST(MembershipScale, RegroupP64WithBoundedFanout) {
    const int world = 64;
    const int victim = 13;
    InProcTransport transport(world);
    comm::MembershipConfig mcfg;
    mcfg.heartbeat_interval_s = 0.001;
    mcfg.suspect_after_s = 5.0;  // rotation cycle ceil(63/4) bursts ≪ this
    mcfg.join_grace_s = 30.0;
    mcfg.heartbeat_fanout = 4;
    comm::MembershipService svc(transport, mcfg);

    std::vector<comm::MembershipView> views(static_cast<std::size_t>(world));
    comm::Cluster::run_on(
        transport, NetworkModel::free(), [&](comm::Communicator& c) {
            const int rank = c.rank();
            if (rank == victim) {
                svc.leave(rank);
                return;
            }
            svc.tick(rank);  // exercise the bounded-fanout gossip path
            views[static_cast<std::size_t>(rank)] = svc.regroup(rank);
        });

    for (int r = 0; r < world; ++r) {
        if (r == victim) continue;
        const comm::MembershipView& v = views[static_cast<std::size_t>(r)];
        EXPECT_EQ(v.epoch, 1) << "rank " << r;
        ASSERT_EQ(v.members.size(), static_cast<std::size_t>(world - 1));
        for (int m : v.members) EXPECT_NE(m, victim);
        EXPECT_EQ(v.members, views[victim == 0 ? 1u : 0u].members);
    }
}

TEST(MembershipScale, HeartbeatFanoutRotationCoversEveryPeer) {
    const int world = 64;
    const int fanout = 5;
    InProcTransport transport(world);
    comm::MembershipConfig mcfg;
    mcfg.heartbeat_interval_s = 0.0;  // every tick fires a burst
    mcfg.heartbeat_fanout = fanout;
    comm::MembershipService svc(transport, mcfg);

    // ceil(63 / 5) = 13 bursts complete one rotation of the peer ring.
    const int bursts = (world - 1 + fanout - 1) / fanout;
    for (int i = 0; i < bursts; ++i) svc.tick(0);
    EXPECT_EQ(svc.heartbeats_sent(), static_cast<std::uint64_t>(bursts));

    int total = 0;
    for (int peer = 1; peer < world; ++peer) {
        int got = 0;
        while (transport.try_receive(peer, 0, comm::kTagHeartbeat)) ++got;
        EXPECT_GE(got, 1) << "peer " << peer
                          << " was skipped by the rotation cursor";
        total += got;
    }
    // Exactly fanout sends per burst: bounded, not O(P).
    EXPECT_EQ(total, bursts * fanout);

    // fanout = 0 keeps the historical broadcast: one burst hits every peer.
    comm::MembershipConfig bcast_cfg;
    bcast_cfg.heartbeat_interval_s = 0.0;
    bcast_cfg.heartbeat_fanout = 0;
    InProcTransport transport2(world);
    comm::MembershipService broadcast_svc(transport2, bcast_cfg);
    broadcast_svc.tick(0);
    for (int peer = 1; peer < world; ++peer) {
        int got = 0;
        while (transport2.try_receive(peer, 0, comm::kTagHeartbeat)) ++got;
        EXPECT_EQ(got, 1) << "peer " << peer;
    }
}

// ---------------------------------------------------------------------------
// Fresh-tag band wrap under large-P pressure

TEST(TagWrapScale, FreshCursorWrapsMidRunAtP256) {
    const int world = 256;
    InProcTransport transport(world);
    std::vector<double> sum(static_cast<std::size_t>(world), 0.0);
    std::vector<int> cursor(static_cast<std::size_t>(world), -1);

    comm::Cluster::run_on(
        transport, NetworkModel::free(), [&](comm::Communicator& c) {
            const int rank = c.rank();
            // Park the cursor two tags below the band edge: the next
            // collective's fresh_tags(count) must wrap every rank onto
            // kFreshTagBase simultaneously (SPMD lockstep), and traffic
            // tagged across the wrap must not alias.
            c.set_fresh_tag_cursor_for_test(comm::kAsyncTagBase - 2);
            collectives::barrier(c);
            const double mine = static_cast<double>(rank);
            const std::vector<double> all =
                collectives::allgather<double>(c, std::span<const double>(&mine, 1));
            double s = 0.0;
            for (double v : all) s += v;
            sum[static_cast<std::size_t>(rank)] = s;
            cursor[static_cast<std::size_t>(rank)] = c.fresh_tag_cursor();
        });

    const double expect = 255.0 * 256.0 / 2.0;
    for (int r = 0; r < world; ++r) {
        EXPECT_EQ(sum[static_cast<std::size_t>(r)], expect) << "rank " << r;
        // Every rank wrapped onto the band base and stayed inside the band.
        EXPECT_GE(cursor[static_cast<std::size_t>(r)], comm::kFreshTagBase);
        EXPECT_LT(cursor[static_cast<std::size_t>(r)], comm::kAsyncTagBase);
        EXPECT_EQ(cursor[static_cast<std::size_t>(r)], cursor[0]);
    }
}

TEST(TagWrapScale, WrapWithFreshTrafficInFlightRefusesToAlias) {
    InProcTransport transport(1);
    comm::Communicator c(transport, 0, NetworkModel::free());

    Message stale;
    stale.source = 0;
    stale.tag = comm::kFreshTagBase + 5;  // a fresh-band message in flight
    transport.deliver(0, std::move(stale));

    c.set_fresh_tag_cursor_for_test(comm::kAsyncTagBase - 1);
    EXPECT_THROW(c.fresh_tags(4), std::logic_error);

    // Drain it and the wrap is legal again.
    (void)transport.receive(0, 0, comm::kFreshTagBase + 5);
    const int base = c.fresh_tags(4);
    EXPECT_EQ(base, comm::kFreshTagBase);
}

// ---------------------------------------------------------------------------
// Mailbox band counters and the pop_for deadline

Message make_msg(int source, int tag, int epoch = 0) {
    Message m;
    m.source = source;
    m.tag = tag;
    m.epoch = epoch;
    return m;
}

TEST(MailboxScale, BandCountersMatchLinearScanThroughMutation) {
    const int per_band = 256;  // P=256 worth of tags in each band
    Mailbox mb;
    for (int i = 0; i < per_band; ++i) {
        mb.push(make_msg(0, i));                          // user band
        mb.push(make_msg(0, comm::kFreshTagBase + i));    // fresh band
        mb.push(make_msg(0, comm::kAsyncTagBase + i));    // async band
    }
    // O(1) band-base fast paths...
    EXPECT_EQ(mb.count_tag_at_least(comm::kTagFloor),
              static_cast<std::size_t>(3 * per_band));
    EXPECT_EQ(mb.count_tag_at_least(comm::kFreshTagBase),
              static_cast<std::size_t>(2 * per_band));
    EXPECT_EQ(mb.count_tag_at_least(comm::kAsyncTagBase),
              static_cast<std::size_t>(per_band));
    // ...and the generic scan threshold agrees (128 fresh tags above the
    // cut plus the whole async band).
    EXPECT_EQ(mb.count_tag_at_least(comm::kFreshTagBase + per_band / 2),
              static_cast<std::size_t>(per_band / 2 + per_band));

    // Pops on each band must decrement exactly the right counter.
    constexpr int kUserBandProbe = 3;  // one of the user-band tags pushed above
    (void)mb.pop(0, kUserBandProbe);
    (void)mb.pop(0, comm::kFreshTagBase + 7);
    (void)mb.pop(0, comm::kAsyncTagBase + 9);
    ASSERT_TRUE(mb.try_pop(0, comm::kFreshTagBase + 8).has_value());
    EXPECT_EQ(mb.count_tag_at_least(comm::kTagFloor),
              static_cast<std::size_t>(3 * per_band - 4));
    EXPECT_EQ(mb.count_tag_at_least(comm::kFreshTagBase),
              static_cast<std::size_t>(2 * per_band - 3));
    EXPECT_EQ(mb.count_tag_at_least(comm::kAsyncTagBase),
              static_cast<std::size_t>(per_band - 1));

    // Epoch purges go through the same accounting: stale messages in every
    // band vanish from their counters at once.
    Mailbox purged;
    for (int i = 0; i < 8; ++i) {
        purged.push(make_msg(0, comm::kFreshTagBase + i, /*epoch=*/0));
        purged.push(make_msg(0, comm::kAsyncTagBase + i, /*epoch=*/1));
    }
    purged.set_min_epoch(1);
    EXPECT_EQ(purged.count_tag_at_least(comm::kFreshTagBase),
              static_cast<std::size_t>(8));
    EXPECT_EQ(purged.count_tag_at_least(comm::kAsyncTagBase),
              static_cast<std::size_t>(8));
}

TEST(MailboxScale, PopForDeadlineIsImmuneToNotificationStorms) {
    // Regression for the classic re-arm bug: a pop_for that recomputed its
    // deadline per CV wakeup would never expire while unrelated pushes keep
    // notifying. The deadline is absolute — the storm must not extend it.
    Mailbox mb;
    std::atomic<bool> stop{false};
    std::thread storm([&] {
        int i = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            mb.push(make_msg(1, 999, 0));  // never matches the waiter
            if (++i % 16 == 0) std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    });

    const auto t0 = std::chrono::steady_clock::now();
    const auto got =
        mb.pop_for(/*source=*/2, comm::kTagTestData, std::chrono::milliseconds(250));
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    stop.store(true, std::memory_order_relaxed);
    storm.join();

    EXPECT_FALSE(got.has_value());
    EXPECT_GE(elapsed, 0.25);
    // Generous ceiling for sanitizer CI; a re-armed deadline would ride the
    // storm far past this (or into the ctest timeout).
    EXPECT_LT(elapsed, 5.0);
}

}  // namespace
}  // namespace gtopk
