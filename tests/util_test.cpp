#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using gtopk::util::JsonError;
using gtopk::util::JsonValue;
using gtopk::util::LinearFit;
using gtopk::util::RunningStats;
using gtopk::util::TextTable;
using gtopk::util::Xoshiro256;

TEST(Rng, DeterministicForSameSeed) {
    Xoshiro256 a(42), b(42);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(Rng, DifferentSeedsDiffer) {
    Xoshiro256 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next_u64() == b.next_u64()) ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
    Xoshiro256 parent(7);
    Xoshiro256 c1 = parent.fork(3);
    Xoshiro256 c2 = parent.fork(3);
    Xoshiro256 c3 = parent.fork(4);
    EXPECT_EQ(c1.next_u64(), c2.next_u64());
    EXPECT_NE(c1.next_u64(), c3.next_u64());
}

TEST(Rng, ForkDoesNotAdvanceParent) {
    Xoshiro256 a(9);
    Xoshiro256 b(9);
    (void)a.fork(1);
    EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DoubleInUnitInterval) {
    Xoshiro256 rng(5);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.next_double();
        ASSERT_GE(x, 0.0);
        ASSERT_LT(x, 1.0);
    }
}

TEST(Rng, NextBelowRespectsBound) {
    Xoshiro256 rng(5);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 1000; ++i) {
            ASSERT_LT(rng.next_below(bound), bound);
        }
    }
}

TEST(Rng, NextBelowCoversAllValues) {
    Xoshiro256 rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, GaussianMoments) {
    Xoshiro256 rng(123);
    RunningStats stats;
    for (int i = 0; i < 100000; ++i) stats.add(rng.next_gaussian());
    EXPECT_NEAR(stats.mean(), 0.0, 0.02);
    EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, UniformRange) {
    Xoshiro256 rng(77);
    for (int i = 0; i < 1000; ++i) {
        const float x = rng.next_uniform(-2.0f, 3.0f);
        ASSERT_GE(x, -2.0f);
        ASSERT_LT(x, 3.0f);
    }
}

TEST(Rng, ShuffleIsPermutation) {
    Xoshiro256 rng(3);
    std::vector<int> v(100);
    std::iota(v.begin(), v.end(), 0);
    std::vector<int> orig = v;
    gtopk::util::shuffle(v, rng);
    EXPECT_NE(v, orig);  // astronomically unlikely to be identity
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(RunningStats, BasicMoments) {
    RunningStats s;
    for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
    RunningStats s;
    s.add(42.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(LinearFitTest, RecoversExactLine) {
    std::vector<double> xs{0, 1, 2, 3, 4};
    std::vector<double> ys;
    for (double x : xs) ys.push_back(0.436 + 3.6e-5 * x);
    const LinearFit fit = gtopk::util::linear_fit(xs, ys);
    EXPECT_NEAR(fit.intercept, 0.436, 1e-12);
    EXPECT_NEAR(fit.slope, 3.6e-5, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFitTest, NoisyFitHasReasonableR2) {
    gtopk::util::Xoshiro256 rng(1);
    std::vector<double> xs, ys;
    for (int i = 0; i < 200; ++i) {
        const double x = i;
        xs.push_back(x);
        ys.push_back(2.0 + 0.5 * x + 0.1 * rng.next_gaussian());
    }
    const LinearFit fit = gtopk::util::linear_fit(xs, ys);
    EXPECT_NEAR(fit.slope, 0.5, 0.01);
    EXPECT_GT(fit.r2, 0.99);
}

TEST(LinearFitTest, RejectsDegenerateInput) {
    std::vector<double> one{1.0};
    EXPECT_THROW(gtopk::util::linear_fit(one, one), std::invalid_argument);
}

TEST(Percentile, InterpolatesCorrectly) {
    std::vector<double> xs{1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(gtopk::util::percentile(xs, 0), 1.0);
    EXPECT_DOUBLE_EQ(gtopk::util::percentile(xs, 100), 5.0);
    EXPECT_DOUBLE_EQ(gtopk::util::percentile(xs, 50), 3.0);
    EXPECT_DOUBLE_EQ(gtopk::util::percentile(xs, 25), 2.0);
}

TEST(TextTableTest, AlignsColumnsAndKeepsRows) {
    TextTable t({"name", "value"});
    t.add_row({"alpha", "1"});
    t.add_row({"beta_long_name", "2.5"});
    const std::string s = t.to_string();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("beta_long_name"), std::string::npos);
    EXPECT_NE(s.find("---"), std::string::npos);
    // Header line and every row end in newline -> 4 lines total.
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(TextTableTest, FormatsNumbers) {
    EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::fmt_int(42), "42");
}

// --- JSON parser (util/json.hpp): the reader behind gtopktop and the
// flight-bundle tests.

TEST(Json, ParsesNestedDocument) {
    const JsonValue v = JsonValue::parse(
        R"({"a":1,"b":[true,null,"x"],"c":{"d":-2.5e2},"s":"q\"\né"})");
    ASSERT_TRUE(v.is_object());
    EXPECT_EQ(v.find("a")->as_int(), 1);
    const auto& b = v.find("b")->as_array();
    ASSERT_EQ(b.size(), 3u);
    EXPECT_TRUE(b[0].as_bool());
    EXPECT_TRUE(b[1].is_null());
    EXPECT_EQ(b[2].as_string(), "x");
    EXPECT_DOUBLE_EQ(v.find("c")->find("d")->as_number(), -250.0);
    // Escapes decode, \uXXXX lands as UTF-8.
    EXPECT_EQ(v.find("s")->as_string(), "q\"\n\xc3\xa9");
    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_DOUBLE_EQ(v.number_or("a", 9.0), 1.0);
    EXPECT_DOUBLE_EQ(v.number_or("missing", 9.0), 9.0);
}

TEST(Json, ScalarsAndWhitespaceTolerance) {
    EXPECT_DOUBLE_EQ(JsonValue::parse(" 3.5 ").as_number(), 3.5);
    EXPECT_TRUE(JsonValue::parse("true").as_bool());
    EXPECT_TRUE(JsonValue::parse("null").is_null());
    EXPECT_TRUE(JsonValue::parse("[]").as_array().empty());
    EXPECT_TRUE(JsonValue::parse("{}").as_object().empty());
}

TEST(Json, RejectsMalformedInputWithOffsets) {
    EXPECT_THROW(JsonValue::parse(""), JsonError);
    EXPECT_THROW(JsonValue::parse("{"), JsonError);
    EXPECT_THROW(JsonValue::parse("[1,]"), JsonError);
    EXPECT_THROW(JsonValue::parse(R"({"a" 1})"), JsonError);
    EXPECT_THROW(JsonValue::parse("\"unterminated"), JsonError);
    EXPECT_THROW(JsonValue::parse("1 2"), JsonError);  // trailing garbage
    try {
        JsonValue::parse("[true, nope]");
        FAIL() << "expected JsonError";
    } catch (const JsonError& e) {
        EXPECT_GT(e.offset(), 0u);  // points into the document, not at 0
    }
    // Type-mismatch accessors throw too.
    EXPECT_THROW(JsonValue::parse("1").as_string(), JsonError);
    EXPECT_THROW(JsonValue::parse("\"s\"").as_array(), JsonError);
}

}  // namespace
