// Cross-transport parity + TCP failure-shape suite (ctest label: tcp).
//
// The load-bearing claim: the training math depends only on MODELED virtual
// time (arrival stamps ride inside every frame), so the same seeded
// scenario must produce bit-identical final parameters whether the ranks
// are threads over an InProcTransport or processes over a real TcpTransport
// — for all four algorithms, at P in {2, 4, 8}. On top of that:
//
//   * the recorded message stream over TCP diffs zero against the static
//     Schedule IR (each process can only attest its own outbound edges —
//     recording happens on the sender's thread — so the diff is per-edge);
//   * a mid-run peer death surfaces as a TYPED CommError on every rank
//     (RankKilled on the victim, RecvTimeout/RankKilled on survivors),
//     never a hang — the 120s ctest TIMEOUT is the backstop that turns a
//     hang into a failure;
//   * the standard decorators (ReliableTransport, FaultInjecting,
//     Recording) stack over TcpTransport unchanged.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/conformance.hpp"
#include "collectives/collectives.hpp"
#include "collectives/schedule.hpp"
#include "comm/tags.hpp"
#include "comm/tcp_frame.hpp"
#include "comm/tcp_transport.hpp"
#include "sparse/wire.hpp"
#include "tcp_parity_common.hpp"

namespace gtopk {
namespace {

using tcptest::ParityScenario;

// ---------------------------------------------------------------------------
// Process plumbing

std::string worker_binary() {
    const std::filesystem::path self =
        std::filesystem::read_symlink("/proc/self/exe");
    return (self.parent_path() / "tcp_rank_worker").string();
}

std::string fresh_dir() {
    std::string tmpl = "/tmp/gtopk_tcp_XXXXXX";
    char* dir = ::mkdtemp(tmpl.data());
    EXPECT_NE(dir, nullptr);
    return dir ? std::string(dir) : std::string("/tmp");
}

pid_t spawn_worker(const std::vector<std::string>& args) {
    const pid_t pid = ::fork();
    if (pid != 0) return pid;
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& a : args) {
        argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    ::_exit(127);
}

int wait_exit(pid_t pid) {
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0) {
        if (errno != EINTR) return -1;
    }
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
    return -1;
}

struct WorldRun {
    std::vector<int> exit_codes;          // per rank
    std::vector<std::string> param_files; // per rank
    std::vector<std::string> record_files;
};

/// Launch a full world of tcp_rank_worker processes and wait for all of
/// them. `extra(rank)` appends per-rank flags (kill plans etc.).
WorldRun run_world(const std::string& dir, const std::string& algo, int world,
                   const std::vector<std::string>& common_flags = {},
                   const std::map<int, std::vector<std::string>>& per_rank = {},
                   bool record = false) {
    const int port = tcptest::probe_free_port();
    EXPECT_GT(port, 0);
    const std::string bin = worker_binary();
    WorldRun out;
    std::vector<pid_t> pids;
    for (int r = 0; r < world; ++r) {
        const std::string params =
            dir + "/params_" + algo + "_" + std::to_string(r) + ".bin";
        out.param_files.push_back(params);
        std::vector<std::string> args = {
            bin,     "--rank", std::to_string(r), "--world", std::to_string(world),
            "--port", std::to_string(port), "--algo", algo, "--out", params};
        if (record) {
            const std::string rec = dir + "/edges_" + std::to_string(r) + ".txt";
            out.record_files.push_back(rec);
            args.insert(args.end(), {"--record-out", rec});
        }
        args.insert(args.end(), common_flags.begin(), common_flags.end());
        if (const auto it = per_rank.find(r); it != per_rank.end()) {
            args.insert(args.end(), it->second.begin(), it->second.end());
        }
        pids.push_back(spawn_worker(args));
    }
    for (const pid_t pid : pids) out.exit_codes.push_back(wait_exit(pid));
    return out;
}

// ---------------------------------------------------------------------------
// Frame codec sanity (the adversarial byte-level sweep lives in fuzz_test)

TEST(TcpFrame, RoundTripsMessageExactly) {
    comm::Message msg;
    msg.source = 3;
    msg.tag = comm::kFreshTagBase + 17;
    msg.epoch = 2;
    msg.arrival_time_s = 0.125;
    msg.payload = {std::byte{0xde}, std::byte{0xad}, std::byte{0xbe}};

    std::vector<std::byte> wire;
    comm::tcp::encode_frame(msg, /*dst=*/1, wire);
    EXPECT_EQ(wire.size(), comm::tcp::kFrameHeaderBytes + msg.payload.size());

    comm::tcp::FrameDecoder dec;
    dec.feed(wire);
    const auto frame = dec.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->dst, 1);
    EXPECT_EQ(frame->msg.source, 3);
    EXPECT_EQ(frame->msg.tag, comm::kFreshTagBase + 17);
    EXPECT_EQ(frame->msg.epoch, 2);
    EXPECT_EQ(frame->msg.arrival_time_s, 0.125);
    EXPECT_EQ(frame->msg.payload, msg.payload);
    EXPECT_FALSE(dec.next().has_value());
    EXPECT_FALSE(dec.mid_frame());
}

TEST(TcpFrame, DecodesByteDribbleAndBackToBackFrames) {
    comm::Message a;
    a.source = 0;
    a.tag = 7;
    a.payload.assign(100, std::byte{0x55});
    comm::Message b;
    b.source = 1;
    b.tag = 8;

    std::vector<std::byte> wire;
    comm::tcp::encode_frame(a, 2, wire);
    comm::tcp::encode_frame(b, 2, wire);

    comm::tcp::FrameDecoder dec;
    int decoded = 0;
    for (std::size_t i = 0; i < wire.size(); ++i) {
        dec.feed({wire.data() + i, 1});  // worst-case one-byte TCP reads
        while (dec.next()) ++decoded;
    }
    EXPECT_EQ(decoded, 2);
    EXPECT_FALSE(dec.mid_frame());
}

TEST(TcpFrame, RejectsJunkMagicAndOversizedLength) {
    comm::Message msg;
    msg.source = 0;
    msg.tag = 1;
    std::vector<std::byte> wire;
    comm::tcp::encode_frame(msg, 1, wire);

    {
        std::vector<std::byte> junk = wire;
        junk[0] = std::byte{0x00};
        comm::tcp::FrameDecoder dec;
        dec.feed(junk);
        EXPECT_THROW(dec.next(), comm::tcp::FrameError);
    }
    {
        // Claimed payload length above the decoder bound must be rejected
        // from the header alone — no attempt to buffer the body.
        std::vector<std::byte> big = wire;
        big[32] = std::byte{0xff};
        big[36] = std::byte{0xff};
        comm::tcp::FrameDecoder dec(/*max_payload=*/1 << 20);
        dec.feed(big);
        EXPECT_THROW(dec.next(), comm::tcp::FrameError);
    }
}

TEST(TcpFrame, EncodeRefusesOversizedPayload) {
    comm::Message msg;
    msg.source = 0;
    msg.tag = 1;
    msg.payload.assign(64, std::byte{0});
    std::vector<std::byte> wire;
    EXPECT_THROW(comm::tcp::encode_frame(msg, 1, wire, /*max_payload=*/63),
                 comm::tcp::FrameError);
}

// ---------------------------------------------------------------------------
// Cross-transport parity: InProc threads vs TCP processes, bit-identical.

struct ParityCase {
    train::Algorithm algo;
    int world;
};

std::string parity_case_name(const ::testing::TestParamInfo<ParityCase>& info) {
    return std::string(tcptest::algorithm_name(info.param.algo)) + "_P" +
           std::to_string(info.param.world);
}

class CrossTransportParity : public ::testing::TestWithParam<ParityCase> {};

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsByWorld, CrossTransportParity,
    ::testing::Values(ParityCase{train::Algorithm::DenseSsgd, 2},
                      ParityCase{train::Algorithm::DenseSsgd, 4},
                      ParityCase{train::Algorithm::DenseSsgd, 8},
                      ParityCase{train::Algorithm::TopkSsgd, 2},
                      ParityCase{train::Algorithm::TopkSsgd, 4},
                      ParityCase{train::Algorithm::TopkSsgd, 8},
                      ParityCase{train::Algorithm::GtopkSsgd, 2},
                      ParityCase{train::Algorithm::GtopkSsgd, 4},
                      ParityCase{train::Algorithm::GtopkSsgd, 8},
                      ParityCase{train::Algorithm::NaiveGtopkSsgd, 2},
                      ParityCase{train::Algorithm::NaiveGtopkSsgd, 4},
                      ParityCase{train::Algorithm::NaiveGtopkSsgd, 8}),
    parity_case_name);

TEST_P(CrossTransportParity, FinalParamsBitIdenticalToInProcess) {
    const auto [algo, world] = GetParam();
    ParityScenario scenario(world);
    const train::TrainResult baseline = scenario.run(scenario.config(algo));
    ASSERT_FALSE(baseline.final_params.empty());

    const std::string dir = fresh_dir();
    const WorldRun run = run_world(dir, tcptest::algorithm_name(algo), world);
    for (int r = 0; r < world; ++r) {
        ASSERT_EQ(run.exit_codes[static_cast<std::size_t>(r)], tcptest::kExitOk)
            << "rank " << r << " failed";
        // Every replica, not just the lead: synchronous data-parallel SGD
        // keeps all ranks' parameters identical, and any transport-induced
        // perturbation would show up as a single flipped bit here.
        const std::vector<float> params =
            tcptest::read_params(run.param_files[static_cast<std::size_t>(r)]);
        ASSERT_EQ(params.size(), baseline.final_params.size());
        EXPECT_EQ(0, std::memcmp(params.data(), baseline.final_params.data(),
                                 params.size() * sizeof(float)))
            << "rank " << r << " diverged from the in-process run";
    }
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Conformance over TCP: each process's outbound edges diff zero against the
// static Schedule IR.

class TcpConformance : public ::testing::TestWithParam<train::Algorithm> {};
INSTANTIATE_TEST_SUITE_P(Algorithms, TcpConformance,
                         ::testing::Values(train::Algorithm::DenseSsgd,
                                           train::Algorithm::TopkSsgd,
                                           train::Algorithm::GtopkSsgd,
                                           train::Algorithm::NaiveGtopkSsgd));

TEST_P(TcpConformance, OutboundEdgesMatchStaticScheduleExactly) {
    using collectives::AllgatherAlgo;
    using collectives::BcastAlgo;
    const train::Algorithm algo = GetParam();
    const int world = 4;

    const std::string dir = fresh_dir();
    const WorldRun run = run_world(dir, tcptest::algorithm_name(algo), world,
                                   {"--conformance"}, {}, /*record=*/true);
    for (int r = 0; r < world; ++r) {
        ASSERT_EQ(run.exit_codes[static_cast<std::size_t>(r)], tcptest::kExitOk)
            << "rank " << r;
    }

    // Reconstruct the run's comm plan from the generators alone (mirrors
    // conformance_test.cpp's TrainerConformance predictor).
    ParityScenario scenario(world);
    const train::TrainConfig config = scenario.conformance_config(algo);
    const auto probe = nn::make_mlp(scenario.mlp, config.model_seed);
    const std::size_t m = probe->flat_params().size();
    const std::size_t k = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::llround(config.density * static_cast<double>(m))));
    const auto wire = static_cast<std::int64_t>(sparse::wire_size_bytes(k));

    analysis::SchedulePredictor pred(world);
    const std::vector<std::int64_t> wire_per_rank(static_cast<std::size_t>(world),
                                                  wire);
    for (int epoch = 0; epoch < config.epochs; ++epoch) {
        for (int it = 0; it < config.iters_per_epoch; ++it) {
            switch (algo) {
                case train::Algorithm::DenseSsgd:
                    pred.add(collectives::allreduce_ring_schedule(
                        world, static_cast<std::int64_t>(m), 4));
                    break;
                case train::Algorithm::TopkSsgd:
                    pred.add(collectives::allgather_schedule(
                        world, wire, 1, AllgatherAlgo::RecursiveDoubling));
                    break;
                case train::Algorithm::GtopkSsgd:
                    pred.add(collectives::gtopk_merge_schedule(world, wire));
                    pred.add(collectives::broadcast_schedule(
                        world, 0, wire, BcastAlgo::BinomialTree));
                    break;
                case train::Algorithm::NaiveGtopkSsgd:
                    pred.add(collectives::allgatherv_schedule(world, wire_per_rank));
                    break;
                default:
                    FAIL() << "unexpected algorithm";
            }
        }
        pred.add(collectives::allgather_schedule(world, 1, 8, AllgatherAlgo::Ring));
    }

    // Over TCP, recording happens on the sender's thread IN the sender's
    // process: rank r's dump attests exactly the (r -> dst) edges. Diff
    // each dump against the predictor's matching edge rows.
    for (int r = 0; r < world; ++r) {
        std::ifstream is(run.record_files[static_cast<std::size_t>(r)]);
        ASSERT_TRUE(is.good()) << run.record_files[static_cast<std::size_t>(r)];
        std::vector<std::vector<std::pair<int, std::int64_t>>> actual(
            static_cast<std::size_t>(world));
        int dst = 0;
        int tag = 0;
        std::int64_t bytes = 0;
        while (is >> dst >> tag >> bytes) {
            ASSERT_GE(dst, 0);
            ASSERT_LT(dst, world);
            actual[static_cast<std::size_t>(dst)].emplace_back(tag, bytes);
        }
        for (int d = 0; d < world; ++d) {
            const auto& expected = pred.edge(r, d);
            const auto& got = actual[static_cast<std::size_t>(d)];
            ASSERT_EQ(got.size(), expected.size())
                << "edge " << r << "->" << d << " message count";
            for (std::size_t i = 0; i < expected.size(); ++i) {
                EXPECT_EQ(got[i].first, expected[i].tag)
                    << "edge " << r << "->" << d << " msg " << i << " ("
                    << expected[i].proto << " round " << expected[i].round << ")";
                if (expected[i].bytes != collectives::kVariableBytes) {
                    EXPECT_EQ(got[i].second, expected[i].bytes)
                        << "edge " << r << "->" << d << " msg " << i;
                }
            }
        }
    }
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Failure shape: a peer dying mid-run must surface as a typed CommError on
// every rank — never a hang (the ctest TIMEOUT backstops that claim).

TEST(TcpFailureShape, PeerDeathIsTypedOnEveryRank) {
    const int world = 4;
    const int victim = 2;
    const std::string dir = fresh_dir();
    const WorldRun run =
        run_world(dir, "gtopk", world, {"--recv-timeout", "5"},
                  {{victim, {"--die-at-step", "5"}}});
    EXPECT_EQ(run.exit_codes[victim], tcptest::kExitRankKilled)
        << "the victim's own thread must observe RankKilled";
    for (int r = 0; r < world; ++r) {
        if (r == victim) continue;
        const int code = run.exit_codes[static_cast<std::size_t>(r)];
        EXPECT_TRUE(code == tcptest::kExitRecvTimeout ||
                    code == tcptest::kExitRankKilled)
            << "rank " << r << " exited " << code
            << " (wanted a typed CommError: 42 RecvTimeout / 43 RankKilled)";
    }
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Decorator composition: ReliableTransport (+ Recording in the conformance
// test above, + FaultInjecting in the kill test) stacks over TcpTransport
// unchanged. Cross-process the ack/recovery plane runs the full wire ARQ —
// sequence envelopes out, cumulative-ack and gap-pull frames back
// (DESIGN.md §15) — which on a fault-free fabric must still be a bit-exact
// identity. tcp_recovery_test.cpp drives the same stack through seeded
// drops, socket kills and rank death.

TEST(TcpDecorators, ReliableEnvelopeOverTcpIsBitExact) {
    const int world = 4;
    ParityScenario scenario(world);
    const train::TrainResult baseline =
        scenario.run(scenario.config(train::Algorithm::GtopkSsgd));

    const std::string dir = fresh_dir();
    const WorldRun run = run_world(dir, "gtopk", world, {"--reliable"});
    for (int r = 0; r < world; ++r) {
        ASSERT_EQ(run.exit_codes[static_cast<std::size_t>(r)], tcptest::kExitOk)
            << "rank " << r;
        const std::vector<float> params =
            tcptest::read_params(run.param_files[static_cast<std::size_t>(r)]);
        ASSERT_EQ(params.size(), baseline.final_params.size());
        EXPECT_EQ(0, std::memcmp(params.data(), baseline.final_params.data(),
                                 params.size() * sizeof(float)))
            << "rank " << r;
    }
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Env bootstrap contract (what gtopkrun exports).

TEST(TcpConfigFromEnv, ParsesAndValidatesRendezvous) {
    ::setenv("GTOPK_RANK", "3", 1);
    ::setenv("GTOPK_WORLD_SIZE", "8", 1);
    ::setenv("GTOPK_RENDEZVOUS", "10.0.0.1:29400", 1);
    const auto cfg = comm::TcpTransport::config_from_env();
    ASSERT_TRUE(cfg.has_value());
    EXPECT_EQ(cfg->rank, 3);
    EXPECT_EQ(cfg->world_size, 8);
    EXPECT_EQ(cfg->rendezvous_host, "10.0.0.1");
    EXPECT_EQ(cfg->rendezvous_port, 29400);

    ::setenv("GTOPK_RENDEZVOUS", "no-port-here", 1);
    EXPECT_THROW(comm::TcpTransport::config_from_env(), std::invalid_argument);

    ::unsetenv("GTOPK_RANK");
    ::unsetenv("GTOPK_WORLD_SIZE");
    ::unsetenv("GTOPK_RENDEZVOUS");
    EXPECT_FALSE(comm::TcpTransport::config_from_env().has_value());
}

}  // namespace
}  // namespace gtopk
