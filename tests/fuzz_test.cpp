// Randomized robustness tests: the wire decoder must never accept corrupt
// input silently, the mailbox must keep per-stream order under message
// storms, and the aggregation stack must stay total over random inputs.
// Corruption is driven by the fault transport's own bit-flip injector
// (comm::corrupt_bytes) so the fuzz corpus matches what a chaos run
// actually puts on the wire. Runs under TSan and ASan in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>

#include "comm/cluster.hpp"
#include "comm/fault_transport.hpp"
#include "comm/mailbox.hpp"
#include "comm/tags.hpp"
#include "comm/tcp_frame.hpp"
#include "core/aggregators.hpp"
#include "sparse/topk_select.hpp"
#include "sparse/wire.hpp"
#include "util/rng.hpp"

namespace {

using gtopk::comm::kTagTestData;

using namespace gtopk;
using util::Xoshiro256;

TEST(WireFuzz, RandomBytesNeverDecodeSilently) {
    Xoshiro256 rng(0xF022);
    for (int trial = 0; trial < 2000; ++trial) {
        const std::size_t len = rng.next_below(200);
        std::vector<std::byte> junk(len);
        for (auto& b : junk) b = static_cast<std::byte>(rng.next_below(256));
        try {
            const sparse::SparseGradient g = sparse::deserialize(junk);
            // If it decoded, it must be a fully valid canonical gradient
            // whose re-serialization reproduces the input exactly.
            EXPECT_NO_THROW(g.validate());
            EXPECT_EQ(sparse::serialize(g), junk);
        } catch (const std::invalid_argument&) {
            // Expected for almost all inputs.
        }
    }
}

TEST(WireFuzz, BitFlippedValidPayloadsEitherThrowOrStayCanonical) {
    Xoshiro256 rng(77);
    std::vector<float> dense(500);
    for (auto& v : dense) v = static_cast<float>(rng.next_gaussian());
    const auto g = sparse::topk_select(dense, 40);
    const auto valid = sparse::serialize(g);
    for (int trial = 0; trial < 500; ++trial) {
        auto corrupted = valid;
        const std::size_t pos = rng.next_below(corrupted.size());
        corrupted[pos] ^= static_cast<std::byte>(1 + rng.next_below(255));
        try {
            const auto decoded = sparse::deserialize(corrupted);
            EXPECT_NO_THROW(decoded.validate());
        } catch (const std::invalid_argument&) {
        }
    }
}

TEST(WireFuzz, TruncationsAlwaysThrow) {
    Xoshiro256 rng(78);
    std::vector<float> dense(300);
    for (auto& v : dense) v = static_cast<float>(rng.next_gaussian());
    const auto valid = sparse::serialize(sparse::topk_select(dense, 25));
    for (std::size_t len = 0; len < valid.size(); ++len) {
        const std::vector<std::byte> prefix(valid.begin(),
                                            valid.begin() + static_cast<std::ptrdiff_t>(len));
        EXPECT_THROW((void)sparse::deserialize(prefix), std::invalid_argument)
            << "prefix length " << len;
    }
}

TEST(WireFuzz, ViewAndOwningDecoderAgreeOnCorruptedPayloads) {
    // The zero-copy deserialize_view must accept exactly the same inputs as
    // the owning deserialize: for every corrupted payload either BOTH throw
    // std::invalid_argument or BOTH decode to the same gradient. Corruption
    // uses the chaos transport's injector, so this is the precise
    // rejection-path coverage for what a corrupt_prob plan produces.
    Xoshiro256 rng(0xC0DE);
    std::vector<float> dense(600);
    for (auto& v : dense) v = static_cast<float>(rng.next_gaussian());
    const auto valid = sparse::serialize(sparse::topk_select(dense, 48));
    for (int trial = 0; trial < 2000; ++trial) {
        auto corrupted = valid;
        comm::corrupt_bytes(corrupted, rng, /*flips=*/1 + static_cast<int>(
                                                            rng.next_below(4)));
        bool owning_threw = false;
        sparse::SparseGradient owning;
        try {
            owning = sparse::deserialize(corrupted);
        } catch (const std::invalid_argument&) {
            owning_threw = true;
        }
        bool view_threw = false;
        sparse::SparseGradient via_view;
        try {
            via_view = sparse::deserialize_view(corrupted).materialize();
        } catch (const std::invalid_argument&) {
            view_threw = true;
        }
        ASSERT_EQ(view_threw, owning_threw) << "decoders disagree, trial " << trial;
        if (!owning_threw) {
            EXPECT_NO_THROW(owning.validate());
            // Bitwise comparison via re-serialization: a flipped value byte
            // may decode to NaN, where float == would spuriously differ.
            ASSERT_EQ(sparse::serialize(via_view), sparse::serialize(owning))
                << "trial " << trial;
        }
    }
}

TEST(WireFuzz, ViewDecoderRejectsRandomJunk) {
    Xoshiro256 rng(0xF023);
    for (int trial = 0; trial < 2000; ++trial) {
        // Build in a 4-byte-aligned float buffer so alignment never masks a
        // validation bug (the decoder must reject on CONTENT here).
        std::vector<float> backing((rng.next_below(50)));
        auto* p = reinterpret_cast<std::byte*>(backing.data());
        const std::span<std::byte> junk(p, backing.size() * sizeof(float));
        for (auto& b : junk) b = static_cast<std::byte>(rng.next_below(256));
        try {
            const auto view = sparse::deserialize_view(junk);
            EXPECT_NO_THROW(view.materialize().validate());
            EXPECT_EQ(sparse::serialize(view.materialize()),
                      std::vector<std::byte>(junk.begin(), junk.end()));
        } catch (const std::invalid_argument&) {
            // Expected for almost all inputs.
        }
    }
}

TEST(WireFuzz, ViewDecoderThrowsOnEveryTruncation) {
    Xoshiro256 rng(79);
    std::vector<float> dense(300);
    for (auto& v : dense) v = static_cast<float>(rng.next_gaussian());
    const auto valid = sparse::serialize(sparse::topk_select(dense, 25));
    for (std::size_t len = 0; len < valid.size(); ++len) {
        const std::span<const std::byte> prefix(valid.data(), len);
        EXPECT_THROW((void)sparse::deserialize_view(prefix), std::invalid_argument)
            << "prefix length " << len;
    }
}

TEST(WireFuzz, ViewDecoderRejectsUnalignedPayload) {
    // deserialize_view requires 4-byte alignment; a view over bytes shifted
    // by one must throw rather than read misaligned (UB under UBSan).
    std::vector<float> dense(100);
    Xoshiro256 rng(80);
    for (auto& v : dense) v = static_cast<float>(rng.next_gaussian());
    const auto valid = sparse::serialize(sparse::topk_select(dense, 10));
    std::vector<std::byte> shifted(valid.size() + 1);
    std::copy(valid.begin(), valid.end(), shifted.begin() + 1);
    const std::span<const std::byte> unaligned(shifted.data() + 1, valid.size());
    if (reinterpret_cast<std::uintptr_t>(unaligned.data()) % 4 != 0) {
        EXPECT_THROW((void)sparse::deserialize_view(unaligned),
                     std::invalid_argument);
    }
}

TEST(MailboxStress, PerStreamFifoUnderConcurrentStorm) {
    comm::Mailbox mailbox;
    constexpr int kSenders = 4;
    constexpr int kPerSender = 500;
    std::vector<std::thread> senders;
    for (int s = 0; s < kSenders; ++s) {
        senders.emplace_back([&, s] {
            for (int i = 0; i < kPerSender; ++i) {
                comm::Message m;
                m.source = s;
                m.tag = kTagTestData;
                m.payload.resize(sizeof(int));
                std::memcpy(m.payload.data(), &i, sizeof(int));
                mailbox.push(std::move(m));
            }
        });
    }
    // Consumer interleaves matched pops across sources; each source's
    // stream must arrive in order.
    std::vector<int> next(kSenders, 0);
    for (int total = 0; total < kSenders * kPerSender; ++total) {
        const comm::Message m = mailbox.pop(total % kSenders, kTagTestData);
        int value = -1;
        std::memcpy(&value, m.payload.data(), sizeof(int));
        EXPECT_EQ(value, next[static_cast<std::size_t>(m.source)]++);
    }
    for (auto& t : senders) t.join();
    EXPECT_EQ(mailbox.size(), 0u);
}

// ---------------------------------------------------------------------------
// TCP frame decoder: what a hostile or half-dead peer can put on a socket.
// The decoder's contract mirrors the receiver loop's: a malformed HEADER
// throws comm::tcp::FrameError (the receiver drops the peer), while an
// incomplete frame is simply "need more bytes" — never UB, never a silent
// accept. Runs under the ASan/UBSan/TSan fuzz label.

std::vector<std::byte> encode_test_frame(int src, int tag, std::size_t payload,
                                         Xoshiro256& rng) {
    comm::Message m;
    m.source = src;
    m.tag = tag;
    m.epoch = static_cast<int>(rng.next_below(4));
    m.arrival_time_s = static_cast<double>(rng.next_below(1000)) * 1e-3;
    m.payload.resize(payload);
    for (auto& b : m.payload) b = static_cast<std::byte>(rng.next_below(256));
    std::vector<std::byte> out;
    comm::tcp::encode_frame(m, static_cast<int>(rng.next_below(8)), out);
    return out;
}

TEST(TcpFrameFuzz, RandomBytesNeverDecodeSilently) {
    Xoshiro256 rng(0x7C91);
    for (int trial = 0; trial < 2000; ++trial) {
        const std::size_t len = rng.next_below(120);
        std::vector<std::byte> junk(len);
        for (auto& b : junk) b = static_cast<std::byte>(rng.next_below(256));
        comm::tcp::FrameDecoder dec;
        dec.feed(junk);
        try {
            while (dec.next()) {
                // A random 44-byte prefix passing magic+version+range checks
                // is astronomically unlikely; if it does, it must have been
                // a well-formed header and re-encoding must not throw.
            }
            // No complete header yet: short input is "need more bytes".
            EXPECT_LT(dec.buffered(), junk.size() + 1);
        } catch (const comm::tcp::FrameError&) {
            // Expected for almost all inputs once a header is present.
            EXPECT_GE(len, comm::tcp::kFrameHeaderBytes);
        }
    }
}

TEST(TcpFrameFuzz, BitFlippedHeadersEitherThrowOrStayWellFormed) {
    Xoshiro256 rng(0x7C92);
    for (int trial = 0; trial < 1000; ++trial) {
        std::vector<std::byte> wire =
            encode_test_frame(3, comm::kFreshTagBase + 9, 32, rng);
        const std::size_t pos = rng.next_below(comm::tcp::kFrameHeaderBytes);
        wire[pos] ^= static_cast<std::byte>(1 + rng.next_below(255));
        comm::tcp::FrameDecoder dec;
        dec.feed(wire);
        try {
            const auto frame = dec.next();
            if (frame) {
                // Survived validation (e.g. a payload bit or a benign field
                // flip): the decoded message must itself re-encode cleanly.
                std::vector<std::byte> out;
                EXPECT_NO_THROW(
                    comm::tcp::encode_frame(frame->msg, frame->dst, out));
            }
            // else: the flip grew payload_len within bounds — more bytes
            // wanted, which the receiver surfaces as EOF-mid-frame.
        } catch (const comm::tcp::FrameError&) {
            // Rejected loudly. The receiver drops the peer.
        }
    }
}

TEST(TcpFrameFuzz, TruncatedStreamsNeverYieldPartialFrames) {
    Xoshiro256 rng(0x7C93);
    std::vector<std::byte> wire;
    for (int i = 0; i < 3; ++i) {
        const auto f = encode_test_frame(i, 100 + i, 10 + 7 * static_cast<std::size_t>(i), rng);
        wire.insert(wire.end(), f.begin(), f.end());
    }
    for (std::size_t len = 0; len < wire.size(); ++len) {
        comm::tcp::FrameDecoder dec;
        dec.feed({wire.data(), len});
        int decoded = 0;
        while (dec.next()) ++decoded;
        EXPECT_LE(decoded, 3);
        // A strict prefix of 3 frames holds at most the complete frames
        // that fully fit; whatever remains is a visible mid-frame residue.
        EXPECT_EQ(dec.mid_frame(), dec.buffered() > 0);
        if (len < comm::tcp::kFrameHeaderBytes) EXPECT_EQ(decoded, 0);
    }
    // The unbroken stream decodes all three exactly.
    comm::tcp::FrameDecoder dec;
    dec.feed(wire);
    int decoded = 0;
    while (dec.next()) ++decoded;
    EXPECT_EQ(decoded, 3);
    EXPECT_FALSE(dec.mid_frame());
}

TEST(TcpFrameFuzz, MidFrameDisconnectLeavesDetectableResidue) {
    Xoshiro256 rng(0x7C94);
    const std::vector<std::byte> wire = encode_test_frame(1, 42, 64, rng);
    comm::tcp::FrameDecoder dec;
    // Header plus half the payload, then the peer "dies".
    dec.feed({wire.data(), comm::tcp::kFrameHeaderBytes + 32});
    EXPECT_FALSE(dec.next().has_value());
    EXPECT_TRUE(dec.mid_frame());  // receiver logs the torn frame on EOF
    dec.reset();
    EXPECT_FALSE(dec.mid_frame());
    // The decoder is reusable after a reset.
    dec.feed(wire);
    EXPECT_TRUE(dec.next().has_value());
}

TEST(TcpFrameFuzz, OversizedLengthPrefixRejectedBeforeBuffering) {
    Xoshiro256 rng(0x7C95);
    std::vector<std::byte> wire = encode_test_frame(0, 5, 8, rng);
    // Patch the u64 payload-length field (offset 32) to an absurd claim;
    // the decoder must throw from the header alone instead of waiting to
    // buffer a gigabyte that will never arrive.
    wire[37] = std::byte{0x40};  // payload_len |= 2^45
    comm::tcp::FrameDecoder dec;
    dec.feed({wire.data(), comm::tcp::kFrameHeaderBytes});
    EXPECT_THROW((void)dec.next(), comm::tcp::FrameError);
}

TEST(TcpFrameFuzz, RandomChunkingDecodesStreamsExactly) {
    Xoshiro256 rng(0x7C96);
    for (int trial = 0; trial < 50; ++trial) {
        const int frames = 1 + static_cast<int>(rng.next_below(6));
        std::vector<std::byte> wire;
        std::vector<std::size_t> sizes;
        for (int i = 0; i < frames; ++i) {
            const std::size_t payload = rng.next_below(300);
            sizes.push_back(payload);
            const auto f = encode_test_frame(i % 4, 10 + i, payload, rng);
            wire.insert(wire.end(), f.begin(), f.end());
        }
        comm::tcp::FrameDecoder dec;
        std::vector<std::size_t> got;
        std::size_t off = 0;
        while (off < wire.size()) {
            const std::size_t chunk =
                std::min<std::size_t>(1 + rng.next_below(97), wire.size() - off);
            dec.feed({wire.data() + off, chunk});
            off += chunk;
            while (const auto frame = dec.next()) {
                got.push_back(frame->msg.payload.size());
            }
        }
        EXPECT_EQ(got, sizes) << "trial " << trial;
        EXPECT_FALSE(dec.mid_frame());
    }
}

TEST(AggregationFuzz, RandomShapesNeverCrashAndAlwaysAgree) {
    Xoshiro256 rng(0xABCD);
    for (int trial = 0; trial < 15; ++trial) {
        const int world = 1 + static_cast<int>(rng.next_below(6));
        const std::int64_t m = 1 + static_cast<std::int64_t>(rng.next_below(400));
        const std::size_t k =
            1 + static_cast<std::size_t>(rng.next_below(static_cast<std::uint64_t>(m)));
        std::vector<sparse::SparseGradient> locals;
        for (int r = 0; r < world; ++r) {
            Xoshiro256 wr = rng.fork(static_cast<std::uint64_t>(trial * 100 + r));
            std::vector<float> dense(static_cast<std::size_t>(m));
            for (auto& v : dense) {
                // Mix of zeros, ties and normal values.
                const auto kind = wr.next_below(4);
                v = kind == 0 ? 0.0f
                    : kind == 1
                        ? 1.0f
                        : static_cast<float>(wr.next_gaussian());
            }
            const std::size_t local_k =
                1 + static_cast<std::size_t>(
                        wr.next_below(static_cast<std::uint64_t>(m)));
            locals.push_back(sparse::topk_select(dense, local_k));
        }
        std::vector<sparse::SparseGradient> results(static_cast<std::size_t>(world));
        comm::Cluster::run(world, comm::NetworkModel::free(),
                           [&](comm::Communicator& comm) {
                               results[static_cast<std::size_t>(comm.rank())] =
                                   core::gtopk_allreduce(
                                       comm,
                                       locals[static_cast<std::size_t>(comm.rank())], k)
                                       .global;
                           });
        for (int r = 1; r < world; ++r) {
            ASSERT_EQ(results[static_cast<std::size_t>(r)], results[0])
                << "trial " << trial << " world " << world;
        }
        EXPECT_NO_THROW(results[0].validate());
        EXPECT_LE(results[0].nnz(), k);
    }
}

}  // namespace
