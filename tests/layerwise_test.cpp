// Layer-wise gTop-k (the paper's Sec. VII future work): trainer behavior
// and the WFBP-style overlap model.
#include <gtest/gtest.h>

#include "collectives/cost_model.hpp"
#include "data/sampler.hpp"
#include "data/synthetic_images.hpp"
#include "nn/model_zoo.hpp"
#include "perfmodel/overlap_model.hpp"
#include "train/trainer.hpp"

namespace {

using namespace gtopk;
using comm::NetworkModel;
using train::Algorithm;
using train::TrainConfig;

struct Harness {
    data::SyntheticImageDataset dataset;
    data::ShardedSampler sampler;
    nn::MlpConfig mlp;

    explicit Harness(int world)
        : dataset(
              []() {
                  data::SyntheticImageDataset::Config cfg;
                  cfg.image_size = 8;
                  cfg.noise_std = 0.6f;
                  return cfg;
              }(),
              321),
          sampler(8192, 1024, world, 5) {
        mlp.input_dim = dataset.feature_dim();
        mlp.hidden_dims = {48, 24};
    }
};

train::TrainResult run(int world, const TrainConfig& config, const Harness& h) {
    return train::train_distributed(
        world, NetworkModel::free(), config,
        [cfg = h.mlp](std::uint64_t seed) { return nn::make_mlp(cfg, seed); },
        [&](std::int64_t step, int rank) {
            return h.dataset.batch_flat(h.sampler.batch_indices(step, rank, 16));
        },
        [&] { return h.dataset.batch_flat(h.sampler.test_indices(256)); });
}

TEST(LayerwiseTrainer, ConvergesLikeGlobalGtopk) {
    Harness h(4);
    TrainConfig layerwise;
    layerwise.algorithm = Algorithm::LayerwiseGtopkSsgd;
    layerwise.epochs = 6;
    layerwise.iters_per_epoch = 30;
    layerwise.lr = 0.05f;
    layerwise.density = 0.02;
    TrainConfig global = layerwise;
    global.algorithm = Algorithm::GtopkSsgd;

    const auto rl = run(4, layerwise, h);
    const auto rg = run(4, global, h);
    EXPECT_LT(rl.epochs.back().train_loss, rl.epochs.front().train_loss);
    EXPECT_GT(rl.epochs.back().val_accuracy, 0.3);
    // Same ballpark as the global variant.
    EXPECT_NEAR(rl.epochs.back().train_loss, rg.epochs.back().train_loss, 0.5);
}

TEST(LayerwiseTrainer, DeterministicAcrossRuns) {
    Harness h(2);
    TrainConfig config;
    config.algorithm = Algorithm::LayerwiseGtopkSsgd;
    config.epochs = 2;
    config.iters_per_epoch = 8;
    config.density = 0.05;
    const auto a = run(2, config, h);
    const auto b = run(2, config, h);
    EXPECT_EQ(a.final_params, b.final_params);
}

TEST(LayerwiseTrainer, SendsMoreMessagesButSimilarBytes) {
    // One aggregation per parameter tensor -> more messages (latency), but
    // the payload volume is comparable to the global variant.
    Harness h(4);
    TrainConfig layerwise;
    layerwise.algorithm = Algorithm::LayerwiseGtopkSsgd;
    layerwise.epochs = 1;
    layerwise.iters_per_epoch = 10;
    layerwise.density = 0.02;
    TrainConfig global = layerwise;
    global.algorithm = Algorithm::GtopkSsgd;
    const auto rl = run(4, layerwise, h);
    const auto rg = run(4, global, h);
    EXPECT_GT(rl.rank0_comm.messages_sent, rg.rank0_comm.messages_sent);
    EXPECT_LT(static_cast<double>(rl.rank0_comm.bytes_sent),
              3.0 * static_cast<double>(rg.rank0_comm.bytes_sent));
}

TEST(LayerwiseTrainer, WorksOnNonPowerOfTwoWorld) {
    Harness h(3);
    TrainConfig config;
    config.algorithm = Algorithm::LayerwiseGtopkSsgd;
    config.epochs = 3;
    config.iters_per_epoch = 15;
    config.density = 0.02;
    const auto r = run(3, config, h);
    EXPECT_LT(r.epochs.back().train_loss, r.epochs.front().train_loss);
}

// ---- overlap model ----

TEST(OverlapModel, SerializedTimeIsSumOfSegments) {
    const auto net = NetworkModel::one_gbps_ethernet();
    const std::vector<std::int64_t> segs{1'000'000, 2'000'000, 4'000'000};
    double expect = 0;
    for (auto s : segs) {
        expect += collectives::gtopk_allreduce_time_s(
            net, 16, static_cast<std::uint64_t>(s / 1000));
    }
    EXPECT_NEAR(perfmodel::layerwise_gtopk_comm_time_s(net, 16, segs, 1e-3), expect,
                1e-12);
}

TEST(OverlapModel, BackwardDominatedHidesAllButLastSegment) {
    const auto net = NetworkModel::one_gbps_ethernet();
    const std::vector<std::int64_t> segs{100'000, 100'000, 100'000};
    // Huge backward time: every segment's communication hides behind the
    // remaining backward work EXCEPT the last one's (the first layer's
    // gradient is only ready when backward finishes), so exactly (n-1)/n
    // of the communication is hidden for n equal segments.
    const auto r = perfmodel::overlapped_iteration(net, 8, segs, 1e-3, 0.1, 100.0);
    EXPECT_NEAR(r.hidden_fraction, 2.0 / 3.0, 1e-6);
    const double one_segment_comm =
        collectives::gtopk_allreduce_time_s(net, 8, 100);
    EXPECT_NEAR(r.iteration_s, 0.1 + 100.0 + one_segment_comm, 1e-9);
}

TEST(OverlapModel, NoHidingWhenBackwardIsInstant) {
    const auto net = NetworkModel::one_gbps_ethernet();
    const std::vector<std::int64_t> segs{1'000'000, 1'000'000};
    const auto r = perfmodel::overlapped_iteration(net, 8, segs, 1e-2, 0.0, 0.0);
    EXPECT_NEAR(r.hidden_fraction, 0.0, 1e-9);
    EXPECT_NEAR(r.iteration_s,
                perfmodel::layerwise_gtopk_comm_time_s(net, 8, segs, 1e-2), 1e-9);
}

TEST(OverlapModel, OverlapNeverWorseThanSerial) {
    const auto net = NetworkModel::one_gbps_ethernet();
    const std::vector<std::int64_t> segs{500'000, 50'000, 2'000'000, 10'000};
    for (double tb : {0.0, 0.01, 0.1, 1.0}) {
        const auto r = perfmodel::overlapped_iteration(net, 32, segs, 1e-3, 0.05, tb);
        const double serial =
            0.05 + tb + perfmodel::layerwise_gtopk_comm_time_s(net, 32, segs, 1e-3);
        EXPECT_LE(r.iteration_s, serial + 1e-12) << "tb=" << tb;
        EXPECT_GE(r.hidden_fraction, 0.0);
        EXPECT_LE(r.hidden_fraction, 1.0);
    }
}

TEST(OverlapModel, EmptySegmentsDegenerate) {
    const auto net = NetworkModel::one_gbps_ethernet();
    const auto r = perfmodel::overlapped_iteration(net, 8, {}, 1e-3, 0.2, 0.3);
    EXPECT_NEAR(r.iteration_s, 0.5, 1e-12);
    EXPECT_EQ(r.exposed_comm_s, 0.0);
}

}  // namespace
