// Shared plumbing for the cross-transport parity harness: the gtest parent
// (tcp_transport_test.cpp) and the per-rank worker executable
// (tcp_rank_worker.cpp) must build the IDENTICAL training scenario — same
// dataset seed, shard plan, model and schedule — or "bit-identical final
// params" would compare two different computations. Keep this header free
// of gtest so the worker stays a plain binary.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/cluster.hpp"
#include "data/sampler.hpp"
#include "data/synthetic_images.hpp"
#include "nn/model_zoo.hpp"
#include "train/trainer.hpp"

namespace gtopk::tcptest {

/// Worker exit contract: the parent asserts on these, so a peer death must
/// map onto a TYPED code — anything else (a hang eats the ctest timeout,
/// a crash yields 128+sig) fails the test.
inline constexpr int kExitOk = 0;
inline constexpr int kExitRecvTimeout = 42;
inline constexpr int kExitRankKilled = 43;
inline constexpr int kExitOtherError = 44;

inline train::Algorithm parse_algorithm(const std::string& name) {
    if (name == "dense") return train::Algorithm::DenseSsgd;
    if (name == "topk") return train::Algorithm::TopkSsgd;
    if (name == "gtopk") return train::Algorithm::GtopkSsgd;
    if (name == "naive") return train::Algorithm::NaiveGtopkSsgd;
    throw std::invalid_argument("unknown algorithm: " + name);
}

inline const char* algorithm_name(train::Algorithm algo) {
    switch (algo) {
        case train::Algorithm::DenseSsgd: return "dense";
        case train::Algorithm::TopkSsgd: return "topk";
        case train::Algorithm::GtopkSsgd: return "gtopk";
        case train::Algorithm::NaiveGtopkSsgd: return "naive";
        default: return "?";
    }
}

/// The parity scenario (a twin of chaos::TinyTrainScenario, duplicated here
/// so the worker does not pull in gtest): seconds-scale, deterministic,
/// identical on every transport because all math depends only on modeled
/// virtual time.
struct ParityScenario {
    data::SyntheticImageDataset dataset;
    data::ShardedSampler sampler;
    nn::MlpConfig mlp;
    int world;

    explicit ParityScenario(int world_size)
        : dataset(
              [] {
                  data::SyntheticImageDataset::Config cfg;
                  cfg.image_size = 8;
                  cfg.noise_std = 0.6f;
                  return cfg;
              }(),
              1234),
          sampler(2048, 512, world_size, 99),
          world(world_size) {
        mlp.input_dim = dataset.feature_dim();
        mlp.hidden_dims = {16};
        mlp.classes = 10;
    }

    /// The parity run: every algorithm, bit-identical across transports.
    train::TrainConfig config(train::Algorithm algo) const {
        train::TrainConfig cfg;
        cfg.algorithm = algo;
        cfg.epochs = 2;
        cfg.iters_per_epoch = 8;
        cfg.lr = 0.05f;
        cfg.density = 0.05;
        return cfg;
    }

    /// The conformance run: mirrors conformance_test.cpp's TrainerConformance
    /// shape (short, invariant checks off so the comm pattern is the paper's).
    train::TrainConfig conformance_config(train::Algorithm algo) const {
        train::TrainConfig cfg;
        cfg.algorithm = algo;
        cfg.epochs = 2;
        cfg.iters_per_epoch = 3;
        cfg.density = 0.01;
        cfg.check_invariants = false;
        return cfg;
    }

    train::TrainResult run(train::TrainConfig cfg) const {
        return train::train_distributed(
            world, comm::NetworkModel::free(), cfg,
            [mc = mlp](std::uint64_t seed) { return nn::make_mlp(mc, seed); },
            [this](std::int64_t step, int rank) {
                return dataset.batch_flat(sampler.batch_indices(step, rank, 8));
            },
            train::EvalBatchProvider{});
    }
};

// ---------------------------------------------------------------------------
// Raw little-endian param files: the worker dumps its final replica, the
// parent memcmp's the bytes. Text round-trips would destroy the bit-exact
// comparison this harness exists for.

inline void write_params(const std::string& path, const std::vector<float>& p) {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) throw std::runtime_error("cannot write " + path);
    const std::uint64_t n = p.size();
    os.write(reinterpret_cast<const char*>(&n), sizeof(n));
    os.write(reinterpret_cast<const char*>(p.data()),
             static_cast<std::streamsize>(n * sizeof(float)));
}

inline std::vector<float> read_params(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    if (!is) throw std::runtime_error("cannot read " + path);
    std::uint64_t n = 0;
    is.read(reinterpret_cast<char*>(&n), sizeof(n));
    std::vector<float> p(n);
    is.read(reinterpret_cast<char*>(p.data()),
            static_cast<std::streamsize>(n * sizeof(float)));
    if (!is) throw std::runtime_error("short read on " + path);
    return p;
}

/// Probe a free loopback port (bind 0, read back, close). The tiny window
/// before the rendezvous rank rebinds it is an accepted launcher race.
inline int probe_free_port() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    int port = -1;
    socklen_t len = sizeof(addr);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0 &&
        ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
        port = static_cast<int>(ntohs(addr.sin_port));
    }
    ::close(fd);
    return port;
}

}  // namespace gtopk::tcptest
