// Parameter-Server trainer tests: convergence, exact equivalence with the
// decentralized naive gTop-k (same math, different topology), and the
// PS-vs-AllReduce communication cost ordering.
#include <gtest/gtest.h>

#include "collectives/cost_model.hpp"
#include "data/sampler.hpp"
#include "data/synthetic_images.hpp"
#include "nn/model_zoo.hpp"
#include "ps/ps_cost_model.hpp"
#include "ps/ps_trainer.hpp"
#include "train/trainer.hpp"

namespace {

using namespace gtopk;
using comm::NetworkModel;

struct PsHarness {
    data::SyntheticImageDataset dataset;
    data::ShardedSampler sampler;
    nn::MlpConfig mlp;

    explicit PsHarness(int workers)
        : dataset(
              []() {
                  data::SyntheticImageDataset::Config cfg;
                  cfg.image_size = 8;
                  cfg.noise_std = 0.6f;
                  return cfg;
              }(),
              1234),
          sampler(8192, 1024, workers, 99) {
        mlp.input_dim = dataset.feature_dim();
        mlp.hidden_dims = {32, 16};
    }

    train::ModelFactory factory() const {
        return [cfg = mlp](std::uint64_t seed) { return nn::make_mlp(cfg, seed); };
    }
    train::TrainBatchProvider batches() const {
        return [this](std::int64_t step, int rank) {
            return dataset.batch_flat(sampler.batch_indices(step, rank, 16));
        };
    }
    train::EvalBatchProvider eval() const {
        return [this] { return dataset.batch_flat(sampler.test_indices(256)); };
    }
};

class PsAggregationSweep : public ::testing::TestWithParam<ps::PsAggregation> {};
INSTANTIATE_TEST_SUITE_P(Both, PsAggregationSweep,
                         ::testing::Values(ps::PsAggregation::Dense,
                                           ps::PsAggregation::Gtopk));

TEST_P(PsAggregationSweep, ConvergesOnSyntheticTask) {
    PsHarness h(4);
    ps::PsTrainConfig config;
    config.aggregation = GetParam();
    config.epochs = 5;
    config.iters_per_epoch = 30;
    config.lr = 0.05f;
    config.density = 0.02;
    const auto result = ps::train_parameter_server(4, NetworkModel::free(), config,
                                                   h.factory(), h.batches(), h.eval());
    ASSERT_EQ(result.epochs.size(), 5u);
    EXPECT_LT(result.epochs.back().train_loss, result.epochs.front().train_loss);
    EXPECT_GT(result.epochs.back().val_accuracy, 0.3);
}

TEST(PsTrainer, GtopkMatchesDecentralizedNaiveGtopkBitForBit) {
    // Same global selection math, different topology -> identical final
    // parameters for identical seeds/batches.
    PsHarness h(4);
    ps::PsTrainConfig ps_config;
    ps_config.aggregation = ps::PsAggregation::Gtopk;
    ps_config.epochs = 3;
    ps_config.iters_per_epoch = 12;
    ps_config.lr = 0.05f;
    ps_config.density = 0.02;

    train::TrainConfig ar_config;
    ar_config.algorithm = train::Algorithm::NaiveGtopkSsgd;
    ar_config.epochs = ps_config.epochs;
    ar_config.iters_per_epoch = ps_config.iters_per_epoch;
    ar_config.lr = ps_config.lr;
    ar_config.momentum = ps_config.momentum;
    ar_config.density = ps_config.density;

    const auto ps_run = ps::train_parameter_server(
        4, NetworkModel::free(), ps_config, h.factory(), h.batches(), nullptr);
    const auto ar_run = train::train_distributed(
        4, NetworkModel::free(), ar_config, h.factory(), h.batches(), nullptr);
    ASSERT_EQ(ps_run.final_params.size(), ar_run.final_params.size());
    EXPECT_EQ(ps_run.final_params, ar_run.final_params);
}

TEST(PsTrainer, DeterministicAcrossRuns) {
    PsHarness h(3);
    ps::PsTrainConfig config;
    config.epochs = 2;
    config.iters_per_epoch = 8;
    config.density = 0.05;
    auto once = [&] {
        return ps::train_parameter_server(3, NetworkModel::free(), config, h.factory(),
                                          h.batches(), nullptr)
            .final_params;
    };
    EXPECT_EQ(once(), once());
}

TEST(PsTrainer, WarmupScheduleApplied) {
    PsHarness h(2);
    ps::PsTrainConfig config;
    config.epochs = 3;
    config.iters_per_epoch = 4;
    config.density = 0.01;
    config.warmup_densities = {0.25, 0.05};
    const auto result = ps::train_parameter_server(2, NetworkModel::free(), config,
                                                   h.factory(), h.batches(), nullptr);
    ASSERT_EQ(result.epochs.size(), 3u);
    EXPECT_DOUBLE_EQ(result.epochs[0].density, 0.25);
    EXPECT_DOUBLE_EQ(result.epochs[1].density, 0.05);
    EXPECT_DOUBLE_EQ(result.epochs[2].density, 0.01);
}

TEST(PsTrainer, RejectsZeroWorkers) {
    PsHarness h(2);
    ps::PsTrainConfig config;
    EXPECT_THROW(ps::train_parameter_server(0, NetworkModel::free(), config,
                                            h.factory(), h.batches(), nullptr),
                 std::invalid_argument);
}

TEST(PsCostModel, LinearInWorkers) {
    const auto net = NetworkModel::one_gbps_ethernet();
    const double t8 = ps::ps_gtopk_time_s(net, 8, 25'000);
    const double t16 = ps::ps_gtopk_time_s(net, 16, 25'000);
    EXPECT_NEAR(t16 / t8, 17.0 / 9.0, 1e-9);
}

TEST(PsCostModel, TreeBeatsStarAtScale) {
    // The decentralized O(k logP) tree must beat the O(kP) PS star for
    // large P — the quantified version of the paper's footnote 2.
    const auto net = NetworkModel::one_gbps_ethernet();
    for (int p : {8, 16, 32, 64}) {
        EXPECT_GT(ps::ps_gtopk_time_s(net, p, 25'000),
                  gtopk::collectives::gtopk_allreduce_time_s(net, p, 25'000))
            << "P=" << p;
    }
}

TEST(PsTrainer, VirtualCommTimeReflectsStarTopology) {
    // Measured virtual comm per iteration grows with worker count in the
    // PS topology (server replies serialize).
    PsHarness h4(4);
    PsHarness h8(8);
    ps::PsTrainConfig config;
    config.epochs = 1;
    config.iters_per_epoch = 6;
    config.density = 0.05;
    const auto r4 = ps::train_parameter_server(
        4, NetworkModel::one_gbps_ethernet(), config, h4.factory(), h4.batches(),
        nullptr);
    const auto r8 = ps::train_parameter_server(
        8, NetworkModel::one_gbps_ethernet(), config, h8.factory(), h8.batches(),
        nullptr);
    EXPECT_GT(r8.mean_comm_virtual_s, r4.mean_comm_virtual_s);
}

}  // namespace
