// Property tests for top-k selection: all strategies agree with each other
// and with a trivially correct reference across a sweep of sizes, k values
// and input distributions (including heavy ties and all-zero vectors).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <tuple>

#include "sparse/topk_select.hpp"
#include "util/rng.hpp"

namespace {

using gtopk::sparse::kth_largest_magnitude;
using gtopk::sparse::magnitude_less;
using gtopk::sparse::SparseGradient;
using gtopk::sparse::topk_select;
using gtopk::sparse::TopkStrategy;
using gtopk::util::Xoshiro256;

enum class Dist { Gaussian, HeavyTies, AllZero, OneHot };

std::vector<float> make_input(std::size_t n, Dist dist, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    std::vector<float> v(n, 0.0f);
    switch (dist) {
        case Dist::Gaussian:
            for (auto& x : v) x = static_cast<float>(rng.next_gaussian());
            break;
        case Dist::HeavyTies:
            // Only 3 distinct magnitudes; exercises the index tie-break.
            for (auto& x : v) {
                const float mag = static_cast<float>(rng.next_below(3));
                x = rng.next_double() < 0.5 ? mag : -mag;
            }
            break;
        case Dist::AllZero:
            break;
        case Dist::OneHot:
            if (n > 0) v[n / 2] = 7.0f;
            break;
    }
    return v;
}

/// Trivial reference: stable full sort by the shared total order.
SparseGradient reference_topk(const std::vector<float>& dense, std::size_t k) {
    std::vector<std::int32_t> idx(dense.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::stable_sort(idx.begin(), idx.end(), [&](std::int32_t a, std::int32_t b) {
        return magnitude_less(dense[static_cast<std::size_t>(b)], b,
                              dense[static_cast<std::size_t>(a)], a);
    });
    idx.resize(std::min(k, dense.size()));
    std::sort(idx.begin(), idx.end());
    SparseGradient g;
    g.dense_size = static_cast<std::int64_t>(dense.size());
    g.indices = idx;
    for (auto i : idx) g.values.push_back(dense[static_cast<std::size_t>(i)]);
    return g;
}

using Param = std::tuple<std::size_t, std::size_t, Dist>;  // (n, k, dist)

class TopkSweep : public ::testing::TestWithParam<Param> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, TopkSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 10, 257, 4096),
                       ::testing::Values<std::size_t>(0, 1, 3, 50, 5000),
                       ::testing::Values(Dist::Gaussian, Dist::HeavyTies,
                                         Dist::AllZero, Dist::OneHot)));

TEST_P(TopkSweep, AllStrategiesMatchReference) {
    const auto [n, k, dist] = GetParam();
    const auto dense = make_input(n, dist, 0xBEEF + n * 31 + k);
    const auto expect = reference_topk(dense, k);
    for (auto strategy :
         {TopkStrategy::NthElement, TopkStrategy::Heap, TopkStrategy::FullSort}) {
        const auto got = topk_select(dense, k, strategy);
        EXPECT_EQ(got, expect) << "strategy=" << static_cast<int>(strategy)
                               << " n=" << n << " k=" << k;
    }
}

TEST_P(TopkSweep, SelectionDominatesUnselected) {
    const auto [n, k, dist] = GetParam();
    const auto dense = make_input(n, dist, 0xF00D + n + k);
    const auto sel = topk_select(dense, k);
    if (sel.nnz() == 0 || sel.nnz() == n) return;
    // min selected magnitude >= max unselected magnitude.
    float min_sel = std::abs(sel.values[0]);
    for (float v : sel.values) min_sel = std::min(min_sel, std::abs(v));
    std::vector<bool> chosen(n, false);
    for (auto i : sel.indices) chosen[static_cast<std::size_t>(i)] = true;
    for (std::size_t i = 0; i < n; ++i) {
        if (!chosen[i]) {
            EXPECT_LE(std::abs(dense[i]), min_sel);
        }
    }
}

TEST_P(TopkSweep, OutputIsCanonicalAndSizedRight) {
    const auto [n, k, dist] = GetParam();
    const auto dense = make_input(n, dist, 0xCAFE + n - k);
    const auto sel = topk_select(dense, k);
    EXPECT_NO_THROW(sel.validate());
    EXPECT_EQ(sel.nnz(), std::min(k, n));
    for (std::size_t i = 0; i < sel.nnz(); ++i) {
        EXPECT_EQ(sel.values[i], dense[static_cast<std::size_t>(sel.indices[i])]);
    }
}

TEST(TopkSelect, DeterministicAcrossCalls) {
    const auto dense = make_input(1000, Dist::HeavyTies, 5);
    const auto a = topk_select(dense, 100);
    const auto b = topk_select(dense, 100);
    EXPECT_EQ(a, b);
}

TEST(TopkSelect, KthLargestMagnitudeMatchesSelection) {
    Xoshiro256 rng(17);
    std::vector<float> dense(500);
    for (auto& v : dense) v = static_cast<float>(rng.next_gaussian());
    for (std::size_t k : {1u, 5u, 100u, 500u}) {
        const float thr = kth_largest_magnitude(dense, k);
        const auto sel = topk_select(dense, k);
        float min_sel = std::abs(sel.values[0]);
        for (float v : sel.values) min_sel = std::min(min_sel, std::abs(v));
        EXPECT_FLOAT_EQ(thr, min_sel);
    }
}

TEST(TopkSelect, KthLargestEdgeCases) {
    EXPECT_EQ(kth_largest_magnitude({}, 3), 0.0f);
    const std::vector<float> one{-5.0f};
    EXPECT_EQ(kth_largest_magnitude(one, 1), 5.0f);
    EXPECT_EQ(kth_largest_magnitude(one, 10), 5.0f);  // clamped
}

TEST(TopkSelect, ZeroSelectedClearsExactlyTheSelection) {
    auto dense = make_input(200, Dist::Gaussian, 9);
    const auto orig = dense;
    const auto sel = topk_select(dense, 20);
    gtopk::sparse::zero_selected(dense, sel);
    std::vector<bool> chosen(200, false);
    for (auto i : sel.indices) chosen[static_cast<std::size_t>(i)] = true;
    for (std::size_t i = 0; i < 200; ++i) {
        if (chosen[i]) {
            EXPECT_EQ(dense[i], 0.0f);
        } else {
            EXPECT_EQ(dense[i], orig[i]);
        }
    }
}

TEST(TopkSelect, ErrorFeedbackMassConservation) {
    // residual + selected == accumulated, elementwise, exactly.
    auto dense = make_input(300, Dist::Gaussian, 21);
    const auto orig = dense;
    const auto sel = topk_select(dense, 30);
    gtopk::sparse::zero_selected(dense, sel);  // dense is now the residual
    std::vector<float> reconstructed = dense;
    sel.scatter_add(reconstructed);
    EXPECT_EQ(reconstructed, orig);
}

}  // namespace
