// Cluster telemetry plane tests (DESIGN.md §13): the stats allgather must
// verify statically and price exactly like any other schedule, deliver the
// same IterSnapshot to every rank, stay bit-invisible to training (absolute
// tag band, no fresh-tag cursor motion), attribute measured virtual time to
// the alpha-beta model with zero delta on fault-free runs, and keep
// reporting through chaos and an elastic regroup — including the flight
// recorder's forensic bundle on an injected kill.
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/cost_rules.hpp"
#include "analysis/verify.hpp"
#include "chaos_common.hpp"
#include "collectives/schedule.hpp"
#include "comm/membership.hpp"
#include "obs/attribution.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/straggler.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace {

using namespace gtopk;
using chaos::Outcome;
using chaos::TinyTrainScenario;
using train::Algorithm;

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/// A fully-populated per-rank stats row with rank-recognizable values.
obs::RankIterStats synthetic_stats(int rank, std::int64_t step) {
    obs::RankIterStats st;
    st.step = step;
    st.compute_host_s = 0.010 + 0.001 * rank;
    st.compress_host_s = 0.002 * rank;
    st.comm_virtual_s = 0.005;
    st.update_host_s = 0.001;
    st.wire_bytes_sent = 1000 + rank;
    st.wire_bytes_received = 2000 + rank;
    st.messages_sent = 10 + rank;
    st.messages_received = 20 + rank;
    st.nnz = 32 + rank;
    st.mailbox_depth = rank;
    st.faults_injected = 3 * rank;
    st.retransmits = rank;
    return st;
}

// ---------------------------------------------------------------------------
// Static layer: the telemetry allgather is a verified, exactly-priced
// schedule like every other collective in the repo.

TEST(TelemetrySchedule, VerifiesAndPricesExactlyWorlds1To64) {
    const comm::NetworkModel net = comm::NetworkModel::one_gbps_ethernet();
    const auto bytes = static_cast<std::int64_t>(sizeof(obs::RankIterStats));
    for (int w = 1; w <= 64; ++w) {
        const collectives::Schedule sched =
            collectives::telemetry_allgather_schedule(w, bytes);
        const analysis::VerifyResult vr = analysis::verify_schedule(sched, &net);
        ASSERT_TRUE(vr.ok()) << "world " << w << ": "
                             << (vr.violations.empty()
                                     ? std::string("?")
                                     : vr.violations.front().detail);
        const auto totals =
            analysis::expected_totals("telemetry.allgather", w, bytes, 1);
        ASSERT_TRUE(totals.has_value()) << "world " << w;
        EXPECT_EQ(vr.total_messages, totals->messages) << "world " << w;
        ASSERT_TRUE(vr.bytes_exact);
        EXPECT_EQ(vr.total_bytes, totals->bytes.value()) << "world " << w;
        // Ring: P-1 serialized rounds of one fixed-size block each.
        ASSERT_TRUE(vr.critical_path_s.has_value());
        EXPECT_NEAR(*vr.critical_path_s, (w - 1) * net.transfer_time_s(bytes),
                    1e-12)
            << "world " << w;
    }
}

// ---------------------------------------------------------------------------
// Exchange: every rank sees the identical snapshot, rows preserved bit for
// bit, and the lead-side history ring / counters behave.

TEST(Telemetry, ExchangeDeliversIdenticalSnapshotToEveryRank) {
    constexpr int kWorld = 5;
    constexpr std::int64_t kSteps = 3;
    obs::Telemetry telem(kWorld);
    std::vector<std::vector<obs::IterSnapshot>> seen(kWorld);
    comm::Cluster::run(kWorld, comm::NetworkModel::free(),
                       [&](comm::Communicator& comm) {
                           for (std::int64_t s = 0; s < kSteps; ++s) {
                               seen[comm.rank()].push_back(telem.exchange(
                                   comm, synthetic_stats(comm.rank(), s)));
                           }
                       });

    EXPECT_EQ(telem.exchanges(), kSteps);
    ASSERT_EQ(telem.snapshots().size(), static_cast<std::size_t>(kSteps));
    for (std::int64_t s = 0; s < kSteps; ++s) {
        const obs::IterSnapshot& lead = seen[0][static_cast<std::size_t>(s)];
        ASSERT_EQ(lead.world(), kWorld);
        EXPECT_EQ(lead.step, s);
        for (int r = 0; r < kWorld; ++r) {
            const obs::IterSnapshot& mine = seen[r][static_cast<std::size_t>(s)];
            ASSERT_EQ(mine.world(), kWorld) << "rank " << r;
            for (int row = 0; row < kWorld; ++row) {
                // RankIterStats is padding-free POD: bytewise equality is
                // exactly "the allgather delivered what rank `row` folded".
                EXPECT_EQ(std::memcmp(&mine.ranks[row], &lead.ranks[row],
                                      sizeof(obs::RankIterStats)),
                          0)
                    << "rank " << r << " row " << row << " step " << s;
            }
        }
        // Spot-check content against the synthetic generator.
        for (int row = 0; row < kWorld; ++row) {
            obs::RankIterStats expect = synthetic_stats(row, s);
            expect.physical_rank = row;
            expect.logical_rank = row;
            EXPECT_EQ(std::memcmp(&lead.ranks[row], &expect,
                                  sizeof(obs::RankIterStats)),
                      0)
                << "row " << row << " step " << s;
        }
    }
}

TEST(Telemetry, HistoryRingKeepsNewestSnapshots) {
    obs::Telemetry::Config cfg;
    cfg.history = 4;
    obs::Telemetry telem(2, cfg);
    comm::Cluster::run(2, comm::NetworkModel::free(),
                       [&](comm::Communicator& comm) {
                           for (std::int64_t s = 0; s < 10; ++s) {
                               telem.exchange(comm,
                                              synthetic_stats(comm.rank(), s));
                           }
                       });
    EXPECT_EQ(telem.exchanges(), 10);
    const auto snaps = telem.snapshots();
    ASSERT_EQ(snaps.size(), 4u);
    for (std::size_t i = 0; i < snaps.size(); ++i) {
        EXPECT_EQ(snaps[i].step, 6 + static_cast<std::int64_t>(i));
    }
}

TEST(Telemetry, JsonlLineRoundTripsThroughTheJsonParser) {
    obs::IterSnapshot snap;
    snap.step = 7;
    snap.epoch = 1;
    for (int r = 0; r < 3; ++r) {
        obs::RankIterStats st = synthetic_stats(r, 7);
        st.physical_rank = r;
        st.logical_rank = r;
        snap.ranks.push_back(st);
    }
    obs::CollectiveSpec spec{"gtopk.allreduce", 280, 1, 1000, 33};
    const double predicted = 0.00125;
    std::ostringstream ss;
    obs::write_snapshot_jsonl(ss, snap, &spec, &predicted);

    const util::JsonValue v = util::JsonValue::parse(ss.str());
    EXPECT_EQ(v.find("step")->as_int(), 7);
    EXPECT_EQ(v.find("epoch")->as_int(), 1);
    EXPECT_EQ(v.find("world")->as_int(), 3);
    EXPECT_EQ(v.find("proto")->as_string(), "gtopk.allreduce");
    EXPECT_EQ(v.find("k")->as_int(), 33);
    EXPECT_DOUBLE_EQ(v.find("predicted_comm_s")->as_number(), predicted);
    const auto& ranks = v.find("ranks")->as_array();
    ASSERT_EQ(ranks.size(), 3u);
    EXPECT_EQ(ranks[2].find("rank")->as_int(), 2);
    EXPECT_EQ(ranks[2].find("bytes_out")->as_int(), 1002);
    EXPECT_DOUBLE_EQ(ranks[2].find("compute_s")->as_number(), 0.012);
    EXPECT_EQ(ranks[2].find("nnz")->as_int(), 34);
}

// ---------------------------------------------------------------------------
// Training invariance: the exchange lives on the reserved absolute tag band
// and never advances the fresh-tag cursor, so telemetry ON is bit-identical
// to telemetry OFF for every algorithm.

class TelemetryOnOffSweep : public ::testing::TestWithParam<Algorithm> {};
INSTANTIATE_TEST_SUITE_P(Algorithms, TelemetryOnOffSweep,
                         ::testing::Values(Algorithm::DenseSsgd,
                                           Algorithm::TopkSsgd,
                                           Algorithm::GtopkSsgd,
                                           Algorithm::NaiveGtopkSsgd));

TEST_P(TelemetryOnOffSweep, TrainingIsBitIdenticalWithTelemetryOn) {
    const Algorithm algo = GetParam();
    TinyTrainScenario scenario(4);
    const auto clean = scenario.run_clean(algo);

    obs::Telemetry telem(4);
    train::TrainConfig cfg = scenario.config(algo);
    cfg.telemetry = &telem;
    const auto result = scenario.run(cfg);

    ASSERT_EQ(result.final_params, clean.final_params);
    ASSERT_EQ(result.epochs.size(), clean.epochs.size());
    for (std::size_t e = 0; e < clean.epochs.size(); ++e) {
        EXPECT_EQ(result.epochs[e].train_loss, clean.epochs[e].train_loss);
    }
    // One exchange per training iteration, every snapshot full-world.
    EXPECT_EQ(telem.exchanges(), cfg.epochs * cfg.iters_per_epoch);
    for (const obs::IterSnapshot& snap : telem.snapshots()) {
        EXPECT_EQ(snap.world(), 4);
    }
}

// ---------------------------------------------------------------------------
// Cost attribution: on a fault-free run the measured aggregate-phase
// virtual time must equal the alpha-beta critical path of the very schedule
// the collective executed — the gate behind the PR's acceptance criterion.

class AttributionSweep : public ::testing::TestWithParam<Algorithm> {};
INSTANTIATE_TEST_SUITE_P(Protocols, AttributionSweep,
                         ::testing::Values(Algorithm::DenseSsgd,
                                           Algorithm::GtopkSsgd));

TEST_P(AttributionSweep, FaultFreeMeasuredMatchesAlphaBetaPrediction) {
    const Algorithm algo = GetParam();
    const comm::NetworkModel net = comm::NetworkModel::one_gbps_ethernet();
    TinyTrainScenario scenario(4);
    obs::Telemetry telem(4);
    obs::CostAttribution attr(net);
    telem.set_attribution(&attr);
    train::TrainConfig cfg = scenario.config(algo);
    cfg.telemetry = &telem;

    // TinyTrainScenario::run prices over the free network (zero times), so
    // drive train_distributed directly on 1GbE where the model is nontrivial.
    const auto result = train::train_distributed(
        scenario.world, net, cfg,
        [mc = scenario.mlp](std::uint64_t seed) { return nn::make_mlp(mc, seed); },
        [&](std::int64_t step, int rank) {
            return scenario.dataset.batch_flat(
                scenario.sampler.batch_indices(step, rank, 8));
        },
        train::EvalBatchProvider{});
    ASSERT_FALSE(result.final_params.empty());

    const auto entries = attr.entries();
    ASSERT_FALSE(entries.empty());
    for (const obs::AttributionEntry& e : entries) {
        ASSERT_TRUE(e.predicted_comm_s.has_value()) << e.proto;
        ASSERT_GT(e.steady_iterations, 0) << e.proto;
        // Time: exact agreement between the simulated virtual clocks and
        // the statically simulated critical path (same op program, same
        // alpha-beta model) — tolerance only for float summation noise.
        ASSERT_TRUE(e.ratio().has_value()) << e.proto;
        EXPECT_NEAR(*e.ratio(), 1.0, 1e-9)
            << e.proto << " world " << e.world << " elems " << e.elems;
        // Bytes and messages: exact to the byte, iteration after iteration.
        ASSERT_TRUE(e.predicted_bytes.has_value()) << e.proto;
        ASSERT_TRUE(e.predicted_messages.has_value()) << e.proto;
        EXPECT_EQ(e.measured_bytes % e.iterations, 0) << e.proto;
        EXPECT_EQ(e.measured_bytes / e.iterations, *e.predicted_bytes) << e.proto;
        EXPECT_EQ(e.measured_messages / e.iterations, *e.predicted_messages)
            << e.proto;
    }
}

// ---------------------------------------------------------------------------
// Chaos: telemetry keeps reporting under maskable fault injection without
// perturbing training, and the fault counters surface in the snapshots.

TEST(TelemetryChaos, MaskablePlanKeepsTelemetryAndTrainingBitIdentical) {
    const std::uint64_t seed = chaos::base_seed();
    TinyTrainScenario scenario(4);
    const auto clean = scenario.run_clean(Algorithm::GtopkSsgd);

    comm::FaultInjectingTransport transport(4, chaos::maskable_plan(seed));
    obs::Tracer tracer(4);
    obs::Telemetry telem(4);
    train::TrainConfig cfg = scenario.config(Algorithm::GtopkSsgd);
    cfg.transport = &transport;
    cfg.tracer = &tracer;
    cfg.telemetry = &telem;
    cfg.recv_timeout_s = 10.0;
    std::string error;
    train::TrainResult result;
    const Outcome outcome =
        chaos::classify([&] { result = scenario.run(cfg); }, &error);
    ASSERT_EQ(outcome, Outcome::Completed) << error;

    // Maskable adversity stays invisible to the training outcome...
    ASSERT_EQ(result.final_params, clean.final_params);
    // ...the plan actually fired...
    const comm::FaultCounts counts = transport.counts();
    EXPECT_GT(counts.duplicated + counts.reordered + counts.delayed, 0u);
    // ...and the injected faults are visible in the telemetry stream.
    EXPECT_EQ(telem.exchanges(), cfg.epochs * cfg.iters_per_epoch);
    const auto snaps = telem.snapshots();
    ASSERT_FALSE(snaps.empty());
    std::int64_t folded_faults = 0;
    for (const obs::RankIterStats& r : snaps.back().ranks) {
        folded_faults += r.faults_injected;
    }
    EXPECT_GT(folded_faults, 0);
}

// ---------------------------------------------------------------------------
// Elastic regroup: a mid-run kill shrinks the snapshot world, telemetry
// resumes on the survivor view, and the flight recorder writes a parseable
// forensic bundle.

TEST(TelemetryElastic, KillShrinksSnapshotWorldAndWritesFlightBundle) {
    const std::uint64_t seed = chaos::base_seed();
    const std::string bundle_path =
        ::testing::TempDir() + "telemetry_flight_bundle.json";
    TinyTrainScenario scenario(4);
    comm::FaultPlan plan = chaos::seeded_plan(seed);
    plan.kill_at_step(/*rank=*/3, /*step=*/9);  // mid second epoch
    comm::FaultInjectingTransport transport(4, plan);
    comm::MembershipConfig mcfg;
    mcfg.seed = seed;
    mcfg.heartbeat_interval_s = 0.002;
    mcfg.suspect_after_s = 0.050;
    comm::MembershipService membership(transport, mcfg);

    obs::Telemetry telem(4);
    obs::FlightRecorderConfig fcfg;
    fcfg.path = bundle_path;
    obs::FlightRecorder frec(fcfg);
    telem.set_flight_recorder(&frec);

    train::TrainConfig cfg = scenario.config(Algorithm::GtopkSsgd);
    cfg.transport = &transport;
    cfg.membership = &membership;
    cfg.recv_timeout_s = 0.25;
    cfg.checkpoint_every = 4;
    cfg.telemetry = &telem;
    std::string error;
    train::TrainResult result;
    const Outcome outcome =
        chaos::classify([&] { result = scenario.run(cfg); }, &error);
    ASSERT_EQ(outcome, Outcome::Completed) << error;
    ASSERT_EQ(result.final_members, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(result.regroups, 1);

    // The snapshot stream spans the regroup: full world before, survivor
    // world (with the bumped membership epoch) after.
    const auto snaps = telem.snapshots();
    ASSERT_FALSE(snaps.empty());
    EXPECT_EQ(snaps.front().world(), 4);
    EXPECT_EQ(snaps.back().world(), 3);
    EXPECT_EQ(snaps.back().epoch, 1);
    bool saw_regrouped_row = false;
    for (const obs::RankIterStats& r : snaps.back().ranks) {
        if (r.regroups == 1) saw_regrouped_row = true;
    }
    EXPECT_TRUE(saw_regrouped_row);

    // The trainer dumped a "recovered" bundle from the driver thread...
    EXPECT_TRUE(frec.triggered());
    ASSERT_GE(frec.dumps(), 1);

    // ...which parses and tells the story: kill, comm errors, regroup,
    // rollback, and the survivor membership view.
    const util::JsonValue v = util::JsonValue::parse(read_file(bundle_path));
    const util::JsonValue* fr = v.find("flight_recorder");
    ASSERT_NE(fr, nullptr);
    EXPECT_EQ(fr->find("reason")->as_string(), "recovered");
    int killed = 0, comm_errors = 0, regroups = 0, rollbacks = 0;
    for (const util::JsonValue& ev : fr->find("events")->as_array()) {
        const std::string& kind = ev.find("kind")->as_string();
        if (kind == "rank_killed") ++killed;
        if (kind == "comm_error") ++comm_errors;
        if (kind == "regroup") ++regroups;
        if (kind == "rollback") ++rollbacks;
    }
    EXPECT_EQ(killed, 1);
    EXPECT_GT(comm_errors, 0);
    EXPECT_EQ(regroups, 3);   // one per survivor
    EXPECT_EQ(rollbacks, 3);  // every survivor rolled back together
    const auto& views = fr->find("membership")->as_array();
    ASSERT_FALSE(views.empty());
    EXPECT_EQ(views.back().find("epoch")->as_int(), 1);
    const auto& members = views.back().find("members")->as_array();
    ASSERT_EQ(members.size(), 3u);
    EXPECT_EQ(members[2].as_int(), 2);
    const auto& bundled_snaps = fr->find("snapshots")->as_array();
    ASSERT_FALSE(bundled_snaps.empty());
    EXPECT_EQ(bundled_snaps.back().find("world")->as_int(), 3);
}

// ---------------------------------------------------------------------------
// Straggler detector unit behavior on synthetic snapshot streams.

obs::IterSnapshot uniform_snapshot(int world, std::int64_t step) {
    obs::IterSnapshot snap;
    snap.step = step;
    for (int r = 0; r < world; ++r) {
        obs::RankIterStats st;
        st.step = step;
        st.physical_rank = r;
        st.logical_rank = r;
        // Small per-rank spread keeps the MAD nonzero so z-scores are
        // well-defined without being interesting.
        st.compute_host_s = 0.010 + 1e-5 * r;
        st.comm_virtual_s = 0.005 + 1e-6 * r;
        snap.ranks.push_back(st);
    }
    return snap;
}

TEST(StragglerDetector, FlagsSustainedSlowRankOnce) {
    obs::StragglerConfig cfg;
    cfg.ewma_alpha = 1.0;  // no smoothing: excursions count immediately
    cfg.patience = 3;
    obs::StragglerDetector det(5, cfg);
    std::vector<obs::StragglerEvent> fired;
    det.set_callback([&](const obs::StragglerEvent& e) { fired.push_back(e); });

    for (std::int64_t step = 0; step < 8; ++step) {
        obs::IterSnapshot snap = uniform_snapshot(5, step);
        snap.ranks[2].compute_host_s = 0.100;  // rank 2 is 10x slow
        det.observe(snap);
    }
    EXPECT_GT(det.compute_z(2), cfg.z_threshold);
    ASSERT_EQ(fired.size(), 1u) << "one event per excursion, not per step";
    EXPECT_EQ(fired.front().physical_rank, 2);
    EXPECT_STREQ(fired.front().phase, "compute");
    EXPECT_GT(fired.front().z, cfg.z_threshold);
    // The healthy ranks stayed unflagged.
    EXPECT_LT(std::abs(det.compute_z(0)), cfg.z_threshold);
    EXPECT_TRUE(det.events().size() == 1);
}

TEST(StragglerDetector, BelowMinWorldRecordsNothing) {
    obs::StragglerDetector det(2);
    for (std::int64_t step = 0; step < 10; ++step) {
        obs::IterSnapshot snap = uniform_snapshot(2, step);
        snap.ranks[1].compute_host_s = 1.0;
        det.observe(snap);
    }
    EXPECT_EQ(det.compute_z(1), 0.0);
    EXPECT_TRUE(det.events().empty());
}

TEST(StragglerDetector, BalancedClusterRaisesNoEvents) {
    obs::StragglerDetector det(6);
    for (std::int64_t step = 0; step < 30; ++step) {
        det.observe(uniform_snapshot(6, step));
    }
    EXPECT_TRUE(det.events().empty());
}

// ---------------------------------------------------------------------------
// Flight recorder unit behavior: bounded rings, idempotent dumps, bundle
// parseability without a tracer.

TEST(FlightRecorder, BoundsEventRingAndDumpsParseableBundle) {
    obs::FlightRecorderConfig cfg;
    cfg.path = ::testing::TempDir() + "flight_recorder_unit.json";
    cfg.max_events = 8;
    obs::FlightRecorder frec(cfg);
    EXPECT_FALSE(frec.triggered());

    for (int i = 0; i < 20; ++i) {
        frec.note_event("comm_error", i % 4, i, 0, "event " + std::to_string(i));
    }
    frec.note_membership(1, {0, 1, 2}, 0, 12);
    obs::IterSnapshot snap = uniform_snapshot(3, 12);
    frec.add_snapshot(snap);

    EXPECT_TRUE(frec.triggered());
    EXPECT_EQ(frec.event_count(), 8u);  // oldest 12 dropped
    EXPECT_EQ(frec.snapshot_count(), 1u);
    ASSERT_TRUE(frec.dump("unit-test"));
    EXPECT_EQ(frec.dumps(), 1);

    const util::JsonValue v = util::JsonValue::parse(read_file(cfg.path));
    const util::JsonValue* fr = v.find("flight_recorder");
    ASSERT_NE(fr, nullptr);
    EXPECT_EQ(fr->find("reason")->as_string(), "unit-test");
    EXPECT_EQ(fr->find("events_dropped")->as_int(), 12);
    const auto& events = fr->find("events")->as_array();
    ASSERT_EQ(events.size(), 8u);
    // The ring kept the NEWEST events.
    EXPECT_EQ(events.back().find("step")->as_int(), 19);
    EXPECT_EQ(events.front().find("step")->as_int(), 12);
    // Dumps are idempotent rewrites: a second dump parses the same way.
    ASSERT_TRUE(frec.dump("again"));
    const util::JsonValue v2 = util::JsonValue::parse(read_file(cfg.path));
    EXPECT_EQ(v2.find("flight_recorder")->find("reason")->as_string(), "again");
    EXPECT_EQ(v2.find("flight_recorder")->find("dump_seq")->as_int(), 2);
}

}  // namespace
