#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <thread>

#include "comm/cluster.hpp"
#include "comm/tags.hpp"
#include "comm/communicator.hpp"
#include "comm/mailbox.hpp"
#include "comm/network_model.hpp"
#include "comm/transport.hpp"
#include "obs/trace.hpp"

namespace {

using gtopk::comm::Cluster;
using gtopk::comm::Communicator;
using gtopk::comm::InProcTransport;
using gtopk::comm::kAnySource;
using gtopk::comm::kFreshTagBase;
using gtopk::comm::kTagTestAux;
using gtopk::comm::kTagTestData;
using gtopk::comm::kTagTestValue;
using gtopk::comm::kAnyTag;
using gtopk::comm::Mailbox;
using gtopk::comm::MailboxClosed;
using gtopk::comm::Message;
using gtopk::comm::NetworkModel;

Message make_msg(int source, int tag, std::size_t n = 0) {
    Message m;
    m.source = source;
    m.tag = tag;
    m.payload.resize(n);
    return m;
}

TEST(MailboxTest, MatchesExactSourceAndTag) {
    Mailbox mb;
    mb.push(make_msg(1, kTagTestData));
    mb.push(make_msg(2, kTagTestAux));
    const Message m = mb.pop(2, kTagTestAux);
    EXPECT_EQ(m.source, 2);
    EXPECT_EQ(m.tag, kTagTestAux);
    EXPECT_EQ(mb.size(), 1u);
}

TEST(MailboxTest, WildcardSourceMatchesFirstArrival) {
    Mailbox mb;
    mb.push(make_msg(3, kTagTestData));
    const Message m = mb.pop(kAnySource, kTagTestData);
    EXPECT_EQ(m.source, 3);
}

TEST(MailboxTest, WildcardTagMatches) {
    Mailbox mb;
    mb.push(make_msg(1, kTagTestValue));
    const Message m = mb.pop(1, kAnyTag);
    EXPECT_EQ(m.tag, kTagTestValue);
}

TEST(MailboxTest, PreservesFifoPerSourceTag) {
    Mailbox mb;
    for (int i = 0; i < 5; ++i) {
        mb.push(make_msg(1, kTagTestData, static_cast<std::size_t>(i)));
    }
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(mb.pop(1, kTagTestData).payload.size(), i);
    }
}

TEST(MailboxTest, TryPopReturnsNulloptWhenNoMatch) {
    Mailbox mb;
    mb.push(make_msg(1, kTagTestData));
    EXPECT_FALSE(mb.try_pop(2, kTagTestData).has_value());
    EXPECT_TRUE(mb.try_pop(1, kTagTestData).has_value());
}

TEST(MailboxTest, BlockingPopWakesOnPush) {
    Mailbox mb;
    std::atomic<bool> got{false};
    std::thread consumer([&] {
        (void)mb.pop(1, kTagTestData);
        got = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_FALSE(got.load());
    mb.push(make_msg(1, kTagTestData));
    consumer.join();
    EXPECT_TRUE(got.load());
}

TEST(MailboxTest, CloseThrowsInWaiters) {
    Mailbox mb;
    std::thread consumer([&] { EXPECT_THROW(mb.pop(1, kTagTestData), MailboxClosed); });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    mb.close();
    consumer.join();
}

TEST(TransportTest, RejectsBadRanks) {
    InProcTransport t(2);
    EXPECT_THROW(t.deliver(2, make_msg(0, 0)), std::out_of_range);
    EXPECT_THROW(t.receive(-1, 0, kTagTestData), std::out_of_range);
    EXPECT_THROW(InProcTransport(0), std::invalid_argument);
}

TEST(TransportTest, CountsDeliveries) {
    InProcTransport t(2);
    t.deliver(1, make_msg(0, 0));
    t.deliver(0, make_msg(1, 0));
    EXPECT_EQ(t.delivered_count(), 2u);
}

TEST(CommunicatorTest, SendRecvRoundTrip) {
    Cluster::run(2, NetworkModel::free(), [](Communicator& comm) {
        if (comm.rank() == 0) {
            std::vector<float> v{1.0f, 2.0f, 3.0f};
            comm.send_vec<float>(1, kTagTestData, v);
        } else {
            const std::vector<float> v = comm.recv_vec<float>(0, kTagTestData);
            ASSERT_EQ(v.size(), 3u);
            EXPECT_EQ(v[2], 3.0f);
        }
    });
}

TEST(CommunicatorTest, SendToSelfForbidden) {
    Cluster::run(1, NetworkModel::free(), [](Communicator& comm) {
        std::vector<float> v{1.0f};
        EXPECT_THROW(comm.send_vec<float>(0, 0, v), std::invalid_argument);
    });
}

TEST(CommunicatorTest, VirtualClockFollowsAlphaBetaModel) {
    const NetworkModel net{1e-3, 4e-8};  // alpha=1ms, beta=4e-8 s/elem
    auto result = Cluster::run_timed(2, net, [&](Communicator& comm) {
        if (comm.rank() == 0) {
            std::vector<float> v(1000, 1.0f);  // 4000 bytes = 1000 elements
            comm.send_vec<float>(1, kTagTestData, v);
        } else {
            (void)comm.recv_vec<float>(0, kTagTestData);
        }
    });
    const double expected = 1e-3 + 1000 * 4e-8;
    EXPECT_NEAR(result.final_time_s[0], expected, 1e-12);  // sender pays
    EXPECT_NEAR(result.final_time_s[1], expected, 1e-12);  // receiver waits
}

TEST(CommunicatorTest, ReceiverWaitsForSlowSender) {
    const NetworkModel net{1.0, 0.0};  // one virtual second per message
    auto result = Cluster::run_timed(2, net, [&](Communicator& comm) {
        if (comm.rank() == 0) {
            std::vector<float> v(10, 0.0f);
            comm.send_vec<float>(1, kTagTestData, v);
            comm.send_vec<float>(1, kTagTestAux, v);
        } else {
            (void)comm.recv(0, kTagTestData);
            (void)comm.recv(0, kTagTestAux);
        }
    });
    // Sender's clock: 2s after two sends; receiver waits for arrival at 2s.
    EXPECT_NEAR(result.final_time_s[0], 2.0, 1e-12);
    EXPECT_NEAR(result.final_time_s[1], 2.0, 1e-12);
}

TEST(CommunicatorTest, StatsAccumulate) {
    auto stats = Cluster::run(2, NetworkModel::one_gbps_ethernet(),
                              [](Communicator& comm) {
                                  std::vector<float> v(100, 0.0f);
                                  if (comm.rank() == 0) {
                                      comm.send_vec<float>(1, kTagTestData, v);
                                  } else {
                                      (void)comm.recv(0, kTagTestData);
                                  }
                              });
    EXPECT_EQ(stats[0].messages_sent, 1u);
    EXPECT_EQ(stats[0].bytes_sent, 400u);
    EXPECT_EQ(stats[1].messages_received, 1u);
    EXPECT_EQ(stats[1].bytes_received, 400u);
    EXPECT_GT(stats[0].comm_time_s, 0.0);
}

TEST(CommunicatorTest, SendValueRoundTrip) {
    Cluster::run(2, NetworkModel::free(), [](Communicator& comm) {
        if (comm.rank() == 0) {
            comm.send_value<std::int64_t>(1, kTagTestValue, 123456789LL);
        } else {
            EXPECT_EQ(comm.recv_value<std::int64_t>(0, kTagTestValue), 123456789LL);
        }
    });
}

TEST(ClusterTest, PropagatesWorkerException) {
    EXPECT_THROW(
        Cluster::run(2, NetworkModel::free(),
                     [](Communicator& comm) {
                         if (comm.rank() == 0) {
                             throw std::runtime_error("worker failure");
                         }
                         // Rank 1 blocks forever; the abort must wake it.
                         (void)comm.recv(0, 1);
                     }),
        std::runtime_error);
}

TEST(ClusterTest, RunsEveryRankExactlyOnce) {
    std::atomic<int> count{0};
    std::atomic<int> rank_mask{0};
    Cluster::run(4, NetworkModel::free(), [&](Communicator& comm) {
        count.fetch_add(1);
        rank_mask.fetch_or(1 << comm.rank());
        EXPECT_EQ(comm.size(), 4);
    });
    EXPECT_EQ(count.load(), 4);
    EXPECT_EQ(rank_mask.load(), 0b1111);
}

TEST(CommunicatorTest, TracedSpansAgreeWithCommStats) {
    // The tracer's per-message spans and metric counters must tell the same
    // story as the CommStats accumulators: same bytes, same message counts.
    const int world = 3;
    gtopk::obs::Tracer tracer(world);
    const auto stats = Cluster::run(
        world, NetworkModel::one_gbps_ethernet(),
        [](Communicator& comm) {
            ASSERT_NE(comm.tracer(), nullptr);
            // Ring: everyone sends a rank-dependent payload to the right.
            const int next = (comm.rank() + 1) % comm.size();
            const int prev = (comm.rank() + comm.size() - 1) % comm.size();
            std::vector<float> v(
                static_cast<std::size_t>(10 * (comm.rank() + 1)), 1.0f);
            comm.send_vec<float>(next, 1, v);
            (void)comm.recv_vec<float>(prev, 1);
        },
        &tracer);

    std::uint64_t stats_sent_bytes = 0, stats_msgs = 0;
    for (const auto& s : stats) {
        stats_sent_bytes += s.bytes_sent;
        stats_msgs += s.messages_sent;
    }

    std::uint64_t span_sent_bytes = 0, span_recv_bytes = 0;
    std::uint64_t send_spans = 0, recv_spans = 0;
    for (int r = 0; r < world; ++r) {
        double virtual_span_time = 0.0;
        for (const auto& span : tracer.rank_spans(r)) {
            if (std::string(span.name) == "send") {
                span_sent_bytes += static_cast<std::uint64_t>(span.attrs.bytes);
                send_spans += 1;
                virtual_span_time += span.v_end_s - span.v_begin_s;
            } else if (std::string(span.name) == "recv_wait") {
                span_recv_bytes += static_cast<std::uint64_t>(span.attrs.bytes);
                recv_spans += 1;
                virtual_span_time += span.v_end_s - span.v_begin_s;
            }
        }
        // Per-rank: send+recv span virtual time is exactly the CommStats
        // comm_time_s accumulator.
        EXPECT_NEAR(virtual_span_time,
                    stats[static_cast<std::size_t>(r)].comm_time_s, 1e-12);
    }
    EXPECT_EQ(span_sent_bytes, stats_sent_bytes);
    EXPECT_EQ(span_recv_bytes, stats_sent_bytes);  // every byte arrived
    EXPECT_EQ(send_spans, stats_msgs);
    EXPECT_EQ(recv_spans, stats_msgs);

    // Metrics registry agrees too.
    const auto& metrics = tracer.metrics();
    ASSERT_NE(metrics.find_counter("comm.bytes_sent"), nullptr);
    EXPECT_EQ(metrics.find_counter("comm.bytes_sent")->value(), stats_sent_bytes);
    EXPECT_EQ(metrics.find_counter("comm.bytes_received")->value(), stats_sent_bytes);
    const auto* msg_hist = metrics.find_histogram("comm.message_bytes");
    ASSERT_NE(msg_hist, nullptr);
    EXPECT_EQ(msg_hist->count(), stats_msgs);
    EXPECT_EQ(msg_hist->sum(), stats_sent_bytes);
    const auto* depth_hist = metrics.find_histogram("mailbox.depth");
    ASSERT_NE(depth_hist, nullptr);
    EXPECT_EQ(depth_hist->count(), stats_msgs);  // one sample per delivery
}

TEST(FreshTagsTest, BlocksAreDisjointAndAscending) {
    Cluster::run(2, NetworkModel::free(), [](Communicator& comm) {
        const int a = comm.fresh_tags(3);
        const int b = comm.fresh_tags(1);
        EXPECT_EQ(a, kFreshTagBase);
        EXPECT_EQ(b, a + 3);
        EXPECT_THROW(comm.fresh_tags(-1), std::invalid_argument);
    });
}

TEST(FreshTagsTest, WrapsSafelyNearIntMaxWhenNothingIsInFlight) {
    // Regression: the counter used to overflow silently into negative tags
    // (UB) after ~2^31 fresh tags. It must now wrap back to the base —
    // sound because no fresh-tag message is pending.
    Cluster::run(2, NetworkModel::free(), [](Communicator& comm) {
        comm.set_fresh_tag_cursor_for_test(std::numeric_limits<int>::max() - 5);
        const int base = comm.fresh_tags(10);
        EXPECT_EQ(base, kFreshTagBase);
        EXPECT_EQ(comm.fresh_tag_cursor(), kFreshTagBase + 10);
        // The recycled block is immediately usable. Rank 0 waits for the
        // ready token so rank 1 has provably wrapped before the recycled
        // tag hits its mailbox (the wrap would otherwise refuse, seeing a
        // pending fresh-tag message).
        std::vector<float> v{1.0f};
        if (comm.rank() == 0) {
            (void)comm.recv(1, kTagTestAux);
            comm.send_vec<float>(1, base, v);
        } else {
            comm.send_vec<float>(0, kTagTestAux, v);
            EXPECT_EQ(comm.recv_vec<float>(0, base).size(), 1u);
        }
    });
}

TEST(FreshTagsTest, WrapRefusedWhileFreshTagMessageIsInFlight) {
    // Recycling tags while an old fresh-tag message is still undelivered
    // could mis-match it against the new block, so the wrap must throw.
    // The stale message carries a tag at or past the end of the block being
    // allocated — tags INSIDE the new block are exempt, because at large P
    // wrapped-ahead peers legitimately have the current collective's
    // messages in flight with exactly those tags.
    Cluster::run(2, NetworkModel::free(), [](Communicator& comm) {
        std::vector<float> v{1.0f};
        if (comm.rank() == 0) {
            comm.send_vec<float>(1, kFreshTagBase + 50, v);  // stays pending
            comm.send_vec<float>(1, kTagTestAux, v);         // "sent" signal
        } else {
            (void)comm.recv(0, kTagTestAux);  // fresh-tag msg arrived first
            comm.set_fresh_tag_cursor_for_test(std::numeric_limits<int>::max() - 5);
            EXPECT_THROW(comm.fresh_tags(10), std::logic_error);
            (void)comm.recv(0, kFreshTagBase + 50);  // drain; wrap legal again
            comm.set_fresh_tag_cursor_for_test(std::numeric_limits<int>::max() - 5);
            EXPECT_EQ(comm.fresh_tags(10), kFreshTagBase);
        }
    });
}

TEST(FreshTagsTest, WrapToleratesInFlightTrafficInsideTheNewBlock) {
    // The large-P fix: a fast peer that already wrapped may have sent this
    // collective's messages with tags from the recycled block before a slow
    // rank even allocates it. Those must not trip the staleness gate.
    Cluster::run(2, NetworkModel::free(), [](Communicator& comm) {
        std::vector<float> v{1.0f};
        if (comm.rank() == 0) {
            comm.send_vec<float>(1, kFreshTagBase + 3, v);  // inside new block
            comm.send_vec<float>(1, kTagTestAux, v);
        } else {
            (void)comm.recv(0, kTagTestAux);
            comm.set_fresh_tag_cursor_for_test(std::numeric_limits<int>::max() - 5);
            EXPECT_EQ(comm.fresh_tags(10), kFreshTagBase);
            EXPECT_EQ(comm.recv_vec<float>(0, kFreshTagBase + 3).size(), 1u);
        }
    });
}

TEST(NetworkModelTest, TransferTimeMatchesDefinition) {
    const NetworkModel net = NetworkModel::one_gbps_ethernet();
    EXPECT_DOUBLE_EQ(net.transfer_time_elems(0), net.alpha_s);
    EXPECT_NEAR(net.transfer_time_elems(1000) - net.alpha_s, 1000 * net.beta_s, 1e-15);
    // Bytes and element paths agree for 4-byte multiples.
    EXPECT_DOUBLE_EQ(net.transfer_time_s(4000), net.transfer_time_elems(1000));
}

TEST(NetworkModelTest, PaperConstants) {
    const NetworkModel net = NetworkModel::one_gbps_ethernet();
    EXPECT_DOUBLE_EQ(net.alpha_s, 0.436e-3);
    EXPECT_DOUBLE_EQ(net.beta_s, 3.6e-8);
}

}  // namespace
