// End-to-end integration: full distributed training runs combining the nn,
// data, sparse, core and comm stacks, checked against the paper's
// system-level claims.
#include <gtest/gtest.h>

#include <cmath>

#include "collectives/cost_model.hpp"
#include "comm/cluster.hpp"
#include "core/aggregators.hpp"
#include "data/sampler.hpp"
#include "data/sequence_data.hpp"
#include "data/synthetic_images.hpp"
#include "nn/model_zoo.hpp"
#include "sparse/topk_select.hpp"
#include "train/trainer.hpp"
#include "util/rng.hpp"

namespace {

using namespace gtopk;
using comm::NetworkModel;
using train::Algorithm;
using train::TrainConfig;

TEST(Integration, CnnTrainsWithGtopkOnFourWorkers) {
    // The Fig. 5 setting in miniature: a conv net, 4 workers, warmup
    // schedule, then low density.
    data::SyntheticImageDataset::Config dcfg;
    dcfg.image_size = 8;
    dcfg.noise_std = 0.5f;
    data::SyntheticImageDataset dataset(dcfg, 7);
    data::ShardedSampler sampler(4096, 512, 4, 5);

    nn::MiniVggConfig mcfg;
    mcfg.image_size = 8;
    mcfg.conv_channels = 4;
    mcfg.fc_dim = 32;

    TrainConfig config;
    config.algorithm = Algorithm::GtopkSsgd;
    config.epochs = 8;
    config.iters_per_epoch = 30;
    config.lr = 0.02f;
    config.density = 0.05;
    config.warmup_densities = {0.25, 0.0725};

    const auto result = train::train_distributed(
        4, NetworkModel::free(), config,
        [&](std::uint64_t seed) { return nn::make_mini_vgg(mcfg, seed); },
        [&](std::int64_t step, int rank) {
            return dataset.batch_images(sampler.batch_indices(step, rank, 8));
        },
        [&] { return dataset.batch_images(sampler.test_indices(128)); });

    EXPECT_LT(result.epochs.back().train_loss, result.epochs.front().train_loss);
    EXPECT_GT(result.epochs.back().val_accuracy, 0.25);
}

TEST(Integration, ResNetStyleModelTrainsWithGtopk) {
    data::SyntheticImageDataset::Config dcfg;
    dcfg.image_size = 8;
    dcfg.noise_std = 0.5f;
    data::SyntheticImageDataset dataset(dcfg, 8);
    data::ShardedSampler sampler(4096, 512, 4, 6);

    nn::MiniResNetConfig mcfg;
    mcfg.image_size = 8;
    mcfg.channels = 4;
    mcfg.blocks = 1;

    TrainConfig config;
    config.algorithm = Algorithm::GtopkSsgd;
    config.epochs = 4;
    config.iters_per_epoch = 20;
    config.lr = 0.03f;
    config.density = 0.02;

    const auto result = train::train_distributed(
        4, NetworkModel::free(), config,
        [&](std::uint64_t seed) { return nn::make_mini_resnet(mcfg, seed); },
        [&](std::int64_t step, int rank) {
            return dataset.batch_images(sampler.batch_indices(step, rank, 8));
        },
        [&] { return dataset.batch_images(sampler.test_indices(128)); });
    EXPECT_LT(result.epochs.back().train_loss, result.epochs.front().train_loss);
}

TEST(Integration, LstmTrainsWithGtopkAtPaperDensity) {
    // Fig. 7 in miniature: LSTM LM, 4 workers, rho = 0.005.
    data::SequenceDataset ds({.vocab = 12, .seq_len = 8, .peakedness = 10.0}, 9);
    data::ShardedSampler sampler(4096, 512, 4, 7);
    nn::LstmConfig mcfg{.vocab = 12, .embed_dim = 8, .hidden_dim = 16};

    TrainConfig config;
    config.algorithm = Algorithm::GtopkSsgd;
    config.epochs = 4;
    config.iters_per_epoch = 25;
    config.lr = 0.5f;
    config.momentum = 0.5f;
    config.density = 0.005;
    config.warmup_densities = {0.25, 0.05};

    const auto result = train::train_distributed(
        4, NetworkModel::free(), config,
        [&](std::uint64_t seed) { return nn::make_lstm_lm(mcfg, seed); },
        [&](std::int64_t step, int rank) {
            return ds.batch(sampler.batch_indices(step, rank, 6));
        },
        [&] { return ds.batch(sampler.test_indices(64)); });
    EXPECT_LT(result.epochs.back().train_loss, result.epochs.front().train_loss - 0.1);
}

TEST(Integration, MeasuredCommTimeMatchesAnalyticModelInTraining) {
    // During real training on the virtual 1GbE cluster, rank 0's mean
    // per-iteration comm time for gTop-k must match Eq. 7 (+ wire/barrier
    // overheads) to within 20%.
    data::SyntheticImageDataset::Config dcfg;
    dcfg.image_size = 8;
    data::SyntheticImageDataset dataset(dcfg, 3);
    data::ShardedSampler sampler(1024, 128, 4, 3);
    nn::MlpConfig mcfg;
    mcfg.input_dim = dataset.feature_dim();
    mcfg.hidden_dims = {64};

    TrainConfig config;
    config.algorithm = Algorithm::GtopkSsgd;
    config.epochs = 1;
    config.iters_per_epoch = 12;
    config.density = 0.01;

    const auto net = NetworkModel::one_gbps_ethernet();
    const auto result = train::train_distributed(
        4, net, config,
        [&](std::uint64_t seed) { return nn::make_mlp(mcfg, seed); },
        [&](std::int64_t step, int rank) {
            return dataset.batch_flat(sampler.batch_indices(step, rank, 8));
        },
        nullptr);

    const auto model = nn::make_mlp(mcfg, config.model_seed);
    const std::uint64_t k = static_cast<std::uint64_t>(
        std::llround(config.density * static_cast<double>(model->num_params())));
    const double predicted = collectives::gtopk_allreduce_time_s(net, 4, k);
    EXPECT_NEAR(result.mean_comm_virtual_s, predicted, predicted * 0.2);
}

TEST(Integration, FullyDeterministicEndToEnd) {
    // Bit-identical final parameters across two complete distributed runs
    // (threads, scheduling, everything).
    data::SyntheticImageDataset dataset({}, 77);
    data::ShardedSampler sampler(8192, 1024, 4, 13);
    nn::MlpConfig mcfg;
    mcfg.input_dim = dataset.feature_dim();
    mcfg.hidden_dims = {48, 24};

    TrainConfig config;
    config.algorithm = Algorithm::GtopkSsgd;
    config.epochs = 2;
    config.iters_per_epoch = 15;
    config.density = 0.01;

    auto once = [&] {
        return train::train_distributed(
                   4, NetworkModel::one_gbps_ethernet(), config,
                   [&](std::uint64_t seed) { return nn::make_mlp(mcfg, seed); },
                   [&](std::int64_t step, int rank) {
                       return dataset.batch_flat(sampler.batch_indices(step, rank, 8));
                   },
                   nullptr)
            .final_params;
    };
    EXPECT_EQ(once(), once());
}

TEST(Integration, NonPowerOfTwoWorldTrainsCorrectly) {
    // The paper assumes P = 2^j; our extension must train correctly for
    // P = 3 and 6 as well.
    data::SyntheticImageDataset dataset({}, 21);
    nn::MlpConfig mcfg;
    mcfg.input_dim = dataset.feature_dim();
    mcfg.hidden_dims = {32};
    for (int world : {3, 6}) {
        data::ShardedSampler sampler(8192, 1024, world, 17);
        TrainConfig config;
        config.algorithm = Algorithm::GtopkSsgd;
        config.epochs = 3;
        config.iters_per_epoch = 20;
        config.density = 0.02;
        config.check_invariants = true;
        const auto result = train::train_distributed(
            world, NetworkModel::free(), config,
            [&](std::uint64_t seed) { return nn::make_mlp(mcfg, seed); },
            [&](std::int64_t step, int rank) {
                return dataset.batch_flat(sampler.batch_indices(step, rank, 8));
            },
            [&] { return dataset.batch_flat(sampler.test_indices(128)); });
        EXPECT_LT(result.epochs.back().train_loss, result.epochs.front().train_loss)
            << "world=" << world;
    }
}

}  // namespace
