// Unit tests for the commcheck static model checker (src/analysis/):
// generator edge cases (world == 1, non-power-of-two worlds), hand-built
// negative schedules for every violation class, closed-form count rules and
// alpha-beta critical-path spot checks against cost_model.hpp.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "analysis/cost_rules.hpp"
#include "analysis/verify.hpp"
#include "collectives/cost_model.hpp"
#include "collectives/schedule.hpp"
#include "comm/network_model.hpp"
#include "comm/tags.hpp"

namespace gtopk {
namespace {

using collectives::AllgatherAlgo;
using collectives::AllreduceAlgo;
using collectives::BcastAlgo;
using collectives::CommOp;
using collectives::Schedule;
using collectives::kVariableBytes;
using analysis::verify_schedule;

bool has_violation(const analysis::VerifyResult& r, const std::string& check) {
    for (const auto& v : r.violations) {
        if (v.check == check) return true;
    }
    return false;
}

// ---------------------------------------------------------------------------
// world == 1: every collective degenerates to zero messages. The generators
// must still emit a well-formed (single empty program) schedule, and the
// tag budget must mirror the implementations exactly — all of them early
// return before touching the communicator (tag_count 0) EXCEPT gather,
// which reserves its tag before the world check.
// ---------------------------------------------------------------------------

TEST(AnalysisWorldOne, AllGeneratorsEmitEmptyVerifiedSchedules) {
    const std::vector<std::int64_t> sizes = {64};
    const std::vector<Schedule> all = {
        collectives::barrier_schedule(1),
        collectives::broadcast_schedule(1, 0, 64, BcastAlgo::BinomialTree),
        collectives::broadcast_schedule(1, 0, 64, BcastAlgo::FlatTree),
        collectives::reduce_schedule(1, 0, 64),
        collectives::allreduce_ring_schedule(1, 16, 4),
        collectives::allreduce_recursive_doubling_schedule(1, 16, 4),
        collectives::allreduce_rabenseifner_schedule(1, 16, 4),
        collectives::allgather_schedule(1, 16, 4, AllgatherAlgo::RecursiveDoubling),
        collectives::allgather_schedule(1, 16, 4, AllgatherAlgo::Ring),
        collectives::allgatherv_schedule(1, sizes),
        collectives::gather_schedule(1, 0, 64),
        collectives::gtopk_merge_schedule(1, 272),
    };
    for (const Schedule& s : all) {
        SCOPED_TRACE(s.proto);
        const auto r = verify_schedule(s);
        EXPECT_TRUE(r.ok());
        EXPECT_EQ(r.total_messages, 0);
        ASSERT_EQ(s.ranks.size(), 1u);
        EXPECT_TRUE(s.rank_ops(0).empty());
        if (s.proto == "gather.flat") {
            // gather's implementation reserves its tag BEFORE the world
            // check, so the schedule must budget one even at world == 1.
            EXPECT_EQ(s.tag_count, 1);
        } else {
            EXPECT_EQ(s.tag_count, 0);
        }
    }
}

// ---------------------------------------------------------------------------
// Non-power-of-two worlds: the awkward sizes (P = 3, 5, 6, 12) exercise the
// fold/degrade paths. Every schedule must still verify clean and hit the
// closed-form message counts.
// ---------------------------------------------------------------------------

TEST(AnalysisOddWorlds, BarrierVerifiesAndMatchesClosedForm) {
    for (int world : {3, 5, 6, 12}) {
        SCOPED_TRACE(world);
        const Schedule s = collectives::barrier_schedule(world);
        const auto net = comm::NetworkModel::one_gbps_ethernet();
        const auto r = verify_schedule(s, &net);
        EXPECT_TRUE(r.ok());
        const auto want = analysis::expected_totals("barrier", world, 1, 1);
        ASSERT_TRUE(want.has_value());
        EXPECT_EQ(r.total_messages, want->messages);
        EXPECT_EQ(r.total_messages,
                  static_cast<std::int64_t>(world) * collectives::ilog2_ceil(world));
        // Tokens are 1 byte, so the critical path is ceil(log2 P) token
        // transfer times — NOT bare alpha.
        ASSERT_TRUE(r.critical_path_s.has_value());
        EXPECT_DOUBLE_EQ(*r.critical_path_s,
                         collectives::ilog2_ceil(world) * net.transfer_time_s(1));
    }
}

TEST(AnalysisOddWorlds, RingAllreduceUnevenBlocksVerifiesWithExactBytes) {
    // elems NOT divisible by world: blocks are uneven, but the total bytes
    // moved are still exactly 2 (P-1) m elem_bytes — each of the 2(P-1)
    // steps circulates every block exactly once.
    for (int world : {3, 5, 6, 12}) {
        SCOPED_TRACE(world);
        const std::int64_t elems = 17;
        const Schedule s = collectives::allreduce_ring_schedule(world, elems, 4);
        const auto r = verify_schedule(s);
        EXPECT_TRUE(r.ok());
        EXPECT_TRUE(r.bytes_exact);
        const auto want = analysis::expected_totals("allreduce.ring", world, elems, 4);
        ASSERT_TRUE(want.has_value());
        EXPECT_EQ(r.total_messages, want->messages);
        ASSERT_TRUE(want->bytes.has_value());
        EXPECT_EQ(r.total_bytes, *want->bytes);
        EXPECT_EQ(r.total_bytes, 2 * (world - 1) * elems * 4);
    }
}

TEST(AnalysisOddWorlds, AllgathervUnevenSizesVerifies) {
    for (int world : {3, 5, 6, 12}) {
        SCOPED_TRACE(world);
        std::vector<std::int64_t> sizes;
        for (int r = 0; r < world; ++r) sizes.push_back(8 * r);  // includes 0
        const Schedule s = collectives::allgatherv_schedule(world, sizes);
        const auto r = verify_schedule(s);
        EXPECT_TRUE(r.ok());
        EXPECT_EQ(r.total_messages,
                  static_cast<std::int64_t>(world) * (world - 1));
    }
}

TEST(AnalysisOddWorlds, GtopkMergeFoldPlusTreeVerifies) {
    for (int world : {3, 5, 6, 12}) {
        SCOPED_TRACE(world);
        const Schedule s = collectives::gtopk_merge_schedule(world, 272);
        const auto r = verify_schedule(s);
        EXPECT_TRUE(r.ok());
        // Every rank's selection is handed off exactly once en route to 0.
        EXPECT_EQ(r.total_messages, world - 1);
        // Rank 0 never sends in the merge; it only accumulates.
        EXPECT_EQ(r.per_rank[0].sends, 0);
    }
}

TEST(AnalysisOddWorlds, TreeMergeStepThrowsOnNonPowerOfTwoWorld) {
    EXPECT_THROW(collectives::tree_merge_step(0, 0, 6), std::invalid_argument);
    EXPECT_THROW(collectives::tree_merge_step(2, 1, 12), std::invalid_argument);
    EXPECT_NO_THROW(collectives::tree_merge_step(0, 0, 8));
}

// ---------------------------------------------------------------------------
// Negative schedules: one hand-built reproducer per violation class, so the
// checker's alarms are themselves pinned by tests.
// ---------------------------------------------------------------------------

Schedule empty_schedule(int world, int tag_count) {
    Schedule s;
    s.proto = "test";
    s.world = world;
    s.tag_count = tag_count;
    s.ranks.resize(static_cast<std::size_t>(world));
    return s;
}

CommOp send(int peer, int tag, std::int64_t bytes = 8) {
    CommOp op;
    op.kind = CommOp::Kind::Send;
    op.peer = peer;
    op.tag_offset = tag;
    op.bytes = bytes;
    return op;
}

CommOp recv(int peer, int tag, std::int64_t bytes = 8) {
    CommOp op;
    op.kind = CommOp::Kind::Recv;
    op.peer = peer;
    op.tag_offset = tag;
    op.bytes = bytes;
    return op;
}

TEST(AnalysisViolations, CleanPingPongPasses) {
    Schedule s = empty_schedule(2, 2);
    s.ranks[0] = {send(1, 0), recv(1, 1)};
    s.ranks[1] = {recv(0, 0), send(0, 1)};
    EXPECT_TRUE(verify_schedule(s).ok());
}

TEST(AnalysisViolations, DeadlockCycleIsNamed) {
    // Classic head-to-head: both ranks recv before either sends.
    Schedule s = empty_schedule(2, 1);
    s.ranks[0] = {recv(1, 0), send(1, 0)};
    s.ranks[1] = {recv(0, 0), send(0, 0)};
    const auto r = verify_schedule(s);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(has_violation(r, "deadlock"));
}

TEST(AnalysisViolations, UnmatchedRecvIsAMatchViolation) {
    Schedule s = empty_schedule(2, 1);
    s.ranks[0] = {recv(1, 0)};  // rank 1 never sends
    const auto r = verify_schedule(s);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(has_violation(r, "match"));
    EXPECT_FALSE(has_violation(r, "deadlock"));
}

TEST(AnalysisViolations, UnconsumedSendIsAMatchViolation) {
    Schedule s = empty_schedule(2, 1);
    s.ranks[0] = {send(1, 0)};  // rank 1 never receives
    const auto r = verify_schedule(s);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(has_violation(r, "match"));
}

TEST(AnalysisViolations, TagOutsideReservedBlock) {
    Schedule s = empty_schedule(2, 1);
    s.ranks[0] = {send(1, 1)};  // tag_count is 1, offset 1 out of range
    s.ranks[1] = {recv(0, 1)};
    const auto r = verify_schedule(s);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(has_violation(r, "tag-range"));
}

TEST(AnalysisViolations, AbsoluteTagAboveFreshBase) {
    Schedule s = empty_schedule(2, 0);
    s.absolute_tags = true;
    s.ranks[0] = {send(1, comm::kFreshTagBase)};  // collides with fresh blocks
    s.ranks[1] = {recv(0, comm::kFreshTagBase)};
    const auto r = verify_schedule(s);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(has_violation(r, "tag-range"));

    // The same tags below the base are legal.
    Schedule ok = empty_schedule(2, 0);
    ok.absolute_tags = true;
    ok.ranks[0] = {send(1, comm::kTagPsPush)};
    ok.ranks[1] = {recv(0, comm::kTagPsPush)};
    EXPECT_TRUE(verify_schedule(ok).ok());
}

TEST(AnalysisViolations, SelfMessageAndPeerOutOfRange) {
    Schedule s = empty_schedule(2, 1);
    s.ranks[0] = {send(0, 0)};  // self-message
    s.ranks[1] = {send(7, 0)};  // peer out of range
    const auto r = verify_schedule(s);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(has_violation(r, "well-formed"));
}

TEST(AnalysisViolations, DuplicateEdgeTagIsFifoAmbiguous) {
    Schedule s = empty_schedule(2, 1);
    s.ranks[0] = {send(1, 0), send(1, 0)};
    s.ranks[1] = {recv(0, 0), recv(0, 0)};
    const auto r = verify_schedule(s);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(has_violation(r, "fifo"));
}

TEST(AnalysisViolations, RemapRejectsOpPeerOutsideScheduleWorld) {
    // A default-initialized peer (-1) must be rejected, not cast to a huge
    // size_t and used to index the survivor table out of bounds.
    Schedule s = empty_schedule(2, 1);
    s.ranks[0] = {send(-1, 0)};
    const std::vector<int> survivors = {0, 2};
    EXPECT_THROW(collectives::remap_schedule(s, survivors, 4),
                 std::invalid_argument);

    Schedule too_big = empty_schedule(2, 1);
    too_big.ranks[0] = {send(2, 0)};  // peer == world
    EXPECT_THROW(collectives::remap_schedule(too_big, survivors, 4),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------------
// concat_schedules: consecutive fresh-tag blocks shift offsets exactly like
// consecutive fresh_tags() calls would.
// ---------------------------------------------------------------------------

TEST(AnalysisConcat, ShiftsTagOffsetsByRunningTagCount) {
    const int world = 4;
    const Schedule merge = collectives::gtopk_merge_schedule(world, 272);
    const Schedule bcast = collectives::broadcast_schedule(world, 0, 272);
    const std::vector<Schedule> parts = {merge, bcast};
    const Schedule full = collectives::concat_schedules("gtopk.allreduce", parts);

    EXPECT_EQ(full.tag_count, merge.tag_count + bcast.tag_count);
    const auto r = verify_schedule(full);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.total_messages, 2 * (world - 1));

    // Every broadcast op in the concatenation sits above the merge block.
    for (int rank = 0; rank < world; ++rank) {
        const auto& merged = full.rank_ops(rank);
        const auto& first = merge.rank_ops(rank);
        ASSERT_EQ(merged.size(), first.size() + bcast.rank_ops(rank).size());
        for (std::size_t i = first.size(); i < merged.size(); ++i) {
            EXPECT_GE(merged[i].tag_offset, merge.tag_count);
            EXPECT_LT(merged[i].tag_offset, full.tag_count);
        }
    }
}

// ---------------------------------------------------------------------------
// Critical-path spot checks against cost_model.hpp (the paper's Table I).
// The commcheck CLI sweeps these over P = 1..64; here we pin a couple at
// unit-test granularity so a cost-model regression fails fast and local.
// ---------------------------------------------------------------------------

TEST(AnalysisCriticalPath, RingAllreduceMatchesEq5) {
    const auto net = comm::NetworkModel::one_gbps_ethernet();
    const int world = 4;
    const std::int64_t elems = 4096;  // divisible by world: Eq. 5 is exact
    const auto r =
        verify_schedule(collectives::allreduce_ring_schedule(world, elems, 4), &net);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.critical_path_s.has_value());
    EXPECT_NEAR(*r.critical_path_s,
                collectives::dense_allreduce_time_s(
                    net, world, static_cast<std::uint64_t>(elems)),
                1e-12);
}

TEST(AnalysisCriticalPath, BinomialBroadcastMatchesClosedForm) {
    const auto net = comm::NetworkModel::one_gbps_ethernet();
    const int world = 8;
    const std::int64_t elems = 1000;
    const auto r = verify_schedule(
        collectives::broadcast_schedule(world, 0, elems * 4), &net);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.critical_path_s.has_value());
    EXPECT_NEAR(*r.critical_path_s,
                collectives::broadcast_time_s(net, world,
                                              static_cast<std::uint64_t>(elems)),
                1e-12);
}

TEST(AnalysisCriticalPath, GtopkAllreduceMatchesEq7WithWireHeader) {
    // Wire payload is 16 header bytes + 8 bytes per selected element, i.e.
    // k + 2 four-byte "elements" in the paper's unit — Eq. 7 with k + 2.
    const auto net = comm::NetworkModel::one_gbps_ethernet();
    const int world = 8;
    const std::int64_t k = 32;
    const std::int64_t wire = 16 + 8 * k;
    const std::vector<Schedule> parts = {
        collectives::gtopk_merge_schedule(world, wire),
        collectives::broadcast_schedule(world, 0, wire),
    };
    const auto r = verify_schedule(
        collectives::concat_schedules("gtopk.allreduce", parts), &net);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.critical_path_s.has_value());
    EXPECT_NEAR(*r.critical_path_s,
                collectives::gtopk_allreduce_time_s(
                    net, world, static_cast<std::uint64_t>(k + 2)),
                1e-12);
}

TEST(AnalysisCriticalPath, VariableBytesDisableTimingButKeepStructure) {
    const Schedule s = collectives::gtopk_merge_schedule(6, kVariableBytes);
    const auto net = comm::NetworkModel::one_gbps_ethernet();
    const auto r = verify_schedule(s, &net);
    EXPECT_TRUE(r.ok());
    EXPECT_FALSE(r.bytes_exact);
    EXPECT_FALSE(r.critical_path_s.has_value());
}

}  // namespace
}  // namespace gtopk
