// Correctness of every collective against sequential references, swept over
// world sizes (powers of two and not) and payload sizes (including empty
// and smaller-than-world vectors).
#include <gtest/gtest.h>

#include <numeric>

#include "collectives/collectives.hpp"
#include "collectives/schedule.hpp"
#include "comm/cluster.hpp"

namespace {

using namespace gtopk::collectives;
using gtopk::comm::Cluster;
using gtopk::comm::Communicator;
using gtopk::comm::NetworkModel;

std::vector<float> rank_vector(int rank, std::size_t n) {
    std::vector<float> v(n);
    for (std::size_t i = 0; i < n; ++i) {
        v[i] = static_cast<float>(rank + 1) * 0.5f + static_cast<float>(i);
    }
    return v;
}

std::vector<float> expected_sum(int world, std::size_t n) {
    std::vector<float> sum(n, 0.0f);
    for (int r = 0; r < world; ++r) {
        const auto v = rank_vector(r, n);
        for (std::size_t i = 0; i < n; ++i) sum[i] += v[i];
    }
    return sum;
}

// ---------- schedule unit tests ----------

TEST(Schedule, Ilog2) {
    EXPECT_EQ(ilog2_floor(1), 0);
    EXPECT_EQ(ilog2_floor(2), 1);
    EXPECT_EQ(ilog2_floor(3), 1);
    EXPECT_EQ(ilog2_floor(8), 3);
    EXPECT_EQ(ilog2_ceil(1), 0);
    EXPECT_EQ(ilog2_ceil(2), 1);
    EXPECT_EQ(ilog2_ceil(3), 2);
    EXPECT_EQ(ilog2_ceil(8), 3);
    EXPECT_EQ(ilog2_ceil(9), 4);
}

TEST(Schedule, PowerOfTwo) {
    EXPECT_TRUE(is_power_of_two(1));
    EXPECT_TRUE(is_power_of_two(64));
    EXPECT_FALSE(is_power_of_two(0));
    EXPECT_FALSE(is_power_of_two(6));
    EXPECT_FALSE(is_power_of_two(-4));
}

TEST(Schedule, RingBlockOffsetsCoverEverything) {
    for (int world : {1, 2, 3, 5, 8}) {
        for (std::size_t n : {0u, 1u, 4u, 7u, 100u}) {
            const auto offsets = ring_block_offsets(n, world);
            ASSERT_EQ(offsets.size(), static_cast<std::size_t>(world) + 1);
            EXPECT_EQ(offsets.front(), 0u);
            EXPECT_EQ(offsets.back(), n);
            for (std::size_t b = 0; b < offsets.size() - 1; ++b) {
                EXPECT_LE(offsets[b], offsets[b + 1]);
            }
        }
    }
}

TEST(Schedule, BinomialBcastEveryRankReceivesOnce) {
    for (int world : {1, 2, 3, 4, 5, 7, 8, 16, 33}) {
        for (int root : {0, world / 2, world - 1}) {
            int receivers = 0;
            for (int rank = 0; rank < world; ++rank) {
                const auto plan = binomial_bcast_plan(rank, root, world);
                if (rank == root) {
                    EXPECT_EQ(plan.recv_round, -1);
                } else {
                    ++receivers;
                    EXPECT_GE(plan.recv_round, 0);
                    // Sender must hold the data before the receive round.
                    const auto sender_plan =
                        binomial_bcast_plan(plan.recv_from, root, world);
                    EXPECT_LT(sender_plan.recv_round, plan.recv_round);
                }
                for (const auto& [round, dst] : plan.sends) {
                    EXPECT_GT(round, plan.recv_round);
                    EXPECT_GE(dst, 0);
                    EXPECT_LT(dst, world);
                }
            }
            EXPECT_EQ(receivers, world - 1);
        }
    }
}

TEST(Schedule, TreeMergePairsAreConsistent) {
    for (int world : {2, 4, 8, 16, 32, 64}) {
        for (int round = 0; round < tree_merge_rounds(world); ++round) {
            int receives = 0, sends = 0;
            for (int rank = 0; rank < world; ++rank) {
                const auto step = tree_merge_step(rank, round, world);
                if (step.role == TreeMergeStep::Role::Receive) {
                    ++receives;
                    const auto peer = tree_merge_step(step.peer, round, world);
                    EXPECT_EQ(peer.role, TreeMergeStep::Role::Send);
                    EXPECT_EQ(peer.peer, rank);
                } else if (step.role == TreeMergeStep::Role::Send) {
                    ++sends;
                }
            }
            EXPECT_EQ(receives, sends);
            EXPECT_EQ(receives, world >> (round + 1));
        }
    }
}

TEST(Schedule, TreeMergeRejectsNonPowerOfTwo) {
    EXPECT_THROW(tree_merge_step(0, 0, 6), std::invalid_argument);
}

// ---------- collective correctness, parameterized over world size ----------

class CollectivesWorld : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Worlds, CollectivesWorld,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

TEST_P(CollectivesWorld, BarrierCompletes) {
    const int world = GetParam();
    Cluster::run(world, NetworkModel::free(),
                 [](Communicator& comm) { barrier(comm); });
}

TEST_P(CollectivesWorld, BroadcastBinomialDeliversRootData) {
    const int world = GetParam();
    for (int root = 0; root < world; ++root) {
        Cluster::run(world, NetworkModel::free(), [&](Communicator& comm) {
            std::vector<float> data;
            if (comm.rank() == root) data = rank_vector(root, 33);
            broadcast(comm, data, root, BcastAlgo::BinomialTree);
            EXPECT_EQ(data, rank_vector(root, 33));
        });
    }
}

TEST_P(CollectivesWorld, BroadcastFlatTreeDeliversRootData) {
    const int world = GetParam();
    Cluster::run(world, NetworkModel::free(), [&](Communicator& comm) {
        std::vector<float> data;
        if (comm.rank() == 0) data = rank_vector(0, 17);
        broadcast(comm, data, 0, BcastAlgo::FlatTree);
        EXPECT_EQ(data, rank_vector(0, 17));
    });
}

TEST_P(CollectivesWorld, ReduceSumMatchesReference) {
    const int world = GetParam();
    for (int root : {0, world - 1}) {
        Cluster::run(world, NetworkModel::free(), [&](Communicator& comm) {
            const auto mine = rank_vector(comm.rank(), 21);
            const auto result = reduce_sum<float>(comm, mine, root);
            if (comm.rank() == root) {
                const auto expect = expected_sum(world, 21);
                ASSERT_EQ(result.size(), expect.size());
                for (std::size_t i = 0; i < expect.size(); ++i) {
                    EXPECT_NEAR(result[i], expect[i], 1e-3f) << "i=" << i;
                }
            }
        });
    }
}

TEST_P(CollectivesWorld, RingAllreduceMatchesReference) {
    const int world = GetParam();
    for (std::size_t n : {0u, 1u, 2u, 16u, 257u}) {
        Cluster::run(world, NetworkModel::free(), [&](Communicator& comm) {
            auto data = rank_vector(comm.rank(), n);
            allreduce_sum_ring(comm, data);
            const auto expect = expected_sum(world, n);
            ASSERT_EQ(data.size(), n);
            for (std::size_t i = 0; i < n; ++i) {
                EXPECT_NEAR(data[i], expect[i], 1e-3f);
            }
        });
    }
}

TEST_P(CollectivesWorld, AllgatherRingConcatenatesInRankOrder) {
    const int world = GetParam();
    Cluster::run(world, NetworkModel::free(), [&](Communicator& comm) {
        const auto mine = rank_vector(comm.rank(), 5);
        const auto all = allgather<float>(comm, mine, AllgatherAlgo::Ring);
        ASSERT_EQ(all.size(), 5u * static_cast<std::size_t>(world));
        for (int r = 0; r < world; ++r) {
            const auto expect = rank_vector(r, 5);
            for (std::size_t i = 0; i < 5; ++i) {
                EXPECT_EQ(all[static_cast<std::size_t>(r) * 5 + i], expect[i]);
            }
        }
    });
}

TEST_P(CollectivesWorld, AllgathervHandlesVariableSizes) {
    const int world = GetParam();
    Cluster::run(world, NetworkModel::free(), [&](Communicator& comm) {
        const auto mine = rank_vector(comm.rank(),
                                      static_cast<std::size_t>(comm.rank() + 1));
        const auto all = allgatherv<float>(comm, mine);
        ASSERT_EQ(all.size(), static_cast<std::size_t>(world));
        for (int r = 0; r < world; ++r) {
            EXPECT_EQ(all[static_cast<std::size_t>(r)],
                      rank_vector(r, static_cast<std::size_t>(r + 1)));
        }
    });
}

TEST_P(CollectivesWorld, GatherCollectsOnRoot) {
    const int world = GetParam();
    Cluster::run(world, NetworkModel::free(), [&](Communicator& comm) {
        const auto mine = rank_vector(comm.rank(), 3);
        const auto out = gather<float>(comm, mine, 0);
        if (comm.rank() == 0) {
            ASSERT_EQ(out.size(), 3u * static_cast<std::size_t>(world));
            for (int r = 0; r < world; ++r) {
                const auto expect = rank_vector(r, 3);
                for (std::size_t i = 0; i < 3; ++i) {
                    EXPECT_EQ(out[static_cast<std::size_t>(r) * 3 + i], expect[i]);
                }
            }
        } else {
            EXPECT_TRUE(out.empty());
        }
    });
}

// Recursive doubling variants only exist for powers of two.
class CollectivesPow2 : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Pow2Worlds, CollectivesPow2, ::testing::Values(2, 4, 8, 16));

TEST_P(CollectivesPow2, RabenseifnerAllreduceMatchesRing) {
    const int world = GetParam();
    // m divisible by P (rabenseifner requirement).
    const std::size_t n = static_cast<std::size_t>(world) * 13;
    Cluster::run(world, NetworkModel::free(), [&](Communicator& comm) {
        auto a = rank_vector(comm.rank(), n);
        auto b = a;
        allreduce_sum_ring(comm, a);
        allreduce_sum_rabenseifner(comm, b);
        for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-3f);
    });
}

TEST(CollectivesEdge, RabenseifnerRejectsBadShapes) {
    Cluster::run(4, NetworkModel::free(), [](Communicator& comm) {
        std::vector<float> odd(5, 1.0f);  // not divisible by 4
        EXPECT_THROW(allreduce_sum_rabenseifner(comm, odd), std::invalid_argument);
    });
    Cluster::run(3, NetworkModel::free(), [](Communicator& comm) {
        std::vector<float> v(6, 1.0f);
        EXPECT_THROW(allreduce_sum_rabenseifner(comm, v), std::invalid_argument);
    });
}

TEST_P(CollectivesPow2, RecursiveDoublingAllreduceMatchesRing) {
    const int world = GetParam();
    Cluster::run(world, NetworkModel::free(), [&](Communicator& comm) {
        auto a = rank_vector(comm.rank(), 40);
        auto b = a;
        allreduce_sum_ring(comm, a);
        allreduce_sum_recursive_doubling(comm, b);
        for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-3f);
    });
}

TEST_P(CollectivesPow2, AllgatherRecursiveDoublingMatchesRing) {
    const int world = GetParam();
    Cluster::run(world, NetworkModel::free(), [&](Communicator& comm) {
        const auto mine = rank_vector(comm.rank(), 6);
        const auto a = allgather<float>(comm, mine, AllgatherAlgo::RecursiveDoubling);
        const auto b = allgather<float>(comm, mine, AllgatherAlgo::Ring);
        EXPECT_EQ(a, b);
    });
}

TEST(CollectivesEdge, RecursiveDoublingRejectsNonPowerOfTwo) {
    Cluster::run(3, NetworkModel::free(), [](Communicator& comm) {
        std::vector<float> v(4, 1.0f);
        EXPECT_THROW(allreduce_sum_recursive_doubling(comm, v), std::invalid_argument);
    });
}

TEST(CollectivesEdge, BackToBackCollectivesDoNotCrossTalk) {
    // Consecutive collectives use fresh tag blocks; run many in a row and
    // verify nothing bleeds across invocations.
    Cluster::run(4, NetworkModel::free(), [](Communicator& comm) {
        for (int round = 0; round < 20; ++round) {
            auto data = rank_vector(comm.rank(), 8);
            allreduce_sum_ring(comm, data);
            const auto expect = expected_sum(4, 8);
            for (std::size_t i = 0; i < 8; ++i) ASSERT_NEAR(data[i], expect[i], 1e-3f);
            std::vector<float> b;
            if (comm.rank() == round % 4) b = rank_vector(round, 3);
            broadcast(comm, b, round % 4);
            ASSERT_EQ(b, rank_vector(round, 3));
        }
    });
}

TEST(CollectivesEdge, IntAllreduceIsExact) {
    Cluster::run(8, NetworkModel::free(), [](Communicator& comm) {
        std::vector<std::int64_t> v(100);
        std::iota(v.begin(), v.end(), comm.rank());
        allreduce_sum_ring(comm, v);
        for (std::size_t i = 0; i < v.size(); ++i) {
            // sum over r of (i + r) = 8i + 28
            EXPECT_EQ(v[i], static_cast<std::int64_t>(8 * i + 28));
        }
    });
}

}  // namespace
