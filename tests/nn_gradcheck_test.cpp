// Numerical gradient checks: backprop gradients of every model in the zoo
// (and therefore every layer type: Linear, Conv2d, MaxPool2d, ReLU, Tanh,
// Sigmoid, Flatten, ResidualBlock, and the full LSTM BPTT) are compared
// against central finite differences of the loss.
//
// ReLU and MaxPool are piecewise linear: when a perturbation of size eps
// crosses a kink (a ReLU pre-activation flips sign, an argmax changes),
// the finite difference measures a different linear piece than the
// analytic one-sided gradient and the comparison is meaningless. The
// checker detects kinks by comparing the two one-sided differences and
// skips those coordinates; smooth (Tanh) models are additionally checked
// with NO skipping, so a genuine backprop bug cannot hide behind the
// kink filter.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/activations.hpp"
#include "nn/classifier_model.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/model_zoo.hpp"
#include "nn/residual.hpp"
#include "nn/sequential.hpp"
#include "util/rng.hpp"

namespace {

using namespace gtopk::nn;
using gtopk::util::Xoshiro256;

Batch random_classifier_batch(std::int64_t n, std::vector<std::int64_t> xshape,
                              std::int64_t classes, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    xshape.insert(xshape.begin(), n);
    Batch batch;
    batch.x = Tensor(xshape);
    for (auto& v : batch.x.data()) v = static_cast<float>(rng.next_gaussian());
    for (std::int64_t i = 0; i < n; ++i) {
        batch.targets.push_back(static_cast<std::int32_t>(
            rng.next_below(static_cast<std::uint64_t>(classes))));
    }
    return batch;
}

Batch random_lm_batch(std::int64_t n, std::int64_t t_len, std::int64_t vocab,
                      std::uint64_t seed) {
    Xoshiro256 rng(seed);
    Batch batch;
    batch.x = Tensor({n, t_len});
    for (auto& v : batch.x.data()) {
        v = static_cast<float>(rng.next_below(static_cast<std::uint64_t>(vocab)));
    }
    for (std::int64_t i = 0; i < n * t_len; ++i) {
        batch.targets.push_back(static_cast<std::int32_t>(
            rng.next_below(static_cast<std::uint64_t>(vocab))));
    }
    return batch;
}

struct GradcheckOptions {
    int samples = 40;
    double tolerance = 2e-2;
    float eps = 1e-3f;
    /// Minimum |analytic| worth checking; below it float32 loss noise
    /// (~1e-4 absolute on the difference) dominates the estimate.
    float min_grad = 5e-3f;
    /// When true, coordinates whose two one-sided differences disagree by
    /// more than 25% are skipped (kink within eps). Must be false for
    /// smooth models so nothing can hide.
    bool skip_kinks = true;
};

void gradcheck(TrainableModel& model, const Batch& batch,
               const GradcheckOptions& opt) {
    (void)model.train_step_gradients(batch);
    const std::vector<float> analytic = model.flat_grads();
    const std::vector<float> theta0 = model.flat_params();
    const std::size_t m = theta0.size();
    const double l0 = model.eval_loss(batch);

    Xoshiro256 pick(0xD1CE);
    int checked = 0, kinks = 0;
    for (int s = 0; s < opt.samples * 6 && checked < opt.samples; ++s) {
        const std::size_t i = static_cast<std::size_t>(pick.next_below(m));
        if (std::abs(analytic[i]) < opt.min_grad) continue;

        std::vector<float> theta = theta0;
        theta[i] = theta0[i] + opt.eps;
        model.set_flat_params(theta);
        const double lp = model.eval_loss(batch);
        theta[i] = theta0[i] - opt.eps;
        model.set_flat_params(theta);
        const double lm = model.eval_loss(batch);
        model.set_flat_params(theta0);

        const double fwd = (lp - l0) / opt.eps;
        const double bwd = (l0 - lm) / opt.eps;
        const double central = (lp - lm) / (2.0 * opt.eps);
        if (opt.skip_kinks) {
            const double scale = std::max({1e-3, std::abs(fwd), std::abs(bwd)});
            if (std::abs(fwd - bwd) > 0.08 * scale) {
                ++kinks;  // non-smooth at this scale: unusable estimate
                continue;
            }
        }
        ++checked;
        const double denom = std::max(
            {1e-4, std::abs(central), static_cast<double>(std::abs(analytic[i]))});
        EXPECT_NEAR(analytic[i] / denom, central / denom, opt.tolerance)
            << "param " << i << " analytic=" << analytic[i] << " numeric=" << central;
    }
    EXPECT_GT(checked, opt.samples / 5)
        << "too few checkable coordinates (kinks skipped: " << kinks << ")";
}

// --- smooth models: strict, no kink skipping ---

TEST(GradCheckSmooth, TanhMlpNoSkipping) {
    Xoshiro256 rng(101);
    auto net = std::make_unique<Sequential>();
    net->emplace<Linear>(12, 10, rng);
    net->emplace<Tanh>();
    net->emplace<Linear>(10, 8, rng);
    net->emplace<Sigmoid>();
    net->emplace<Linear>(8, 4, rng);
    ClassifierModel model(std::move(net));
    GradcheckOptions opt;
    opt.skip_kinks = false;
    opt.samples = 60;
    gradcheck(model, random_classifier_batch(3, {12}, 4, 1), opt);
}

TEST(GradCheckSmooth, TanhConvResidualNoSkipping) {
    Xoshiro256 rng(103);
    auto body = std::make_unique<Sequential>();
    body->emplace<Conv2d>(3, 3, 3, 1, 1, rng);
    body->emplace<Tanh>();
    auto net = std::make_unique<Sequential>();
    net->emplace<Conv2d>(2, 3, 3, 1, 1, rng);
    net->emplace<Tanh>();
    net->emplace<ResidualBlock>(std::move(body));
    net->emplace<Flatten>();
    net->emplace<Linear>(3 * 6 * 6, 4, rng);
    ClassifierModel model(std::move(net));
    GradcheckOptions opt;
    opt.skip_kinks = false;
    opt.samples = 50;
    gradcheck(model, random_classifier_batch(2, {2, 6, 6}, 4, 2), opt);
}

TEST(GradCheckSmooth, LstmLmNoSkipping) {
    // The LSTM is smooth (sigmoid/tanh gates), so no skipping is needed.
    // eps is larger here: the float32 forward pass carries ~1e-6 absolute
    // loss noise, so the finite difference needs a bigger signal; the
    // smoothness keeps the O(eps^2) truncation error negligible.
    LstmConfig cfg;
    cfg.vocab = 9;
    cfg.embed_dim = 6;
    cfg.hidden_dim = 8;
    auto model = make_lstm_lm(cfg, 23);
    GradcheckOptions opt;
    opt.skip_kinks = false;
    opt.samples = 40;
    opt.tolerance = 3e-2;
    opt.eps = 1e-2f;
    opt.min_grad = 2e-3f;
    gradcheck(*model, random_lm_batch(2, 5, 9, 5), opt);
}

TEST(GradCheckSmooth, TwoLayerLstmNoSkipping) {
    // The paper's LSTM-PTB is 2-layer; the stacked BPTT (inter-layer dx ->
    // dh routing) must survive the same strict check.
    LstmConfig cfg;
    cfg.vocab = 7;
    cfg.embed_dim = 5;
    cfg.hidden_dim = 6;
    cfg.num_layers = 2;
    auto model = make_lstm_lm(cfg, 31);
    GradcheckOptions opt;
    opt.skip_kinks = false;
    opt.samples = 40;
    opt.tolerance = 3e-2;
    opt.eps = 1e-2f;
    opt.min_grad = 2e-3f;
    gradcheck(*model, random_lm_batch(2, 6, 7, 8), opt);
}

TEST(GradCheckSmooth, LstmLmLongerSequenceBpttNoSkipping) {
    LstmConfig cfg;
    cfg.vocab = 6;
    cfg.embed_dim = 4;
    cfg.hidden_dim = 5;
    auto model = make_lstm_lm(cfg, 29);
    GradcheckOptions opt;
    opt.skip_kinks = false;
    opt.samples = 30;
    opt.tolerance = 3e-2;
    opt.eps = 1e-2f;
    opt.min_grad = 2e-3f;
    gradcheck(*model, random_lm_batch(1, 12, 6, 6), opt);
}

// --- the production (ReLU/MaxPool) models: kink-aware ---

TEST(GradCheck, Mlp) {
    auto model = make_mlp({12, {10, 7}, 4}, 11);
    gradcheck(*model, random_classifier_batch(3, {12}, 4, 1), {});
}

TEST(GradCheck, MlpSingleSample) {
    auto model = make_mlp({6, {5}, 3}, 13);
    GradcheckOptions opt;
    opt.samples = 30;
    gradcheck(*model, random_classifier_batch(1, {6}, 3, 2), opt);
}

TEST(GradCheck, MiniVgg) {
    MiniVggConfig cfg;
    cfg.image_size = 8;
    cfg.conv_channels = 3;
    cfg.fc_dim = 16;
    cfg.classes = 4;
    auto model = make_mini_vgg(cfg, 17);
    GradcheckOptions opt;
    opt.tolerance = 3e-2;
    gradcheck(*model, random_classifier_batch(2, {3, 8, 8}, 4, 3), opt);
}

TEST(GradCheck, MiniResNet) {
    // The residual net has the densest kink structure (ReLU + MaxPool at
    // every block); an eps sweep (see repo history) shows the numeric
    // estimate converges to the analytic gradient as eps -> 0, so this
    // check uses a small eps and only large-magnitude coordinates where
    // the float32 noise floor is relatively harmless.
    MiniResNetConfig cfg;
    cfg.image_size = 8;
    cfg.channels = 4;
    cfg.blocks = 2;
    cfg.classes = 3;
    auto model = make_mini_resnet(cfg, 19);
    GradcheckOptions opt;
    opt.tolerance = 3e-2;
    opt.eps = 5e-4f;
    opt.min_grad = 5e-2f;
    opt.samples = 25;
    gradcheck(*model, random_classifier_batch(2, {3, 8, 8}, 3, 4), opt);
}

}  // namespace
