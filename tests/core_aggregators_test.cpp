// Correctness of the three aggregation algorithms against local references.
#include <gtest/gtest.h>

#include "collectives/schedule.hpp"
#include "comm/cluster.hpp"
#include "core/aggregators.hpp"
#include "sparse/topk_merge.hpp"
#include "sparse/topk_select.hpp"
#include "util/rng.hpp"

namespace {

using namespace gtopk;
using comm::Cluster;
using comm::Communicator;
using comm::NetworkModel;
using sparse::SparseGradient;

std::vector<float> rank_dense(int rank, std::int64_t m, std::uint64_t seed = 7) {
    util::Xoshiro256 rng =
        util::Xoshiro256(seed).fork(static_cast<std::uint64_t>(rank));
    std::vector<float> v(static_cast<std::size_t>(m));
    for (auto& x : v) x = static_cast<float>(rng.next_gaussian());
    return v;
}

/// Sequential reference of the exact tree schedule gtopk_allreduce runs:
/// fold the excess ranks into the power-of-two base, then distance-doubling
/// pairwise ⊤ merges.
SparseGradient reference_tree_fold(std::vector<SparseGradient> locals, std::size_t k) {
    const int world = static_cast<int>(locals.size());
    if (world == 1) return sparse::sparse_topk(locals[0], k);
    const int base = 1 << collectives::ilog2_floor(world);
    for (int r = base; r < world; ++r) {
        locals[static_cast<std::size_t>(r - base)] =
            sparse::topk_merge(locals[static_cast<std::size_t>(r - base)],
                               locals[static_cast<std::size_t>(r)], k);
    }
    for (int stride = 1; stride < base; stride *= 2) {
        for (int r = 0; r + stride < base; r += 2 * stride) {
            locals[static_cast<std::size_t>(r)] =
                sparse::topk_merge(locals[static_cast<std::size_t>(r)],
                                   locals[static_cast<std::size_t>(r + stride)], k);
        }
    }
    return locals[0];
}

SparseGradient reference_global_topk(const std::vector<SparseGradient>& locals,
                                     std::size_t k) {
    SparseGradient sum;
    sum.dense_size = locals[0].dense_size;
    for (const auto& g : locals) sum = sparse::add(sum, g);
    return sparse::sparse_topk(sum, k);
}

class AggregatorWorld : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Worlds, AggregatorWorld,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 16));

TEST_P(AggregatorWorld, DenseAllreduceEqualsSum) {
    const int world = GetParam();
    const std::int64_t m = 133;
    Cluster::run(world, NetworkModel::free(), [&](Communicator& comm) {
        const auto mine = rank_dense(comm.rank(), m);
        const auto result = core::dense_allreduce(comm, mine);
        std::vector<float> expect(static_cast<std::size_t>(m), 0.0f);
        for (int r = 0; r < world; ++r) {
            const auto v = rank_dense(r, m);
            for (std::size_t i = 0; i < v.size(); ++i) expect[i] += v[i];
        }
        ASSERT_EQ(result.size(), expect.size());
        for (std::size_t i = 0; i < expect.size(); ++i) {
            EXPECT_NEAR(result[i], expect[i], 1e-4f);
        }
    });
}

TEST_P(AggregatorWorld, TopkAllreduceEqualsSumOfSelections) {
    const int world = GetParam();
    const std::int64_t m = 200;
    const std::size_t k = 15;
    Cluster::run(world, NetworkModel::free(), [&](Communicator& comm) {
        const auto local = sparse::topk_select(rank_dense(comm.rank(), m), k);
        const auto result = core::topk_allreduce(comm, local);
        std::vector<float> expect(static_cast<std::size_t>(m), 0.0f);
        for (int r = 0; r < world; ++r) {
            sparse::topk_select(rank_dense(r, m), k).scatter_add(expect);
        }
        ASSERT_EQ(result.size(), expect.size());
        for (std::size_t i = 0; i < expect.size(); ++i) {
            EXPECT_NEAR(result[i], expect[i], 1e-5f);
        }
    });
}

TEST_P(AggregatorWorld, GtopkMatchesTreeFoldReferenceOnEveryRank) {
    const int world = GetParam();
    const std::int64_t m = 500;
    const std::size_t k = 20;
    std::vector<SparseGradient> locals;
    for (int r = 0; r < world; ++r) {
        locals.push_back(sparse::topk_select(rank_dense(r, m), k));
    }
    const SparseGradient expect = reference_tree_fold(locals, k);
    Cluster::run(world, NetworkModel::free(), [&](Communicator& comm) {
        const auto& local = locals[static_cast<std::size_t>(comm.rank())];
        const auto result = core::gtopk_allreduce(comm, local, k);
        EXPECT_EQ(result.global, expect) << "rank " << comm.rank();
    });
}

TEST_P(AggregatorWorld, NaiveGtopkMatchesGlobalTopkOfSum) {
    const int world = GetParam();
    const std::int64_t m = 300;
    const std::size_t k = 12;
    std::vector<SparseGradient> locals;
    for (int r = 0; r < world; ++r) {
        locals.push_back(sparse::topk_select(rank_dense(r, m, 11), k));
    }
    const SparseGradient expect = reference_global_topk(locals, k);
    Cluster::run(world, NetworkModel::free(), [&](Communicator& comm) {
        const auto result = core::naive_gtopk_allreduce(
            comm, locals[static_cast<std::size_t>(comm.rank())], k);
        EXPECT_EQ(result.global, expect);
    });
}

TEST_P(AggregatorWorld, GtopkResultIdenticalOnAllRanks) {
    const int world = GetParam();
    const std::int64_t m = 256;
    const std::size_t k = 16;
    std::vector<SparseGradient> results(static_cast<std::size_t>(world));
    Cluster::run(world, NetworkModel::free(), [&](Communicator& comm) {
        const auto local = sparse::topk_select(rank_dense(comm.rank(), m, 3), k);
        results[static_cast<std::size_t>(comm.rank())] =
            core::gtopk_allreduce(comm, local, k).global;
    });
    for (int r = 1; r < world; ++r) {
        EXPECT_EQ(results[static_cast<std::size_t>(r)], results[0]);
    }
}

TEST_P(AggregatorWorld, GtopkWithDisjointPositiveInputsEqualsGlobalTopk) {
    // When worker contributions never collide or cancel, the tree fold and
    // the true global top-k coincide — both must return the k globally
    // largest entries.
    const int world = GetParam();
    const std::int64_t m = 1000;
    const std::size_t k = 8;
    std::vector<SparseGradient> locals;
    for (int r = 0; r < world; ++r) {
        SparseGradient g;
        g.dense_size = m;
        for (std::size_t j = 0; j < k; ++j) {
            // Disjoint index blocks, strictly positive distinct values.
            g.indices.push_back(static_cast<std::int32_t>(r * 50 + j));
            g.values.push_back(1.0f + static_cast<float>(r) +
                               static_cast<float>(j) * 0.01f);
        }
        locals.push_back(g);
    }
    const SparseGradient expect = reference_global_topk(locals, k);
    Cluster::run(world, NetworkModel::free(), [&](Communicator& comm) {
        const auto result = core::gtopk_allreduce(
            comm, locals[static_cast<std::size_t>(comm.rank())], k);
        EXPECT_EQ(result.global, expect);
    });
}

TEST_P(AggregatorWorld, GtopkFlatTreeBroadcastGivesSameResult) {
    const int world = GetParam();
    const std::int64_t m = 180;
    const std::size_t k = 9;
    Cluster::run(world, NetworkModel::free(), [&](Communicator& comm) {
        const auto local = sparse::topk_select(rank_dense(comm.rank(), m, 5), k);
        core::GtopkOptions flat;
        flat.bcast = collectives::BcastAlgo::FlatTree;
        const auto a = core::gtopk_allreduce(comm, local, k);
        const auto b = core::gtopk_allreduce(comm, local, k, flat);
        EXPECT_EQ(a.global, b.global);
    });
}

TEST(Aggregators, GtopkSingleWorkerIsLocalTopk) {
    const std::int64_t m = 64;
    Cluster::run(1, NetworkModel::free(), [&](Communicator& comm) {
        const auto dense = rank_dense(0, m);
        const auto local = sparse::topk_select(dense, 10);
        const auto result = core::gtopk_allreduce(comm, local, 10);
        EXPECT_EQ(result.global, local);
    });
}

TEST(Aggregators, TopkAllreduceRejectsUnequalContributions) {
    Cluster::run(2, NetworkModel::free(), [](Communicator& comm) {
        SparseGradient g;
        g.dense_size = 10;
        // Rank 0 contributes 2 values, rank 1 contributes 1 -> must throw
        // (on at least one rank the deserialized block is inconsistent).
        if (comm.rank() == 0) {
            g.indices = {1, 2};
            g.values = {1.0f, 2.0f};
        } else {
            g.indices = {3};
            g.values = {3.0f};
        }
        EXPECT_THROW((void)core::topk_allreduce(comm, g), std::exception);
    });
}

TEST(Aggregators, GtopkNnzIsExactlyKWhenInputsAreRich) {
    Cluster::run(4, NetworkModel::free(), [](Communicator& comm) {
        const auto local = sparse::topk_select(rank_dense(comm.rank(), 400, 13), 25);
        const auto result = core::gtopk_allreduce(comm, local, 25);
        EXPECT_EQ(result.global.nnz(), 25u);
        EXPECT_NO_THROW(result.global.validate());
    });
}

}  // namespace
