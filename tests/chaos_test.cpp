// Chaos harness: full short trainings and raw collectives under seeded
// fault plans. Every scenario must end in bit-identical convergence (when
// the faults are maskable) or a typed failure — never a hang, never silent
// divergence. Receive deadlines plus the ctest TIMEOUT on this suite
// enforce the no-hang half mechanically.
#include <gtest/gtest.h>

#include <tuple>

#include "chaos_common.hpp"
#include "collectives/collectives.hpp"
#include "core/aggregators.hpp"
#include "obs/trace.hpp"
#include "sparse/topk_select.hpp"
#include "util/rng.hpp"

namespace {

using namespace gtopk;
using chaos::ChaosEventLog;
using chaos::Outcome;
using chaos::TinyTrainScenario;
using comm::CommError;
using comm::CommErrorKind;
using comm::Communicator;
using comm::FaultInjectingTransport;
using comm::FaultPlan;
using comm::FaultRule;
using comm::NetworkModel;
using train::Algorithm;

::testing::Environment* const kChaosLogEnv =
    ::testing::AddGlobalTestEnvironment(new chaos::ChaosLogEnvironment);

// ---------------------------------------------------------------------------
// Decorator transparency

TEST(ChaosTest, FaultFreePlanIsPurePassthrough) {
    TinyTrainScenario scenario(4);
    const auto clean = scenario.run_clean(Algorithm::GtopkSsgd);
    const auto chaos =
        scenario.run_chaos(Algorithm::GtopkSsgd, chaos::seeded_plan(chaos::base_seed()));
    ASSERT_EQ(chaos.outcome, Outcome::Completed) << chaos.error;
    EXPECT_EQ(chaos.result.final_params, clean.final_params);
    EXPECT_EQ(chaos.counts.injected(), 0u);
    EXPECT_GT(chaos.counts.delivered, 0u);
}

// ---------------------------------------------------------------------------
// (a) Maskable faults => bit-identical convergence

class MaskableSweep : public ::testing::TestWithParam<Algorithm> {};
INSTANTIATE_TEST_SUITE_P(Algorithms, MaskableSweep,
                         ::testing::Values(Algorithm::GtopkSsgd, Algorithm::TopkSsgd,
                                           Algorithm::DenseSsgd,
                                           Algorithm::NaiveGtopkSsgd));

TEST_P(MaskableSweep, TrainingIsBitIdenticalToCleanRun) {
    const Algorithm algo = GetParam();
    const std::uint64_t seed = chaos::base_seed();
    TinyTrainScenario scenario(4);
    const auto clean = scenario.run_clean(algo);
    const auto chaos = scenario.run_chaos(algo, chaos::maskable_plan(seed));
    ChaosEventLog::instance().record(
        std::string("maskable/") + train::algorithm_name(algo), seed, chaos.outcome,
        chaos.counts);
    ASSERT_EQ(chaos.outcome, Outcome::Completed) << chaos.error;
    // The plan must actually have fired...
    EXPECT_GT(chaos.counts.duplicated, 0u);
    EXPECT_GT(chaos.counts.reordered, 0u);
    EXPECT_GT(chaos.counts.delayed, 0u);
    EXPECT_EQ(chaos.counts.dropped, 0u);
    // ...and the training must not have noticed: identical parameters and
    // identical per-epoch losses, bit for bit.
    ASSERT_EQ(chaos.result.final_params, clean.final_params);
    ASSERT_EQ(chaos.result.epochs.size(), clean.epochs.size());
    for (std::size_t e = 0; e < clean.epochs.size(); ++e) {
        EXPECT_EQ(chaos.result.epochs[e].train_loss, clean.epochs[e].train_loss);
    }
}

// ---------------------------------------------------------------------------
// Determinism: same seed + same plan => bit-identical schedule and outcome

TEST(ChaosTest, SameSeedSamePlanIsBitReproducible) {
    const std::uint64_t seed = chaos::base_seed() + 7;
    TinyTrainScenario scenario(4);
    const auto a = scenario.run_chaos(Algorithm::GtopkSsgd, chaos::maskable_plan(seed));
    const auto b = scenario.run_chaos(Algorithm::GtopkSsgd, chaos::maskable_plan(seed));
    ASSERT_EQ(a.outcome, Outcome::Completed) << a.error;
    ASSERT_EQ(b.outcome, Outcome::Completed) << b.error;
    // Bit-identical fault schedule...
    EXPECT_EQ(a.counts.delivered, b.counts.delivered);
    EXPECT_EQ(a.counts.dropped, b.counts.dropped);
    EXPECT_EQ(a.counts.duplicated, b.counts.duplicated);
    EXPECT_EQ(a.counts.reordered, b.counts.reordered);
    EXPECT_EQ(a.counts.corrupted, b.counts.corrupted);
    EXPECT_EQ(a.counts.delayed, b.counts.delayed);
    // ...and bit-identical training outcome.
    EXPECT_EQ(a.result.final_params, b.result.final_params);
}

TEST(ChaosTest, DifferentSeedsProduceDifferentSchedules) {
    TinyTrainScenario scenario(4);
    const auto a = scenario.run_chaos(Algorithm::GtopkSsgd, chaos::maskable_plan(12345));
    const auto b = scenario.run_chaos(Algorithm::GtopkSsgd, chaos::maskable_plan(67890));
    ASSERT_EQ(a.outcome, Outcome::Completed) << a.error;
    ASSERT_EQ(b.outcome, Outcome::Completed) << b.error;
    EXPECT_TRUE(a.counts.duplicated != b.counts.duplicated ||
                a.counts.reordered != b.counts.reordered ||
                a.counts.delayed != b.counts.delayed);
}

// ---------------------------------------------------------------------------
// (b) Unmaskable faults => typed CommError, never a hang

TEST(ChaosTest, DroppedMessagesSurfaceTypedCommError) {
    const std::uint64_t seed = chaos::base_seed();
    TinyTrainScenario scenario(4);
    // Deterministic loss: every 5th message out of rank 1 vanishes; the
    // first loss happens within the first training iteration.
    const auto chaos = scenario.run_chaos(Algorithm::GtopkSsgd,
                                          chaos::drop_from(1, 5, seed),
                                          /*recv_timeout_s=*/0.25);
    ChaosEventLog::instance().record("drop_every_5_from_rank1", seed, chaos.outcome,
                                     chaos.counts);
    ASSERT_EQ(chaos.outcome, Outcome::CommFailure) << chaos.error;
    EXPECT_GT(chaos.counts.dropped, 0u);
    EXPECT_NE(chaos.error.find("recv timeout on rank"), std::string::npos)
        << chaos.error;
}

TEST(ChaosTest, RankKillMidTrainingSurfacesCommError) {
    const std::uint64_t seed = chaos::base_seed();
    TinyTrainScenario scenario(4);
    comm::FaultPlan plan = chaos::seeded_plan(seed);
    // Dies exactly at the step-5 iteration boundary (the step-scheduled
    // kill the recovery suite relies on to pin rollback points); without a
    // membership service the failure must stay fail-fast and typed.
    plan.kill_at_step(/*rank=*/1, /*step=*/5);
    const auto chaos = scenario.run_chaos(Algorithm::GtopkSsgd, plan,
                                          /*recv_timeout_s=*/0.25);
    ChaosEventLog::instance().record("kill_rank1_at_step5", seed, chaos.outcome,
                                     chaos.counts);
    ASSERT_EQ(chaos.outcome, Outcome::CommFailure) << chaos.error;
    EXPECT_GT(chaos.counts.killed_sends, 0u);
}

// ---------------------------------------------------------------------------
// Communicator timeout coverage on every collective (satellite): a rank
// whose traffic is blackholed must surface CommError naming rank, peer and
// tag on allreduce, allgather, broadcast and barrier alike.

using CollectiveCase = std::tuple<const char*, void (*)(Communicator&)>;

void run_allreduce(Communicator& comm) {
    std::vector<float> v(32, 1.0f);
    collectives::allreduce_sum_ring(comm, v);
}
void run_allgather(Communicator& comm) {
    std::vector<float> mine(4, static_cast<float>(comm.rank()));
    (void)collectives::allgather<float>(comm, mine);
}
void run_broadcast(Communicator& comm) {
    std::vector<float> v(16, 2.0f);
    collectives::broadcast(comm, v, /*root=*/0);
}
void run_barrier(Communicator& comm) { collectives::barrier(comm); }

class CollectiveTimeout : public ::testing::TestWithParam<CollectiveCase> {};
INSTANTIATE_TEST_SUITE_P(
    All, CollectiveTimeout,
    ::testing::Values(CollectiveCase{"allreduce", &run_allreduce},
                      CollectiveCase{"allgather", &run_allgather},
                      CollectiveCase{"broadcast", &run_broadcast},
                      CollectiveCase{"barrier", &run_barrier}),
    [](const auto& info) { return std::get<0>(info.param); });

TEST_P(CollectiveTimeout, DropSurfacesCommErrorNamingRankPeerTag) {
    const auto [name, fn] = GetParam();
    // Blackhole the ROOT's outbound traffic: rank 0 sends in every one of
    // these collectives (a non-root leaf might legitimately never be waited
    // on, e.g. in a broadcast tree), so some peer must always time out.
    FaultInjectingTransport transport(4, chaos::blackhole_from(0, chaos::base_seed()));
    try {
        comm::Cluster::run_on(transport, NetworkModel::free(),
                              [fn = fn](Communicator& comm) { fn(comm); },
                              /*tracer=*/nullptr, /*recv_timeout_s=*/0.2);
        FAIL() << name << ": expected CommError, collective completed";
    } catch (const CommError& e) {
        EXPECT_EQ(e.kind(), CommErrorKind::RecvTimeout);
        EXPECT_GE(e.rank(), 0);
        EXPECT_LT(e.rank(), 4);
        EXPECT_GE(e.peer(), 0);  // the awaited peer is named, not a wildcard
        EXPECT_GE(e.tag(), 1'000'000);  // collectives use fresh_tags
        EXPECT_DOUBLE_EQ(e.timeout_s(), 0.2);
        const std::string what = e.what();
        EXPECT_NE(what.find("recv timeout on rank"), std::string::npos) << what;
        EXPECT_NE(what.find("peer"), std::string::npos) << what;
        EXPECT_NE(what.find("tag"), std::string::npos) << what;
    }
}

// ---------------------------------------------------------------------------
// Corruption: the validated wire boundary turns payload damage into a
// rejection or a still-consistent aggregate — never UB, never divergence
// between ranks (the merged result reaches everyone via root's broadcast).

TEST(ChaosTest, GtopkUnderCorruptionNeverDivergesSilently) {
    const std::uint64_t seed = chaos::base_seed();
    const int world = 4;
    constexpr int kRounds = 5;
    FaultInjectingTransport transport(world,
                                      chaos::corrupt_into(0, /*prob=*/0.5, seed));
    std::vector<std::array<sparse::SparseGradient, kRounds>> results(
        static_cast<std::size_t>(world));
    std::string what;
    const Outcome outcome = chaos::classify(
        [&] {
            comm::Cluster::run_on(
                transport, NetworkModel::free(),
                [&](Communicator& comm) {
                    util::Xoshiro256 rng(static_cast<std::uint64_t>(comm.rank()) + 1);
                    std::vector<float> dense(256);
                    for (auto& v : dense) v = static_cast<float>(rng.next_gaussian());
                    const auto local = sparse::topk_select(dense, 12);
                    for (int round = 0; round < kRounds; ++round) {
                        results[static_cast<std::size_t>(comm.rank())]
                               [static_cast<std::size_t>(round)] =
                                   core::gtopk_allreduce(comm, local, 12).global;
                    }
                },
                /*tracer=*/nullptr, /*recv_timeout_s=*/2.0);
        },
        &what);
    ChaosEventLog::instance().record("corrupt_into_rank0", seed, outcome,
                                     transport.counts());
    EXPECT_GT(transport.counts().corrupted, 0u);
    if (outcome == Outcome::Completed) {
        // Corruption may have changed WHAT was aggregated (bit flips in
        // values that still validate) but never lets replicas disagree.
        for (int round = 0; round < kRounds; ++round) {
            for (int r = 1; r < world; ++r) {
                ASSERT_EQ(results[static_cast<std::size_t>(r)]
                                 [static_cast<std::size_t>(round)],
                          results[0][static_cast<std::size_t>(round)])
                    << "silent divergence at round " << round << " rank " << r;
            }
        }
    } else {
        // The only sanctioned failures are a wire rejection or a typed
        // comm error (e.g. a corrupt header tripping a size guard).
        EXPECT_TRUE(outcome == Outcome::WireRejected ||
                    outcome == Outcome::CommFailure ||
                    outcome == Outcome::OtherError)
            << what;
    }
}

// ---------------------------------------------------------------------------
// Fault events flow through the observability layer

TEST(ChaosTest, FaultEventsAreCountedInMetrics) {
    const std::uint64_t seed = chaos::base_seed();
    TinyTrainScenario scenario(4);
    obs::Tracer tracer(4);
    const auto chaos = scenario.run_chaos(Algorithm::GtopkSsgd,
                                          chaos::maskable_plan(seed),
                                          /*recv_timeout_s=*/5.0, &tracer);
    ASSERT_EQ(chaos.outcome, Outcome::Completed) << chaos.error;
    const obs::MetricsRegistry& m = tracer.metrics();
    const obs::Counter* dup = m.find_counter("fault.duplicated");
    const obs::Counter* reord = m.find_counter("fault.reordered");
    const obs::Counter* delay = m.find_counter("fault.delayed");
    ASSERT_NE(dup, nullptr);
    ASSERT_NE(reord, nullptr);
    ASSERT_NE(delay, nullptr);
    EXPECT_EQ(dup->value(), chaos.counts.duplicated);
    EXPECT_EQ(reord->value(), chaos.counts.reordered);
    EXPECT_EQ(delay->value(), chaos.counts.delayed);
}

// ---------------------------------------------------------------------------
// The sweep: plans x seeds; every cell completes bit-identically or fails
// with a typed error. This is the "as many scenarios as you can imagine"
// lattice — extend by adding plans.

TEST(ChaosTest, PlanSweepNeverHangsAndClassifiesCleanly) {
    TinyTrainScenario scenario(4);
    const auto clean = scenario.run_clean(Algorithm::GtopkSsgd);
    for (std::uint64_t s = 0; s < 3; ++s) {
        const std::uint64_t seed = chaos::base_seed() + s;
        struct NamedPlan {
            const char* name;
            comm::FaultPlan plan;
            bool maskable;
        };
        const NamedPlan plans[] = {
            {"maskable", chaos::maskable_plan(seed), true},
            {"drop", chaos::drop_from(static_cast<int>(seed % 4), 7, seed), false},
            {"kill", chaos::seeded_plan(seed).kill(static_cast<int>(seed % 3) + 1,
                                                   8 + 2 * (seed % 4)),
             false},
            {"corrupt", chaos::corrupt_into(static_cast<int>(seed % 4), 0.3, seed),
             false},
        };
        for (const NamedPlan& np : plans) {
            const auto chaos =
                scenario.run_chaos(Algorithm::GtopkSsgd, np.plan,
                                   /*recv_timeout_s=*/np.maskable ? 5.0 : 0.25);
            ChaosEventLog::instance().record(std::string("sweep/") + np.name, seed,
                                             chaos.outcome, chaos.counts);
            if (np.maskable) {
                ASSERT_EQ(chaos.outcome, Outcome::Completed)
                    << np.name << " seed " << seed << ": " << chaos.error;
                EXPECT_EQ(chaos.result.final_params, clean.final_params)
                    << np.name << " seed " << seed;
            } else if (chaos.outcome == Outcome::Completed) {
                // A corruption plan may luckily stay maskable (e.g. flips
                // confined to already-irrelevant bytes keep validating);
                // drops and kills never complete.
                EXPECT_STREQ(np.name, "corrupt") << "seed " << seed;
            } else {
                EXPECT_TRUE(chaos.outcome == Outcome::CommFailure ||
                            chaos.outcome == Outcome::WireRejected ||
                            chaos.outcome == Outcome::OtherError)
                    << np.name << " seed " << seed << ": " << chaos.error;
            }
        }
    }
}

}  // namespace
