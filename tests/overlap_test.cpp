// Overlapped training end-to-end: scheduling may change WHEN traffic moves,
// never WHAT the replicas compute. Overlap on must be bit-identical to
// overlap off, its message stream must diff clean against the static
// schedules (tag-stream conformance), and it must survive chaos and a
// mid-run rank kill with buckets in flight (DESIGN.md §14).
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/conformance.hpp"
#include "collectives/collectives.hpp"
#include "collectives/schedule.hpp"
#include "comm/cluster.hpp"
#include "comm/membership.hpp"
#include "comm/recording_transport.hpp"
#include "data/sampler.hpp"
#include "data/synthetic_images.hpp"
#include "nn/model_zoo.hpp"
#include "train/bucketer.hpp"
#include "train/trainer.hpp"
#include "chaos_common.hpp"

namespace {

using namespace gtopk;
using analysis::ConformanceMode;
using analysis::SchedulePredictor;
using comm::NetworkModel;
using train::Algorithm;
using train::TrainConfig;

struct Harness {
    data::SyntheticImageDataset dataset;
    data::ShardedSampler sampler;
    nn::MlpConfig mlp;
    int world;

    explicit Harness(int world_size)
        : dataset(
              []() {
                  data::SyntheticImageDataset::Config cfg;
                  cfg.image_size = 8;
                  cfg.noise_std = 0.6f;
                  return cfg;
              }(),
              321),
          sampler(4096, 512, world_size, 5),
          world(world_size) {
        mlp.input_dim = dataset.feature_dim();
        mlp.hidden_dims = {32, 16};
    }

    TrainConfig config() const {
        TrainConfig cfg;
        cfg.algorithm = Algorithm::LayerwiseGtopkSsgd;
        cfg.epochs = 2;
        cfg.iters_per_epoch = 6;
        cfg.lr = 0.05f;
        cfg.density = 0.02;
        return cfg;
    }

    train::TrainResult run(const TrainConfig& cfg) const {
        return train::train_distributed(
            world, NetworkModel::free(), cfg,
            [mc = mlp](std::uint64_t seed) { return nn::make_mlp(mc, seed); },
            [this](std::int64_t step, int rank) {
                return dataset.batch_flat(sampler.batch_indices(step, rank, 16));
            },
            train::EvalBatchProvider{});
    }
};

// ---------------------------------------------------------------------------
// Bit-identity: overlap is pure scheduling
// ---------------------------------------------------------------------------

class OverlapBitIdentity : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Worlds, OverlapBitIdentity, ::testing::Values(2, 3, 4));

TEST_P(OverlapBitIdentity, FinalParamsMatchOverlapOff) {
    Harness h(GetParam());
    TrainConfig off = h.config();
    for (const std::int64_t bucket_bytes : {std::int64_t{0}, std::int64_t{4096}}) {
        off.bucket_bytes = bucket_bytes;
        TrainConfig on = off;
        on.overlap = true;
        on.overlap_backward_s = 0.01;  // modeled compute must not leak into math
        const auto ro = h.run(off);
        const auto rn = h.run(on);
        ASSERT_EQ(ro.final_params, rn.final_params)
            << "bucket_bytes=" << bucket_bytes;
    }
}

TEST(OverlapConfig, OverlapRequiresLayerwiseAlgorithm) {
    Harness h(2);
    TrainConfig cfg = h.config();
    cfg.algorithm = Algorithm::GtopkSsgd;
    cfg.overlap = true;
    EXPECT_THROW(h.run(cfg), std::invalid_argument);
}

TEST(OverlapTiming, OverlapHidesModeledCommUnderBackward) {
    // On a real (non-free) network with injected backward time, overlap must
    // strictly reduce rank 0's virtual comm wait, without changing math.
    Harness h(4);
    TrainConfig off = h.config();
    off.bucket_bytes = 2048;
    off.overlap_backward_s = 0.05;
    TrainConfig on = off;
    on.overlap = true;

    auto run_on_net = [&](const TrainConfig& cfg) {
        return train::train_distributed(
            h.world, NetworkModel::one_gbps_ethernet(), cfg,
            [mc = h.mlp](std::uint64_t seed) { return nn::make_mlp(mc, seed); },
            [&h](std::int64_t step, int rank) {
                return h.dataset.batch_flat(h.sampler.batch_indices(step, rank, 16));
            },
            train::EvalBatchProvider{});
    };
    const auto ro = run_on_net(off);
    const auto rn = run_on_net(on);
    EXPECT_EQ(ro.final_params, rn.final_params);
    EXPECT_LT(rn.mean_comm_virtual_s, ro.mean_comm_virtual_s);
}

// ---------------------------------------------------------------------------
// Conformance: the overlapped message stream diffs to ZERO against the
// static schedules under tag-stream ordering
// ---------------------------------------------------------------------------

TEST(OverlapConformance, OverlappedRunDiffsCleanInTagStreamMode) {
    const int world = 4;
    Harness h(world);
    TrainConfig cfg = h.config();
    cfg.overlap = true;
    cfg.bucket_bytes = 2048;  // fuses this MLP into two in-flight buckets

    comm::RecordingTransport rec(world);
    cfg.transport = &rec;
    (void)h.run(cfg);

    // Reconstruct the plan: per iteration, one async gTop-k per bucket,
    // issued in backward bucket order (the trainer's handle START order);
    // per epoch, the loss allgather on the fresh band.
    const auto probe = nn::make_mlp(h.mlp, cfg.model_seed);
    std::vector<std::size_t> seg_offsets{0};
    for (const auto& p : probe->params()) {
        seg_offsets.push_back(seg_offsets.back() + p.value->size());
    }
    const auto buckets = train::fuse_buckets(seg_offsets, cfg.bucket_bytes);
    ASSERT_GE(buckets.size(), 2u) << "need >= 2 concurrent handles in flight";

    SchedulePredictor pred(world);
    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        for (int it = 0; it < cfg.iters_per_epoch; ++it) {
            for (std::size_t i = buckets.size(); i-- > 0;) {
                const std::array<collectives::Schedule, 2> parts = {
                    collectives::gtopk_merge_schedule(world,
                                                      collectives::kVariableBytes),
                    collectives::broadcast_schedule(world, 0,
                                                    collectives::kVariableBytes)};
                pred.add_async(
                    collectives::concat_schedules("gtopk.allreduce.async", parts));
            }
        }
        pred.add(collectives::allgather_schedule(world, 1, 8,
                                                 collectives::AllgatherAlgo::Ring));
    }

    // Edge-order would be flaky: handles interleave nondeterministically on
    // the host. Tag-stream ordering collapses the interleaving and still
    // proves the same multiset of messages with per-tag FIFO intact.
    const auto report =
        analysis::diff_conformance(pred, rec.log(), ConformanceMode::kTagStream);
    EXPECT_TRUE(report.ok) << report.divergence;
    EXPECT_EQ(report.matched_messages, report.expected_messages);
}

// ---------------------------------------------------------------------------
// Chaos: maskable adversity with overlap on stays bit-identical
// ---------------------------------------------------------------------------

TEST(OverlapChaos, MaskableFaultsAreBitIdenticalWithOverlapOn) {
    const std::uint64_t seed = chaos::base_seed();
    chaos::TinyTrainScenario scenario(4);
    auto overlap_patch = [](TrainConfig& cfg) {
        cfg.overlap = true;
        cfg.bucket_bytes = 2048;
        cfg.overlap_backward_s = 0.01;
    };
    TrainConfig clean_cfg = scenario.config(Algorithm::LayerwiseGtopkSsgd);
    overlap_patch(clean_cfg);
    const auto clean = scenario.run(clean_cfg);

    comm::FaultInjectingTransport transport(scenario.world,
                                            chaos::maskable_plan(seed));
    TrainConfig chaos_cfg = clean_cfg;
    chaos_cfg.transport = &transport;
    chaos_cfg.recv_timeout_s = 5.0;
    std::string err;
    const auto outcome =
        chaos::classify([&] {
            const auto chaotic = scenario.run(chaos_cfg);
            ASSERT_EQ(chaotic.final_params, clean.final_params);
        }, &err);
    EXPECT_EQ(outcome, chaos::Outcome::Completed) << err;
}

// ---------------------------------------------------------------------------
// Recovery: a rank killed with buckets in flight surfaces a typed
// CommError, regroups, and finishes on the survivors
// ---------------------------------------------------------------------------

TEST(OverlapRecovery, KillWithBucketsInFlightRegroupsAndFinishes) {
    const std::uint64_t seed = chaos::base_seed();
    chaos::TinyTrainScenario scenario(4);
    comm::FaultPlan plan = chaos::seeded_plan(seed);
    plan.kill_at_step(/*rank=*/3, /*step=*/6);

    comm::FaultInjectingTransport transport(scenario.world, plan);
    comm::MembershipConfig mcfg;
    mcfg.seed = seed;
    mcfg.heartbeat_interval_s = 0.002;
    mcfg.suspect_after_s = 0.050;
    comm::MembershipService membership(transport, mcfg);

    TrainConfig cfg = scenario.config(Algorithm::LayerwiseGtopkSsgd);
    cfg.overlap = true;
    cfg.bucket_bytes = 2048;         // multiple buckets -> >= 2 handles in flight
    cfg.overlap_backward_s = 0.01;
    cfg.transport = &transport;
    cfg.membership = &membership;
    cfg.recv_timeout_s = 0.25;       // async wait's stall detector
    cfg.checkpoint_every = 4;

    train::TrainResult result;
    std::string err;
    const auto outcome =
        chaos::classify([&] { result = scenario.run(cfg); }, &err);
    ASSERT_EQ(outcome, chaos::Outcome::Completed) << err;
    // The kill shrank the world and the survivors regrouped exactly once.
    EXPECT_EQ(result.final_members.size(), 3u);
    EXPECT_GE(result.final_membership_epoch, 1);
    ASSERT_FALSE(result.survivor_params.empty());
    for (const auto& params : result.survivor_params) {
        EXPECT_EQ(params, result.survivor_params.front());  // replica consistency
    }
}

}  // namespace
