// Pins the virtual-time simulator to the paper's analytical cost models:
// for power-of-two worlds the measured virtual time of each collective must
// equal the alpha-beta prediction (Table I / Eqs. 5-7) up to the repo's
// wire-format overhead, which is accounted exactly.
#include <gtest/gtest.h>

#include "collectives/collectives.hpp"
#include "collectives/cost_model.hpp"
#include "comm/cluster.hpp"
#include "comm/tags.hpp"
#include "core/aggregators.hpp"
#include "sparse/topk_select.hpp"
#include "sparse/wire.hpp"
#include "util/rng.hpp"

namespace {

using namespace gtopk;
using namespace gtopk::collectives;
using comm::Cluster;
using comm::Communicator;
using comm::NetworkModel;
using gtopk::comm::kTagTestData;

constexpr double kTol = 1e-9;

double max_time(const std::vector<double>& times) {
    double t = 0;
    for (double x : times) t = std::max(t, x);
    return t;
}

class TimingWorld : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Pow2, TimingWorld, ::testing::Values(2, 4, 8, 16, 32));

TEST_P(TimingWorld, PointToPointCostIsAlphaPlusNBeta) {
    const NetworkModel net = NetworkModel::one_gbps_ethernet();
    const std::size_t n = 5000;
    auto result = Cluster::run_timed(2, net, [&](Communicator& comm) {
        std::vector<float> v(n, 1.0f);
        if (comm.rank() == 0) {
            comm.send_vec<float>(1, kTagTestData, v);
        } else {
            (void)comm.recv(0, kTagTestData);
        }
    });
    EXPECT_NEAR(max_time(result.final_time_s), net.transfer_time_elems(n), kTol);
}

TEST_P(TimingWorld, RingAllreduceMatchesEq5) {
    const int world = GetParam();
    const NetworkModel net = NetworkModel::one_gbps_ethernet();
    // Choose m divisible by world so every ring block is exactly m/world.
    const std::size_t m = static_cast<std::size_t>(world) * 1024;
    auto result = Cluster::run_timed(world, net, [&](Communicator& comm) {
        std::vector<float> data(m, 1.0f);
        allreduce_sum_ring(comm, data);
    });
    const double expected = dense_allreduce_time_s(net, world, m);
    EXPECT_NEAR(max_time(result.final_time_s), expected, 1e-6);
}

TEST_P(TimingWorld, RabenseifnerMatchesItsModel) {
    const int world = GetParam();
    const NetworkModel net = NetworkModel::one_gbps_ethernet();
    const std::size_t m = static_cast<std::size_t>(world) * 2048;
    auto result = Cluster::run_timed(world, net, [&](Communicator& comm) {
        std::vector<float> data(m, 1.0f);
        allreduce_sum_rabenseifner(comm, data);
    });
    EXPECT_NEAR(max_time(result.final_time_s),
                rabenseifner_allreduce_time_s(net, world, m), 1e-6);
}

TEST_P(TimingWorld, RabenseifnerBeatsRingOnLatencyAtScale) {
    // Same bandwidth term; 2logP vs 2(P-1) latency terms. For a
    // small-message allreduce on 1GbE this dominates.
    const int world = GetParam();
    if (world < 8) return;
    const NetworkModel net = NetworkModel::one_gbps_ethernet();
    const std::size_t m = static_cast<std::size_t>(world) * 16;  // tiny payload
    auto ring = Cluster::run_timed(world, net, [&](Communicator& comm) {
        std::vector<float> data(m, 1.0f);
        allreduce_sum_ring(comm, data);
    });
    auto rab = Cluster::run_timed(world, net, [&](Communicator& comm) {
        std::vector<float> data(m, 1.0f);
        allreduce_sum_rabenseifner(comm, data);
    });
    EXPECT_LT(max_time(rab.final_time_s), max_time(ring.final_time_s));
}

TEST_P(TimingWorld, BinomialBroadcastMatchesLogPModel) {
    const int world = GetParam();
    const NetworkModel net = NetworkModel::one_gbps_ethernet();
    const std::size_t n = 2048;
    auto result = Cluster::run_timed(world, net, [&](Communicator& comm) {
        std::vector<float> data;
        if (comm.rank() == 0) data.assign(n, 1.0f);
        broadcast(comm, data, 0, BcastAlgo::BinomialTree);
    });
    EXPECT_NEAR(max_time(result.final_time_s), broadcast_time_s(net, world, n), kTol);
}

TEST_P(TimingWorld, FlatTreeBroadcastSerializesAtRoot) {
    const int world = GetParam();
    const NetworkModel net = NetworkModel::one_gbps_ethernet();
    const std::size_t n = 512;
    auto result = Cluster::run_timed(world, net, [&](Communicator& comm) {
        std::vector<float> data;
        if (comm.rank() == 0) data.assign(n, 1.0f);
        broadcast(comm, data, 0, BcastAlgo::FlatTree);
    });
    EXPECT_NEAR(max_time(result.final_time_s), flat_broadcast_time_s(net, world, n),
                kTol);
}

TEST_P(TimingWorld, BarrierCostsLogPAlpha) {
    const int world = GetParam();
    const NetworkModel net = NetworkModel::one_gbps_ethernet();
    auto result = Cluster::run_timed(world, net,
                                     [](Communicator& comm) { barrier(comm); });
    // Dissemination rounds carry 1-byte tokens: alpha + beta/4 each.
    const double per_round = net.alpha_s + net.beta_s / 4.0;
    const double expected = ilog2_ceil(world) * per_round;
    EXPECT_NEAR(max_time(result.final_time_s), expected, kTol);
}

TEST_P(TimingWorld, RecursiveDoublingAllgatherMatchesEq6Shape) {
    const int world = GetParam();
    const NetworkModel net = NetworkModel::one_gbps_ethernet();
    const std::size_t n = 1000;  // elements contributed per rank
    auto result = Cluster::run_timed(world, net, [&](Communicator& comm) {
        std::vector<float> mine(n, static_cast<float>(comm.rank()));
        (void)allgather<float>(comm, mine, AllgatherAlgo::RecursiveDoubling);
    });
    // log(P) alpha + (P-1) n beta — the model behind the paper's Eq. 6.
    EXPECT_NEAR(max_time(result.final_time_s), allgather_time_s(net, world, n), kTol);
}

// --- the paper's headline cost claims, measured end-to-end ---

sparse::SparseGradient random_sparse(std::int64_t m, std::size_t k, int rank) {
    util::Xoshiro256 rng(static_cast<std::uint64_t>(rank) + 99);
    std::vector<float> dense(static_cast<std::size_t>(m));
    for (auto& v : dense) v = static_cast<float>(rng.next_gaussian());
    return sparse::topk_select(dense, k);
}

TEST_P(TimingWorld, GtopkAllreduceMatchesEq7UpToWireOverhead) {
    const int world = GetParam();
    const NetworkModel net = NetworkModel::one_gbps_ethernet();
    const std::int64_t m = 100'000;
    const std::size_t k = 100;
    auto result = Cluster::run_timed(world, net, [&](Communicator& comm) {
        const auto local = random_sparse(m, k, comm.rank());
        (void)core::gtopk_allreduce(comm, local, k);
    });
    // Eq. 7 counts 2k elements per hop; our wire adds a fixed 16-byte
    // header (= 4 beta-elements) per message. 2 logP messages total on the
    // critical path.
    const double expected = gtopk_allreduce_time_s(net, world, k) +
                            2.0 * ilog2_ceil(world) * 4.0 * net.beta_s;
    EXPECT_NEAR(max_time(result.final_time_s), expected, 1e-7);
}

TEST_P(TimingWorld, TopkAllreduceMatchesEq6UpToWireOverhead) {
    const int world = GetParam();
    const NetworkModel net = NetworkModel::one_gbps_ethernet();
    const std::int64_t m = 100'000;
    const std::size_t k = 100;
    auto result = Cluster::run_timed(world, net, [&](Communicator& comm) {
        const auto local = random_sparse(m, k, comm.rank());
        (void)core::topk_allreduce(comm, local,
                                   AllgatherAlgo::RecursiveDoubling);
    });
    // Each contribution is 2k elements + 16-byte header (4 elements).
    const double per_rank_elems = 2.0 * static_cast<double>(k) + 4.0;
    const double expected =
        ilog2_ceil(world) * net.alpha_s +
        (world - 1) * per_rank_elems * net.beta_s;
    EXPECT_NEAR(max_time(result.final_time_s), expected, 1e-7);
}

TEST(TimingCrossover, GtopkBeatsTopkAtScale) {
    // The paper's core claim: O(k logP) < O(kP) once P is large. It holds
    // in the bandwidth-dominated regime — k must be large enough that
    // 2(P-1)k*beta outweighs the extra logP*alpha latency of the tree
    // (k = 25000 is the paper's Fig. 9 operating point).
    const NetworkModel net = NetworkModel::one_gbps_ethernet();
    const std::int64_t m = 1'000'000;
    const std::size_t k = 25'000;
    for (int world : {16, 32}) {
        auto gtopk_time = Cluster::run_timed(world, net, [&](Communicator& comm) {
            const auto local = random_sparse(m, k, comm.rank());
            (void)core::gtopk_allreduce(comm, local, k);
        });
        auto topk_time = Cluster::run_timed(world, net, [&](Communicator& comm) {
            const auto local = random_sparse(m, k, comm.rank());
            (void)core::topk_allreduce(comm, local);
        });
        EXPECT_LT(max_time(gtopk_time.final_time_s), max_time(topk_time.final_time_s))
            << "world=" << world;
    }
}

TEST(TimingCrossover, DenseIsSlowestForLargeModels) {
    const NetworkModel net = NetworkModel::one_gbps_ethernet();
    const std::size_t m = 1'000'000;
    const std::size_t k = 1000;
    const int world = 8;
    auto dense_time = Cluster::run_timed(world, net, [&](Communicator& comm) {
        std::vector<float> data(m, 1.0f);
        allreduce_sum_ring(comm, data);
    });
    auto gtopk_time = Cluster::run_timed(world, net, [&](Communicator& comm) {
        const auto local = random_sparse(static_cast<std::int64_t>(m), k, comm.rank());
        (void)core::gtopk_allreduce(comm, local, k);
    });
    EXPECT_GT(max_time(dense_time.final_time_s),
              10.0 * max_time(gtopk_time.final_time_s));
}

}  // namespace
