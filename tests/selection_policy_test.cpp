// Selection-policy tests: static and adaptive thresholds (related-work
// baselines), their trainer integration, and the DGC options (clipping,
// momentum correction).
#include <gtest/gtest.h>

#include <cmath>

#include "data/sampler.hpp"
#include "data/synthetic_images.hpp"
#include "nn/model_zoo.hpp"
#include "sparse/selection_policy.hpp"
#include "sparse/topk_select.hpp"
#include "train/trainer.hpp"
#include "util/rng.hpp"

namespace {

using namespace gtopk;
using comm::NetworkModel;
using sparse::AdaptiveThresholdSelector;
using sparse::SelectionPolicy;
using sparse::threshold_select;

TEST(ThresholdSelect, KeepsExactlyTheLargeEntries) {
    const std::vector<float> dense{0.5f, -2.0f, 0.1f, 3.0f, -0.7f};
    const auto g = threshold_select(dense, 0.7f);
    EXPECT_EQ(g.indices, (std::vector<std::int32_t>{1, 3, 4}));
    EXPECT_EQ(g.values, (std::vector<float>{-2.0f, 3.0f, -0.7f}));
    EXPECT_NO_THROW(g.validate());
}

TEST(ThresholdSelect, ZeroThresholdKeepsEverything) {
    const std::vector<float> dense{0.0f, 1.0f, -1.0f};
    EXPECT_EQ(threshold_select(dense, 0.0f).nnz(), 3u);
}

TEST(ThresholdSelect, HighThresholdKeepsNothing) {
    const std::vector<float> dense{0.5f, -0.5f};
    EXPECT_EQ(threshold_select(dense, 10.0f).nnz(), 0u);
    EXPECT_THROW(threshold_select(dense, -1.0f), std::invalid_argument);
}

TEST(AdaptiveThreshold, ConvergesToTargetDensity) {
    util::Xoshiro256 rng(7);
    AdaptiveThresholdSelector selector(0.01, /*initial_threshold=*/1.0f);
    std::size_t final_nnz = 0;
    for (int iter = 0; iter < 60; ++iter) {
        std::vector<float> dense(10'000);
        for (auto& v : dense) v = static_cast<float>(rng.next_gaussian());
        final_nnz = selector.select(dense).nnz();
    }
    // Target is 100 entries; the dead zone allows +-20% plus one
    // adjustment step of slack.
    EXPECT_GT(final_nnz, 50u);
    EXPECT_LT(final_nnz, 200u);
}

TEST(AdaptiveThreshold, TracksDistributionShift) {
    util::Xoshiro256 rng(9);
    AdaptiveThresholdSelector selector(0.01);
    auto run_rounds = [&](float scale, int rounds) {
        std::size_t nnz = 0;
        for (int i = 0; i < rounds; ++i) {
            std::vector<float> dense(10'000);
            for (auto& v : dense) {
                v = scale * static_cast<float>(rng.next_gaussian());
            }
            nnz = selector.select(dense).nnz();
        }
        return nnz;
    };
    const std::size_t small_scale = run_rounds(0.01f, 50);
    const std::size_t large_scale = run_rounds(100.0f, 50);
    EXPECT_GT(small_scale, 50u);
    EXPECT_LT(small_scale, 200u);
    EXPECT_GT(large_scale, 50u);
    EXPECT_LT(large_scale, 200u);
}

TEST(AdaptiveThreshold, RejectsBadConfig) {
    EXPECT_THROW(AdaptiveThresholdSelector(0.0), std::invalid_argument);
    EXPECT_THROW(AdaptiveThresholdSelector(1.5), std::invalid_argument);
    EXPECT_THROW(AdaptiveThresholdSelector(0.1, -1.0f), std::invalid_argument);
    EXPECT_THROW(AdaptiveThresholdSelector(0.1, 1.0f, 0.5f), std::invalid_argument);
}

TEST(SampledTopk, ApproximatesExactSelectionCount) {
    util::Xoshiro256 data_rng(15);
    std::vector<float> dense(100'000);
    for (auto& v : dense) v = static_cast<float>(data_rng.next_gaussian());
    util::Xoshiro256 sel_rng(16);
    const std::size_t k = 1000;
    const auto sel = gtopk::sparse::sampled_topk_select(dense, k, sel_rng);
    // Sampling noise: accept within 2.5x either way of the target.
    EXPECT_GT(sel.nnz(), k / 3);
    EXPECT_LT(sel.nnz(), k * 3);
    EXPECT_NO_THROW(sel.validate());
}

TEST(SampledTopk, SelectedEntriesDominateTypicalUnselected) {
    // Everything the sampled selection keeps must be above its estimated
    // threshold, i.e. at least as large as the smallest kept magnitude.
    util::Xoshiro256 data_rng(17);
    std::vector<float> dense(20'000);
    for (auto& v : dense) v = static_cast<float>(data_rng.next_gaussian());
    util::Xoshiro256 sel_rng(18);
    const auto sel = gtopk::sparse::sampled_topk_select(dense, 200, sel_rng);
    ASSERT_GT(sel.nnz(), 0u);
    float min_kept = std::abs(sel.values[0]);
    for (float v : sel.values) min_kept = std::min(min_kept, std::abs(v));
    // The exact 200th largest magnitude should be close to min_kept.
    const float exact_thr = gtopk::sparse::kth_largest_magnitude(dense, 200);
    EXPECT_NEAR(min_kept, exact_thr, exact_thr * 0.4f);
}

TEST(SampledTopk, DegenerateInputs) {
    util::Xoshiro256 rng(1);
    EXPECT_EQ(gtopk::sparse::sampled_topk_select({}, 5, rng).nnz(), 0u);
    std::vector<float> dense{1.0f, -2.0f};
    EXPECT_EQ(gtopk::sparse::sampled_topk_select(dense, 0, rng).nnz(), 0u);
    EXPECT_EQ(gtopk::sparse::sampled_topk_select(dense, 10, rng).nnz(), 2u);
}

TEST(SampledTopk, DeterministicGivenRngState) {
    util::Xoshiro256 data_rng(19);
    std::vector<float> dense(5'000);
    for (auto& v : dense) v = static_cast<float>(data_rng.next_gaussian());
    util::Xoshiro256 a(7), b(7);
    EXPECT_EQ(gtopk::sparse::sampled_topk_select(dense, 50, a),
              gtopk::sparse::sampled_topk_select(dense, 50, b));
}

TEST(SelectionPolicyNames, AreStable) {
    EXPECT_STREQ(sparse::selection_policy_name(SelectionPolicy::ExactTopk),
                 "exact top-k");
    EXPECT_STREQ(sparse::selection_policy_name(SelectionPolicy::StaticThreshold),
                 "static threshold");
}

// ---- trainer integration ----

struct Harness {
    data::SyntheticImageDataset dataset;
    data::ShardedSampler sampler;
    nn::MlpConfig mlp;

    explicit Harness(int world)
        : dataset(
              []() {
                  data::SyntheticImageDataset::Config cfg;
                  cfg.image_size = 8;
                  cfg.noise_std = 0.6f;
                  return cfg;
              }(),
              77),
          sampler(8192, 1024, world, 8) {
        mlp.input_dim = dataset.feature_dim();
        mlp.hidden_dims = {32, 16};
    }
};

train::TrainResult run(int world, const train::TrainConfig& config, const Harness& h) {
    return train::train_distributed(
        world, NetworkModel::free(), config,
        [cfg = h.mlp](std::uint64_t seed) { return nn::make_mlp(cfg, seed); },
        [&](std::int64_t step, int rank) {
            return h.dataset.batch_flat(h.sampler.batch_indices(step, rank, 16));
        },
        [&] { return h.dataset.batch_flat(h.sampler.test_indices(256)); });
}

class PolicySweep : public ::testing::TestWithParam<SelectionPolicy> {};
INSTANTIATE_TEST_SUITE_P(All, PolicySweep,
                         ::testing::Values(SelectionPolicy::ExactTopk,
                                           SelectionPolicy::StaticThreshold,
                                           SelectionPolicy::AdaptiveThreshold,
                                           SelectionPolicy::SampledTopk));

TEST_P(PolicySweep, GtopkTrainingConvergesUnderEveryPolicy) {
    Harness h(4);
    train::TrainConfig config;
    config.algorithm = train::Algorithm::GtopkSsgd;
    config.epochs = 5;
    config.iters_per_epoch = 30;
    config.lr = 0.05f;
    config.density = 0.02;
    config.selection = GetParam();
    config.static_threshold = 0.01f;
    config.check_invariants = true;  // error feedback must hold regardless
    const auto r = run(4, config, h);
    EXPECT_LT(r.epochs.back().train_loss, r.epochs.front().train_loss);
    EXPECT_GT(r.epochs.back().val_accuracy, 0.3);
}

TEST(SelectionPolicyTrainer, ThresholdPolicyRejectedForTopkAllreduce) {
    Harness h(2);
    train::TrainConfig config;
    config.algorithm = train::Algorithm::TopkSsgd;
    config.selection = SelectionPolicy::StaticThreshold;
    EXPECT_THROW(run(2, config, h), std::invalid_argument);
}

TEST(DgcOptions, GradientClippingBoundsTheUpdate) {
    Harness h(2);
    train::TrainConfig config;
    config.algorithm = train::Algorithm::GtopkSsgd;
    config.epochs = 3;
    config.iters_per_epoch = 20;
    config.lr = 0.05f;
    config.density = 0.02;
    config.gradient_clip_norm = 0.5f;
    const auto r = run(2, config, h);
    EXPECT_LT(r.epochs.back().train_loss, r.epochs.front().train_loss);
}

TEST(DgcOptions, MomentumCorrectionConvergesAndStaysConsistent) {
    Harness h(4);
    train::TrainConfig config;
    config.algorithm = train::Algorithm::GtopkSsgd;
    config.epochs = 5;
    config.iters_per_epoch = 30;
    config.lr = 0.05f;
    config.momentum = 0.9f;
    config.momentum_mode = train::TrainConfig::MomentumMode::LocalCorrection;
    config.density = 0.02;
    config.check_invariants = true;  // replicas must not diverge
    const auto r = run(4, config, h);
    EXPECT_LT(r.epochs.back().train_loss, r.epochs.front().train_loss);
    EXPECT_GT(r.epochs.back().val_accuracy, 0.3);
}

TEST(DgcOptions, MomentumCorrectionDiffersFromPostAggregation) {
    Harness h(2);
    train::TrainConfig a;
    a.algorithm = train::Algorithm::GtopkSsgd;
    a.epochs = 2;
    a.iters_per_epoch = 10;
    a.density = 0.02;
    train::TrainConfig b = a;
    b.momentum_mode = train::TrainConfig::MomentumMode::LocalCorrection;
    EXPECT_NE(run(2, a, h).final_params, run(2, b, h).final_params);
}

}  // namespace
