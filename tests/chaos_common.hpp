// Shared chaos-harness plumbing: canonical fault plans, a tiny training
// scenario, outcome classification, and the fault-event JSON log.
//
// The harness contract (see DESIGN.md §10): every chaos scenario must end
// in one of two ways — (a) bit-identical convergence to the fault-free run
// when the plan is maskable (duplicates, cross-stream reorder, extra
// delay), or (b) a clean typed failure (comm::CommError, or a wire
// rejection from the validated decoder). Never a hang (receive deadlines +
// ctest timeouts enforce this), never silent divergence.
//
// Seeds: GTOPK_CHAOS_SEED selects the sweep's base seed so CI can run the
// same suite under several fixed seeds. GTOPK_CHAOS_TRACE_OUT, when set,
// receives a JSON array of per-scenario fault-event records.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "comm/cluster.hpp"
#include "comm/comm_error.hpp"
#include "comm/fault_transport.hpp"
#include "data/sampler.hpp"
#include "data/synthetic_images.hpp"
#include "nn/model_zoo.hpp"
#include "train/trainer.hpp"

namespace gtopk::chaos {

inline std::uint64_t base_seed() {
    if (const char* env = std::getenv("GTOPK_CHAOS_SEED")) {
        const unsigned long long v = std::strtoull(env, nullptr, 10);
        if (v > 0) return static_cast<std::uint64_t>(v);
    }
    return 1;
}

// ---------------------------------------------------------------------------
// Canonical plans

/// Empty plan carrying just a seed (avoids partial designated-init warnings).
inline comm::FaultPlan seeded_plan(std::uint64_t seed) {
    comm::FaultPlan plan;
    plan.seed = seed;
    return plan;
}

/// Maskable adversity: duplicates, cross-stream reorder and extra latency
/// on every edge. Training outcome must be bit-identical to fault-free.
inline comm::FaultPlan maskable_plan(std::uint64_t seed) {
    comm::FaultRule rule;
    rule.dup_prob = 0.15;
    rule.reorder_prob = 0.20;
    rule.delay_prob = 0.20;
    rule.extra_delay_s = 1e-3;
    return seeded_plan(seed).add(rule);
}

/// Deterministic message loss: every n-th message out of `src` vanishes.
inline comm::FaultPlan drop_from(int src, std::uint64_t every_n, std::uint64_t seed) {
    comm::FaultRule rule;
    rule.src = src;
    rule.drop_every_n = every_n;
    return seeded_plan(seed).add(rule);
}

/// Total blackout of one rank's outbound traffic.
inline comm::FaultPlan blackhole_from(int src, std::uint64_t seed) {
    comm::FaultRule rule;
    rule.src = src;
    rule.drop_prob = 1.0;
    return seeded_plan(seed).add(rule);
}

/// Payload bit-corruption on every edge INTO `dst`.
inline comm::FaultPlan corrupt_into(int dst, double prob, std::uint64_t seed) {
    comm::FaultRule rule;
    rule.dst = dst;
    rule.corrupt_prob = prob;
    return seeded_plan(seed).add(rule);
}

// ---------------------------------------------------------------------------
// Outcome classification

enum class Outcome {
    Completed,    // ran to the end; caller checks convergence/consistency
    CommFailure,  // typed comm::CommError (timeout or killed rank)
    WireRejected, // validated decoder refused a corrupt payload
    OtherError,   // structured failure from a non-wire invariant check
};

inline const char* outcome_name(Outcome o) {
    switch (o) {
        case Outcome::Completed: return "completed";
        case Outcome::CommFailure: return "comm_error";
        case Outcome::WireRejected: return "wire_rejected";
        case Outcome::OtherError: return "other_error";
    }
    return "?";
}

/// Run `fn`, classifying the three sanctioned failure shapes. Anything else
/// (including a hang, which the ctest timeout converts into a test failure)
/// propagates and fails the test.
template <typename Fn>
Outcome classify(Fn&& fn, std::string* what = nullptr) {
    try {
        fn();
        return Outcome::Completed;
    } catch (const comm::CommError& e) {
        if (what) *what = e.what();
        return Outcome::CommFailure;
    } catch (const std::invalid_argument& e) {
        if (what) *what = e.what();
        return Outcome::WireRejected;
    } catch (const std::runtime_error& e) {
        // e.g. a collective's size-mismatch guard tripped by a corrupt
        // header that passed wire validation; structured, not silent.
        if (what) *what = e.what();
        return Outcome::OtherError;
    }
}

// ---------------------------------------------------------------------------
// Tiny training scenario (seconds-scale, deterministic)

struct TinyTrainScenario {
    data::SyntheticImageDataset dataset;
    data::ShardedSampler sampler;
    nn::MlpConfig mlp;
    int world;

    explicit TinyTrainScenario(int world_size)
        : dataset(
              [] {
                  data::SyntheticImageDataset::Config cfg;
                  cfg.image_size = 8;
                  cfg.noise_std = 0.6f;
                  return cfg;
              }(),
              1234),
          sampler(2048, 512, world_size, 99),
          world(world_size) {
        mlp.input_dim = dataset.feature_dim();
        mlp.hidden_dims = {16};
        mlp.classes = 10;
    }

    train::TrainConfig config(train::Algorithm algo) const {
        train::TrainConfig cfg;
        cfg.algorithm = algo;
        cfg.epochs = 2;
        cfg.iters_per_epoch = 8;
        cfg.lr = 0.05f;
        cfg.density = 0.05;
        return cfg;
    }

    train::TrainResult run(train::TrainConfig cfg) const {
        return train::train_distributed(
            world, comm::NetworkModel::free(), cfg,
            [mc = mlp](std::uint64_t seed) { return nn::make_mlp(mc, seed); },
            [this](std::int64_t step, int rank) {
                return dataset.batch_flat(sampler.batch_indices(step, rank, 8));
            },
            train::EvalBatchProvider{});
    }

    /// Fault-free baseline over a plain InProcTransport.
    train::TrainResult run_clean(train::Algorithm algo) const {
        return run(config(algo));
    }

    /// Chaos run over a FaultInjectingTransport with a receive deadline.
    struct ChaosRun {
        Outcome outcome = Outcome::Completed;
        std::string error;
        comm::FaultCounts counts;
        train::TrainResult result;  // meaningful when outcome == Completed
    };
    ChaosRun run_chaos(train::Algorithm algo, const comm::FaultPlan& plan,
                       double recv_timeout_s = 5.0,
                       obs::Tracer* tracer = nullptr) const {
        comm::FaultInjectingTransport transport(world, plan);
        train::TrainConfig cfg = config(algo);
        cfg.transport = &transport;
        cfg.recv_timeout_s = recv_timeout_s;
        cfg.tracer = tracer;
        ChaosRun out;
        out.outcome = classify([&] { out.result = run(cfg); }, &out.error);
        out.counts = transport.counts();
        return out;
    }
};

// ---------------------------------------------------------------------------
// Fault-event log (CI artifact)

struct ChaosEvent {
    std::string scenario;
    std::uint64_t seed = 0;
    std::string outcome;
    comm::FaultCounts counts;
};

class ChaosEventLog {
public:
    static ChaosEventLog& instance() {
        static ChaosEventLog log;
        return log;
    }

    void record(const std::string& scenario, std::uint64_t seed, Outcome outcome,
                const comm::FaultCounts& counts) {
        std::lock_guard<std::mutex> lock(mutex_);
        events_.push_back({scenario, seed, outcome_name(outcome), counts});
    }

    /// Write the JSON artifact when GTOPK_CHAOS_TRACE_OUT names a path.
    void flush() {
        const char* path = std::getenv("GTOPK_CHAOS_TRACE_OUT");
        if (!path || !*path) return;
        std::lock_guard<std::mutex> lock(mutex_);
        std::ofstream os(path);
        os << "[\n";
        for (std::size_t i = 0; i < events_.size(); ++i) {
            const ChaosEvent& e = events_[i];
            os << "  {\"scenario\": \"" << e.scenario << "\", \"seed\": " << e.seed
               << ", \"outcome\": \"" << e.outcome << "\""
               << ", \"delivered\": " << e.counts.delivered
               << ", \"dropped\": " << e.counts.dropped
               << ", \"duplicated\": " << e.counts.duplicated
               << ", \"reordered\": " << e.counts.reordered
               << ", \"corrupted\": " << e.counts.corrupted
               << ", \"delayed\": " << e.counts.delayed
               << ", \"killed_sends\": " << e.counts.killed_sends << "}"
               << (i + 1 < events_.size() ? ",\n" : "\n");
        }
        os << "]\n";
    }

private:
    std::mutex mutex_;
    std::vector<ChaosEvent> events_;
};

/// gtest environment flushing the event log after the suite.
class ChaosLogEnvironment : public ::testing::Environment {
public:
    void TearDown() override { ChaosEventLog::instance().flush(); }
};

}  // namespace gtopk::chaos
