#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/sampler.hpp"
#include "data/sequence_data.hpp"
#include "data/synthetic_images.hpp"

namespace {

using namespace gtopk::data;

TEST(SyntheticImages, DeterministicSamples) {
    SyntheticImageDataset ds({}, 42);
    const std::vector<std::int64_t> idx{0, 5, 9};
    const auto a = ds.batch_images(idx);
    const auto b = ds.batch_images(idx);
    EXPECT_EQ(a.x.data().size(), b.x.data().size());
    for (std::size_t i = 0; i < a.x.data().size(); ++i) {
        ASSERT_EQ(a.x.data()[i], b.x.data()[i]);
    }
    EXPECT_EQ(a.targets, b.targets);
}

TEST(SyntheticImages, DifferentSeedsProduceDifferentData) {
    SyntheticImageDataset a({}, 1), b({}, 2);
    const std::vector<std::int64_t> idx{0};
    EXPECT_NE(a.batch_images(idx).x.data()[0], b.batch_images(idx).x.data()[0]);
}

TEST(SyntheticImages, ShapesMatchConfig) {
    SyntheticImageDataset::Config cfg;
    cfg.channels = 3;
    cfg.image_size = 8;
    SyntheticImageDataset ds(cfg, 7);
    const std::vector<std::int64_t> idx{0, 1};
    const auto img = ds.batch_images(idx);
    EXPECT_EQ(img.x.shape(), (std::vector<std::int64_t>{2, 3, 8, 8}));
    const auto flat = ds.batch_flat(idx);
    EXPECT_EQ(flat.x.shape(), (std::vector<std::int64_t>{2, 192}));
    EXPECT_EQ(img.targets, flat.targets);
}

TEST(SyntheticImages, LabelsInRangeAndBalancedEnough) {
    SyntheticImageDataset ds({}, 3);
    std::vector<int> counts(10, 0);
    for (std::int64_t i = 0; i < 2000; ++i) {
        const auto label = ds.label_of(i);
        ASSERT_GE(label, 0);
        ASSERT_LT(label, 10);
        ++counts[static_cast<std::size_t>(label)];
    }
    for (int c : counts) EXPECT_GT(c, 100);  // expected 200 each
}

TEST(SyntheticImages, SamplesClusterAroundPrototypes) {
    // Two samples of the same class must be closer (on average) than two
    // samples of different classes — the dataset is actually learnable.
    SyntheticImageDataset::Config cfg;
    cfg.noise_std = 0.5f;
    SyntheticImageDataset ds(cfg, 11);
    std::vector<std::int64_t> same, diff;
    const auto label0 = ds.label_of(0);
    for (std::int64_t i = 1; i < 400 && (same.size() < 5 || diff.size() < 5); ++i) {
        if (ds.label_of(i) == label0 && same.size() < 5) same.push_back(i);
        if (ds.label_of(i) != label0 && diff.size() < 5) diff.push_back(i);
    }
    const auto ref = ds.batch_flat(std::vector<std::int64_t>{0});
    auto dist = [&](std::int64_t j) {
        const auto b = ds.batch_flat(std::vector<std::int64_t>{j});
        double d = 0;
        for (std::size_t i = 0; i < b.x.data().size(); ++i) {
            const double diff_i = b.x.data()[i] - ref.x.data()[i];
            d += diff_i * diff_i;
        }
        return d;
    };
    double same_d = 0, diff_d = 0;
    for (auto j : same) same_d += dist(j);
    for (auto j : diff) diff_d += dist(j);
    EXPECT_LT(same_d / same.size(), diff_d / diff.size());
}

TEST(SequenceData, TokensInVocabAndTargetsAligned) {
    SequenceDataset ds({.vocab = 8, .seq_len = 5}, 9);
    const std::vector<std::int64_t> idx{0, 1, 2};
    const auto batch = ds.batch(idx);
    EXPECT_EQ(batch.x.shape(), (std::vector<std::int64_t>{3, 5}));
    EXPECT_EQ(batch.targets.size(), 15u);
    for (auto v : batch.x.data()) {
        ASSERT_GE(v, 0.0f);
        ASSERT_LT(v, 8.0f);
        ASSERT_EQ(v, std::floor(v));
    }
    for (auto t : batch.targets) {
        ASSERT_GE(t, 0);
        ASSERT_LT(t, 8);
    }
    // x[i][t+1] must equal targets[i*T + t] (next-token prediction).
    for (std::int64_t i = 0; i < 3; ++i) {
        for (std::int64_t t = 0; t + 1 < 5; ++t) {
            EXPECT_EQ(static_cast<std::int32_t>(batch.x.at2(i, t + 1)),
                      batch.targets[static_cast<std::size_t>(i * 5 + t)]);
        }
    }
}

TEST(SequenceData, DeterministicAndSeedSensitive) {
    SequenceDataset a({.vocab = 8, .seq_len = 6}, 1);
    SequenceDataset b({.vocab = 8, .seq_len = 6}, 1);
    SequenceDataset c({.vocab = 8, .seq_len = 6}, 2);
    const std::vector<std::int64_t> idx{3, 4};
    EXPECT_EQ(a.batch(idx).targets, b.batch(idx).targets);
    EXPECT_NE(a.batch(idx).targets, c.batch(idx).targets);
}

TEST(SequenceData, PeakedChainHasLowEntropy) {
    SequenceDataset peaked({.vocab = 16, .peakedness = 12.0}, 5);
    SequenceDataset flat({.vocab = 16, .peakedness = 0.01}, 5);
    EXPECT_LT(peaked.transition_entropy(), flat.transition_entropy());
    EXPECT_NEAR(flat.transition_entropy(), std::log(16.0), 0.05);
}

TEST(Sampler, ShardsPartitionTrainSpace) {
    ShardedSampler s(1000, 100, 4, 1);
    EXPECT_EQ(s.shard_begin(0), 0);
    EXPECT_EQ(s.shard_end(3), 1000);
    for (int r = 0; r + 1 < 4; ++r) {
        EXPECT_EQ(s.shard_end(r), s.shard_begin(r + 1));
    }
}

TEST(Sampler, BatchesStayInOwnShard) {
    ShardedSampler s(1000, 100, 4, 2);
    for (int rank = 0; rank < 4; ++rank) {
        for (std::int64_t step = 0; step < 20; ++step) {
            for (auto idx : s.batch_indices(step, rank, 16)) {
                EXPECT_GE(idx, s.shard_begin(rank));
                EXPECT_LT(idx, s.shard_end(rank));
            }
        }
    }
}

TEST(Sampler, DeterministicPerStepAndRank) {
    ShardedSampler s(1000, 100, 2, 3);
    EXPECT_EQ(s.batch_indices(5, 1, 8), s.batch_indices(5, 1, 8));
    EXPECT_NE(s.batch_indices(5, 1, 8), s.batch_indices(6, 1, 8));
    EXPECT_NE(s.batch_indices(5, 0, 8), s.batch_indices(5, 1, 8));
}

TEST(Sampler, TestIndicesLiveAfterTrainSpace) {
    ShardedSampler s(1000, 50, 2, 4);
    const auto idx = s.test_indices(64);
    EXPECT_EQ(idx.size(), 50u);  // clamped to test_size
    for (auto i : idx) {
        EXPECT_GE(i, 1000);
        EXPECT_LT(i, 1050);
    }
}

TEST(Sampler, RejectsDegenerateConfigs) {
    EXPECT_THROW(ShardedSampler(10, 5, 0, 1), std::invalid_argument);
    EXPECT_THROW(ShardedSampler(2, 5, 4, 1), std::invalid_argument);
}

}  // namespace
