#include <gtest/gtest.h>

#include <sstream>

#include "train/metrics_io.hpp"

namespace {

using gtopk::train::EpochMetrics;
using gtopk::train::read_metrics_csv;
using gtopk::train::write_metrics_csv;

std::vector<EpochMetrics> sample_metrics() {
    std::vector<EpochMetrics> epochs;
    for (int e = 0; e < 3; ++e) {
        EpochMetrics m;
        m.epoch = e;
        m.density = e == 0 ? 0.25 : 0.001;
        m.train_loss = 2.0 / (e + 1);
        m.val_loss = 2.1 / (e + 1);
        m.val_accuracy = 0.3 * (e + 1);
        epochs.push_back(m);
    }
    return epochs;
}

TEST(MetricsIo, RoundTripsExactly) {
    const auto original = sample_metrics();
    std::stringstream buffer;
    write_metrics_csv(buffer, original);
    const auto parsed = read_metrics_csv(buffer);
    ASSERT_EQ(parsed.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(parsed[i].epoch, original[i].epoch);
        EXPECT_DOUBLE_EQ(parsed[i].density, original[i].density);
        EXPECT_DOUBLE_EQ(parsed[i].train_loss, original[i].train_loss);
        EXPECT_DOUBLE_EQ(parsed[i].val_loss, original[i].val_loss);
        EXPECT_DOUBLE_EQ(parsed[i].val_accuracy, original[i].val_accuracy);
    }
}

TEST(MetricsIo, EmptyRunRoundTrips) {
    std::stringstream buffer;
    write_metrics_csv(buffer, {});
    EXPECT_TRUE(read_metrics_csv(buffer).empty());
}

TEST(MetricsIo, RejectsMissingHeader) {
    std::stringstream buffer("1,0.5,1.0,1.0,0.5\n");
    EXPECT_THROW(read_metrics_csv(buffer), std::invalid_argument);
}

TEST(MetricsIo, RejectsMalformedRow) {
    std::stringstream buffer(
        "epoch,density,train_loss,val_loss,val_accuracy\nnot,a,valid,row,at-all\n");
    EXPECT_THROW(read_metrics_csv(buffer), std::invalid_argument);
}

TEST(MetricsIo, FileWriteFailsOnBadPath) {
    EXPECT_THROW(
        gtopk::train::write_metrics_csv_file("/nonexistent/dir/file.csv", {}),
        std::runtime_error);
}

}  // namespace
