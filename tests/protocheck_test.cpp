// protocheck test suite: the extracted ARQ/membership FSMs, the explorer's
// violation machinery, the exhaustive clean sweeps that gate the control
// plane, the seeded-break counterexample drills WITH real-stack replay, and
// the passthrough refusal of ReliableTransport on non-shared-memory fabrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/protocheck/arq_model.hpp"
#include "analysis/protocheck/explorer.hpp"
#include "analysis/protocheck/membership_model.hpp"
#include "analysis/protocheck/replay.hpp"
#include "comm/membership_fsm.hpp"
#include "comm/reliable_fsm.hpp"
#include "comm/reliable_transport.hpp"
#include "comm/transport.hpp"

namespace {

namespace pc = gtopk::analysis::protocheck;
namespace fsm = gtopk::comm::fsm;
using gtopk::comm::ReliableConfig;
using gtopk::comm::ReliableTransport;
using gtopk::comm::UnreliableFabricError;

/// Clears any seeded FSM break on scope exit so a failing test cannot
/// poison the rest of the binary (the hooks are process-global).
struct BreakGuard {
    ~BreakGuard() {
        fsm::set_arq_break(fsm::ArqBreak::kNone);
        fsm::set_membership_break(fsm::MembershipBreak::kNone);
    }
};

// ---------------------------------------------------------------------------
// FSM unit tests: the extracted transition functions in isolation.

TEST(ReliableFsmTest, TxAssignsSequentialSeqsAndGcsAckedPrefix) {
    fsm::ArqTxState tx;
    const auto d1 = fsm::arq_tx_send(tx, /*cum_ack=*/0, /*dst_alive=*/true);
    const auto d2 = fsm::arq_tx_send(tx, 0, true);
    EXPECT_EQ(d1.seq, 1u);
    EXPECT_EQ(d2.seq, 2u);
    EXPECT_TRUE(d1.buffer);
    EXPECT_EQ(tx.buffered, 2u);
    // Receiver acked seq 2: the next send GCs both buffered payloads.
    const auto d3 = fsm::arq_tx_send(tx, /*cum_ack=*/2, true);
    EXPECT_EQ(d3.seq, 3u);
    EXPECT_EQ(d3.gc, 2u);
    EXPECT_EQ(tx.base_seq, 3u);
    EXPECT_EQ(tx.buffered, 1u);
    EXPECT_EQ(fsm::arq_tx_buffer_index(tx, 3), std::optional<std::uint64_t>(0));
    EXPECT_FALSE(fsm::arq_tx_buffer_index(tx, 2).has_value());  // GCed
}

TEST(ReliableFsmTest, TxDoesNotBufferForDeadReceiver) {
    fsm::ArqTxState tx;
    (void)fsm::arq_tx_send(tx, 0, true);
    const auto d = fsm::arq_tx_send(tx, 0, /*dst_alive=*/false);
    EXPECT_FALSE(d.buffer);
    EXPECT_GT(d.clear, 0u);  // pending copies dropped too
    EXPECT_EQ(tx.buffered, 0u);
}

TEST(ReliableFsmTest, RxParksOutOfOrderAndReleasesContiguousRun) {
    fsm::ArqRxState rx;
    const auto p3 = fsm::arq_rx_envelope(rx, 3, true);
    const auto p2 = fsm::arq_rx_envelope(rx, 2, true);
    EXPECT_EQ(p3.action, fsm::RxAction::kPark);
    EXPECT_EQ(p2.action, fsm::RxAction::kPark);
    EXPECT_EQ(rx.parked.size(), 2u);
    // Seq 1 arrives: delivered, and the parked {2,3} run releases with it.
    const auto p1 = fsm::arq_rx_envelope(rx, 1, true);
    EXPECT_EQ(p1.action, fsm::RxAction::kDeliver);
    EXPECT_EQ(p1.release, 2u);
    EXPECT_EQ(p1.cum_ack, 3u);
    EXPECT_TRUE(rx.parked.empty());
    EXPECT_EQ(rx.expected, 4u);
}

TEST(ReliableFsmTest, RxDropsDuplicatesAndCorruption) {
    fsm::ArqRxState rx;
    (void)fsm::arq_rx_envelope(rx, 1, true);
    EXPECT_EQ(fsm::arq_rx_envelope(rx, 1, true).action,
              fsm::RxAction::kDropDuplicate);
    EXPECT_EQ(fsm::arq_rx_envelope(rx, 3, true).action, fsm::RxAction::kPark);
    EXPECT_EQ(fsm::arq_rx_envelope(rx, 3, true).action,
              fsm::RxAction::kDropDuplicate);  // already parked
    EXPECT_EQ(fsm::arq_rx_envelope(rx, 2, false).action,
              fsm::RxAction::kDropCorrupt);
}

TEST(ReliableFsmTest, RxRecoverStaleSkipReleasesParkedSuffix) {
    fsm::ArqRxState rx;
    (void)fsm::arq_rx_envelope(rx, 2, true);  // parked, expected still 1
    const auto d = fsm::arq_rx_recover(rx, /*stale=*/true);
    EXPECT_EQ(d.action, fsm::RecoverAction::kSkipStale);
    // Skipping the stale gap head makes parked seq 2 contiguous: it must be
    // released, or the edge leaks the payload forever (the pre-FSM bug).
    EXPECT_EQ(d.release, 1u);
    EXPECT_EQ(d.cum_ack, 2u);
    EXPECT_TRUE(rx.parked.empty());
}

TEST(MembershipFsmTest, QuorumRuleFinalizesMajorityRejectsMinority) {
    auto st = fsm::membership_init(4);
    const std::vector<bool> alive(4, true);
    EXPECT_EQ(fsm::membership_join(st, 0, alive), fsm::JoinVerdict::kJoined);
    EXPECT_EQ(fsm::membership_join(st, 0, alive),
              fsm::JoinVerdict::kAlreadyJoined);
    // 1 of 4 live joined: neither fast path nor quorum, even at expiry.
    EXPECT_EQ(fsm::membership_evaluate(st, alive, false),
              fsm::RoundVerdict::kWait);
    EXPECT_EQ(fsm::membership_evaluate(st, alive, true),
              fsm::RoundVerdict::kAbortNoQuorum);
    (void)fsm::membership_join(st, 1, alive);
    (void)fsm::membership_join(st, 2, alive);
    // 3 of 4 at grace expiry is a strict majority.
    EXPECT_EQ(fsm::membership_evaluate(st, alive, true),
              fsm::RoundVerdict::kFinalizeQuorum);
    const auto view = fsm::membership_finalize(st);
    EXPECT_EQ(view.epoch, 1);
    EXPECT_EQ(view.members, (std::vector<int>{0, 1, 2}));
    // Rank 3 was voted out: its next join must be rejected.
    EXPECT_EQ(fsm::membership_join(st, 3, alive),
              fsm::JoinVerdict::kNotInView);
}

TEST(MembershipFsmTest, FastPathFinalizesWhenEveryLiveMemberJoined) {
    auto st = fsm::membership_init(3);
    std::vector<bool> alive(3, true);
    alive[2] = false;  // fabric-dead
    (void)fsm::membership_join(st, 0, alive);
    EXPECT_EQ(fsm::membership_evaluate(st, alive, false),
              fsm::RoundVerdict::kWait);
    (void)fsm::membership_join(st, 1, alive);
    EXPECT_EQ(fsm::membership_evaluate(st, alive, false),
              fsm::RoundVerdict::kFinalizeAll);
    EXPECT_EQ(fsm::membership_join(st, 2, alive), fsm::JoinVerdict::kNotLive);
}

// ---------------------------------------------------------------------------
// Explorer machinery: deadlock, violation and liveness detection on a toy
// counter model (independent of the protocol models).

struct CounterModel {
    // Counts 0..4; `stuck_at` (if >= 0) removes all actions there;
    // `bad_at` marks the value as an invariant violation; `trap_at`
    // replaces the fair increment with an unfair self-loop (livelock).
    int stuck_at = -1;
    int bad_at = -1;
    int trap_at = -1;

    struct State {
        int v = 0;
    };
    struct Action {
        bool fair = true;
    };
    State initial() const { return {}; }
    std::vector<Action> actions(const State& s) const {
        if (s.v >= 4 || s.v == stuck_at) return {};
        if (s.v == trap_at) return {{false}};
        return {{true}};
    }
    State apply(const State& s, const Action&) const { return {s.v + 1}; }
    std::string describe(const Action&) const { return "inc"; }
    std::optional<std::string> check(const State& s) const {
        if (s.v == bad_at) return "bad-counter";
        return std::nullopt;
    }
    bool is_goal(const State& s) const { return s.v >= 4; }
    bool is_fair(const Action& a) const { return a.fair; }
    std::vector<std::uint64_t> encode(const State& s) const {
        return {static_cast<std::uint64_t>(s.v)};
    }
};

TEST(ExplorerTest, CleanModelVerifiesWithMinimalStateCount) {
    const auto r = pc::explore(CounterModel{});
    EXPECT_TRUE(r.clean());
    EXPECT_EQ(r.states, 5u);
    EXPECT_EQ(r.max_depth, 4u);
}

TEST(ExplorerTest, ReportsViolationWithMinimalTrace) {
    const auto r = pc::explore(CounterModel{-1, /*bad_at=*/3, -1});
    ASSERT_TRUE(r.violation.has_value());
    EXPECT_EQ(*r.violation, "bad-counter");
    EXPECT_EQ(r.trace.size(), 3u);  // BFS minimality: exactly 3 increments
    for (const auto& step : r.trace) EXPECT_EQ(step.label, "inc");
}

TEST(ExplorerTest, ReportsDeadlockOnStuckNonGoalState) {
    const auto r = pc::explore(CounterModel{/*stuck_at=*/2, -1, -1});
    ASSERT_TRUE(r.violation.has_value());
    EXPECT_EQ(*r.violation, "deadlock");
    EXPECT_EQ(r.trace.size(), 2u);
}

TEST(ExplorerTest, ReportsLivelockWhenOnlyUnfairActionsProgress) {
    // The unfair self-loop at 2 never counts as guaranteed progress: state
    // 2 has no fair path to the goal.
    const auto r = pc::explore(CounterModel{-1, -1, /*trap_at=*/2});
    ASSERT_TRUE(r.violation.has_value());
    EXPECT_NE(r.violation->find("livelock"), std::string::npos);
}

TEST(ExplorerTest, TruncatesAtStateCap) {
    pc::ExploreLimits limits;
    limits.max_states = 2;
    const auto r = pc::explore(CounterModel{}, limits);
    EXPECT_TRUE(r.truncated);
    EXPECT_FALSE(r.clean());
}

// ---------------------------------------------------------------------------
// Exhaustive clean sweeps — the gating property. These are the same
// configurations the protocheck ctest invocations run; keeping them in the
// gtest binary too means sanitizer jobs exercise the full search.

TEST(ProtocheckSweepTest, ArqFullAdversaryIsClean) {
    pc::ArqModelConfig cfg;
    cfg.max_msgs = 3;
    cfg.allow_kill = true;
    const auto r = pc::explore(pc::ArqModel(cfg));
    EXPECT_TRUE(r.clean()) << r.violation.value_or("truncated");
    EXPECT_GT(r.states, 1000u);  // sanity: the adversary really branches
}

TEST(ProtocheckSweepTest, ArqWithEpochBumpIsClean) {
    pc::ArqModelConfig cfg;
    cfg.max_msgs = 3;
    cfg.allow_kill = true;
    cfg.max_epoch_bumps = 1;
    const auto r = pc::explore(pc::ArqModel(cfg));
    EXPECT_TRUE(r.clean()) << r.violation.value_or("truncated");
}

TEST(ProtocheckSweepTest, MembershipWorlds2To4OneDeathIsClean) {
    for (int world = 2; world <= 4; ++world) {
        pc::MembershipModelConfig cfg;
        cfg.world = world;
        cfg.max_kills = 1;
        const auto r = pc::explore(pc::MembershipModel(cfg));
        EXPECT_TRUE(r.clean())
            << "world " << world << ": " << r.violation.value_or("truncated");
    }
}

TEST(ProtocheckSweepTest, MembershipWorld4TwoDeathsIsClean) {
    pc::MembershipModelConfig cfg;
    cfg.world = 4;
    cfg.max_kills = 2;
    const auto r = pc::explore(pc::MembershipModel(cfg));
    EXPECT_TRUE(r.clean()) << r.violation.value_or("truncated");
}

TEST(ProtocheckSweepTest, SymmetryReductionPreservesVerdictAndShrinksSpace) {
    pc::MembershipModelConfig sym;
    sym.world = 3;
    sym.max_kills = 1;
    pc::MembershipModelConfig full = sym;
    full.symmetry_reduction = false;
    const auto rs = pc::explore(pc::MembershipModel(sym));
    const auto rf = pc::explore(pc::MembershipModel(full));
    EXPECT_TRUE(rs.clean());
    EXPECT_TRUE(rf.clean());
    EXPECT_LT(rs.states, rf.states);
}

// ---------------------------------------------------------------------------
// Seeded invariant breaks: the checker must find a counterexample and the
// trace must replay to a real failure through the real stack (the
// acceptance gate for spec-executes-as-code).

TEST(SeededBreakTest, GcDropsUnackedYieldsCounterexampleThatReplays) {
    BreakGuard guard;
    fsm::set_arq_break(fsm::ArqBreak::kGcDropsUnacked);
    pc::ArqModelConfig cfg;
    cfg.max_msgs = 3;
    const auto r = pc::explore(pc::ArqModel(cfg));
    ASSERT_TRUE(r.violation.has_value());
    EXPECT_EQ(*r.violation, "gc-dropped-unacked");
    ASSERT_FALSE(r.trace.empty());

    std::vector<pc::ArqModel::Action> trace;
    for (const auto& step : r.trace) trace.push_back(step.action);
    // The break is still seeded: the REAL transport executes the same
    // broken fsm functions, so the replay must agree with the broken
    // model's prediction (payloads lost from the retransmit buffer).
    EXPECT_EQ(pc::arq_conformance_diff(cfg, trace), std::nullopt);
}

TEST(SeededBreakTest, AcceptDuplicatesDeliversOutOfOrderForReal) {
    BreakGuard guard;
    fsm::set_arq_break(fsm::ArqBreak::kAcceptDuplicates);
    pc::ArqModelConfig cfg;
    cfg.max_msgs = 3;
    const auto r = pc::explore(pc::ArqModel(cfg));
    ASSERT_TRUE(r.violation.has_value());
    EXPECT_EQ(*r.violation, "out-of-order-delivery");

    std::vector<pc::ArqModel::Action> trace;
    for (const auto& step : r.trace) trace.push_back(step.action);
    const pc::ArqReplayResult real = pc::replay_arq_trace(cfg, trace);
    // The real application must actually observe the ordering anomaly.
    bool non_increasing = false;
    for (std::size_t i = 1; i < real.delivered.size(); ++i) {
        non_increasing |= real.delivered[i] <= real.delivered[i - 1];
    }
    EXPECT_TRUE(non_increasing);
}

TEST(SeededBreakTest, QuorumBypassFinalizesMinorityViewForReal) {
    BreakGuard guard;
    fsm::set_membership_break(fsm::MembershipBreak::kQuorumBypass);
    pc::MembershipModelConfig cfg;
    cfg.world = 3;
    cfg.max_kills = 1;
    const auto r = pc::explore(pc::MembershipModel(cfg));
    ASSERT_TRUE(r.violation.has_value());
    EXPECT_EQ(*r.violation, "quorum-violation");

    std::vector<pc::MembershipModel::Action> trace;
    for (const auto& step : r.trace) trace.push_back(step.action);
    // The real MembershipService runs the same bypassed quorum check: it
    // finalizes the same minority view the model predicted.
    EXPECT_EQ(pc::membership_conformance_diff(cfg, trace), std::nullopt);
}

TEST(SeededBreakTest, CleanFsmsFindNoCounterexample) {
    // Guard against the drills passing vacuously: with no break seeded the
    // same configurations must verify clean.
    pc::ArqModelConfig acfg;
    acfg.max_msgs = 3;
    EXPECT_TRUE(pc::explore(pc::ArqModel(acfg)).clean());
    pc::MembershipModelConfig mcfg;
    mcfg.world = 3;
    mcfg.max_kills = 1;
    EXPECT_TRUE(pc::explore(pc::MembershipModel(mcfg)).clean());
}

// ---------------------------------------------------------------------------
// Model/real conformance on random adversary walks (code -> model
// direction of the bridge).

TEST(ConformanceTest, RandomAdversaryTracesMatchRealTransportExactly) {
    pc::ArqModelConfig cfg;
    cfg.max_msgs = 3;
    const auto diff = pc::arq_random_conformance(cfg, /*samples=*/32,
                                                 /*max_steps=*/40, /*seed=*/11);
    EXPECT_EQ(diff, std::nullopt) << *diff;
}

TEST(ConformanceTest, EpochBumpTracesMatchRealTransportExactly) {
    pc::ArqModelConfig cfg;
    cfg.max_msgs = 3;
    cfg.max_epoch_bumps = 1;
    const auto diff = pc::arq_random_conformance(cfg, /*samples=*/32,
                                                 /*max_steps=*/40, /*seed=*/13);
    EXPECT_EQ(diff, std::nullopt) << *diff;
}

// ---------------------------------------------------------------------------
// Passthrough refusal: ReliableTransport must not silently degrade on a
// fabric whose ranks do not share this process's address space.

/// Minimal non-shared-memory fabric: an in-process mailbox fabric that
/// REPORTS itself as multi-process (what TcpTransport returns).
class ForeignFabric final : public gtopk::comm::Transport {
public:
    explicit ForeignFabric(int world) : inner_(world) {}
    int world_size() const override { return inner_.world_size(); }
    void deliver(int dst, gtopk::comm::Message msg) override {
        inner_.deliver(dst, std::move(msg));
    }
    gtopk::comm::Message receive(int rank, int source, int tag) override {
        return inner_.receive(rank, source, tag);
    }
    std::optional<gtopk::comm::Message> try_receive(int rank, int source,
                                                    int tag) override {
        return inner_.try_receive(rank, source, tag);
    }
    void shutdown() override { inner_.shutdown(); }
    bool shared_memory_fabric() const override { return false; }

private:
    gtopk::comm::InProcTransport inner_;
};

TEST(PassthroughRefusalTest, ThrowsTypedErrorOnNonSharedMemoryFabric) {
    EXPECT_THROW(ReliableTransport(std::make_unique<ForeignFabric>(2),
                                   ReliableConfig{}),
                 UnreliableFabricError);
}

TEST(PassthroughRefusalTest, ExplicitOptInAllowsPassthrough) {
    ReliableConfig cfg;
    cfg.allow_passthrough = true;
    ReliableTransport t(std::make_unique<ForeignFabric>(2), cfg);
    EXPECT_FALSE(t.shared_memory_fabric());
    t.shutdown();
}

TEST(PassthroughRefusalTest, SharedMemoryFabricNeedsNoOptIn) {
    ReliableTransport t(
        std::make_unique<gtopk::comm::InProcTransport>(2), ReliableConfig{});
    EXPECT_TRUE(t.shared_memory_fabric());
    t.shutdown();
}

}  // namespace
