// protocheck test suite: the extracted ARQ/membership/reconnect FSMs, the
// explorer's violation machinery, the exhaustive clean sweeps that gate the
// control plane, the seeded-break counterexample drills WITH real-stack
// replay, and ReliableTransport's wire ack plane (real ack/pull frames) on
// non-shared-memory fabrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/protocheck/arq_model.hpp"
#include "analysis/protocheck/explorer.hpp"
#include "analysis/protocheck/membership_model.hpp"
#include "analysis/protocheck/reconnect_model.hpp"
#include "analysis/protocheck/replay.hpp"
#include "comm/fault_transport.hpp"
#include "comm/membership_fsm.hpp"
#include "comm/reconnect_fsm.hpp"
#include "comm/reliable_fsm.hpp"
#include "comm/reliable_transport.hpp"
#include "comm/tags.hpp"
#include "comm/transport.hpp"

namespace {

namespace pc = gtopk::analysis::protocheck;
namespace fsm = gtopk::comm::fsm;
using gtopk::comm::ReliableConfig;
using gtopk::comm::ReliableTransport;

/// Clears any seeded FSM break on scope exit so a failing test cannot
/// poison the rest of the binary (the hooks are process-global).
struct BreakGuard {
    ~BreakGuard() {
        fsm::set_arq_break(fsm::ArqBreak::kNone);
        fsm::set_membership_break(fsm::MembershipBreak::kNone);
        fsm::set_reconnect_break(fsm::ReconnectBreak::kNone);
    }
};

// ---------------------------------------------------------------------------
// FSM unit tests: the extracted transition functions in isolation.

TEST(ReliableFsmTest, TxAssignsSequentialSeqsAndGcsAckedPrefix) {
    fsm::ArqTxState tx;
    const auto d1 = fsm::arq_tx_send(tx, /*cum_ack=*/0, /*dst_alive=*/true);
    const auto d2 = fsm::arq_tx_send(tx, 0, true);
    EXPECT_EQ(d1.seq, 1u);
    EXPECT_EQ(d2.seq, 2u);
    EXPECT_TRUE(d1.buffer);
    EXPECT_EQ(tx.buffered, 2u);
    // Receiver acked seq 2: the next send GCs both buffered payloads.
    const auto d3 = fsm::arq_tx_send(tx, /*cum_ack=*/2, true);
    EXPECT_EQ(d3.seq, 3u);
    EXPECT_EQ(d3.gc, 2u);
    EXPECT_EQ(tx.base_seq, 3u);
    EXPECT_EQ(tx.buffered, 1u);
    EXPECT_EQ(fsm::arq_tx_buffer_index(tx, 3), std::optional<std::uint64_t>(0));
    EXPECT_FALSE(fsm::arq_tx_buffer_index(tx, 2).has_value());  // GCed
}

TEST(ReliableFsmTest, TxDoesNotBufferForDeadReceiver) {
    fsm::ArqTxState tx;
    (void)fsm::arq_tx_send(tx, 0, true);
    const auto d = fsm::arq_tx_send(tx, 0, /*dst_alive=*/false);
    EXPECT_FALSE(d.buffer);
    EXPECT_GT(d.clear, 0u);  // pending copies dropped too
    EXPECT_EQ(tx.buffered, 0u);
}

TEST(ReliableFsmTest, RxParksOutOfOrderAndReleasesContiguousRun) {
    fsm::ArqRxState rx;
    const auto p3 = fsm::arq_rx_envelope(rx, 3, true);
    const auto p2 = fsm::arq_rx_envelope(rx, 2, true);
    EXPECT_EQ(p3.action, fsm::RxAction::kPark);
    EXPECT_EQ(p2.action, fsm::RxAction::kPark);
    EXPECT_EQ(rx.parked.size(), 2u);
    // Seq 1 arrives: delivered, and the parked {2,3} run releases with it.
    const auto p1 = fsm::arq_rx_envelope(rx, 1, true);
    EXPECT_EQ(p1.action, fsm::RxAction::kDeliver);
    EXPECT_EQ(p1.release, 2u);
    EXPECT_EQ(p1.cum_ack, 3u);
    EXPECT_TRUE(rx.parked.empty());
    EXPECT_EQ(rx.expected, 4u);
}

TEST(ReliableFsmTest, RxDropsDuplicatesAndCorruption) {
    fsm::ArqRxState rx;
    (void)fsm::arq_rx_envelope(rx, 1, true);
    EXPECT_EQ(fsm::arq_rx_envelope(rx, 1, true).action,
              fsm::RxAction::kDropDuplicate);
    EXPECT_EQ(fsm::arq_rx_envelope(rx, 3, true).action, fsm::RxAction::kPark);
    EXPECT_EQ(fsm::arq_rx_envelope(rx, 3, true).action,
              fsm::RxAction::kDropDuplicate);  // already parked
    EXPECT_EQ(fsm::arq_rx_envelope(rx, 2, false).action,
              fsm::RxAction::kDropCorrupt);
}

TEST(ReliableFsmTest, RxRecoverStaleSkipReleasesParkedSuffix) {
    fsm::ArqRxState rx;
    (void)fsm::arq_rx_envelope(rx, 2, true);  // parked, expected still 1
    const auto d = fsm::arq_rx_recover(rx, /*stale=*/true);
    EXPECT_EQ(d.action, fsm::RecoverAction::kSkipStale);
    // Skipping the stale gap head makes parked seq 2 contiguous: it must be
    // released, or the edge leaks the payload forever (the pre-FSM bug).
    EXPECT_EQ(d.release, 1u);
    EXPECT_EQ(d.cum_ack, 2u);
    EXPECT_TRUE(rx.parked.empty());
}

TEST(MembershipFsmTest, QuorumRuleFinalizesMajorityRejectsMinority) {
    auto st = fsm::membership_init(4);
    const std::vector<bool> alive(4, true);
    EXPECT_EQ(fsm::membership_join(st, 0, alive), fsm::JoinVerdict::kJoined);
    EXPECT_EQ(fsm::membership_join(st, 0, alive),
              fsm::JoinVerdict::kAlreadyJoined);
    // 1 of 4 live joined: neither fast path nor quorum, even at expiry.
    EXPECT_EQ(fsm::membership_evaluate(st, alive, false),
              fsm::RoundVerdict::kWait);
    EXPECT_EQ(fsm::membership_evaluate(st, alive, true),
              fsm::RoundVerdict::kAbortNoQuorum);
    (void)fsm::membership_join(st, 1, alive);
    (void)fsm::membership_join(st, 2, alive);
    // 3 of 4 at grace expiry is a strict majority.
    EXPECT_EQ(fsm::membership_evaluate(st, alive, true),
              fsm::RoundVerdict::kFinalizeQuorum);
    const auto view = fsm::membership_finalize(st);
    EXPECT_EQ(view.epoch, 1);
    EXPECT_EQ(view.members, (std::vector<int>{0, 1, 2}));
    // Rank 3 was voted out: its next join must be rejected.
    EXPECT_EQ(fsm::membership_join(st, 3, alive),
              fsm::JoinVerdict::kNotInView);
}

TEST(MembershipFsmTest, FastPathFinalizesWhenEveryLiveMemberJoined) {
    auto st = fsm::membership_init(3);
    std::vector<bool> alive(3, true);
    alive[2] = false;  // fabric-dead
    (void)fsm::membership_join(st, 0, alive);
    EXPECT_EQ(fsm::membership_evaluate(st, alive, false),
              fsm::RoundVerdict::kWait);
    (void)fsm::membership_join(st, 1, alive);
    EXPECT_EQ(fsm::membership_evaluate(st, alive, false),
              fsm::RoundVerdict::kFinalizeAll);
    EXPECT_EQ(fsm::membership_join(st, 2, alive), fsm::JoinVerdict::kNotLive);
}

// ---------------------------------------------------------------------------
// Explorer machinery: deadlock, violation and liveness detection on a toy
// counter model (independent of the protocol models).

struct CounterModel {
    // Counts 0..4; `stuck_at` (if >= 0) removes all actions there;
    // `bad_at` marks the value as an invariant violation; `trap_at`
    // replaces the fair increment with an unfair self-loop (livelock).
    int stuck_at = -1;
    int bad_at = -1;
    int trap_at = -1;

    struct State {
        int v = 0;
    };
    struct Action {
        bool fair = true;
    };
    State initial() const { return {}; }
    std::vector<Action> actions(const State& s) const {
        if (s.v >= 4 || s.v == stuck_at) return {};
        if (s.v == trap_at) return {{false}};
        return {{true}};
    }
    State apply(const State& s, const Action&) const { return {s.v + 1}; }
    std::string describe(const Action&) const { return "inc"; }
    std::optional<std::string> check(const State& s) const {
        if (s.v == bad_at) return "bad-counter";
        return std::nullopt;
    }
    bool is_goal(const State& s) const { return s.v >= 4; }
    bool is_fair(const Action& a) const { return a.fair; }
    std::vector<std::uint64_t> encode(const State& s) const {
        return {static_cast<std::uint64_t>(s.v)};
    }
};

TEST(ExplorerTest, CleanModelVerifiesWithMinimalStateCount) {
    const auto r = pc::explore(CounterModel{});
    EXPECT_TRUE(r.clean());
    EXPECT_EQ(r.states, 5u);
    EXPECT_EQ(r.max_depth, 4u);
}

TEST(ExplorerTest, ReportsViolationWithMinimalTrace) {
    const auto r = pc::explore(CounterModel{-1, /*bad_at=*/3, -1});
    ASSERT_TRUE(r.violation.has_value());
    EXPECT_EQ(*r.violation, "bad-counter");
    EXPECT_EQ(r.trace.size(), 3u);  // BFS minimality: exactly 3 increments
    for (const auto& step : r.trace) EXPECT_EQ(step.label, "inc");
}

TEST(ExplorerTest, ReportsDeadlockOnStuckNonGoalState) {
    const auto r = pc::explore(CounterModel{/*stuck_at=*/2, -1, -1});
    ASSERT_TRUE(r.violation.has_value());
    EXPECT_EQ(*r.violation, "deadlock");
    EXPECT_EQ(r.trace.size(), 2u);
}

TEST(ExplorerTest, ReportsLivelockWhenOnlyUnfairActionsProgress) {
    // The unfair self-loop at 2 never counts as guaranteed progress: state
    // 2 has no fair path to the goal.
    const auto r = pc::explore(CounterModel{-1, -1, /*trap_at=*/2});
    ASSERT_TRUE(r.violation.has_value());
    EXPECT_NE(r.violation->find("livelock"), std::string::npos);
}

TEST(ExplorerTest, TruncatesAtStateCap) {
    pc::ExploreLimits limits;
    limits.max_states = 2;
    const auto r = pc::explore(CounterModel{}, limits);
    EXPECT_TRUE(r.truncated);
    EXPECT_FALSE(r.clean());
}

// ---------------------------------------------------------------------------
// Exhaustive clean sweeps — the gating property. These are the same
// configurations the protocheck ctest invocations run; keeping them in the
// gtest binary too means sanitizer jobs exercise the full search.

TEST(ProtocheckSweepTest, ArqFullAdversaryIsClean) {
    pc::ArqModelConfig cfg;
    cfg.max_msgs = 3;
    cfg.allow_kill = true;
    const auto r = pc::explore(pc::ArqModel(cfg));
    EXPECT_TRUE(r.clean()) << r.violation.value_or("truncated");
    EXPECT_GT(r.states, 1000u);  // sanity: the adversary really branches
}

TEST(ProtocheckSweepTest, ArqWithEpochBumpIsClean) {
    pc::ArqModelConfig cfg;
    cfg.max_msgs = 3;
    cfg.allow_kill = true;
    cfg.max_epoch_bumps = 1;
    const auto r = pc::explore(pc::ArqModel(cfg));
    EXPECT_TRUE(r.clean()) << r.violation.value_or("truncated");
}

TEST(ProtocheckSweepTest, MembershipWorlds2To4OneDeathIsClean) {
    for (int world = 2; world <= 4; ++world) {
        pc::MembershipModelConfig cfg;
        cfg.world = world;
        cfg.max_kills = 1;
        const auto r = pc::explore(pc::MembershipModel(cfg));
        EXPECT_TRUE(r.clean())
            << "world " << world << ": " << r.violation.value_or("truncated");
    }
}

TEST(ProtocheckSweepTest, MembershipWorld4TwoDeathsIsClean) {
    pc::MembershipModelConfig cfg;
    cfg.world = 4;
    cfg.max_kills = 2;
    const auto r = pc::explore(pc::MembershipModel(cfg));
    EXPECT_TRUE(r.clean()) << r.violation.value_or("truncated");
}

TEST(ProtocheckSweepTest, ReconnectFullAdversaryIsCleanWithLiveness) {
    // Connection losses, dropped RESUME/RESUME_OK frames, delayed backlog
    // dials and patience expiries on either side: every schedule keeps the
    // session monotonic and agreed, and converges (fair liveness) to one
    // resumed link or a dead one.
    for (int losses = 1; losses <= 2; ++losses) {
        pc::ReconnectModelConfig cfg;
        cfg.max_losses = losses;
        const auto r = pc::explore(pc::ReconnectModel(cfg));
        EXPECT_TRUE(r.clean())
            << "losses " << losses << ": " << r.violation.value_or("truncated");
        EXPECT_GT(r.states, 100u);  // sanity: the adversary really branches
    }
}

TEST(ProtocheckSweepTest, SymmetryReductionPreservesVerdictAndShrinksSpace) {
    pc::MembershipModelConfig sym;
    sym.world = 3;
    sym.max_kills = 1;
    pc::MembershipModelConfig full = sym;
    full.symmetry_reduction = false;
    const auto rs = pc::explore(pc::MembershipModel(sym));
    const auto rf = pc::explore(pc::MembershipModel(full));
    EXPECT_TRUE(rs.clean());
    EXPECT_TRUE(rf.clean());
    EXPECT_LT(rs.states, rf.states);
}

// ---------------------------------------------------------------------------
// Seeded invariant breaks: the checker must find a counterexample and the
// trace must replay to a real failure through the real stack (the
// acceptance gate for spec-executes-as-code).

TEST(SeededBreakTest, GcDropsUnackedYieldsCounterexampleThatReplays) {
    BreakGuard guard;
    fsm::set_arq_break(fsm::ArqBreak::kGcDropsUnacked);
    pc::ArqModelConfig cfg;
    cfg.max_msgs = 3;
    const auto r = pc::explore(pc::ArqModel(cfg));
    ASSERT_TRUE(r.violation.has_value());
    EXPECT_EQ(*r.violation, "gc-dropped-unacked");
    ASSERT_FALSE(r.trace.empty());

    std::vector<pc::ArqModel::Action> trace;
    for (const auto& step : r.trace) trace.push_back(step.action);
    // The break is still seeded: the REAL transport executes the same
    // broken fsm functions, so the replay must agree with the broken
    // model's prediction (payloads lost from the retransmit buffer).
    EXPECT_EQ(pc::arq_conformance_diff(cfg, trace), std::nullopt);
}

TEST(SeededBreakTest, AcceptDuplicatesDeliversOutOfOrderForReal) {
    BreakGuard guard;
    fsm::set_arq_break(fsm::ArqBreak::kAcceptDuplicates);
    pc::ArqModelConfig cfg;
    cfg.max_msgs = 3;
    const auto r = pc::explore(pc::ArqModel(cfg));
    ASSERT_TRUE(r.violation.has_value());
    EXPECT_EQ(*r.violation, "out-of-order-delivery");

    std::vector<pc::ArqModel::Action> trace;
    for (const auto& step : r.trace) trace.push_back(step.action);
    const pc::ArqReplayResult real = pc::replay_arq_trace(cfg, trace);
    // The real application must actually observe the ordering anomaly.
    bool non_increasing = false;
    for (std::size_t i = 1; i < real.delivered.size(); ++i) {
        non_increasing |= real.delivered[i] <= real.delivered[i - 1];
    }
    EXPECT_TRUE(non_increasing);
}

TEST(SeededBreakTest, QuorumBypassFinalizesMinorityViewForReal) {
    BreakGuard guard;
    fsm::set_membership_break(fsm::MembershipBreak::kQuorumBypass);
    pc::MembershipModelConfig cfg;
    cfg.world = 3;
    cfg.max_kills = 1;
    const auto r = pc::explore(pc::MembershipModel(cfg));
    ASSERT_TRUE(r.violation.has_value());
    EXPECT_EQ(*r.violation, "quorum-violation");

    std::vector<pc::MembershipModel::Action> trace;
    for (const auto& step : r.trace) trace.push_back(step.action);
    // The real MembershipService runs the same bypassed quorum check: it
    // finalizes the same minority view the model predicted.
    EXPECT_EQ(pc::membership_conformance_diff(cfg, trace), std::nullopt);
}

TEST(SeededBreakTest, AcceptStaleResurrectsAbandonedSession) {
    BreakGuard guard;
    fsm::set_reconnect_break(fsm::ReconnectBreak::kAcceptStale);
    pc::ReconnectModelConfig cfg;
    const auto r = pc::explore(pc::ReconnectModel(cfg));
    ASSERT_TRUE(r.violation.has_value());
    EXPECT_EQ(*r.violation, "stale-session-accepted");
    ASSERT_FALSE(r.trace.empty());
    // The BFS-minimal counterexample needs at least two dials in flight:
    // the newer proposal delivered first, then the stale backlog one.
    int dials = 0;
    for (const auto& step : r.trace) dials += step.label == "dial";
    EXPECT_GE(dials, 2);
}

TEST(SeededBreakTest, CleanFsmsFindNoCounterexample) {
    // Guard against the drills passing vacuously: with no break seeded the
    // same configurations must verify clean.
    pc::ArqModelConfig acfg;
    acfg.max_msgs = 3;
    EXPECT_TRUE(pc::explore(pc::ArqModel(acfg)).clean());
    pc::MembershipModelConfig mcfg;
    mcfg.world = 3;
    mcfg.max_kills = 1;
    EXPECT_TRUE(pc::explore(pc::MembershipModel(mcfg)).clean());
    EXPECT_TRUE(pc::explore(pc::ReconnectModel(pc::ReconnectModelConfig{})).clean());
}

// ---------------------------------------------------------------------------
// Model/real conformance on random adversary walks (code -> model
// direction of the bridge).

TEST(ConformanceTest, RandomAdversaryTracesMatchRealTransportExactly) {
    pc::ArqModelConfig cfg;
    cfg.max_msgs = 3;
    const auto diff = pc::arq_random_conformance(cfg, /*samples=*/32,
                                                 /*max_steps=*/40, /*seed=*/11);
    EXPECT_EQ(diff, std::nullopt) << *diff;
}

TEST(ConformanceTest, EpochBumpTracesMatchRealTransportExactly) {
    pc::ArqModelConfig cfg;
    cfg.max_msgs = 3;
    cfg.max_epoch_bumps = 1;
    const auto diff = pc::arq_random_conformance(cfg, /*samples=*/32,
                                                 /*max_steps=*/40, /*seed=*/13);
    EXPECT_EQ(diff, std::nullopt) << *diff;
}

// ---------------------------------------------------------------------------
// Wire ack plane: on a fabric whose ranks do NOT share this process's
// address space, ReliableTransport must run the full ARQ cross-"process" —
// acks and gap pulls as real frames, never the old silent passthrough.

/// Minimal non-shared-memory fabric: an in-process mailbox fabric that
/// REPORTS itself as multi-process (what TcpTransport returns). The
/// reliable layer cannot tell the difference, so its wire ack plane is
/// testable without sockets.
class ForeignFabric final : public gtopk::comm::Transport {
public:
    explicit ForeignFabric(int world) : inner_(world) {}
    int world_size() const override { return inner_.world_size(); }
    void deliver(int dst, gtopk::comm::Message msg) override {
        inner_.deliver(dst, std::move(msg));
    }
    gtopk::comm::Message receive(int rank, int source, int tag) override {
        return inner_.receive(rank, source, tag);
    }
    std::optional<gtopk::comm::Message> try_receive(int rank, int source,
                                                    int tag) override {
        return inner_.try_receive(rank, source, tag);
    }
    void shutdown() override { inner_.shutdown(); }
    bool shared_memory_fabric() const override { return false; }

private:
    gtopk::comm::InProcTransport inner_;
};

/// Application-band tag for the wire-ARQ round-trip drills.
constexpr int kWireTestTag = 7;

gtopk::comm::Message make_msg(int source, int tag, int payload_byte) {
    gtopk::comm::Message m;
    m.source = source;
    m.tag = tag;
    m.epoch = 0;
    m.arrival_time_s = 0.0;
    m.payload.assign(4, std::byte{static_cast<unsigned char>(payload_byte)});
    return m;
}

TEST(WireArqTest, ConstructsAndRoundTripsOnNonSharedMemoryFabric) {
    ReliableTransport t(std::make_unique<ForeignFabric>(2), ReliableConfig{});
    EXPECT_FALSE(t.shared_memory_fabric());
    t.deliver(1, make_msg(/*source=*/0, kWireTestTag, /*payload_byte=*/0x2a));
    const auto got = t.try_receive(1, 0, kWireTestTag);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->payload.size(), 4u);
    EXPECT_EQ(std::to_integer<int>(got->payload[0]), 0x2a);
    // The delivery owes rank 0 a cumulative-ack frame; draining rank 0's
    // side folds it without error (and without touching shared state).
    (void)t.try_receive(0, 1, kWireTestTag);
    t.shutdown();
}

TEST(WireArqTest, DropsRecoverThroughPullFramesBitIdentically) {
    gtopk::comm::FaultPlan plan;
    plan.seed = 99;
    gtopk::comm::FaultRule rule;
    rule.tag = gtopk::comm::kTagReliableData;
    rule.drop_every_n = 2;  // every 2nd envelope on each edge vanishes
    plan.add(rule);
    ReliableTransport t(
        std::make_unique<gtopk::comm::FaultInjectingTransport>(
            std::make_unique<ForeignFabric>(2), plan),
        ReliableConfig{});
    EXPECT_FALSE(t.shared_memory_fabric());

    constexpr int kMsgs = 8;
    for (int i = 0; i < kMsgs; ++i) {
        t.deliver(1, make_msg(0, kWireTestTag, /*payload_byte=*/i));
    }
    // Drive both endpoints explicitly (deterministic, no backoff clock):
    // rank 1 names its gap head in pull frames, rank 0 answers them with
    // retransmits, rank 1 drains the recovered envelopes.
    std::vector<int> got;
    for (int round = 0; round < 64 && static_cast<int>(got.size()) < kMsgs;
         ++round) {
        (void)t.recover_now(1);  // drain + emit pulls
        (void)t.recover_now(0);  // fold acks, answer pulls
        while (auto m = t.try_receive(1, 0, kWireTestTag)) {
            got.push_back(std::to_integer<int>(m->payload[0]));
        }
    }
    ASSERT_EQ(got.size(), static_cast<std::size_t>(kMsgs));
    for (int i = 0; i < kMsgs; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
    EXPECT_GT(t.counts().retransmits, 0u);
    t.shutdown();
}

TEST(WireArqTest, MalformedControlFramesAreDroppedNotFolded) {
    ReliableTransport t(std::make_unique<ForeignFabric>(2), ReliableConfig{});
    // A corrupted ack frame must never GC unacked payloads: feed garbage
    // directly to the inner fabric on the reserved ack tag.
    gtopk::comm::Message junk;
    junk.source = 1;
    junk.tag = gtopk::comm::kTagReliableAck;
    junk.epoch = 0;
    junk.payload.assign(3, std::byte{0x5a});  // wrong size, wrong magic
    t.inner().deliver(0, std::move(junk));
    const auto before = t.counts().corrupt_dropped;
    (void)t.recover_now(0);
    EXPECT_GT(t.counts().corrupt_dropped, before);
    t.shutdown();
}

TEST(WireArqTest, SharedMemoryFabricKeepsSharedAckPlane) {
    ReliableTransport t(
        std::make_unique<gtopk::comm::InProcTransport>(2), ReliableConfig{});
    EXPECT_TRUE(t.shared_memory_fabric());
    t.shutdown();
}

// ---------------------------------------------------------------------------
// Reconnect FSM unit tests (the socket layer's session-resume spec).

TEST(ReconnectFsmTest, DownDialEstablishRoundTrip) {
    fsm::LinkState dialer;  // higher rank
    fsm::LinkState acceptor;
    const fsm::ReconnectPolicy policy;
    EXPECT_TRUE(fsm::link_down(dialer));
    EXPECT_FALSE(fsm::link_down(dialer));  // edge-triggered
    EXPECT_TRUE(fsm::link_down(acceptor));
    EXPECT_EQ(fsm::link_dial(dialer, policy), fsm::DialVerdict::kDial);
    const std::uint64_t proposal = fsm::link_propose(dialer);
    EXPECT_GT(proposal, dialer.session);
    EXPECT_EQ(fsm::link_resume(acceptor, proposal),
              fsm::ResumeVerdict::kAccept);
    EXPECT_EQ(acceptor.session, proposal);
    fsm::link_established(dialer, proposal);
    EXPECT_EQ(dialer.phase, fsm::LinkPhase::kUp);
    EXPECT_EQ(dialer.session, acceptor.session);
}

TEST(ReconnectFsmTest, StaleProposalRejectedSessionsMonotonic) {
    fsm::LinkState acceptor;
    acceptor.session = 5;
    EXPECT_EQ(fsm::link_resume(acceptor, 5), fsm::ResumeVerdict::kRejectStale);
    EXPECT_EQ(fsm::link_resume(acceptor, 3), fsm::ResumeVerdict::kRejectStale);
    EXPECT_EQ(acceptor.session, 5u);
    EXPECT_EQ(fsm::link_resume(acceptor, 6), fsm::ResumeVerdict::kAccept);
}

TEST(ReconnectFsmTest, LostResumeOkRetryStillClearsAcceptorBar) {
    // Dial 1's RESUME_OK is lost AFTER the acceptor installed the session:
    // the retry must propose something the acceptor still accepts.
    fsm::LinkState dialer;
    fsm::LinkState acceptor;
    const fsm::ReconnectPolicy policy;
    (void)fsm::link_down(dialer);
    (void)fsm::link_down(acceptor);
    (void)fsm::link_dial(dialer, policy);
    const std::uint64_t p1 = fsm::link_propose(dialer);
    EXPECT_EQ(fsm::link_resume(acceptor, p1), fsm::ResumeVerdict::kAccept);
    // ...RESUME_OK lost; dialer never learns, dials again.
    (void)fsm::link_dial(dialer, policy);
    const std::uint64_t p2 = fsm::link_propose(dialer);
    EXPECT_GT(p2, p1);
    EXPECT_EQ(fsm::link_resume(acceptor, p2), fsm::ResumeVerdict::kAccept);
}

TEST(ReconnectFsmTest, BudgetExhaustionIsAbsorbingDeath) {
    fsm::LinkState st;
    fsm::ReconnectPolicy policy;
    policy.max_attempts = 2;
    (void)fsm::link_down(st);
    EXPECT_EQ(fsm::link_dial(st, policy), fsm::DialVerdict::kDial);
    EXPECT_EQ(fsm::link_dial(st, policy), fsm::DialVerdict::kDial);
    EXPECT_EQ(fsm::link_dial(st, policy), fsm::DialVerdict::kDead);
    EXPECT_EQ(st.phase, fsm::LinkPhase::kDead);
    // Nothing revives a dead link.
    EXPECT_EQ(fsm::link_resume(st, 100), fsm::ResumeVerdict::kRejectDead);
    fsm::link_established(st, 100);
    EXPECT_EQ(st.phase, fsm::LinkPhase::kDead);
    EXPECT_FALSE(fsm::link_down(st));
}

TEST(ReconnectFsmTest, BackoffDoublesAndClamps) {
    fsm::LinkState st;
    fsm::ReconnectPolicy policy;
    policy.initial_backoff_s = 0.05;
    policy.max_backoff_s = 0.4;
    (void)fsm::link_down(st);
    EXPECT_DOUBLE_EQ(fsm::link_backoff_s(st, policy), 0.05);
    st.attempts = 1;
    EXPECT_DOUBLE_EQ(fsm::link_backoff_s(st, policy), 0.1);
    st.attempts = 10;
    EXPECT_DOUBLE_EQ(fsm::link_backoff_s(st, policy), 0.4);
}

TEST(ReconnectFsmTest, PassiveExpiryOnlyFromDown) {
    fsm::LinkState st;
    EXPECT_FALSE(fsm::link_expire(st));  // up: patience does not apply
    (void)fsm::link_down(st);
    EXPECT_TRUE(fsm::link_expire(st));
    EXPECT_EQ(st.phase, fsm::LinkPhase::kDead);
    EXPECT_FALSE(fsm::link_expire(st));  // absorbing
}

}  // namespace
