// The analytical iteration model: exact formula checks (Table I), the
// paper's qualitative claims (who wins where), and calibration — predicted
// Table IV throughput must land near the paper's measurements.
#include <gtest/gtest.h>

#include <cmath>

#include "collectives/cost_model.hpp"
#include "perfmodel/iteration_model.hpp"
#include "perfmodel/model_profile.hpp"
#include "perfmodel/stack_model.hpp"

namespace {

using namespace gtopk;
using namespace gtopk::perfmodel;
using gtopk::comm::NetworkModel;

const NetworkModel kNet = NetworkModel::one_gbps_ethernet();

TEST(CostModel, DenseAllreduceMatchesEq5) {
    // 2(P-1) alpha + 2 (P-1)/P m beta, literally.
    const double t = collectives::dense_allreduce_time_s(kNet, 32, 25'000'000);
    const double expect = 2.0 * 31 * 0.436e-3 + 2.0 * 31.0 / 32.0 * 25e6 * 3.6e-8;
    EXPECT_NEAR(t, expect, 1e-12);
    EXPECT_EQ(collectives::dense_allreduce_time_s(kNet, 1, 1000), 0.0);
}

TEST(CostModel, TopkAllreduceMatchesEq6) {
    const double t = collectives::topk_allreduce_time_s(kNet, 32, 25'000);
    const double expect = 5 * 0.436e-3 + 2.0 * 31 * 25e3 * 3.6e-8;
    EXPECT_NEAR(t, expect, 1e-12);
}

TEST(CostModel, GtopkAllreduceMatchesEq7) {
    const double t = collectives::gtopk_allreduce_time_s(kNet, 32, 25'000);
    const double expect = 2.0 * 5 * 0.436e-3 + 4.0 * 25e3 * 5 * 3.6e-8;
    EXPECT_NEAR(t, expect, 1e-12);
}

TEST(CostModel, ComplexityScaling) {
    // O(kP) vs O(k logP): doubling P roughly doubles Top-k cost but adds
    // only one round to gTop-k.
    const std::uint64_t k = 25'000;
    const double topk64 = collectives::topk_allreduce_time_s(kNet, 64, k);
    const double topk128 = collectives::topk_allreduce_time_s(kNet, 128, k);
    EXPECT_NEAR(topk128 / topk64, 2.0, 0.05);
    const double g64 = collectives::gtopk_allreduce_time_s(kNet, 64, k);
    const double g128 = collectives::gtopk_allreduce_time_s(kNet, 128, k);
    EXPECT_NEAR(g128 / g64, 7.0 / 6.0, 0.01);
}

TEST(CostModel, PaperFig9LeftCrossover) {
    // Fig. 9 left: at m = 25e6, rho = 1e-3, TopK is competitive at small P
    // but gTopK wins clearly from P = 16 on.
    const std::uint64_t k = 25'000;
    EXPECT_LT(collectives::topk_allreduce_time_s(kNet, 4, k),
              collectives::gtopk_allreduce_time_s(kNet, 4, k));
    for (int p : {16, 32, 64, 128}) {
        EXPECT_GT(collectives::topk_allreduce_time_s(kNet, p, k),
                  collectives::gtopk_allreduce_time_s(kNet, p, k))
            << "P=" << p;
    }
}

TEST(CostModel, PaperTable1Ordering) {
    // At the paper's operating point (P = 32, m = 25e6, rho = 1e-3):
    // dense >> topk > gtopk.
    const std::uint64_t m = 25'000'000, k = 25'000;
    const double dense = collectives::dense_allreduce_time_s(kNet, 32, m);
    const double topk = collectives::topk_allreduce_time_s(kNet, 32, k);
    const double gtopk = collectives::gtopk_allreduce_time_s(kNet, 32, k);
    EXPECT_GT(dense, 10.0 * topk);
    EXPECT_GT(topk, 2.0 * gtopk);
}

TEST(IterationModel, BreakdownSumsToTotal) {
    const StackModel stack = StackModel::calibrated();
    for (const auto& model : table4_models()) {
        for (auto algo : {Algo::Dense, Algo::Topk, Algo::Gtopk}) {
            const Breakdown b =
                iteration_breakdown(model, algo, 32, model.default_density, stack);
            EXPECT_NEAR(b.total_s(),
                        iteration_time_s(model, algo, 32, model.default_density, stack),
                        1e-12);
            EXPECT_GT(b.compute_s, 0.0);
            EXPECT_GE(b.compress_s, 0.0);
            EXPECT_GT(b.comm_s, 0.0);
        }
    }
}

TEST(IterationModel, DenseHasNoCompressPhase) {
    const StackModel stack = StackModel::calibrated();
    const Breakdown b = iteration_breakdown(vgg16_profile(), Algo::Dense, 32, 1e-3, stack);
    EXPECT_EQ(b.compress_s, 0.0);
}

TEST(IterationModel, EfficiencyInUnitInterval) {
    for (const StackModel& stack : {StackModel::ideal(), StackModel::calibrated()}) {
        for (const auto& model : table4_models()) {
            for (auto algo : {Algo::Dense, Algo::Topk, Algo::Gtopk}) {
                for (int p : {4, 8, 16, 32}) {
                    const double e =
                        scaling_efficiency(model, algo, p, model.default_density, stack);
                    EXPECT_GT(e, 0.0);
                    EXPECT_LE(e, 1.0);
                }
            }
        }
    }
}

TEST(IterationModel, Fig10Shape) {
    // The paper's Fig. 10 shape on every model at P = 32:
    // e(gTop-k) > e(Top-k) > e(Dense).
    const StackModel stack = StackModel::calibrated();
    for (const auto& model : table4_models()) {
        const double ed = scaling_efficiency(model, Algo::Dense, 32, 1e-3, stack);
        const double et = scaling_efficiency(model, Algo::Topk, 32, 1e-3, stack);
        const double eg = scaling_efficiency(model, Algo::Gtopk, 32, 1e-3, stack);
        EXPECT_GT(eg, et) << model.name;
        EXPECT_GT(et, ed) << model.name;
    }
}

TEST(IterationModel, Fig10GtopkDegradesSlowerThanTopk) {
    // Scaling from 4 to 32 workers, Top-k's efficiency must fall by a
    // larger factor than gTop-k's (the paper's "Top-k has an obvious
    // performance decrease when scaling to 32 GPUs").
    const StackModel stack = StackModel::calibrated();
    for (const auto& model : table4_models()) {
        const double t4 = scaling_efficiency(model, Algo::Topk, 4, 1e-3, stack);
        const double t32 = scaling_efficiency(model, Algo::Topk, 32, 1e-3, stack);
        const double g4 = scaling_efficiency(model, Algo::Gtopk, 4, 1e-3, stack);
        const double g32 = scaling_efficiency(model, Algo::Gtopk, 32, 1e-3, stack);
        EXPECT_GT(t4 / t32, g4 / g32) << model.name;
    }
}

TEST(IterationModel, Table4CalibrationWithinBand) {
    // Predicted 32-worker throughput must land within 2x of every paper
    // measurement, and the headline speedups must reproduce: g/d in the
    // paper is 2.7-12.8x, g/t is 1.1-1.7x.
    const StackModel stack = StackModel::calibrated();
    const auto paper = paper_table4();
    const auto models = table4_models();
    ASSERT_EQ(paper.size(), models.size());
    for (std::size_t i = 0; i < models.size(); ++i) {
        const auto& m = models[i];
        const double dense = throughput_sps(m, Algo::Dense, 32, 1e-3, stack);
        const double topk = throughput_sps(m, Algo::Topk, 32, 1e-3, stack);
        const double gtopk = throughput_sps(m, Algo::Gtopk, 32, 1e-3, stack);
        EXPECT_GT(dense, paper[i].dense / 2.0) << m.name;
        EXPECT_LT(dense, paper[i].dense * 2.0) << m.name;
        EXPECT_GT(topk, paper[i].topk / 2.0) << m.name;
        EXPECT_LT(topk, paper[i].topk * 2.0) << m.name;
        EXPECT_GT(gtopk, paper[i].gtopk / 2.0) << m.name;
        EXPECT_LT(gtopk, paper[i].gtopk * 2.0) << m.name;

        const double gd = gtopk / dense;
        const double gt = gtopk / topk;
        EXPECT_GT(gd, 1.8) << m.name;   // paper: 2.7-12.8
        EXPECT_LT(gd, 20.0) << m.name;
        EXPECT_GT(gt, 1.0) << m.name;   // paper: 1.1-1.7
        EXPECT_LT(gt, 2.5) << m.name;
    }
}

TEST(IterationModel, Fig11BreakdownShape) {
    // VGG-16/AlexNet (FC-heavy): comm + compress dominate compute.
    // ResNet-20/50: compute dominates (low communication-to-computation
    // ratio -> up to 80% efficiency on 1GbE).
    const StackModel stack = StackModel::calibrated();
    for (const auto& model : {vgg16_profile(), alexnet_profile()}) {
        const Breakdown b = iteration_breakdown(model, Algo::Gtopk, 32, 1e-3, stack);
        EXPECT_GT(b.compress_s + b.comm_s, b.compute_s) << model.name;
    }
    for (const auto& model : {resnet20_profile(), resnet50_profile()}) {
        const Breakdown b = iteration_breakdown(model, Algo::Gtopk, 32,
                                                model.default_density, stack);
        EXPECT_GT(b.compute_s, b.compress_s + b.comm_s) << model.name;
    }
}

TEST(IterationModel, DensityMonotonicity) {
    // Lower density -> cheaper sparse communication, monotonically.
    const StackModel stack = StackModel::ideal();
    const auto model = resnet50_profile();
    double prev = 1e9;
    for (double rho : {1e-2, 1e-3, 5e-4, 1e-4}) {
        const double t = comm_time_s(model, Algo::Gtopk, 32, rho, stack);
        EXPECT_LT(t, prev);
        prev = t;
    }
}

TEST(Profiles, MatchPaperTableIII) {
    EXPECT_EQ(vgg16_profile().batch, 128);
    EXPECT_EQ(resnet20_profile().batch, 128);
    EXPECT_EQ(alexnet_profile().batch, 64);
    EXPECT_EQ(resnet50_profile().batch, 256);
    EXPECT_EQ(lstm_ptb_profile().batch, 100);
    EXPECT_DOUBLE_EQ(lstm_ptb_profile().default_density, 5e-3);
    // Parameter sizes in the right ballpark (ResNet-50 ~ 25.6M, the m used
    // in the paper's Fig. 9).
    EXPECT_NEAR(static_cast<double>(resnet50_profile().params), 25.6e6, 1e6);
}

}  // namespace
