// BatchNorm2d: forward statistics, train/eval behavior, gradient
// correctness (analytic formula vs finite differences through a full
// model), and distributed training with BN-equipped residual nets.
#include <gtest/gtest.h>

#include <cmath>

#include "data/sampler.hpp"
#include "data/synthetic_images.hpp"
#include "nn/batchnorm.hpp"
#include "nn/classifier_model.hpp"
#include "nn/linear.hpp"
#include "nn/model_zoo.hpp"
#include "nn/activations.hpp"
#include "train/trainer.hpp"
#include "util/rng.hpp"

namespace {

using namespace gtopk;
using namespace gtopk::nn;
using gtopk::util::Xoshiro256;

Tensor random_input(std::int64_t n, std::int64_t c, std::int64_t hw,
                    std::uint64_t seed, float shift = 0.0f, float scale = 1.0f) {
    Xoshiro256 rng(seed);
    Tensor x({n, c, hw, hw});
    for (auto& v : x.data()) {
        v = shift + scale * static_cast<float>(rng.next_gaussian());
    }
    return x;
}

TEST(BatchNorm, TrainingOutputIsNormalizedPerChannel) {
    BatchNorm2d bn(3);
    const Tensor x = random_input(4, 3, 6, 1, /*shift=*/5.0f, /*scale=*/3.0f);
    const Tensor y = bn.forward(x, /*training=*/true);
    for (std::int64_t c = 0; c < 3; ++c) {
        double sum = 0.0, sum_sq = 0.0;
        std::int64_t count = 0;
        for (std::int64_t b = 0; b < 4; ++b) {
            for (std::int64_t i = 0; i < 6; ++i) {
                for (std::int64_t j = 0; j < 6; ++j) {
                    const double v = y.at4(b, c, i, j);
                    sum += v;
                    sum_sq += v * v;
                    ++count;
                }
            }
        }
        const double mean = sum / count;
        const double var = sum_sq / count - mean * mean;
        EXPECT_NEAR(mean, 0.0, 1e-4) << "channel " << c;
        EXPECT_NEAR(var, 1.0, 1e-2) << "channel " << c;
    }
}

TEST(BatchNorm, GammaBetaScaleAndShift) {
    BatchNorm2d bn(1);
    std::vector<ParamView> params;
    bn.collect_params(params);
    ASSERT_EQ(params.size(), 2u);
    (*params[0].value)[0] = 2.0f;   // gamma
    (*params[1].value)[0] = -1.0f;  // beta
    const Tensor x = random_input(2, 1, 4, 2);
    const Tensor y = bn.forward(x, true);
    double mean = 0.0;
    for (float v : y.data()) mean += v;
    mean /= static_cast<double>(y.numel());
    EXPECT_NEAR(mean, -1.0, 1e-4);  // beta shifts the normalized mean
}

TEST(BatchNorm, EvalUsesRunningStatistics) {
    BatchNorm2d bn(2);
    // Feed several training batches with mean 10 so running stats learn it.
    for (int step = 0; step < 60; ++step) {
        (void)bn.forward(random_input(4, 2, 4, 100 + step, 10.0f, 2.0f), true);
    }
    EXPECT_NEAR(bn.running_mean()[0], 10.0f, 0.5f);
    EXPECT_NEAR(bn.running_var()[0], 4.0f, 0.8f);
    // Eval mode on a batch with the same distribution: output ~ N(0, 1).
    const Tensor y = bn.forward(random_input(8, 2, 4, 999, 10.0f, 2.0f), false);
    double mean = 0.0;
    for (float v : y.data()) mean += v;
    mean /= static_cast<double>(y.numel());
    EXPECT_NEAR(mean, 0.0, 0.2);
}

TEST(BatchNorm, EvalDoesNotTouchRunningStats) {
    BatchNorm2d bn(1);
    (void)bn.forward(random_input(2, 1, 4, 5), true);
    const float before = bn.running_mean()[0];
    (void)bn.forward(random_input(2, 1, 4, 6, 50.0f), false);
    EXPECT_EQ(bn.running_mean()[0], before);
}

TEST(BatchNorm, RejectsWrongShapes) {
    BatchNorm2d bn(3);
    Tensor bad({2, 4, 4, 4});
    EXPECT_THROW(bn.forward(bad, true), std::invalid_argument);
    EXPECT_THROW(BatchNorm2d(0), std::invalid_argument);
}

TEST(BatchNorm, GradientMatchesFiniteDifferences) {
    // Full-model gradcheck through BN (smooth, so strict comparison): a
    // conv-free net isolating the BN backward formula.
    Xoshiro256 rng(11);
    auto net = std::make_unique<Sequential>();
    net->emplace<BatchNorm2d>(2);
    net->emplace<Flatten>();
    net->emplace<Linear>(2 * 4 * 4, 3, rng);
    ClassifierModel model(std::move(net));

    Batch batch;
    batch.x = random_input(3, 2, 4, 21, 1.0f, 2.0f);
    batch.targets = {0, 2, 1};
    (void)model.train_step_gradients(batch);
    const auto analytic = model.flat_grads();
    const auto theta0 = model.flat_params();

    // The analytic gradient differentiates the TRAINING-mode loss (batch
    // statistics), so the numeric probe must use the same function —
    // train_step_gradients returns it (its gradient side effects are
    // irrelevant here and running-stat updates do not affect it).
    const float eps = 1e-2f;
    int checked = 0;
    for (std::size_t i = 0; i < theta0.size() && checked < 30; i += 3) {
        if (std::abs(analytic[i]) < 2e-3f) continue;
        ++checked;
        auto theta = theta0;
        theta[i] = theta0[i] + eps;
        model.set_flat_params(theta);
        const double lp = model.train_step_gradients(batch);
        theta[i] = theta0[i] - eps;
        model.set_flat_params(theta);
        const double lm = model.train_step_gradients(batch);
        model.set_flat_params(theta0);
        const double numeric = (lp - lm) / (2.0 * eps);
        const double denom = std::max({1e-4, std::abs(numeric),
                                       static_cast<double>(std::abs(analytic[i]))});
        EXPECT_NEAR(analytic[i] / denom, numeric / denom, 3e-2) << "param " << i;
    }
    EXPECT_GT(checked, 5);
}

TEST(BatchNorm, EvalLossUsesTrainedStatsInGradcheckPath) {
    // eval_loss (used by gradcheck) runs BN in eval mode, which reads
    // running stats — verify the loss is still finite and sane right after
    // a single training step (stats initialized by the first batch).
    nn::MiniResNetConfig cfg;
    cfg.image_size = 8;
    cfg.channels = 4;
    cfg.blocks = 1;
    cfg.batch_norm = true;
    auto model = nn::make_mini_resnet(cfg, 3);
    Xoshiro256 rng(9);
    Batch batch;
    batch.x = random_input(4, 3, 8, 31);
    batch.targets = {0, 1, 2, 3};
    const double train_loss = model->train_step_gradients(batch);
    const double eval_loss = model->eval_loss(batch);
    EXPECT_TRUE(std::isfinite(train_loss));
    EXPECT_TRUE(std::isfinite(eval_loss));
}

TEST(BatchNorm, BnResNetParamCountGrows) {
    nn::MiniResNetConfig plain;
    plain.batch_norm = false;
    nn::MiniResNetConfig with_bn = plain;
    with_bn.batch_norm = true;
    EXPECT_GT(nn::make_mini_resnet(with_bn, 1)->num_params(),
              nn::make_mini_resnet(plain, 1)->num_params());
}

TEST(BatchNorm, DistributedGtopkTrainingWithBnConverges) {
    data::SyntheticImageDataset::Config dcfg;
    dcfg.image_size = 8;
    dcfg.noise_std = 0.6f;
    data::SyntheticImageDataset dataset(dcfg, 13);
    data::ShardedSampler sampler(4096, 512, 4, 11);
    nn::MiniResNetConfig mcfg;
    mcfg.image_size = 8;
    mcfg.channels = 4;
    mcfg.blocks = 1;
    mcfg.batch_norm = true;

    train::TrainConfig config;
    config.algorithm = train::Algorithm::GtopkSsgd;
    config.epochs = 4;
    config.iters_per_epoch = 20;
    config.lr = 0.03f;
    config.density = 0.05;
    const auto result = train::train_distributed(
        4, comm::NetworkModel::free(), config,
        [&](std::uint64_t seed) { return nn::make_mini_resnet(mcfg, seed); },
        [&](std::int64_t step, int rank) {
            return dataset.batch_images(sampler.batch_indices(step, rank, 8));
        },
        [&] { return dataset.batch_images(sampler.test_indices(128)); });
    EXPECT_LT(result.epochs.back().train_loss, result.epochs.front().train_loss);
    EXPECT_GT(result.epochs.back().val_accuracy, 0.25);
}

}  // namespace
