// Async collective engine unit tests: handle state machine, per-handle tag
// sub-bands (never aliasing the blocking fresh band or each other), NIC
// timeline semantics, the bucketer, and the static concurrent-schedule
// checker that certifies the executor model (DESIGN.md §14).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstddef>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "analysis/verify.hpp"
#include "collectives/collectives.hpp"
#include "collectives/schedule.hpp"
#include "comm/cluster.hpp"
#include "comm/communicator.hpp"
#include "comm/tags.hpp"
#include "core/aggregators.hpp"
#include "core/async_gtopk.hpp"
#include "perfmodel/overlap_model.hpp"
#include "sparse/sparse_gradient.hpp"
#include "train/bucketer.hpp"

namespace {

using namespace gtopk;
using comm::NetworkModel;
using core::AsyncGtopkAllreduce;
using sparse::SparseGradient;
using train::fuse_buckets;
using train::GradBucket;

SparseGradient make_local(int rank, int salt, std::int64_t dense, std::size_t k) {
    SparseGradient g;
    g.dense_size = dense;
    const std::int64_t stride = dense / static_cast<std::int64_t>(k);
    for (std::size_t i = 0; i < k; ++i) {
        const std::int64_t idx =
            (static_cast<std::int64_t>(i) * stride + rank * 3 + salt * 7) % dense;
        g.indices.push_back(static_cast<std::int32_t>(idx));
        g.values.push_back(0.01f * static_cast<float>(rank + 1) +
                           0.001f * static_cast<float>(i + salt));
    }
    std::sort(g.indices.begin(), g.indices.end());
    g.indices.erase(std::unique(g.indices.begin(), g.indices.end()),
                    g.indices.end());
    g.values.resize(g.indices.size());
    return g;
}

// ---------------------------------------------------------------------------
// Handle state machine
// ---------------------------------------------------------------------------

TEST(AsyncCollective, LifecycleMisuseThrows) {
    comm::Cluster::run(2, NetworkModel::free(), [](comm::Communicator& c) {
        {
            AsyncGtopkAllreduce h(c, make_local(c.rank(), 0, 1000, 8), 8);
            EXPECT_THROW(h.wait(), std::logic_error);   // before start
            EXPECT_THROW(h.test(), std::logic_error);   // before start
            h.start();
            EXPECT_THROW(h.start(), std::logic_error);  // double start
            h.wait();
            EXPECT_THROW(h.wait(), std::logic_error);   // double wait
            EXPECT_TRUE(h.done());
            (void)h.result();
        }
        {
            AsyncGtopkAllreduce h(c, make_local(c.rank(), 1, 1000, 8), 8);
            EXPECT_THROW(h.result(), std::logic_error);  // before completion
            h.start();
            h.wait();
        }
    });
}

TEST(AsyncCollective, WorldSizeOneCompletesOnStart) {
    comm::Cluster::run(1, NetworkModel::free(), [](comm::Communicator& c) {
        AsyncGtopkAllreduce h(c, make_local(0, 0, 500, 16), 4);
        h.start();
        EXPECT_TRUE(h.done());  // empty op program
        h.wait();
        EXPECT_EQ(h.result().nnz(), 4u);
    });
}

// ---------------------------------------------------------------------------
// Concurrent handles: bit-identical to the blocking collective
// ---------------------------------------------------------------------------

class AsyncVsBlocking : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Worlds, AsyncVsBlocking, ::testing::Values(2, 3, 4, 5, 8));

TEST_P(AsyncVsBlocking, TwoInFlightHandlesMatchBlockingGtopk) {
    const int world = GetParam();
    constexpr int kBuckets = 3;
    std::vector<std::vector<SparseGradient>> got(
        static_cast<std::size_t>(world));
    std::vector<std::vector<SparseGradient>> want(
        static_cast<std::size_t>(world));

    comm::Cluster::run(world, NetworkModel::one_gbps_ethernet(),
                       [&](comm::Communicator& c) {
        std::vector<std::unique_ptr<AsyncGtopkAllreduce>> handles;
        for (int b = 0; b < kBuckets; ++b) {
            auto local = make_local(c.rank(), b, 4000 + b * 512, 12);
            handles.push_back(std::make_unique<AsyncGtopkAllreduce>(
                c, std::move(local), 12));
            handles.back()->set_priority(b);
            handles.back()->start();
        }
        // Drain out of issue order on purpose: completion must not depend
        // on wait() order (pump-all progresses every handle).
        for (int b = kBuckets - 1; b >= 0; --b) {
            handles[static_cast<std::size_t>(b)]->wait();
            got[static_cast<std::size_t>(c.rank())].push_back(
                handles[static_cast<std::size_t>(b)]->result());
        }
    });
    comm::Cluster::run(world, NetworkModel::one_gbps_ethernet(),
                       [&](comm::Communicator& c) {
        for (int b = kBuckets - 1; b >= 0; --b) {
            const auto local = make_local(c.rank(), b, 4000 + b * 512, 12);
            const auto res = core::gtopk_allreduce(c, local, 12);
            want[static_cast<std::size_t>(c.rank())].push_back(res.global);
        }
    });

    for (int r = 0; r < world; ++r) {
        ASSERT_EQ(got[static_cast<std::size_t>(r)].size(),
                  want[static_cast<std::size_t>(r)].size());
        for (std::size_t b = 0; b < got[static_cast<std::size_t>(r)].size(); ++b) {
            EXPECT_EQ(got[static_cast<std::size_t>(r)][b].indices,
                      want[static_cast<std::size_t>(r)][b].indices)
                << "rank " << r << " bucket " << b;
            EXPECT_EQ(got[static_cast<std::size_t>(r)][b].values,
                      want[static_cast<std::size_t>(r)][b].values)
                << "rank " << r << " bucket " << b;
        }
    }
}

// ---------------------------------------------------------------------------
// Tag sub-bands: regression that overlapping collectives never alias tags
// ---------------------------------------------------------------------------

TEST(AsyncTags, HandleBandsAreDisjointAndAboveFreshBand) {
    comm::Cluster::run(2, NetworkModel::free(), [](comm::Communicator& c) {
        AsyncGtopkAllreduce a(c, make_local(c.rank(), 0, 1000, 8), 8);
        AsyncGtopkAllreduce b(c, make_local(c.rank(), 1, 1000, 8), 8);
        a.start();
        b.start();
        const int n = a.schedule().tag_count;
        EXPECT_GE(a.tag_base(), comm::kAsyncTagBase);
        EXPECT_GE(b.tag_base(), a.tag_base() + n);  // disjoint bands
        // Blocking traffic issued BETWEEN async handles stays in the fresh
        // band, strictly below every async band.
        const int fresh = c.fresh_tags(4);
        EXPECT_GE(fresh, comm::kFreshTagBase);
        EXPECT_LT(fresh + 4, comm::kAsyncTagBase);
        a.wait();
        b.wait();
    });
}

TEST(AsyncTags, AsyncBandWrapsWithoutTouchingFreshBand) {
    comm::Cluster::run(2, NetworkModel::free(), [](comm::Communicator& c) {
        // Park the async cursor just below the wrap limit: the next handle
        // must wrap to kAsyncTagBase (SPMD lockstep), never below it.
        c.set_async_tag_cursor_for_test(std::numeric_limits<int>::max() - 1);
        AsyncGtopkAllreduce h(c, make_local(c.rank(), 0, 1000, 8), 8);
        h.start();
        EXPECT_EQ(h.tag_base(), comm::kAsyncTagBase);
        h.wait();
        // The fresh cursor is untouched by async traffic.
        EXPECT_LT(c.fresh_tag_cursor(), comm::kAsyncTagBase);
        EXPECT_GE(c.fresh_tag_cursor(), comm::kFreshTagBase);
    });
}

TEST(AsyncTags, FreshBandWrapStaysBelowAsyncBase) {
    comm::Cluster::run(2, NetworkModel::free(), [](comm::Communicator& c) {
        c.set_fresh_tag_cursor_for_test(comm::kAsyncTagBase - 2);
        std::vector<float> v(5, 1.0f);
        collectives::broadcast(c, v, 0);  // needs > 2 tags -> must wrap
        EXPECT_GE(c.fresh_tag_cursor(), comm::kFreshTagBase);
        EXPECT_LT(c.fresh_tag_cursor(), comm::kAsyncTagBase);
    });
}

// ---------------------------------------------------------------------------
// NIC timeline: modeled transfers never advance the clock; first-fit
// backfill keeps host pump order out of modeled contention
// ---------------------------------------------------------------------------

TEST(AsyncNicTimeline, SendsDoNotAdvanceClockAndBackfillGaps) {
    const auto net = NetworkModel::one_gbps_ethernet();
    comm::Cluster::run(2, net, [&](comm::Communicator& c) {
        if (c.rank() == 0) {
            const double t0 = c.clock().now_s();
            std::vector<std::byte> p1(1000), p2(1000), p3(1000);
            const double cost = net.transfer_time_s(1000);
            const double e1 = c.send_async(1, 7, std::move(p1), 0.0);
            EXPECT_DOUBLE_EQ(c.clock().now_s(), t0);  // clock untouched
            EXPECT_NEAR(e1, cost, 1e-12);
            // A far-future reservation...
            const double e2 = c.send_async(1, 8, std::move(p2), 10.0);
            EXPECT_NEAR(e2, 10.0 + cost, 1e-12);
            // ...must not delay a transfer whose data dependency allows it
            // to ride the gap right after the first transfer (host issue
            // order is NOT modeled NIC order).
            const double e3 = c.send_async(1, 9, std::move(p3), 0.0);
            EXPECT_NEAR(e3, 2 * cost, 1e-12);
            EXPECT_NEAR(c.nic_busy_until_s(), 10.0 + cost, 1e-12);
        } else {
            for (int tag : {7, 8, 9}) {
                std::optional<comm::Communicator::AsyncMsg> m;
                while (!(m = c.try_recv_async(0, tag))) {
                }
                EXPECT_EQ(m->payload.size(), 1000u);
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Bucketer
// ---------------------------------------------------------------------------

TEST(Bucketer, DefaultKeepsOneBucketPerTensor) {
    const std::vector<std::size_t> offs{0, 100, 350, 360, 1000};
    const auto buckets = fuse_buckets(offs, 0);
    ASSERT_EQ(buckets.size(), 4u);
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        EXPECT_EQ(buckets[i].begin, offs[i]);
        EXPECT_EQ(buckets[i].end, offs[i + 1]);
        EXPECT_EQ(buckets[i].priority, static_cast<int>(i));
        EXPECT_EQ(buckets[i].first_segment, static_cast<int>(i));
        EXPECT_EQ(buckets[i].last_segment, static_cast<int>(i));
    }
}

TEST(Bucketer, FusesBackwardOrderRunsToThreshold) {
    // 6 tensors of 100 floats = 400 bytes each; 1000-byte buckets fuse
    // three backward-order runs of >= 3 tensors... walking back-to-front:
    // {5,4,3} then {2,1,0}.
    const std::vector<std::size_t> offs{0, 100, 200, 300, 400, 500, 600};
    const auto buckets = fuse_buckets(offs, 1000);
    ASSERT_EQ(buckets.size(), 2u);
    // Returned in FORWARD order, contiguous, covering everything.
    EXPECT_EQ(buckets.front().begin, 0u);
    EXPECT_EQ(buckets.back().end, 600u);
    EXPECT_EQ(buckets[0].end, buckets[1].begin);
    EXPECT_EQ(buckets[0].priority, 0);  // front bucket drains first (P3)
    EXPECT_EQ(buckets[1].priority, 1);
    for (const GradBucket& b : buckets) {
        EXPECT_GE(b.size() * sizeof(float), 1000u);
    }
}

TEST(Bucketer, ReadyFractionsFollowBackwardSweep) {
    const std::vector<std::size_t> offs{0, 250, 1000};
    const auto buckets = fuse_buckets(offs, 0);
    const auto ready = train::bucket_ready_fractions(buckets, 1000);
    ASSERT_EQ(ready.size(), 2u);
    // Bucket 1 (back of the model) is ready first.
    EXPECT_DOUBLE_EQ(ready[0], 1.0);    // (1000 - 0) / 1000
    EXPECT_DOUBLE_EQ(ready[1], 0.75);   // (1000 - 250) / 1000
}

// ---------------------------------------------------------------------------
// Concurrent schedule checker
// ---------------------------------------------------------------------------

collectives::Schedule gtopk_parts(int world) {
    const std::array<collectives::Schedule, 2> parts = {
        collectives::gtopk_merge_schedule(world, 256),
        collectives::broadcast_schedule(world, 0, 256)};
    return collectives::concat_schedules("gtopk.allreduce.async", parts);
}

TEST(VerifyConcurrent, DisjointBandsPassAndOverlapIsCaught) {
    const int world = 4;
    const auto net = NetworkModel::one_gbps_ethernet();
    std::vector<collectives::Schedule> parts{gtopk_parts(world),
                                             gtopk_parts(world)};

    std::vector<int> bases{comm::kAsyncTagBase,
                           comm::kAsyncTagBase + parts[0].tag_count};
    const auto ok = analysis::verify_concurrent_schedules(parts, bases, &net);
    EXPECT_TRUE(ok.ok()) << ok.violations.front().detail;
    ASSERT_TRUE(ok.critical_path_s.has_value());
    EXPECT_GT(*ok.critical_path_s, 0.0);

    // Deliberately aliasing bands: the checker must name the overlap.
    std::vector<int> bad{comm::kAsyncTagBase, comm::kAsyncTagBase + 1};
    const auto overlap = analysis::verify_concurrent_schedules(parts, bad, &net);
    ASSERT_FALSE(overlap.ok());
    bool named = false;
    for (const auto& v : overlap.violations) {
        named = named || v.check == "band-overlap";
    }
    EXPECT_TRUE(named);

    // A base inside the user/fresh space is rejected outright.
    std::vector<int> low{0, parts[0].tag_count};
    EXPECT_FALSE(analysis::verify_concurrent_schedules(parts, low, &net).ok());
}

// ---------------------------------------------------------------------------
// Overlap model: channel parameterization
// ---------------------------------------------------------------------------

TEST(OverlapModelChannels, MoreChannelsNeverExposeMoreComm) {
    const auto net = NetworkModel::one_gbps_ethernet();
    const std::vector<std::int64_t> segs{500'000, 2'000'000, 4'000'000,
                                         6'000'000, 2'200'000};
    const auto c1 = perfmodel::overlapped_iteration(net, 16, segs, 1e-3, 0.05,
                                                    0.1, /*channels=*/1);
    const auto c2 = perfmodel::overlapped_iteration(net, 16, segs, 1e-3, 0.05,
                                                    0.1, /*channels=*/2);
    EXPECT_LE(c2.exposed_comm_s, c1.exposed_comm_s + 1e-12);
    EXPECT_LE(c2.iteration_s, c1.iteration_s + 1e-12);
    EXPECT_DOUBLE_EQ(c1.total_comm_s, c2.total_comm_s);
}

}  // namespace
