// Behavioral tests of the LSTM language model (gradient correctness is in
// nn_gradcheck_test.cpp).
#include <gtest/gtest.h>

#include <cmath>

#include "data/sequence_data.hpp"
#include "nn/model_zoo.hpp"
#include "util/rng.hpp"

namespace {

using namespace gtopk;
using nn::Batch;
using nn::LstmConfig;
using nn::make_lstm_lm;

Batch make_batch(const data::SequenceDataset& ds, std::int64_t n, std::int64_t base) {
    std::vector<std::int64_t> idx;
    for (std::int64_t i = 0; i < n; ++i) idx.push_back(base + i);
    return ds.batch(idx);
}

TEST(LstmLm, InitialLossIsNearUniform) {
    LstmConfig cfg{.vocab = 16, .embed_dim = 8, .hidden_dim = 12};
    auto model = make_lstm_lm(cfg, 1);
    data::SequenceDataset ds({.vocab = 16, .seq_len = 8}, 2);
    const float loss = model->eval_loss(make_batch(ds, 8, 0));
    EXPECT_NEAR(loss, std::log(16.0f), 0.5f);
}

TEST(LstmLm, SgdReducesLossOnMarkovData) {
    LstmConfig cfg{.vocab = 12, .embed_dim = 8, .hidden_dim = 16};
    auto model = make_lstm_lm(cfg, 3);
    data::SequenceDataset ds({.vocab = 12, .seq_len = 10, .peakedness = 10.0}, 4);
    const float initial = model->eval_loss(make_batch(ds, 16, 5000));
    for (int step = 0; step < 120; ++step) {
        (void)model->train_step_gradients(make_batch(ds, 8, step * 8));
        auto grads = model->flat_grads();
        for (auto& g : grads) g *= -0.5f;
        model->add_flat_delta(grads);
    }
    const float trained = model->eval_loss(make_batch(ds, 16, 5000));
    EXPECT_LT(trained, initial - 0.2f)
        << "LSTM failed to learn Markov structure: " << initial << " -> " << trained;
    // The chain is genuinely predictable, so loss should drop clearly
    // below the uniform log(V) = 2.48 level.
    EXPECT_LT(trained, std::log(12.0f) - 0.2f);
}

TEST(LstmLm, DeterministicTraining) {
    LstmConfig cfg{.vocab = 8, .embed_dim = 4, .hidden_dim = 6};
    data::SequenceDataset ds({.vocab = 8, .seq_len = 6}, 7);
    auto run = [&] {
        auto model = make_lstm_lm(cfg, 9);
        for (int step = 0; step < 10; ++step) {
            (void)model->train_step_gradients(make_batch(ds, 4, step * 4));
            auto g = model->flat_grads();
            for (auto& x : g) x *= -0.1f;
            model->add_flat_delta(g);
        }
        return model->flat_params();
    };
    EXPECT_EQ(run(), run());
}

TEST(LstmLm, RejectsMalformedBatches) {
    auto model = make_lstm_lm({.vocab = 8, .embed_dim = 4, .hidden_dim = 4}, 1);
    Batch bad;
    bad.x = nn::Tensor({2, 3});
    bad.x.fill(99.0f);  // token out of vocab
    bad.targets.assign(6, 0);
    EXPECT_THROW(model->train_step_gradients(bad), std::invalid_argument);

    Batch wrong_targets;
    wrong_targets.x = nn::Tensor({2, 3});
    wrong_targets.targets.assign(2, 0);  // needs N*T = 6
    EXPECT_THROW(model->train_step_gradients(wrong_targets), std::invalid_argument);
}

TEST(LstmLm, TwoLayerModelTrainsAndHasMoreParams) {
    LstmConfig one{.vocab = 10, .embed_dim = 8, .hidden_dim = 16, .num_layers = 1};
    LstmConfig two = one;
    two.num_layers = 2;
    auto m1 = make_lstm_lm(one, 3);
    auto m2 = make_lstm_lm(two, 3);
    EXPECT_GT(m2->num_params(), m1->num_params());

    data::SequenceDataset ds({.vocab = 10, .seq_len = 8, .peakedness = 10.0}, 4);
    // Deep stacks train slowly under plain SGD; use heavy-ball momentum
    // like every trainer in this repo does.
    const float initial = m2->eval_loss(make_batch(ds, 16, 5000));
    std::vector<float> velocity(m2->num_params(), 0.0f);
    for (int step = 0; step < 350; ++step) {
        (void)m2->train_step_gradients(make_batch(ds, 6, step * 6));
        const auto g = m2->flat_grads();
        std::vector<float> delta(g.size());
        for (std::size_t i = 0; i < g.size(); ++i) {
            velocity[i] = 0.6f * velocity[i] + g[i];
            delta[i] = -0.5f * velocity[i];
        }
        m2->add_flat_delta(delta);
    }
    EXPECT_LT(m2->eval_loss(make_batch(ds, 16, 5000)), initial - 0.15f);
}

TEST(LstmLm, RejectsZeroLayers) {
    EXPECT_THROW(make_lstm_lm({.vocab = 8, .embed_dim = 4, .hidden_dim = 4,
                               .num_layers = 0},
                              1),
                 std::invalid_argument);
}

TEST(LstmLm, AccuracyBeatsChanceAfterTraining) {
    LstmConfig cfg{.vocab = 10, .embed_dim = 8, .hidden_dim = 16};
    auto model = make_lstm_lm(cfg, 5);
    data::SequenceDataset ds({.vocab = 10, .seq_len = 8, .peakedness = 12.0}, 6);
    for (int step = 0; step < 150; ++step) {
        (void)model->train_step_gradients(make_batch(ds, 8, step * 8));
        auto g = model->flat_grads();
        for (auto& x : g) x *= -0.5f;
        model->add_flat_delta(g);
    }
    const double acc = model->eval_accuracy(make_batch(ds, 32, 6000));
    EXPECT_GT(acc, 0.2);  // chance is 0.1
}

}  // namespace
