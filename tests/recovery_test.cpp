// Self-healing runtime tests (DESIGN.md §12): the reliable delivery layer
// must mask probabilistic drop/corrupt plans bit-identically, and the
// membership + checkpoint + regroup machinery must carry a training run
// through a mid-run rank kill to a converged, replica-consistent finish on
// the survivor world.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <thread>

#include "chaos_common.hpp"
#include "comm/membership.hpp"
#include "comm/reliable_transport.hpp"
#include "comm/tags.hpp"
#include "train/checkpoint.hpp"

namespace {

using namespace gtopk;
using chaos::ChaosEventLog;
using chaos::Outcome;
using chaos::TinyTrainScenario;
using comm::FaultInjectingTransport;
using comm::FaultPlan;
using comm::FaultRule;
using comm::MembershipConfig;
using comm::MembershipService;
using comm::MembershipView;
using comm::ReliableTransport;
using train::Algorithm;

::testing::Environment* const kRecoveryLogEnv =
    ::testing::AddGlobalTestEnvironment(new chaos::ChaosLogEnvironment);

/// ~10% loss on every edge plus payload corruption — unmaskable for the
/// bare fault transport (chaos_test proves drops surface CommError), fully
/// maskable once ReliableTransport sits on top.
FaultPlan lossy_plan(std::uint64_t seed) {
    FaultRule drop;
    drop.drop_prob = 0.10;
    FaultRule corrupt;
    corrupt.corrupt_prob = 0.05;
    return chaos::seeded_plan(seed).add(drop).add(corrupt);
}

/// Short heartbeat/suspicion intervals so failure detection fits in test
/// time without weakening the logic under test.
MembershipConfig fast_membership(std::uint64_t seed) {
    MembershipConfig cfg;
    cfg.seed = seed;
    cfg.heartbeat_interval_s = 0.002;
    cfg.suspect_after_s = 0.050;
    return cfg;
}

// ---------------------------------------------------------------------------
// Reliable delivery: drops and corruption become invisible

class ReliableSweep : public ::testing::TestWithParam<Algorithm> {};
INSTANTIATE_TEST_SUITE_P(Algorithms, ReliableSweep,
                         ::testing::Values(Algorithm::GtopkSsgd, Algorithm::TopkSsgd,
                                           Algorithm::DenseSsgd,
                                           Algorithm::NaiveGtopkSsgd));

TEST_P(ReliableSweep, RetransmitMasksDropAndCorruptionBitIdentically) {
    const Algorithm algo = GetParam();
    const std::uint64_t seed = chaos::base_seed();
    TinyTrainScenario scenario(4);
    const auto clean = scenario.run_clean(algo);

    ReliableTransport reliable(
        std::make_unique<FaultInjectingTransport>(4, lossy_plan(seed)));
    auto& faulty = static_cast<FaultInjectingTransport&>(reliable.inner());
    train::TrainConfig cfg = scenario.config(algo);
    cfg.transport = &reliable;
    cfg.recv_timeout_s = 10.0;
    std::string error;
    train::TrainResult result;
    const Outcome outcome =
        chaos::classify([&] { result = scenario.run(cfg); }, &error);
    ChaosEventLog::instance().record(
        std::string("reliable_lossy/") + train::algorithm_name(algo), seed,
        outcome, faulty.counts());

    ASSERT_EQ(outcome, Outcome::Completed) << error;
    // The plan actually destroyed traffic...
    EXPECT_GT(faulty.counts().dropped + faulty.counts().corrupted, 0u);
    // ...the reliable layer recovered every loss...
    const comm::ReliableCounts rc = reliable.counts();
    EXPECT_GT(rc.retransmits, 0u);
    // ...and the training run never noticed: parameters and per-epoch
    // losses equal the fault-free run bit for bit.
    ASSERT_EQ(result.final_params, clean.final_params);
    ASSERT_EQ(result.epochs.size(), clean.epochs.size());
    for (std::size_t e = 0; e < clean.epochs.size(); ++e) {
        EXPECT_EQ(result.epochs[e].train_loss, clean.epochs[e].train_loss);
    }
}

TEST(RecoveryTest, ReliableOverCleanFabricIsPurePassthrough) {
    TinyTrainScenario scenario(4);
    const auto clean = scenario.run_clean(Algorithm::GtopkSsgd);
    ReliableTransport reliable(std::make_unique<comm::InProcTransport>(4));
    train::TrainConfig cfg = scenario.config(Algorithm::GtopkSsgd);
    cfg.transport = &reliable;
    const auto result = scenario.run(cfg);
    EXPECT_EQ(result.final_params, clean.final_params);
    const comm::ReliableCounts rc = reliable.counts();
    EXPECT_GT(rc.sent, 0u);
    EXPECT_EQ(rc.corrupt_dropped, 0u);
    // A very slow receiver (e.g. under TSan) may fire its backoff while a
    // message is still in flight and recover it preemptively; the original
    // then arrives as a duplicate. Exactly-once holds regardless: every
    // spurious recovery is matched by exactly one dedup.
    EXPECT_EQ(rc.retransmits, rc.dup_dropped);
}

// ---------------------------------------------------------------------------
// Elastic regroup: a mid-run rank kill shrinks the world and finishes

struct ElasticRun {
    Outcome outcome = Outcome::Completed;
    std::string error;
    train::TrainResult result;
    comm::FaultCounts counts;
};

/// Kill `victim` at `kill_step` under membership + checkpoints; optionally
/// stack the reliable layer (with extra loss) under the membership plane.
/// `patch` tweaks the train config before the run (momentum mode etc.).
ElasticRun run_elastic(const TinyTrainScenario& scenario, Algorithm algo,
                       FaultPlan plan, std::uint64_t seed, bool reliable_layer,
                       const std::function<void(train::TrainConfig&)>& patch = {}) {
    std::unique_ptr<FaultInjectingTransport> faulty_owner;
    std::unique_ptr<ReliableTransport> reliable_owner;
    FaultInjectingTransport* faulty = nullptr;
    comm::Transport* top = nullptr;
    if (reliable_layer) {
        reliable_owner = std::make_unique<ReliableTransport>(
            std::make_unique<FaultInjectingTransport>(scenario.world, plan));
        faulty = static_cast<FaultInjectingTransport*>(&reliable_owner->inner());
        top = reliable_owner.get();
    } else {
        faulty_owner = std::make_unique<FaultInjectingTransport>(scenario.world, plan);
        faulty = faulty_owner.get();
        top = faulty_owner.get();
    }
    MembershipService membership(*top, fast_membership(seed));
    train::TrainConfig cfg = scenario.config(algo);
    cfg.transport = top;
    cfg.membership = &membership;
    cfg.recv_timeout_s = 0.25;
    cfg.checkpoint_every = 4;
    if (patch) patch(cfg);
    ElasticRun out;
    out.outcome = chaos::classify([&] { out.result = scenario.run(cfg); }, &out.error);
    out.counts = faulty->counts();
    return out;
}

TEST(RecoveryTest, KillOneRankRegroupsAndConvergesOnSurvivors) {
    const std::uint64_t seed = chaos::base_seed();
    TinyTrainScenario scenario(4);
    FaultPlan plan = chaos::seeded_plan(seed);
    plan.kill_at_step(/*rank=*/3, /*step=*/9);  // mid second epoch
    const ElasticRun run =
        run_elastic(scenario, Algorithm::GtopkSsgd, plan, seed, false);
    ChaosEventLog::instance().record("elastic_kill_rank3_step9", seed, run.outcome,
                                     run.counts);
    ASSERT_EQ(run.outcome, Outcome::Completed) << run.error;

    // The survivor world is exactly the other three ranks...
    EXPECT_EQ(run.result.final_members, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(run.result.final_membership_epoch, 1);
    EXPECT_EQ(run.result.regroups, 1);
    // ...all holding bit-identical replicas (the §12 consistency contract).
    ASSERT_EQ(run.result.survivor_params.size(), 3u);
    for (std::size_t i = 1; i < run.result.survivor_params.size(); ++i) {
        ASSERT_EQ(run.result.survivor_params[i], run.result.survivor_params[0])
            << "survivor replica divergence at member index " << i;
    }
    // The run actually trained: all epochs reported and loss improved.
    ASSERT_EQ(run.result.epochs.size(), 2u);
    EXPECT_LT(run.result.epochs.back().train_loss,
              run.result.epochs.front().train_loss);
}

TEST(RecoveryTest, KillPlusPacketLossWithReliableLayerStillRecovers) {
    const std::uint64_t seed = chaos::base_seed();
    TinyTrainScenario scenario(4);
    FaultPlan plan = lossy_plan(seed);
    plan.kill_at_step(/*rank=*/2, /*step=*/6);
    const ElasticRun run =
        run_elastic(scenario, Algorithm::GtopkSsgd, plan, seed, true);
    ChaosEventLog::instance().record("elastic_kill_plus_loss", seed, run.outcome,
                                     run.counts);
    ASSERT_EQ(run.outcome, Outcome::Completed) << run.error;
    // Packet loss is masked by retransmission, yet the kill still surfaced
    // through the reliable layer (dead buffers are not recoverable) and the
    // run finished on the survivor world.
    EXPECT_EQ(run.result.final_members, (std::vector<int>{0, 1, 3}));
    ASSERT_EQ(run.result.survivor_params.size(), 3u);
    for (std::size_t i = 1; i < run.result.survivor_params.size(); ++i) {
        ASSERT_EQ(run.result.survivor_params[i], run.result.survivor_params[0]);
    }
}

TEST(RecoveryTest, LocalMomentumRegroupKeepsRankLocalVelocity) {
    // DGC-style LocalCorrection velocity is built from each rank's OWN
    // gradient stream — rank-local like the residual — so the post-regroup
    // resync must restore it from the rank's own snapshot (broadcasting
    // rank 0's would silently overwrite every survivor's momentum
    // correction). This pins the LocalCorrection resync path end to end:
    // the run completes and survivors stay bit-identical.
    const std::uint64_t seed = chaos::base_seed();
    TinyTrainScenario scenario(4);
    FaultPlan plan = chaos::seeded_plan(seed);
    plan.kill_at_step(/*rank=*/3, /*step=*/9);
    const ElasticRun run = run_elastic(
        scenario, Algorithm::GtopkSsgd, plan, seed, false,
        [](train::TrainConfig& cfg) {
            cfg.momentum_mode = train::TrainConfig::MomentumMode::LocalCorrection;
        });
    ChaosEventLog::instance().record("elastic_kill_local_momentum", seed,
                                     run.outcome, run.counts);
    ASSERT_EQ(run.outcome, Outcome::Completed) << run.error;
    EXPECT_EQ(run.result.final_members, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(run.result.regroups, 1);
    ASSERT_EQ(run.result.survivor_params.size(), 3u);
    for (std::size_t i = 1; i < run.result.survivor_params.size(); ++i) {
        ASSERT_EQ(run.result.survivor_params[i], run.result.survivor_params[0])
            << "survivor replica divergence at member index " << i;
    }
    ASSERT_EQ(run.result.epochs.size(), 2u);
}

TEST(RecoveryTest, ElasticSeedSweepSurvivorsAlwaysConsistent) {
    TinyTrainScenario scenario(4);
    for (std::uint64_t s = 0; s < 3; ++s) {
        const std::uint64_t seed = chaos::base_seed() + s;
        FaultPlan plan = chaos::seeded_plan(seed);
        const int victim = static_cast<int>(seed % 4);
        const std::int64_t kill_step = 3 + static_cast<std::int64_t>(seed % 10);
        plan.kill_at_step(victim, kill_step);
        const ElasticRun run =
            run_elastic(scenario, Algorithm::GtopkSsgd, plan, seed, false);
        ChaosEventLog::instance().record("elastic_sweep", seed, run.outcome,
                                         run.counts);
        ASSERT_EQ(run.outcome, Outcome::Completed)
            << "seed " << seed << " victim " << victim << ": " << run.error;
        ASSERT_EQ(run.result.final_members.size(), 3u) << "seed " << seed;
        for (int member : run.result.final_members) {
            EXPECT_NE(member, victim) << "seed " << seed;
        }
        for (std::size_t i = 1; i < run.result.survivor_params.size(); ++i) {
            ASSERT_EQ(run.result.survivor_params[i], run.result.survivor_params[0])
                << "seed " << seed << " member index " << i;
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpoint store: cadence, ring bound, rollback lookup

TEST(RecoveryTest, CheckpointRoundTripIsExact) {
    train::CheckpointStore store(/*interval=*/4, /*keep=*/4);
    EXPECT_TRUE(store.due(0));
    EXPECT_FALSE(store.due(3));
    EXPECT_TRUE(store.due(8));
    EXPECT_EQ(store.latest_step(), -1);

    for (std::int64_t step : {0, 4, 8, 12}) {
        train::Checkpoint ck;
        ck.step = step;
        ck.params = {static_cast<float>(step), 1.5f};
        ck.velocity = {static_cast<float>(step) * 0.5f};
        ck.residual = {static_cast<float>(step) * 0.25f};
        store.save(std::move(ck));
    }
    EXPECT_EQ(store.size(), 4u);
    EXPECT_EQ(store.latest_step(), 12);

    // Exact-step lookup returns the snapshot bit for bit.
    const auto at8 = store.at(8);
    ASSERT_TRUE(at8.has_value());
    EXPECT_EQ(at8->params, (std::vector<float>{8.0f, 1.5f}));
    EXPECT_EQ(at8->velocity, (std::vector<float>{4.0f}));
    EXPECT_EQ(at8->residual, (std::vector<float>{2.0f}));

    // latest_at_or_before picks the newest not-newer snapshot.
    EXPECT_EQ(store.latest_at_or_before(11)->step, 8);
    EXPECT_EQ(store.latest_at_or_before(12)->step, 12);

    // The ring drops the oldest beyond `keep`...
    train::Checkpoint ck16;
    ck16.step = 16;
    store.save(std::move(ck16));
    EXPECT_EQ(store.size(), 4u);
    EXPECT_FALSE(store.at(0).has_value());
    // ...and replayed steps never re-save (rollback does not rewrite history):
    // the step-8 snapshot keeps its original contents.
    train::Checkpoint replay;
    replay.step = 8;
    replay.params = {999.0f};
    store.save(std::move(replay));
    EXPECT_EQ(store.latest_step(), 16);
    EXPECT_EQ(store.size(), 4u);
    EXPECT_EQ(store.at(8)->params, (std::vector<float>{8.0f, 1.5f}));
}

TEST(RecoveryTest, CheckpointTruncateDropsAbandonedTimeline) {
    // A rollback rewinds to the newest snapshot ALL survivors hold;
    // snapshots newer than that were taken on the pre-failure world and
    // the survivor-world replay diverges from them. truncate_after prunes
    // that abandoned timeline so a second failure mid-replay can never
    // pick a stale snapshot ahead of current progress.
    train::CheckpointStore store(/*interval=*/4, /*keep=*/4);
    for (std::int64_t step : {0, 4, 8, 12}) {
        train::Checkpoint ck;
        ck.step = step;
        ck.params = {static_cast<float>(step)};
        store.save(std::move(ck));
    }
    store.truncate_after(4);
    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(store.latest_step(), 4);
    EXPECT_FALSE(store.at(8).has_value());
    EXPECT_FALSE(store.at(12).has_value());
    // The replay re-saves the survivor timeline: the rollback step itself
    // stays a no-op, steps beyond it land as fresh snapshots.
    train::Checkpoint replay4;
    replay4.step = 4;
    replay4.params = {999.0f};
    store.save(std::move(replay4));
    EXPECT_EQ(store.at(4)->params, (std::vector<float>{4.0f}));
    train::Checkpoint fresh8;
    fresh8.step = 8;
    fresh8.params = {80.0f};
    store.save(std::move(fresh8));
    EXPECT_EQ(store.latest_step(), 8);
    EXPECT_EQ(store.at(8)->params, (std::vector<float>{80.0f}));
}

// ---------------------------------------------------------------------------
// Epoch discipline: stale traffic is rejected deterministically

TEST(RecoveryTest, StaleEpochMessagesAreRejectedAtTheMailbox) {
    comm::InProcTransport transport(2);
    comm::Message stale;
    stale.source = 1;
    stale.tag = comm::kFreshTagBase + 5;
    stale.epoch = 0;
    stale.payload = {std::byte{1}, std::byte{2}, std::byte{3}};
    transport.deliver(0, stale);  // queued before the regroup

    transport.begin_epoch(/*rank=*/0, /*epoch=*/1);
    // The queued epoch-0 message is purged; a fresh attempt to deliver more
    // epoch-0 traffic (the straggler) is rejected at push.
    transport.deliver(0, stale);
    EXPECT_FALSE(transport.try_receive(0, 1, stale.tag).has_value());
    EXPECT_EQ(transport.mailbox(0).stale_rejected(), 2u);

    // Current-epoch traffic flows normally.
    comm::Message fresh = stale;
    fresh.epoch = 1;
    transport.deliver(0, fresh);
    const auto got = transport.try_receive(0, 1, stale.tag);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->payload, fresh.payload);
}

TEST(RecoveryTest, ReliableLayerSkipsStaleEpochsOnRecovery) {
    // A retransmit buffer holding old-epoch messages must not resurrect
    // them after begin_epoch: recovery advances past them (stale_skipped)
    // instead of delivering them into the new world.
    ReliableTransport reliable(std::make_unique<comm::InProcTransport>(2));
    comm::Message msg;
    msg.source = 1;
    msg.tag = comm::kFreshTagBase + 9;
    msg.epoch = 0;
    msg.payload = {std::byte{42}};
    reliable.deliver(0, msg);
    reliable.begin_epoch(/*rank=*/0, /*epoch=*/1);
    EXPECT_FALSE(reliable.try_receive(0, 1, msg.tag).has_value());

    msg.epoch = 1;
    msg.payload = {std::byte{43}};
    reliable.deliver(0, msg);
    const auto got = reliable.receive_for(0, 1, msg.tag, 1.0);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->payload, std::vector<std::byte>{std::byte{43}});
}

// ---------------------------------------------------------------------------
// Failure detector: heartbeats, suspicion, agreement

TEST(RecoveryTest, SilentRankBecomesSuspected) {
    comm::InProcTransport transport(3);
    MembershipService membership(transport, fast_membership(7));
    // Ranks 0 and 1 gossip; rank 2 never ticks (its heartbeats never start).
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(500);
    std::vector<int> suspects;
    while (std::chrono::steady_clock::now() < deadline) {
        membership.tick(0);
        membership.tick(1);
        suspects = membership.suspected(0);
        if (!suspects.empty()) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(suspects, std::vector<int>{2});
    EXPECT_TRUE(membership.suspected(1) == std::vector<int>{2});
    EXPECT_GT(membership.heartbeats_sent(), 0u);
    // The gossiping peers never suspect each other.
    for (int s : membership.suspected(0)) EXPECT_NE(s, 1);
}

TEST(RecoveryTest, RegroupProducesIdenticalViewsOnAllSurvivors) {
    comm::InProcTransport transport(4);
    MembershipService membership(transport, fast_membership(11));
    membership.leave(2);
    MembershipView views[3];
    std::thread t0([&] { views[0] = membership.regroup(0); });
    std::thread t1([&] { views[1] = membership.regroup(1); });
    std::thread t3([&] { views[2] = membership.regroup(3); });
    t0.join();
    t1.join();
    t3.join();
    for (const MembershipView& v : views) {
        EXPECT_EQ(v.epoch, 1);
        EXPECT_EQ(v.members, (std::vector<int>{0, 1, 3}));
    }
    EXPECT_EQ(membership.epoch(), 1);
    EXPECT_FALSE(membership.alive(2));
    EXPECT_TRUE(membership.alive(0));
}

TEST(RecoveryTest, RegroupWithoutMajorityQuorumAborts) {
    // One joiner out of three live members is a minority: grace expiry
    // must abort the round, never finalize a view the majority is not in.
    comm::InProcTransport transport(3);
    MembershipConfig cfg = fast_membership(5);
    cfg.join_grace_s = 0.05;
    MembershipService membership(transport, cfg);
    EXPECT_THROW(membership.regroup(0), std::runtime_error);
    EXPECT_EQ(membership.epoch(), 0);  // nothing was finalized
}

TEST(RecoveryTest, MajorityFinalizesAndExcludedStragglerCannotRejoin) {
    comm::InProcTransport transport(3);
    MembershipConfig cfg = fast_membership(6);
    cfg.join_grace_s = 0.1;
    MembershipService membership(transport, cfg);
    // Ranks 0 and 1 join; rank 2 — live but stuck — never does. The
    // majority (2 of 3) finalizes at grace expiry without it.
    MembershipView v0, v1;
    std::thread t0([&] { v0 = membership.regroup(0); });
    std::thread t1([&] { v1 = membership.regroup(1); });
    t0.join();
    t1.join();
    EXPECT_EQ(v0.epoch, 1);
    EXPECT_EQ(v0.members, (std::vector<int>{0, 1}));
    EXPECT_EQ(v1.epoch, v0.epoch);
    EXPECT_EQ(v1.members, v0.members);
    // The voted-out straggler cannot start a round of its own — the hole
    // that would let it finalize a singleton view with a higher epoch and
    // train solo past every survivor's epoch floor.
    EXPECT_THROW(membership.regroup(2), std::invalid_argument);
    EXPECT_EQ(membership.epoch(), 1);
}

TEST(RecoveryTest, TwoRankDeathDuringInProgressRegroupFinalizesSurvivors) {
    // Ranks 0 and 1 enter a regroup round that CANNOT finalize yet (2 of 4
    // live is not a strict majority); ranks 2 and 3 then die mid-round.
    // Each leave() must wake the waiters and re-evaluate: once the live set
    // shrinks to exactly the joiner set, the fast path finalizes without
    // waiting out the grace window. Pinned behavior for the FSM extraction
    // — membership_evaluate drives the same verdicts the inline logic did.
    comm::InProcTransport transport(5);
    MembershipService membership(transport, fast_membership(21));
    membership.leave(4);  // down to live {0,1,2,3} before the round starts
    MembershipView v0, v1;
    std::thread t0([&] { v0 = membership.regroup(0); });
    std::thread t1([&] { v1 = membership.regroup(1); });
    // Let both joiners reach the in-round wait, then kill two ranks while
    // the round is in flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_EQ(membership.epoch(), 0);  // round still open: no quorum yet
    membership.leave(2);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    membership.leave(3);
    t0.join();
    t1.join();
    EXPECT_EQ(v0.epoch, 1);
    EXPECT_EQ(v0.members, (std::vector<int>{0, 1}));
    EXPECT_EQ(v1.epoch, v0.epoch);
    EXPECT_EQ(v1.members, v0.members);
    EXPECT_EQ(membership.epoch(), 1);
}

TEST(RecoveryTest, JoinerArrivingInGraceWindowOfDeathRoundIsIncluded) {
    // A death opens a regroup round; a live straggler joins the SAME round
    // inside the grace window. It must land in the finalized view — the
    // fast path completes the instant the last live member joins, and all
    // three observers agree. Pinned behavior for the FSM extraction.
    comm::InProcTransport transport(4);
    MembershipConfig cfg = fast_membership(22);
    cfg.join_grace_s = 5.0;  // generous: the test must finish via fast path
    MembershipService membership(transport, cfg);
    membership.leave(3);
    MembershipView v0, v1, v2;
    std::thread t0([&] { v0 = membership.regroup(0); });
    std::thread t1([&] { v1 = membership.regroup(1); });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_EQ(membership.epoch(), 0);  // waiting on the straggler
    std::thread t2([&] { v2 = membership.regroup(2); });
    t0.join();
    t1.join();
    t2.join();
    for (const MembershipView* v : {&v0, &v1, &v2}) {
        EXPECT_EQ(v->epoch, 1);
        EXPECT_EQ(v->members, (std::vector<int>{0, 1, 2}));
    }
    EXPECT_EQ(membership.epoch(), 1);
}

TEST(RecoveryTest, ElasticModeRequiresDeadlineBelowJoinGrace) {
    // The receive-deadline cascade is what routes every survivor into the
    // regroup round; it must fire before the round's grace window can
    // expire, or stragglers get voted out of a healthy world.
    TinyTrainScenario scenario(4);
    comm::InProcTransport transport(4);
    MembershipService membership(transport, fast_membership(1));
    train::TrainConfig cfg = scenario.config(Algorithm::GtopkSsgd);
    cfg.transport = &transport;
    cfg.membership = &membership;
    cfg.checkpoint_every = 4;
    cfg.recv_timeout_s = 5.0;  // >= default join_grace_s (2.0)
    EXPECT_THROW(scenario.run(cfg), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Virtual-clock receive deadlines: timeout OUTCOMES depend on modeled
// arrivals only, so a run that completes under the virtual deadline is
// bit-identical to the host-clock run regardless of host scheduling.

TEST(RecoveryTest, VirtualDeadlineRunMatchesHostDeadlineRun) {
    TinyTrainScenario scenario(4);
    const auto clean = scenario.run_clean(Algorithm::GtopkSsgd);

    train::TrainConfig cfg = scenario.config(Algorithm::GtopkSsgd);
    cfg.recv_timeout_s = 5.0;  // virtual seconds; free network arrives at 0
    cfg.recv_deadline_clock = comm::DeadlineClock::Virtual;
    const auto result = scenario.run(cfg);
    EXPECT_EQ(result.final_params, clean.final_params);
}

TEST(RecoveryTest, VirtualDeadlineDiscardsLateArrivalDeterministically) {
    comm::InProcTransport transport(2);
    comm::Message late;
    late.source = 1;
    late.tag = comm::kFreshTagBase + 1;
    late.arrival_time_s = 3.0;  // modeled arrival past the deadline
    late.payload = {std::byte{9}};
    transport.deliver(0, late);
    // Deadline at virtual t=2.0: the matching message exists but arrives
    // too late on the modeled clock — deterministic timeout, message
    // consumed so a later wait cannot nondeterministically succeed.
    EXPECT_FALSE(transport
                     .receive_for_virtual(0, 1, late.tag,
                                          /*max_arrival_s=*/2.0,
                                          /*host_grace_s=*/0.05)
                     .has_value());
    EXPECT_FALSE(transport
                     .receive_for_virtual(0, 1, late.tag,
                                          /*max_arrival_s=*/10.0,
                                          /*host_grace_s=*/0.05)
                     .has_value());
}

}  // namespace
