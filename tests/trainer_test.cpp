// Distributed trainer tests: every algorithm converges on a learnable
// synthetic task, replicas stay consistent, the error-feedback invariant
// holds, and warmup schedules are honored.
#include <gtest/gtest.h>

#include "data/sampler.hpp"
#include "data/synthetic_images.hpp"
#include "nn/model_zoo.hpp"
#include "train/trainer.hpp"

namespace {

using namespace gtopk;
using comm::NetworkModel;
using train::Algorithm;
using train::TrainConfig;
using train::TrainResult;

struct Harness {
    data::SyntheticImageDataset dataset;
    data::ShardedSampler sampler;
    nn::MlpConfig mlp;
    std::int64_t batch;

    explicit Harness(int world, std::int64_t batch_size = 16)
        : dataset(
              []() {
                  data::SyntheticImageDataset::Config cfg;
                  cfg.image_size = 8;
                  cfg.noise_std = 0.6f;
                  return cfg;
              }(),
              1234),
          sampler(8192, 1024, world, 99),
          batch(batch_size) {
        mlp.input_dim = dataset.feature_dim();
        mlp.hidden_dims = {32, 16};
        mlp.classes = 10;
    }

    train::ModelFactory factory() const {
        return [cfg = mlp](std::uint64_t seed) { return nn::make_mlp(cfg, seed); };
    }
    train::TrainBatchProvider train_batches() const {
        return [this](std::int64_t step, int rank) {
            return dataset.batch_flat(sampler.batch_indices(step, rank, batch));
        };
    }
    train::EvalBatchProvider eval_batch() const {
        return [this] { return dataset.batch_flat(sampler.test_indices(256)); };
    }
};

TrainResult run(int world, const TrainConfig& config, const Harness& h) {
    return train::train_distributed(world, NetworkModel::free(), config, h.factory(),
                                    h.train_batches(), h.eval_batch());
}

class AlgorithmSweep : public ::testing::TestWithParam<Algorithm> {};
INSTANTIATE_TEST_SUITE_P(All, AlgorithmSweep,
                         ::testing::Values(Algorithm::DenseSsgd, Algorithm::TopkSsgd,
                                           Algorithm::GtopkSsgd,
                                           Algorithm::NaiveGtopkSsgd,
                                           Algorithm::SelectKFromKP,
                                           Algorithm::LayerwiseGtopkSsgd));

TEST_P(AlgorithmSweep, LossDecreasesAndAccuracyBeatsChance) {
    Harness h(4);
    TrainConfig config;
    config.algorithm = GetParam();
    config.epochs = 6;
    config.iters_per_epoch = 30;
    config.lr = 0.05f;
    config.density = 0.02;
    const TrainResult result = run(4, config, h);
    ASSERT_EQ(result.epochs.size(), 6u);
    EXPECT_LT(result.epochs.back().train_loss, result.epochs.front().train_loss);
    EXPECT_GT(result.epochs.back().val_accuracy, 0.3);  // chance = 0.1
}

TEST_P(AlgorithmSweep, InvariantsHoldUnderChecking) {
    Harness h(4);
    TrainConfig config;
    config.algorithm = GetParam();
    config.epochs = 2;
    config.iters_per_epoch = 10;
    config.density = 0.05;
    config.check_invariants = true;  // error feedback + replica consistency
    EXPECT_NO_THROW(run(4, config, h));
}

TEST_P(AlgorithmSweep, DeterministicAcrossRuns) {
    Harness h(2);
    TrainConfig config;
    config.algorithm = GetParam();
    config.epochs = 2;
    config.iters_per_epoch = 8;
    config.density = 0.05;
    const auto a = run(2, config, h);
    const auto b = run(2, config, h);
    EXPECT_EQ(a.final_params, b.final_params);
    EXPECT_EQ(a.epochs.back().train_loss, b.epochs.back().train_loss);
}

TEST(Trainer, GtopkTracksDenseClosely) {
    // The paper's headline convergence claim (Fig. 5): gTop-k S-SGD reaches
    // a final training loss close to dense S-SGD.
    Harness h(4);
    TrainConfig dense;
    dense.algorithm = Algorithm::DenseSsgd;
    dense.epochs = 8;
    dense.iters_per_epoch = 40;
    TrainConfig gtopk = dense;
    gtopk.algorithm = Algorithm::GtopkSsgd;
    gtopk.density = 0.01;
    gtopk.warmup_densities = {0.25, 0.0725, 0.015};
    const auto rd = run(4, dense, h);
    const auto rg = run(4, gtopk, h);
    EXPECT_LT(rg.epochs.back().train_loss,
              rd.epochs.back().train_loss + 0.35)
        << "gTop-k diverged from the dense baseline";
}

TEST(Trainer, WarmupDensitiesAreApplied) {
    Harness h(2);
    TrainConfig config;
    config.algorithm = Algorithm::GtopkSsgd;
    config.epochs = 5;
    config.iters_per_epoch = 4;
    config.density = 0.001;
    config.warmup_densities = {0.25, 0.0725, 0.015, 0.004};
    const auto result = run(2, config, h);
    ASSERT_EQ(result.epochs.size(), 5u);
    EXPECT_DOUBLE_EQ(result.epochs[0].density, 0.25);
    EXPECT_DOUBLE_EQ(result.epochs[1].density, 0.0725);
    EXPECT_DOUBLE_EQ(result.epochs[3].density, 0.004);
    EXPECT_DOUBLE_EQ(result.epochs[4].density, 0.001);
}

TEST(Trainer, SparseAlgorithmsMoveFarFewerBytes) {
    Harness h(4);
    TrainConfig dense;
    dense.algorithm = Algorithm::DenseSsgd;
    dense.epochs = 1;
    dense.iters_per_epoch = 10;
    TrainConfig gtopk = dense;
    gtopk.algorithm = Algorithm::GtopkSsgd;
    gtopk.density = 0.005;
    const auto rd = run(4, dense, h);
    const auto rg = run(4, gtopk, h);
    EXPECT_LT(rg.rank0_comm.bytes_sent, rd.rank0_comm.bytes_sent / 10);
}

TEST(Trainer, GtopkVirtualCommBeatsTopkOnLargeWorld) {
    // Needs the bandwidth-dominated regime: a model big enough (and k big
    // enough) that the AllGather's 2(P-1)k*beta term dominates the tree's
    // extra latency. 16 workers, ~232k params, rho = 0.1 -> k ~ 23k.
    Harness h(16);
    h.mlp.hidden_dims = {512, 256};
    TrainConfig topk;
    topk.algorithm = Algorithm::TopkSsgd;
    topk.epochs = 1;
    topk.iters_per_epoch = 4;
    topk.density = 0.1;
    TrainConfig gtopk = topk;
    gtopk.algorithm = Algorithm::GtopkSsgd;
    auto run_net = [&](const TrainConfig& c) {
        return train::train_distributed(16, NetworkModel::one_gbps_ethernet(), c,
                                        h.factory(), h.train_batches(), nullptr);
    };
    const auto rt = run_net(topk);
    const auto rg = run_net(gtopk);
    EXPECT_LT(rg.mean_comm_virtual_s, rt.mean_comm_virtual_s);
}

TEST(Trainer, MomentumAcceleratesConvergence) {
    Harness h(2);
    TrainConfig with;
    with.algorithm = Algorithm::GtopkSsgd;
    with.epochs = 4;
    with.iters_per_epoch = 25;
    with.density = 0.02;
    with.momentum = 0.9f;
    TrainConfig without = with;
    without.momentum = 0.0f;
    const auto rw = run(2, with, h);
    const auto ro = run(2, without, h);
    EXPECT_LT(rw.epochs.back().train_loss, ro.epochs.back().train_loss + 0.05);
}

TEST(Trainer, SingleWorkerDegeneratesToSgd) {
    Harness h(1);
    TrainConfig config;
    config.algorithm = Algorithm::GtopkSsgd;
    config.epochs = 3;
    config.iters_per_epoch = 30;
    config.density = 0.05;
    const auto result = run(1, config, h);
    EXPECT_LT(result.epochs.back().train_loss, result.epochs.front().train_loss);
}

TEST(Trainer, AlgorithmNamesAreStable) {
    EXPECT_STREQ(train::algorithm_name(Algorithm::DenseSsgd), "Dense S-SGD");
    EXPECT_STREQ(train::algorithm_name(Algorithm::GtopkSsgd), "gTop-k S-SGD");
}

}  // namespace
