#include <gtest/gtest.h>

#include <cmath>

#include "sparse/sparse_gradient.hpp"
#include "sparse/topk_merge.hpp"
#include "sparse/topk_select.hpp"
#include "sparse/wire.hpp"
#include "util/rng.hpp"

namespace {

using gtopk::sparse::add;
using gtopk::sparse::from_mask;
using gtopk::sparse::from_pairs;
using gtopk::sparse::SparseGradient;
using gtopk::sparse::sparse_topk;
using gtopk::sparse::topk_merge;

SparseGradient make(std::int64_t m, std::vector<std::int32_t> idx,
                    std::vector<float> vals) {
    SparseGradient g;
    g.dense_size = m;
    g.indices = std::move(idx);
    g.values = std::move(vals);
    g.validate();
    return g;
}

TEST(SparseGradient, ValidateAcceptsCanonical) {
    EXPECT_NO_THROW(make(10, {0, 3, 9}, {1, 2, 3}));
    EXPECT_NO_THROW(make(10, {}, {}));
}

TEST(SparseGradient, ValidateRejectsBrokenInvariants) {
    SparseGradient g;
    g.dense_size = 5;
    g.indices = {1, 1};
    g.values = {1, 2};
    EXPECT_THROW(g.validate(), std::invalid_argument);  // duplicate
    g.indices = {3, 1};
    EXPECT_THROW(g.validate(), std::invalid_argument);  // unsorted
    g.indices = {1, 7};
    EXPECT_THROW(g.validate(), std::invalid_argument);  // out of range
    g.indices = {1};
    EXPECT_THROW(g.validate(), std::invalid_argument);  // |V| != |I|
}

TEST(SparseGradient, ToDenseAndScatter) {
    const auto g = make(6, {1, 4}, {2.5f, -1.0f});
    const auto dense = g.to_dense();
    const std::vector<float> expect{0, 2.5f, 0, 0, -1.0f, 0};
    EXPECT_EQ(dense, expect);

    std::vector<float> acc(6, 1.0f);
    g.scatter_add(acc);
    EXPECT_EQ(acc[1], 3.5f);
    EXPECT_EQ(acc[4], 0.0f);
    EXPECT_EQ(acc[0], 1.0f);
}

TEST(SparseGradient, ScaleAndNorm) {
    auto g = make(4, {0, 2}, {2.0f, -3.0f});
    EXPECT_DOUBLE_EQ(g.l1_norm(), 5.0);
    g.scale(0.5f);
    EXPECT_EQ(g.values[0], 1.0f);
    EXPECT_EQ(g.values[1], -1.5f);
}

TEST(SparseGradient, FromMask) {
    const std::vector<float> dense{1, 2, 3, 4};
    const std::vector<std::uint8_t> keep{1, 0, 0, 1};
    const auto g = from_mask(dense, keep);
    EXPECT_EQ(g.indices, (std::vector<std::int32_t>{0, 3}));
    EXPECT_EQ(g.values, (std::vector<float>{1, 4}));
    EXPECT_THROW(from_mask(dense, std::vector<std::uint8_t>{1}), std::invalid_argument);
}

TEST(SparseGradient, FromPairsSortsAndValidates) {
    const auto g = from_pairs(10, {7, 2, 5}, {70, 20, 50});
    EXPECT_EQ(g.indices, (std::vector<std::int32_t>{2, 5, 7}));
    EXPECT_EQ(g.values, (std::vector<float>{20, 50, 70}));
    EXPECT_THROW(from_pairs(10, {1, 1}, {1, 2}), std::invalid_argument);
}

TEST(SparseAdd, MergesDisjointAndOverlapping) {
    const auto a = make(8, {0, 3}, {1, 2});
    const auto b = make(8, {3, 5}, {10, 20});
    const auto c = add(a, b);
    EXPECT_EQ(c.indices, (std::vector<std::int32_t>{0, 3, 5}));
    EXPECT_EQ(c.values, (std::vector<float>{1, 12, 20}));
}

TEST(SparseAdd, EmptyIsIdentity) {
    const auto a = make(8, {2}, {5});
    SparseGradient zero;
    zero.dense_size = 8;
    EXPECT_EQ(add(a, zero), a);
    EXPECT_EQ(add(zero, a), a);
}

TEST(SparseAdd, RejectsMismatchedSpaces) {
    const auto a = make(8, {2}, {5});
    const auto b = make(9, {2}, {5});
    EXPECT_THROW(add(a, b), std::invalid_argument);
}

TEST(SparseTopk, KeepsLargestMagnitudes) {
    const auto g = make(10, {1, 3, 5, 7}, {1.0f, -9.0f, 4.0f, -2.0f});
    const auto t = sparse_topk(g, 2);
    EXPECT_EQ(t.indices, (std::vector<std::int32_t>{3, 5}));
    EXPECT_EQ(t.values, (std::vector<float>{-9.0f, 4.0f}));
}

TEST(SparseTopk, NoopWhenAlreadySmall) {
    const auto g = make(10, {1}, {5.0f});
    EXPECT_EQ(sparse_topk(g, 3), g);
}

TEST(SparseTopk, TieBreaksBySmallerIndex) {
    const auto g = make(10, {2, 4, 6}, {1.0f, -1.0f, 1.0f});
    const auto t = sparse_topk(g, 2);
    EXPECT_EQ(t.indices, (std::vector<std::int32_t>{2, 4}));
}

TEST(TopkMergeOp, MatchesDefinition1) {
    // G_a + G_b, then top-k of the sum.
    const auto a = make(8, {0, 2}, {3.0f, 1.0f});
    const auto b = make(8, {2, 5}, {1.5f, -4.0f});
    const auto m = topk_merge(a, b, 2);
    // Sum: {0: 3, 2: 2.5, 5: -4} -> top-2 = {5: -4, 0: 3}
    EXPECT_EQ(m.indices, (std::vector<std::int32_t>{0, 5}));
    EXPECT_EQ(m.values, (std::vector<float>{3.0f, -4.0f}));
}

TEST(TopkMergeOp, IsCommutative) {
    gtopk::util::Xoshiro256 rng(31);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<float> da(64), db(64);
        for (auto& v : da) v = static_cast<float>(rng.next_gaussian());
        for (auto& v : db) v = static_cast<float>(rng.next_gaussian());
        const auto a = gtopk::sparse::topk_select(da, 8);
        const auto b = gtopk::sparse::topk_select(db, 8);
        EXPECT_EQ(topk_merge(a, b, 8), topk_merge(b, a, 8));
    }
}

TEST(TopkMergeOp, IsNotAssociativeInGeneral) {
    // Documented counterexample: cancellation makes ⊤ order-dependent,
    // which is why Algorithm 3 (tree fold) and Algorithm 2 (global
    // selection) are distinct algorithms.
    const auto a = make(4, {1}, {1.0f});
    const auto b = make(4, {2}, {1.5f});
    const auto c = make(4, {1}, {1.0f});
    const auto d = make(4, {2}, {-1.4f});
    const auto left = topk_merge(topk_merge(a, b, 1), topk_merge(c, d, 1), 1);
    // Tree: (a⊤b) = {2:1.5}, (c⊤d) = {1:1.0}; merge -> {2:1.5}.
    EXPECT_EQ(left.indices, (std::vector<std::int32_t>{2}));
    // Global top-1 of a+b+c+d = {1: 2.0}.
    const auto global = sparse_topk(add(add(a, b), add(c, d)), 1);
    EXPECT_EQ(global.indices, (std::vector<std::int32_t>{1}));
    EXPECT_NE(left.indices, global.indices);
}

TEST(Wire, RoundTripsCanonicalGradient) {
    const auto g = make(100, {0, 17, 99}, {1.5f, -2.5f, 3.5f});
    const auto bytes = gtopk::sparse::serialize(g);
    EXPECT_EQ(bytes.size(), gtopk::sparse::wire_size_bytes(3));
    EXPECT_EQ(gtopk::sparse::deserialize(bytes), g);
}

TEST(Wire, RoundTripsEmpty) {
    SparseGradient g;
    g.dense_size = 42;
    EXPECT_EQ(gtopk::sparse::deserialize(gtopk::sparse::serialize(g)), g);
}

TEST(Wire, RejectsTruncatedInput) {
    const auto g = make(10, {1}, {1.0f});
    auto bytes = gtopk::sparse::serialize(g);
    bytes.pop_back();
    EXPECT_THROW(gtopk::sparse::deserialize(bytes), std::invalid_argument);
    EXPECT_THROW(gtopk::sparse::deserialize(std::vector<std::byte>(4)),
                 std::invalid_argument);
}

TEST(Wire, RejectsCorruptHeader) {
    const auto g = make(10, {1, 5}, {1.0f, 2.0f});
    auto bytes = gtopk::sparse::serialize(g);
    // Corrupt nnz to a huge value.
    bytes[8] = std::byte{0xFF};
    bytes[9] = std::byte{0xFF};
    EXPECT_THROW(gtopk::sparse::deserialize(bytes), std::invalid_argument);
}

TEST(Wire, RejectsNonCanonicalPayload) {
    // Hand-build a wire image with unsorted indices; deserialize validates.
    auto g = make(10, {1, 5}, {1.0f, 2.0f});
    auto bytes = gtopk::sparse::serialize(g);
    // Swap the two int32 indices in place.
    std::swap(bytes[16], bytes[20]);
    std::swap(bytes[17], bytes[21]);
    std::swap(bytes[18], bytes[22]);
    std::swap(bytes[19], bytes[23]);
    EXPECT_THROW(gtopk::sparse::deserialize(bytes), std::invalid_argument);
}

}  // namespace
