// tcp_rank_worker: one rank of a multi-process parity/chaos run, spawned by
// tcp_transport_test / tcp_recovery_test via fork/exec (or by gtopkrun).
// Builds the shared ParityScenario over a real TcpTransport (optionally
// under the standard decorators) and reports through the typed exit-code
// contract in tcp_parity_common.hpp:
//
//   tcp_rank_worker --rank R --world W --port P --algo gtopk --out params.bin
//                   [--conformance] [--record-out edges.txt] [--reliable]
//                   [--die-at-step K] [--sigkill-at-step K] [--sigkill-rank R]
//                   [--recv-timeout S] [--elastic] [--stats-out stats.txt]
//                   [--flight-out bundle.json]
//                   [--drop-prob F] [--corrupt-prob F] [--fault-seed N]
//                   [--socket-kill-every N] [--socket-truncate-every N]
//                   [--socket-fault-seed N] [--socket-max-faults N]
//
// When --rank/--world/--port are absent the worker bootstraps from the
// GTOPK_RANK / GTOPK_WORLD_SIZE / GTOPK_RENDEZVOUS environment instead —
// i.e. it can be launched by gtopkrun, where every rank shares one argv; in
// that mode all output paths get a ".<rank>" suffix so ranks don't clobber
// each other.
//
// --die-at-step wraps the transport in a FaultInjectingTransport whose plan
// kills this rank at that trainer step — the multi-process analogue of the
// in-process chaos kill. --sigkill-at-step is the harsher variant: the same
// deterministic step trigger, but the rank dies by raising SIGKILL on
// itself — an uncatchable real process death (waitstatus 137, sockets torn
// down by the kernel mid-whatever), exactly what an OOM killer or operator
// `kill -9` looks like to the peers. --drop-prob/--corrupt-prob inject seeded loss and
// corruption on the ARQ envelope tag (under the reliable layer, so the wire
// ARQ must recover them bit-exactly). --socket-kill-every/--socket-
// truncate-every arm TcpTransport's SOCKET fault injector: seeded
// connection kills and truncated frames that exercise the reconnect /
// session-resume path. --elastic hangs a MembershipService off the stack so
// a dead peer yields a wire regroup instead of an abort. --record-out
// stacks a RecordingTransport on top and dumps this process's OUTBOUND
// edges (src == local rank; over TCP a process never observes a remote
// sender's program order) as "dst tag bytes" lines for the parent's
// conformance diff. --stats-out dumps post-run transport/elastic counters
// ("key value" lines) so the parent can assert reconnects really happened
// and the survivor view is the expected one.
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "comm/comm_error.hpp"
#include "comm/fault_transport.hpp"
#include "comm/membership.hpp"
#include "comm/recording_transport.hpp"
#include "comm/reliable_transport.hpp"
#include "comm/tags.hpp"
#include "comm/tcp_transport.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"
#include "tcp_parity_common.hpp"

namespace {

/// Raises SIGKILL on this process the moment the trainer reports the
/// configured step. Placed outermost so the trigger fires at the exact
/// iteration boundary BEFORE any graceful-exit path (membership leave,
/// socket teardown) can run — the peers must see an abrupt kernel-level
/// death, same as an OOM kill or operator `kill -9`.
class SigkillAtStep final : public gtopk::comm::Transport {
public:
    SigkillAtStep(std::unique_ptr<gtopk::comm::Transport> inner,
                  std::int64_t kill_step)
        : inner_(std::move(inner)), kill_step_(kill_step) {}

    int world_size() const override { return inner_->world_size(); }
    void deliver(int dst, gtopk::comm::Message msg) override {
        inner_->deliver(dst, std::move(msg));
    }
    gtopk::comm::Message receive(int rank, int source, int tag) override {
        return inner_->receive(rank, source, tag);
    }
    std::optional<gtopk::comm::Message> try_receive(int rank, int source,
                                                    int tag) override {
        return inner_->try_receive(rank, source, tag);
    }
    std::optional<gtopk::comm::Message> receive_for(int rank, int source, int tag,
                                                    double timeout_s) override {
        return inner_->receive_for(rank, source, tag, timeout_s);
    }
    std::optional<gtopk::comm::Message> receive_for_virtual(
        int rank, int source, int tag, double max_arrival_s,
        double host_grace_s) override {
        return inner_->receive_for_virtual(rank, source, tag, max_arrival_s,
                                           host_grace_s);
    }
    void shutdown() override { inner_->shutdown(); }
    void begin_epoch(int rank, int epoch) override {
        inner_->begin_epoch(rank, epoch);
    }
    bool rank_alive(int rank) const override { return inner_->rank_alive(rank); }
    void on_progress(int rank, std::int64_t step) override {
        if (step >= kill_step_) ::raise(SIGKILL);
        inner_->on_progress(rank, step);
    }
    std::size_t pending_with_tag_at_least(int rank, int min_tag) const override {
        return inner_->pending_with_tag_at_least(rank, min_tag);
    }
    void set_tracer(gtopk::obs::Tracer* t) override { inner_->set_tracer(t); }
    bool shared_memory_fabric() const override {
        return inner_->shared_memory_fabric();
    }
    std::vector<int> take_reconnected(int rank) override {
        return inner_->take_reconnected(rank);
    }

private:
    std::unique_ptr<gtopk::comm::Transport> inner_;
    std::int64_t kill_step_;
};

int require_arg(int argc, int i, const char* flag) {
    if (i + 1 >= argc) {
        std::cerr << "tcp_rank_worker: " << flag << " needs a value\n";
        std::exit(2);
    }
    return i + 1;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace gtopk;

    int rank = -1;
    int world = 0;
    int port = 0;
    std::string algo_name;
    std::string out_path;
    std::string record_path;
    std::string stats_path;
    std::string flight_path;
    long die_at_step = -1;
    long sigkill_rank = -1;
    bool real_sigkill = false;
    bool reliable = false;
    bool conformance = false;
    bool elastic = false;
    double recv_timeout_s = 10.0;
    bool recv_timeout_set = false;
    double drop_prob = 0.0;
    double corrupt_prob = 0.0;
    unsigned long fault_seed = 1;
    unsigned long socket_kill_every = 0;
    unsigned long socket_truncate_every = 0;
    unsigned long socket_fault_seed = 1;
    unsigned long socket_max_faults = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--rank") {
            rank = std::atoi(argv[i = require_arg(argc, i, "--rank")]);
        } else if (arg == "--world") {
            world = std::atoi(argv[i = require_arg(argc, i, "--world")]);
        } else if (arg == "--port") {
            port = std::atoi(argv[i = require_arg(argc, i, "--port")]);
        } else if (arg == "--algo") {
            algo_name = argv[i = require_arg(argc, i, "--algo")];
        } else if (arg == "--out") {
            out_path = argv[i = require_arg(argc, i, "--out")];
        } else if (arg == "--record-out") {
            record_path = argv[i = require_arg(argc, i, "--record-out")];
        } else if (arg == "--die-at-step") {
            die_at_step = std::atol(argv[i = require_arg(argc, i, "--die-at-step")]);
        } else if (arg == "--sigkill-at-step") {
            die_at_step =
                std::atol(argv[i = require_arg(argc, i, "--sigkill-at-step")]);
            real_sigkill = true;
        } else if (arg == "--sigkill-rank") {
            sigkill_rank =
                std::atol(argv[i = require_arg(argc, i, "--sigkill-rank")]);
        } else if (arg == "--stats-out") {
            stats_path = argv[i = require_arg(argc, i, "--stats-out")];
        } else if (arg == "--flight-out") {
            flight_path = argv[i = require_arg(argc, i, "--flight-out")];
        } else if (arg == "--recv-timeout") {
            recv_timeout_s = std::atof(argv[i = require_arg(argc, i, "--recv-timeout")]);
            recv_timeout_set = true;
        } else if (arg == "--drop-prob") {
            drop_prob = std::atof(argv[i = require_arg(argc, i, "--drop-prob")]);
        } else if (arg == "--corrupt-prob") {
            corrupt_prob = std::atof(argv[i = require_arg(argc, i, "--corrupt-prob")]);
        } else if (arg == "--fault-seed") {
            fault_seed = std::strtoul(argv[i = require_arg(argc, i, "--fault-seed")],
                                      nullptr, 10);
        } else if (arg == "--socket-kill-every") {
            socket_kill_every = std::strtoul(
                argv[i = require_arg(argc, i, "--socket-kill-every")], nullptr, 10);
        } else if (arg == "--socket-truncate-every") {
            socket_truncate_every = std::strtoul(
                argv[i = require_arg(argc, i, "--socket-truncate-every")], nullptr,
                10);
        } else if (arg == "--socket-fault-seed") {
            socket_fault_seed = std::strtoul(
                argv[i = require_arg(argc, i, "--socket-fault-seed")], nullptr, 10);
        } else if (arg == "--socket-max-faults") {
            socket_max_faults = std::strtoul(
                argv[i = require_arg(argc, i, "--socket-max-faults")], nullptr, 10);
        } else if (arg == "--reliable") {
            reliable = true;
        } else if (arg == "--conformance") {
            conformance = true;
        } else if (arg == "--elastic") {
            elastic = true;
        } else {
            std::cerr << "tcp_rank_worker: unknown flag " << arg << "\n";
            return 2;
        }
    }
    std::string host = "127.0.0.1";
    if (rank < 0 && world <= 0 && port <= 0) {
        // gtopkrun launch: every rank gets the same argv; identity comes
        // from the environment and output paths get a rank suffix.
        try {
            if (const auto env = comm::TcpTransport::config_from_env()) {
                rank = env->rank;
                world = env->world_size;
                host = env->rendezvous_host;
                port = env->rendezvous_port;
                const std::string sfx = "." + std::to_string(rank);
                if (!out_path.empty()) out_path += sfx;
                if (!record_path.empty()) record_path += sfx;
                if (!stats_path.empty()) stats_path += sfx;
                if (!flight_path.empty()) flight_path += sfx;
            }
        } catch (const std::exception& e) {
            std::cerr << "tcp_rank_worker: bad GTOPK_* environment: " << e.what()
                      << "\n";
            return 2;
        }
    }
    if (rank < 0 || world <= 0 || port <= 0 || algo_name.empty()) {
        std::cerr << "tcp_rank_worker: --rank/--world/--port (or GTOPK_* env) "
                     "and --algo required\n";
        return 2;
    }

    std::unique_ptr<obs::FlightRecorder> frec;
    std::unique_ptr<obs::Telemetry> telem;
    try {
        comm::TcpConfig tcfg;
        tcfg.rank = rank;
        tcfg.world_size = world;
        tcfg.rendezvous_host = host;
        tcfg.rendezvous_port = port;
        tcfg.connect_timeout_s = 30.0;
        if (socket_kill_every > 0 || socket_truncate_every > 0) {
            tcfg.socket_faults.seed = socket_fault_seed;
            tcfg.socket_faults.kill_every_n = socket_kill_every;
            tcfg.socket_faults.truncate_every_n = socket_truncate_every;
            tcfg.socket_faults.max_faults = socket_max_faults;
        }

        // Decorator stack, innermost out: Tcp -> FaultInjecting -> Reliable
        // -> Recording (record the app's program order, outermost).
        auto tcp = std::make_unique<comm::TcpTransport>(tcfg);
        comm::TcpTransport* tcp_raw = tcp.get();
        comm::FaultInjectingTransport* faulty = nullptr;
        std::unique_ptr<comm::Transport> stack = std::move(tcp);
        if ((die_at_step >= 0 && !real_sigkill) || drop_prob > 0.0 ||
            corrupt_prob > 0.0) {
            comm::FaultPlan plan;
            plan.seed = fault_seed;
            if (die_at_step >= 0 && !real_sigkill) {
                plan.kill_at_step(rank, die_at_step);
            }
            if (drop_prob > 0.0 || corrupt_prob > 0.0) {
                // Faults target the ARQ envelope tag UNDER the reliable
                // layer: the wire ARQ must mask every one of them or the
                // parent's bit-identity check fails.
                comm::FaultRule rule;
                rule.tag = comm::kTagReliableData;
                rule.drop_prob = drop_prob;
                rule.corrupt_prob = corrupt_prob;
                plan.add(rule);
            }
            auto f = std::make_unique<comm::FaultInjectingTransport>(std::move(stack),
                                                                     plan);
            faulty = f.get();
            stack = std::move(f);
        }
        if (reliable) {
            // Wire mode: the reliable layer runs the full ARQ — sequence
            // envelopes out, cumulative acks and gap pulls back as frames.
            stack = std::make_unique<comm::ReliableTransport>(std::move(stack),
                                                              comm::ReliableConfig{});
        }
        // --sigkill-rank gates the trigger to one rank so a shared-argv
        // gtopkrun launch can single out a victim; absent, the flag kills
        // whichever rank it was handed to (the direct fork/exec path).
        if (real_sigkill && die_at_step >= 0 &&
            (sigkill_rank < 0 || sigkill_rank == rank)) {
            stack = std::make_unique<SigkillAtStep>(std::move(stack), die_at_step);
        }
        comm::RecordingTransport* recorder = nullptr;
        if (!record_path.empty()) {
            auto rec = std::make_unique<comm::RecordingTransport>(std::move(stack));
            recorder = rec.get();
            stack = std::move(rec);
        }

        std::unique_ptr<comm::MembershipService> membership;
        if (elastic) {
            comm::MembershipConfig mcfg;
            mcfg.seed = fault_seed;
            membership = std::make_unique<comm::MembershipService>(*stack, mcfg);
            // The receive deadline is the survivors' stall detector; it must
            // undercut the regroup grace so the deadline cascade routes every
            // survivor into the round before grace expiry.
            if (!recv_timeout_set) recv_timeout_s = 1.0;
        }

        tcptest::ParityScenario scenario(world);
        const train::Algorithm algo = tcptest::parse_algorithm(algo_name);
        train::TrainConfig cfg = conformance ? scenario.conformance_config(algo)
                                             : scenario.config(algo);
        cfg.transport = stack.get();
        cfg.local_rank = rank;
        cfg.recv_timeout_s = recv_timeout_s;
        if (membership) {
            cfg.membership = membership.get();
            cfg.checkpoint_every = 4;
        }
        if (!flight_path.empty()) {
            obs::FlightRecorderConfig fcfg;
            fcfg.path = flight_path;
            frec = std::make_unique<obs::FlightRecorder>(fcfg);
            telem = std::make_unique<obs::Telemetry>(world);
            telem->set_flight_recorder(frec.get());
            cfg.telemetry = telem.get();
        }

        const train::TrainResult result = scenario.run(cfg);

        if (!out_path.empty()) {
            tcptest::write_params(out_path, result.final_params);
        }
        if (!stats_path.empty()) {
            std::ofstream os(stats_path, std::ios::trunc);
            os << "reconnects " << tcp_raw->reconnects() << "\n";
            os << "socket_faults " << tcp_raw->socket_faults_injected() << "\n";
            os << "injected_drops " << (faulty ? faulty->counts().dropped : 0)
               << "\n";
            os << "injected_corruptions "
               << (faulty ? faulty->counts().corrupted : 0) << "\n";
            os << "regroups " << result.regroups << "\n";
            os << "epoch " << result.final_membership_epoch << "\n";
            if (!result.epochs.empty()) {
                os << "loss_first " << result.epochs.front().train_loss << "\n";
                os << "loss_last " << result.epochs.back().train_loss << "\n";
            }
            os << "members";
            if (membership) {
                // local_rank mode: result.final_members is just {rank}; the
                // agreed survivor set lives in the membership view.
                for (const int m : membership->current().members) os << ' ' << m;
            } else {
                for (const int m : result.final_members) os << ' ' << m;
            }
            os << "\n";
        }
        if (frec) frec->dump("run-complete");
        if (recorder != nullptr) {
            std::ofstream os(record_path, std::ios::trunc);
            for (int dst = 0; dst < world; ++dst) {
                for (const comm::RecordedMsg& m : recorder->edge_log(rank, dst)) {
                    os << dst << ' ' << m.tag << ' ' << m.bytes << '\n';
                }
            }
        }
        return tcptest::kExitOk;
    } catch (const comm::CommError& e) {
        if (frec) frec->dump("comm-abort");
        std::cerr << "tcp_rank_worker rank " << rank << ": " << e.what() << "\n";
        return e.kind() == comm::CommErrorKind::RankKilled
                   ? tcptest::kExitRankKilled
                   : tcptest::kExitRecvTimeout;
    } catch (const std::exception& e) {
        if (frec) frec->dump("abort");
        std::cerr << "tcp_rank_worker rank " << rank << ": " << e.what() << "\n";
        return tcptest::kExitOtherError;
    }
}
