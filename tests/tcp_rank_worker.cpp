// tcp_rank_worker: one rank of a multi-process parity/chaos run, spawned by
// tcp_transport_test via fork/exec. Builds the shared ParityScenario over a
// real TcpTransport (optionally under the standard decorators) and reports
// through the typed exit-code contract in tcp_parity_common.hpp:
//
//   tcp_rank_worker --rank R --world W --port P --algo gtopk --out params.bin
//                   [--conformance] [--record-out edges.txt] [--reliable]
//                   [--die-at-step K] [--recv-timeout S]
//
// --die-at-step wraps the transport in a FaultInjectingTransport whose plan
// kills this rank at that trainer step — the multi-process analogue of the
// in-process chaos kill. --record-out stacks a RecordingTransport on top
// and dumps this process's OUTBOUND edges (src == local rank; over TCP a
// process never observes a remote sender's program order) as
// "dst tag bytes" lines for the parent's conformance diff.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "comm/comm_error.hpp"
#include "comm/fault_transport.hpp"
#include "comm/recording_transport.hpp"
#include "comm/reliable_transport.hpp"
#include "comm/tcp_transport.hpp"
#include "tcp_parity_common.hpp"

namespace {

int require_arg(int argc, int i, const char* flag) {
    if (i + 1 >= argc) {
        std::cerr << "tcp_rank_worker: " << flag << " needs a value\n";
        std::exit(2);
    }
    return i + 1;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace gtopk;

    int rank = -1;
    int world = 0;
    int port = 0;
    std::string algo_name;
    std::string out_path;
    std::string record_path;
    long die_at_step = -1;
    bool reliable = false;
    bool conformance = false;
    double recv_timeout_s = 10.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--rank") {
            rank = std::atoi(argv[i = require_arg(argc, i, "--rank")]);
        } else if (arg == "--world") {
            world = std::atoi(argv[i = require_arg(argc, i, "--world")]);
        } else if (arg == "--port") {
            port = std::atoi(argv[i = require_arg(argc, i, "--port")]);
        } else if (arg == "--algo") {
            algo_name = argv[i = require_arg(argc, i, "--algo")];
        } else if (arg == "--out") {
            out_path = argv[i = require_arg(argc, i, "--out")];
        } else if (arg == "--record-out") {
            record_path = argv[i = require_arg(argc, i, "--record-out")];
        } else if (arg == "--die-at-step") {
            die_at_step = std::atol(argv[i = require_arg(argc, i, "--die-at-step")]);
        } else if (arg == "--recv-timeout") {
            recv_timeout_s = std::atof(argv[i = require_arg(argc, i, "--recv-timeout")]);
        } else if (arg == "--reliable") {
            reliable = true;
        } else if (arg == "--conformance") {
            conformance = true;
        } else {
            std::cerr << "tcp_rank_worker: unknown flag " << arg << "\n";
            return 2;
        }
    }
    if (rank < 0 || world <= 0 || port <= 0 || algo_name.empty()) {
        std::cerr << "tcp_rank_worker: --rank/--world/--port/--algo required\n";
        return 2;
    }

    try {
        comm::TcpConfig tcfg;
        tcfg.rank = rank;
        tcfg.world_size = world;
        tcfg.rendezvous_host = "127.0.0.1";
        tcfg.rendezvous_port = port;
        tcfg.connect_timeout_s = 30.0;

        // Decorator stack, innermost out: Tcp -> FaultInjecting -> Reliable
        // -> Recording (record the app's program order, outermost).
        std::unique_ptr<comm::Transport> stack =
            std::make_unique<comm::TcpTransport>(tcfg);
        if (die_at_step >= 0) {
            comm::FaultPlan plan;
            plan.kill_at_step(rank, die_at_step);
            stack = std::make_unique<comm::FaultInjectingTransport>(std::move(stack),
                                                                    plan);
        }
        if (reliable) {
            // TCP already provides reliable FIFO edges; the reliable layer
            // degrades to envelope passthrough here and must say so.
            comm::ReliableConfig rcfg;
            rcfg.allow_passthrough = true;
            stack = std::make_unique<comm::ReliableTransport>(std::move(stack), rcfg);
        }
        comm::RecordingTransport* recorder = nullptr;
        if (!record_path.empty()) {
            auto rec = std::make_unique<comm::RecordingTransport>(std::move(stack));
            recorder = rec.get();
            stack = std::move(rec);
        }

        tcptest::ParityScenario scenario(world);
        const train::Algorithm algo = tcptest::parse_algorithm(algo_name);
        train::TrainConfig cfg = conformance ? scenario.conformance_config(algo)
                                             : scenario.config(algo);
        cfg.transport = stack.get();
        cfg.local_rank = rank;
        cfg.recv_timeout_s = recv_timeout_s;

        const train::TrainResult result = scenario.run(cfg);

        if (!out_path.empty()) {
            tcptest::write_params(out_path, result.final_params);
        }
        if (recorder != nullptr) {
            std::ofstream os(record_path, std::ios::trunc);
            for (int dst = 0; dst < world; ++dst) {
                for (const comm::RecordedMsg& m : recorder->edge_log(rank, dst)) {
                    os << dst << ' ' << m.tag << ' ' << m.bytes << '\n';
                }
            }
        }
        return tcptest::kExitOk;
    } catch (const comm::CommError& e) {
        std::cerr << "tcp_rank_worker rank " << rank << ": " << e.what() << "\n";
        return e.kind() == comm::CommErrorKind::RankKilled
                   ? tcptest::kExitRankKilled
                   : tcptest::kExitRecvTimeout;
    } catch (const std::exception& e) {
        std::cerr << "tcp_rank_worker rank " << rank << ": " << e.what() << "\n";
        return tcptest::kExitOtherError;
    }
}
