// Quantizer tests: exactness bounds per scheme, determinism, packing edge
// cases, and the combined sparsification+quantization training path
// (paper Sec. VI) with error feedback.
#include <gtest/gtest.h>

#include <cmath>

#include "data/sampler.hpp"
#include "data/synthetic_images.hpp"
#include "nn/model_zoo.hpp"
#include "quant/quantizer.hpp"
#include "train/trainer.hpp"
#include "util/rng.hpp"

namespace {

using namespace gtopk;
using quant::dequantize;
using quant::quantize;
using quant::quantize_dequantize;
using quant::Scheme;

std::vector<float> random_values(std::size_t n, std::uint64_t seed) {
    util::Xoshiro256 rng(seed);
    std::vector<float> v(n);
    for (auto& x : v) x = static_cast<float>(rng.next_gaussian());
    return v;
}

class SchemeSweep : public ::testing::TestWithParam<Scheme> {};
INSTANTIATE_TEST_SUITE_P(All, SchemeSweep,
                         ::testing::Values(Scheme::None, Scheme::Uint8MinMax,
                                           Scheme::Uint4MinMax, Scheme::Ternary,
                                           Scheme::OneBit));

TEST_P(SchemeSweep, RoundTripPreservesCountAndIsDeterministic) {
    const auto values = random_values(257, 3);  // odd size exercises packing
    const auto a = quantize_dequantize(values, GetParam());
    const auto b = quantize_dequantize(values, GetParam());
    ASSERT_EQ(a.size(), values.size());
    EXPECT_EQ(a, b);
}

TEST_P(SchemeSweep, EmptyInputYieldsEmptyOutput) {
    EXPECT_TRUE(quantize_dequantize({}, GetParam()).empty());
}

TEST_P(SchemeSweep, ErrorBoundedByScheme) {
    const auto values = random_values(1000, 7);
    float max_abs = 0.0f;
    float min_v = values[0], max_v = values[0];
    for (float v : values) {
        max_abs = std::max(max_abs, std::abs(v));
        min_v = std::min(min_v, v);
        max_v = std::max(max_v, v);
    }
    const auto lossy = quantize_dequantize(values, GetParam());
    double bound = 0.0;
    switch (GetParam()) {
        case Scheme::None: bound = 0.0; break;
        case Scheme::Uint8MinMax: bound = (max_v - min_v) / 255.0 * 0.51; break;
        case Scheme::Uint4MinMax: bound = (max_v - min_v) / 15.0 * 0.51; break;
        case Scheme::Ternary: bound = max_abs * 0.51; break;
        case Scheme::OneBit: bound = 2.0 * max_abs; break;  // coarse
    }
    for (std::size_t i = 0; i < values.size(); ++i) {
        EXPECT_LE(std::abs(values[i] - lossy[i]), bound + 1e-6)
            << "i=" << i << " scheme=" << quant::scheme_name(GetParam());
    }
}

TEST(QuantTest, NoneIsExact) {
    const auto values = random_values(64, 9);
    EXPECT_EQ(quantize_dequantize(values, Scheme::None), values);
}

TEST(QuantTest, Uint8EndpointsExact) {
    const std::vector<float> values{-3.0f, 0.0f, 5.0f};
    const auto lossy = quantize_dequantize(values, Scheme::Uint8MinMax);
    EXPECT_FLOAT_EQ(lossy.front(), -3.0f);  // min maps to code 0 exactly
    EXPECT_FLOAT_EQ(lossy.back(), 5.0f);    // max maps to top code exactly
}

TEST(QuantTest, ConstantVectorSurvivesMinMax) {
    const std::vector<float> values(10, 1.5f);
    const auto lossy = quantize_dequantize(values, Scheme::Uint8MinMax);
    for (float v : lossy) EXPECT_FLOAT_EQ(v, 1.5f);
}

TEST(QuantTest, TernaryKeepsLargeMagnitudesAndSigns) {
    const std::vector<float> values{2.0f, -2.0f, 0.1f};
    const auto lossy = quantize_dequantize(values, Scheme::Ternary);
    EXPECT_FLOAT_EQ(lossy[0], 2.0f);
    EXPECT_FLOAT_EQ(lossy[1], -2.0f);
    EXPECT_FLOAT_EQ(lossy[2], 0.0f);
}

TEST(QuantTest, OneBitPreservesSignAndMeanMagnitude) {
    const std::vector<float> values{1.0f, -3.0f, 2.0f};
    const auto lossy = quantize_dequantize(values, Scheme::OneBit);
    EXPECT_GT(lossy[0], 0.0f);
    EXPECT_LT(lossy[1], 0.0f);
    EXPECT_FLOAT_EQ(std::abs(lossy[0]), 2.0f);  // mean |v| = 2
}

TEST(QuantTest, CompressionRatiosMatchTheSec6Story) {
    // rho = 0.001 top-k alone is ~1000x / (1 + 32/32) = 500x; adding 2-bit
    // values pushes toward the 600x+ regime Lin et al. report.
    const std::size_t m = 25'000'000, k = 25'000;
    const double sparse_only = quant::compression_ratio(m, k, Scheme::None);
    const double with_ternary = quant::compression_ratio(m, k, Scheme::Ternary);
    EXPECT_NEAR(sparse_only, 500.0, 5.0);
    EXPECT_GT(with_ternary, 900.0);
    EXPECT_GT(with_ternary, sparse_only);
}

TEST(QuantTest, BitsPerValueTable) {
    EXPECT_EQ(quant::bits_per_value(Scheme::None), 32);
    EXPECT_EQ(quant::bits_per_value(Scheme::Uint8MinMax), 8);
    EXPECT_EQ(quant::bits_per_value(Scheme::Uint4MinMax), 4);
    EXPECT_EQ(quant::bits_per_value(Scheme::Ternary), 2);
    EXPECT_EQ(quant::bits_per_value(Scheme::OneBit), 1);
}

// ---- combined sparsification + quantization training ----

class QuantTrainSweep : public ::testing::TestWithParam<Scheme> {};
INSTANTIATE_TEST_SUITE_P(All, QuantTrainSweep,
                         ::testing::Values(Scheme::Uint8MinMax, Scheme::Uint4MinMax,
                                           Scheme::Ternary, Scheme::OneBit));

TEST_P(QuantTrainSweep, GtopkWithQuantizedValuesStillConverges) {
    data::SyntheticImageDataset::Config dcfg;
    dcfg.image_size = 8;
    dcfg.noise_std = 0.6f;
    data::SyntheticImageDataset dataset(dcfg, 55);
    data::ShardedSampler sampler(8192, 1024, 4, 6);
    nn::MlpConfig mcfg;
    mcfg.input_dim = dataset.feature_dim();
    mcfg.hidden_dims = {32, 16};

    train::TrainConfig config;
    config.algorithm = train::Algorithm::GtopkSsgd;
    config.epochs = 6;
    config.iters_per_epoch = 30;
    config.lr = 0.05f;
    config.density = 0.02;
    config.value_quantizer = GetParam();
    const auto r = train::train_distributed(
        4, comm::NetworkModel::free(), config,
        [&](std::uint64_t seed) { return nn::make_mlp(mcfg, seed); },
        [&](std::int64_t step, int rank) {
            return dataset.batch_flat(sampler.batch_indices(step, rank, 16));
        },
        [&] { return dataset.batch_flat(sampler.test_indices(256)); });
    EXPECT_LT(r.epochs.back().train_loss, r.epochs.front().train_loss)
        << quant::scheme_name(GetParam());
    EXPECT_GT(r.epochs.back().val_accuracy, 0.3) << quant::scheme_name(GetParam());
}

}  // namespace
