// Property-based tests of the gTop-k aggregation over randomized inputs:
// structural invariants that must hold for ANY input, world size and k —
// including under maskable network chaos (duplicates + cross-stream
// reorder), where the aggregation result AND the error-feedback residuals
// must stay bit-identical to the fault-free run.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "chaos_common.hpp"
#include "comm/cluster.hpp"
#include "comm/fault_transport.hpp"
#include "core/aggregators.hpp"
#include "sparse/topk_merge.hpp"
#include "sparse/topk_select.hpp"
#include "util/rng.hpp"

namespace {

using namespace gtopk;
using comm::Cluster;
using comm::Communicator;
using comm::NetworkModel;
using sparse::SparseGradient;

std::vector<SparseGradient> random_locals(int world, std::int64_t m, std::size_t k,
                                          std::uint64_t seed) {
    std::vector<SparseGradient> locals;
    for (int r = 0; r < world; ++r) {
        util::Xoshiro256 rng =
            util::Xoshiro256(seed).fork(static_cast<std::uint64_t>(r));
        std::vector<float> dense(static_cast<std::size_t>(m));
        for (auto& v : dense) v = static_cast<float>(rng.next_gaussian());
        locals.push_back(sparse::topk_select(dense, k));
    }
    return locals;
}

std::vector<SparseGradient> run_gtopk(const std::vector<SparseGradient>& locals,
                                      std::size_t k) {
    const int world = static_cast<int>(locals.size());
    std::vector<SparseGradient> results(static_cast<std::size_t>(world));
    Cluster::run(world, NetworkModel::free(), [&](Communicator& comm) {
        results[static_cast<std::size_t>(comm.rank())] =
            core::gtopk_allreduce(comm, locals[static_cast<std::size_t>(comm.rank())],
                                  k)
                .global;
    });
    return results;
}

using Param = std::tuple<int, std::size_t, std::uint64_t>;  // (world, k, seed)

class GtopkProperty : public ::testing::TestWithParam<Param> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, GtopkProperty,
    ::testing::Combine(::testing::Values(2, 3, 4, 5, 8),
                       ::testing::Values<std::size_t>(1, 4, 32),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST_P(GtopkProperty, AllRanksAgreeBitForBit) {
    const auto [world, k, seed] = GetParam();
    const auto locals = random_locals(world, 512, k, seed);
    const auto results = run_gtopk(locals, k);
    for (int r = 1; r < world; ++r) {
        ASSERT_EQ(results[static_cast<std::size_t>(r)], results[0]);
    }
}

TEST_P(GtopkProperty, ResultIndicesAreSubsetOfInputUnion) {
    const auto [world, k, seed] = GetParam();
    const auto locals = random_locals(world, 512, k, seed + 100);
    const auto result = run_gtopk(locals, k)[0];
    std::set<std::int32_t> union_idx;
    for (const auto& g : locals) union_idx.insert(g.indices.begin(), g.indices.end());
    for (auto idx : result.indices) {
        EXPECT_TRUE(union_idx.count(idx)) << "index " << idx << " appeared from nowhere";
    }
}

TEST_P(GtopkProperty, ResultHasExactlyKEntries) {
    const auto [world, k, seed] = GetParam();
    const auto locals = random_locals(world, 512, k, seed + 200);
    const auto result = run_gtopk(locals, k)[0];
    // With Gaussian inputs the union always has >= k entries, so the
    // output sparsity is exactly k.
    EXPECT_EQ(result.nnz(), k);
    EXPECT_NO_THROW(result.validate());
}

TEST_P(GtopkProperty, DeterministicAcrossRepeatedRuns) {
    const auto [world, k, seed] = GetParam();
    const auto locals = random_locals(world, 256, k, seed + 300);
    const auto a = run_gtopk(locals, k)[0];
    const auto b = run_gtopk(locals, k)[0];
    EXPECT_EQ(a, b);
}

TEST_P(GtopkProperty, ScalingInputsScalesOutput) {
    // ⊤ is positively homogeneous: scaling every input by c > 0 scales the
    // selected values by c and leaves the selected index set unchanged.
    const auto [world, k, seed] = GetParam();
    auto locals = random_locals(world, 512, k, seed + 400);
    const auto base = run_gtopk(locals, k)[0];
    for (auto& g : locals) g.scale(2.0f);
    const auto scaled = run_gtopk(locals, k)[0];
    ASSERT_EQ(scaled.indices, base.indices);
    for (std::size_t i = 0; i < base.nnz(); ++i) {
        EXPECT_FLOAT_EQ(scaled.values[i], 2.0f * base.values[i]);
    }
}

TEST_P(GtopkProperty, InvariantUnderUniformShiftOfIndices) {
    // Relabeling the coordinate space (shifting all indices by a constant)
    // must shift the selection identically — no positional bias.
    const auto [world, k, seed] = GetParam();
    auto locals = random_locals(world, 512, k, seed + 500);
    const auto base = run_gtopk(locals, k)[0];
    const std::int32_t shift = 1000;
    for (auto& g : locals) {
        g.dense_size += shift;
        for (auto& idx : g.indices) idx += shift;
    }
    const auto shifted = run_gtopk(locals, k)[0];
    ASSERT_EQ(shifted.nnz(), base.nnz());
    for (std::size_t i = 0; i < base.nnz(); ++i) {
        EXPECT_EQ(shifted.indices[i], base.indices[i] + shift);
        EXPECT_EQ(shifted.values[i], base.values[i]);
    }
}

TEST_P(GtopkProperty, EveryResultValueIsAPartialSumOfContributions) {
    // For each selected index, the value must equal the sum of
    // contributions from SOME subset of the workers holding that index
    // (which subset depends on the tree path — but never anything else).
    const auto [world, k, seed] = GetParam();
    const auto locals = random_locals(world, 512, k, seed + 600);
    const auto result = run_gtopk(locals, k)[0];
    for (std::size_t i = 0; i < result.nnz(); ++i) {
        const std::int32_t idx = result.indices[i];
        std::vector<float> contribs;
        for (const auto& g : locals) {
            for (std::size_t j = 0; j < g.nnz(); ++j) {
                if (g.indices[j] == idx) contribs.push_back(g.values[j]);
            }
        }
        ASSERT_FALSE(contribs.empty());
        // Check subset-sum membership (contribs.size() is tiny).
        bool found = false;
        const std::size_t subsets = 1u << contribs.size();
        for (std::size_t mask = 1; mask < subsets && !found; ++mask) {
            float sum = 0.0f;
            for (std::size_t j = 0; j < contribs.size(); ++j) {
                if (mask & (1u << j)) sum += contribs[j];
            }
            if (std::abs(sum - result.values[i]) <= 1e-5f) found = true;
        }
        EXPECT_TRUE(found) << "value at index " << idx
                           << " is not a partial sum of worker contributions";
    }
}

TEST(GtopkEdge, AllWorkersIdenticalInput) {
    // When every worker holds the same sparse gradient g, the result is
    // k-top of world * g — i.e. same indices, values scaled by P.
    const int world = 4;
    SparseGradient g;
    g.dense_size = 100;
    g.indices = {3, 10, 50};
    g.values = {1.0f, -2.0f, 0.5f};
    std::vector<SparseGradient> locals(world, g);
    const auto result = run_gtopk(locals, 3)[0];
    EXPECT_EQ(result.indices, g.indices);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_FLOAT_EQ(result.values[i], 4.0f * g.values[i]);
    }
}

TEST(GtopkEdge, EmptyInputsYieldEmptyResult) {
    SparseGradient empty;
    empty.dense_size = 64;
    std::vector<SparseGradient> locals(4, empty);
    const auto result = run_gtopk(locals, 5)[0];
    EXPECT_EQ(result.nnz(), 0u);
}

TEST(GtopkEdge, KLargerThanUnionKeepsEverything) {
    SparseGradient a, b;
    a.dense_size = b.dense_size = 32;
    a.indices = {1};
    a.values = {2.0f};
    b.indices = {5};
    b.values = {-3.0f};
    std::vector<SparseGradient> locals{a, b};
    const auto result = run_gtopk(locals, 10)[0];
    EXPECT_EQ(result.indices, (std::vector<std::int32_t>{1, 5}));
}

// ---------------------------------------------------------------------------
// Chaos property: under duplicate + reorder + delay plans the gTop-k result
// AND the residuals (error feedback, Alg. 4 lines 8 and 10) are bit-identical
// to the clean run, for both the pooled and owning wire paths.

struct RankState {
    SparseGradient global;
    std::vector<float> residual;  // dense - selected, plus line-10 put-back
    bool operator==(const RankState& o) const {
        return global == o.global && residual == o.residual;
    }
};

/// One gTop-k round per rank with full residual bookkeeping, run over an
/// arbitrary transport. Mirrors the trainer's error-feedback algebra:
/// residual = accumulated - selected (line 8), then the locally-selected
/// entries that did NOT survive the global selection go back (line 10).
std::vector<RankState> run_gtopk_with_residuals(comm::Transport& transport, int world,
                                                std::size_t k, std::uint64_t seed,
                                                bool pooled) {
    std::vector<RankState> states(static_cast<std::size_t>(world));
    comm::Cluster::run_on(transport, NetworkModel::free(), [&](Communicator& comm) {
        util::Xoshiro256 rng =
            util::Xoshiro256(seed).fork(static_cast<std::uint64_t>(comm.rank()));
        std::vector<float> dense(512);
        for (auto& v : dense) v = static_cast<float>(rng.next_gaussian());
        const auto local = sparse::topk_select(dense, k);

        RankState st;
        st.residual = dense;
        for (std::size_t i = 0; i < local.nnz(); ++i) {
            st.residual[static_cast<std::size_t>(local.indices[i])] = 0.0f;
        }

        core::GtopkOptions options;
        options.pooled = pooled;
        core::GtopkWorkspace ws;
        if (pooled) options.workspace = &ws;
        // Several rounds so small worlds still exchange enough messages for
        // a probabilistic plan to fire; same input => same result each
        // round, which doubles as a stability check under the chaos.
        for (int round = 0; round < 6; ++round) {
            auto r = core::gtopk_allreduce(comm, local, k, options).global;
            if (round > 0) {
                ASSERT_EQ(r, st.global) << "round " << round;
            }
            st.global = std::move(r);
        }

        const std::set<std::int32_t> survived(st.global.indices.begin(),
                                              st.global.indices.end());
        for (std::size_t i = 0; i < local.nnz(); ++i) {
            if (!survived.count(local.indices[i])) {
                st.residual[static_cast<std::size_t>(local.indices[i])] +=
                    local.values[i];
            }
        }
        states[static_cast<std::size_t>(comm.rank())] = std::move(st);
    });
    return states;
}

using ChaosParam = std::tuple<int, std::uint64_t>;  // (world, seed)

class GtopkChaosProperty : public ::testing::TestWithParam<ChaosParam> {};

INSTANTIATE_TEST_SUITE_P(Sweep, GtopkChaosProperty,
                         ::testing::Combine(::testing::Values(2, 4, 8),
                                            ::testing::Values<std::uint64_t>(1, 2,
                                                                             3)));

TEST_P(GtopkChaosProperty, ResultAndResidualsBitIdenticalUnderMaskableChaos) {
    const auto [world, seed] = GetParam();
    const std::size_t k = 16;
    for (const bool pooled : {false, true}) {
        comm::InProcTransport clean_transport(world);
        const auto clean =
            run_gtopk_with_residuals(clean_transport, world, k, seed, pooled);

        comm::FaultInjectingTransport chaotic(world, chaos::maskable_plan(seed));
        const auto chaos = run_gtopk_with_residuals(chaotic, world, k, seed, pooled);

        for (int r = 0; r < world; ++r) {
            ASSERT_EQ(chaos[static_cast<std::size_t>(r)].global,
                      clean[static_cast<std::size_t>(r)].global)
                << "rank " << r << " pooled=" << pooled;
            ASSERT_EQ(chaos[static_cast<std::size_t>(r)].residual,
                      clean[static_cast<std::size_t>(r)].residual)
                << "rank " << r << " pooled=" << pooled;
        }
        // A run where the plan never fired proves nothing.
        EXPECT_GT(chaotic.counts().injected(), 0u) << "pooled=" << pooled;
    }
}

TEST_P(GtopkChaosProperty, ChaosScheduleItselfIsSeedDeterministic) {
    // Same seed + same plan => the transport makes the identical sequence of
    // fault decisions (the acceptance criterion's bit-identical schedule).
    const auto [world, seed] = GetParam();
    comm::FaultCounts first;
    for (int run = 0; run < 2; ++run) {
        comm::FaultInjectingTransport t(world, chaos::maskable_plan(seed));
        (void)run_gtopk_with_residuals(t, world, 16, seed, /*pooled=*/true);
        if (run == 0) {
            first = t.counts();
        } else {
            EXPECT_EQ(t.counts().duplicated, first.duplicated);
            EXPECT_EQ(t.counts().reordered, first.reordered);
            EXPECT_EQ(t.counts().delayed, first.delayed);
            EXPECT_EQ(t.counts().dropped, first.dropped);
            EXPECT_EQ(t.counts().corrupted, first.corrupted);
        }
    }
}

TEST(GtopkEdge, CancellationAcrossWorkersIsHandled) {
    // Two workers contribute exactly opposite values at one index; the sum
    // there is zero and a different index must win.
    SparseGradient a, b;
    a.dense_size = b.dense_size = 16;
    a.indices = {2, 7};
    a.values = {5.0f, 0.25f};
    b.indices = {2, 9};
    b.values = {-5.0f, 0.5f};
    std::vector<SparseGradient> locals{a, b};
    const auto result = run_gtopk(locals, 1)[0];
    ASSERT_EQ(result.nnz(), 1u);
    EXPECT_EQ(result.indices[0], 9);
    EXPECT_FLOAT_EQ(result.values[0], 0.5f);
}

}  // namespace
