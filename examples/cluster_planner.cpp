// cluster_planner: a capacity-planning CLI built on the perfmodel library.
// Given a model size, worker count, density and network constants, prints
// the predicted iteration time, scaling efficiency and the best
// aggregation algorithm — the question a practitioner on a low-bandwidth
// cluster actually asks before a training run.
//
//   $ ./cluster_planner [m] [P] [rho] [t_compute_s] [alpha_ms] [beta_us_per_elem]
//   $ ./cluster_planner 25000000 32 0.001 0.3
#include <cstdlib>
#include <iostream>
#include <string>

#include "collectives/cost_model.hpp"
#include "perfmodel/iteration_model.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace gtopk;
    using namespace gtopk::perfmodel;
    using util::TextTable;

    const std::int64_t m = argc > 1 ? std::atoll(argv[1]) : 25'000'000;
    const int workers = argc > 2 ? std::atoi(argv[2]) : 32;
    const double rho = argc > 3 ? std::atof(argv[3]) : 1e-3;
    const double t_compute = argc > 4 ? std::atof(argv[4]) : 0.3;
    const double alpha_ms = argc > 5 ? std::atof(argv[5]) : 0.436;
    const double beta_us = argc > 6 ? std::atof(argv[6]) : 0.036;

    StackModel stack = StackModel::ideal();
    stack.sparse_net = comm::NetworkModel{alpha_ms * 1e-3, beta_us * 1e-6};
    stack.dense_net = stack.sparse_net;

    ModelProfile profile;
    profile.name = "user model";
    profile.params = m;
    profile.batch = 1;
    profile.t_compute_s = t_compute;
    profile.t_compress_s = static_cast<double>(m) * 2e-9;  // C++ top-k speed

    std::cout << "Planning for m = " << m << " params, P = " << workers
              << ", rho = " << rho << ", t_compute = " << t_compute << " s\n"
              << "network: alpha = " << alpha_ms << " ms, beta = " << beta_us
              << " us/element\n\n";

    TextTable table({"Algorithm", "comm [ms]", "t_iter [s]", "efficiency",
                     "speedup vs dense"});
    const double dense_iter = iteration_time_s(profile, Algo::Dense, workers, rho, stack);
    Algo best = Algo::Dense;
    double best_iter = dense_iter;
    for (auto algo : {Algo::Dense, Algo::Topk, Algo::Gtopk}) {
        const double comm = comm_time_s(profile, algo, workers, rho, stack);
        const double iter = iteration_time_s(profile, algo, workers, rho, stack);
        if (iter < best_iter) {
            best_iter = iter;
            best = algo;
        }
        table.add_row({algo_name(algo), TextTable::fmt(comm * 1e3, 2),
                       TextTable::fmt(iter, 3),
                       TextTable::fmt(100 * scaling_efficiency(profile, algo, workers,
                                                               rho, stack),
                                      1) +
                           "%",
                       TextTable::fmt(dense_iter / iter, 2) + "x"});
    }
    table.print(std::cout);
    std::cout << "\nRecommended aggregation: " << algo_name(best) << "\n";

    // Where does gTop-k stop helping? Sweep P for the crossover vs Top-k.
    std::cout << "\nTop-k vs gTop-k crossover sweep (same rho):\n";
    TextTable sweep({"P", "Top-k [ms]", "gTop-k [ms]", "winner"});
    const auto k = static_cast<std::uint64_t>(rho * static_cast<double>(m));
    for (int p = 2; p <= 256; p *= 2) {
        const double tk = collectives::topk_allreduce_time_s(stack.sparse_net, p, k);
        const double gk = collectives::gtopk_allreduce_time_s(stack.sparse_net, p, k);
        sweep.add_row({TextTable::fmt_int(p), TextTable::fmt(tk * 1e3, 2),
                       TextTable::fmt(gk * 1e3, 2), gk < tk ? "gTop-k" : "Top-k"});
    }
    sweep.print(std::cout);
    return 0;
}
