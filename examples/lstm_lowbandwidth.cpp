// lstm_lowbandwidth: language-model training under different network
// qualities. Shows how gTop-k's advantage depends on bandwidth: on 1GbE
// the modeled communication dominates dense training, on 10GbE much less.
//
//   $ ./lstm_lowbandwidth
#include <iostream>

#include "data/sampler.hpp"
#include "data/sequence_data.hpp"
#include "nn/model_zoo.hpp"
#include "train/trainer.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main() {
    using namespace gtopk;
    using util::TextTable;
    util::set_log_level(util::LogLevel::Warn);

    const int workers = 8;
    data::SequenceDataset ds({.vocab = 16, .seq_len = 10, .peakedness = 10.0}, 3);
    data::ShardedSampler sampler(8192, 1024, workers, 4);
    nn::LstmConfig mcfg{.vocab = 16, .embed_dim = 16, .hidden_dim = 48};

    auto run = [&](train::Algorithm algo, comm::NetworkModel net) {
        train::TrainConfig config;
        config.algorithm = algo;
        config.epochs = 6;
        config.iters_per_epoch = 40;
        config.lr = 0.8f;
        config.momentum = 0.5f;
        config.density = 0.02;  // paper uses 0.005 at m = 66M; scaled for the small m here
        return train::train_distributed(
            workers, net, config,
            [&](std::uint64_t seed) { return nn::make_lstm_lm(mcfg, seed); },
            [&](std::int64_t step, int rank) {
                return ds.batch(sampler.batch_indices(step, rank, 6));
            },
            [&] { return ds.batch(sampler.test_indices(64)); });
    };

    TextTable table(
        {"Network", "Algorithm", "final loss", "comm ms/iter", "dense/gtopk comm"});
    for (auto [name, net] :
         std::vector<std::pair<std::string, comm::NetworkModel>>{
             {"1 GbE", comm::NetworkModel::one_gbps_ethernet()},
             {"10 GbE", comm::NetworkModel::ten_gbps_ethernet()}}) {
        std::cout << "running on " << name << "...\n";
        const auto dense = run(train::Algorithm::DenseSsgd, net);
        const auto gtopk = run(train::Algorithm::GtopkSsgd, net);
        const double ratio = dense.mean_comm_virtual_s / gtopk.mean_comm_virtual_s;
        table.add_row({name, "Dense S-SGD",
                       TextTable::fmt(dense.epochs.back().train_loss, 4),
                       TextTable::fmt(dense.mean_comm_virtual_s * 1e3, 2), ""});
        table.add_row({name, "gTop-k S-SGD",
                       TextTable::fmt(gtopk.epochs.back().train_loss, 4),
                       TextTable::fmt(gtopk.mean_comm_virtual_s * 1e3, 2),
                       TextTable::fmt(ratio, 1) + "x"});
    }
    std::cout << "\n";
    table.print(std::cout);
    std::cout << "\nEntropy floor of the synthetic corpus: " << ds.transition_entropy()
              << " nats/token.\n";
    return 0;
}
