// Quickstart: train a small classifier with gTop-k S-SGD on a simulated
// 4-worker 1GbE cluster, in ~30 lines of user code.
//
//   $ ./quickstart
//
// Walks through the whole public API surface: dataset, sharded sampler,
// model factory, TrainConfig, train_distributed, and the returned metrics.
#include <iostream>

#include "data/sampler.hpp"
#include "data/synthetic_images.hpp"
#include "nn/model_zoo.hpp"
#include "train/trainer.hpp"
#include "util/log.hpp"

int main() {
    using namespace gtopk;
    util::set_log_level(util::LogLevel::Warn);

    const int workers = 4;

    // 1. A deterministic synthetic dataset, sharded across the workers.
    data::SyntheticImageDataset::Config dcfg;
    dcfg.image_size = 8;
    data::SyntheticImageDataset dataset(dcfg, /*seed=*/1);
    data::ShardedSampler sampler(8192, 1024, workers, /*seed=*/2);

    // 2. A model config; the factory builds one identical replica per rank.
    nn::MlpConfig mcfg;
    mcfg.input_dim = dataset.feature_dim();
    mcfg.hidden_dims = {64, 32};

    // 3. gTop-k S-SGD (Algorithm 4 of the paper) with the warmup schedule.
    train::TrainConfig config;
    config.algorithm = train::Algorithm::GtopkSsgd;
    config.epochs = 6;
    config.iters_per_epoch = 30;
    config.lr = 0.05f;
    config.density = 0.01;                        // rho
    config.warmup_densities = {0.25, 0.0725};     // first epochs

    // 4. Run on the simulated 1 Gbps Ethernet cluster.
    const auto result = train::train_distributed(
        workers, comm::NetworkModel::one_gbps_ethernet(), config,
        [&](std::uint64_t seed) { return nn::make_mlp(mcfg, seed); },
        [&](std::int64_t step, int rank) {
            return dataset.batch_flat(sampler.batch_indices(step, rank, 16));
        },
        [&] { return dataset.batch_flat(sampler.test_indices(256)); });

    // 5. Inspect what happened.
    std::cout << "epoch  density   train-loss  val-acc\n";
    for (const auto& e : result.epochs) {
        std::cout << "  " << e.epoch << "     " << e.density << "     "
                  << e.train_loss << "      " << e.val_accuracy << "\n";
    }
    std::cout << "\nmean modeled comm time/iter on 1GbE: "
              << result.mean_comm_virtual_s * 1e3 << " ms\n"
              << "bytes sent by rank 0 overall:        "
              << result.rank0_comm.bytes_sent << "\n";
    return 0;
}
