// Quickstart: train a small classifier with gTop-k S-SGD on a simulated
// 4-worker 1GbE cluster, in ~30 lines of user code.
//
//   $ ./quickstart [--trace-out trace.json] [--telemetry-out t.jsonl]
//                  [--chaos] [--overlap]
//
// Walks through the whole public API surface: dataset, sharded sampler,
// model factory, TrainConfig, train_distributed, and the returned metrics.
// With --trace-out, every rank's per-phase spans (compute, selection, each
// gTop-k merge round, broadcast, send/recv) are exported as Chrome-trace
// JSON — open it at https://ui.perfetto.dev to see where virtual time goes.
//
// With --telemetry-out, the cluster telemetry plane streams one JSON line
// per iteration (every rank's phase timings, wire bytes, nnz) and prints
// the measured-vs-predicted cost attribution at the end; explore the
// stream with tools/gtopktop. In chaos mode a flight-recorder bundle
// (<telemetry-out>.flight.json) captures the failure forensics.
//
// With --overlap, training switches to layer-wise gTop-k with the async
// collective engine (DESIGN.md §14): gradients are fused into buckets and
// each bucket's aggregation is issued the moment backward has produced it,
// so the modeled communication hides under the modeled backward compute.
// Combine with --trace-out to see the per-bucket gtopk.allreduce.async
// spans and the NIC-timeline send_async spans overlapping in Perfetto.
//
// With --chaos, the run exercises the self-healing runtime (DESIGN.md §12):
// the fault plan kills rank 3 partway through the second epoch, the
// survivors detect the stall via their receive deadlines, regroup into a
// new membership epoch, roll back to the newest common in-memory
// checkpoint, and finish the training converged on 3 workers.
//
// With --transport tcp, the same 4-worker world runs as 4 OS processes
// over real sockets (DESIGN.md §15). Launch it under the launcher:
//
//   $ gtopkrun -n 4 -- ./quickstart --transport tcp
//
// Each process drives one rank over a comm::TcpTransport; rank 0 prints
// the results (and owns the telemetry JSONL / trace files). The training
// math is bit-identical to the in-process run — only the wire changes.
//
// --chaos composes with --transport tcp: rank 3's PROCESS dies mid-run,
// its sockets collapse, the survivors' reconnect FSM declares the links
// dead, the membership plane regroups OVER THE WIRE (leader-driven
// JOIN/VIEW frames, DESIGN.md §17), and the three survivor processes roll
// back and finish converged. The victim exits with the typed rank-killed
// code (43), so launch it as
//
//   $ gtopkrun -n 4 --allow-exit 43 -- ./quickstart --transport tcp --chaos
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "comm/comm_error.hpp"
#include "comm/fault_transport.hpp"
#include "comm/membership.hpp"
#include "comm/reliable_transport.hpp"
#include "comm/tcp_transport.hpp"
#include "data/sampler.hpp"
#include "data/synthetic_images.hpp"
#include "nn/model_zoo.hpp"
#include "obs/attribution.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/straggler.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "train/trainer.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
    using namespace gtopk;
    util::set_log_level(util::LogLevel::Warn);

    std::string trace_out;
    std::string telemetry_out;
    std::string transport_name = "inproc";
    bool trace_requested = false;
    bool telemetry_requested = false;
    bool chaos = false;
    bool overlap = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
            trace_out = argv[++i];
            trace_requested = true;
        } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
            trace_out = argv[i] + 12;
            trace_requested = true;
        } else if (std::strcmp(argv[i], "--telemetry-out") == 0 && i + 1 < argc) {
            telemetry_out = argv[++i];
            telemetry_requested = true;
        } else if (std::strncmp(argv[i], "--telemetry-out=", 16) == 0) {
            telemetry_out = argv[i] + 16;
            telemetry_requested = true;
        } else if (std::strcmp(argv[i], "--chaos") == 0) {
            chaos = true;
        } else if (std::strcmp(argv[i], "--overlap") == 0) {
            overlap = true;
        } else if (std::strcmp(argv[i], "--transport") == 0 && i + 1 < argc) {
            transport_name = argv[++i];
        } else if (std::strncmp(argv[i], "--transport=", 12) == 0) {
            transport_name = argv[i] + 12;
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--trace-out <file.json>]"
                         " [--telemetry-out <file.jsonl>] [--chaos]"
                         " [--overlap] [--transport inproc|tcp]\n";
            return 2;
        }
    }
    if (transport_name != "inproc" && transport_name != "tcp") {
        std::cerr << "error: --transport must be 'inproc' or 'tcp'\n";
        return 2;
    }
    const bool tcp = transport_name == "tcp";
    if (trace_requested && trace_out.empty()) {
        std::cerr << "error: --trace-out requires a non-empty path\n";
        return 2;
    }
    if (telemetry_requested && telemetry_out.empty()) {
        std::cerr << "error: --telemetry-out requires a non-empty path\n";
        return 2;
    }

    const int workers = 4;

    // 0. Transport. In TCP mode this process hosts exactly ONE rank of the
    // 4-worker world (gtopkrun exports the rendezvous contract through the
    // environment); the rank-0 process prints and owns the output files.
    std::unique_ptr<comm::TcpTransport> tcp_transport;
    int local_rank = -1;
    if (tcp) {
        const auto env = comm::TcpTransport::config_from_env();
        if (!env) {
            std::cerr << "error: --transport tcp requires GTOPK_RANK / "
                         "GTOPK_WORLD_SIZE / GTOPK_RENDEZVOUS; launch via:\n"
                         "  gtopkrun -n 4 -- "
                      << argv[0] << " --transport tcp\n";
            return 2;
        }
        if (env->world_size != workers) {
            std::cerr << "error: quickstart is a " << workers
                      << "-worker example; launch with gtopkrun -n " << workers
                      << "\n";
            return 2;
        }
        tcp_transport = std::make_unique<comm::TcpTransport>(*env);
        local_rank = env->rank;
        // Non-lead ranks write no files: a shared path would clobber. The
        // telemetry exchange itself stays on for every rank below — it is
        // a collective, so either all ranks run it or none do.
        if (local_rank != 0) trace_out.clear();
    }
    const bool lead_process = !tcp || local_rank == 0;

    // 1. A deterministic synthetic dataset, sharded across the workers.
    data::SyntheticImageDataset::Config dcfg;
    dcfg.image_size = 8;
    data::SyntheticImageDataset dataset(dcfg, /*seed=*/1);
    data::ShardedSampler sampler(8192, 1024, workers, /*seed=*/2);

    // 2. A model config; the factory builds one identical replica per rank.
    nn::MlpConfig mcfg;
    mcfg.input_dim = dataset.feature_dim();
    mcfg.hidden_dims = {64, 32};

    // 3. gTop-k S-SGD (Algorithm 4 of the paper) with the warmup schedule.
    train::TrainConfig config;
    config.algorithm = train::Algorithm::GtopkSsgd;
    config.epochs = 6;
    config.iters_per_epoch = 30;
    config.lr = 0.05f;
    config.density = 0.01;                        // rho
    config.warmup_densities = {0.25, 0.0725};     // first epochs
    if (tcp) {
        config.transport = tcp_transport.get();
        config.local_rank = local_rank;
        // Real sockets still arm a host-clock receive deadline so a dead
        // peer surfaces as a typed CommError instead of a hang.
        config.recv_timeout_s = 30.0;
    }

    // 3a. Optional overlapped training: layer-wise gTop-k with tensor
    // fusion, one async collective per bucket issued in gradient-ready
    // order and drained front-bucket-first. Pure scheduling — the final
    // parameters are bit-identical to the same run with overlap off.
    if (overlap) {
        config.algorithm = train::Algorithm::LayerwiseGtopkSsgd;
        config.overlap = true;
        config.bucket_bytes = 4096;        // fuse tiny tensors (MG-WFBP)
        config.overlap_backward_s = 5e-3;  // modeled backward time to hide under
        if (lead_process) {
            std::cout << "overlap mode: layer-wise gTop-k, async per-bucket "
                         "aggregation\n\n";
        }
    }

    // 3b. Optional observability: a tracer records per-rank phase spans.
    std::unique_ptr<obs::Tracer> tracer;
    if (!trace_out.empty()) {
        tracer = std::make_unique<obs::Tracer>(workers);
        config.tracer = tracer.get();
    }

    // 3b'. Optional telemetry plane: the global per-iteration stats
    // allgather plus its three consumers — cost attribution against the
    // α-β model, straggler detection, and (chaos runs) the postmortem
    // flight recorder.
    const comm::NetworkModel net = comm::NetworkModel::one_gbps_ethernet();
    std::unique_ptr<obs::Telemetry> telemetry;
    std::unique_ptr<obs::CostAttribution> attribution;
    std::unique_ptr<obs::StragglerDetector> straggler;
    std::unique_ptr<obs::FlightRecorder> recorder;
    if (!telemetry_out.empty()) {
        obs::Telemetry::Config tcfg;
        // Only the lead process opens the JSONL sink (the stats allgather
        // gives it every rank's numbers; a shared path would clobber).
        if (lead_process) tcfg.jsonl_path = telemetry_out;
        telemetry = std::make_unique<obs::Telemetry>(workers, tcfg);
        attribution = std::make_unique<obs::CostAttribution>(
            net, tracer ? &tracer->metrics() : nullptr);
        telemetry->set_attribution(attribution.get());
        straggler = std::make_unique<obs::StragglerDetector>(
            workers, obs::StragglerConfig{},
            tracer ? &tracer->metrics() : nullptr);
        telemetry->set_straggler(straggler.get());
        if (chaos) {
            obs::FlightRecorderConfig fcfg;
            fcfg.path = telemetry_out + ".flight.json";
            recorder = std::make_unique<obs::FlightRecorder>(fcfg);
            telemetry->set_flight_recorder(recorder.get());
        }
        config.telemetry = telemetry.get();
    }

    // 3c. Optional chaos: kill rank 3 mid-epoch and let the self-healing
    // runtime (heartbeats + receive deadlines + membership regroup +
    // checkpoint rollback) finish the run on the 3 survivors. In-process
    // this is a FaultPlan kill; over TCP the same plan lands in the
    // victim's own process, whose death then plays out through real
    // sockets — reconnect FSM, wire regroup and all.
    std::unique_ptr<comm::Transport> chaos_stack;
    std::unique_ptr<comm::MembershipService> membership;
    if (chaos) {
        comm::FaultPlan plan;
        plan.seed = 1;
        plan.kill_at_step(/*rank=*/3, /*step=*/45);  // mid second epoch
        if (tcp) {
            // Decorate this process's socket transport: fault layer lands
            // the kill at the exact step boundary, reliable layer runs the
            // wire ARQ over it.
            chaos_stack = std::make_unique<comm::FaultInjectingTransport>(
                std::move(tcp_transport), plan);
            chaos_stack =
                std::make_unique<comm::ReliableTransport>(std::move(chaos_stack));
        } else {
            chaos_stack =
                std::make_unique<comm::FaultInjectingTransport>(workers, plan);
        }
        membership = std::make_unique<comm::MembershipService>(*chaos_stack);
        config.transport = chaos_stack.get();
        config.membership = membership.get();
        config.recv_timeout_s = tcp ? 1.0 : 0.5;  // the stall detector
        config.checkpoint_every = 10;             // in-memory rollback cadence
        if (lead_process) {
            std::cout << "chaos mode: rank 3 will be killed at step 45\n\n";
        }
    }

    // 4. Run on the simulated 1 Gbps Ethernet cluster.
    train::TrainResult result;
    try {
        result = train::train_distributed(
            workers, net, config,
            [&](std::uint64_t seed) { return nn::make_mlp(mcfg, seed); },
            [&](std::int64_t step, int rank) {
                return dataset.batch_flat(sampler.batch_indices(step, rank, 16));
            },
            [&] { return dataset.batch_flat(sampler.test_indices(256)); });
    } catch (const comm::CommError& e) {
        // Multi-process chaos: the victim's process ends HERE, with the
        // typed code the launcher's --allow-exit whitelists.
        std::cerr << "rank " << (local_rank >= 0 ? local_rank : 0) << ": "
                  << e.what() << "\n";
        return e.kind() == comm::CommErrorKind::RankKilled ? 43 : 42;
    }

    // 5. Inspect what happened. In TCP mode only the lead process reports
    // (each peer process computed the bit-identical replica).
    if (!lead_process) return 0;
    std::cout << "epoch  density   train-loss  val-acc\n";
    for (const auto& e : result.epochs) {
        std::cout << "  " << e.epoch << "     " << e.density << "     "
                  << e.train_loss << "      " << e.val_accuracy << "\n";
    }
    std::cout << "\nmean modeled comm time/iter on 1GbE: "
              << result.mean_comm_virtual_s * 1e3 << " ms\n"
              << "bytes sent by rank 0 overall:        "
              << result.rank0_comm.bytes_sent << "\n";

    if (chaos) {
        std::cout << "\nself-healing outcome:\n";
        if (tcp) {
            // Each surviving process reports itself; the launcher line
            // ("expected casualty") plus these epochs tell the whole story.
            std::cout << "  this process survived; membership epoch: "
                      << result.final_membership_epoch
                      << "  regroups: " << result.regroups << "\n";
        } else {
            std::cout << "  survivors:";
            for (int r : result.final_members) std::cout << " " << r;
            std::cout << "\n  membership epoch: " << result.final_membership_epoch
                      << "  regroups: " << result.regroups << "\n";
            bool consistent = true;
            for (const auto& p : result.survivor_params) {
                consistent = consistent && (p == result.survivor_params.front());
            }
            std::cout << "  survivor replicas bit-identical: "
                      << (consistent ? "yes" : "NO") << "\n";
            if (!consistent) return 1;
        }
    }

    if (telemetry) {
        std::cout << "\ntelemetry: " << telemetry->exchanges()
                  << " snapshots -> " << telemetry_out << "\n"
                  << "cost attribution (measured vs alpha-beta predicted):\n";
        for (const auto& e : attribution->entries()) {
            std::cout << "  " << e.proto << " world=" << e.world
                      << " measured=" << e.mean_measured_comm_s() * 1e3 << " ms";
            if (e.predicted_comm_s) {
                std::cout << " predicted=" << *e.predicted_comm_s * 1e3 << " ms";
            }
            if (const auto r = e.ratio()) std::cout << " ratio=" << *r;
            std::cout << "\n";
        }
        if (recorder && recorder->dumps() > 0) {
            std::cout << "flight recorder bundle: " << recorder->path() << "\n";
        }
    }

    if (tracer) {
        if (!tracer->write_chrome_trace_file(trace_out)) return 1;
        const obs::PhaseTotals& tp = result.rank0_traced_phases;
        std::cout << "\ntrace written to " << trace_out
                  << "  (load in https://ui.perfetto.dev)\n"
                  << "rank 0 spans retained: " << tracer->rank_spans(0).size()
                  << " (dropped " << tracer->dropped(0) << ")\n"
                  << "trace-derived means/iter: compute "
                  << tp.mean_compute_s() * 1e3 << " ms, select "
                  << tp.mean_compress_s() * 1e3 << " ms, comm(virtual) "
                  << tp.mean_comm_virtual_s() * 1e3 << " ms\n";
    }
    return 0;
}
