// parameter_server: gTop-k under a Parameter-Server topology (the paper's
// footnote 2) vs the decentralized gTopKAllReduce tree, on identical
// training workloads. Prints convergence AND the per-iteration modeled
// communication cost of both topologies.
//
//   $ ./parameter_server [workers]
#include <cstdlib>
#include <iostream>

#include "data/sampler.hpp"
#include "data/synthetic_images.hpp"
#include "nn/model_zoo.hpp"
#include "ps/ps_trainer.hpp"
#include "train/trainer.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace gtopk;
    using util::TextTable;
    util::set_log_level(util::LogLevel::Warn);

    const int workers = argc > 1 ? std::atoi(argv[1]) : 8;
    const auto net = comm::NetworkModel::one_gbps_ethernet();

    data::SyntheticImageDataset dataset({}, 5);
    data::ShardedSampler sampler(8192, 1024, workers, 6);
    nn::MlpConfig mcfg;
    mcfg.input_dim = dataset.feature_dim();
    mcfg.hidden_dims = {96, 48};
    const auto factory = [&](std::uint64_t seed) { return nn::make_mlp(mcfg, seed); };
    const auto batches = [&](std::int64_t step, int rank) {
        return dataset.batch_flat(sampler.batch_indices(step, rank, 16));
    };
    const auto eval = [&] { return dataset.batch_flat(sampler.test_indices(256)); };

    std::cout << "training with a parameter server (1 server + " << workers
              << " workers)...\n";
    ps::PsTrainConfig ps_config;
    ps_config.aggregation = ps::PsAggregation::Gtopk;
    ps_config.epochs = 5;
    ps_config.iters_per_epoch = 25;
    ps_config.lr = 0.05f;
    ps_config.density = 0.02;
    const auto ps_run =
        ps::train_parameter_server(workers, net, ps_config, factory, batches, eval);

    std::cout << "training decentralized (gTopKAllReduce tree) on " << workers
              << " workers...\n";
    train::TrainConfig ar_config;
    ar_config.algorithm = train::Algorithm::GtopkSsgd;
    ar_config.epochs = ps_config.epochs;
    ar_config.iters_per_epoch = ps_config.iters_per_epoch;
    ar_config.lr = ps_config.lr;
    ar_config.density = ps_config.density;
    const auto ar_run =
        train::train_distributed(workers, net, ar_config, factory, batches, eval);

    TextTable table({"Topology", "final loss", "val acc", "comm ms/iter (1GbE)"});
    table.add_row({"Parameter server (star)",
                   TextTable::fmt(ps_run.epochs.back().train_loss, 4),
                   TextTable::fmt(ps_run.epochs.back().val_accuracy, 3),
                   TextTable::fmt(ps_run.mean_comm_virtual_s * 1e3, 2)});
    table.add_row({"AllReduce (tree)",
                   TextTable::fmt(ar_run.epochs.back().train_loss, 4),
                   TextTable::fmt(ar_run.epochs.back().val_accuracy, 3),
                   TextTable::fmt(ar_run.mean_comm_virtual_s * 1e3, 2)});
    std::cout << "\n";
    table.print(std::cout);
    std::cout << "\nSame algorithmic update either way (gTop-k selection);\n"
                 "the star pays O(kP) on the server uplink, the tree O(k logP).\n";
    return 0;
}
