// cifar_distributed: the paper's core comparison as an application — train
// the same CNN with Dense, Top-k and gTop-k S-SGD on a simulated 8-worker
// 1GbE cluster and report convergence AND communication cost side by side.
//
//   $ ./cifar_distributed [workers] [epochs] [csv_prefix]
//
// With a csv_prefix, per-epoch curves are exported to
// <prefix>_<algorithm>.csv for external plotting.
#include <cstdlib>
#include <iostream>

#include "data/sampler.hpp"
#include "data/synthetic_images.hpp"
#include "nn/model_zoo.hpp"
#include "train/metrics_io.hpp"
#include "train/trainer.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace gtopk;
    using util::TextTable;
    util::set_log_level(util::LogLevel::Warn);

    const int workers = argc > 1 ? std::atoi(argv[1]) : 8;
    const int epochs = argc > 2 ? std::atoi(argv[2]) : 6;
    const std::string csv_prefix = argc > 3 ? argv[3] : "";

    data::SyntheticImageDataset::Config dcfg;
    dcfg.image_size = 8;
    dcfg.noise_std = 0.6f;
    data::SyntheticImageDataset dataset(dcfg, 11);
    data::ShardedSampler sampler(8192, 1024, workers, 12);

    nn::MiniVggConfig mcfg;
    mcfg.image_size = 8;
    mcfg.conv_channels = 4;
    mcfg.fc_dim = 64;

    auto run = [&](train::Algorithm algo) {
        train::TrainConfig config;
        config.algorithm = algo;
        config.epochs = epochs;
        config.iters_per_epoch = 20;
        config.lr = 0.04f;
        config.density = 0.01;
        if (algo != train::Algorithm::DenseSsgd) {
            config.warmup_densities = {0.25, 0.0725};
        }
        return train::train_distributed(
            workers, comm::NetworkModel::one_gbps_ethernet(), config,
            [&](std::uint64_t seed) { return nn::make_mini_vgg(mcfg, seed); },
            [&](std::int64_t step, int rank) {
                return dataset.batch_images(sampler.batch_indices(step, rank, 8));
            },
            [&] { return dataset.batch_images(sampler.test_indices(128)); });
    };

    TextTable table({"Algorithm", "final loss", "val acc", "comm ms/iter (1GbE)",
                     "MB sent (rank 0)"});
    for (auto algo : {train::Algorithm::DenseSsgd, train::Algorithm::TopkSsgd,
                      train::Algorithm::GtopkSsgd}) {
        std::cout << "training with " << train::algorithm_name(algo) << " on "
                  << workers << " workers...\n";
        const auto r = run(algo);
        if (!csv_prefix.empty()) {
            std::string name = train::algorithm_name(algo);
            for (char& c : name) {
                if (c == ' ' || c == '-') c = '_';
            }
            train::write_metrics_csv_file(csv_prefix + "_" + name + ".csv", r.epochs);
        }
        table.add_row({train::algorithm_name(algo),
                       TextTable::fmt(r.epochs.back().train_loss, 4),
                       TextTable::fmt(r.epochs.back().val_accuracy, 3),
                       TextTable::fmt(r.mean_comm_virtual_s * 1e3, 2),
                       TextTable::fmt(static_cast<double>(r.rank0_comm.bytes_sent) / 1e6,
                                      2)});
    }
    std::cout << "\n";
    table.print(std::cout);
    std::cout << "\nAll three reach similar losses; gTop-k pays the least "
                 "communication —\nthe paper's story in one table.\n";
    return 0;
}
