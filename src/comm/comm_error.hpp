// Typed communication failure, the loud alternative to an indefinite hang.
//
// The simulated cluster blocks a receiver until its matched message exists;
// a dropped message (fault injection, a dead peer) would otherwise block it
// forever. Communicator's receive deadline turns that into a CommError that
// names the waiting rank, the awaited peer, and the tag, so a chaos test —
// or an operator reading a log — sees exactly which edge of which exchange
// went missing. Kind RankKilled is raised on a rank the FaultPlan has
// declared dead when it keeps using the fabric.
//
// The deadline is measured on the HOST clock: a rank waiting on a message
// that never arrives does not advance virtual time (virtual time only moves
// via modeled costs and message arrival stamps), so a wall-clock watchdog
// is the only sound detector of a stalled collective.
#pragma once

#include <stdexcept>
#include <string>

namespace gtopk::comm {

enum class CommErrorKind {
    RecvTimeout,  // matched receive exceeded its host-time deadline
    RankKilled,   // a FaultPlan-killed rank touched the transport
};

class CommError : public std::runtime_error {
public:
    CommError(CommErrorKind kind, int rank, int peer, int tag, double timeout_s)
        : std::runtime_error(format(kind, rank, peer, tag, timeout_s)),
          kind_(kind),
          rank_(rank),
          peer_(peer),
          tag_(tag),
          timeout_s_(timeout_s) {}

    CommErrorKind kind() const { return kind_; }
    /// The rank on which the error was raised.
    int rank() const { return rank_; }
    /// The peer whose message was awaited (kAnySource for wildcards).
    int peer() const { return peer_; }
    int tag() const { return tag_; }
    double timeout_s() const { return timeout_s_; }

private:
    static std::string format(CommErrorKind kind, int rank, int peer, int tag,
                              double timeout_s) {
        switch (kind) {
            case CommErrorKind::RecvTimeout:
                return "CommError: recv timeout on rank " + std::to_string(rank) +
                       " waiting for peer " + std::to_string(peer) + " tag " +
                       std::to_string(tag) + " after " + std::to_string(timeout_s) +
                       "s (host)";
            case CommErrorKind::RankKilled:
                return "CommError: rank " + std::to_string(rank) +
                       " was killed by the fault plan (peer " + std::to_string(peer) +
                       ", tag " + std::to_string(tag) + ")";
        }
        return "CommError";
    }

    CommErrorKind kind_ = CommErrorKind::RecvTimeout;
    int rank_ = -1;
    int peer_ = -1;
    int tag_ = -1;
    double timeout_s_ = 0.0;
};

}  // namespace gtopk::comm
