// RecordingTransport: a pass-through decorator (sibling of
// FaultInjectingTransport) that captures every delivered message's
// (src, dst, tag, bytes) so a live threaded run can be diffed against the
// statically generated schedule — the runtime half of commcheck's
// conformance story (src/analysis/conformance.hpp).
//
// Recording happens in deliver(), i.e. on the SENDER's thread. The global
// sequence numbers therefore reflect one valid interleaving of the run,
// while each (src, dst) edge's subsequence is exactly the sender's program
// order — the deterministic object the conformance diff compares.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "comm/transport.hpp"

namespace gtopk::comm {

/// One captured delivery.
struct RecordedMsg {
    int src = -1;
    int dst = -1;
    int tag = -1;
    std::int64_t bytes = 0;
    /// Global capture order (one valid interleaving; per-edge order is the
    /// sender's program order and is deterministic).
    std::uint64_t seq = 0;
};

class RecordingTransport final : public Transport {
public:
    /// Decorate an existing transport (takes ownership).
    explicit RecordingTransport(std::unique_ptr<Transport> inner);
    /// Convenience: fresh InProcTransport underneath.
    explicit RecordingTransport(int world_size);

    int world_size() const override { return inner_->world_size(); }
    void deliver(int dst, Message msg) override;
    Message receive(int rank, int source, int tag) override;
    std::optional<Message> try_receive(int rank, int source, int tag) override;
    std::optional<Message> receive_for(int rank, int source, int tag,
                                       double timeout_s) override;
    void shutdown() override;
    void set_tracer(obs::Tracer* tracer) override;
    std::size_t pending_with_tag_at_least(int rank, int min_tag) const override;
    bool shared_memory_fabric() const override {
        return inner_->shared_memory_fabric();
    }
    void begin_epoch(int rank, int epoch) override {
        inner_->begin_epoch(rank, epoch);
    }
    bool rank_alive(int rank) const override { return inner_->rank_alive(rank); }
    void on_progress(int rank, std::int64_t step) override {
        inner_->on_progress(rank, step);
    }
    std::vector<int> take_reconnected(int rank) override {
        return inner_->take_reconnected(rank);
    }

    /// Snapshot of everything captured so far, in global seq order.
    std::vector<RecordedMsg> log() const;
    /// The (src -> dst) edge's subsequence, in send order.
    std::vector<RecordedMsg> edge_log(int src, int dst) const;
    std::uint64_t captured() const;
    void clear();

    Transport& inner() { return *inner_; }

private:
    std::unique_ptr<Transport> inner_;
    mutable std::mutex mutex_;
    std::vector<RecordedMsg> log_;
};

}  // namespace gtopk::comm
