#include "comm/tcp_frame.hpp"

#include <cmath>
#include <cstring>

namespace gtopk::comm::tcp {

namespace {

// Explicit little-endian scalar (de)serialization: the wire format must not
// depend on the host's integer layout, and byte-wise assembly keeps the
// decoder free of unaligned loads (UBSan-clean on any input).

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFu));
    }
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFu));
    }
}

void put_i32(std::vector<std::byte>& out, std::int32_t v) {
    put_u32(out, static_cast<std::uint32_t>(v));
}

void put_f64(std::vector<std::byte>& out, double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(out, bits);
}

std::uint32_t get_u32(const std::byte* p) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[i]))
             << (8 * i);
    }
    return v;
}

std::uint64_t get_u64(const std::byte* p) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(p[i]))
             << (8 * i);
    }
    return v;
}

std::int32_t get_i32(const std::byte* p) {
    return static_cast<std::int32_t>(get_u32(p));
}

double get_f64(const std::byte* p) {
    const std::uint64_t bits = get_u64(p);
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

struct Header {
    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    std::int32_t src = 0;
    std::int32_t dst = 0;
    std::int32_t tag = 0;
    std::int32_t epoch = 0;
    double arrival_time_s = 0.0;
    std::uint64_t payload_len = 0;
};

Header parse_header(const std::byte* p) {
    Header h;
    h.magic = get_u32(p + 0);
    h.version = get_u32(p + 4);
    h.src = get_i32(p + 8);
    h.dst = get_i32(p + 12);
    h.tag = get_i32(p + 16);
    h.epoch = get_i32(p + 20);
    h.arrival_time_s = get_f64(p + 24);
    h.payload_len = get_u64(p + 32);
    return h;
}

static_assert(kFrameHeaderBytes == 40 + 4,
              "header layout: 4+4+4+4+4+4+8+8 bytes plus 4 reserved below");

void validate_header(const Header& h, std::uint64_t max_payload) {
    if (h.magic != kFrameMagic) throw FrameError("tcp frame: bad magic");
    if (h.version != kFrameVersion) {
        throw FrameError("tcp frame: unsupported version " +
                         std::to_string(h.version));
    }
    if (h.src < 0 || h.src > kMaxFrameRank) {
        throw FrameError("tcp frame: source rank out of range");
    }
    if (h.dst < 0 || h.dst > kMaxFrameRank) {
        throw FrameError("tcp frame: destination rank out of range");
    }
    if (h.tag < 0) throw FrameError("tcp frame: negative tag");
    if (h.epoch < 0) throw FrameError("tcp frame: negative epoch");
    if (!std::isfinite(h.arrival_time_s) || h.arrival_time_s < 0.0) {
        throw FrameError("tcp frame: invalid arrival stamp");
    }
    if (h.payload_len > max_payload || h.payload_len > kMaxFramePayload) {
        throw FrameError("tcp frame: payload length " +
                         std::to_string(h.payload_len) + " exceeds limit");
    }
}

}  // namespace

void encode_frame(const Message& msg, int dst, std::vector<std::byte>& out,
                  std::uint64_t max_payload) {
    Header h;
    h.magic = kFrameMagic;
    h.version = kFrameVersion;
    h.src = msg.source;
    h.dst = dst;
    h.tag = msg.tag;
    h.epoch = msg.epoch;
    h.arrival_time_s = msg.arrival_time_s;
    h.payload_len = msg.payload.size();
    validate_header(h, max_payload);

    out.reserve(out.size() + kFrameHeaderBytes + msg.payload.size());
    put_u32(out, h.magic);
    put_u32(out, h.version);
    put_i32(out, h.src);
    put_i32(out, h.dst);
    put_i32(out, h.tag);
    put_i32(out, h.epoch);
    put_f64(out, h.arrival_time_s);
    put_u64(out, h.payload_len);
    put_u32(out, 0);  // reserved: keeps the header 4-byte-rounded at 44
    out.insert(out.end(), msg.payload.begin(), msg.payload.end());
}

void FrameDecoder::feed(std::span<const std::byte> bytes) {
    // Compact the already-consumed prefix before growing: keeps the buffer
    // proportional to the unfinished frame, not to connection lifetime.
    if (consumed_ > 0) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
        consumed_ = 0;
    }
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<DecodedFrame> FrameDecoder::next() {
    const std::size_t avail = buffer_.size() - consumed_;
    if (avail < kFrameHeaderBytes) return std::nullopt;
    const std::byte* base = buffer_.data() + consumed_;

    // Validate eagerly: a bad header is rejected here, before any payload
    // bytes are waited for — an oversized length prefix never buffers.
    const Header h = parse_header(base);
    validate_header(h, max_payload_);

    const std::size_t total = kFrameHeaderBytes + h.payload_len;
    if (avail < total) return std::nullopt;

    DecodedFrame frame;
    frame.msg.source = h.src;
    frame.msg.tag = h.tag;
    frame.msg.epoch = h.epoch;
    frame.msg.arrival_time_s = h.arrival_time_s;
    frame.msg.payload.assign(base + kFrameHeaderBytes, base + total);
    frame.dst = h.dst;
    consumed_ += total;
    if (consumed_ == buffer_.size()) {
        buffer_.clear();
        consumed_ = 0;
    }
    return frame;
}

}  // namespace gtopk::comm::tcp
