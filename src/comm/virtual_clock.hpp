// Per-worker virtual clock.
//
// The cluster is simulated by one thread per worker inside a single process,
// so wall-clock time measures the host machine, not the modeled 1GbE
// network. Instead every worker carries a virtual clock (seconds, double):
// communication primitives advance it according to the NetworkModel, and
// trainers advance it by profiled compute times. Collectives synchronize
// clocks through message timestamps (a receive cannot complete before the
// message's modeled arrival), which reproduces the critical-path timing of a
// real synchronous cluster.
#pragma once

#include <algorithm>
#include <cassert>

namespace gtopk::comm {

class VirtualClock {
public:
    double now_s() const { return now_s_; }

    /// Move time forward by dt >= 0 seconds.
    void advance(double dt_s) {
        assert(dt_s >= 0.0);
        now_s_ += dt_s;
    }

    /// Jump forward to at least `t_s` (no-op if already past it). Used by
    /// receives: the receiver cannot proceed before the message arrives.
    void advance_to(double t_s) { now_s_ = std::max(now_s_, t_s); }

    void reset() { now_s_ = 0.0; }

private:
    double now_s_ = 0.0;
};

}  // namespace gtopk::comm
