#include "comm/buffer_pool.hpp"

namespace gtopk::comm {

std::vector<std::byte> BufferPool::acquire(std::size_t size) {
    ++stats_.acquires;
    // Best-fit over the (tiny, <= kMaxFree) freelist: prefer the smallest
    // buffer whose capacity already covers the request, so big buffers stay
    // available for big messages.
    std::size_t best = free_.size();
    for (std::size_t i = 0; i < free_.size(); ++i) {
        if (free_[i].capacity() < size) continue;
        if (best == free_.size() || free_[i].capacity() < free_[best].capacity()) {
            best = i;
        }
    }
    if (best == free_.size() && !free_.empty()) {
        // Nothing big enough: grow the largest one (keeps list short).
        best = 0;
        for (std::size_t i = 1; i < free_.size(); ++i) {
            if (free_[i].capacity() > free_[best].capacity()) best = i;
        }
    }
    if (best < free_.size()) {
        std::vector<std::byte> buf = std::move(free_[best]);
        free_[best] = std::move(free_.back());
        free_.pop_back();
        if (buf.capacity() >= size) ++stats_.pool_hits;
        buf.resize(size);
        return buf;
    }
    return std::vector<std::byte>(size);
}

void BufferPool::release(std::vector<std::byte>&& buf) {
    ++stats_.releases;
    if (buf.capacity() == 0) return;
    if (free_.size() >= kMaxFree) {
        ++stats_.dropped;
        return;  // let it free
    }
    free_.push_back(std::move(buf));
}

}  // namespace gtopk::comm
