// Cluster: spawns P worker threads, each with its own Communicator, runs a
// user callback on every rank, and joins — the `mpirun` of this repo.
//
// If any rank throws, the cluster shuts the transport down (unblocking
// peers stuck in recv) and rethrows the first exception on the caller's
// thread, so a failing test surfaces as a failure instead of a hang.
#pragma once

#include <functional>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/network_model.hpp"
#include "comm/transport.hpp"

namespace gtopk::obs {
class Tracer;
}  // namespace gtopk::obs

namespace gtopk::comm {

class Cluster {
public:
    using WorkerFn = std::function<void(Communicator&)>;

    /// Run `fn` on `world_size` ranks over a fresh InProcTransport.
    /// Returns the final per-rank CommStats (index == rank).
    /// With a non-null `tracer` (whose world_size must cover this one),
    /// every rank's Communicator and the transport record spans/metrics
    /// into it; nullptr (the default) keeps tracing entirely off.
    /// `recv_timeout_s` > 0 arms every rank's Communicator receive deadline
    /// (host seconds; see Communicator::set_recv_timeout_s) so a missing
    /// message fails as CommError instead of hanging — the default 0 keeps
    /// the historical wait-forever behavior.
    static std::vector<CommStats> run(int world_size, NetworkModel model,
                                      const WorkerFn& fn,
                                      obs::Tracer* tracer = nullptr,
                                      double recv_timeout_s = 0.0);

    /// Convenience: run and also collect each rank's final virtual time.
    struct RunResult {
        std::vector<CommStats> stats;
        std::vector<double> final_time_s;
    };
    static RunResult run_timed(int world_size, NetworkModel model, const WorkerFn& fn,
                               obs::Tracer* tracer = nullptr,
                               double recv_timeout_s = 0.0);

    /// Run over an EXTERNAL transport (e.g. a FaultInjectingTransport) —
    /// the chaos harness's entry point. The transport provides the world
    /// size and is shut down on the first rank failure exactly like the
    /// in-proc one; it is NOT shut down on success, so callers can inspect
    /// it (fault counts) and reuse it across runs is not supported.
    static std::vector<CommStats> run_on(Transport& transport, NetworkModel model,
                                         const WorkerFn& fn,
                                         obs::Tracer* tracer = nullptr,
                                         double recv_timeout_s = 0.0);
    static RunResult run_timed_on(Transport& transport, NetworkModel model,
                                  const WorkerFn& fn, obs::Tracer* tracer = nullptr,
                                  double recv_timeout_s = 0.0);

    /// Run ONE rank of a multi-process world on the calling thread — the
    /// per-process half of a TcpTransport deployment, where every peer rank
    /// lives in its own OS process and only `rank` is local. Exception
    /// semantics mirror run_timed_on: a worker failure shuts the transport
    /// down (so this process's blocked receives wake) and rethrows;
    /// MailboxClosed is swallowed as a secondary effect of a peer-initiated
    /// shutdown.
    struct LocalRunResult {
        CommStats stats;
        double final_time_s = 0.0;
        bool completed = false;  // false: MailboxClosed cut the worker short
    };
    static LocalRunResult run_local(Transport& transport, int rank,
                                    NetworkModel model, const WorkerFn& fn,
                                    obs::Tracer* tracer = nullptr,
                                    double recv_timeout_s = 0.0);
};

}  // namespace gtopk::comm
