#include "comm/membership.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "comm/comm_error.hpp"
#include "comm/tags.hpp"

namespace gtopk::comm {

namespace {

std::chrono::steady_clock::duration host_dur(double seconds) {
    return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(seconds));
}

// Wire regroup frame layout (little-endian):
//   JOIN  (kTagMembershipJoin): [u64 joiner's current epoch]
//   VIEW  (kTagMembershipView): [u64 epoch][u64 count][count x u32 ranks]
// The epoch inside JOIN lets the leader ignore resends that straggle in
// from an already-finalized round; both frames additionally carry the
// sender's current epoch in Message::epoch so the mailbox floors apply.

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        out.push_back(std::byte{static_cast<unsigned char>((v >> (8 * i)) & 0xff)});
    }
}

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        out.push_back(std::byte{static_cast<unsigned char>((v >> (8 * i)) & 0xff)});
    }
}

std::uint64_t get_u64(const std::vector<std::byte>& p, std::size_t at) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(std::to_integer<unsigned char>(p[at + i]))
             << (8 * i);
    }
    return v;
}

std::uint32_t get_u32(const std::vector<std::byte>& p, std::size_t at) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(std::to_integer<unsigned char>(p[at + i]))
             << (8 * i);
    }
    return v;
}

}  // namespace

MembershipService::MembershipService(Transport& transport, MembershipConfig config)
    : transport_(transport), config_(config) {
    const int world = transport_.world_size();
    state_ = fsm::membership_init(world);
    rank_state_.resize(static_cast<std::size_t>(world));
    util::Xoshiro256 root(config_.seed);
    for (int r = 0; r < world; ++r) {
        auto& st = rank_state_[static_cast<std::size_t>(r)];
        st.last_heard.resize(static_cast<std::size_t>(world));
        // Desynchronize gossip phases so P heartbeats do not land as one
        // synchronized burst every interval.
        st.phase_jitter = host_dur(config_.heartbeat_interval_s *
                                   root.fork(static_cast<std::uint64_t>(r))
                                       .next_double());
    }
}

void MembershipService::tick(int rank) {
    if (rank < 0 || rank >= transport_.world_size()) {
        throw std::out_of_range("tick: bad rank");
    }
    auto& st = rank_state_[static_cast<std::size_t>(rank)];
    const auto now = Clock::now();
    if (!st.started) {
        st.started = true;
        st.last_sent = now - host_dur(config_.heartbeat_interval_s) + st.phase_jitter;
        // Peers get the benefit of the doubt from the moment we start
        // observing: silence is only measured from here.
        for (auto& t : st.last_heard) t = now;
    }

    if (now - st.last_sent >= host_dur(config_.heartbeat_interval_s)) {
        st.last_sent = now;
        const int epoch = this->epoch();
        const int world = transport_.world_size();
        // Bounded fan-out: a burst covers `fanout` peers starting at the
        // rotating cursor (fanout <= 0 broadcasts, the historical O(P)
        // behavior). The cursor walks the peer ring so the full world is
        // refreshed once per rotation cycle, turning the cluster-wide
        // gossip cost from O(P^2) per interval into O(P * fanout).
        const int peers = world - 1;
        const int burst = (config_.heartbeat_fanout <= 0 ||
                           config_.heartbeat_fanout >= peers)
                              ? peers
                              : config_.heartbeat_fanout;
        for (int i = 0; i < burst; ++i) {
            int peer = (st.gossip_cursor + i) % (peers > 0 ? peers : 1);
            // Peer index skips self: [0..world-2] maps onto ranks != rank.
            if (peer >= rank) ++peer;
            // Over a real fabric a dead peer's link refuses traffic with a
            // typed throw; the liveness plane must not let that bubble into
            // the trainer — silence toward the dead is exactly right.
            if (!transport_.rank_alive(peer)) continue;
            Message hb;
            hb.source = rank;
            hb.tag = kTagHeartbeat;
            hb.epoch = epoch;
            // Heartbeats are free on the modeled network: they ride the
            // control plane and never advance a virtual clock.
            hb.arrival_time_s = 0.0;
            try {
                transport_.deliver(peer, std::move(hb));
            } catch (const CommError&) {
                // Peer died between the aliveness check and the send.
            }
        }
        if (peers > 0) st.gossip_cursor = (st.gossip_cursor + burst) % peers;
        heartbeats_sent_.fetch_add(1, std::memory_order_relaxed);
    }

    // Drain gossip. A killed peer's sends are swallowed by the fault
    // layer, so its entry simply stops refreshing.
    for (;;) {
        std::optional<Message> hb;
        try {
            hb = transport_.try_receive(rank, kAnySource, kTagHeartbeat);
        } catch (...) {
            return;  // shutdown or own death; liveness plane is best-effort
        }
        if (!hb) break;
        st.last_heard[static_cast<std::size_t>(hb->source)] = now;
    }
}

std::vector<int> MembershipService::suspected(int rank) const {
    const auto& st = rank_state_[static_cast<std::size_t>(rank)];
    std::vector<int> out;
    if (!st.started) return out;
    const auto now = Clock::now();
    for (int peer = 0; peer < transport_.world_size(); ++peer) {
        if (peer == rank) continue;
        if (now - st.last_heard[static_cast<std::size_t>(peer)] >
            host_dur(config_.suspect_after_s)) {
            out.push_back(peer);
        }
    }
    return out;
}

std::vector<bool> MembershipService::fabric_alive_unlocked() const {
    const int world = transport_.world_size();
    std::vector<bool> alive(static_cast<std::size_t>(world), true);
    for (int r = 0; r < world; ++r) {
        alive[static_cast<std::size_t>(r)] = transport_.rank_alive(r);
    }
    return alive;
}

void MembershipService::leave(int rank) {
    if (rank < 0 || rank >= transport_.world_size()) {
        throw std::out_of_range("leave: bad rank");
    }
    std::lock_guard<std::mutex> lock(mutex_);
    fsm::membership_leave(state_, rank);
    cv_.notify_all();  // waiting regroupers recompute their expected set
}

MembershipView MembershipService::regroup(int rank) {
    if (!transport_.shared_memory_fabric()) return regroup_wire(rank);
    std::unique_lock<std::mutex> lock(mutex_);
    switch (fsm::membership_join(state_, rank, fabric_alive_unlocked())) {
        case fsm::JoinVerdict::kNotLive:
            throw std::invalid_argument("regroup: rank not a live member");
        case fsm::JoinVerdict::kNotInView:
            throw std::invalid_argument("regroup: rank not in current view");
        case fsm::JoinVerdict::kJoined:
        case fsm::JoinVerdict::kAlreadyJoined:
            break;
    }
    const std::uint64_t my_round = state_.round;

    const auto grace_deadline = Clock::now() + host_dur(config_.join_grace_s);
    for (;;) {
        if (state_.round != my_round) {
            // Someone finalized our round; every joiner returns that view.
            return MembershipView{state_.epoch, state_.members};
        }
        const bool grace_expired = Clock::now() >= grace_deadline;
        switch (fsm::membership_evaluate(state_, fabric_alive_unlocked(),
                                         grace_expired)) {
            case fsm::RoundVerdict::kFinalizeAll:
            case fsm::RoundVerdict::kFinalizeQuorum: {
                const MembershipView view = fsm::membership_finalize(state_);
                cv_.notify_all();
                return view;
            }
            case fsm::RoundVerdict::kAbortNoQuorum:
                throw std::runtime_error(
                    "regroup: join grace expired without a majority of live "
                    "members; refusing to finalize a minority view");
            case fsm::RoundVerdict::kWait:
                break;
        }
        cv_.wait_until(lock, grace_deadline);
    }
}

MembershipView MembershipService::regroup_wire(int rank) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        switch (fsm::membership_join(state_, rank, fabric_alive_unlocked())) {
            case fsm::JoinVerdict::kNotLive:
                throw std::invalid_argument("regroup: rank not a live member");
            case fsm::JoinVerdict::kNotInView:
                throw std::invalid_argument("regroup: rank not in current view");
            case fsm::JoinVerdict::kJoined:
            case fsm::JoinVerdict::kAlreadyJoined:
                break;
        }
    }
    // Election is re-run by the follower loop every spin, so a rank that
    // becomes lowest-live mid-round (the previous leader was the casualty)
    // promotes itself.
    return regroup_wire_follower(rank);
}

MembershipView MembershipService::regroup_wire_leader(int rank) {
    const auto grace_deadline = Clock::now() + host_dur(config_.join_grace_s);
    for (;;) {
        // Fold incoming JOINs into the same FSM the barrier path executes.
        for (;;) {
            std::optional<Message> jm;
            jm = transport_.try_receive(rank, kAnySource, kTagMembershipJoin);
            if (!jm) break;
            if (jm->payload.size() != 8) continue;  // malformed: drop
            const std::uint64_t proposal = get_u64(jm->payload, 0);
            std::lock_guard<std::mutex> lock(mutex_);
            if (proposal != static_cast<std::uint64_t>(state_.epoch)) {
                continue;  // straggling resend from an already-closed round
            }
            (void)fsm::membership_join(state_, jm->source, fabric_alive_unlocked());
        }

        const bool grace_expired = Clock::now() >= grace_deadline;
        bool finalized = false;
        MembershipView view;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            switch (fsm::membership_evaluate(state_, fabric_alive_unlocked(),
                                             grace_expired)) {
                case fsm::RoundVerdict::kFinalizeAll:
                case fsm::RoundVerdict::kFinalizeQuorum:
                    view = fsm::membership_finalize(state_);
                    finalized = true;
                    break;
                case fsm::RoundVerdict::kAbortNoQuorum:
                    throw std::runtime_error(
                        "regroup: join grace expired without a majority of "
                        "live members; refusing to finalize a minority view");
                case fsm::RoundVerdict::kWait:
                    break;
            }
        }
        if (finalized) {
            // Broadcast the agreed view to every other member. The frames
            // ride the reliable layer, so a lost TCP segment is the ARQ's
            // problem, not a second agreement round's.
            for (int m : view.members) {
                if (m == rank) continue;
                Message vm;
                vm.source = rank;
                vm.tag = kTagMembershipView;
                vm.epoch = view.epoch;
                vm.arrival_time_s = 0.0;
                put_u64(vm.payload, static_cast<std::uint64_t>(view.epoch));
                put_u64(vm.payload, static_cast<std::uint64_t>(view.members.size()));
                for (int r : view.members) {
                    put_u32(vm.payload, static_cast<std::uint32_t>(r));
                }
                try {
                    transport_.deliver(m, std::move(vm));
                } catch (const CommError&) {
                    // Member died after finalization; the NEXT round will
                    // vote it out.
                }
            }
            cv_.notify_all();
            return view;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
}

MembershipView MembershipService::regroup_wire_follower(int rank) {
    // Twice the leader's grace: the leader may burn a full window itself
    // before the VIEW goes out.
    const auto deadline = Clock::now() + host_dur(2.0 * config_.join_grace_s);
    auto next_join = Clock::now();
    for (;;) {
        // Re-elect from a fresh liveness snapshot: the leader is whatever
        // rank is CURRENTLY the lowest live member of the current view.
        int leader = rank;
        int my_epoch = 0;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            const auto live =
                fsm::membership_live_members(state_, fabric_alive_unlocked());
            if (!live.empty()) leader = live.front();
            my_epoch = state_.epoch;
        }
        if (leader == rank) return regroup_wire_leader(rank);

        const auto now = Clock::now();
        if (now >= next_join) {
            next_join = now + host_dur(0.1);
            Message jm;
            jm.source = rank;
            jm.tag = kTagMembershipJoin;
            jm.epoch = my_epoch;
            jm.arrival_time_s = 0.0;
            put_u64(jm.payload, static_cast<std::uint64_t>(my_epoch));
            try {
                transport_.deliver(leader, std::move(jm));
            } catch (const CommError&) {
                continue;  // leader just died; re-elect on the next spin
            }
        }

        const auto vm = transport_.try_receive(rank, kAnySource, kTagMembershipView);
        if (vm && vm->payload.size() >= 16) {
            const std::uint64_t epoch = get_u64(vm->payload, 0);
            const std::uint64_t count = get_u64(vm->payload, 8);
            if (vm->payload.size() == 16 + 4 * count) {
                std::vector<int> members;
                members.reserve(count);
                for (std::uint64_t i = 0; i < count; ++i) {
                    members.push_back(
                        static_cast<int>(get_u32(vm->payload, 16 + 4 * i)));
                }
                std::lock_guard<std::mutex> lock(mutex_);
                if (static_cast<int>(epoch) > state_.epoch) {
                    // Install the leader's agreement verbatim: same epoch,
                    // same member set, round closed.
                    state_.epoch = static_cast<int>(epoch);
                    state_.members = members;
                    std::fill(state_.joined.begin(), state_.joined.end(), false);
                    ++state_.round;
                    cv_.notify_all();
                    return MembershipView{state_.epoch, std::move(members)};
                }
            }
        }

        if (Clock::now() >= deadline) {
            // No agreed view reached this rank — either the leader's round
            // aborted without quorum or this rank was voted out while its
            // JOIN was in flight. Either way it must NOT train on.
            throw std::runtime_error(
                "regroup: no agreed view from leader within the grace "
                "window; refusing to continue on a stale membership");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
}

bool MembershipService::alive(int rank) const {
    if (rank < 0 || rank >= transport_.world_size()) return false;
    std::lock_guard<std::mutex> lock(mutex_);
    return fsm::membership_rank_live(state_, rank, fabric_alive_unlocked());
}

MembershipView MembershipService::current() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return MembershipView{state_.epoch, state_.members};
}

int MembershipService::epoch() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return state_.epoch;
}

std::uint64_t MembershipService::heartbeats_sent() const {
    return heartbeats_sent_.load(std::memory_order_relaxed);
}

}  // namespace gtopk::comm
