#include "comm/membership.hpp"

#include <algorithm>
#include <stdexcept>

#include "comm/tags.hpp"

namespace gtopk::comm {

namespace {

std::chrono::steady_clock::duration host_dur(double seconds) {
    return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(seconds));
}

}  // namespace

MembershipService::MembershipService(Transport& transport, MembershipConfig config)
    : transport_(transport), config_(config) {
    const int world = transport_.world_size();
    view_.epoch = 0;
    view_.members.resize(static_cast<std::size_t>(world));
    for (int r = 0; r < world; ++r) view_.members[static_cast<std::size_t>(r)] = r;
    left_.assign(static_cast<std::size_t>(world), false);
    joined_.assign(static_cast<std::size_t>(world), false);
    rank_state_.resize(static_cast<std::size_t>(world));
    util::Xoshiro256 root(config_.seed);
    for (int r = 0; r < world; ++r) {
        auto& st = rank_state_[static_cast<std::size_t>(r)];
        st.last_heard.resize(static_cast<std::size_t>(world));
        // Desynchronize gossip phases so P heartbeats do not land as one
        // synchronized burst every interval.
        st.phase_jitter = host_dur(config_.heartbeat_interval_s *
                                   root.fork(static_cast<std::uint64_t>(r))
                                       .next_double());
    }
}

void MembershipService::tick(int rank) {
    if (rank < 0 || rank >= transport_.world_size()) {
        throw std::out_of_range("tick: bad rank");
    }
    auto& st = rank_state_[static_cast<std::size_t>(rank)];
    const auto now = Clock::now();
    if (!st.started) {
        st.started = true;
        st.last_sent = now - host_dur(config_.heartbeat_interval_s) + st.phase_jitter;
        // Peers get the benefit of the doubt from the moment we start
        // observing: silence is only measured from here.
        for (auto& t : st.last_heard) t = now;
    }

    if (now - st.last_sent >= host_dur(config_.heartbeat_interval_s)) {
        st.last_sent = now;
        const int epoch = this->epoch();
        const int world = transport_.world_size();
        // Bounded fan-out: a burst covers `fanout` peers starting at the
        // rotating cursor (fanout <= 0 broadcasts, the historical O(P)
        // behavior). The cursor walks the peer ring so the full world is
        // refreshed once per rotation cycle, turning the cluster-wide
        // gossip cost from O(P^2) per interval into O(P * fanout).
        const int peers = world - 1;
        const int burst = (config_.heartbeat_fanout <= 0 ||
                           config_.heartbeat_fanout >= peers)
                              ? peers
                              : config_.heartbeat_fanout;
        for (int i = 0; i < burst; ++i) {
            int peer = (st.gossip_cursor + i) % (peers > 0 ? peers : 1);
            // Peer index skips self: [0..world-2] maps onto ranks != rank.
            if (peer >= rank) ++peer;
            Message hb;
            hb.source = rank;
            hb.tag = kTagHeartbeat;
            hb.epoch = epoch;
            // Heartbeats are free on the modeled network: they ride the
            // control plane and never advance a virtual clock.
            hb.arrival_time_s = 0.0;
            transport_.deliver(peer, std::move(hb));
        }
        if (peers > 0) st.gossip_cursor = (st.gossip_cursor + burst) % peers;
        heartbeats_sent_.fetch_add(1, std::memory_order_relaxed);
    }

    // Drain gossip. A killed peer's sends are swallowed by the fault
    // layer, so its entry simply stops refreshing.
    for (;;) {
        std::optional<Message> hb;
        try {
            hb = transport_.try_receive(rank, kAnySource, kTagHeartbeat);
        } catch (...) {
            return;  // shutdown or own death; liveness plane is best-effort
        }
        if (!hb) break;
        st.last_heard[static_cast<std::size_t>(hb->source)] = now;
    }
}

std::vector<int> MembershipService::suspected(int rank) const {
    const auto& st = rank_state_[static_cast<std::size_t>(rank)];
    std::vector<int> out;
    if (!st.started) return out;
    const auto now = Clock::now();
    for (int peer = 0; peer < transport_.world_size(); ++peer) {
        if (peer == rank) continue;
        if (now - st.last_heard[static_cast<std::size_t>(peer)] >
            host_dur(config_.suspect_after_s)) {
            out.push_back(peer);
        }
    }
    return out;
}

void MembershipService::leave(int rank) {
    if (rank < 0 || rank >= transport_.world_size()) {
        throw std::out_of_range("leave: bad rank");
    }
    std::lock_guard<std::mutex> lock(mutex_);
    left_[static_cast<std::size_t>(rank)] = true;
    if (joined_[static_cast<std::size_t>(rank)]) {
        joined_[static_cast<std::size_t>(rank)] = false;
        --joined_count_;
    }
    cv_.notify_all();  // waiting regroupers recompute their expected set
}

std::vector<int> MembershipService::live_members_unlocked() const {
    std::vector<int> out;
    for (int r : view_.members) {
        if (alive_unlocked(r)) out.push_back(r);
    }
    return out;
}

void MembershipService::finalize_round_unlocked() {
    MembershipView next;
    next.epoch = view_.epoch + 1;
    for (int r = 0; r < transport_.world_size(); ++r) {
        if (joined_[static_cast<std::size_t>(r)]) next.members.push_back(r);
    }
    // joined_ is rank-indexed, so members comes out sorted: the lowest
    // surviving physical rank is logical rank 0 in the new world.
    view_ = std::move(next);
    ++round_;
    std::fill(joined_.begin(), joined_.end(), false);
    joined_count_ = 0;
    cv_.notify_all();
}

MembershipView MembershipService::regroup(int rank) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (rank < 0 || rank >= transport_.world_size() ||
        !alive_unlocked(rank)) {
        throw std::invalid_argument("regroup: rank not a live member");
    }
    // A rank a previous round voted out must not join: allowing it would
    // let an excluded straggler spin up a fresh round, finalize a view
    // without the actual members, and train on with a higher epoch.
    if (std::find(view_.members.begin(), view_.members.end(), rank) ==
        view_.members.end()) {
        throw std::invalid_argument("regroup: rank not in current view");
    }
    const std::uint64_t my_round = round_;
    if (!joined_[static_cast<std::size_t>(rank)]) {
        joined_[static_cast<std::size_t>(rank)] = true;
        ++joined_count_;
    }

    const auto grace_deadline = Clock::now() + host_dur(config_.join_grace_s);
    for (;;) {
        if (round_ != my_round) return view_;  // someone finalized our round
        const std::vector<int> live = live_members_unlocked();
        const std::size_t joined_live = static_cast<std::size_t>(
            std::count_if(live.begin(), live.end(), [&](int r) {
                return joined_[static_cast<std::size_t>(r)];
            }));
        if (joined_live >= live.size()) {
            finalize_round_unlocked();  // fast path: every live member joined
            return view_;
        }
        if (Clock::now() >= grace_deadline) {
            // Straggler bound hit. Only a strict majority of the live
            // members may finalize without the rest — a minority view could
            // coexist with (and outrank) the majority's. Without quorum the
            // round cannot safely conclude anything: abort.
            if (joined_live * 2 > live.size()) {
                finalize_round_unlocked();
                return view_;
            }
            throw std::runtime_error(
                "regroup: join grace expired without a majority of live "
                "members; refusing to finalize a minority view");
        }
        cv_.wait_until(lock, grace_deadline);
    }
}

bool MembershipService::alive(int rank) const {
    if (rank < 0 || rank >= transport_.world_size()) return false;
    std::lock_guard<std::mutex> lock(mutex_);
    return alive_unlocked(rank);
}

MembershipView MembershipService::current() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return view_;
}

int MembershipService::epoch() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return view_.epoch;
}

std::uint64_t MembershipService::heartbeats_sent() const {
    return heartbeats_sent_.load(std::memory_order_relaxed);
}

}  // namespace gtopk::comm
