#include "comm/membership.hpp"

#include <stdexcept>

#include "comm/tags.hpp"

namespace gtopk::comm {

namespace {

std::chrono::steady_clock::duration host_dur(double seconds) {
    return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(seconds));
}

}  // namespace

MembershipService::MembershipService(Transport& transport, MembershipConfig config)
    : transport_(transport), config_(config) {
    const int world = transport_.world_size();
    state_ = fsm::membership_init(world);
    rank_state_.resize(static_cast<std::size_t>(world));
    util::Xoshiro256 root(config_.seed);
    for (int r = 0; r < world; ++r) {
        auto& st = rank_state_[static_cast<std::size_t>(r)];
        st.last_heard.resize(static_cast<std::size_t>(world));
        // Desynchronize gossip phases so P heartbeats do not land as one
        // synchronized burst every interval.
        st.phase_jitter = host_dur(config_.heartbeat_interval_s *
                                   root.fork(static_cast<std::uint64_t>(r))
                                       .next_double());
    }
}

void MembershipService::tick(int rank) {
    if (rank < 0 || rank >= transport_.world_size()) {
        throw std::out_of_range("tick: bad rank");
    }
    auto& st = rank_state_[static_cast<std::size_t>(rank)];
    const auto now = Clock::now();
    if (!st.started) {
        st.started = true;
        st.last_sent = now - host_dur(config_.heartbeat_interval_s) + st.phase_jitter;
        // Peers get the benefit of the doubt from the moment we start
        // observing: silence is only measured from here.
        for (auto& t : st.last_heard) t = now;
    }

    if (now - st.last_sent >= host_dur(config_.heartbeat_interval_s)) {
        st.last_sent = now;
        const int epoch = this->epoch();
        const int world = transport_.world_size();
        // Bounded fan-out: a burst covers `fanout` peers starting at the
        // rotating cursor (fanout <= 0 broadcasts, the historical O(P)
        // behavior). The cursor walks the peer ring so the full world is
        // refreshed once per rotation cycle, turning the cluster-wide
        // gossip cost from O(P^2) per interval into O(P * fanout).
        const int peers = world - 1;
        const int burst = (config_.heartbeat_fanout <= 0 ||
                           config_.heartbeat_fanout >= peers)
                              ? peers
                              : config_.heartbeat_fanout;
        for (int i = 0; i < burst; ++i) {
            int peer = (st.gossip_cursor + i) % (peers > 0 ? peers : 1);
            // Peer index skips self: [0..world-2] maps onto ranks != rank.
            if (peer >= rank) ++peer;
            Message hb;
            hb.source = rank;
            hb.tag = kTagHeartbeat;
            hb.epoch = epoch;
            // Heartbeats are free on the modeled network: they ride the
            // control plane and never advance a virtual clock.
            hb.arrival_time_s = 0.0;
            transport_.deliver(peer, std::move(hb));
        }
        if (peers > 0) st.gossip_cursor = (st.gossip_cursor + burst) % peers;
        heartbeats_sent_.fetch_add(1, std::memory_order_relaxed);
    }

    // Drain gossip. A killed peer's sends are swallowed by the fault
    // layer, so its entry simply stops refreshing.
    for (;;) {
        std::optional<Message> hb;
        try {
            hb = transport_.try_receive(rank, kAnySource, kTagHeartbeat);
        } catch (...) {
            return;  // shutdown or own death; liveness plane is best-effort
        }
        if (!hb) break;
        st.last_heard[static_cast<std::size_t>(hb->source)] = now;
    }
}

std::vector<int> MembershipService::suspected(int rank) const {
    const auto& st = rank_state_[static_cast<std::size_t>(rank)];
    std::vector<int> out;
    if (!st.started) return out;
    const auto now = Clock::now();
    for (int peer = 0; peer < transport_.world_size(); ++peer) {
        if (peer == rank) continue;
        if (now - st.last_heard[static_cast<std::size_t>(peer)] >
            host_dur(config_.suspect_after_s)) {
            out.push_back(peer);
        }
    }
    return out;
}

std::vector<bool> MembershipService::fabric_alive_unlocked() const {
    const int world = transport_.world_size();
    std::vector<bool> alive(static_cast<std::size_t>(world), true);
    for (int r = 0; r < world; ++r) {
        alive[static_cast<std::size_t>(r)] = transport_.rank_alive(r);
    }
    return alive;
}

void MembershipService::leave(int rank) {
    if (rank < 0 || rank >= transport_.world_size()) {
        throw std::out_of_range("leave: bad rank");
    }
    std::lock_guard<std::mutex> lock(mutex_);
    fsm::membership_leave(state_, rank);
    cv_.notify_all();  // waiting regroupers recompute their expected set
}

MembershipView MembershipService::regroup(int rank) {
    std::unique_lock<std::mutex> lock(mutex_);
    switch (fsm::membership_join(state_, rank, fabric_alive_unlocked())) {
        case fsm::JoinVerdict::kNotLive:
            throw std::invalid_argument("regroup: rank not a live member");
        case fsm::JoinVerdict::kNotInView:
            throw std::invalid_argument("regroup: rank not in current view");
        case fsm::JoinVerdict::kJoined:
        case fsm::JoinVerdict::kAlreadyJoined:
            break;
    }
    const std::uint64_t my_round = state_.round;

    const auto grace_deadline = Clock::now() + host_dur(config_.join_grace_s);
    for (;;) {
        if (state_.round != my_round) {
            // Someone finalized our round; every joiner returns that view.
            return MembershipView{state_.epoch, state_.members};
        }
        const bool grace_expired = Clock::now() >= grace_deadline;
        switch (fsm::membership_evaluate(state_, fabric_alive_unlocked(),
                                         grace_expired)) {
            case fsm::RoundVerdict::kFinalizeAll:
            case fsm::RoundVerdict::kFinalizeQuorum: {
                const MembershipView view = fsm::membership_finalize(state_);
                cv_.notify_all();
                return view;
            }
            case fsm::RoundVerdict::kAbortNoQuorum:
                throw std::runtime_error(
                    "regroup: join grace expired without a majority of live "
                    "members; refusing to finalize a minority view");
            case fsm::RoundVerdict::kWait:
                break;
        }
        cv_.wait_until(lock, grace_deadline);
    }
}

bool MembershipService::alive(int rank) const {
    if (rank < 0 || rank >= transport_.world_size()) return false;
    std::lock_guard<std::mutex> lock(mutex_);
    return fsm::membership_rank_live(state_, rank, fabric_alive_unlocked());
}

MembershipView MembershipService::current() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return MembershipView{state_.epoch, state_.members};
}

int MembershipService::epoch() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return state_.epoch;
}

std::uint64_t MembershipService::heartbeats_sent() const {
    return heartbeats_sent_.load(std::memory_order_relaxed);
}

}  // namespace gtopk::comm
