// Pure reconnect / session-resume state machine for TcpTransport — the
// spec that both the live socket layer and the protocheck model checker
// EXECUTE (the same single-copy discipline as reliable_fsm.hpp and
// membership_fsm.hpp).
//
// One LinkState per peer, per endpoint. A link starts kUp (bootstrap
// succeeded). Any socket-level failure — ECONNRESET, EPIPE, EOF, a
// mid-frame disconnect, a malformed frame — downs the link; the DIALING
// side (the higher rank, matching the bootstrap mesh orientation) then
// re-dials with capped exponential backoff and proposes a new session id,
// the ACCEPTING side validates the proposal against its own session
// counter. Sessions are strictly monotonic per link: a resume hello that
// does not advance the session is a stale dial from a previous incarnation
// of the link and must be rejected, or a delayed connect could resurrect a
// connection both sides already abandoned. Exhausting the dial budget (or
// the passive side's patience window) makes the link kDead — an absorbing
// state that flows into the control plane as Transport::rank_alive(peer)
// == false, i.e. heartbeat membership, typed CommError and elastic
// regroup.
//
// Data-plane recovery after a resume is NOT this FSM's job: frames lost in
// flight are retransmitted by the wire ARQ (reliable_fsm) once the
// reconnect event propagates (Transport::take_reconnected ->
// ReliableTransport pumping an ack + pull exchange). This FSM only decides
// whether a connection attempt may carry that traffic at all.
#pragma once

#include <cstdint>

namespace gtopk::comm::fsm {

// ---------------------------------------------------------------------------
// Seeded invariant breaks (test hooks; see reliable_fsm.hpp for rationale —
// protocheck's acceptance gate needs a deliberately broken protocol to
// surface a counterexample, and because TcpTransport executes these same
// functions the break is a break in BOTH model and implementation).

enum class ReconnectBreak {
    kNone = 0,
    /// The acceptor installs ANY proposal on a non-dead link, including
    /// ones that do not advance the session — a delayed dial from an
    /// abandoned incarnation resurrects a connection both sides walked
    /// away from (safety: "stale-session-accepted").
    kAcceptStale,
};

void set_reconnect_break(ReconnectBreak b);
ReconnectBreak reconnect_break();

enum class LinkPhase : std::uint8_t {
    kUp = 0,  // connection established; frames flow
    kDown,    // connection lost; reconnect in progress
    kDead,    // reconnect budget exhausted — absorbing; peer is gone
};

/// Per-peer link state. `session` counts established connections on the
/// link (bootstrap == 1); both endpoints agree on it whenever the link is
/// up, and it only ever grows.
struct LinkState {
    LinkPhase phase = LinkPhase::kUp;
    std::uint64_t attempts = 0;  // dials since the link went down
    std::uint64_t session = 1;
};

struct ReconnectPolicy {
    std::uint64_t max_attempts = 6;  // dials before the link is declared dead
    double initial_backoff_s = 0.05;
    double max_backoff_s = 0.4;
    /// Patience window for the PASSIVE side (the lower rank, which cannot
    /// dial): a link down longer than this without a successful resume is
    /// dead. Also bounds the dialer as a belt-and-braces host-time cap.
    double give_up_after_s = 2.0;
};

/// Connection loss detected (either side). Returns true on the kUp -> kDown
/// edge; repeated failure reports and failures on a dead link are no-ops.
bool link_down(LinkState& st);

/// Backoff before dial number `st.attempts + 1` (capped exponential:
/// initial * 2^attempts, clamped to max). Pure query.
double link_backoff_s(const LinkState& st, const ReconnectPolicy& policy);

enum class DialVerdict {
    kDial,  // attempt admitted: connect and propose link_propose(st)
    kDead,  // budget exhausted — the link is now dead
};

/// Admit one dial attempt on the dialing side. Counts the attempt and
/// kills the link once the budget is spent. Only meaningful while kDown.
DialVerdict link_dial(LinkState& st, const ReconnectPolicy& policy);

/// Session id the dialer proposes in its resume hello: session + attempt
/// number, so every retry proposes a FRESH session. A lost RESUME_OK would
/// otherwise wedge the link — the acceptor already advanced its session,
/// and a retry of the same proposal would be rejected as stale forever.
std::uint64_t link_propose(const LinkState& st);

enum class ResumeVerdict {
    kAccept,       // session advances; install the new connection
    kRejectStale,  // proposal does not advance the session — old dial
    kRejectDead,   // link already dead; nothing may resurrect it
};

/// Acceptor-side validation of a resume hello carrying `hello_session`.
/// On kAccept the acceptor's state is already updated (phase kUp, session
/// = hello_session, attempts cleared); on rejection it is untouched.
ResumeVerdict link_resume(LinkState& st, std::uint64_t hello_session);

/// Dialer-side completion: the acceptor confirmed `session`. Phase kUp,
/// attempts cleared. No-op on a dead link (a late confirm cannot revive it).
void link_established(LinkState& st, std::uint64_t session);

/// Passive-side patience expiry (and the dialer's host-time cap): a link
/// that has been kDown for give_up_after_s becomes kDead. Returns true on
/// the transition.
bool link_expire(LinkState& st);

}  // namespace gtopk::comm::fsm
