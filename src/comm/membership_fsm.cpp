#include "comm/membership_fsm.hpp"

#include <algorithm>
#include <atomic>

namespace gtopk::comm::fsm {

namespace {

std::atomic<MembershipBreak> g_membership_break{MembershipBreak::kNone};

}  // namespace

void set_membership_break(MembershipBreak b) {
    g_membership_break.store(b, std::memory_order_relaxed);
}
MembershipBreak membership_break() {
    return g_membership_break.load(std::memory_order_relaxed);
}

MembershipFsmState membership_init(int world) {
    MembershipFsmState st;
    st.world = world;
    st.members.resize(static_cast<std::size_t>(world));
    for (int r = 0; r < world; ++r) st.members[static_cast<std::size_t>(r)] = r;
    st.left.assign(static_cast<std::size_t>(world), false);
    st.joined.assign(static_cast<std::size_t>(world), false);
    return st;
}

bool membership_rank_live(const MembershipFsmState& st, int rank,
                          const std::vector<bool>& fabric_alive) {
    if (rank < 0 || rank >= st.world) return false;
    return !st.left[static_cast<std::size_t>(rank)] &&
           fabric_alive[static_cast<std::size_t>(rank)];
}

std::vector<int> membership_live_members(const MembershipFsmState& st,
                                         const std::vector<bool>& fabric_alive) {
    std::vector<int> out;
    for (int r : st.members) {
        if (membership_rank_live(st, r, fabric_alive)) out.push_back(r);
    }
    return out;
}

void membership_leave(MembershipFsmState& st, int rank) {
    st.left[static_cast<std::size_t>(rank)] = true;
    st.joined[static_cast<std::size_t>(rank)] = false;
}

JoinVerdict membership_join(MembershipFsmState& st, int rank,
                            const std::vector<bool>& fabric_alive) {
    if (!membership_rank_live(st, rank, fabric_alive)) return JoinVerdict::kNotLive;
    // A rank a previous round voted out must not join: allowing it would
    // let an excluded straggler spin up a fresh round, finalize a view
    // without the actual members, and train on with a higher epoch.
    if (std::find(st.members.begin(), st.members.end(), rank) ==
        st.members.end()) {
        return JoinVerdict::kNotInView;
    }
    if (st.joined[static_cast<std::size_t>(rank)]) return JoinVerdict::kAlreadyJoined;
    st.joined[static_cast<std::size_t>(rank)] = true;
    return JoinVerdict::kJoined;
}

RoundVerdict membership_evaluate(const MembershipFsmState& st,
                                 const std::vector<bool>& fabric_alive,
                                 bool grace_expired) {
    const std::vector<int> live = membership_live_members(st, fabric_alive);
    const std::size_t joined_live = static_cast<std::size_t>(
        std::count_if(live.begin(), live.end(), [&](int r) {
            return st.joined[static_cast<std::size_t>(r)];
        }));
    if (joined_live >= live.size()) return RoundVerdict::kFinalizeAll;
    if (!grace_expired) return RoundVerdict::kWait;
    const std::size_t joined_total = static_cast<std::size_t>(
        std::count(st.joined.begin(), st.joined.end(), true));
    if (membership_break() == MembershipBreak::kQuorumBypass && joined_total > 0) {
        // Seeded invariant break: any non-empty joiner set finalizes.
        return RoundVerdict::kFinalizeQuorum;
    }
    // Only a strict majority of the live members may finalize without the
    // rest — a minority view could coexist with (and outrank) the
    // majority's. Without quorum the round cannot safely conclude: abort.
    if (joined_live * 2 > live.size()) return RoundVerdict::kFinalizeQuorum;
    return RoundVerdict::kAbortNoQuorum;
}

MembershipView membership_finalize(MembershipFsmState& st) {
    MembershipView next;
    next.epoch = st.epoch + 1;
    for (int r = 0; r < st.world; ++r) {
        if (st.joined[static_cast<std::size_t>(r)]) next.members.push_back(r);
    }
    // joined is rank-indexed, so members comes out sorted: the lowest
    // surviving physical rank is logical rank 0 in the new world.
    st.epoch = next.epoch;
    st.members = next.members;
    ++st.round;
    std::fill(st.joined.begin(), st.joined.end(), false);
    return next;
}

}  // namespace gtopk::comm::fsm
