// ProgressSource: the hook a multi-collective engine uses to keep every
// in-flight collective moving while any one of them blocks.
//
// An AsyncCollective handle (collectives/async.hpp) registers itself with
// its Communicator on start() and unregisters on destruction. Whenever a
// handle's wait() finds its own next receive unmatched, it pumps EVERY
// registered source via Communicator::pump_progress() instead of blocking
// on its own mailbox alone — so a send queued behind another handle's op
// program can never starve the receive chain it feeds (no cross-handle
// deadlock by construction; tools/commcheck --concurrent certifies the same
// executor model statically).
#pragma once

namespace gtopk::comm {

class ProgressSource {
public:
    virtual ~ProgressSource() = default;

    /// Execute every currently-runnable op of this source (buffered sends
    /// always run; receives run when matched). Returns true if at least one
    /// op executed — the caller's signal that global progress happened.
    virtual bool pump_some() = 0;

    /// Drain ordering hint: lower values are pumped first. The priority
    /// scheduler maps front-layer buckets (needed first by the next
    /// iteration's forward pass) to lower values so their traffic preempts
    /// back-layer buckets whenever both have runnable ops (P3-style).
    virtual int pump_priority() const { return 0; }
};

}  // namespace gtopk::comm
