// Transport: the point-to-point fabric connecting P simulated workers.
//
// InProcTransport is the only production implementation: one mailbox per
// rank inside a shared process. The interface exists so tests can wrap it
// (e.g. FaultInjectingTransport drops or reorders messages to exercise
// robustness) and so a socket-backed transport could slot in later.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "comm/mailbox.hpp"
#include "comm/message.hpp"
#include "comm/network_model.hpp"

namespace gtopk::obs {
class Tracer;
class Histogram;
}  // namespace gtopk::obs

namespace gtopk::comm {

class Transport {
public:
    virtual ~Transport() = default;

    virtual int world_size() const = 0;

    /// Deliver `msg` to `dst`'s mailbox. `msg.arrival_time_s` must already
    /// be stamped by the caller (the Communicator applies the NetworkModel).
    virtual void deliver(int dst, Message msg) = 0;

    /// Blocking matched receive on rank `rank`.
    virtual Message receive(int rank, int source, int tag) = 0;

    /// Abort: close all mailboxes, waking blocked receivers with an error.
    virtual void shutdown() = 0;
};

class InProcTransport final : public Transport {
public:
    explicit InProcTransport(int world_size);

    int world_size() const override { return static_cast<int>(mailboxes_.size()); }
    void deliver(int dst, Message msg) override;
    Message receive(int rank, int source, int tag) override;
    void shutdown() override;

    /// Non-blocking matched receive; nullopt when nothing matches. Throws
    /// MailboxClosed after shutdown. Lets wrapper transports (fault
    /// injection) poll instead of blocking inside the inner mailbox.
    std::optional<Message> try_receive(int rank, int source, int tag);

    /// Total messages delivered since construction (for tests/benches).
    std::uint64_t delivered_count() const;

    /// Attach a tracer whose metrics registry receives a "mailbox.depth"
    /// histogram sample (destination queue depth after enqueue) on every
    /// delivery. Call before worker threads start; nullptr detaches.
    void set_tracer(obs::Tracer* tracer);

private:
    std::vector<std::unique_ptr<Mailbox>> mailboxes_;
    std::atomic<std::uint64_t> delivered_{0};
    obs::Histogram* depth_histogram_ = nullptr;
};

}  // namespace gtopk::comm
