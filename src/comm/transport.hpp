// Transport: the point-to-point fabric connecting P simulated workers.
//
// InProcTransport is the production implementation: one mailbox per rank
// inside a shared process. FaultInjectingTransport (fault_transport.hpp)
// decorates any Transport with a seeded, declarative FaultPlan — drops,
// duplicates, reorders, delays, payload corruption, rank kills — so chaos
// tests exercise the exact interface production code runs on. A socket-
// backed transport could slot in behind the same interface later.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "comm/mailbox.hpp"
#include "comm/message.hpp"
#include "comm/network_model.hpp"

namespace gtopk::obs {
class Tracer;
class Histogram;
}  // namespace gtopk::obs

namespace gtopk::comm {

class Transport {
public:
    virtual ~Transport() = default;

    virtual int world_size() const = 0;

    /// Deliver `msg` to `dst`'s mailbox. `msg.arrival_time_s` must already
    /// be stamped by the caller (the Communicator applies the NetworkModel).
    virtual void deliver(int dst, Message msg) = 0;

    /// Blocking matched receive on rank `rank`.
    virtual Message receive(int rank, int source, int tag) = 0;

    /// Non-blocking matched receive; nullopt when nothing matches. Throws
    /// MailboxClosed after shutdown. Lets wrapper transports (fault
    /// injection) poll instead of blocking inside the inner mailbox.
    virtual std::optional<Message> try_receive(int rank, int source, int tag) = 0;

    /// Matched receive with a HOST-time deadline: nullopt once `timeout_s`
    /// host seconds elapse without a match (a stalled receiver cannot be
    /// detected on the virtual clock — it only advances via message
    /// arrivals). timeout_s <= 0 waits forever, identical to receive().
    /// Throws MailboxClosed after shutdown. The base implementation polls
    /// try_receive; InProcTransport overrides it with a condition-variable
    /// wait.
    virtual std::optional<Message> receive_for(int rank, int source, int tag,
                                               double timeout_s);

    /// Matched receive with a VIRTUAL-time deadline: a match whose modeled
    /// arrival_time_s is <= `max_arrival_s` is returned; a later-arriving
    /// match is consumed and discarded with nullopt (deterministically — the
    /// outcome depends only on modeled arrival times, never on host speed).
    /// `host_grace_s` bounds the wait when no match ever materializes (a
    /// true drop); it changes detection latency, never the outcome. The
    /// base implementation polls try_receive; InProcTransport waits on the
    /// mailbox condition variable.
    virtual std::optional<Message> receive_for_virtual(int rank, int source, int tag,
                                                       double max_arrival_s,
                                                       double host_grace_s);

    /// Abort: close all mailboxes, waking blocked receivers with an error.
    virtual void shutdown() = 0;

    /// Advance `rank`'s inbound epoch floor: queued and future messages
    /// with epoch < `epoch` are rejected deterministically. Called by
    /// Communicator::set_view when a membership regroup lands. Decorators
    /// purge their own stale state (hold slots, reassembly buffers) and
    /// forward. Base: no-op for transports without epoch support.
    virtual void begin_epoch(int rank, int epoch) {
        (void)rank;
        (void)epoch;
    }

    /// Liveness as far as the fabric knows: false once a fault plan has
    /// killed `rank`. The reliable layer consults this so it never
    /// "recovers" traffic from a dead host's buffers.
    virtual bool rank_alive(int rank) const {
        (void)rank;
        return true;
    }

    /// Progress marker: `rank` reached application step `step` (trainers
    /// call it at every iteration boundary). Lets the fault injector place
    /// scheduled kills at an exact iteration instead of after N sends.
    /// Base: no-op.
    virtual void on_progress(int rank, std::int64_t step) {
        (void)rank;
        (void)step;
    }

    /// Number of messages pending for `rank` whose tag is >= `min_tag`.
    /// Feeds the fresh-tag wrap soundness check in Communicator::fresh_tags
    /// (wrapping is only legal when no fresh-tag message is in flight).
    /// Decorators forward to their inner transport; the base returns 0,
    /// which degrades the wrap check to a no-op for transports that cannot
    /// inspect their queues.
    virtual std::size_t pending_with_tag_at_least(int rank, int min_tag) const {
        (void)rank;
        (void)min_tag;
        return 0;
    }

    /// Attach an observability tracer (nullptr detaches). Call before
    /// worker threads start. Base: no-op; implementations register their
    /// metrics (mailbox depth, fault-event counters).
    virtual void set_tracer(obs::Tracer*) {}

    /// True when every rank shares this process's address space, i.e. all
    /// per-rank state of a decorator stacked on top is visible to all
    /// ranks. ReliableTransport picks its ack plane off this bit: on a
    /// shared-memory fabric the receiver publishes its cumulative ack into
    /// the sender's edge state and pulls retransmits straight out of the
    /// sender's buffer; on a multi-process fabric (TCP) acks and
    /// gap-recovery pulls travel as real frames on the wire
    /// (kTagReliableAck / kTagReliablePull) and both endpoints run the same
    /// fsm::arq_* transitions cross-process. MembershipService likewise
    /// switches its regroup barrier between the in-process condition
    /// variable and the wire JOIN/VIEW protocol. Decorators forward.
    virtual bool shared_memory_fabric() const { return true; }

    /// Drain the set of peers whose connection to `rank` was re-established
    /// since the last call (session-resume on a socket fabric). The
    /// reliable layer polls this from its pump and immediately runs an
    /// ack + pull exchange with each returned peer, so frames lost in
    /// flight across the disconnect retransmit from the ARQ buffer without
    /// waiting out a recovery backoff. Base: no reconnects ever (empty).
    /// Decorators forward.
    virtual std::vector<int> take_reconnected(int rank) {
        (void)rank;
        return {};
    }
};

class InProcTransport final : public Transport {
public:
    explicit InProcTransport(int world_size);

    int world_size() const override { return static_cast<int>(mailboxes_.size()); }
    void deliver(int dst, Message msg) override;
    Message receive(int rank, int source, int tag) override;
    std::optional<Message> try_receive(int rank, int source, int tag) override;
    std::optional<Message> receive_for(int rank, int source, int tag,
                                       double timeout_s) override;
    std::optional<Message> receive_for_virtual(int rank, int source, int tag,
                                               double max_arrival_s,
                                               double host_grace_s) override;
    void shutdown() override;
    void begin_epoch(int rank, int epoch) override;
    std::size_t pending_with_tag_at_least(int rank, int min_tag) const override;

    /// Direct mailbox access for decorators/tests (e.g. stale-rejection
    /// counters). `rank` must be in range.
    Mailbox& mailbox(int rank) { return *mailboxes_[static_cast<std::size_t>(rank)]; }

    /// Total messages delivered since construction (for tests/benches).
    std::uint64_t delivered_count() const;

    /// Attach a tracer whose metrics registry receives a "mailbox.depth"
    /// histogram sample (destination queue depth after enqueue) on every
    /// delivery.
    void set_tracer(obs::Tracer* tracer) override;

private:
    std::vector<std::unique_ptr<Mailbox>> mailboxes_;
    std::atomic<std::uint64_t> delivered_{0};
    obs::Histogram* depth_histogram_ = nullptr;
};

}  // namespace gtopk::comm
