// MembershipService: heartbeat failure detection and epoch-stamped
// membership agreement for the simulated cluster.
//
// Liveness plane — each rank periodically gossips a heartbeat on the
// reserved kTagHeartbeat tag (which deliberately bypasses the reliable
// layer: a lost heartbeat IS the signal). Every rank tracks when it last
// heard from each peer; silence past `suspect_after_s` marks the peer
// suspected. A fault-plan kill swallows the victim's sends, so its
// heartbeats stop and every survivor's suspicion converges on the truth.
//
// Agreement plane — when a failure surfaces (a receive deadline fires, or
// the dead rank's own thread observes RankKilled and calls leave()), the
// survivors run a regroup round: an in-process barrier that completes as
// soon as every live member has joined (fast path) or after a grace
// window (pathological straggler). The round deterministically produces
// the next View{epoch, members}: members are the sorted joiners, the
// epoch increments by one. Every joiner observes the identical view —
// this is the agreement the elastic trainer rebuilds its collectives on.
//
// The agreement transitions themselves (join admission, quorum rule,
// finalization) live in comm/membership_fsm.hpp as pure functions this
// service EXECUTES under its mutex — the same functions the protocheck
// model checker explores exhaustively (DESIGN.md §16), so the checked
// model and the running code are one.
//
// Epoch discipline — the view's epoch is stamped on all subsequent
// traffic (Communicator::set_view) and installed as the receive floor
// (Transport::begin_epoch), so a straggler's stale messages are rejected
// deterministically rather than corrupting the new world's collectives.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "comm/membership_fsm.hpp"
#include "comm/transport.hpp"
#include "util/rng.hpp"

namespace gtopk::comm {

struct MembershipConfig {
    std::uint64_t seed = 1;            // jitters heartbeat phase per rank
    double heartbeat_interval_s = 0.010;  // host time between gossips
    double suspect_after_s = 0.100;    // silence before a peer is suspected
    double join_grace_s = 2.0;         // regroup barrier straggler bound
    /// Peers gossiped to per heartbeat burst. 0 (default) broadcasts to
    /// every peer — O(P) sends per rank per interval, O(P^2) cluster-wide,
    /// which is what melts at P in the hundreds. A positive fanout sends to
    /// that many peers per burst, rotating round-robin so every peer is
    /// refreshed once per ceil((P-1)/fanout) bursts; suspect_after_s must
    /// cover that full rotation cycle (times the interval) or healthy peers
    /// get suspected between refreshes. Safe to bound because suspicion is
    /// advisory — the regroup path is driven by receive deadlines, not by
    /// suspected().
    int heartbeat_fanout = 0;
};

class MembershipService {
public:
    MembershipService(Transport& transport, MembershipConfig config = {});

    /// Drive the liveness plane for `rank`: gossip a heartbeat when the
    /// (jittered) interval elapsed, drain incoming heartbeats, refresh
    /// last-heard bookkeeping. Call from the rank's own thread, once per
    /// training iteration (or more). Cheap when nothing is due.
    void tick(int rank);

    /// Peers of `rank` currently suspected dead (silent past the
    /// threshold). Reads only rank-local state; call from rank's thread.
    std::vector<int> suspected(int rank) const;

    /// `rank`'s own thread observed its death (CommError::RankKilled):
    /// remove it from the expected-joiner set so regroup rounds no longer
    /// wait for it, and wake any round in progress.
    void leave(int rank);

    /// Join the current regroup round and block until it completes. The
    /// round finalizes when every live expected member has joined (fast
    /// path, the common case — receive-deadline cascades bring everyone
    /// here) or when `join_grace_s` expires with a strict MAJORITY of the
    /// live members joined. Grace expiry without a majority throws: a
    /// minority must never finalize a view (a straggler excluded by the
    /// majority's round would otherwise build a singleton view whose
    /// higher epoch passes every later epoch floor and train solo).
    /// Ranks not in the current view cannot join at all.
    /// All joiners of a round return the identical view.
    ///
    /// On a shared-memory fabric this is the in-process barrier above. On a
    /// multi-process fabric (TcpTransport) the round runs over the wire:
    /// the LOWEST live member of the current view acts as leader, collects
    /// JOIN frames (kTagMembershipJoin) from the other survivors, runs the
    /// identical FSM verdicts, and broadcasts the finalized VIEW
    /// (kTagMembershipView). Followers re-send their JOIN until the VIEW
    /// lands (the frames ride the reliable layer, so the resend only papers
    /// over leader-side timing, not loss) and re-elect the leader from
    /// fresh rank_alive snapshots each retry in case the leader itself is
    /// the casualty being regrouped around.
    MembershipView regroup(int rank);

    /// Latest agreed view (initially epoch 0, all ranks).
    MembershipView current() const;

    /// True while `rank` has neither left nor been declared dead by the
    /// fabric. A rank must check this before regrouping: its own death can
    /// surface as a receive timeout when the kill lands mid-wait.
    bool alive(int rank) const;

    int epoch() const;
    /// Total heartbeats gossiped (all ranks), for tests.
    std::uint64_t heartbeats_sent() const;

    /// Detector/agreement tuning (the trainer validates its receive
    /// deadline against `join_grace_s`).
    const MembershipConfig& config() const { return config_; }

private:
    using Clock = std::chrono::steady_clock;

    /// Snapshot of Transport::rank_alive for every rank, the fabric input
    /// the FSM transitions consume. Call with mutex_ held (rank_alive is
    /// itself thread-safe; the lock just keeps the snapshot and the FSM
    /// step atomic with respect to other agreement transitions).
    std::vector<bool> fabric_alive_unlocked() const;

    /// The wire regroup round (non-shared-memory fabrics): leader-driven
    /// JOIN/VIEW exchange executing the same FSM verdicts as the barrier.
    MembershipView regroup_wire(int rank);
    MembershipView regroup_wire_leader(int rank);
    MembershipView regroup_wire_follower(int rank);

    Transport& transport_;
    MembershipConfig config_;

    /// Per-rank liveness state, touched only by the owning rank's thread.
    struct RankState {
        Clock::time_point last_sent{};
        Clock::duration phase_jitter{};
        std::vector<Clock::time_point> last_heard;
        bool started = false;
        int gossip_cursor = 0;  // rotation point for bounded-fanout bursts
    };
    std::vector<RankState> rank_state_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    fsm::MembershipFsmState state_;  // agreement state, FSM-owned shape

    std::atomic<std::uint64_t> heartbeats_sent_{0};
};

}  // namespace gtopk::comm
