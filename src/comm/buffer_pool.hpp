// BufferPool: a per-rank freelist of byte buffers backing Message payloads.
//
// The simulator's hot path moves one serialized sparse gradient per hop; at
// steady state every hop needs a payload buffer of roughly the same size
// (wire_size_bytes(k)). Allocating it fresh per message made heap churn the
// dominant host cost. The pool instead recycles a handful of buffers:
//
//   * a SENDER acquires a buffer from ITS pool, fills it, and moves it into
//     the Message (zero further copies);
//   * the RECEIVER gets the payload out of its mailbox and, when done,
//     releases the vector into ITS OWN pool (via the PooledBuffer RAII
//     wrapper), to be reused by its next send.
//
// Buffers therefore migrate between per-rank pools but each pool is only
// ever touched by the thread that owns the rank — no locking, no atomics,
// nothing for TSan to mind. The cross-thread handoff of buffer contents is
// ordered by the mailbox mutex, exactly as for any Message.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace gtopk::comm {

class BufferPool {
public:
    /// A buffer of exactly `size` bytes, reusing a pooled allocation when one
    /// with sufficient capacity is available.
    std::vector<std::byte> acquire(std::size_t size);

    /// Return a buffer's storage to the pool (capacity kept, contents
    /// forgotten). At most kMaxFree buffers are retained; excess is freed.
    void release(std::vector<std::byte>&& buf);

    struct Stats {
        std::uint64_t acquires = 0;
        std::uint64_t pool_hits = 0;  // served without a heap allocation
        std::uint64_t releases = 0;
        std::uint64_t dropped = 0;  // released over the retention cap
    };
    const Stats& stats() const { return stats_; }
    std::size_t free_count() const { return free_.size(); }

    static constexpr std::size_t kMaxFree = 8;

private:
    std::vector<std::vector<std::byte>> free_;
    Stats stats_;
};

/// RAII view of a received payload: exposes the bytes and releases the
/// storage into the receiving rank's pool on destruction. Move-only.
class PooledBuffer {
public:
    PooledBuffer() = default;
    PooledBuffer(std::vector<std::byte> data, BufferPool* pool)
        : data_(std::move(data)), pool_(pool) {}
    ~PooledBuffer() { reset(); }

    PooledBuffer(PooledBuffer&& other) noexcept
        : data_(std::move(other.data_)), pool_(other.pool_) {
        other.pool_ = nullptr;
        other.data_.clear();
    }
    PooledBuffer& operator=(PooledBuffer&& other) noexcept {
        if (this != &other) {
            reset();
            data_ = std::move(other.data_);
            pool_ = other.pool_;
            other.pool_ = nullptr;
            other.data_.clear();
        }
        return *this;
    }
    PooledBuffer(const PooledBuffer&) = delete;
    PooledBuffer& operator=(const PooledBuffer&) = delete;

    std::span<const std::byte> bytes() const { return data_; }
    std::size_t size() const { return data_.size(); }

    /// Release the storage back to the pool now (safe to call repeatedly).
    void reset() {
        if (pool_) {
            pool_->release(std::move(data_));
            pool_ = nullptr;
        }
        data_.clear();
    }

private:
    std::vector<std::byte> data_;
    BufferPool* pool_ = nullptr;
};

}  // namespace gtopk::comm
