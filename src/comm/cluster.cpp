#include "comm/cluster.hpp"

#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "obs/trace.hpp"
#include "util/log.hpp"

namespace gtopk::comm {

Cluster::RunResult Cluster::run_timed(int world_size, NetworkModel model,
                                      const WorkerFn& fn, obs::Tracer* tracer,
                                      double recv_timeout_s) {
    InProcTransport transport(world_size);
    return run_timed_on(transport, model, fn, tracer, recv_timeout_s);
}

Cluster::RunResult Cluster::run_timed_on(Transport& transport, NetworkModel model,
                                         const WorkerFn& fn, obs::Tracer* tracer,
                                         double recv_timeout_s) {
    const int world_size = transport.world_size();
    if (tracer && tracer->world_size() < world_size) {
        throw std::invalid_argument("Cluster: tracer world_size below cluster's");
    }
    transport.set_tracer(tracer);

    RunResult result;
    result.stats.resize(static_cast<std::size_t>(world_size));
    result.final_time_s.resize(static_cast<std::size_t>(world_size), 0.0);

    std::mutex error_mutex;
    std::exception_ptr first_error;

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(world_size));
    for (int r = 0; r < world_size; ++r) {
        threads.emplace_back([&, r] {
            util::set_thread_rank(r);  // "[I 12:03:04.512 r03]" log prefixes
            Communicator comm(transport, r, model);
            comm.set_tracer(tracer);
            comm.set_recv_timeout_s(recv_timeout_s);
            try {
                fn(comm);
            } catch (const MailboxClosed&) {
                // A peer failed first; our abort is secondary.
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (!first_error) first_error = std::current_exception();
                }
                transport.shutdown();
            }
            result.stats[static_cast<std::size_t>(r)] = comm.stats();
            result.final_time_s[static_cast<std::size_t>(r)] = comm.clock().now_s();
        });
    }
    for (auto& t : threads) t.join();

    if (first_error) std::rethrow_exception(first_error);
    return result;
}

std::vector<CommStats> Cluster::run(int world_size, NetworkModel model,
                                    const WorkerFn& fn, obs::Tracer* tracer,
                                    double recv_timeout_s) {
    return run_timed(world_size, model, fn, tracer, recv_timeout_s).stats;
}

std::vector<CommStats> Cluster::run_on(Transport& transport, NetworkModel model,
                                       const WorkerFn& fn, obs::Tracer* tracer,
                                       double recv_timeout_s) {
    return run_timed_on(transport, model, fn, tracer, recv_timeout_s).stats;
}

Cluster::LocalRunResult Cluster::run_local(Transport& transport, int rank,
                                           NetworkModel model, const WorkerFn& fn,
                                           obs::Tracer* tracer,
                                           double recv_timeout_s) {
    if (rank < 0 || rank >= transport.world_size()) {
        throw std::invalid_argument("Cluster::run_local: rank outside world");
    }
    if (tracer && tracer->world_size() < transport.world_size()) {
        throw std::invalid_argument("Cluster: tracer world_size below cluster's");
    }
    transport.set_tracer(tracer);

    util::set_thread_rank(rank);
    Communicator comm(transport, rank, model);
    comm.set_tracer(tracer);
    comm.set_recv_timeout_s(recv_timeout_s);

    LocalRunResult result;
    try {
        fn(comm);
        result.completed = true;
    } catch (const MailboxClosed&) {
        // Shutdown raced the worker (peer failure propagated locally).
    } catch (...) {
        transport.shutdown();
        throw;
    }
    result.stats = comm.stats();
    result.final_time_s = comm.clock().now_s();
    return result;
}

}  // namespace gtopk::comm
