// ReliableTransport: reliable, exactly-once, per-edge-FIFO delivery over a
// lossy fabric — the recovery layer that turns FaultInjectingTransport's
// probabilistic drop/corrupt plans from typed aborts into masked noise.
//
// Mechanism (classic ARQ, adapted to the simulated cluster):
//   * Every non-control message is wrapped in an envelope carrying a
//     per-directed-edge sequence number, the original tag and epoch, and an
//     FNV-1a checksum, and travels on the reserved kTagReliableData tag.
//   * The sender keeps a pristine copy in a per-edge retransmit buffer
//     until the receiver's cumulative ack passes it.
//   * The receiver unwraps envelopes in strict sequence order into a local
//     per-rank mailbox: duplicates (seq already delivered) are discarded,
//     out-of-order arrivals wait in a reassembly buffer, and a checksum or
//     magic mismatch (fault-layer corruption) is treated as a loss.
//   * When a receive stalls on a sequence gap — the signature of a dropped
//     or corrupted message — the receiver requests a retransmit with
//     capped exponential backoff. With retries the delivery probability of
//     a p-loss channel tends to 1. Messages from a rank the fault plan has
//     killed are never recovered — a dead host's buffers die with it — so
//     rank kills still surface as timeouts and feed the membership layer,
//     while drop/corrupt plans are masked bit-identically (payload bytes
//     AND modeled arrival times are the originals, so training results
//     equal the fault-free run exactly).
//
// The ACK PLANE adapts to the fabric (Transport::shared_memory_fabric):
//   * Shared-memory fabric (in-process): the receiver publishes its
//     cumulative ack into the sender's edge state through a shared atomic,
//     and recovery pulls the gap head straight out of the sender's buffer.
//   * Wire fabric (TCP — ranks in separate processes): acks and recovery
//     travel as real frames. Each delivery (or duplicate, whose earlier ack
//     may have been lost) is acknowledged with a kTagReliableAck frame
//     carrying the cumulative ack; the sender folds it via fsm::arq_tx_ack
//     and GCs its retransmit buffer. A stalled receiver sends
//     kTagReliablePull frames carrying its next expected seq on the same
//     backoff schedule; the sender treats expected-1 as a cumulative ack
//     and re-emits every still-buffered envelope from that seq on, with the
//     ORIGINAL payload, epoch and arrival stamp — so recovery over the
//     wire is exactly as bit-identical as the in-process pull. Both
//     endpoints execute the same fsm::arq_* transitions either way.
//
// Every sequencing DECISION above (seq assignment, GC, dedup, parking,
// release, stale-epoch skip) is made by the pure transition functions in
// comm/reliable_fsm.hpp; this class owns payload bytes, mutexes and
// mailboxes and merely applies those decisions. The protocheck model
// checker (src/analysis/protocheck) drives the identical functions under an
// exhaustive adversarial network — one copy of the protocol logic, so the
// verified model cannot drift from the running code (DESIGN.md §16).
//
// Control-plane traffic on kTagHeartbeat deliberately bypasses the
// envelope: heartbeat loss is the failure detector's signal, not a fault.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <vector>

#include "comm/mailbox.hpp"
#include "comm/reliable_fsm.hpp"
#include "comm/transport.hpp"

namespace gtopk::obs {
class Counter;
}  // namespace gtopk::obs

namespace gtopk::comm {

/// Reliable-layer configuration: retransmit backoff (host time).
struct ReliableConfig {
    double initial_backoff_s = 0.002;  // first retransmit request delay
    double max_backoff_s = 0.050;      // cap for the exponential doubling
    /// Wire mode: on shutdown, keep pumping until every sent envelope is
    /// cumulatively acked (or its receiver is dead), up to this budget. A
    /// rank that finishes training first may still hold the pristine copy
    /// of a frame the socket chaos swallowed — exiting immediately would
    /// strand the slower peer waiting on a retransmit that can never come.
    double shutdown_drain_s = 3.0;
};

/// Historical name, kept for call sites predating the config struct.
using ReliableOptions = ReliableConfig;

/// Aggregate event counters (monotonic since construction).
struct ReliableCounts {
    std::uint64_t sent = 0;             // envelopes sent (first transmission)
    std::uint64_t retransmits = 0;      // gap heads recovered from buffers
    std::uint64_t corrupt_dropped = 0;  // envelopes failing checksum/magic
    std::uint64_t dup_dropped = 0;      // envelopes with already-seen seq
    std::uint64_t stale_skipped = 0;    // old-epoch messages skipped on recovery
};

class ReliableTransport final : public Transport {
public:
    /// Decorate an existing transport (takes ownership). Usually the inner
    /// transport is a FaultInjectingTransport or a TcpTransport; stacking
    /// over a plain InProcTransport is a pure (if pointless) passthrough.
    /// The ack plane is chosen from inner->shared_memory_fabric(): shared
    /// counters + buffer pulls in-process, ack/pull frames on the wire.
    explicit ReliableTransport(std::unique_ptr<Transport> inner,
                               ReliableConfig config = {});
    /// Runs shutdown() (with its wire-mode ack drain) if nobody did.
    ~ReliableTransport() override;

    int world_size() const override { return inner_->world_size(); }
    void deliver(int dst, Message msg) override;
    Message receive(int rank, int source, int tag) override;
    std::optional<Message> try_receive(int rank, int source, int tag) override;
    std::optional<Message> receive_for(int rank, int source, int tag,
                                       double timeout_s) override;
    std::optional<Message> receive_for_virtual(int rank, int source, int tag,
                                               double max_arrival_s,
                                               double host_grace_s) override;
    void shutdown() override;
    void begin_epoch(int rank, int epoch) override;
    bool rank_alive(int rank) const override { return inner_->rank_alive(rank); }
    void on_progress(int rank, std::int64_t step) override {
        inner_->on_progress(rank, step);
    }
    void set_tracer(obs::Tracer* tracer) override;
    bool shared_memory_fabric() const override {
        return inner_->shared_memory_fabric();
    }
    /// Delivered (unwrapped) pending messages plus reassembly-parked ones.
    /// Envelopes still inside the inner fabric travel on kTagReliableData
    /// (< kFreshTagBase) and are invisible here; the retransmit protocol
    /// guarantees they re-materialize, so the count is a lower bound.
    std::size_t pending_with_tag_at_least(int rank, int min_tag) const override;

    /// Drain incoming envelopes for `rank` and immediately pull every
    /// recoverable gap head from live senders' buffers, bypassing the
    /// backoff gate. Returns the number of messages recovered. Normal
    /// operation never needs this — pump() recovers on its own schedule;
    /// the protocheck replay bridge uses it to fire recovery exactly where
    /// a counterexample trace says it fires (deterministic replay requires
    /// an effectively-infinite configured backoff plus explicit calls).
    std::size_t recover_now(int rank);

    ReliableCounts counts() const;
    Transport& inner() { return *inner_; }

private:
    /// Sender-side per-edge state: the pure FSM state plus the payload
    /// buffer it indexes. `state.next_seq` is only advanced by the sending
    /// rank's thread; the buffer is shared with the receiving rank's
    /// recovery path, hence the mutex.
    struct EdgeTx {
        std::mutex mutex;
        fsm::ArqTxState state;
        std::deque<Message> buffer;  // pristine copies, [base_seq, +buffered)
        /// Cumulative ack, receiver-written — the in-process ack channel.
        std::atomic<std::uint64_t> acked{0};
    };

    /// Receiver-side per-edge state; touched only by the receiving rank's
    /// thread. `parked` keys mirror state.parked exactly.
    struct EdgeRx {
        fsm::ArqRxState state;
        std::map<std::uint64_t, Message> parked;  // out-of-order payloads
    };

    /// Per-rank retransmit backoff state (receiver thread only).
    struct Backoff {
        double delay_s = 0.0;  // 0 = reset to initial on next arm
        std::chrono::steady_clock::time_point next_attempt{};
        bool armed = false;
    };

    std::size_t edge_index(int src, int dst) const {
        return static_cast<std::size_t>(src) *
                   static_cast<std::size_t>(world_size()) +
               static_cast<std::size_t>(dst);
    }
    EdgeTx& tx(int src, int dst) { return *tx_[edge_index(src, dst)]; }
    EdgeRx& rx(int src, int dst) { return rx_[edge_index(src, dst)]; }

    /// Pop `n` leading entries of the edge's parked payload map (the
    /// contiguous run the FSM just released) into `rank`'s mailbox.
    void release_parked(int rank, EdgeRx& r, std::uint64_t n);
    /// Drain every envelope the inner fabric holds for `rank` (wire mode:
    /// also ack/pull control frames, answering pulls with retransmits).
    void process_incoming(int rank);
    /// Pull gap-head messages for `rank`: straight from live senders'
    /// buffers in-process, via kTagReliablePull frames on the wire.
    /// Returns the number of messages recovered (wire mode: always 0 —
    /// recovery lands asynchronously through process_incoming).
    std::size_t recover(int rank);
    /// process_incoming + backoff-gated recover; one poll step.
    void pump(int rank);
    void count_event(std::atomic<std::uint64_t>& cell, obs::Counter* metric);

    // --- wire-mode helpers (non-shared-memory inner fabric only) ---
    /// Best-effort control frame (ack/pull) from `rank` to `dst`: stamped
    /// with rank's current epoch floor so the peer's inbound floor admits
    /// it; a dead peer is skipped, a dying one swallowed (CommError) — the
    /// pump must never throw for control traffic.
    void send_control(int rank, int dst, int tag, std::uint64_t value);
    /// Answer a kTagReliablePull from `peer`: fold expected-1 as an ack,
    /// then re-emit every still-buffered envelope with seq >= expected.
    void answer_pull(int rank, int peer, std::uint64_t expected, int pull_epoch);

    std::unique_ptr<Transport> inner_;
    ReliableConfig config_;
    /// False inner shared_memory_fabric(): acks/pulls travel as frames.
    bool wire_ = false;
    std::vector<std::unique_ptr<EdgeTx>> tx_;
    std::vector<EdgeRx> rx_;
    std::vector<std::unique_ptr<Mailbox>> delivered_;
    std::vector<Backoff> backoff_;
    /// Per-rank epoch floor (last begin_epoch), the stamp on outgoing wire
    /// control frames. Element `r` is touched only by rank r's thread.
    std::vector<int> floors_;

    std::atomic<bool> shut_{false};
    std::atomic<std::uint64_t> sent_{0};
    std::atomic<std::uint64_t> retransmits_{0};
    std::atomic<std::uint64_t> corrupt_dropped_{0};
    std::atomic<std::uint64_t> dup_dropped_{0};
    std::atomic<std::uint64_t> stale_skipped_{0};

    obs::Counter* m_retransmits_ = nullptr;
    obs::Counter* m_corrupt_dropped_ = nullptr;
    obs::Counter* m_dup_dropped_ = nullptr;
    obs::Counter* m_stale_skipped_ = nullptr;
};

}  // namespace gtopk::comm
