#include "comm/reliable_fsm.hpp"

#include <atomic>

namespace gtopk::comm::fsm {

namespace {

std::atomic<ArqBreak> g_arq_break{ArqBreak::kNone};

/// Release the contiguous parked run starting at st.expected: erase each
/// seq from the parked set and advance expected past it. Returns the count
/// so the caller can pop the same number of leading payload-map entries.
std::uint64_t drain_contiguous(ArqRxState& st) {
    std::uint64_t released = 0;
    while (!st.parked.empty() && *st.parked.begin() == st.expected) {
        st.parked.erase(st.parked.begin());
        ++st.expected;
        ++released;
    }
    return released;
}

}  // namespace

void set_arq_break(ArqBreak b) { g_arq_break.store(b, std::memory_order_relaxed); }
ArqBreak arq_break() { return g_arq_break.load(std::memory_order_relaxed); }

TxSendDecision arq_tx_send(ArqTxState& st, std::uint64_t cum_ack, bool dst_alive) {
    TxSendDecision d;
    if (cum_ack > st.acked) st.acked = cum_ack;
    // GC the acked prefix of the retransmit buffer (cumulative ack).
    while (st.buffered > 0 && st.base_seq <= st.acked) {
        ++d.gc;
        ++st.base_seq;
        --st.buffered;
    }
    if (arq_break() == ArqBreak::kGcDropsUnacked && st.buffered > 0) {
        // Seeded invariant break: drop one UNACKED payload from the front.
        ++d.gc;
        ++st.base_seq;
        --st.buffered;
    }
    d.seq = ++st.next_seq;
    if (dst_alive) {
        d.buffer = true;
        ++st.buffered;
    } else {
        // A dead receiver never acks and its traffic is intentionally never
        // recovered: buffering would hold full payload copies for the whole
        // kill-to-regroup window. Drop the edge buffer instead of growing it.
        d.clear = st.buffered;
        st.buffered = 0;
        st.base_seq = st.next_seq + 1;
    }
    return d;
}

std::optional<std::uint64_t> arq_tx_buffer_index(const ArqTxState& st,
                                                 std::uint64_t seq) {
    if (seq < st.base_seq || seq >= st.base_seq + st.buffered) return std::nullopt;
    return seq - st.base_seq;
}

std::uint64_t arq_tx_ack(ArqTxState& st, std::uint64_t cum_ack) {
    // An ack beyond anything we ever sent is wire garbage, not protocol
    // state; honoring it would GC payloads the receiver has not seen.
    if (cum_ack > st.next_seq) return 0;
    if (cum_ack > st.acked) st.acked = cum_ack;
    std::uint64_t gc = 0;
    while (st.buffered > 0 && st.base_seq <= st.acked) {
        ++gc;
        ++st.base_seq;
        --st.buffered;
    }
    if (arq_break() == ArqBreak::kGcDropsUnacked && st.buffered > 0) {
        // Seeded invariant break: same bug class as the send-path hook.
        ++gc;
        ++st.base_seq;
        --st.buffered;
    }
    return gc;
}

RxDecision arq_rx_envelope(ArqRxState& st, std::uint64_t seq, bool checksum_ok) {
    RxDecision d;
    d.cum_ack = st.expected - 1;
    if (!checksum_ok) {
        d.action = RxAction::kDropCorrupt;  // corruption == loss; the seq gap
        return d;                           // drives a retransmit
    }
    if (seq < st.expected) {
        if (arq_break() == ArqBreak::kAcceptDuplicates) {
            // Seeded invariant break: re-deliver an already-seen seq.
            d.action = RxAction::kDeliver;
            return d;
        }
        d.action = RxAction::kDropDuplicate;
        return d;
    }
    if (seq == st.expected) {
        ++st.expected;
        d.action = RxAction::kDeliver;
        d.release = drain_contiguous(st);
        d.cum_ack = st.expected - 1;
        return d;
    }
    d.action = st.parked.insert(seq).second ? RxAction::kPark
                                            : RxAction::kDropDuplicate;
    return d;
}

RxRecoverDecision arq_rx_recover(ArqRxState& st, bool stale) {
    RxRecoverDecision d;
    ++st.expected;  // past the gap head, delivered or skipped
    d.action = stale ? RecoverAction::kSkipStale : RecoverAction::kDeliver;
    d.release = drain_contiguous(st);
    d.cum_ack = st.expected - 1;
    return d;
}

void arq_rx_unpark(ArqRxState& st, std::uint64_t seq) { st.parked.erase(seq); }

}  // namespace gtopk::comm::fsm
