// TcpTransport: the real-socket Transport — one OS process per rank, a
// full TCP mesh between them, the same interface the in-process cluster
// runs on (transport.hpp), so every decorator (FaultInjectingTransport,
// ReliableTransport, RecordingTransport, telemetry) stacks over it
// unchanged.
//
// Bootstrap (rendezvous): rank 0 listens on the rendezvous port; every
// other rank connects there (with retry inside connect_timeout_s, so start
// order does not matter), sends a Hello{rank, listen_port}, and receives
// the address map (every rank's IP:port) back. The rendezvous connection
// itself becomes the permanent rank0<->peer data link; the rest of the
// mesh is completed peer-to-peer — rank j dials every rank i with
// 0 < i < j at its advertised address, identifying itself with the same
// Hello. A rank that dies mid-bootstrap surfaces on every survivor as a
// typed CommError naming the missing peer (accept/connect deadline ->
// RecvTimeout, a half-open link -> RankKilled), never a generic failure.
//
// Data plane: one frame per Message (comm/tcp_frame.hpp), written
// blocking under a per-peer mutex; a single background receiver thread
// poll()s every peer socket, feeds each connection's FrameDecoder, and
// pushes decoded messages into the local rank's Mailbox — the identical
// matching/deadline machinery the in-process transport uses, so
// receive_for's host-clock deadline maps onto the mailbox's
// condition-variable wait while socket-level timeouts (SO_RCVTIMEO during
// bootstrap and handshakes, the poll() tick afterwards) bound every
// blocking socket operation the background threads perform.
//
// Failure model (self-healing): EOF, ECONNRESET/EPIPE, a mid-frame
// disconnect or a malformed frame downs the LINK, not the peer. Link
// lifecycle is the pure FSM in comm/reconnect_fsm.hpp: the higher rank of
// the pair re-dials the lower one's persistent listener (rank 0 keeps the
// rendezvous listener, everyone else their mesh listener) with capped
// exponential backoff, carrying a RESUME hello that proposes a strictly
// advancing session id; the acceptor validates it (stale dials from
// abandoned incarnations are rejected) and answers RESUME_OK. While a link
// is kDown, deliver() to that peer silently drops the frame — the wire ARQ
// above (ReliableTransport) buffers every payload and replays the gap the
// moment take_reconnected() reports the resume. Only when the reconnect
// budget is exhausted does the link turn kDead (absorbing): rank_alive()
// goes false, a send throws CommError(RankKilled), a blocked receiver
// surfaces CommError(RecvTimeout) through its deadline, and the membership
// layer takes over. Typed errors, never a hang.
//
// Deterministic socket chaos: TcpConfig::socket_faults seeds a per-peer
// injector inside deliver()'s write path — scheduled connection kills,
// truncated frames (half a frame then a hard shutdown), stalled writes —
// so reconnect-under-load is testable without real network flakiness.
//
// This transport addresses ONE rank per process: receive/begin_epoch/
// pending_with_tag_at_least/take_reconnected are only valid for
// local_rank() (the mailbox of any other rank lives in another process).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "comm/mailbox.hpp"
#include "comm/reconnect_fsm.hpp"
#include "comm/tcp_frame.hpp"
#include "comm/transport.hpp"
#include "util/rng.hpp"

namespace gtopk::comm {

/// Deterministic socket-level fault plan: CONNECTION chaos (the layer below
/// FaultInjectingTransport's message chaos). Applied per frame, inside the
/// per-peer send lock, from a per-peer stream forked off `seed` — the fault
/// schedule is a pure function of (seed, per-peer frame ordinals).
struct SocketFaultPlan {
    std::uint64_t seed = 1;
    /// Hard-kill the connection instead of writing every Nth frame to a
    /// peer (1-based ordinal divisible by N). 0 = off. The frame is lost;
    /// the link goes kDown and the reconnect FSM takes over.
    std::uint64_t kill_every_n = 0;
    /// Write only the first half of every Nth frame, then hard-kill the
    /// connection — the receiver sees a mid-frame disconnect. 0 = off.
    std::uint64_t truncate_every_n = 0;
    /// Stall (sleep) for `stall_s` before writing, with this probability.
    double stall_prob = 0.0;
    double stall_s = 0.0;
    /// Restrict the plan to one destination rank; -1 = all peers.
    int only_peer = -1;
    /// Stop injecting after this many faults (whole transport, all peers).
    /// 0 = unlimited. Sustained periodic kills can outpace the ARQ replay
    /// forever (each connection incarnation delivers fewer frames than the
    /// growing backlog) — a bounded burst models real transient chaos and
    /// guarantees the run eventually drains.
    std::uint64_t max_faults = 0;

    bool enabled() const {
        return kill_every_n != 0 || truncate_every_n != 0 || stall_prob > 0.0;
    }
};

struct TcpConfig {
    int rank = -1;
    int world_size = 0;
    /// Rendezvous (rank 0) address every rank dials during bootstrap.
    std::string rendezvous_host = "127.0.0.1";
    int rendezvous_port = 0;
    /// Bound on the whole bootstrap: connect retries, hello exchange,
    /// address-map reads all complete within this budget or construction
    /// throws a CommError naming the missing peer.
    double connect_timeout_s = 30.0;
    /// Per-frame payload ceiling enforced on both sides of every link.
    std::uint64_t max_frame_payload = tcp::kMaxFramePayload;
    /// Reconnect budget/backoff for downed links (comm/reconnect_fsm.hpp).
    fsm::ReconnectPolicy reconnect;
    /// Seeded connection-level chaos (kills, truncations, stalls).
    SocketFaultPlan socket_faults;
};

class TcpTransport final : public Transport {
public:
    /// Rendezvous + mesh bootstrap; blocks until every peer link is up or
    /// connect_timeout_s expires (CommError naming the missing peer).
    explicit TcpTransport(const TcpConfig& config);
    ~TcpTransport() override;

    TcpTransport(const TcpTransport&) = delete;
    TcpTransport& operator=(const TcpTransport&) = delete;

    /// Build a config from the launcher's environment: GTOPK_RANK,
    /// GTOPK_WORLD_SIZE, GTOPK_RENDEZVOUS ("host:port"). nullopt when the
    /// variables are absent (not launched under tools/gtopkrun).
    static std::optional<TcpConfig> config_from_env();

    int world_size() const override { return world_; }
    int local_rank() const { return rank_; }

    void deliver(int dst, Message msg) override;
    Message receive(int rank, int source, int tag) override;
    std::optional<Message> try_receive(int rank, int source, int tag) override;
    std::optional<Message> receive_for(int rank, int source, int tag,
                                       double timeout_s) override;
    std::optional<Message> receive_for_virtual(int rank, int source, int tag,
                                               double max_arrival_s,
                                               double host_grace_s) override;
    void shutdown() override;
    void begin_epoch(int rank, int epoch) override;
    /// False only once a peer's link is kDead (reconnect budget exhausted);
    /// a link merely kDown is still alive — the resume may land any moment.
    bool rank_alive(int rank) const override;
    std::size_t pending_with_tag_at_least(int rank, int min_tag) const override;
    /// Each rank is its own process: a decorator's per-rank state is NOT
    /// shared, so ReliableTransport switches to its wire ack plane — acks,
    /// gap pulls and reconnect-triggered replays travel as real frames
    /// (see DESIGN.md §15/§17).
    bool shared_memory_fabric() const override { return false; }
    /// Peers whose link re-established (session resume) since the last
    /// call. The reliable layer drains this from its pump and immediately
    /// replays the ARQ gap with each returned peer.
    std::vector<int> take_reconnected(int rank) override;

    /// Wire counters (frames, not messages-with-duplicates) for tests.
    std::uint64_t frames_sent() const {
        return frames_sent_.load(std::memory_order_relaxed);
    }
    std::uint64_t frames_received() const {
        return frames_received_.load(std::memory_order_relaxed);
    }
    /// Frames the receiver rejected (FrameError, wrong-dst) — each one also
    /// downs its connection.
    std::uint64_t frames_rejected() const {
        return frames_rejected_.load(std::memory_order_relaxed);
    }
    /// Successful session resumes (either side) since construction.
    std::uint64_t reconnects() const {
        return reconnects_.load(std::memory_order_relaxed);
    }
    /// Socket faults the seeded plan injected (kills + truncations + stalls).
    std::uint64_t socket_faults_injected() const {
        return socket_faults_injected_.load(std::memory_order_relaxed);
    }

private:
    using Clock = std::chrono::steady_clock;

    /// Per-peer link bookkeeping around the pure fsm::LinkState. Guarded by
    /// links_mutex_; the phase is mirrored into phase_[] for lock-free
    /// reads on the deliver/rank_alive hot paths.
    struct Link {
        fsm::LinkState st;
        Clock::time_point down_since{};
        Clock::time_point next_dial{};
        /// A dialed fd completed its handshake and waits in the install
        /// queue for the receiver thread; suppresses further dials.
        bool installing = false;
    };

    /// Handshake-complete connection handed from the dialer thread to the
    /// receiver thread (which owns all fd installs and closes).
    struct PendingInstall {
        int peer = -1;
        int fd = -1;
        std::uint64_t session = 0;
    };

    void require_local(int rank, const char* who) const;
    void bootstrap(const TcpConfig& config);
    void receiver_loop();
    void dialer_loop();
    /// Socket failure on the link to `peer`: kUp -> kDown (shutdown() the
    /// fd so both the receiver and any blocked writer notice; the receiver
    /// retires it). Safe from any thread.
    void link_mark_down(int peer);
    /// Absorbing death of `peer`'s link (budget exhausted / patience
    /// expired). Caller holds links_mutex_.
    void link_mark_dead_locked(int peer);
    /// Receiver thread: close and forget the fd of a non-kUp link.
    void retire_fd(int peer);
    /// Receiver thread: install a fresh connection for `peer` (closing any
    /// old fd), reset its decoder, record the reconnect event.
    void install_fd(int peer, int fd, std::uint64_t session, bool from_dial);
    /// Receiver thread: accept + validate one RESUME on the listener.
    void accept_resume();
    /// Dialer thread: one bounded connect + RESUME/RESUME_OK exchange.
    /// Returns the connected fd, or -1.
    int dial_resume(int peer, std::uint64_t proposal);
    /// Kick the receiver's poll() awake.
    void wake_receiver();

    int rank_ = -1;
    int world_ = 0;
    std::uint64_t max_payload_ = tcp::kMaxFramePayload;
    fsm::ReconnectPolicy reconnect_;
    SocketFaultPlan faults_;
    Mailbox mailbox_;

    /// Peer sockets. Writes (install/retire) happen on the receiver thread
    /// under the peer's send mutex; atomic so the dialer/pollfd scans and
    /// deliver() read without it.
    std::unique_ptr<std::atomic<int>[]> peer_fds_;
    std::vector<tcp::FrameDecoder> decoders_;     // receiver thread only
    std::unique_ptr<std::mutex[]> send_mutexes_;  // per-peer write lock
    /// Lock-free mirror of links_[r].st.phase (stored as int).
    std::unique_ptr<std::atomic<int>[]> phase_;
    std::vector<Link> links_;  // guarded by links_mutex_
    mutable std::mutex links_mutex_;
    std::vector<PendingInstall> installs_;  // guarded by links_mutex_
    std::vector<int> reconnected_;          // guarded by links_mutex_

    /// Persistent listener for session resumes: rank 0 keeps the rendezvous
    /// socket, every other rank its mesh listener.
    int listen_fd_ = -1;
    /// Redial addresses learned at bootstrap (IPv4 network order / port).
    std::vector<std::uint32_t> peer_ip_;
    std::vector<int> peer_port_;

    /// Per-peer seeded fault streams + frame ordinals (send-mutex guarded).
    std::vector<util::Xoshiro256> fault_rng_;
    std::vector<std::uint64_t> fault_ord_;

    int wake_pipe_[2] = {-1, -1};  // self-pipe: shutdown()/events -> poll()
    std::thread receiver_;
    std::thread dialer_;
    std::atomic<bool> running_{false};
    std::once_flag shutdown_once_;
    std::atomic<std::uint64_t> frames_sent_{0};
    std::atomic<std::uint64_t> frames_received_{0};
    std::atomic<std::uint64_t> frames_rejected_{0};
    std::atomic<std::uint64_t> reconnects_{0};
    std::atomic<std::uint64_t> socket_faults_injected_{0};

public:
    /// Test-only peek at a link's phase (0 kUp, 1 kDown, 2 kDead).
    int link_phase(int peer) const {
        if (peer < 0 || peer >= world_ || peer == rank_) return 0;
        return phase_[static_cast<std::size_t>(peer)].load(
            std::memory_order_acquire);
    }
};

}  // namespace gtopk::comm
