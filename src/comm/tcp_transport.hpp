// TcpTransport: the real-socket Transport — one OS process per rank, a
// full TCP mesh between them, the same interface the in-process cluster
// runs on (transport.hpp), so every decorator (FaultInjectingTransport,
// ReliableTransport, RecordingTransport, telemetry) stacks over it
// unchanged.
//
// Bootstrap (rendezvous): rank 0 listens on the rendezvous port; every
// other rank connects there (with retry inside connect_timeout_s, so start
// order does not matter), sends a Hello{rank, listen_port}, and receives
// the address map (every rank's IP:port) back. The rendezvous connection
// itself becomes the permanent rank0<->peer data link; the rest of the
// mesh is completed peer-to-peer — rank j dials every rank i with
// 0 < i < j at its advertised address, identifying itself with the same
// Hello.
//
// Data plane: one frame per Message (comm/tcp_frame.hpp), written
// blocking under a per-peer mutex; a single background receiver thread
// poll()s every peer socket, feeds each connection's FrameDecoder, and
// pushes decoded messages into the local rank's Mailbox — the identical
// matching/deadline machinery the in-process transport uses, so
// receive_for's host-clock deadline maps onto the mailbox's
// condition-variable wait while socket-level timeouts (SO_RCVTIMEO during
// bootstrap, the poll() tick afterwards) bound every blocking socket
// operation the background thread performs.
//
// Failure model: EOF or a socket error on a peer's connection marks that
// peer dead (rank_alive -> false) — a subsequent send to it throws
// CommError(RankKilled); a receiver blocked on its traffic surfaces
// CommError(RecvTimeout) through its armed receive deadline. Typed
// errors, never a hang, exactly the chaos-harness contract.
//
// This transport addresses ONE rank per process: receive/begin_epoch/
// pending_with_tag_at_least are only valid for local_rank() (the mailbox
// of any other rank lives in another process).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "comm/mailbox.hpp"
#include "comm/tcp_frame.hpp"
#include "comm/transport.hpp"

namespace gtopk::comm {

struct TcpConfig {
    int rank = -1;
    int world_size = 0;
    /// Rendezvous (rank 0) address every rank dials during bootstrap.
    std::string rendezvous_host = "127.0.0.1";
    int rendezvous_port = 0;
    /// Bound on the whole bootstrap: connect retries, hello exchange,
    /// address-map reads all complete within this budget or construction
    /// throws.
    double connect_timeout_s = 30.0;
    /// Per-frame payload ceiling enforced on both sides of every link.
    std::uint64_t max_frame_payload = tcp::kMaxFramePayload;
};

class TcpTransport final : public Transport {
public:
    /// Rendezvous + mesh bootstrap; blocks until every peer link is up or
    /// connect_timeout_s expires (std::runtime_error).
    explicit TcpTransport(const TcpConfig& config);
    ~TcpTransport() override;

    TcpTransport(const TcpTransport&) = delete;
    TcpTransport& operator=(const TcpTransport&) = delete;

    /// Build a config from the launcher's environment: GTOPK_RANK,
    /// GTOPK_WORLD_SIZE, GTOPK_RENDEZVOUS ("host:port"). nullopt when the
    /// variables are absent (not launched under tools/gtopkrun).
    static std::optional<TcpConfig> config_from_env();

    int world_size() const override { return world_; }
    int local_rank() const { return rank_; }

    void deliver(int dst, Message msg) override;
    Message receive(int rank, int source, int tag) override;
    std::optional<Message> try_receive(int rank, int source, int tag) override;
    std::optional<Message> receive_for(int rank, int source, int tag,
                                       double timeout_s) override;
    std::optional<Message> receive_for_virtual(int rank, int source, int tag,
                                               double max_arrival_s,
                                               double host_grace_s) override;
    void shutdown() override;
    void begin_epoch(int rank, int epoch) override;
    bool rank_alive(int rank) const override;
    std::size_t pending_with_tag_at_least(int rank, int min_tag) const override;
    /// Each rank is its own process: a decorator's per-rank state is NOT
    /// shared, so ReliableTransport's buffer-pull recovery cannot work here
    /// (TCP already guarantees per-edge reliable FIFO; see DESIGN.md §15).
    bool shared_memory_fabric() const override { return false; }

    /// Wire counters (frames, not messages-with-duplicates) for tests.
    std::uint64_t frames_sent() const {
        return frames_sent_.load(std::memory_order_relaxed);
    }
    std::uint64_t frames_received() const {
        return frames_received_.load(std::memory_order_relaxed);
    }
    /// Frames the receiver rejected (FrameError, wrong-dst) — each one also
    /// kills its connection.
    std::uint64_t frames_rejected() const {
        return frames_rejected_.load(std::memory_order_relaxed);
    }

private:
    void require_local(int rank, const char* who) const;
    void bootstrap(const TcpConfig& config);
    void receiver_loop();
    /// Peer connection failed or closed: mark dead, close the socket, wake
    /// the poll loop.
    void drop_peer(int peer);

    int rank_ = -1;
    int world_ = 0;
    std::uint64_t max_payload_ = tcp::kMaxFramePayload;
    Mailbox mailbox_;
    std::vector<int> peer_fds_;                        // -1: self or closed
    std::vector<tcp::FrameDecoder> decoders_;          // receiver thread only
    std::unique_ptr<std::mutex[]> send_mutexes_;       // per-peer write lock
    std::unique_ptr<std::atomic<bool>[]> peer_alive_;
    int wake_pipe_[2] = {-1, -1};  // self-pipe: shutdown() -> poll() wakeup
    std::thread receiver_;
    std::atomic<bool> running_{false};
    std::once_flag shutdown_once_;
    std::atomic<std::uint64_t> frames_sent_{0};
    std::atomic<std::uint64_t> frames_received_{0};
    std::atomic<std::uint64_t> frames_rejected_{0};
};

}  // namespace gtopk::comm
