#include "comm/fault_transport.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <thread>

#include "comm/comm_error.hpp"
#include "obs/trace.hpp"

namespace gtopk::comm {

void corrupt_bytes(std::span<std::byte> bytes, util::Xoshiro256& rng, int flips) {
    if (bytes.empty()) return;
    for (int f = 0; f < flips; ++f) {
        const std::size_t byte_idx =
            static_cast<std::size_t>(rng.next_below(bytes.size()));
        const unsigned bit = static_cast<unsigned>(rng.next_below(8));
        bytes[byte_idx] ^= static_cast<std::byte>(1u << bit);
    }
}

FaultInjectingTransport::FaultInjectingTransport(std::unique_ptr<Transport> inner,
                                                 FaultPlan plan)
    : inner_(std::move(inner)), plan_(std::move(plan)) {
    if (!inner_) throw std::invalid_argument("FaultInjectingTransport: null inner");
    const std::size_t world = static_cast<std::size_t>(inner_->world_size());
    edges_.resize(world * world);
    held_.resize(world * world);
    killed_ = std::vector<std::atomic<bool>>(world);
    kill_after_.assign(world, std::numeric_limits<std::uint64_t>::max());
    sends_attempted_.assign(world, 0);
    kill_at_step_.assign(world, std::numeric_limits<std::int64_t>::max());
    // Fork one independent, reproducible stream per directed edge; the
    // schedule depends only on (seed, plan, per-edge traffic), never on
    // thread interleaving (row src is touched by src's thread alone).
    const util::Xoshiro256 root(plan_.seed);
    for (std::size_t src = 0; src < world; ++src) {
        for (std::size_t dst = 0; dst < world; ++dst) {
            Edge& e = edges_[src * world + dst];
            e.rng = root.fork(static_cast<std::uint64_t>(src * world + dst));
            e.rule_hits.assign(plan_.rules.size(), 0);
        }
    }
    for (const KillSpec& k : plan_.kills) {
        if (k.rank < 0 || k.rank >= inner_->world_size()) {
            throw std::invalid_argument("FaultPlan: kill rank outside world");
        }
        if (k.at_progress >= 0) {
            kill_at_step_[static_cast<std::size_t>(k.rank)] =
                std::min(kill_at_step_[static_cast<std::size_t>(k.rank)],
                         k.at_progress);
        } else {
            kill_after_[static_cast<std::size_t>(k.rank)] =
                std::min(kill_after_[static_cast<std::size_t>(k.rank)], k.after_sends);
        }
    }
}

FaultInjectingTransport::FaultInjectingTransport(int world_size, FaultPlan plan)
    : FaultInjectingTransport(std::make_unique<InProcTransport>(world_size),
                              std::move(plan)) {}

void FaultInjectingTransport::count_event(std::atomic<std::uint64_t>& cell,
                                          obs::Counter* metric) {
    cell.fetch_add(1, std::memory_order_relaxed);
    if (metric) metric->add(1);
}

void FaultInjectingTransport::deliver(int dst, Message msg) {
    const int world = world_size();
    if (dst < 0 || dst >= world) throw std::out_of_range("deliver: bad rank");
    const int src = msg.source;
    if (src < 0 || src >= world) throw std::out_of_range("deliver: bad source");

    // Rank-kill: the (after_sends + 1)-th send attempt marks the sender
    // dead; that send and everything after it is swallowed.
    const std::size_t s = static_cast<std::size_t>(src);
    if (++sends_attempted_[s] > kill_after_[s]) {
        killed_[s].store(true, std::memory_order_release);
    }
    if (killed_[s].load(std::memory_order_acquire)) {
        count_event(killed_sends_, m_killed_sends_);
        return;
    }
    // A dead host receives nothing.
    if (killed_[static_cast<std::size_t>(dst)].load(std::memory_order_acquire)) {
        count_event(dropped_, m_dropped_);
        return;
    }

    bool dup = false;
    bool reorder = false;
    for (std::size_t ri = 0; ri < plan_.rules.size(); ++ri) {
        const FaultRule& rule = plan_.rules[ri];
        if (!rule.matches(src, dst, msg.tag)) continue;
        Edge& e = edge(src, dst);
        const std::uint64_t ordinal = ++e.rule_hits[ri];
        // Fixed draw order per matched message keeps the schedule a pure
        // function of the edge ordinal, whatever the probabilities are.
        const double u_drop = e.rng.next_double();
        const double u_dup = e.rng.next_double();
        const double u_reorder = e.rng.next_double();
        const double u_corrupt = e.rng.next_double();
        const double u_delay = e.rng.next_double();
        if ((rule.drop_every_n != 0 && ordinal % rule.drop_every_n == 0) ||
            u_drop < rule.drop_prob) {
            count_event(dropped_, m_dropped_);
            return;
        }
        if (u_delay < rule.delay_prob) {
            msg.arrival_time_s += rule.extra_delay_s;
            count_event(delayed_, m_delayed_);
        }
        if (u_corrupt < rule.corrupt_prob && !msg.payload.empty()) {
            corrupt_bytes(msg.payload, e.rng);
            count_event(corrupted_, m_corrupted_);
        }
        dup = u_dup < rule.dup_prob;
        reorder = (rule.reorder_every_n != 0 && ordinal % rule.reorder_every_n == 0) ||
                  u_reorder < rule.reorder_prob;
        break;  // first matching rule wins
    }

    // `reordered`/`duplicated` count DECISIONS (deterministic per edge);
    // parking is best-effort — an occupied slot (receiver not yet drained)
    // degrades the reorder to a plain in-order delivery.
    if (reorder) count_event(reordered_, m_reordered_);
    if (dup) count_event(duplicated_, m_duplicated_);

    const std::size_t slot_idx = static_cast<std::size_t>(src) *
                                     static_cast<std::size_t>(world) +
                                 static_cast<std::size_t>(dst);
    std::optional<Message> first;   // same-stream: must precede msg (FIFO)
    std::optional<Message> second;  // cross-stream: may follow msg
    {
        std::lock_guard<std::mutex> lock(held_mutex_);
        std::optional<Message>& slot = held_[slot_idx];
        if (reorder && !dup && !slot.has_value()) {
            slot = std::move(msg);
            return;
        }
        if (slot.has_value()) {
            if (slot->tag == msg.tag) {
                first = std::move(*slot);  // same (source, tag) stream: FIFO
            } else {
                second = std::move(*slot);  // cross-stream reorder realized
            }
            slot.reset();
        }
    }
    if (first) deliver_through(dst, std::move(*first));
    if (dup) {
        Message copy = msg;
        deliver_through(dst, std::move(copy));
    }
    deliver_through(dst, std::move(msg));
    if (second) deliver_through(dst, std::move(*second));
}

void FaultInjectingTransport::deliver_through(int dst, Message msg) {
    delivered_.fetch_add(1, std::memory_order_relaxed);
    inner_->deliver(dst, std::move(msg));
}

void FaultInjectingTransport::flush_held(int dst) {
    // Release every message parked for `dst`, whatever its source edge:
    // the receiver is actively waiting, so liveness beats adversarialness.
    const int world = world_size();
    std::vector<Message> release;
    {
        std::lock_guard<std::mutex> lock(held_mutex_);
        for (int src = 0; src < world; ++src) {
            std::optional<Message>& slot =
                held_[static_cast<std::size_t>(src) * static_cast<std::size_t>(world) +
                      static_cast<std::size_t>(dst)];
            if (slot.has_value()) {
                release.push_back(std::move(*slot));
                slot.reset();
            }
        }
    }
    for (Message& m : release) deliver_through(dst, std::move(m));
}

Message FaultInjectingTransport::receive(int rank, int source, int tag) {
    std::optional<Message> msg = receive_for(rank, source, tag, 0.0);
    return std::move(*msg);  // timeout <= 0 only returns with a message
}

std::optional<Message> FaultInjectingTransport::try_receive(int rank, int source,
                                                            int tag) {
    if (rank_killed(rank)) {
        throw CommError(CommErrorKind::RankKilled, rank, source, tag, 0.0);
    }
    flush_held(rank);
    return inner_->try_receive(rank, source, tag);
}

std::optional<Message> FaultInjectingTransport::receive_for(int rank, int source,
                                                            int tag,
                                                            double timeout_s) {
    // Poll rather than block inside the inner mailbox: a sender may PARK a
    // message after this receiver already started waiting, so the hold
    // slots must be re-checked until the match shows up, the deadline
    // passes, or the transport shuts down (MailboxClosed from try_receive).
    const bool bounded = timeout_s > 0.0;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(bounded ? timeout_s : 0.0));
    for (;;) {
        if (auto msg = try_receive(rank, source, tag)) return msg;
        if (bounded && std::chrono::steady_clock::now() >= deadline) {
            return std::nullopt;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
}

void FaultInjectingTransport::shutdown() { inner_->shutdown(); }

std::size_t FaultInjectingTransport::pending_with_tag_at_least(int rank,
                                                               int min_tag) const {
    std::size_t held = 0;
    {
        std::lock_guard<std::mutex> lock(held_mutex_);
        for (int src = 0; src < world_size(); ++src) {
            const auto& slot = held_[static_cast<std::size_t>(src) *
                                         static_cast<std::size_t>(world_size()) +
                                     static_cast<std::size_t>(rank)];
            if (slot && slot->tag >= min_tag) ++held;
        }
    }
    return held + inner_->pending_with_tag_at_least(rank, min_tag);
}

void FaultInjectingTransport::begin_epoch(int rank, int epoch) {
    if (rank < 0 || rank >= world_size()) {
        throw std::out_of_range("begin_epoch: bad rank");
    }
    // A parked (reordered) stale-epoch message must never be released into
    // the new epoch: drop it here; the inner mailbox floor catches the rest.
    {
        std::lock_guard<std::mutex> lock(held_mutex_);
        for (int src = 0; src < world_size(); ++src) {
            std::optional<Message>& slot =
                held_[static_cast<std::size_t>(src) *
                          static_cast<std::size_t>(world_size()) +
                      static_cast<std::size_t>(rank)];
            if (slot && slot->epoch < epoch) slot.reset();
        }
    }
    inner_->begin_epoch(rank, epoch);
}

void FaultInjectingTransport::on_progress(int rank, std::int64_t step) {
    if (rank < 0 || rank >= world_size()) return;
    if (step >= kill_at_step_[static_cast<std::size_t>(rank)]) {
        killed_[static_cast<std::size_t>(rank)].store(true, std::memory_order_release);
    }
    inner_->on_progress(rank, step);
}

void FaultInjectingTransport::kill_rank(int rank) {
    if (rank < 0 || rank >= world_size()) {
        throw std::out_of_range("kill_rank: bad rank");
    }
    killed_[static_cast<std::size_t>(rank)].store(true, std::memory_order_release);
}

bool FaultInjectingTransport::rank_killed(int rank) const {
    if (rank < 0 || rank >= world_size()) return false;
    return killed_[static_cast<std::size_t>(rank)].load(std::memory_order_acquire);
}

FaultCounts FaultInjectingTransport::counts() const {
    FaultCounts c;
    c.delivered = delivered_.load(std::memory_order_relaxed);
    c.dropped = dropped_.load(std::memory_order_relaxed);
    c.duplicated = duplicated_.load(std::memory_order_relaxed);
    c.reordered = reordered_.load(std::memory_order_relaxed);
    c.corrupted = corrupted_.load(std::memory_order_relaxed);
    c.delayed = delayed_.load(std::memory_order_relaxed);
    c.killed_sends = killed_sends_.load(std::memory_order_relaxed);
    return c;
}

void FaultInjectingTransport::set_tracer(obs::Tracer* tracer) {
    if (tracer) {
        obs::MetricsRegistry& m = tracer->metrics();
        m_dropped_ = &m.counter("fault.dropped");
        m_duplicated_ = &m.counter("fault.duplicated");
        m_reordered_ = &m.counter("fault.reordered");
        m_corrupted_ = &m.counter("fault.corrupted");
        m_delayed_ = &m.counter("fault.delayed");
        m_killed_sends_ = &m.counter("fault.killed_sends");
    } else {
        m_dropped_ = nullptr;
        m_duplicated_ = nullptr;
        m_reordered_ = nullptr;
        m_corrupted_ = nullptr;
        m_delayed_ = nullptr;
        m_killed_sends_ = nullptr;
    }
    inner_->set_tracer(tracer);
}

}  // namespace gtopk::comm
