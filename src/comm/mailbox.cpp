#include "comm/mailbox.hpp"

#include "comm/tags.hpp"

namespace gtopk::comm {

void Mailbox::note_insert(const Message& m) {
    if (m.tag >= kFreshTagBase) ++fresh_pending_;
    if (m.tag >= kAsyncTagBase) ++async_pending_;
}

void Mailbox::note_erase(const Message& m) {
    if (m.tag >= kFreshTagBase) --fresh_pending_;
    if (m.tag >= kAsyncTagBase) --async_pending_;
}

std::size_t Mailbox::push(Message msg) {
    std::size_t depth = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (msg.epoch < min_epoch_) {
            // Stale-epoch traffic from a straggler: rejected at the door,
            // deterministically, so it can never steal a future match.
            ++stale_rejected_;
            return queue_.size();
        }
        note_insert(msg);
        queue_.push_back(std::move(msg));
        depth = queue_.size();
    }
    cv_.notify_all();
    return depth;
}

Message Mailbox::pop(int source, int tag) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (matches(*it, source, tag)) {
                Message msg = std::move(*it);
                note_erase(msg);
                queue_.erase(it);
                return msg;
            }
        }
        if (closed_) throw MailboxClosed{};
        cv_.wait(lock);
    }
}

std::optional<Message> Mailbox::pop_for(int source, int tag,
                                        std::chrono::nanoseconds timeout) {
    // The absolute deadline is computed ONCE, before the wait loop: every
    // spurious or non-matching wakeup re-enters cv_.wait_until with the
    // same time point, so repeated wakeups can never extend the effective
    // timeout (scale_test pins this property under a notification storm).
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (matches(*it, source, tag)) {
                Message msg = std::move(*it);
                note_erase(msg);
                queue_.erase(it);
                return msg;
            }
        }
        if (closed_) throw MailboxClosed{};
        if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
            // One final scan: a push may have raced the timeout.
            for (auto it = queue_.begin(); it != queue_.end(); ++it) {
                if (matches(*it, source, tag)) {
                    Message msg = std::move(*it);
                    note_erase(msg);
                    queue_.erase(it);
                    return msg;
                }
            }
            if (closed_) throw MailboxClosed{};
            return std::nullopt;
        }
    }
}

std::optional<Message> Mailbox::pop_for_virtual(int source, int tag,
                                                double max_arrival_s,
                                                std::chrono::nanoseconds host_grace) {
    const auto grace_deadline = std::chrono::steady_clock::now() + host_grace;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (!matches(*it, source, tag)) continue;
            note_erase(*it);
            if (it->arrival_time_s <= max_arrival_s) {
                Message msg = std::move(*it);
                queue_.erase(it);
                return msg;
            }
            // Matched, but past the virtual deadline: the receive gave up
            // at virtual time max_arrival_s, so this message is stale by
            // definition. Consume and discard it — the timeout outcome is
            // then a pure function of modeled arrival times.
            queue_.erase(it);
            return std::nullopt;
        }
        if (closed_) throw MailboxClosed{};
        if (cv_.wait_until(lock, grace_deadline) == std::cv_status::timeout) {
            for (auto it = queue_.begin(); it != queue_.end(); ++it) {
                if (!matches(*it, source, tag)) continue;
                const bool in_time = it->arrival_time_s <= max_arrival_s;
                std::optional<Message> out;
                note_erase(*it);
                if (in_time) out = std::move(*it);
                queue_.erase(it);
                return out;
            }
            if (closed_) throw MailboxClosed{};
            return std::nullopt;
        }
    }
}

std::optional<Message> Mailbox::try_pop(int source, int tag) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) throw MailboxClosed{};
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (matches(*it, source, tag)) {
            Message msg = std::move(*it);
            note_erase(msg);
            queue_.erase(it);
            return msg;
        }
    }
    return std::nullopt;
}

void Mailbox::close() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    cv_.notify_all();
}

std::size_t Mailbox::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

void Mailbox::set_min_epoch(int epoch) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (epoch <= min_epoch_) return;
    min_epoch_ = epoch;
    for (auto it = queue_.begin(); it != queue_.end();) {
        if (it->epoch < min_epoch_) {
            note_erase(*it);
            it = queue_.erase(it);
            ++stale_rejected_;
        } else {
            ++it;
        }
    }
}

int Mailbox::min_epoch() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return min_epoch_;
}

std::size_t Mailbox::stale_rejected() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stale_rejected_;
}

std::size_t Mailbox::count_tag_at_least(int min_tag) const {
    std::lock_guard<std::mutex> lock(mutex_);
    // O(1) fast paths for the thresholds the hot loops use: total depth
    // (telemetry's per-iteration mailbox_depth) and the two band bases
    // (the fresh/async tag-wrap soundness checks). At P=256 these were an
    // O(queue) scan per iteration per rank.
    if (min_tag <= 0) return queue_.size();
    if (min_tag == kFreshTagBase) return fresh_pending_;
    if (min_tag == kAsyncTagBase) return async_pending_;
    std::size_t n = 0;
    for (const Message& m : queue_) {
        if (m.tag >= min_tag) ++n;
    }
    return n;
}

}  // namespace gtopk::comm
