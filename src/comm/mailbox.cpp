#include "comm/mailbox.hpp"

namespace gtopk::comm {

std::size_t Mailbox::push(Message msg) {
    std::size_t depth;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (msg.epoch < min_epoch_) {
            // Stale-epoch traffic from a straggler: rejected at the door,
            // deterministically, so it can never steal a future match.
            ++stale_rejected_;
            return queue_.size();
        }
        queue_.push_back(std::move(msg));
        depth = queue_.size();
    }
    cv_.notify_all();
    return depth;
}

Message Mailbox::pop(int source, int tag) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (matches(*it, source, tag)) {
                Message msg = std::move(*it);
                queue_.erase(it);
                return msg;
            }
        }
        if (closed_) throw MailboxClosed{};
        cv_.wait(lock);
    }
}

std::optional<Message> Mailbox::pop_for(int source, int tag,
                                        std::chrono::nanoseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (matches(*it, source, tag)) {
                Message msg = std::move(*it);
                queue_.erase(it);
                return msg;
            }
        }
        if (closed_) throw MailboxClosed{};
        if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
            // One final scan: a push may have raced the timeout.
            for (auto it = queue_.begin(); it != queue_.end(); ++it) {
                if (matches(*it, source, tag)) {
                    Message msg = std::move(*it);
                    queue_.erase(it);
                    return msg;
                }
            }
            if (closed_) throw MailboxClosed{};
            return std::nullopt;
        }
    }
}

std::optional<Message> Mailbox::pop_for_virtual(int source, int tag,
                                                double max_arrival_s,
                                                std::chrono::nanoseconds host_grace) {
    const auto grace_deadline = std::chrono::steady_clock::now() + host_grace;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (!matches(*it, source, tag)) continue;
            if (it->arrival_time_s <= max_arrival_s) {
                Message msg = std::move(*it);
                queue_.erase(it);
                return msg;
            }
            // Matched, but past the virtual deadline: the receive gave up
            // at virtual time max_arrival_s, so this message is stale by
            // definition. Consume and discard it — the timeout outcome is
            // then a pure function of modeled arrival times.
            queue_.erase(it);
            return std::nullopt;
        }
        if (closed_) throw MailboxClosed{};
        if (cv_.wait_until(lock, grace_deadline) == std::cv_status::timeout) {
            for (auto it = queue_.begin(); it != queue_.end(); ++it) {
                if (!matches(*it, source, tag)) continue;
                const bool in_time = it->arrival_time_s <= max_arrival_s;
                std::optional<Message> out;
                if (in_time) out = std::move(*it);
                queue_.erase(it);
                return out;
            }
            if (closed_) throw MailboxClosed{};
            return std::nullopt;
        }
    }
}

std::optional<Message> Mailbox::try_pop(int source, int tag) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) throw MailboxClosed{};
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (matches(*it, source, tag)) {
            Message msg = std::move(*it);
            queue_.erase(it);
            return msg;
        }
    }
    return std::nullopt;
}

void Mailbox::close() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    cv_.notify_all();
}

std::size_t Mailbox::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

void Mailbox::set_min_epoch(int epoch) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (epoch <= min_epoch_) return;
    min_epoch_ = epoch;
    for (auto it = queue_.begin(); it != queue_.end();) {
        if (it->epoch < min_epoch_) {
            it = queue_.erase(it);
            ++stale_rejected_;
        } else {
            ++it;
        }
    }
}

int Mailbox::min_epoch() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return min_epoch_;
}

std::size_t Mailbox::stale_rejected() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stale_rejected_;
}

std::size_t Mailbox::count_tag_at_least(int min_tag) const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const Message& m : queue_) {
        if (m.tag >= min_tag) ++n;
    }
    return n;
}

}  // namespace gtopk::comm
