#include "comm/mailbox.hpp"

namespace gtopk::comm {

std::size_t Mailbox::push(Message msg) {
    std::size_t depth;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(msg));
        depth = queue_.size();
    }
    cv_.notify_all();
    return depth;
}

Message Mailbox::pop(int source, int tag) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (matches(*it, source, tag)) {
                Message msg = std::move(*it);
                queue_.erase(it);
                return msg;
            }
        }
        if (closed_) throw MailboxClosed{};
        cv_.wait(lock);
    }
}

std::optional<Message> Mailbox::pop_for(int source, int tag,
                                        std::chrono::nanoseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (matches(*it, source, tag)) {
                Message msg = std::move(*it);
                queue_.erase(it);
                return msg;
            }
        }
        if (closed_) throw MailboxClosed{};
        if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
            // One final scan: a push may have raced the timeout.
            for (auto it = queue_.begin(); it != queue_.end(); ++it) {
                if (matches(*it, source, tag)) {
                    Message msg = std::move(*it);
                    queue_.erase(it);
                    return msg;
                }
            }
            if (closed_) throw MailboxClosed{};
            return std::nullopt;
        }
    }
}

std::optional<Message> Mailbox::try_pop(int source, int tag) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) throw MailboxClosed{};
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (matches(*it, source, tag)) {
            Message msg = std::move(*it);
            queue_.erase(it);
            return msg;
        }
    }
    return std::nullopt;
}

void Mailbox::close() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    cv_.notify_all();
}

std::size_t Mailbox::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

std::size_t Mailbox::count_tag_at_least(int min_tag) const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const Message& m : queue_) {
        if (m.tag >= min_tag) ++n;
    }
    return n;
}

}  // namespace gtopk::comm
