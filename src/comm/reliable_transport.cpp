#include "comm/reliable_transport.hpp"

#include <chrono>
#include <cstring>
#include <thread>

#include "comm/comm_error.hpp"
#include "comm/tags.hpp"
#include "obs/trace.hpp"

namespace gtopk::comm {

namespace {

// Envelope header, prepended to the user payload on the wire:
//   [magic u64][seq u64][orig_tag i64][orig_epoch i64][checksum u64]
// The checksum covers seq, orig_tag, orig_epoch and the user payload, so a
// fault-layer bit flip anywhere in the envelope is detected: a flip in
// `magic` or `checksum` fails the respective check directly, a flip in any
// other field or the payload fails the checksum. Either way the envelope is
// discarded and the sequence gap drives a retransmit.
//
// The original epoch rides INSIDE the envelope (not only on the carrier
// Message) so a wire retransmit can bump its carrier epoch past the
// receiving fabric's inbound floor after a regroup: the frame still
// arrives, the rx FSM still advances past the seq, and the unwrapped
// message — restored to its original epoch — is then rejected by the
// delivered-mailbox floor, which is exactly the stale-skip semantic of the
// in-process recovery path.
constexpr std::uint64_t kMagic = 0x6774306b52454cULL;  // "gt0kREL"
constexpr std::size_t kHeaderBytes = 40;

// Wire control frames (kTagReliableAck / kTagReliablePull):
//   [magic u64][value u64][checksum u64]
// A corrupted control frame must never reach the FSMs: a garbage
// cumulative ack could GC payloads nobody received. Malformed frames are
// dropped; the protocol re-sends acks/pulls anyway.
constexpr std::uint64_t kCtlMagic = 0x6774306b41524bULL;  // "gt0kARK"
constexpr std::size_t kCtlBytes = 24;

std::uint64_t fnv1a(const std::byte* data, std::size_t n,
                    std::uint64_t h = 0xcbf29ce484222325ULL) {
    for (std::size_t i = 0; i < n; ++i) {
        h ^= static_cast<std::uint64_t>(data[i]);
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t envelope_checksum(std::uint64_t seq, std::int64_t orig_tag,
                                std::int64_t orig_epoch,
                                const std::vector<std::byte>& payload) {
    std::byte key[24];
    std::memcpy(key, &seq, 8);
    std::memcpy(key + 8, &orig_tag, 8);
    std::memcpy(key + 16, &orig_epoch, 8);
    return fnv1a(payload.data(), payload.size(), fnv1a(key, sizeof key));
}

void put_u64(std::byte* at, std::uint64_t v) { std::memcpy(at, &v, 8); }
std::uint64_t get_u64(const std::byte* at) {
    std::uint64_t v = 0;
    std::memcpy(&v, at, 8);
    return v;
}

std::optional<std::uint64_t> decode_control(const std::vector<std::byte>& p) {
    if (p.size() != kCtlBytes || get_u64(p.data()) != kCtlMagic) {
        return std::nullopt;
    }
    const std::uint64_t value = get_u64(p.data() + 8);
    std::byte key[8];
    std::memcpy(key, &value, 8);
    if (fnv1a(key, sizeof key) != get_u64(p.data() + 16)) return std::nullopt;
    return value;
}

std::chrono::steady_clock::duration host_dur(double seconds) {
    return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(seconds));
}

}  // namespace

ReliableTransport::ReliableTransport(std::unique_ptr<Transport> inner,
                                     ReliableConfig config)
    : inner_(std::move(inner)), config_(config) {
    if (!inner_) throw std::invalid_argument("ReliableTransport: null inner");
    wire_ = !inner_->shared_memory_fabric();
    const std::size_t world = static_cast<std::size_t>(inner_->world_size());
    tx_.reserve(world * world);
    for (std::size_t i = 0; i < world * world; ++i) {
        tx_.push_back(std::make_unique<EdgeTx>());
    }
    rx_.resize(world * world);
    delivered_.reserve(world);
    for (std::size_t i = 0; i < world; ++i) {
        delivered_.push_back(std::make_unique<Mailbox>());
    }
    backoff_.resize(world);
    floors_.assign(world, 0);
}

ReliableTransport::~ReliableTransport() {
    try {
        shutdown();
    } catch (...) {
        // Destructors must not throw; the inner fabric's own teardown runs
        // regardless via its destructor.
    }
}

void ReliableTransport::count_event(std::atomic<std::uint64_t>& cell,
                                    obs::Counter* metric) {
    cell.fetch_add(1, std::memory_order_relaxed);
    if (metric) metric->add(1);
}

namespace {

/// Wrap `msg` as a seq-numbered envelope. `carrier_epoch` is the epoch on
/// the CARRIER message (what inbound epoch floors judge); the original
/// epoch is preserved inside the header. First transmissions use
/// carrier_epoch == msg.epoch; wire retransmits may bump it.
Message make_envelope(const Message& msg, std::uint64_t seq, int carrier_epoch) {
    Message envelope;
    envelope.source = msg.source;
    envelope.tag = kTagReliableData;
    envelope.epoch = carrier_epoch;
    envelope.arrival_time_s = msg.arrival_time_s;
    const std::int64_t orig_tag = msg.tag;
    const std::int64_t orig_epoch = msg.epoch;
    envelope.payload.resize(kHeaderBytes + msg.payload.size());
    put_u64(envelope.payload.data(), kMagic);
    put_u64(envelope.payload.data() + 8, seq);
    put_u64(envelope.payload.data() + 16, static_cast<std::uint64_t>(orig_tag));
    put_u64(envelope.payload.data() + 24, static_cast<std::uint64_t>(orig_epoch));
    put_u64(envelope.payload.data() + 32,
            envelope_checksum(seq, orig_tag, orig_epoch, msg.payload));
    std::memcpy(envelope.payload.data() + kHeaderBytes, msg.payload.data(),
                msg.payload.size());
    return envelope;
}

}  // namespace

void ReliableTransport::deliver(int dst, Message msg) {
    if (dst < 0 || dst >= world_size()) throw std::out_of_range("deliver: bad rank");
    if (msg.tag == kTagHeartbeat) {  // control plane: intentionally unreliable
        inner_->deliver(dst, std::move(msg));
        return;
    }
    EdgeTx& e = tx(msg.source, dst);

    std::uint64_t seq = 0;
    {
        std::lock_guard<std::mutex> lock(e.mutex);
        const fsm::TxSendDecision d = fsm::arq_tx_send(
            e.state, e.acked.load(std::memory_order_acquire),
            inner_->rank_alive(dst));
        for (std::uint64_t i = 0; i < d.gc; ++i) e.buffer.pop_front();
        if (d.buffer) {
            e.buffer.push_back(msg);  // pristine copy survives the lossy fabric
        } else if (d.clear > 0) {
            e.buffer.clear();
        }
        seq = d.seq;
    }

    Message envelope = make_envelope(msg, seq, msg.epoch);
    sent_.fetch_add(1, std::memory_order_relaxed);
    inner_->deliver(dst, std::move(envelope));
}

void ReliableTransport::release_parked(int rank, EdgeRx& r, std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
        delivered_[static_cast<std::size_t>(rank)]->push(
            std::move(r.parked.begin()->second));
        r.parked.erase(r.parked.begin());
    }
}

void ReliableTransport::process_incoming(int rank) {
    // Wire mode: cumulative acks owed per source after the envelope drain.
    // Coalesced (latest value wins) so a burst costs one ack frame per edge.
    std::map<int, std::uint64_t> owed_acks;
    for (;;) {
        auto env = inner_->try_receive(rank, kAnySource, kTagReliableData);
        if (!env) break;
        if (env->payload.size() < kHeaderBytes ||
            get_u64(env->payload.data()) != kMagic) {
            count_event(corrupt_dropped_, m_corrupt_dropped_);
            continue;
        }
        const std::uint64_t seq = get_u64(env->payload.data() + 8);
        const std::int64_t orig_tag =
            static_cast<std::int64_t>(get_u64(env->payload.data() + 16));
        const std::int64_t orig_epoch =
            static_cast<std::int64_t>(get_u64(env->payload.data() + 24));
        const std::uint64_t checksum = get_u64(env->payload.data() + 32);

        Message orig;
        orig.source = env->source;
        orig.tag = static_cast<int>(orig_tag);
        orig.epoch = static_cast<int>(orig_epoch);
        orig.arrival_time_s = env->arrival_time_s;
        orig.payload.assign(env->payload.begin() +
                                static_cast<std::ptrdiff_t>(kHeaderBytes),
                            env->payload.end());
        const bool checksum_ok =
            envelope_checksum(seq, orig_tag, orig_epoch, orig.payload) == checksum;

        const int src = orig.source;
        EdgeRx& r = rx(src, rank);
        const fsm::RxDecision d = fsm::arq_rx_envelope(r.state, seq, checksum_ok);
        switch (d.action) {
            case fsm::RxAction::kDropCorrupt:
                // Corruption == loss; the seq gap drives a retransmit.
                count_event(corrupt_dropped_, m_corrupt_dropped_);
                break;
            case fsm::RxAction::kDropDuplicate:
                count_event(dup_dropped_, m_dup_dropped_);
                // A duplicate usually means the earlier ack frame was lost:
                // re-publish the cumulative ack so the sender can GC.
                if (wire_) owed_acks[src] = d.cum_ack;
                break;
            case fsm::RxAction::kPark:
                r.parked.emplace(seq, std::move(orig));
                break;
            case fsm::RxAction::kDeliver:
                // The delivered-mailbox epoch floor re-judges the ORIGINAL
                // epoch here: a stale retransmit advances the seq space but
                // its payload is discarded (wire stale-skip).
                delivered_[static_cast<std::size_t>(rank)]->push(std::move(orig));
                release_parked(rank, r, d.release);
                if (wire_) {
                    owed_acks[src] = d.cum_ack;
                } else {
                    tx(src, rank).acked.store(d.cum_ack, std::memory_order_release);
                }
                backoff_[static_cast<std::size_t>(rank)].armed = false;  // progress
                break;
        }
    }
    if (!wire_) return;

    // Sender half of the wire ack plane: fold remote cumulative acks into
    // this rank's tx edges and GC the acked buffer prefix.
    for (;;) {
        auto ack = inner_->try_receive(rank, kAnySource, kTagReliableAck);
        if (!ack) break;
        const std::optional<std::uint64_t> value = decode_control(ack->payload);
        if (!value) {
            count_event(corrupt_dropped_, m_corrupt_dropped_);
            continue;
        }
        EdgeTx& e = tx(rank, ack->source);
        std::lock_guard<std::mutex> lock(e.mutex);
        const std::uint64_t gc = fsm::arq_tx_ack(e.state, *value);
        for (std::uint64_t i = 0; i < gc; ++i) e.buffer.pop_front();
    }
    // Gap-recovery pulls: the remote receiver names its next expected seq;
    // everything still buffered from there on retransmits.
    for (;;) {
        auto pull = inner_->try_receive(rank, kAnySource, kTagReliablePull);
        if (!pull) break;
        const std::optional<std::uint64_t> value = decode_control(pull->payload);
        if (!value) {
            count_event(corrupt_dropped_, m_corrupt_dropped_);
            continue;
        }
        answer_pull(rank, pull->source, *value, pull->epoch);
    }
    for (const auto& [src, cum] : owed_acks) {
        send_control(rank, src, kTagReliableAck, cum);
    }
}

void ReliableTransport::send_control(int rank, int dst, int tag,
                                     std::uint64_t value) {
    if (dst < 0 || dst >= world_size() || dst == rank) return;
    if (!inner_->rank_alive(dst)) return;
    Message m;
    m.source = rank;
    m.tag = tag;
    m.epoch = floors_[static_cast<std::size_t>(rank)];
    m.arrival_time_s = 0.0;
    m.payload.resize(kCtlBytes);
    put_u64(m.payload.data(), kCtlMagic);
    put_u64(m.payload.data() + 8, value);
    std::byte key[8];
    std::memcpy(key, &value, 8);
    put_u64(m.payload.data() + 16, fnv1a(key, sizeof key));
    try {
        inner_->deliver(dst, std::move(m));
    } catch (const CommError&) {
        // The peer died between the liveness check and the send; its death
        // is the control plane's business, not the ack plane's.
    }
}

void ReliableTransport::answer_pull(int rank, int peer, std::uint64_t expected,
                                    int pull_epoch) {
    if (peer < 0 || peer >= world_size() || peer == rank) return;
    EdgeTx& e = tx(rank, peer);
    std::vector<std::pair<std::uint64_t, Message>> resend;
    {
        std::lock_guard<std::mutex> lock(e.mutex);
        if (expected > 0) {
            // expected-1 is an implicit cumulative ack: everything below
            // the gap head has been delivered or skipped.
            const std::uint64_t gc = fsm::arq_tx_ack(e.state, expected - 1);
            for (std::uint64_t i = 0; i < gc; ++i) e.buffer.pop_front();
        }
        for (std::uint64_t seq = e.state.base_seq;
             seq < e.state.base_seq + e.state.buffered; ++seq) {
            if (seq < expected) continue;
            resend.emplace_back(seq,
                                e.buffer[static_cast<std::size_t>(
                                    seq - e.state.base_seq)]);
        }
    }
    if (resend.empty()) return;
    if (!inner_->rank_alive(peer)) return;
    for (auto& [seq, msg] : resend) {
        // Original seq, tag, epoch, payload and arrival stamp — recovery is
        // bit-identical. Only the CARRIER epoch is bumped to the puller's
        // floor so the frame passes its inbound epoch filter; staleness of
        // the payload itself is re-judged against the inner header on
        // delivery.
        Message envelope =
            make_envelope(msg, seq, std::max(msg.epoch, pull_epoch));
        try {
            inner_->deliver(peer, std::move(envelope));
        } catch (const CommError&) {
            return;  // peer died mid-answer; the pull will not repeat to it
        }
        count_event(retransmits_, m_retransmits_);
    }
}

std::size_t ReliableTransport::recover(int rank) {
    if (wire_) {
        // The remote sender's buffer is not addressable: name the gap head
        // on the wire instead. The pull doubles as a cumulative ack of
        // expected-1, so it is harmless (and GC-useful) when nothing is
        // actually owed; recovered payloads land asynchronously through
        // process_incoming.
        for (int src = 0; src < world_size(); ++src) {
            if (src == rank) continue;
            if (!inner_->rank_alive(src)) continue;
            send_control(rank, src, kTagReliablePull,
                         rx(src, rank).state.expected);
        }
        return 0;
    }
    std::size_t recovered = 0;
    const int min_epoch = delivered_[static_cast<std::size_t>(rank)]->min_epoch();
    for (int src = 0; src < world_size(); ++src) {
        if (src == rank) continue;
        // A dead host's buffers die with it: never resurrect its traffic,
        // so a rank kill still surfaces as a receive timeout upstream.
        if (!inner_->rank_alive(src)) continue;
        EdgeRx& r = rx(src, rank);
        for (;;) {
            Message head;
            {
                EdgeTx& e = tx(src, rank);
                std::lock_guard<std::mutex> lock(e.mutex);
                const std::optional<std::uint64_t> idx =
                    fsm::arq_tx_buffer_index(e.state, r.state.expected);
                if (!idx) break;  // gap head GCed, cleared, or not yet sent
                head = e.buffer[static_cast<std::size_t>(*idx)];
            }
            const bool stale = head.epoch < min_epoch;
            const fsm::RxRecoverDecision d = fsm::arq_rx_recover(r.state, stale);
            if (d.action == fsm::RecoverAction::kSkipStale) {
                // Stale-epoch gap across a regroup: advance past it without
                // delivering, or the gap would wedge the edge forever.
                count_event(stale_skipped_, m_stale_skipped_);
            } else {
                delivered_[static_cast<std::size_t>(rank)]->push(std::move(head));
                count_event(retransmits_, m_retransmits_);
                ++recovered;
            }
            // Either outcome can unblock a parked suffix (and the mailbox
            // floor re-filters anything stale among the released payloads).
            release_parked(rank, r, d.release);
            tx(src, rank).acked.store(d.cum_ack, std::memory_order_release);
        }
    }
    if (recovered > 0) backoff_[static_cast<std::size_t>(rank)].armed = false;
    return recovered;
}

std::size_t ReliableTransport::recover_now(int rank) {
    if (rank < 0 || rank >= world_size()) {
        throw std::out_of_range("recover_now: bad rank");
    }
    process_incoming(rank);
    return recover(rank);
}

void ReliableTransport::pump(int rank) {
    if (wire_) {
        // Session-resume phase 2: for every peer whose socket just came
        // back, exchange next-expected-seq immediately — the ack lets the
        // peer GC, the pull retransmits whatever the disconnect swallowed —
        // instead of waiting out a recovery backoff.
        for (const int peer : inner_->take_reconnected(rank)) {
            if (peer < 0 || peer >= world_size() || peer == rank) continue;
            EdgeRx& r = rx(peer, rank);
            send_control(rank, peer, kTagReliableAck, r.state.expected - 1);
            send_control(rank, peer, kTagReliablePull, r.state.expected);
        }
    }
    process_incoming(rank);
    Backoff& b = backoff_[static_cast<std::size_t>(rank)];
    const auto now = std::chrono::steady_clock::now();
    if (!b.armed) {
        b.delay_s = config_.initial_backoff_s;
        b.next_attempt = now + host_dur(b.delay_s);
        b.armed = true;
        return;
    }
    if (now < b.next_attempt) return;
    if (recover(rank) > 0) {
        b.armed = false;  // progress: restart from the initial delay
    } else {
        b.delay_s = std::min(b.delay_s * 2.0, config_.max_backoff_s);
        b.next_attempt = now + host_dur(b.delay_s);
    }
}

std::optional<Message> ReliableTransport::try_receive(int rank, int source, int tag) {
    if (rank < 0 || rank >= world_size()) {
        throw std::out_of_range("try_receive: bad rank");
    }
    if (tag == kTagHeartbeat) return inner_->try_receive(rank, source, tag);
    pump(rank);
    return delivered_[static_cast<std::size_t>(rank)]->try_pop(source, tag);
}

Message ReliableTransport::receive(int rank, int source, int tag) {
    for (;;) {
        if (auto msg = try_receive(rank, source, tag)) return std::move(*msg);
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
}

std::optional<Message> ReliableTransport::receive_for(int rank, int source, int tag,
                                                      double timeout_s) {
    if (timeout_s <= 0.0) return receive(rank, source, tag);
    const auto deadline = std::chrono::steady_clock::now() + host_dur(timeout_s);
    for (;;) {
        if (auto msg = try_receive(rank, source, tag)) return msg;
        if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
}

std::optional<Message> ReliableTransport::receive_for_virtual(int rank, int source,
                                                              int tag,
                                                              double max_arrival_s,
                                                              double host_grace_s) {
    if (tag == kTagHeartbeat) {
        return inner_->receive_for_virtual(rank, source, tag, max_arrival_s,
                                           host_grace_s);
    }
    const auto grace_deadline =
        std::chrono::steady_clock::now() + host_dur(host_grace_s);
    for (;;) {
        if (rank < 0 || rank >= world_size()) {
            throw std::out_of_range("receive_for_virtual: bad rank");
        }
        pump(rank);
        if (auto msg = delivered_[static_cast<std::size_t>(rank)]->try_pop(source,
                                                                           tag)) {
            // Same semantics as Mailbox::pop_for_virtual: a match past the
            // virtual deadline is consumed and discarded — deterministic.
            if (msg->arrival_time_s <= max_arrival_s) return msg;
            return std::nullopt;
        }
        if (std::chrono::steady_clock::now() >= grace_deadline) return std::nullopt;
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
}

void ReliableTransport::shutdown() {
    if (shut_.exchange(true)) return;
    if (wire_) {
        // Linger until every sent envelope is acked or its receiver is
        // dead: peers still training may yet pull a frame the socket chaos
        // swallowed, and only this process holds the pristine copy. The
        // pump answers those pulls (and replays across session resumes);
        // the budget bounds the wait when a peer never acks.
        const int world = world_size();
        const auto deadline = std::chrono::steady_clock::now() +
                              host_dur(config_.shutdown_drain_s);
        for (;;) {
            bool outstanding = false;
            for (int src = 0; src < world; ++src) {
                bool pump_src = false;
                for (int dst = 0; dst < world; ++dst) {
                    if (dst == src) continue;
                    EdgeTx& t = tx(src, dst);
                    std::lock_guard<std::mutex> lock(t.mutex);
                    if (t.state.acked < t.state.next_seq &&
                        inner_->rank_alive(dst)) {
                        pump_src = true;
                        break;
                    }
                }
                if (!pump_src) continue;
                outstanding = true;
                try {
                    pump(src);
                } catch (...) {
                    // Inner fabric dying under us ends the drain's usefulness.
                    outstanding = false;
                    break;
                }
            }
            if (!outstanding || std::chrono::steady_clock::now() >= deadline) {
                break;
            }
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
    }
    for (auto& mb : delivered_) mb->close();
    inner_->shutdown();
}

void ReliableTransport::begin_epoch(int rank, int epoch) {
    if (rank < 0 || rank >= world_size()) {
        throw std::out_of_range("begin_epoch: bad rank");
    }
    auto& floor = floors_[static_cast<std::size_t>(rank)];
    if (epoch > floor) floor = epoch;
    delivered_[static_cast<std::size_t>(rank)]->set_min_epoch(epoch);
    // Stale parked envelopes would be rejected by the mailbox floor anyway
    // when their gap resolves; dropping them now keeps the pending count
    // (fresh-tag wrap check) honest. Their seq slots become gaps that
    // recover() skips via the stale-epoch path.
    for (int src = 0; src < world_size(); ++src) {
        EdgeRx& r = rx(src, rank);
        for (auto it = r.parked.begin(); it != r.parked.end();) {
            if (it->second.epoch < epoch) {
                fsm::arq_rx_unpark(r.state, it->first);
                it = r.parked.erase(it);
                count_event(stale_skipped_, m_stale_skipped_);
            } else {
                ++it;
            }
        }
    }
    inner_->begin_epoch(rank, epoch);
}

std::size_t ReliableTransport::pending_with_tag_at_least(int rank, int min_tag) const {
    if (rank < 0 || rank >= world_size()) {
        throw std::out_of_range("pending_with_tag_at_least: bad rank");
    }
    std::size_t n =
        delivered_[static_cast<std::size_t>(rank)]->count_tag_at_least(min_tag);
    for (int src = 0; src < world_size(); ++src) {
        for (const auto& [seq, msg] : rx_[edge_index(src, rank)].parked) {
            if (msg.tag >= min_tag) ++n;
        }
    }
    return n + inner_->pending_with_tag_at_least(rank, min_tag);
}

void ReliableTransport::set_tracer(obs::Tracer* tracer) {
    if (tracer) {
        auto& metrics = tracer->metrics();
        m_retransmits_ = &metrics.counter("reliable.retransmits");
        m_corrupt_dropped_ = &metrics.counter("reliable.corrupt_dropped");
        m_dup_dropped_ = &metrics.counter("reliable.dup_dropped");
        m_stale_skipped_ = &metrics.counter("reliable.stale_skipped");
    } else {
        m_retransmits_ = nullptr;
        m_corrupt_dropped_ = nullptr;
        m_dup_dropped_ = nullptr;
        m_stale_skipped_ = nullptr;
    }
    inner_->set_tracer(tracer);
}

ReliableCounts ReliableTransport::counts() const {
    ReliableCounts c;
    c.sent = sent_.load(std::memory_order_relaxed);
    c.retransmits = retransmits_.load(std::memory_order_relaxed);
    c.corrupt_dropped = corrupt_dropped_.load(std::memory_order_relaxed);
    c.dup_dropped = dup_dropped_.load(std::memory_order_relaxed);
    c.stale_skipped = stale_skipped_.load(std::memory_order_relaxed);
    return c;
}

}  // namespace gtopk::comm
