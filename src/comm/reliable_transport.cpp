#include "comm/reliable_transport.hpp"

#include <chrono>
#include <cstring>
#include <thread>

#include "comm/tags.hpp"
#include "obs/trace.hpp"

namespace gtopk::comm {

namespace {

// Envelope header, prepended to the user payload on the wire:
//   [magic u64][seq u64][orig_tag i64][checksum u64]
// The checksum covers seq, orig_tag and the user payload, so a fault-layer
// bit flip anywhere in the envelope is detected: a flip in `magic` or
// `checksum` fails the respective check directly, a flip in `seq`,
// `orig_tag` or the payload fails the checksum. Either way the envelope is
// discarded and the sequence gap drives a retransmit.
constexpr std::uint64_t kMagic = 0x6774306b52454cULL;  // "gt0kREL"
constexpr std::size_t kHeaderBytes = 32;

std::uint64_t fnv1a(const std::byte* data, std::size_t n,
                    std::uint64_t h = 0xcbf29ce484222325ULL) {
    for (std::size_t i = 0; i < n; ++i) {
        h ^= static_cast<std::uint64_t>(data[i]);
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t envelope_checksum(std::uint64_t seq, std::int64_t orig_tag,
                                const std::vector<std::byte>& payload) {
    std::byte key[16];
    std::memcpy(key, &seq, 8);
    std::memcpy(key + 8, &orig_tag, 8);
    return fnv1a(payload.data(), payload.size(), fnv1a(key, sizeof key));
}

void put_u64(std::byte* at, std::uint64_t v) { std::memcpy(at, &v, 8); }
std::uint64_t get_u64(const std::byte* at) {
    std::uint64_t v = 0;
    std::memcpy(&v, at, 8);
    return v;
}

std::chrono::steady_clock::duration host_dur(double seconds) {
    return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(seconds));
}

}  // namespace

ReliableTransport::ReliableTransport(std::unique_ptr<Transport> inner,
                                     ReliableConfig config)
    : inner_(std::move(inner)), config_(config) {
    if (!inner_) throw std::invalid_argument("ReliableTransport: null inner");
    if (!inner_->shared_memory_fabric() && !config_.allow_passthrough) {
        throw UnreliableFabricError(
            "ReliableTransport: inner fabric is not shared-memory (ranks live "
            "in separate processes), so buffer-pull recovery and the shared "
            "ack counter cannot engage — the layer would silently degrade to "
            "envelope passthrough with no loss recovery. Set "
            "ReliableConfig::allow_passthrough=true if the fabric itself "
            "provides reliable FIFO edges (e.g. TCP).");
    }
    const std::size_t world = static_cast<std::size_t>(inner_->world_size());
    tx_.reserve(world * world);
    for (std::size_t i = 0; i < world * world; ++i) {
        tx_.push_back(std::make_unique<EdgeTx>());
    }
    rx_.resize(world * world);
    delivered_.reserve(world);
    for (std::size_t i = 0; i < world; ++i) {
        delivered_.push_back(std::make_unique<Mailbox>());
    }
    backoff_.resize(world);
}

void ReliableTransport::count_event(std::atomic<std::uint64_t>& cell,
                                    obs::Counter* metric) {
    cell.fetch_add(1, std::memory_order_relaxed);
    if (metric) metric->add(1);
}

void ReliableTransport::deliver(int dst, Message msg) {
    if (dst < 0 || dst >= world_size()) throw std::out_of_range("deliver: bad rank");
    if (msg.tag == kTagHeartbeat) {  // control plane: intentionally unreliable
        inner_->deliver(dst, std::move(msg));
        return;
    }
    EdgeTx& e = tx(msg.source, dst);

    Message envelope;
    envelope.source = msg.source;
    envelope.tag = kTagReliableData;
    envelope.epoch = msg.epoch;
    envelope.arrival_time_s = msg.arrival_time_s;

    std::uint64_t seq = 0;
    {
        std::lock_guard<std::mutex> lock(e.mutex);
        const fsm::TxSendDecision d = fsm::arq_tx_send(
            e.state, e.acked.load(std::memory_order_acquire),
            inner_->rank_alive(dst));
        for (std::uint64_t i = 0; i < d.gc; ++i) e.buffer.pop_front();
        if (d.buffer) {
            e.buffer.push_back(msg);  // pristine copy survives the lossy fabric
        } else if (d.clear > 0) {
            e.buffer.clear();
        }
        seq = d.seq;
    }

    const std::int64_t orig_tag = msg.tag;
    envelope.payload.resize(kHeaderBytes + msg.payload.size());
    put_u64(envelope.payload.data(), kMagic);
    put_u64(envelope.payload.data() + 8, seq);
    put_u64(envelope.payload.data() + 16, static_cast<std::uint64_t>(orig_tag));
    put_u64(envelope.payload.data() + 24,
            envelope_checksum(seq, orig_tag, msg.payload));
    std::memcpy(envelope.payload.data() + kHeaderBytes, msg.payload.data(),
                msg.payload.size());

    sent_.fetch_add(1, std::memory_order_relaxed);
    inner_->deliver(dst, std::move(envelope));
}

void ReliableTransport::release_parked(int rank, EdgeRx& r, std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
        delivered_[static_cast<std::size_t>(rank)]->push(
            std::move(r.parked.begin()->second));
        r.parked.erase(r.parked.begin());
    }
}

void ReliableTransport::process_incoming(int rank) {
    for (;;) {
        auto env = inner_->try_receive(rank, kAnySource, kTagReliableData);
        if (!env) return;
        if (env->payload.size() < kHeaderBytes ||
            get_u64(env->payload.data()) != kMagic) {
            count_event(corrupt_dropped_, m_corrupt_dropped_);
            continue;
        }
        const std::uint64_t seq = get_u64(env->payload.data() + 8);
        const std::int64_t orig_tag =
            static_cast<std::int64_t>(get_u64(env->payload.data() + 16));
        const std::uint64_t checksum = get_u64(env->payload.data() + 24);

        Message orig;
        orig.source = env->source;
        orig.tag = static_cast<int>(orig_tag);
        orig.epoch = env->epoch;
        orig.arrival_time_s = env->arrival_time_s;
        orig.payload.assign(env->payload.begin() +
                                static_cast<std::ptrdiff_t>(kHeaderBytes),
                            env->payload.end());
        const bool checksum_ok =
            envelope_checksum(seq, orig_tag, orig.payload) == checksum;

        const int src = orig.source;
        EdgeRx& r = rx(src, rank);
        const fsm::RxDecision d = fsm::arq_rx_envelope(r.state, seq, checksum_ok);
        switch (d.action) {
            case fsm::RxAction::kDropCorrupt:
                // Corruption == loss; the seq gap drives a retransmit.
                count_event(corrupt_dropped_, m_corrupt_dropped_);
                break;
            case fsm::RxAction::kDropDuplicate:
                count_event(dup_dropped_, m_dup_dropped_);
                break;
            case fsm::RxAction::kPark:
                r.parked.emplace(seq, std::move(orig));
                break;
            case fsm::RxAction::kDeliver:
                delivered_[static_cast<std::size_t>(rank)]->push(std::move(orig));
                release_parked(rank, r, d.release);
                tx(src, rank).acked.store(d.cum_ack, std::memory_order_release);
                backoff_[static_cast<std::size_t>(rank)].armed = false;  // progress
                break;
        }
    }
}

std::size_t ReliableTransport::recover(int rank) {
    std::size_t recovered = 0;
    const int min_epoch = delivered_[static_cast<std::size_t>(rank)]->min_epoch();
    for (int src = 0; src < world_size(); ++src) {
        if (src == rank) continue;
        // A dead host's buffers die with it: never resurrect its traffic,
        // so a rank kill still surfaces as a receive timeout upstream.
        if (!inner_->rank_alive(src)) continue;
        EdgeRx& r = rx(src, rank);
        for (;;) {
            Message head;
            {
                EdgeTx& e = tx(src, rank);
                std::lock_guard<std::mutex> lock(e.mutex);
                const std::optional<std::uint64_t> idx =
                    fsm::arq_tx_buffer_index(e.state, r.state.expected);
                if (!idx) break;  // gap head GCed, cleared, or not yet sent
                head = e.buffer[static_cast<std::size_t>(*idx)];
            }
            const bool stale = head.epoch < min_epoch;
            const fsm::RxRecoverDecision d = fsm::arq_rx_recover(r.state, stale);
            if (d.action == fsm::RecoverAction::kSkipStale) {
                // Stale-epoch gap across a regroup: advance past it without
                // delivering, or the gap would wedge the edge forever.
                count_event(stale_skipped_, m_stale_skipped_);
            } else {
                delivered_[static_cast<std::size_t>(rank)]->push(std::move(head));
                count_event(retransmits_, m_retransmits_);
                ++recovered;
            }
            // Either outcome can unblock a parked suffix (and the mailbox
            // floor re-filters anything stale among the released payloads).
            release_parked(rank, r, d.release);
            tx(src, rank).acked.store(d.cum_ack, std::memory_order_release);
        }
    }
    if (recovered > 0) backoff_[static_cast<std::size_t>(rank)].armed = false;
    return recovered;
}

std::size_t ReliableTransport::recover_now(int rank) {
    if (rank < 0 || rank >= world_size()) {
        throw std::out_of_range("recover_now: bad rank");
    }
    process_incoming(rank);
    return recover(rank);
}

void ReliableTransport::pump(int rank) {
    process_incoming(rank);
    Backoff& b = backoff_[static_cast<std::size_t>(rank)];
    const auto now = std::chrono::steady_clock::now();
    if (!b.armed) {
        b.delay_s = config_.initial_backoff_s;
        b.next_attempt = now + host_dur(b.delay_s);
        b.armed = true;
        return;
    }
    if (now < b.next_attempt) return;
    if (recover(rank) > 0) {
        b.armed = false;  // progress: restart from the initial delay
    } else {
        b.delay_s = std::min(b.delay_s * 2.0, config_.max_backoff_s);
        b.next_attempt = now + host_dur(b.delay_s);
    }
}

std::optional<Message> ReliableTransport::try_receive(int rank, int source, int tag) {
    if (rank < 0 || rank >= world_size()) {
        throw std::out_of_range("try_receive: bad rank");
    }
    if (tag == kTagHeartbeat) return inner_->try_receive(rank, source, tag);
    pump(rank);
    return delivered_[static_cast<std::size_t>(rank)]->try_pop(source, tag);
}

Message ReliableTransport::receive(int rank, int source, int tag) {
    for (;;) {
        if (auto msg = try_receive(rank, source, tag)) return std::move(*msg);
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
}

std::optional<Message> ReliableTransport::receive_for(int rank, int source, int tag,
                                                      double timeout_s) {
    if (timeout_s <= 0.0) return receive(rank, source, tag);
    const auto deadline = std::chrono::steady_clock::now() + host_dur(timeout_s);
    for (;;) {
        if (auto msg = try_receive(rank, source, tag)) return msg;
        if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
}

std::optional<Message> ReliableTransport::receive_for_virtual(int rank, int source,
                                                              int tag,
                                                              double max_arrival_s,
                                                              double host_grace_s) {
    if (tag == kTagHeartbeat) {
        return inner_->receive_for_virtual(rank, source, tag, max_arrival_s,
                                           host_grace_s);
    }
    const auto grace_deadline =
        std::chrono::steady_clock::now() + host_dur(host_grace_s);
    for (;;) {
        if (rank < 0 || rank >= world_size()) {
            throw std::out_of_range("receive_for_virtual: bad rank");
        }
        pump(rank);
        if (auto msg = delivered_[static_cast<std::size_t>(rank)]->try_pop(source,
                                                                           tag)) {
            // Same semantics as Mailbox::pop_for_virtual: a match past the
            // virtual deadline is consumed and discarded — deterministic.
            if (msg->arrival_time_s <= max_arrival_s) return msg;
            return std::nullopt;
        }
        if (std::chrono::steady_clock::now() >= grace_deadline) return std::nullopt;
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
}

void ReliableTransport::shutdown() {
    for (auto& mb : delivered_) mb->close();
    inner_->shutdown();
}

void ReliableTransport::begin_epoch(int rank, int epoch) {
    if (rank < 0 || rank >= world_size()) {
        throw std::out_of_range("begin_epoch: bad rank");
    }
    delivered_[static_cast<std::size_t>(rank)]->set_min_epoch(epoch);
    // Stale parked envelopes would be rejected by the mailbox floor anyway
    // when their gap resolves; dropping them now keeps the pending count
    // (fresh-tag wrap check) honest. Their seq slots become gaps that
    // recover() skips via the stale-epoch path.
    for (int src = 0; src < world_size(); ++src) {
        EdgeRx& r = rx(src, rank);
        for (auto it = r.parked.begin(); it != r.parked.end();) {
            if (it->second.epoch < epoch) {
                fsm::arq_rx_unpark(r.state, it->first);
                it = r.parked.erase(it);
                count_event(stale_skipped_, m_stale_skipped_);
            } else {
                ++it;
            }
        }
    }
    inner_->begin_epoch(rank, epoch);
}

std::size_t ReliableTransport::pending_with_tag_at_least(int rank, int min_tag) const {
    if (rank < 0 || rank >= world_size()) {
        throw std::out_of_range("pending_with_tag_at_least: bad rank");
    }
    std::size_t n =
        delivered_[static_cast<std::size_t>(rank)]->count_tag_at_least(min_tag);
    for (int src = 0; src < world_size(); ++src) {
        for (const auto& [seq, msg] : rx_[edge_index(src, rank)].parked) {
            if (msg.tag >= min_tag) ++n;
        }
    }
    return n + inner_->pending_with_tag_at_least(rank, min_tag);
}

void ReliableTransport::set_tracer(obs::Tracer* tracer) {
    if (tracer) {
        auto& metrics = tracer->metrics();
        m_retransmits_ = &metrics.counter("reliable.retransmits");
        m_corrupt_dropped_ = &metrics.counter("reliable.corrupt_dropped");
        m_dup_dropped_ = &metrics.counter("reliable.dup_dropped");
        m_stale_skipped_ = &metrics.counter("reliable.stale_skipped");
    } else {
        m_retransmits_ = nullptr;
        m_corrupt_dropped_ = nullptr;
        m_dup_dropped_ = nullptr;
        m_stale_skipped_ = nullptr;
    }
    inner_->set_tracer(tracer);
}

ReliableCounts ReliableTransport::counts() const {
    ReliableCounts c;
    c.sent = sent_.load(std::memory_order_relaxed);
    c.retransmits = retransmits_.load(std::memory_order_relaxed);
    c.corrupt_dropped = corrupt_dropped_.load(std::memory_order_relaxed);
    c.dup_dropped = dup_dropped_.load(std::memory_order_relaxed);
    c.stale_skipped = stale_skipped_.load(std::memory_order_relaxed);
    return c;
}

}  // namespace gtopk::comm
