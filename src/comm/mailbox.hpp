// Per-worker inbound message queue with MPI-style (source, tag) matching.
//
// Producers are other worker threads; the consumer is the owning worker.
// Matching preserves per-(source, tag) FIFO order, which is the ordering
// guarantee MPI gives and the one the collectives rely on.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "comm/message.hpp"

namespace gtopk::comm {

class Mailbox {
public:
    /// Enqueue a message (called from the sender's thread). Returns the
    /// queue depth right after the enqueue (feeds the queue-depth metric).
    std::size_t push(Message msg);

    /// Block until a message matching (source, tag) is available and remove
    /// it. Wildcards kAnySource / kAnyTag match anything.
    Message pop(int source, int tag);

    /// Non-blocking variant; returns nullopt when nothing matches.
    /// Throws MailboxClosed once the mailbox is closed, so pollers observe
    /// shutdown just like blocked pop() callers.
    std::optional<Message> try_pop(int source, int tag);

    /// Deadline variant of pop(): waits at most `timeout` (host time) for a
    /// match and returns nullopt on expiry. Throws MailboxClosed on
    /// shutdown, exactly like pop(). The Communicator's receive-timeout
    /// path turns the nullopt into a typed CommError.
    std::optional<Message> pop_for(int source, int tag,
                                   std::chrono::nanoseconds timeout);

    /// VIRTUAL-clock deadline variant: a matching message whose modeled
    /// arrival_time_s is <= `max_arrival_s` is returned; a matching message
    /// that arrives LATER than the virtual deadline is consumed and
    /// discarded (a receive that gave up at virtual time D treats anything
    /// after D as lost) and nullopt is returned immediately — a
    /// deterministic outcome, independent of host-machine speed. The
    /// `host_grace` bound only covers the case where no matching message
    /// ever materializes (a true drop); it converts an indefinite wait into
    /// nullopt without affecting WHICH outcome deterministic scenarios see.
    /// Throws MailboxClosed on shutdown.
    std::optional<Message> pop_for_virtual(int source, int tag, double max_arrival_s,
                                           std::chrono::nanoseconds host_grace);

    /// Raise the epoch floor: every queued message with epoch < `epoch` is
    /// purged now, and every future push below the floor is rejected on
    /// arrival. Monotonic (lowering is a no-op). This is the deterministic
    /// stale-message rejection the membership regroup relies on.
    void set_min_epoch(int epoch);
    int min_epoch() const;

    /// Messages rejected by the epoch floor since construction (purged at
    /// set_min_epoch plus dropped at push).
    std::size_t stale_rejected() const;

    /// Wake all waiters with a shutdown signal; subsequent pops throw.
    void close();

    std::size_t size() const;

    /// Number of queued messages whose tag is >= `min_tag`. Used by the
    /// fresh-tag wrap check in Communicator::fresh_tags: wrapping the tag
    /// counter is only sound when no fresh-tag message is still in flight.
    ///
    /// O(1) at the three thresholds the hot paths ask about — 0 (total
    /// depth, polled every iteration by the telemetry plane), kFreshTagBase
    /// and kAsyncTagBase (the wrap checks) — via counters maintained on
    /// every enqueue/dequeue; any other threshold falls back to a scan.
    /// Message tags are non-negative by construction (tags.hpp bands; the
    /// TCP frame decoder rejects negative tags at the wire).
    std::size_t count_tag_at_least(int min_tag) const;

private:
    bool matches(const Message& m, int source, int tag) const {
        return (source == kAnySource || m.source == source) &&
               (tag == kAnyTag || m.tag == tag);
    }

    // Band-counter bookkeeping; call with mutex_ held around every queue_
    // mutation so the O(1) count_tag_at_least fast paths stay exact.
    void note_insert(const Message& m);
    void note_erase(const Message& m);

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Message> queue_;
    bool closed_ = false;
    int min_epoch_ = 0;
    std::size_t stale_rejected_ = 0;
    std::size_t fresh_pending_ = 0;  // queued with tag >= kFreshTagBase
    std::size_t async_pending_ = 0;  // queued with tag >= kAsyncTagBase
};

/// Thrown by pop() when the mailbox is closed while waiting (cluster abort).
struct MailboxClosed : std::exception {
    const char* what() const noexcept override { return "mailbox closed"; }
};

}  // namespace gtopk::comm
