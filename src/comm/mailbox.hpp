// Per-worker inbound message queue with MPI-style (source, tag) matching.
//
// Producers are other worker threads; the consumer is the owning worker.
// Matching preserves per-(source, tag) FIFO order, which is the ordering
// guarantee MPI gives and the one the collectives rely on.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "comm/message.hpp"

namespace gtopk::comm {

class Mailbox {
public:
    /// Enqueue a message (called from the sender's thread). Returns the
    /// queue depth right after the enqueue (feeds the queue-depth metric).
    std::size_t push(Message msg);

    /// Block until a message matching (source, tag) is available and remove
    /// it. Wildcards kAnySource / kAnyTag match anything.
    Message pop(int source, int tag);

    /// Non-blocking variant; returns nullopt when nothing matches.
    /// Throws MailboxClosed once the mailbox is closed, so pollers observe
    /// shutdown just like blocked pop() callers.
    std::optional<Message> try_pop(int source, int tag);

    /// Deadline variant of pop(): waits at most `timeout` (host time) for a
    /// match and returns nullopt on expiry. Throws MailboxClosed on
    /// shutdown, exactly like pop(). The Communicator's receive-timeout
    /// path turns the nullopt into a typed CommError.
    std::optional<Message> pop_for(int source, int tag,
                                   std::chrono::nanoseconds timeout);

    /// Wake all waiters with a shutdown signal; subsequent pops throw.
    void close();

    std::size_t size() const;

    /// Number of queued messages whose tag is >= `min_tag`. Used by the
    /// fresh-tag wrap check in Communicator::fresh_tags: wrapping the tag
    /// counter is only sound when no fresh-tag message is still in flight.
    std::size_t count_tag_at_least(int min_tag) const;

private:
    bool matches(const Message& m, int source, int tag) const {
        return (source == kAnySource || m.source == source) &&
               (tag == kAnyTag || m.tag == tag);
    }

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Message> queue_;
    bool closed_ = false;
};

/// Thrown by pop() when the mailbox is closed while waiting (cluster abort).
struct MailboxClosed : std::exception {
    const char* what() const noexcept override { return "mailbox closed"; }
};

}  // namespace gtopk::comm
