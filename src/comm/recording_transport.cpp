#include "comm/recording_transport.hpp"

#include <stdexcept>

namespace gtopk::comm {

RecordingTransport::RecordingTransport(std::unique_ptr<Transport> inner)
    : inner_(std::move(inner)) {
    if (!inner_) throw std::invalid_argument("RecordingTransport: null inner");
}

RecordingTransport::RecordingTransport(int world_size)
    : RecordingTransport(std::make_unique<InProcTransport>(world_size)) {}

void RecordingTransport::deliver(int dst, Message msg) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        RecordedMsg rec;
        rec.src = msg.source;
        rec.dst = dst;
        rec.tag = msg.tag;
        rec.bytes = static_cast<std::int64_t>(msg.payload.size());
        rec.seq = static_cast<std::uint64_t>(log_.size());
        log_.push_back(rec);
    }
    inner_->deliver(dst, std::move(msg));
}

Message RecordingTransport::receive(int rank, int source, int tag) {
    return inner_->receive(rank, source, tag);
}

std::optional<Message> RecordingTransport::try_receive(int rank, int source, int tag) {
    return inner_->try_receive(rank, source, tag);
}

std::optional<Message> RecordingTransport::receive_for(int rank, int source, int tag,
                                                       double timeout_s) {
    return inner_->receive_for(rank, source, tag, timeout_s);
}

void RecordingTransport::shutdown() { inner_->shutdown(); }

void RecordingTransport::set_tracer(obs::Tracer* tracer) { inner_->set_tracer(tracer); }

std::size_t RecordingTransport::pending_with_tag_at_least(int rank, int min_tag) const {
    return inner_->pending_with_tag_at_least(rank, min_tag);
}

std::vector<RecordedMsg> RecordingTransport::log() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return log_;
}

std::vector<RecordedMsg> RecordingTransport::edge_log(int src, int dst) const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<RecordedMsg> out;
    for (const RecordedMsg& m : log_) {
        if (m.src == src && m.dst == dst) out.push_back(m);
    }
    return out;
}

std::uint64_t RecordingTransport::captured() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<std::uint64_t>(log_.size());
}

void RecordingTransport::clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    log_.clear();
}

}  // namespace gtopk::comm
