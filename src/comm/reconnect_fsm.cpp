#include "comm/reconnect_fsm.hpp"

namespace gtopk::comm::fsm {

namespace {
ReconnectBreak g_reconnect_break = ReconnectBreak::kNone;
}  // namespace

void set_reconnect_break(ReconnectBreak b) { g_reconnect_break = b; }
ReconnectBreak reconnect_break() { return g_reconnect_break; }

bool link_down(LinkState& st) {
    if (st.phase != LinkPhase::kUp) return false;
    st.phase = LinkPhase::kDown;
    st.attempts = 0;
    return true;
}

double link_backoff_s(const LinkState& st, const ReconnectPolicy& policy) {
    double b = policy.initial_backoff_s;
    for (std::uint64_t i = 0; i < st.attempts && b < policy.max_backoff_s; ++i) {
        b *= 2.0;
    }
    return b < policy.max_backoff_s ? b : policy.max_backoff_s;
}

DialVerdict link_dial(LinkState& st, const ReconnectPolicy& policy) {
    if (st.phase == LinkPhase::kDead) return DialVerdict::kDead;
    if (st.attempts >= policy.max_attempts) {
        st.phase = LinkPhase::kDead;
        return DialVerdict::kDead;
    }
    ++st.attempts;
    return DialVerdict::kDial;
}

std::uint64_t link_propose(const LinkState& st) {
    // Advance by the attempt number, not a constant: if dial N's RESUME_OK
    // was lost AFTER the acceptor installed session+N, dial N+1 must still
    // clear the acceptor's monotonicity bar or the link could never resume.
    return st.session + (st.attempts == 0 ? 1 : st.attempts);
}

ResumeVerdict link_resume(LinkState& st, std::uint64_t hello_session) {
    if (st.phase == LinkPhase::kDead) return ResumeVerdict::kRejectDead;
    // Monotonicity is the whole protocol: a proposal that does not advance
    // the session is a delayed dial from an incarnation both sides already
    // walked away from.
    if (hello_session <= st.session &&
        g_reconnect_break != ReconnectBreak::kAcceptStale) {
        return ResumeVerdict::kRejectStale;
    }
    st.session = hello_session;
    st.phase = LinkPhase::kUp;
    st.attempts = 0;
    return ResumeVerdict::kAccept;
}

void link_established(LinkState& st, std::uint64_t session) {
    if (st.phase == LinkPhase::kDead) return;
    if (session > st.session) st.session = session;
    st.phase = LinkPhase::kUp;
    st.attempts = 0;
}

bool link_expire(LinkState& st) {
    if (st.phase != LinkPhase::kDown) return false;
    st.phase = LinkPhase::kDead;
    return true;
}

}  // namespace gtopk::comm::fsm
