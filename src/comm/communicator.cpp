#include "comm/communicator.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "comm/tags.hpp"
#include "obs/trace.hpp"

namespace gtopk::comm {

Communicator::Communicator(Transport& transport, int rank, NetworkModel model)
    : tag_counter_(kFreshTagBase),
      async_tag_counter_(kAsyncTagBase),
      transport_(transport),
      rank_(rank),
      logical_rank_(rank),
      model_(model) {
    if (rank < 0 || rank >= transport.world_size()) {
        throw std::out_of_range("Communicator: rank outside world");
    }
}

void Communicator::set_view(std::vector<int> members, int epoch) {
    if (members.empty()) throw std::invalid_argument("set_view: empty view");
    if (epoch < epoch_) throw std::invalid_argument("set_view: epoch must not regress");
    for (std::size_t i = 0; i < members.size(); ++i) {
        if (members[i] < 0 || members[i] >= transport_.world_size()) {
            throw std::invalid_argument("set_view: member outside world");
        }
        if (i > 0 && members[i] <= members[i - 1]) {
            throw std::invalid_argument("set_view: members must be sorted unique");
        }
    }
    view_members_ = std::move(members);
    phys_to_logical_.assign(static_cast<std::size_t>(transport_.world_size()), -1);
    for (std::size_t i = 0; i < view_members_.size(); ++i) {
        phys_to_logical_[static_cast<std::size_t>(view_members_[i])] =
            static_cast<int>(i);
    }
    logical_rank_ = phys_to_logical_[static_cast<std::size_t>(rank_)];
    if (logical_rank_ < 0) {
        throw std::invalid_argument("set_view: this rank is not a member");
    }
    epoch_ = epoch;
    // Ranks reach a regroup from wherever the failure found them, so their
    // fresh-tag cursors may disagree. Restarting at the base resynchronizes
    // the SPMD lockstep; reuse of pre-regroup tags is safe because the
    // epoch floor below rejects every stale message before it can match.
    tag_counter_ = kFreshTagBase;
    async_tag_counter_ = kAsyncTagBase;
    transport_.begin_epoch(rank_, epoch_);
}

int Communicator::to_physical(int logical_peer) const {
    if (view_members_.empty() || logical_peer == kAnySource) return logical_peer;
    if (logical_peer < 0 || logical_peer >= static_cast<int>(view_members_.size())) {
        throw std::out_of_range("peer outside current view");
    }
    return view_members_[static_cast<std::size_t>(logical_peer)];
}

int Communicator::to_logical(int physical_src) const {
    if (view_members_.empty()) return physical_src;
    const int logical = phys_to_logical_[static_cast<std::size_t>(physical_src)];
    // Non-members cannot reach us (epoch floor), so this is defensive.
    return logical >= 0 ? logical : physical_src;
}

int Communicator::fresh_tags(int count) {
    if (count < 0) throw std::invalid_argument("fresh_tags: negative count");
    if (count > kAsyncTagBase - kFreshTagBase) {
        throw std::invalid_argument("fresh_tags: count exceeds tag space");
    }
    if (tag_counter_ > kAsyncTagBase - count) {
        // Out of band: wrap back to the base (the blocking band ends where
        // the async band begins — the cursor must never spill into it).
        // Because every rank's counter advances in SPMD lockstep, all ranks
        // wrap at the same collective boundary, so matching calls still
        // agree on the block. Reuse is only safe if no message carrying an
        // old fresh tag is still queued for this rank — a stale tag could
        // steal a future match. The check starts ABOVE the block being
        // allocated: peers that already wrapped may have legitimately sent
        // this collective's messages with tags from the new block
        // [kFreshTagBase, kFreshTagBase + count), and at P in the hundreds
        // some always have (the fast ranks enter the collective while the
        // slow ones are still allocating). Anything at or past the block
        // end is genuinely stale. The threshold also counts async-band
        // traffic, which is conservative: wrapping under an in-flight async
        // collective throws rather than risking it. (Transports that cannot
        // inspect their queues report 0 pending, degrading this to an
        // unchecked wrap.)
        const std::size_t in_flight =
            transport_.pending_with_tag_at_least(rank_, kFreshTagBase + count);
        if (in_flight != 0) {
            throw std::logic_error(
                "fresh_tags: tag space exhausted on rank " + std::to_string(rank_) +
                " with " + std::to_string(in_flight) +
                " fresh-tag message(s) still pending; cannot wrap safely");
        }
        tag_counter_ = kFreshTagBase;
    }
    const int base = tag_counter_;
    tag_counter_ += count;
    return base;
}

int Communicator::fresh_async_tags(int count) {
    if (count < 0) throw std::invalid_argument("fresh_async_tags: negative count");
    if (progress_sources_.empty()) {
        // No handle in flight: every future transfer's dependency time is at
        // or after the current clock, so NIC occupancy that already ended is
        // unreachable — drop it to keep the busy list bounded across
        // iterations.
        const double now = clock_.now_s();
        std::erase_if(nic_busy_,
                      [now](const std::pair<double, double>& iv) {
                          return iv.second <= now;
                      });
    }
    if (count > std::numeric_limits<int>::max() - kAsyncTagBase) {
        throw std::invalid_argument("fresh_async_tags: count exceeds tag space");
    }
    if (async_tag_counter_ > std::numeric_limits<int>::max() - count) {
        // Same pending-gated wrap as fresh_tags, confined to the async
        // band: every rank starts the same handles in the same order (SPMD
        // lockstep), so all ranks wrap at the same handle boundary. As
        // above, tags inside the block being allocated may already be in
        // flight from wrapped-ahead peers; only tags past the block end are
        // stale.
        const std::size_t in_flight =
            transport_.pending_with_tag_at_least(rank_, kAsyncTagBase + count);
        if (in_flight != 0) {
            throw std::logic_error(
                "fresh_async_tags: async tag band exhausted on rank " +
                std::to_string(rank_) + " with " + std::to_string(in_flight) +
                " async-band message(s) still pending; cannot wrap safely");
        }
        async_tag_counter_ = kAsyncTagBase;
    }
    const int base = async_tag_counter_;
    async_tag_counter_ += count;
    return base;
}

void Communicator::add_progress_source(ProgressSource* source) {
    if (!source) throw std::invalid_argument("add_progress_source: null source");
    progress_sources_.push_back(source);
}

void Communicator::remove_progress_source(ProgressSource* source) {
    progress_sources_.erase(
        std::remove(progress_sources_.begin(), progress_sources_.end(), source),
        progress_sources_.end());
}

bool Communicator::pump_progress() {
    if (progress_sources_.empty()) return false;
    // Snapshot + priority sort per round: a pump may complete a handle (but
    // never unregisters one — that happens in its destructor), and the
    // P3 drain order wants front-layer buckets served first.
    std::vector<ProgressSource*> round = progress_sources_;
    std::stable_sort(round.begin(), round.end(),
                     [](const ProgressSource* a, const ProgressSource* b) {
                         return a->pump_priority() < b->pump_priority();
                     });
    bool any = false;
    for (ProgressSource* s : round) {
        if (s->pump_some()) any = true;
    }
    return any;
}

void Communicator::set_tracer(obs::Tracer* tracer) {
    tracer_ = tracer;
    if (tracer_) {
        obs::MetricsRegistry& m = tracer_->metrics();
        m_bytes_sent_ = &m.counter("comm.bytes_sent");
        m_bytes_received_ = &m.counter("comm.bytes_received");
        m_message_bytes_ = &m.histogram("comm.message_bytes");
    } else {
        m_bytes_sent_ = nullptr;
        m_bytes_received_ = nullptr;
        m_message_bytes_ = nullptr;
    }
}

void Communicator::send(int dst, int tag, std::span<const std::byte> payload) {
    std::vector<std::byte> buf = pool_.acquire(payload.size());
    if (!payload.empty()) {
        std::memcpy(buf.data(), payload.data(), payload.size());
    }
    send_buffer(dst, tag, std::move(buf));
}

void Communicator::send_buffer(int dst, int tag, std::vector<std::byte>&& payload) {
    if (dst == logical_rank_) throw std::invalid_argument("send to self is not allowed");
    const int phys_dst = to_physical(dst);
    obs::ScopedSpan span(tracer_, clock_, rank_, "send", "comm");
    span.attrs().bytes = static_cast<std::int64_t>(payload.size());
    span.attrs().peer = phys_dst;
    span.attrs().tag = tag;

    const double cost = model_.transfer_time_s(payload.size());
    clock_.advance(cost);
    stats_.comm_time_s += cost;
    stats_.messages_sent += 1;
    stats_.bytes_sent += payload.size();
    if (tracer_) {
        m_bytes_sent_->add(payload.size());
        m_message_bytes_->record(payload.size());
    }

    Message msg;
    msg.source = rank_;
    msg.tag = tag;
    msg.epoch = epoch_;
    msg.arrival_time_s = clock_.now_s();
    msg.payload = std::move(payload);
    transport_.deliver(phys_dst, std::move(msg));
}

std::vector<std::byte> Communicator::recv(int src, int tag) {
    int ignored = 0;
    return recv(src, tag, ignored);
}

std::vector<std::byte> Communicator::recv(int src, int tag, int& actual_src) {
    // The span's virtual duration is exactly the wait: how far this rank's
    // clock had to jump forward to the message's modeled arrival.
    obs::ScopedSpan span(tracer_, clock_, rank_, "recv_wait", "comm");
    span.attrs().tag = tag;

    const int phys_src = to_physical(src);
    Message msg = [&] {
        if (recv_timeout_s_ <= 0.0) return transport_.receive(rank_, phys_src, tag);
        std::optional<Message> m =
            deadline_clock_ == DeadlineClock::Virtual
                ? transport_.receive_for_virtual(rank_, phys_src, tag,
                                                 clock_.now_s() + recv_timeout_s_,
                                                 recv_host_grace_s_)
                : transport_.receive_for(rank_, phys_src, tag, recv_timeout_s_);
        if (!m) {
            throw CommError(CommErrorKind::RecvTimeout, rank_, phys_src, tag,
                            recv_timeout_s_);
        }
        return std::move(*m);
    }();
    const double before = clock_.now_s();
    clock_.advance_to(msg.arrival_time_s);
    stats_.comm_time_s += clock_.now_s() - before;
    stats_.messages_received += 1;
    stats_.bytes_received += msg.payload.size();
    span.attrs().bytes = static_cast<std::int64_t>(msg.payload.size());
    span.attrs().peer = msg.source;
    if (tracer_) m_bytes_received_->add(msg.payload.size());
    actual_src = to_logical(msg.source);
    return std::move(msg.payload);
}

std::optional<std::vector<std::byte>> Communicator::try_recv(int src, int tag) {
    const int phys_src = to_physical(src);
    std::optional<Message> m = transport_.try_receive(rank_, phys_src, tag);
    if (!m) return std::nullopt;
    // Same accounting as recv(); the span is only opened on a match so
    // unmatched polls cost nothing in the trace.
    obs::ScopedSpan span(tracer_, clock_, rank_, "recv_wait", "comm");
    span.attrs().tag = tag;
    const double before = clock_.now_s();
    clock_.advance_to(m->arrival_time_s);
    stats_.comm_time_s += clock_.now_s() - before;
    stats_.messages_received += 1;
    stats_.bytes_received += m->payload.size();
    span.attrs().bytes = static_cast<std::int64_t>(m->payload.size());
    span.attrs().peer = m->source;
    if (tracer_) m_bytes_received_->add(m->payload.size());
    return std::move(m->payload);
}

double Communicator::send_async(int dst, int tag, std::vector<std::byte>&& payload,
                                double earliest_start_s) {
    if (dst == logical_rank_) throw std::invalid_argument("send to self is not allowed");
    const int phys_dst = to_physical(dst);

    const double cost = model_.transfer_time_s(payload.size());
    const double start = reserve_nic(earliest_start_s, cost);
    const double end = start + cost;
    stats_.comm_time_s += cost;
    stats_.messages_sent += 1;
    stats_.bytes_sent += payload.size();
    if (tracer_) {
        m_bytes_sent_->add(payload.size());
        m_message_bytes_->record(payload.size());
        // Manual span on the NIC timeline — a ScopedSpan would stamp the
        // (untouched) rank clock and render as zero-width.
        obs::Span span;
        span.name = "send_async";
        span.category = "comm";
        span.rank = rank_;
        span.depth = tracer_->enter(rank_);
        tracer_->exit(rank_);
        span.v_begin_s = start;
        span.v_end_s = end;
        span.h_begin_s = span.h_end_s = obs::host_now_s();
        span.attrs.bytes = static_cast<std::int64_t>(payload.size());
        span.attrs.peer = phys_dst;
        span.attrs.tag = tag;
        tracer_->record(span);
    }

    Message msg;
    msg.source = rank_;
    msg.tag = tag;
    msg.epoch = epoch_;
    msg.arrival_time_s = end;
    msg.payload = std::move(payload);
    transport_.deliver(phys_dst, std::move(msg));
    return end;
}

double Communicator::reserve_nic(double earliest_s, double duration_s) {
    double t = earliest_s;
    auto it = nic_busy_.begin();
    for (; it != nic_busy_.end(); ++it) {
        if (it->first >= t + duration_s) break;  // the gap before *it fits
        if (it->second > t) t = it->second;      // occupied — start after it
    }
    // `it` is the first interval starting at or after the placed transfer,
    // so inserting before it keeps nic_busy_ sorted and non-overlapping.
    nic_busy_.insert(it, {t, t + duration_s});
    nic_busy_until_s_ = std::max(nic_busy_until_s_, t + duration_s);
    return t;
}

std::optional<Communicator::AsyncMsg> Communicator::try_recv_async(int src, int tag) {
    const int phys_src = to_physical(src);
    std::optional<Message> m = transport_.try_receive(rank_, phys_src, tag);
    if (!m) return std::nullopt;
    stats_.messages_received += 1;
    stats_.bytes_received += m->payload.size();
    if (tracer_) {
        m_bytes_received_->add(m->payload.size());
        obs::Span span;
        span.name = "recv_async";
        span.category = "comm";
        span.rank = rank_;
        span.depth = tracer_->enter(rank_);
        tracer_->exit(rank_);
        span.v_begin_s = span.v_end_s = m->arrival_time_s;
        span.h_begin_s = span.h_end_s = obs::host_now_s();
        span.attrs.bytes = static_cast<std::int64_t>(m->payload.size());
        span.attrs.peer = m->source;
        span.attrs.tag = tag;
        tracer_->record(span);
    }
    return AsyncMsg{std::move(m->payload), m->arrival_time_s};
}

PooledBuffer Communicator::recv_buffer(int src, int tag) {
    int ignored = 0;
    return recv_buffer(src, tag, ignored);
}

PooledBuffer Communicator::recv_buffer(int src, int tag, int& actual_src) {
    return PooledBuffer(recv(src, tag, actual_src), &pool_);
}

}  // namespace gtopk::comm
