#include "comm/communicator.hpp"

#include <limits>
#include <stdexcept>
#include <string>

#include "comm/tags.hpp"
#include "obs/trace.hpp"

namespace gtopk::comm {

Communicator::Communicator(Transport& transport, int rank, NetworkModel model)
    : tag_counter_(kFreshTagBase),
      transport_(transport),
      rank_(rank),
      logical_rank_(rank),
      model_(model) {
    if (rank < 0 || rank >= transport.world_size()) {
        throw std::out_of_range("Communicator: rank outside world");
    }
}

void Communicator::set_view(std::vector<int> members, int epoch) {
    if (members.empty()) throw std::invalid_argument("set_view: empty view");
    if (epoch < epoch_) throw std::invalid_argument("set_view: epoch must not regress");
    for (std::size_t i = 0; i < members.size(); ++i) {
        if (members[i] < 0 || members[i] >= transport_.world_size()) {
            throw std::invalid_argument("set_view: member outside world");
        }
        if (i > 0 && members[i] <= members[i - 1]) {
            throw std::invalid_argument("set_view: members must be sorted unique");
        }
    }
    view_members_ = std::move(members);
    phys_to_logical_.assign(static_cast<std::size_t>(transport_.world_size()), -1);
    for (std::size_t i = 0; i < view_members_.size(); ++i) {
        phys_to_logical_[static_cast<std::size_t>(view_members_[i])] =
            static_cast<int>(i);
    }
    logical_rank_ = phys_to_logical_[static_cast<std::size_t>(rank_)];
    if (logical_rank_ < 0) {
        throw std::invalid_argument("set_view: this rank is not a member");
    }
    epoch_ = epoch;
    // Ranks reach a regroup from wherever the failure found them, so their
    // fresh-tag cursors may disagree. Restarting at the base resynchronizes
    // the SPMD lockstep; reuse of pre-regroup tags is safe because the
    // epoch floor below rejects every stale message before it can match.
    tag_counter_ = kFreshTagBase;
    transport_.begin_epoch(rank_, epoch_);
}

int Communicator::to_physical(int logical_peer) const {
    if (view_members_.empty() || logical_peer == kAnySource) return logical_peer;
    if (logical_peer < 0 || logical_peer >= static_cast<int>(view_members_.size())) {
        throw std::out_of_range("peer outside current view");
    }
    return view_members_[static_cast<std::size_t>(logical_peer)];
}

int Communicator::to_logical(int physical_src) const {
    if (view_members_.empty()) return physical_src;
    const int logical = phys_to_logical_[static_cast<std::size_t>(physical_src)];
    // Non-members cannot reach us (epoch floor), so this is defensive.
    return logical >= 0 ? logical : physical_src;
}

int Communicator::fresh_tags(int count) {
    if (count < 0) throw std::invalid_argument("fresh_tags: negative count");
    if (count > std::numeric_limits<int>::max() - kFreshTagBase) {
        throw std::invalid_argument("fresh_tags: count exceeds tag space");
    }
    if (tag_counter_ > std::numeric_limits<int>::max() - count) {
        // Out of tag space: wrap back to the base. Because every rank's
        // counter advances in SPMD lockstep, all ranks wrap at the same
        // collective boundary, so matching calls still agree on the block.
        // Reuse is only safe if no message carrying an old fresh tag is
        // still queued for this rank — a stale tag could steal a future
        // match. (Transports that cannot inspect their queues report 0
        // pending, degrading this to an unchecked wrap.)
        const std::size_t in_flight =
            transport_.pending_with_tag_at_least(rank_, kFreshTagBase);
        if (in_flight != 0) {
            throw std::logic_error(
                "fresh_tags: tag space exhausted on rank " + std::to_string(rank_) +
                " with " + std::to_string(in_flight) +
                " fresh-tag message(s) still pending; cannot wrap safely");
        }
        tag_counter_ = kFreshTagBase;
    }
    const int base = tag_counter_;
    tag_counter_ += count;
    return base;
}

void Communicator::set_tracer(obs::Tracer* tracer) {
    tracer_ = tracer;
    if (tracer_) {
        obs::MetricsRegistry& m = tracer_->metrics();
        m_bytes_sent_ = &m.counter("comm.bytes_sent");
        m_bytes_received_ = &m.counter("comm.bytes_received");
        m_message_bytes_ = &m.histogram("comm.message_bytes");
    } else {
        m_bytes_sent_ = nullptr;
        m_bytes_received_ = nullptr;
        m_message_bytes_ = nullptr;
    }
}

void Communicator::send(int dst, int tag, std::span<const std::byte> payload) {
    std::vector<std::byte> buf = pool_.acquire(payload.size());
    if (!payload.empty()) {
        std::memcpy(buf.data(), payload.data(), payload.size());
    }
    send_buffer(dst, tag, std::move(buf));
}

void Communicator::send_buffer(int dst, int tag, std::vector<std::byte>&& payload) {
    if (dst == logical_rank_) throw std::invalid_argument("send to self is not allowed");
    const int phys_dst = to_physical(dst);
    obs::ScopedSpan span(tracer_, clock_, rank_, "send", "comm");
    span.attrs().bytes = static_cast<std::int64_t>(payload.size());
    span.attrs().peer = phys_dst;
    span.attrs().tag = tag;

    const double cost = model_.transfer_time_s(payload.size());
    clock_.advance(cost);
    stats_.comm_time_s += cost;
    stats_.messages_sent += 1;
    stats_.bytes_sent += payload.size();
    if (tracer_) {
        m_bytes_sent_->add(payload.size());
        m_message_bytes_->record(payload.size());
    }

    Message msg;
    msg.source = rank_;
    msg.tag = tag;
    msg.epoch = epoch_;
    msg.arrival_time_s = clock_.now_s();
    msg.payload = std::move(payload);
    transport_.deliver(phys_dst, std::move(msg));
}

std::vector<std::byte> Communicator::recv(int src, int tag) {
    int ignored = 0;
    return recv(src, tag, ignored);
}

std::vector<std::byte> Communicator::recv(int src, int tag, int& actual_src) {
    // The span's virtual duration is exactly the wait: how far this rank's
    // clock had to jump forward to the message's modeled arrival.
    obs::ScopedSpan span(tracer_, clock_, rank_, "recv_wait", "comm");
    span.attrs().tag = tag;

    const int phys_src = to_physical(src);
    Message msg = [&] {
        if (recv_timeout_s_ <= 0.0) return transport_.receive(rank_, phys_src, tag);
        std::optional<Message> m =
            deadline_clock_ == DeadlineClock::Virtual
                ? transport_.receive_for_virtual(rank_, phys_src, tag,
                                                 clock_.now_s() + recv_timeout_s_,
                                                 recv_host_grace_s_)
                : transport_.receive_for(rank_, phys_src, tag, recv_timeout_s_);
        if (!m) {
            throw CommError(CommErrorKind::RecvTimeout, rank_, phys_src, tag,
                            recv_timeout_s_);
        }
        return std::move(*m);
    }();
    const double before = clock_.now_s();
    clock_.advance_to(msg.arrival_time_s);
    stats_.comm_time_s += clock_.now_s() - before;
    stats_.messages_received += 1;
    stats_.bytes_received += msg.payload.size();
    span.attrs().bytes = static_cast<std::int64_t>(msg.payload.size());
    span.attrs().peer = msg.source;
    if (tracer_) m_bytes_received_->add(msg.payload.size());
    actual_src = to_logical(msg.source);
    return std::move(msg.payload);
}

PooledBuffer Communicator::recv_buffer(int src, int tag) {
    int ignored = 0;
    return recv_buffer(src, tag, ignored);
}

PooledBuffer Communicator::recv_buffer(int src, int tag, int& actual_src) {
    return PooledBuffer(recv(src, tag, actual_src), &pool_);
}

}  // namespace gtopk::comm
