#include "comm/communicator.hpp"

#include <stdexcept>

namespace gtopk::comm {

Communicator::Communicator(Transport& transport, int rank, NetworkModel model)
    : transport_(transport), rank_(rank), model_(model) {
    if (rank < 0 || rank >= transport.world_size()) {
        throw std::out_of_range("Communicator: rank outside world");
    }
}

void Communicator::send(int dst, int tag, std::span<const std::byte> payload) {
    if (dst == rank_) throw std::invalid_argument("send to self is not allowed");
    const double cost = model_.transfer_time_s(payload.size());
    clock_.advance(cost);
    stats_.comm_time_s += cost;
    stats_.messages_sent += 1;
    stats_.bytes_sent += payload.size();

    Message msg;
    msg.source = rank_;
    msg.tag = tag;
    msg.arrival_time_s = clock_.now_s();
    msg.payload.assign(payload.begin(), payload.end());
    transport_.deliver(dst, std::move(msg));
}

std::vector<std::byte> Communicator::recv(int src, int tag) {
    int ignored = 0;
    return recv(src, tag, ignored);
}

std::vector<std::byte> Communicator::recv(int src, int tag, int& actual_src) {
    Message msg = transport_.receive(rank_, src, tag);
    const double before = clock_.now_s();
    clock_.advance_to(msg.arrival_time_s);
    stats_.comm_time_s += clock_.now_s() - before;
    stats_.messages_received += 1;
    stats_.bytes_received += msg.payload.size();
    actual_src = msg.source;
    return std::move(msg.payload);
}

}  // namespace gtopk::comm
