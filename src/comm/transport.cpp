#include "comm/transport.hpp"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "obs/trace.hpp"

namespace gtopk::comm {

std::optional<Message> Transport::receive_for(int rank, int source, int tag,
                                              double timeout_s) {
    if (timeout_s <= 0.0) return receive(rank, source, tag);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(timeout_s));
    for (;;) {
        if (auto msg = try_receive(rank, source, tag)) return msg;
        if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
}

std::optional<Message> Transport::receive_for_virtual(int rank, int source, int tag,
                                                      double max_arrival_s,
                                                      double host_grace_s) {
    // Polling fallback for decorators: try_receive consumes, so a match
    // past the virtual deadline is discarded — the same semantics the
    // mailbox implements natively (a receive that gave up at virtual time D
    // treats anything after D as lost).
    const auto grace_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(host_grace_s));
    for (;;) {
        if (auto msg = try_receive(rank, source, tag)) {
            if (msg->arrival_time_s <= max_arrival_s) return msg;
            return std::nullopt;
        }
        if (std::chrono::steady_clock::now() >= grace_deadline) return std::nullopt;
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
}

InProcTransport::InProcTransport(int world_size) {
    if (world_size <= 0) throw std::invalid_argument("world_size must be positive");
    mailboxes_.reserve(static_cast<std::size_t>(world_size));
    for (int i = 0; i < world_size; ++i) {
        mailboxes_.push_back(std::make_unique<Mailbox>());
    }
}

void InProcTransport::deliver(int dst, Message msg) {
    if (dst < 0 || dst >= world_size()) throw std::out_of_range("deliver: bad rank");
    const std::size_t depth = mailboxes_[static_cast<std::size_t>(dst)]->push(std::move(msg));
    delivered_.fetch_add(1, std::memory_order_relaxed);
    if (depth_histogram_) depth_histogram_->record(depth);
}

void InProcTransport::set_tracer(obs::Tracer* tracer) {
    depth_histogram_ = tracer ? &tracer->metrics().histogram("mailbox.depth") : nullptr;
}

Message InProcTransport::receive(int rank, int source, int tag) {
    if (rank < 0 || rank >= world_size()) throw std::out_of_range("receive: bad rank");
    return mailboxes_[static_cast<std::size_t>(rank)]->pop(source, tag);
}

void InProcTransport::shutdown() {
    for (auto& mb : mailboxes_) mb->close();
}

std::optional<Message> InProcTransport::try_receive(int rank, int source, int tag) {
    if (rank < 0 || rank >= world_size()) throw std::out_of_range("try_receive: bad rank");
    return mailboxes_[static_cast<std::size_t>(rank)]->try_pop(source, tag);
}

std::optional<Message> InProcTransport::receive_for(int rank, int source, int tag,
                                                    double timeout_s) {
    if (rank < 0 || rank >= world_size()) throw std::out_of_range("receive_for: bad rank");
    if (timeout_s <= 0.0) return receive(rank, source, tag);
    return mailboxes_[static_cast<std::size_t>(rank)]->pop_for(
        source, tag,
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::duration<double>(timeout_s)));
}

std::optional<Message> InProcTransport::receive_for_virtual(int rank, int source,
                                                            int tag,
                                                            double max_arrival_s,
                                                            double host_grace_s) {
    if (rank < 0 || rank >= world_size()) {
        throw std::out_of_range("receive_for_virtual: bad rank");
    }
    return mailboxes_[static_cast<std::size_t>(rank)]->pop_for_virtual(
        source, tag, max_arrival_s,
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::duration<double>(host_grace_s)));
}

void InProcTransport::begin_epoch(int rank, int epoch) {
    if (rank < 0 || rank >= world_size()) {
        throw std::out_of_range("begin_epoch: bad rank");
    }
    mailboxes_[static_cast<std::size_t>(rank)]->set_min_epoch(epoch);
}

std::size_t InProcTransport::pending_with_tag_at_least(int rank, int min_tag) const {
    if (rank < 0 || rank >= world_size()) {
        throw std::out_of_range("pending_with_tag_at_least: bad rank");
    }
    return mailboxes_[static_cast<std::size_t>(rank)]->count_tag_at_least(min_tag);
}

std::uint64_t InProcTransport::delivered_count() const {
    return delivered_.load(std::memory_order_relaxed);
}

}  // namespace gtopk::comm
