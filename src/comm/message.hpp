// Wire unit exchanged between simulated workers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gtopk::comm {

/// Matching key for receives. ANY_SOURCE / ANY_TAG wildcard like MPI.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Message {
    int source = 0;
    int tag = 0;
    /// Membership epoch the sender was in when it sent (see
    /// comm/membership.hpp). Receivers that advanced past an epoch reject
    /// older-epoch messages deterministically (Mailbox::set_min_epoch), so
    /// a straggler's stale traffic can never steal a match after a regroup.
    int epoch = 0;
    /// Virtual time (seconds) at which the message fully arrives at the
    /// receiver under the network model: sender_departure + alpha + n*beta.
    double arrival_time_s = 0.0;
    std::vector<std::byte> payload;
};

}  // namespace gtopk::comm
