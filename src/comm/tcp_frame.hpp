// Wire framing for TcpTransport: one length-prefixed frame per Message.
//
// The codec is deliberately socket-free — encode_frame produces bytes,
// FrameDecoder consumes an arbitrary re-chunking of them — so the fuzz
// suite can drive the exact code the receiver thread runs without opening
// a connection. Every header field is validated eagerly, BEFORE the
// payload is buffered: a hostile or corrupted peer can make the decoder
// throw FrameError (the connection is then dropped), never allocate an
// attacker-chosen amount of memory or read out of bounds.
//
// Layout (little-endian, 44-byte header):
//   u32  magic            'GTPK' (0x4754504B)
//   u32  version          kFrameVersion
//   i32  src              sending physical rank
//   i32  dst              destination physical rank
//   i32  tag
//   i32  epoch            membership epoch (>= 0)
//   f64  arrival_time_s   modeled arrival stamp (finite, >= 0)
//   u64  payload_len      <= max_payload
//   ...  payload bytes
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/message.hpp"

namespace gtopk::comm::tcp {

inline constexpr std::uint32_t kFrameMagic = 0x4754504Bu;  // "GTPK"
inline constexpr std::uint32_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 44;

/// Hard ceiling on a frame's payload; TcpConfig may lower it further. A
/// length prefix above the limit is rejected at header-validation time, so
/// an oversized prefix can never drive an allocation.
inline constexpr std::uint64_t kMaxFramePayload = 1ull << 30;

/// Highest physical rank the frame header will accept. Far above any world
/// this repo targets; it exists so a corrupted rank field is rejected
/// instead of indexing a per-rank table out of range.
inline constexpr int kMaxFrameRank = 1 << 20;

/// Thrown on any malformed frame: bad magic, unknown version, out-of-range
/// rank/tag/epoch, non-finite arrival stamp, oversized length prefix.
struct FrameError : std::runtime_error {
    explicit FrameError(const std::string& what) : std::runtime_error(what) {}
};

/// Serialize `msg` (headed to `dst`) and append the frame to `out`.
/// Validates the same invariants the decoder enforces, so a frame this
/// process emits is always decodable by a peer with the same limits.
void encode_frame(const Message& msg, int dst, std::vector<std::byte>& out,
                  std::uint64_t max_payload = kMaxFramePayload);

/// One fully decoded frame.
struct DecodedFrame {
    Message msg;
    int dst = -1;
};

/// Incremental decoder for one connection's byte stream. feed() buffers
/// arbitrary chunks; next() yields complete frames in order, throwing
/// FrameError the moment a header is invalid (a partial header or partial
/// payload simply yields nullopt until more bytes arrive).
class FrameDecoder {
public:
    explicit FrameDecoder(std::uint64_t max_payload = kMaxFramePayload)
        : max_payload_(max_payload) {}

    /// Append raw bytes from the connection.
    void feed(std::span<const std::byte> bytes);

    /// Decode the next complete frame, or nullopt if the buffered bytes end
    /// mid-header / mid-payload. Throws FrameError on a malformed header.
    std::optional<DecodedFrame> next();

    /// Bytes buffered but not yet consumed by next().
    std::size_t buffered() const { return buffer_.size() - consumed_; }

    /// True when the stream ends inside an incomplete frame — how the
    /// receiver distinguishes a clean peer shutdown (EOF on a frame
    /// boundary) from a mid-frame disconnect.
    bool mid_frame() const { return buffered() > 0; }

    /// Drop all buffered state (connection reset).
    void reset() {
        buffer_.clear();
        consumed_ = 0;
    }

private:
    std::uint64_t max_payload_ = 0;
    std::vector<std::byte> buffer_;
    std::size_t consumed_ = 0;  // prefix of buffer_ already decoded
};

}  // namespace gtopk::comm::tcp
