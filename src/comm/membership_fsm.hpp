// Pure membership/epoch agreement state machine — the spec that both
// MembershipService and the protocheck model checker EXECUTE.
//
// The agreement plane of DESIGN.md §12 (regroup rounds, majority quorum,
// view finalization, the excluded-straggler rejection) is expressed here as
// side-effect-free transition functions over a value-type state.
// membership.cpp owns the mutex, condition variable and heartbeat clocks
// and merely APPLIES the verdicts these functions return;
// src/analysis/protocheck/membership_model.cpp drives the identical
// functions under an exhaustive adversarial scheduler (kills, grace-window
// expiries and joins in every interleaving). One copy of the protocol
// logic — the model cannot drift from the code.
//
// The liveness plane (heartbeat gossip, suspicion timers) stays in
// MembershipService: it is advisory by design — regroup is driven by
// receive deadlines, never by suspected() — so it carries no agreement
// state worth model checking.
#pragma once

#include <cstdint>
#include <vector>

namespace gtopk::comm {

/// One agreed membership view. Ranks are PHYSICAL ranks of the original
/// world; logical ranks are their indices in `members` (sorted ascending,
/// so the lowest surviving physical rank is logical rank 0).
struct MembershipView {
    int epoch = 0;
    std::vector<int> members;
};

namespace fsm {

// ---------------------------------------------------------------------------
// Seeded invariant breaks (test hooks; see reliable_fsm.hpp for rationale)

enum class MembershipBreak {
    kNone = 0,
    /// Grace expiry finalizes with ANY non-empty joiner set — the PR 5
    /// split-brain class protocheck must rediscover ("quorum-violation").
    kQuorumBypass,
};

void set_membership_break(MembershipBreak b);
MembershipBreak membership_break();

// ---------------------------------------------------------------------------
// Agreement state

struct MembershipFsmState {
    int world = 0;            // physical world size (fixed)
    int epoch = 0;            // epoch of the latest agreed view
    std::vector<int> members;  // latest agreed view, sorted ascending
    std::vector<bool> left;    // ranks that called leave()
    std::vector<bool> joined;  // joiners of the in-flight round
    std::uint64_t round = 0;   // regroup round counter
};

MembershipFsmState membership_init(int world);

/// A member counts as live while it has neither left nor been declared
/// dead by the fabric (`fabric_alive` = Transport::rank_alive per rank).
bool membership_rank_live(const MembershipFsmState& st, int rank,
                          const std::vector<bool>& fabric_alive);

/// Live members of the CURRENT view, ascending.
std::vector<int> membership_live_members(const MembershipFsmState& st,
                                         const std::vector<bool>& fabric_alive);

/// leave(): the rank is out of the expected-joiner set from now on; any
/// in-flight round stops waiting for it.
void membership_leave(MembershipFsmState& st, int rank);

enum class JoinVerdict {
    kJoined,         // now a joiner of the current round
    kAlreadyJoined,  // idempotent re-entry into the same round
    kNotLive,        // left or fabric-dead: regroup() throws invalid_argument
    kNotInView,      // voted out by a previous round: throws invalid_argument
};

JoinVerdict membership_join(MembershipFsmState& st, int rank,
                            const std::vector<bool>& fabric_alive);

enum class RoundVerdict {
    kWait,            // joiners missing, grace still running
    kFinalizeAll,     // every live member joined (fast path)
    kFinalizeQuorum,  // grace expired with a strict majority joined
    kAbortNoQuorum,   // grace expired without a majority: regroup() throws
};

/// The finalization rule, evaluated by a waiting joiner: a round completes
/// when every live expected member joined, or at grace expiry with a
/// strict MAJORITY of live members (a minority must never finalize — a
/// straggler excluded by the majority's round would otherwise build a view
/// whose higher epoch passes every later epoch floor and train solo).
RoundVerdict membership_evaluate(const MembershipFsmState& st,
                                 const std::vector<bool>& fabric_alive,
                                 bool grace_expired);

/// Apply a finalize verdict: epoch + 1, members = the joiner set (sorted
/// by construction: `joined` is rank-indexed), round advanced, joiner set
/// cleared. Returns the new view every joiner of the round observes.
MembershipView membership_finalize(MembershipFsmState& st);

}  // namespace fsm
}  // namespace gtopk::comm
