// Communicator: the rank-scoped handle a worker uses to talk to peers —
// the moral equivalent of an MPI communicator, plus virtual-time accounting.
//
// Timing model (applied on every matched send/recv pair):
//   * send(dst, n bytes) advances the SENDER's clock by alpha + n*beta and
//     stamps the message's arrival time with the sender's post-send clock.
//   * recv() advances the RECEIVER's clock to max(own clock, arrival).
// This sequential-send model reproduces the standard alpha-beta costs of
// all the collectives analyzed in the paper: a ring step costs
// alpha + n*beta per rank (send-then-recv overlap collapses to one term),
// a tree round costs alpha + n*beta on its critical path, and a flat-tree
// root serializes (P-1) sends — exactly the behaviors Eqs. 5-7 assume.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include <optional>

#include "comm/buffer_pool.hpp"
#include "comm/comm_error.hpp"
#include "comm/network_model.hpp"
#include "comm/progress.hpp"
#include "comm/tags.hpp"
#include "comm/transport.hpp"
#include "comm/virtual_clock.hpp"

namespace gtopk::obs {
class Tracer;
class Counter;
class Histogram;
}  // namespace gtopk::obs

namespace gtopk::comm {

/// Per-rank communication counters, all in virtual time / modeled bytes.
struct CommStats {
    std::uint64_t messages_sent = 0;
    std::uint64_t messages_received = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    /// Virtual seconds this rank's clock advanced inside send/recv calls
    /// (includes waiting for a peer's message to arrive).
    double comm_time_s = 0.0;

    void reset() { *this = CommStats{}; }
};

/// Which clock a receive deadline is measured on (set_recv_deadline).
enum class DeadlineClock {
    Host,     // wall time; detects stalled peers (default)
    Virtual,  // modeled time; deterministic timeout outcomes for tests
};

class Communicator {
public:
    Communicator(Transport& transport, int rank, NetworkModel model);

    /// LOGICAL rank/size under the current membership view. With the
    /// initial identity view these equal the physical rank and world size;
    /// after set_view they describe the survivor world, so collectives and
    /// schedule generators transparently target the regrouped cluster.
    int rank() const { return logical_rank_; }
    int size() const {
        return view_members_.empty() ? transport_.world_size()
                                     : static_cast<int>(view_members_.size());
    }

    /// Physical rank in the original world (mailbox address, trace id).
    int physical_rank() const { return rank_; }

    /// Install a membership view (comm/membership.hpp): `members` are the
    /// sorted physical ranks of the survivor world and must contain this
    /// rank. From here on rank()/size() are logical, peer arguments to
    /// send/recv are logical and translated at the wire, every outgoing
    /// message is stamped with `epoch`, and the transport's inbound epoch
    /// floor is raised so stale pre-regroup traffic is rejected. The
    /// fresh-tag cursor restarts at kFreshTagBase — safe precisely because
    /// the epoch floor guarantees no old-epoch message can steal a match.
    void set_view(std::vector<int> members, int epoch);

    /// Current membership epoch stamped on outgoing messages (0 initially).
    int epoch() const { return epoch_; }

    /// Physical ranks of the current view (empty = identity/full world).
    const std::vector<int>& view_members() const { return view_members_; }

    const NetworkModel& network() const { return model_; }

    VirtualClock& clock() { return clock_; }
    const VirtualClock& clock() const { return clock_; }

    CommStats& stats() { return stats_; }
    const CommStats& stats() const { return stats_; }

    /// Receive deadline in HOST seconds applied to every blocking recv on
    /// this rank; <= 0 (the default) waits forever. On expiry the recv
    /// throws CommError(RecvTimeout) naming this rank, the awaited peer and
    /// the tag, so a dropped message (fault injection, dead peer) surfaces
    /// as a typed failure instead of an indefinite hang. Host time is the
    /// right clock: a rank starved of a message cannot advance virtual time
    /// at all (see comm_error.hpp).
    void set_recv_timeout_s(double timeout_s) {
        recv_timeout_s_ = timeout_s;
        deadline_clock_ = DeadlineClock::Host;
    }
    double recv_timeout_s() const { return recv_timeout_s_; }

    /// Generalized receive deadline: `DeadlineClock::Host` is exactly
    /// set_recv_timeout_s; `DeadlineClock::Virtual` times a recv out when
    /// no match arrives by (receiver's virtual now + timeout_s) of MODELED
    /// time — a matching message with a later modeled arrival is consumed
    /// and discarded, so the timeout outcome depends only on the network
    /// model, never on host-machine speed. In virtual mode,
    /// set_recv_host_grace_s bounds the wall-clock wait for the only
    /// nondeterministic case (the message never arrives at all).
    void set_recv_deadline(DeadlineClock clock, double timeout_s) {
        deadline_clock_ = clock;
        recv_timeout_s_ = timeout_s;
    }
    DeadlineClock recv_deadline_clock() const { return deadline_clock_; }

    /// Host-seconds bound on a virtual-deadline recv whose match never
    /// materializes (true drop). Affects detection latency only, never
    /// which outcome deterministic scenarios observe.
    void set_recv_host_grace_s(double grace_s) { recv_host_grace_s_ = grace_s; }
    double recv_host_grace_s() const { return recv_host_grace_s_; }

    /// Report that this rank reached application step `step` (trainers call
    /// it every iteration). Forwards to Transport::on_progress, where the
    /// fault injector places scheduled kills at exact iteration boundaries.
    void mark_progress(std::int64_t step) { transport_.on_progress(rank_, step); }

    /// Attach an observability tracer (nullptr = tracing off, the default).
    /// With a tracer, send/recv record per-message spans and metrics;
    /// collectives and aggregators pick it up via tracer() to add their
    /// phase spans. Off, every traced path is one branch on null.
    void set_tracer(obs::Tracer* tracer);
    obs::Tracer* tracer() const { return tracer_; }

    /// Blocking-by-semantics send (buffered, so it never deadlocks on an
    /// unmatched peer, like an MPI buffered send). Costs alpha + n*beta of
    /// sender virtual time. The payload is copied — into a pooled buffer,
    /// so steady-state sends do not allocate.
    void send(int dst, int tag, std::span<const std::byte> payload);

    /// Zero-copy send: the vector is moved into the Message unchanged.
    /// Acquire it from buffer_pool() (serialize straight into it) so the
    /// storage recirculates; any vector is accepted either way.
    void send_buffer(int dst, int tag, std::vector<std::byte>&& payload);

    /// Blocking matched receive; returns the payload. Receiver's clock is
    /// advanced to the message's modeled arrival.
    std::vector<std::byte> recv(int src, int tag);

    /// Receive and also report the actual source (for kAnySource receives).
    std::vector<std::byte> recv(int src, int tag, int& actual_src);

    /// Like recv, but the payload's storage returns to this rank's pool
    /// when the returned handle dies — the allocation-free receive path.
    PooledBuffer recv_buffer(int src, int tag);
    PooledBuffer recv_buffer(int src, int tag, int& actual_src);

    /// Non-blocking matched receive: nullopt when nothing matches right
    /// now; on a match, identical clock/stats/trace accounting to recv().
    /// This is the async engine's polling primitive — it never honors the
    /// receive deadline (the engine applies its own across pump rounds).
    std::optional<std::vector<std::byte>> try_recv(int src, int tag);

    /// NIC-timeline send for async collectives: the transfer occupies this
    /// rank's modeled NIC for alpha + n*beta starting at the first free
    /// slot at or after earliest_start_s (first-fit over the rank's busy
    /// intervals — host pump order must not decide modeled contention),
    /// WITHOUT advancing the virtual clock: modeled communication runs
    /// concurrently with modeled compute, which is what makes overlap
    /// measurable in virtual time. The message's arrival stamp is the
    /// transfer's end; that end time is returned so the caller can track
    /// its completion frontier (AsyncCollective syncs the clock to it in
    /// wait()).
    double send_async(int dst, int tag, std::vector<std::byte>&& payload,
                      double earliest_start_s);

    /// A matched async receive: payload plus its modeled arrival.
    struct AsyncMsg {
        std::vector<std::byte> payload;
        double arrival_s = 0.0;
    };

    /// Non-blocking matched receive on the NIC timeline: never advances the
    /// virtual clock; the caller gets the modeled arrival alongside the
    /// payload and decides when to synchronize (AsyncCollective::wait).
    std::optional<AsyncMsg> try_recv_async(int src, int tag);

    /// Latest modeled time this rank's NIC is occupied through by async
    /// sends (the busy timeline may have free gaps before it).
    double nic_busy_until_s() const { return nic_busy_until_s_; }

    /// This rank's payload buffer pool. Single-threaded: only the owning
    /// rank's thread may touch it.
    BufferPool& buffer_pool() { return pool_; }

    /// Typed helpers for trivially copyable element types.
    template <typename T>
    void send_vec(int dst, int tag, std::span<const T> values) {
        static_assert(std::is_trivially_copyable_v<T>);
        send(dst, tag, std::as_bytes(values));
    }

    template <typename T>
    void send_vec(int dst, int tag, const std::vector<T>& values) {
        send_vec<T>(dst, tag, std::span<const T>(values));
    }

    template <typename T>
    std::vector<T> recv_vec(int src, int tag) {
        std::vector<T> out;
        recv_vec_into<T>(src, tag, out);
        return out;
    }

    /// Receive into an existing vector, reusing its capacity; the wire
    /// buffer itself recycles through the pool.
    template <typename T>
    void recv_vec_into(int src, int tag, std::vector<T>& out) {
        static_assert(std::is_trivially_copyable_v<T>);
        const PooledBuffer raw = recv_buffer(src, tag);
        out.resize(raw.size() / sizeof(T));
        if (!out.empty()) {
            std::memcpy(out.data(), raw.bytes().data(), out.size() * sizeof(T));
        }
    }

    /// Send a single trivially-copyable value.
    template <typename T>
    void send_value(int dst, int tag, const T& v) {
        static_assert(std::is_trivially_copyable_v<T>);
        send(dst, tag, std::as_bytes(std::span<const T>(&v, 1)));
    }

    template <typename T>
    T recv_value(int src, int tag) {
        static_assert(std::is_trivially_copyable_v<T>);
        std::vector<std::byte> raw = recv(src, tag);
        T v{};
        std::memcpy(&v, raw.data(), sizeof(T));
        return v;
    }

    /// Inbound mailbox depth of this rank (pending messages across every
    /// tag) — the queue-pressure signal the telemetry plane folds into its
    /// per-iteration RankIterStats.
    std::size_t mailbox_depth() const {
        return transport_.pending_with_tag_at_least(rank_, kTagFloor);
    }

    /// Reserve `count` fresh tags for one collective invocation and return
    /// the first. All ranks execute the same SPMD sequence of collectives,
    /// so per-rank counters stay in lockstep and matching calls agree on the
    /// tag block without any coordination traffic.
    ///
    /// Long runs exhaust the band (~2^30 - 10^6 tags); instead of silently
    /// overflowing into the async band, the counter wraps back to
    /// kFreshTagBase. Wrapping is sound only when no fresh-tag message is
    /// still in flight — since the counters advance in SPMD lockstep, every
    /// rank wraps at the same collective boundary and checks its own inbound
    /// queue, which together covers all fresh-tag traffic. A pending
    /// fresh-tag message at wrap time throws (tag reuse would mis-match).
    int fresh_tags(int count);

    /// Reserve `count` tags in the async band [kAsyncTagBase, INT_MAX) for
    /// one AsyncCollective handle and return the band base. A second SPMD
    /// cursor, separate from fresh_tags: every rank starts the same handles
    /// in the same order, so matching handles agree on the band, and the
    /// cursor's monotonic advance (between pending-gated wraps, as above)
    /// guarantees two overlapping collectives can NEVER alias tags — the
    /// multi-collective tag discipline of DESIGN.md §14.
    int fresh_async_tags(int count);

    /// Current fresh-tag cursor (next block base).
    int fresh_tag_cursor() const { return tag_counter_; }

    /// Current async-band cursor (next handle's band base).
    int async_tag_cursor() const { return async_tag_counter_; }

    /// Test hook: reposition the fresh-tag cursor (e.g. just below the wrap
    /// limit to exercise the overflow path without 2^30 collectives). Must
    /// be called in SPMD lockstep with no fresh-tag traffic in flight.
    void set_fresh_tag_cursor_for_test(int cursor) { tag_counter_ = cursor; }

    /// Test hook, same contract as above, for the async cursor.
    void set_async_tag_cursor_for_test(int cursor) { async_tag_counter_ = cursor; }

    /// Register/unregister an in-flight progress source (async handles do
    /// this in start()/destruction). Single-threaded: only the owning
    /// rank's thread may touch the registry.
    void add_progress_source(ProgressSource* source);
    void remove_progress_source(ProgressSource* source);

    /// Pump every registered source once, in ascending pump_priority()
    /// order (front-layer buckets first — the P3 preemption rule). Returns
    /// true if any source executed at least one op.
    bool pump_progress();

    /// Registered in-flight sources (for diagnostics/tests).
    std::size_t progress_source_count() const { return progress_sources_.size(); }

private:
    /// Logical -> physical peer translation under the current view.
    int to_physical(int logical_peer) const;
    /// Physical -> logical source translation (kAnySource receives).
    int to_logical(int physical_src) const;

    int tag_counter_;        // initialized to kFreshTagBase, clear of user tags
    int async_tag_counter_;  // initialized to kAsyncTagBase
    std::vector<ProgressSource*> progress_sources_;
    Transport& transport_;
    int rank_;          // physical, fixed for the communicator's lifetime
    int logical_rank_;  // index into view_members_ (== rank_ when identity)
    int epoch_ = 0;
    std::vector<int> view_members_;    // empty = identity view (full world)
    std::vector<int> phys_to_logical_;  // -1 for non-members
    /// Place a `duration_s` transfer at the first NIC gap at or after
    /// `earliest_s` (first-fit over nic_busy_), reserve it, and return its
    /// start. Host pump order must not decide modeled contention: a send
    /// pumped late but with an early data dependency backfills gaps left by
    /// transfers reserved before it.
    double reserve_nic(double earliest_s, double duration_s);

    DeadlineClock deadline_clock_ = DeadlineClock::Host;
    /// Reserved NIC busy intervals [start, end), sorted by start,
    /// non-overlapping. Pruned between overlapped iterations (see
    /// fresh_async_tags).
    std::vector<std::pair<double, double>> nic_busy_;
    double nic_busy_until_s_ = 0.0;
    double recv_timeout_s_ = 0.0;
    double recv_host_grace_s_ = 2.0;
    NetworkModel model_;
    VirtualClock clock_;
    CommStats stats_;
    BufferPool pool_;
    obs::Tracer* tracer_ = nullptr;
    // Metric cells resolved once in set_tracer so the per-message cost is a
    // relaxed atomic add, not a registry lookup.
    obs::Counter* m_bytes_sent_ = nullptr;
    obs::Counter* m_bytes_received_ = nullptr;
    obs::Histogram* m_message_bytes_ = nullptr;
};

}  // namespace gtopk::comm
