// Pure ARQ state machines for ReliableTransport — the spec that both the
// live transport and the protocheck model checker EXECUTE.
//
// Every sequencing decision the reliable layer makes (seq assignment,
// cumulative-ack GC, dedup, out-of-order parking, contiguous release,
// stale-epoch gap skipping) lives here as a side-effect-free transition
// function over small value-type states. reliable_transport.cpp owns the
// payload bytes, mutexes and mailboxes and merely APPLIES the decisions
// these functions return; src/analysis/protocheck/arq_model.cpp drives the
// identical functions under an exhaustive adversarial network. The model
// cannot drift from the code for the same reason the Schedule IR cannot:
// there is only one copy of the protocol logic.
//
// Seq-space conventions (unchanged from the original in-line logic):
//   * the first payload on an edge gets seq 1; seq 0 means "nothing",
//   * the retransmit buffer holds seqs [base_seq, base_seq + buffered),
//   * cumulative ack k means "every seq <= k was delivered or skipped",
//   * the receiver's parked set holds only seqs STRICTLY greater than
//     `expected` (the normalization the model checker verifies).
#pragma once

#include <cstdint>
#include <optional>
#include <set>

namespace gtopk::comm::fsm {

// ---------------------------------------------------------------------------
// Seeded invariant breaks (test hooks)
//
// protocheck's acceptance gate requires that a deliberately broken protocol
// produces a counterexample which then replays to a real failure through
// ReliableTransport. Because the transport executes these same functions,
// flipping a break here breaks BOTH the model and the implementation — the
// property the conformance bridge demonstrates. Never set outside tests.

enum class ArqBreak {
    kNone = 0,
    /// GC drops one payload past the cumulative ack on every send: the
    /// retransmit buffer loses an unacked pristine copy, so a loss of that
    /// seq becomes unrecoverable (safety: "gc-dropped-unacked").
    kGcDropsUnacked,
    /// The receiver accepts already-delivered seqs instead of dedup-dropping
    /// them (safety: "duplicate-delivery").
    kAcceptDuplicates,
};

void set_arq_break(ArqBreak b);
ArqBreak arq_break();

// ---------------------------------------------------------------------------
// Sender side (one state per directed edge)

struct ArqTxState {
    std::uint64_t next_seq = 0;  // last assigned seq; first send gets 1
    std::uint64_t base_seq = 1;  // seq of the oldest buffered payload
    std::uint64_t buffered = 0;  // payloads currently in the retransmit buffer
    std::uint64_t acked = 0;     // highest cumulative ack folded in so far
};

/// What the caller must do to its payload buffer around one send.
struct TxSendDecision {
    std::uint64_t seq = 0;  // seq assigned to the new payload
    std::uint64_t gc = 0;   // acked payloads to pop from the buffer FRONT first
    bool buffer = false;    // keep a pristine copy (receiver is alive)
    std::uint64_t clear = 0;  // payloads to drop entirely (receiver is dead)
};

/// One send transition: fold the receiver's published cumulative ack,
/// GC the acked prefix, assign the next seq, and decide whether the
/// pristine copy is worth keeping (a dead receiver never acks, so
/// buffering for it would hold payload bytes until process exit).
TxSendDecision arq_tx_send(ArqTxState& st, std::uint64_t cum_ack, bool dst_alive);

/// Buffer index currently holding `seq`; nullopt when GCed, cleared or
/// never assigned. Pure query — the receiver's recovery path uses it to
/// locate the gap head inside the sender's buffer.
std::optional<std::uint64_t> arq_tx_buffer_index(const ArqTxState& st,
                                                 std::uint64_t seq);

/// Fold a cumulative ack that arrived OUT OF BAND (a wire ack/pull frame on
/// a non-shared-memory fabric, where the receiver cannot publish into the
/// sender's address space). Returns the number of newly-acked payloads the
/// caller must pop from the buffer FRONT. Acks are monotonic: a stale or
/// implausible (beyond next_seq) value folds to a no-op, so a corrupted or
/// reordered ack frame can never GC an unacked payload.
std::uint64_t arq_tx_ack(ArqTxState& st, std::uint64_t cum_ack);

// ---------------------------------------------------------------------------
// Receiver side (one state per directed edge)

struct ArqRxState {
    std::uint64_t expected = 1;      // next in-order seq
    std::set<std::uint64_t> parked;  // out-of-order seqs held for reassembly
};

enum class RxAction {
    kDeliver,        // in-order: hand to the mailbox (plus `release` parked)
    kPark,           // out-of-order: hold for reassembly
    kDropDuplicate,  // seq already delivered or already parked
    kDropCorrupt,    // checksum/magic failure: treat as loss
};

struct RxDecision {
    RxAction action = RxAction::kDropCorrupt;
    /// On kDeliver: number of now-contiguous parked seqs (old expected + 1,
    /// + 2, ...) released immediately after the triggering payload. The
    /// caller pops exactly this many LEADING entries of its ordered parked
    /// map and delivers them in key order.
    std::uint64_t release = 0;
    /// Cumulative ack to publish after applying the decision.
    std::uint64_t cum_ack = 0;
};

/// One envelope-arrival transition: dedup, order, park, release.
RxDecision arq_rx_envelope(ArqRxState& st, std::uint64_t seq, bool checksum_ok);

/// One recovery transition for the gap head (seq == st.expected) pulled
/// pristine from the sender's buffer. `stale` marks a payload whose epoch
/// fell below the receiver's floor across a regroup: the gap advances past
/// it WITHOUT delivery, or the edge would wedge forever. Both outcomes
/// release any now-contiguous parked suffix.
enum class RecoverAction {
    kDeliver,    // live payload: deliver it (plus `release` parked)
    kSkipStale,  // stale payload: advance past it undelivered
};

struct RxRecoverDecision {
    RecoverAction action = RecoverAction::kDeliver;
    std::uint64_t release = 0;  // contiguous parked seqs released (see above)
    std::uint64_t cum_ack = 0;
};

RxRecoverDecision arq_rx_recover(ArqRxState& st, bool stale);

/// begin_epoch purge: forget a stale parked seq (the caller iterates its
/// payload map and drops the matching entry). The freed slot becomes a gap
/// that arq_rx_recover later skips via the stale path.
void arq_rx_unpark(ArqRxState& st, std::uint64_t seq);

}  // namespace gtopk::comm::fsm
