// Central registry of user-facing point-to-point tags.
//
// Tag space discipline (machine-checked by tools/commcheck and a
// static_assert below): the half-open range [0, kFreshTagBase) belongs to
// user protocols — every hand-assigned tag in the tree must be listed here —
// and [kFreshTagBase, INT_MAX] belongs to Communicator::fresh_tags blocks,
// which all collectives draw from in SPMD lockstep. Keeping the two ranges
// disjoint is what lets a PS push (user tag) stay pending across a
// collective (fresh tags) without any matching ambiguity.
#pragma once

namespace gtopk::comm {

/// First tag of the fresh-tag space reserved for collectives; every user
/// tag must stay strictly below it.
inline constexpr int kFreshTagBase = 1'000'000;

enum UserTag : int {
    /// Parameter-server protocol (ps/ps_trainer.cpp).
    kTagPsPush = 101,  // worker -> server gradients
    kTagPsPull = 102,  // server -> worker aggregate

    /// Point-to-point tags used by tests and benches (tests/, bench/).
    kTagTestData = 201,
    kTagTestAux = 202,
    kTagTestValue = 203,
    kTagBenchP2p = 301,

    /// Recovery layer (comm/reliable_transport.hpp, comm/membership.hpp).
    kTagReliableData = 401,  // seq-numbered envelope around user traffic
    kTagHeartbeat = 402,     // liveness gossip; intentionally unreliable
};

static_assert(kTagPsPush < kFreshTagBase && kTagPsPull < kFreshTagBase &&
                  kTagTestData < kFreshTagBase && kTagTestAux < kFreshTagBase &&
                  kTagTestValue < kFreshTagBase && kTagBenchP2p < kFreshTagBase &&
                  kTagReliableData < kFreshTagBase && kTagHeartbeat < kFreshTagBase,
              "user tags must stay below the fresh-tag base");
static_assert(kTagPsPush >= 0, "user tags are non-negative");

}  // namespace gtopk::comm
