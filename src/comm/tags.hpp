// Central registry of user-facing point-to-point tags.
//
// Tag space discipline (machine-checked by tools/commcheck and the
// static_asserts below) — three disjoint bands:
//
//   [0, kFreshTagBase)             user protocols: every hand-assigned tag
//                                  in the tree must be listed here.
//   [kFreshTagBase, kAsyncTagBase) Communicator::fresh_tags blocks, drawn
//                                  by BLOCKING collectives in SPMD lockstep
//                                  (one collective at a time).
//   [kAsyncTagBase, INT_MAX)       Communicator::fresh_async_tags bands,
//                                  one per in-flight AsyncCollective handle
//                                  (collectives/async.hpp). A second SPMD
//                                  cursor lives here so any number of
//                                  concurrent handles get pairwise-disjoint
//                                  tag bands without coordination traffic —
//                                  two overlapping collectives can never
//                                  alias tags.
//
// Keeping the bands disjoint is what lets a PS push (user tag) stay pending
// across a collective (fresh tags), and an overlapped per-bucket gTop-k
// (async band) stay in flight across a blocking collective, without any
// matching ambiguity.
#pragma once

#include <limits>

namespace gtopk::comm {

/// First tag of the fresh-tag space reserved for collectives; every user
/// tag must stay strictly below it.
inline constexpr int kFreshTagBase = 1'000'000;

/// First tag of the async band reserved for AsyncCollective handles. The
/// blocking fresh-tag cursor wraps strictly below it; the async cursor
/// starts here and wraps back here.
inline constexpr int kAsyncTagBase = 1 << 30;

/// Threshold meaning "every tag" for the at-least counters
/// (Mailbox::count_tag_at_least, Transport::pending_with_tag_at_least).
/// Tags are non-negative, so a floor of zero spans the whole mailbox.
inline constexpr int kTagFloor = 0;

enum UserTag : int {
    /// Parameter-server protocol (ps/ps_trainer.cpp).
    kTagPsPush = 101,  // worker -> server gradients
    kTagPsPull = 102,  // server -> worker aggregate

    /// Point-to-point tags used by tests and benches (tests/, bench/).
    kTagTestData = 201,
    kTagTestAux = 202,
    kTagTestValue = 203,
    kTagBenchP2p = 301,

    /// Recovery layer (comm/reliable_transport.hpp, comm/membership.hpp).
    kTagReliableData = 401,  // seq-numbered envelope around user traffic
    kTagHeartbeat = 402,     // liveness gossip; intentionally unreliable
    kTagReliableAck = 403,   // wire ARQ: cumulative ack frame (non-shared
                             // fabrics, where the tx edge cannot read the
                             // receiver's ack counter from memory)
    kTagReliablePull = 404,  // wire ARQ: gap-recovery pull (next expected
                             // seq; the remote tx answers with retransmits)
    kTagMembershipJoin = 405,  // wire regroup: joiner -> leader JOIN
    kTagMembershipView = 406,  // wire regroup: leader -> member agreed VIEW

    /// Telemetry plane (obs/telemetry.hpp). The per-iteration stats
    /// allgather uses one absolute tag per ring round, so the band
    /// [kTagTelemetryBase, kTagTelemetryBase + kTagTelemetryCount) is
    /// reserved — no other user tag may land inside it. A dedicated band
    /// (rather than fresh tags) keeps the telemetry exchange OFF the SPMD
    /// fresh-tag cursor, so enabling it cannot shift any collective's tag
    /// block — telemetry on/off stays bit-identical by construction.
    kTagTelemetryBase = 10'000,
};

/// Width of the telemetry tag band: one tag per ring round supports worlds
/// up to kTagTelemetryCount + 1 ranks.
inline constexpr int kTagTelemetryCount = 1024;

static_assert(kTagTelemetryBase + kTagTelemetryCount < kFreshTagBase,
              "telemetry band must stay below the fresh-tag base");
static_assert(kTagHeartbeat < kTagTelemetryBase &&
                  kTagReliableAck < kTagTelemetryBase &&
                  kTagReliablePull < kTagTelemetryBase &&
                  kTagMembershipJoin < kTagTelemetryBase &&
                  kTagMembershipView < kTagTelemetryBase,
              "point-to-point user tags must stay below the telemetry band");
static_assert(kTagPsPush < kFreshTagBase && kTagPsPull < kFreshTagBase &&
                  kTagTestData < kFreshTagBase && kTagTestAux < kFreshTagBase &&
                  kTagTestValue < kFreshTagBase && kTagBenchP2p < kFreshTagBase &&
                  kTagReliableData < kFreshTagBase && kTagHeartbeat < kFreshTagBase &&
                  kTagReliableAck < kFreshTagBase && kTagReliablePull < kFreshTagBase &&
                  kTagMembershipJoin < kFreshTagBase &&
                  kTagMembershipView < kFreshTagBase,
              "user tags must stay below the fresh-tag base");
static_assert(kTagPsPush >= 0, "user tags are non-negative");

static_assert(kFreshTagBase < kAsyncTagBase,
              "the blocking fresh-tag band must precede the async band");
static_assert(kAsyncTagBase < std::numeric_limits<int>::max(),
              "the async band must be non-empty");
static_assert(std::numeric_limits<int>::max() - kAsyncTagBase >= (1 << 30) - 1,
              "async band must be wide enough for deep per-handle tag blocks");

}  // namespace gtopk::comm
