#include "comm/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "comm/comm_error.hpp"
#include "util/log.hpp"

namespace gtopk::comm {

namespace {

using Clock = std::chrono::steady_clock;

// Bootstrap hello: {magic, rank, advertised listen port}, little-endian.
constexpr std::uint32_t kHelloMagic = 0x4754504Cu;  // "GTPL"
constexpr std::size_t kHelloBytes = 12;

// Address-map entry per rank: {IPv4 (network order), port}, 8 bytes.
constexpr std::size_t kAddrBytes = 8;

[[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("TcpTransport: " + what +
                             (errno ? std::string(": ") + std::strerror(errno)
                                    : std::string()));
}

void put_u32(unsigned char* p, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint32_t get_u32(const unsigned char* p) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

double remaining_s(Clock::time_point deadline) {
    return std::chrono::duration<double>(deadline - Clock::now()).count();
}

/// Arm SO_RCVTIMEO so a blocking bootstrap read cannot outlive the budget —
/// the socket-timeout half of the deadline mapping.
void set_recv_timeout(int fd, double seconds) {
    if (seconds < 0.01) seconds = 0.01;
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void clear_recv_timeout(int fd) {
    timeval tv{};  // zero = wait forever
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void set_nodelay(int fd) {
    int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Blocking exact-length read; fails loudly on EOF, error, or timeout.
void read_exact(int fd, void* buf, std::size_t len, const char* what) {
    auto* p = static_cast<unsigned char*>(buf);
    while (len > 0) {
        const ssize_t n = ::recv(fd, p, len, 0);
        if (n > 0) {
            p += n;
            len -= static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        fail(std::string("bootstrap read (") + what + ") failed");
    }
}

void write_exact(int fd, const void* buf, std::size_t len, const char* what) {
    const auto* p = static_cast<const unsigned char*>(buf);
    while (len > 0) {
        const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
        if (n > 0) {
            p += n;
            len -= static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        fail(std::string("bootstrap write (") + what + ") failed");
    }
}

void send_hello(int fd, int rank, int port) {
    unsigned char hello[kHelloBytes];
    put_u32(hello + 0, kHelloMagic);
    put_u32(hello + 4, static_cast<std::uint32_t>(rank));
    put_u32(hello + 8, static_cast<std::uint32_t>(port));
    write_exact(fd, hello, sizeof(hello), "hello");
}

struct Hello {
    int rank = -1;
    int port = 0;
};

Hello read_hello(int fd, int world) {
    unsigned char hello[kHelloBytes];
    read_exact(fd, hello, sizeof(hello), "hello");
    if (get_u32(hello) != kHelloMagic) fail("bad hello magic");
    Hello h;
    h.rank = static_cast<int>(get_u32(hello + 4));
    h.port = static_cast<int>(get_u32(hello + 8));
    if (h.rank < 0 || h.rank >= world) fail("hello rank out of range");
    if (h.port < 0 || h.port > 65535) fail("hello port out of range");
    return h;
}

sockaddr_in resolve_ipv4(const std::string& host, int port) {
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    if (::getaddrinfo(host.c_str(), nullptr, &hints, &res) != 0 || !res) {
        errno = 0;
        fail("cannot resolve rendezvous host '" + host + "'");
    }
    sockaddr_in addr = *reinterpret_cast<sockaddr_in*>(res->ai_addr);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::freeaddrinfo(res);
    return addr;
}

int listen_on(std::uint16_t port, int backlog) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) fail("socket");
    int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
        ::close(fd);
        fail("bind port " + std::to_string(port));
    }
    if (::listen(fd, backlog) < 0) {
        ::close(fd);
        fail("listen");
    }
    return fd;
}

int bound_port(int fd) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
        fail("getsockname");
    }
    return static_cast<int>(ntohs(addr.sin_port));
}

/// Connect with retry until `deadline`: peers race the listener's startup,
/// so refused/unreachable attempts back off briefly and try again.
int connect_retry(const sockaddr_in& addr, Clock::time_point deadline,
                  const std::string& who) {
    for (;;) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) fail("socket");
        if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
            return fd;
        }
        ::close(fd);
        if (remaining_s(deadline) <= 0.0) {
            errno = 0;
            fail("connect to " + who + " timed out");
        }
        ::usleep(50 * 1000);
    }
}

int accept_with_deadline(int listen_fd, Clock::time_point deadline,
                         const char* who) {
    for (;;) {
        pollfd pfd{listen_fd, POLLIN, 0};
        const double left = remaining_s(deadline);
        if (left <= 0.0) {
            errno = 0;
            fail(std::string("bootstrap accept (") + who + ") timed out");
        }
        const int rc = ::poll(&pfd, 1, static_cast<int>(left * 1000.0) + 1);
        if (rc < 0 && errno == EINTR) continue;
        if (rc < 0) fail("poll");
        if (rc == 0) continue;
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED) continue;
            fail("accept");
        }
        return fd;
    }
}

}  // namespace

std::optional<TcpConfig> TcpTransport::config_from_env() {
    const char* rank = std::getenv("GTOPK_RANK");
    const char* world = std::getenv("GTOPK_WORLD_SIZE");
    const char* rendezvous = std::getenv("GTOPK_RENDEZVOUS");
    if (!rank || !world || !rendezvous) return std::nullopt;
    TcpConfig cfg;
    cfg.rank = std::atoi(rank);
    cfg.world_size = std::atoi(world);
    const std::string rv = rendezvous;
    const std::size_t colon = rv.rfind(':');
    if (colon == std::string::npos) {
        throw std::invalid_argument(
            "GTOPK_RENDEZVOUS must be host:port, got '" + rv + "'");
    }
    cfg.rendezvous_host = rv.substr(0, colon);
    cfg.rendezvous_port = std::atoi(rv.c_str() + colon + 1);
    return cfg;
}

TcpTransport::TcpTransport(const TcpConfig& config)
    : rank_(config.rank),
      world_(config.world_size),
      max_payload_(config.max_frame_payload) {
    if (world_ <= 0) throw std::invalid_argument("TcpTransport: world_size <= 0");
    if (rank_ < 0 || rank_ >= world_) {
        throw std::invalid_argument("TcpTransport: rank outside world");
    }
    if (config.rendezvous_port <= 0 || config.rendezvous_port > 65535) {
        throw std::invalid_argument("TcpTransport: bad rendezvous port");
    }
    peer_fds_.assign(static_cast<std::size_t>(world_), -1);
    decoders_.reserve(static_cast<std::size_t>(world_));
    for (int r = 0; r < world_; ++r) {
        decoders_.emplace_back(max_payload_);
    }
    send_mutexes_ = std::make_unique<std::mutex[]>(static_cast<std::size_t>(world_));
    peer_alive_ =
        std::make_unique<std::atomic<bool>[]>(static_cast<std::size_t>(world_));
    for (int r = 0; r < world_; ++r) peer_alive_[static_cast<std::size_t>(r)] = true;

    if (::pipe(wake_pipe_) < 0) fail("pipe");
    // Non-blocking read end: the receiver drains wakeup bytes without ever
    // blocking inside the drain loop.
    (void)::fcntl(wake_pipe_[0], F_SETFL, O_NONBLOCK);

    try {
        bootstrap(config);
    } catch (...) {
        for (int fd : peer_fds_) {
            if (fd >= 0) ::close(fd);
        }
        ::close(wake_pipe_[0]);
        ::close(wake_pipe_[1]);
        throw;
    }

    running_.store(true, std::memory_order_release);
    receiver_ = std::thread([this] { receiver_loop(); });
}

void TcpTransport::bootstrap(const TcpConfig& config) {
    const auto deadline =
        Clock::now() +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(config.connect_timeout_s));
    if (world_ == 1) return;  // a single-rank world has no wire

    std::vector<std::uint32_t> peer_ip(static_cast<std::size_t>(world_), 0);
    std::vector<int> peer_port(static_cast<std::size_t>(world_), 0);

    if (rank_ == 0) {
        const int rendezvous_fd =
            listen_on(static_cast<std::uint16_t>(config.rendezvous_port), world_);
        // Phase 1: every peer dials in, introduces itself, advertises its
        // mesh listen port. The connection itself becomes the permanent
        // rank0<->peer link.
        for (int i = 1; i < world_; ++i) {
            const int fd = accept_with_deadline(rendezvous_fd, deadline, "rendezvous");
            set_recv_timeout(fd, remaining_s(deadline));
            const Hello h = read_hello(fd, world_);
            if (h.rank == 0 || peer_fds_[static_cast<std::size_t>(h.rank)] >= 0) {
                ::close(fd);
                ::close(rendezvous_fd);
                errno = 0;
                fail("duplicate rendezvous hello from rank " +
                     std::to_string(h.rank));
            }
            sockaddr_in peer{};
            socklen_t len = sizeof(peer);
            if (::getpeername(fd, reinterpret_cast<sockaddr*>(&peer), &len) < 0) {
                ::close(fd);
                ::close(rendezvous_fd);
                fail("getpeername");
            }
            peer_fds_[static_cast<std::size_t>(h.rank)] = fd;
            peer_ip[static_cast<std::size_t>(h.rank)] = peer.sin_addr.s_addr;
            peer_port[static_cast<std::size_t>(h.rank)] = h.port;
        }
        ::close(rendezvous_fd);
        // Phase 2: publish the address map so peers can mesh directly.
        std::vector<unsigned char> map(static_cast<std::size_t>(world_) * kAddrBytes);
        for (int r = 0; r < world_; ++r) {
            put_u32(map.data() + static_cast<std::size_t>(r) * kAddrBytes,
                    peer_ip[static_cast<std::size_t>(r)]);
            put_u32(map.data() + static_cast<std::size_t>(r) * kAddrBytes + 4,
                    static_cast<std::uint32_t>(peer_port[static_cast<std::size_t>(r)]));
        }
        for (int r = 1; r < world_; ++r) {
            write_exact(peer_fds_[static_cast<std::size_t>(r)], map.data(),
                        map.size(), "address map");
        }
    } else {
        // Mesh listener first, so the advertised port is live before any
        // peer learns it from the map.
        const int listen_fd = listen_on(0, world_);
        const int my_port = bound_port(listen_fd);

        const sockaddr_in rendezvous =
            resolve_ipv4(config.rendezvous_host, config.rendezvous_port);
        const int fd0 = connect_retry(rendezvous, deadline, "rendezvous");
        send_hello(fd0, rank_, my_port);
        set_recv_timeout(fd0, remaining_s(deadline));
        std::vector<unsigned char> map(static_cast<std::size_t>(world_) * kAddrBytes);
        read_exact(fd0, map.data(), map.size(), "address map");
        peer_fds_[0] = fd0;
        for (int r = 0; r < world_; ++r) {
            peer_ip[static_cast<std::size_t>(r)] =
                get_u32(map.data() + static_cast<std::size_t>(r) * kAddrBytes);
            peer_port[static_cast<std::size_t>(r)] = static_cast<int>(
                get_u32(map.data() + static_cast<std::size_t>(r) * kAddrBytes + 4));
        }
        // Phase 3: complete the mesh — dial every lower peer, accept every
        // higher one (a fixed orientation, so each pair meets exactly once).
        for (int r = 1; r < rank_; ++r) {
            sockaddr_in addr{};
            addr.sin_family = AF_INET;
            addr.sin_addr.s_addr = peer_ip[static_cast<std::size_t>(r)];
            addr.sin_port = htons(static_cast<std::uint16_t>(
                peer_port[static_cast<std::size_t>(r)]));
            const int fd = connect_retry(addr, deadline, "rank " + std::to_string(r));
            send_hello(fd, rank_, my_port);
            peer_fds_[static_cast<std::size_t>(r)] = fd;
        }
        for (int i = rank_ + 1; i < world_; ++i) {
            const int fd = accept_with_deadline(listen_fd, deadline, "mesh");
            set_recv_timeout(fd, remaining_s(deadline));
            const Hello h = read_hello(fd, world_);
            if (h.rank <= rank_ || peer_fds_[static_cast<std::size_t>(h.rank)] >= 0) {
                ::close(fd);
                ::close(listen_fd);
                errno = 0;
                fail("unexpected mesh hello from rank " + std::to_string(h.rank));
            }
            peer_fds_[static_cast<std::size_t>(h.rank)] = fd;
        }
        ::close(listen_fd);
    }

    for (int r = 0; r < world_; ++r) {
        const int fd = peer_fds_[static_cast<std::size_t>(r)];
        if (fd < 0) continue;
        set_nodelay(fd);
        clear_recv_timeout(fd);  // the receiver thread's poll() paces reads
    }
    util::log_info("tcp rank " + std::to_string(rank_) + "/" +
                   std::to_string(world_) + ": mesh up");
}

TcpTransport::~TcpTransport() { shutdown(); }

void TcpTransport::require_local(int rank, const char* who) const {
    if (rank != rank_) {
        throw std::logic_error(std::string("TcpTransport::") + who +
                               ": rank " + std::to_string(rank) +
                               " is not local (this process hosts rank " +
                               std::to_string(rank_) + ")");
    }
}

void TcpTransport::deliver(int dst, Message msg) {
    if (dst < 0 || dst >= world_) {
        throw std::out_of_range("TcpTransport::deliver: bad destination");
    }
    if (dst == rank_) {
        mailbox_.push(std::move(msg));
        return;
    }
    if (!peer_alive_[static_cast<std::size_t>(dst)].load(std::memory_order_acquire)) {
        throw CommError(CommErrorKind::RankKilled, rank_, dst, msg.tag, 0.0);
    }
    std::vector<std::byte> frame;
    tcp::encode_frame(msg, dst, frame, max_payload_);

    std::lock_guard<std::mutex> lock(send_mutexes_[static_cast<std::size_t>(dst)]);
    const int fd = peer_fds_[static_cast<std::size_t>(dst)];
    const std::byte* p = frame.data();
    std::size_t left = frame.size();
    while (left > 0) {
        const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
        if (n > 0) {
            p += n;
            left -= static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        // Broken pipe / reset: the peer is gone. Type the failure instead
        // of letting every later exchange rediscover it.
        drop_peer(dst);
        throw CommError(CommErrorKind::RankKilled, rank_, dst, msg.tag, 0.0);
    }
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
}

Message TcpTransport::receive(int rank, int source, int tag) {
    require_local(rank, "receive");
    return mailbox_.pop(source, tag);
}

std::optional<Message> TcpTransport::try_receive(int rank, int source, int tag) {
    require_local(rank, "try_receive");
    return mailbox_.try_pop(source, tag);
}

std::optional<Message> TcpTransport::receive_for(int rank, int source, int tag,
                                                 double timeout_s) {
    require_local(rank, "receive_for");
    if (timeout_s <= 0.0) return mailbox_.pop(source, tag);
    // The host-clock deadline maps onto the mailbox's condition-variable
    // wait; the receiver thread's socket timeouts keep frames flowing into
    // it independent of this wait.
    return mailbox_.pop_for(
        source, tag,
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::duration<double>(timeout_s)));
}

std::optional<Message> TcpTransport::receive_for_virtual(int rank, int source,
                                                         int tag,
                                                         double max_arrival_s,
                                                         double host_grace_s) {
    require_local(rank, "receive_for_virtual");
    return mailbox_.pop_for_virtual(
        source, tag, max_arrival_s,
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::duration<double>(host_grace_s)));
}

void TcpTransport::begin_epoch(int rank, int epoch) {
    require_local(rank, "begin_epoch");
    mailbox_.set_min_epoch(epoch);
}

bool TcpTransport::rank_alive(int rank) const {
    if (rank < 0 || rank >= world_) return false;
    if (rank == rank_) return true;
    return peer_alive_[static_cast<std::size_t>(rank)].load(std::memory_order_acquire);
}

std::size_t TcpTransport::pending_with_tag_at_least(int rank, int min_tag) const {
    if (rank != rank_) return 0;  // other ranks' queues live in other processes
    return mailbox_.count_tag_at_least(min_tag);
}

void TcpTransport::drop_peer(int peer) {
    bool was_alive =
        peer_alive_[static_cast<std::size_t>(peer)].exchange(false,
                                                            std::memory_order_acq_rel);
    if (!was_alive) return;
    // Shut the socket down but do NOT close the fd here: deliver() and the
    // receiver thread may still hold it, and closing would race fd reuse.
    // All fds are closed exactly once, in shutdown().
    const int fd = peer_fds_[static_cast<std::size_t>(peer)];
    if (fd >= 0) (void)::shutdown(fd, SHUT_RDWR);
    util::log_info("tcp rank " + std::to_string(rank_) + ": peer " +
                   std::to_string(peer) + " disconnected");
}

void TcpTransport::receiver_loop() {
    std::vector<std::byte> buf(64 * 1024);
    std::vector<pollfd> pfds;
    std::vector<int> pfd_rank;
    while (running_.load(std::memory_order_acquire)) {
        pfds.clear();
        pfd_rank.clear();
        pfds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
        pfd_rank.push_back(-1);
        for (int r = 0; r < world_; ++r) {
            const int fd = peer_fds_[static_cast<std::size_t>(r)];
            if (fd < 0 ||
                !peer_alive_[static_cast<std::size_t>(r)].load(
                    std::memory_order_acquire)) {
                continue;
            }
            pfds.push_back(pollfd{fd, POLLIN, 0});
            pfd_rank.push_back(r);
        }
        const int rc =
            ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), /*ms=*/100);
        if (rc < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if (rc == 0) continue;
        if (pfds[0].revents != 0) {
            char drain[16];
            while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
            }
            continue;  // re-check running_
        }
        for (std::size_t i = 1; i < pfds.size(); ++i) {
            if (pfds[i].revents == 0) continue;
            const int peer = pfd_rank[i];
            const ssize_t n = ::recv(pfds[i].fd, buf.data(), buf.size(), 0);
            if (n > 0) {
                auto& decoder = decoders_[static_cast<std::size_t>(peer)];
                try {
                    decoder.feed(
                        std::span<const std::byte>(buf.data(),
                                                   static_cast<std::size_t>(n)));
                    while (auto frame = decoder.next()) {
                        if (frame->dst != rank_ || frame->msg.source != peer) {
                            // Misrouted or spoofed: the link is not
                            // trustworthy; reject it wholesale.
                            frames_rejected_.fetch_add(1, std::memory_order_relaxed);
                            drop_peer(peer);
                            break;
                        }
                        frames_received_.fetch_add(1, std::memory_order_relaxed);
                        mailbox_.push(std::move(frame->msg));
                    }
                } catch (const tcp::FrameError& e) {
                    frames_rejected_.fetch_add(1, std::memory_order_relaxed);
                    util::log_warn("tcp rank " + std::to_string(rank_) +
                                   ": dropping peer " + std::to_string(peer) +
                                   ": " + e.what());
                    drop_peer(peer);
                }
            } else if (n == 0) {
                // EOF. Mid-frame is a crash; a frame boundary is a clean
                // exit — either way the peer is gone.
                if (decoders_[static_cast<std::size_t>(peer)].mid_frame()) {
                    util::log_warn("tcp rank " + std::to_string(rank_) +
                                   ": peer " + std::to_string(peer) +
                                   " disconnected mid-frame");
                }
                drop_peer(peer);
            } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
                drop_peer(peer);
            }
        }
    }
}

void TcpTransport::shutdown() {
    std::call_once(shutdown_once_, [this] {
        running_.store(false, std::memory_order_release);
        if (wake_pipe_[1] >= 0) {
            const char byte = 1;
            (void)!::write(wake_pipe_[1], &byte, 1);
        }
        if (receiver_.joinable()) receiver_.join();
        for (int& fd : peer_fds_) {
            if (fd >= 0) {
                ::close(fd);
                fd = -1;
            }
        }
        if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
        if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
        wake_pipe_[0] = wake_pipe_[1] = -1;
        mailbox_.close();
    });
}

}  // namespace gtopk::comm
