#include "comm/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "comm/comm_error.hpp"
#include "util/log.hpp"

namespace gtopk::comm {

namespace {

using Clock = std::chrono::steady_clock;

// Bootstrap hello: {magic, rank, advertised listen port}, little-endian.
constexpr std::uint32_t kHelloMagic = 0x4754504Cu;  // "GTPL"
constexpr std::size_t kHelloBytes = 12;

// Session-resume handshake (post-bootstrap, on the persistent listeners):
// RESUME {magic, dialer rank, proposed session} and its confirmation
// RESUME_OK {magic, acceptor rank, accepted session}, 16 bytes each.
constexpr std::uint32_t kResumeMagic = 0x4754524Du;     // "GTRM"
constexpr std::uint32_t kResumeAckMagic = 0x4754524Eu;  // "GTRN"
constexpr std::size_t kResumeBytes = 16;

// Address-map entry per rank: {IPv4 (network order), port}, 8 bytes.
constexpr std::size_t kAddrBytes = 8;

// Bound on one reconnect dial's connect() wait; the FSM's backoff schedule
// paces attempts, this only keeps a single attempt from monopolizing the
// dialer thread.
constexpr int kDialConnectMs = 300;
// Handshake reads (RESUME / RESUME_OK) are tiny and sent immediately after
// connect; anything slower than this is a broken peer.
constexpr double kHandshakeTimeoutS = 1.0;

[[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("TcpTransport: " + what +
                             (errno ? std::string(": ") + std::strerror(errno)
                                    : std::string()));
}

void put_u32(unsigned char* p, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint32_t get_u32(const unsigned char* p) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

void put_u64(unsigned char* p, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint64_t get_u64(const unsigned char* p) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

double remaining_s(Clock::time_point deadline) {
    return std::chrono::duration<double>(deadline - Clock::now()).count();
}

Clock::duration to_duration(double seconds) {
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(seconds));
}

/// Arm SO_RCVTIMEO so a blocking bootstrap/handshake read cannot outlive
/// its budget — the socket-timeout half of the deadline mapping.
void set_recv_timeout(int fd, double seconds) {
    if (seconds < 0.01) seconds = 0.01;
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void clear_recv_timeout(int fd) {
    timeval tv{};  // zero = wait forever
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void set_nodelay(int fd) {
    int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

enum class IoResult { kOk, kTimeout, kClosed };

/// Exact-length read that reports instead of throwing, so call sites can
/// raise a TYPED error naming the peer (the bootstrap contract) or treat
/// the failure as a link event (the resume handshake).
IoResult read_full(int fd, void* buf, std::size_t len) {
    auto* p = static_cast<unsigned char*>(buf);
    while (len > 0) {
        const ssize_t n = ::recv(fd, p, len, 0);
        if (n > 0) {
            p += n;
            len -= static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            return IoResult::kTimeout;  // SO_RCVTIMEO expired
        }
        return IoResult::kClosed;  // EOF or hard error: the peer is gone
    }
    return IoResult::kOk;
}

bool write_full(int fd, const void* buf, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(buf);
    while (len > 0) {
        const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
        if (n > 0) {
            p += n;
            len -= static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        return false;
    }
    return true;
}

void send_hello(int fd, int rank, int port, int peer, int self) {
    unsigned char hello[kHelloBytes];
    put_u32(hello + 0, kHelloMagic);
    put_u32(hello + 4, static_cast<std::uint32_t>(rank));
    put_u32(hello + 8, static_cast<std::uint32_t>(port));
    if (!write_full(fd, hello, sizeof(hello))) {
        // The peer accepted our connect but vanished before reading the
        // hello: it died mid-bootstrap.
        throw CommError(CommErrorKind::RankKilled, self, peer, -1, 0.0);
    }
}

struct Hello {
    int rank = -1;
    int port = 0;
};

enum class HelloRead {
    kOk,
    kTimeout,  // peer connected but never completed the hello
    kClosed,   // peer died after connecting
    kResume,   // early session-resume dial racing our bootstrap tail
    kBad,      // malformed
};

/// Read one hello, distinguishing a RESUME frame: a higher rank that
/// finished ITS bootstrap, lost a link, and re-dialed while this rank was
/// still accepting the rest of the mesh. Such a dial is closed here and
/// retried by the peer's backoff schedule once this rank's receiver is
/// live.
HelloRead read_hello2(int fd, int world, Hello& out) {
    unsigned char head[4];
    IoResult r = read_full(fd, head, sizeof(head));
    if (r == IoResult::kTimeout) return HelloRead::kTimeout;
    if (r == IoResult::kClosed) return HelloRead::kClosed;
    const std::uint32_t magic = get_u32(head);
    if (magic == kResumeMagic) {
        unsigned char rest[kResumeBytes - 4];
        (void)read_full(fd, rest, sizeof(rest));
        return HelloRead::kResume;
    }
    if (magic != kHelloMagic) return HelloRead::kBad;
    unsigned char rest[kHelloBytes - 4];
    r = read_full(fd, rest, sizeof(rest));
    if (r == IoResult::kTimeout) return HelloRead::kTimeout;
    if (r == IoResult::kClosed) return HelloRead::kClosed;
    out.rank = static_cast<int>(get_u32(rest + 0));
    out.port = static_cast<int>(get_u32(rest + 4));
    if (out.rank < 0 || out.rank >= world) return HelloRead::kBad;
    if (out.port < 0 || out.port > 65535) return HelloRead::kBad;
    return HelloRead::kOk;
}

sockaddr_in resolve_ipv4(const std::string& host, int port) {
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    if (::getaddrinfo(host.c_str(), nullptr, &hints, &res) != 0 || !res) {
        errno = 0;
        fail("cannot resolve rendezvous host '" + host + "'");
    }
    sockaddr_in addr = *reinterpret_cast<sockaddr_in*>(res->ai_addr);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::freeaddrinfo(res);
    return addr;
}

int listen_on(std::uint16_t port, int backlog) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) fail("socket");
    int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
        ::close(fd);
        fail("bind port " + std::to_string(port));
    }
    if (::listen(fd, backlog) < 0) {
        ::close(fd);
        fail("listen");
    }
    return fd;
}

int bound_port(int fd) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
        fail("getsockname");
    }
    return static_cast<int>(ntohs(addr.sin_port));
}

/// Connect with retry until `deadline`: peers race the listener's startup,
/// so refused/unreachable attempts back off briefly and try again.
/// Returns -1 on deadline expiry so the caller can raise a typed error
/// naming the peer it could not reach.
int connect_retry(const sockaddr_in& addr, Clock::time_point deadline) {
    for (;;) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) fail("socket");
        if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
            return fd;
        }
        ::close(fd);
        if (remaining_s(deadline) <= 0.0) return -1;
        ::usleep(50 * 1000);
    }
}

/// Accept with deadline; -1 on expiry (caller raises the typed error).
int accept_with_deadline(int listen_fd, Clock::time_point deadline) {
    for (;;) {
        pollfd pfd{listen_fd, POLLIN, 0};
        const double left = remaining_s(deadline);
        if (left <= 0.0) return -1;
        const int rc = ::poll(&pfd, 1, static_cast<int>(left * 1000.0) + 1);
        if (rc < 0 && errno == EINTR) continue;
        if (rc < 0) fail("poll");
        if (rc == 0) continue;
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED) continue;
            fail("accept");
        }
        return fd;
    }
}

constexpr int kPhaseUp = static_cast<int>(fsm::LinkPhase::kUp);
constexpr int kPhaseDown = static_cast<int>(fsm::LinkPhase::kDown);
constexpr int kPhaseDead = static_cast<int>(fsm::LinkPhase::kDead);

}  // namespace

std::optional<TcpConfig> TcpTransport::config_from_env() {
    const char* rank = std::getenv("GTOPK_RANK");
    const char* world = std::getenv("GTOPK_WORLD_SIZE");
    const char* rendezvous = std::getenv("GTOPK_RENDEZVOUS");
    if (!rank || !world || !rendezvous) return std::nullopt;
    TcpConfig cfg;
    cfg.rank = std::atoi(rank);
    cfg.world_size = std::atoi(world);
    const std::string rv = rendezvous;
    const std::size_t colon = rv.rfind(':');
    if (colon == std::string::npos) {
        throw std::invalid_argument(
            "GTOPK_RENDEZVOUS must be host:port, got '" + rv + "'");
    }
    cfg.rendezvous_host = rv.substr(0, colon);
    cfg.rendezvous_port = std::atoi(rv.c_str() + colon + 1);
    return cfg;
}

TcpTransport::TcpTransport(const TcpConfig& config)
    : rank_(config.rank),
      world_(config.world_size),
      max_payload_(config.max_frame_payload),
      reconnect_(config.reconnect),
      faults_(config.socket_faults) {
    if (world_ <= 0) throw std::invalid_argument("TcpTransport: world_size <= 0");
    if (rank_ < 0 || rank_ >= world_) {
        throw std::invalid_argument("TcpTransport: rank outside world");
    }
    if (config.rendezvous_port <= 0 || config.rendezvous_port > 65535) {
        throw std::invalid_argument("TcpTransport: bad rendezvous port");
    }
    const auto n = static_cast<std::size_t>(world_);
    peer_fds_ = std::make_unique<std::atomic<int>[]>(n);
    for (std::size_t r = 0; r < n; ++r) peer_fds_[r] = -1;
    decoders_.reserve(n);
    for (int r = 0; r < world_; ++r) decoders_.emplace_back(max_payload_);
    send_mutexes_ = std::make_unique<std::mutex[]>(n);
    phase_ = std::make_unique<std::atomic<int>[]>(n);
    for (std::size_t r = 0; r < n; ++r) phase_[r] = kPhaseUp;
    links_.resize(n);
    peer_ip_.assign(n, 0);
    peer_port_.assign(n, 0);
    fault_ord_.assign(n, 0);
    fault_rng_.reserve(n);
    const util::Xoshiro256 root(faults_.seed);
    for (int r = 0; r < world_; ++r) {
        fault_rng_.push_back(root.fork(
            (static_cast<std::uint64_t>(rank_) << 20) ^
            static_cast<std::uint64_t>(r)));
    }

    if (::pipe(wake_pipe_) < 0) fail("pipe");
    // Non-blocking read end: the receiver drains wakeup bytes without ever
    // blocking inside the drain loop.
    (void)::fcntl(wake_pipe_[0], F_SETFL, O_NONBLOCK);

    try {
        bootstrap(config);
    } catch (...) {
        for (int r = 0; r < world_; ++r) {
            const int fd = peer_fds_[static_cast<std::size_t>(r)].load();
            if (fd >= 0) ::close(fd);
        }
        if (listen_fd_ >= 0) ::close(listen_fd_);
        ::close(wake_pipe_[0]);
        ::close(wake_pipe_[1]);
        throw;
    }

    running_.store(true, std::memory_order_release);
    receiver_ = std::thread([this] { receiver_loop(); });
    if (rank_ > 0 && world_ > 1) {
        dialer_ = std::thread([this] { dialer_loop(); });
    }
}

void TcpTransport::bootstrap(const TcpConfig& config) {
    const double budget = config.connect_timeout_s;
    const auto deadline = Clock::now() + to_duration(budget);
    if (world_ == 1) return;  // a single-rank world has no wire

    // Lowest rank we are still waiting on — the name a typed bootstrap
    // timeout carries, so a mid-bootstrap death points every survivor at
    // the same missing peer.
    const auto lowest_missing = [this](int from) {
        for (int r = from; r < world_; ++r) {
            if (r != rank_ && peer_fds_[static_cast<std::size_t>(r)].load() < 0) {
                return r;
            }
        }
        return -1;
    };

    if (rank_ == 0) {
        // The rendezvous listener stays open for the process's lifetime:
        // it doubles as the session-resume listener peers re-dial.
        listen_fd_ =
            listen_on(static_cast<std::uint16_t>(config.rendezvous_port), world_);
        // Phase 1: every peer dials in, introduces itself, advertises its
        // mesh listen port. The connection itself becomes the permanent
        // rank0<->peer link.
        int accepted = 0;
        while (accepted < world_ - 1) {
            const int fd = accept_with_deadline(listen_fd_, deadline);
            if (fd < 0) {
                errno = 0;
                throw CommError(CommErrorKind::RecvTimeout, rank_,
                                lowest_missing(1), -1, budget);
            }
            set_recv_timeout(fd, remaining_s(deadline));
            Hello h;
            switch (read_hello2(fd, world_, h)) {
                case HelloRead::kOk:
                    break;
                case HelloRead::kResume:
                    ::close(fd);  // early re-dial; its backoff will retry
                    continue;
                case HelloRead::kTimeout:
                    ::close(fd);
                    throw CommError(CommErrorKind::RecvTimeout, rank_,
                                    lowest_missing(1), -1, budget);
                case HelloRead::kClosed:
                    // A peer connected and died before identifying itself.
                    ::close(fd);
                    throw CommError(CommErrorKind::RankKilled, rank_,
                                    lowest_missing(1), -1, 0.0);
                case HelloRead::kBad:
                    ::close(fd);
                    errno = 0;
                    fail("malformed rendezvous hello");
            }
            if (h.rank == 0 ||
                peer_fds_[static_cast<std::size_t>(h.rank)].load() >= 0) {
                ::close(fd);
                errno = 0;
                fail("duplicate rendezvous hello from rank " +
                     std::to_string(h.rank));
            }
            sockaddr_in peer{};
            socklen_t len = sizeof(peer);
            if (::getpeername(fd, reinterpret_cast<sockaddr*>(&peer), &len) < 0) {
                ::close(fd);
                fail("getpeername");
            }
            peer_fds_[static_cast<std::size_t>(h.rank)] = fd;
            peer_ip_[static_cast<std::size_t>(h.rank)] = peer.sin_addr.s_addr;
            peer_port_[static_cast<std::size_t>(h.rank)] = h.port;
            ++accepted;
        }
        // Phase 2: publish the address map so peers can mesh directly.
        std::vector<unsigned char> map(static_cast<std::size_t>(world_) * kAddrBytes);
        for (int r = 0; r < world_; ++r) {
            put_u32(map.data() + static_cast<std::size_t>(r) * kAddrBytes,
                    peer_ip_[static_cast<std::size_t>(r)]);
            put_u32(map.data() + static_cast<std::size_t>(r) * kAddrBytes + 4,
                    static_cast<std::uint32_t>(peer_port_[static_cast<std::size_t>(r)]));
        }
        for (int r = 1; r < world_; ++r) {
            if (!write_full(peer_fds_[static_cast<std::size_t>(r)].load(),
                            map.data(), map.size())) {
                // The peer introduced itself and died before the map: name it.
                errno = 0;
                throw CommError(CommErrorKind::RankKilled, rank_, r, -1, 0.0);
            }
        }
    } else {
        // Mesh listener first, so the advertised port is live before any
        // peer learns it from the map. It stays open as the resume listener.
        listen_fd_ = listen_on(0, world_);
        const int my_port = bound_port(listen_fd_);

        const sockaddr_in rendezvous =
            resolve_ipv4(config.rendezvous_host, config.rendezvous_port);
        const int fd0 = connect_retry(rendezvous, deadline);
        if (fd0 < 0) {
            errno = 0;
            throw CommError(CommErrorKind::RecvTimeout, rank_, 0, -1, budget);
        }
        send_hello(fd0, rank_, my_port, /*peer=*/0, /*self=*/rank_);
        set_recv_timeout(fd0, remaining_s(deadline));
        std::vector<unsigned char> map(static_cast<std::size_t>(world_) * kAddrBytes);
        switch (read_full(fd0, map.data(), map.size())) {
            case IoResult::kOk:
                break;
            case IoResult::kTimeout:
                ::close(fd0);
                errno = 0;
                throw CommError(CommErrorKind::RecvTimeout, rank_, 0, -1, budget);
            case IoResult::kClosed:
                // Rank 0 aborted its bootstrap (naming the true victim on
                // its side); this survivor names the edge it lost.
                ::close(fd0);
                errno = 0;
                throw CommError(CommErrorKind::RankKilled, rank_, 0, -1, 0.0);
        }
        peer_fds_[0] = fd0;
        for (int r = 0; r < world_; ++r) {
            peer_ip_[static_cast<std::size_t>(r)] =
                get_u32(map.data() + static_cast<std::size_t>(r) * kAddrBytes);
            peer_port_[static_cast<std::size_t>(r)] = static_cast<int>(
                get_u32(map.data() + static_cast<std::size_t>(r) * kAddrBytes + 4));
        }
        // Rank 0's map slot is empty (it never dials in): its redial
        // address is the rendezvous endpoint itself.
        peer_ip_[0] = rendezvous.sin_addr.s_addr;
        peer_port_[0] = config.rendezvous_port;
        // Phase 3: complete the mesh — dial every lower peer, accept every
        // higher one (a fixed orientation, so each pair meets exactly once;
        // the reconnect dialer reuses the same orientation).
        for (int r = 1; r < rank_; ++r) {
            sockaddr_in addr{};
            addr.sin_family = AF_INET;
            addr.sin_addr.s_addr = peer_ip_[static_cast<std::size_t>(r)];
            addr.sin_port = htons(static_cast<std::uint16_t>(
                peer_port_[static_cast<std::size_t>(r)]));
            const int fd = connect_retry(addr, deadline);
            if (fd < 0) {
                errno = 0;
                throw CommError(CommErrorKind::RecvTimeout, rank_, r, -1, budget);
            }
            send_hello(fd, rank_, my_port, /*peer=*/r, /*self=*/rank_);
            peer_fds_[static_cast<std::size_t>(r)] = fd;
        }
        int accepted = 0;
        while (accepted < world_ - rank_ - 1) {
            const int fd = accept_with_deadline(listen_fd_, deadline);
            if (fd < 0) {
                errno = 0;
                throw CommError(CommErrorKind::RecvTimeout, rank_,
                                lowest_missing(rank_ + 1), -1, budget);
            }
            set_recv_timeout(fd, remaining_s(deadline));
            Hello h;
            switch (read_hello2(fd, world_, h)) {
                case HelloRead::kOk:
                    break;
                case HelloRead::kResume:
                    ::close(fd);
                    continue;
                case HelloRead::kTimeout:
                    ::close(fd);
                    throw CommError(CommErrorKind::RecvTimeout, rank_,
                                    lowest_missing(rank_ + 1), -1, budget);
                case HelloRead::kClosed:
                    ::close(fd);
                    throw CommError(CommErrorKind::RankKilled, rank_,
                                    lowest_missing(rank_ + 1), -1, 0.0);
                case HelloRead::kBad:
                    ::close(fd);
                    errno = 0;
                    fail("malformed mesh hello");
            }
            if (h.rank <= rank_ ||
                peer_fds_[static_cast<std::size_t>(h.rank)].load() >= 0) {
                ::close(fd);
                errno = 0;
                fail("unexpected mesh hello from rank " + std::to_string(h.rank));
            }
            peer_fds_[static_cast<std::size_t>(h.rank)] = fd;
            ++accepted;
        }
    }

    for (int r = 0; r < world_; ++r) {
        const int fd = peer_fds_[static_cast<std::size_t>(r)].load();
        if (fd < 0) continue;
        set_nodelay(fd);
        clear_recv_timeout(fd);  // the receiver thread's poll() paces reads
    }
    util::log_info("tcp rank " + std::to_string(rank_) + "/" +
                   std::to_string(world_) + ": mesh up");
}

TcpTransport::~TcpTransport() { shutdown(); }

void TcpTransport::require_local(int rank, const char* who) const {
    if (rank != rank_) {
        throw std::logic_error(std::string("TcpTransport::") + who +
                               ": rank " + std::to_string(rank) +
                               " is not local (this process hosts rank " +
                               std::to_string(rank_) + ")");
    }
}

void TcpTransport::wake_receiver() {
    if (wake_pipe_[1] >= 0) {
        const char byte = 1;
        (void)!::write(wake_pipe_[1], &byte, 1);
    }
}

void TcpTransport::link_mark_down(int peer) {
    bool edge = false;
    {
        std::lock_guard<std::mutex> lock(links_mutex_);
        auto& link = links_[static_cast<std::size_t>(peer)];
        edge = fsm::link_down(link.st);
        if (edge) {
            link.down_since = Clock::now();
            link.next_dial = link.down_since;  // first dial immediately
            phase_[static_cast<std::size_t>(peer)].store(
                kPhaseDown, std::memory_order_release);
        }
    }
    if (!edge) return;
    // Shut the socket down but do NOT close the fd here: deliver() and the
    // receiver thread may still hold it, and closing would race fd reuse.
    // The receiver retires (closes) the fd of any non-up link.
    const int fd = peer_fds_[static_cast<std::size_t>(peer)].load();
    if (fd >= 0) (void)::shutdown(fd, SHUT_RDWR);
    util::log_info("tcp rank " + std::to_string(rank_) + ": link to peer " +
                   std::to_string(peer) + " down, reconnecting");
    wake_receiver();
}

void TcpTransport::link_mark_dead_locked(int peer) {
    phase_[static_cast<std::size_t>(peer)].store(kPhaseDead,
                                                 std::memory_order_release);
    util::log_warn("tcp rank " + std::to_string(rank_) + ": peer " +
                   std::to_string(peer) +
                   " declared dead (reconnect budget exhausted)");
    wake_receiver();
}

void TcpTransport::retire_fd(int peer) {
    std::lock_guard<std::mutex> lock(send_mutexes_[static_cast<std::size_t>(peer)]);
    const int fd = peer_fds_[static_cast<std::size_t>(peer)].exchange(-1);
    if (fd >= 0) ::close(fd);
    decoders_[static_cast<std::size_t>(peer)].reset();
}

void TcpTransport::install_fd(int peer, int fd, std::uint64_t session,
                              bool from_dial) {
    (void)from_dial;
    set_nodelay(fd);
    clear_recv_timeout(fd);
    (void)::fcntl(fd, F_SETFL, 0);  // the dial path used O_NONBLOCK
    int old = -1;
    {
        std::lock_guard<std::mutex> lock(
            send_mutexes_[static_cast<std::size_t>(peer)]);
        old = peer_fds_[static_cast<std::size_t>(peer)].exchange(fd);
    }
    if (old >= 0) ::close(old);
    decoders_[static_cast<std::size_t>(peer)].reset();
    bool up = false;
    {
        std::lock_guard<std::mutex> lock(links_mutex_);
        auto& link = links_[static_cast<std::size_t>(peer)];
        link.installing = false;
        fsm::link_established(link.st, session);
        if (link.st.phase == fsm::LinkPhase::kUp) {
            phase_[static_cast<std::size_t>(peer)].store(
                kPhaseUp, std::memory_order_release);
            reconnected_.push_back(peer);
            up = true;
        }
    }
    if (up) {
        reconnects_.fetch_add(1, std::memory_order_relaxed);
        util::log_info("tcp rank " + std::to_string(rank_) + ": peer " +
                       std::to_string(peer) + " session " +
                       std::to_string(session) + " resumed");
    }
    // A link that died while the handshake was in flight keeps phase_ at
    // kDead; the retire scan closes the freshly installed fd.
}

int TcpTransport::dial_resume(int peer, std::uint64_t proposal) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = peer_ip_[static_cast<std::size_t>(peer)];
    addr.sin_port =
        htons(static_cast<std::uint16_t>(peer_port_[static_cast<std::size_t>(peer)]));
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    (void)::fcntl(fd, F_SETFL, O_NONBLOCK);
    int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
        ::close(fd);
        return -1;
    }
    if (rc != 0) {
        pollfd pfd{fd, POLLOUT, 0};
        rc = ::poll(&pfd, 1, kDialConnectMs);
        if (rc <= 0) {
            ::close(fd);
            return -1;
        }
        int err = 0;
        socklen_t len = sizeof(err);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
            ::close(fd);
            return -1;
        }
    }
    (void)::fcntl(fd, F_SETFL, 0);
    unsigned char resume[kResumeBytes];
    put_u32(resume + 0, kResumeMagic);
    put_u32(resume + 4, static_cast<std::uint32_t>(rank_));
    put_u64(resume + 8, proposal);
    if (!write_full(fd, resume, sizeof(resume))) {
        ::close(fd);
        return -1;
    }
    set_recv_timeout(fd, kHandshakeTimeoutS);
    unsigned char ok[kResumeBytes];
    if (read_full(fd, ok, sizeof(ok)) != IoResult::kOk ||
        get_u32(ok + 0) != kResumeAckMagic ||
        get_u32(ok + 4) != static_cast<std::uint32_t>(peer) ||
        get_u64(ok + 8) != proposal) {
        ::close(fd);
        return -1;
    }
    return fd;
}

void TcpTransport::accept_resume() {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    set_recv_timeout(fd, kHandshakeTimeoutS);
    unsigned char hello[kResumeBytes];
    if (read_full(fd, hello, sizeof(hello)) != IoResult::kOk ||
        get_u32(hello + 0) != kResumeMagic) {
        ::close(fd);
        return;
    }
    const int peer = static_cast<int>(get_u32(hello + 4));
    const std::uint64_t proposal = get_u64(hello + 8);
    // Reconnects keep the bootstrap orientation: only a HIGHER rank dials.
    if (peer <= rank_ || peer >= world_) {
        ::close(fd);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(links_mutex_);
        if (fsm::link_resume(links_[static_cast<std::size_t>(peer)].st,
                             proposal) != fsm::ResumeVerdict::kAccept) {
            // Stale dial from an abandoned incarnation, or a dead link
            // nothing may resurrect: refuse by closing.
            ::close(fd);
            return;
        }
    }
    install_fd(peer, fd, proposal, /*from_dial=*/false);
    unsigned char ok[kResumeBytes];
    put_u32(ok + 0, kResumeAckMagic);
    put_u32(ok + 4, static_cast<std::uint32_t>(rank_));
    put_u64(ok + 8, proposal);
    bool sent = false;
    {
        std::lock_guard<std::mutex> lock(
            send_mutexes_[static_cast<std::size_t>(peer)]);
        sent = write_full(fd, ok, sizeof(ok));
    }
    if (!sent) link_mark_down(peer);
}

void TcpTransport::dialer_loop() {
    const auto patience = to_duration(reconnect_.give_up_after_s);
    while (running_.load(std::memory_order_acquire)) {
        ::usleep(5 * 1000);
        const auto now = Clock::now();
        for (int p = 0; p < rank_; ++p) {
            std::uint64_t proposal = 0;
            {
                std::lock_guard<std::mutex> lock(links_mutex_);
                auto& link = links_[static_cast<std::size_t>(p)];
                if (link.st.phase != fsm::LinkPhase::kDown || link.installing) {
                    continue;
                }
                if (now - link.down_since > patience) {
                    if (fsm::link_expire(link.st)) link_mark_dead_locked(p);
                    continue;
                }
                if (now < link.next_dial) continue;
                if (fsm::link_dial(link.st, reconnect_) ==
                    fsm::DialVerdict::kDead) {
                    link_mark_dead_locked(p);
                    continue;
                }
                proposal = fsm::link_propose(link.st);
                link.next_dial =
                    now + to_duration(fsm::link_backoff_s(link.st, reconnect_));
            }
            const int fd = dial_resume(p, proposal);
            if (fd < 0) continue;
            bool keep = false;
            {
                std::lock_guard<std::mutex> lock(links_mutex_);
                auto& link = links_[static_cast<std::size_t>(p)];
                if (link.st.phase != fsm::LinkPhase::kDead) {
                    link.installing = true;
                    installs_.push_back({p, fd, proposal});
                    keep = true;
                }
            }
            if (keep) {
                wake_receiver();
            } else {
                ::close(fd);
            }
        }
    }
}

void TcpTransport::deliver(int dst, Message msg) {
    if (dst < 0 || dst >= world_) {
        throw std::out_of_range("TcpTransport::deliver: bad destination");
    }
    if (dst == rank_) {
        mailbox_.push(std::move(msg));
        return;
    }
    const auto d = static_cast<std::size_t>(dst);
    if (phase_[d].load(std::memory_order_acquire) == kPhaseDead) {
        throw CommError(CommErrorKind::RankKilled, rank_, dst, msg.tag, 0.0);
    }
    std::vector<std::byte> frame;
    tcp::encode_frame(msg, dst, frame, max_payload_);

    std::lock_guard<std::mutex> lock(send_mutexes_[d]);
    const int fd = peer_fds_[d].load();
    if (fd < 0 || phase_[d].load(std::memory_order_acquire) != kPhaseUp) {
        // Link is mid-reconnect: the frame is LOST, deliberately and
        // silently — the wire ARQ above holds a pristine copy and replays
        // it the moment take_reconnected() reports the resume.
        return;
    }
    if (faults_.enabled() && (faults_.only_peer < 0 || faults_.only_peer == dst) &&
        (faults_.max_faults == 0 ||
         socket_faults_injected_.load(std::memory_order_relaxed) <
             faults_.max_faults)) {
        auto& rng = fault_rng_[d];
        const std::uint64_t ord = ++fault_ord_[d];
        if (faults_.stall_prob > 0.0 && rng.next_double() < faults_.stall_prob) {
            socket_faults_injected_.fetch_add(1, std::memory_order_relaxed);
            ::usleep(static_cast<useconds_t>(faults_.stall_s * 1e6));
        }
        if (faults_.kill_every_n != 0 && ord % faults_.kill_every_n == 0) {
            socket_faults_injected_.fetch_add(1, std::memory_order_relaxed);
            (void)::shutdown(fd, SHUT_RDWR);
            link_mark_down(dst);
            return;
        }
        if (faults_.truncate_every_n != 0 && ord % faults_.truncate_every_n == 0) {
            socket_faults_injected_.fetch_add(1, std::memory_order_relaxed);
            const std::size_t half = frame.size() / 2 > 0 ? frame.size() / 2 : 1;
            (void)write_full(fd, frame.data(), half);
            (void)::shutdown(fd, SHUT_RDWR);
            link_mark_down(dst);
            return;
        }
    }
    const std::byte* p = frame.data();
    std::size_t left = frame.size();
    while (left > 0) {
        const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
        if (n > 0) {
            p += n;
            left -= static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        // Broken pipe / reset: down the link and drop the frame. The
        // reconnect FSM decides whether the peer is gone for good; the ARQ
        // layer recovers the payload either way.
        link_mark_down(dst);
        return;
    }
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
}

Message TcpTransport::receive(int rank, int source, int tag) {
    require_local(rank, "receive");
    return mailbox_.pop(source, tag);
}

std::optional<Message> TcpTransport::try_receive(int rank, int source, int tag) {
    require_local(rank, "try_receive");
    return mailbox_.try_pop(source, tag);
}

std::optional<Message> TcpTransport::receive_for(int rank, int source, int tag,
                                                 double timeout_s) {
    require_local(rank, "receive_for");
    if (timeout_s <= 0.0) return mailbox_.pop(source, tag);
    // The host-clock deadline maps onto the mailbox's condition-variable
    // wait; the receiver thread's socket timeouts keep frames flowing into
    // it independent of this wait.
    return mailbox_.pop_for(
        source, tag,
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::duration<double>(timeout_s)));
}

std::optional<Message> TcpTransport::receive_for_virtual(int rank, int source,
                                                         int tag,
                                                         double max_arrival_s,
                                                         double host_grace_s) {
    require_local(rank, "receive_for_virtual");
    return mailbox_.pop_for_virtual(
        source, tag, max_arrival_s,
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::duration<double>(host_grace_s)));
}

void TcpTransport::begin_epoch(int rank, int epoch) {
    require_local(rank, "begin_epoch");
    mailbox_.set_min_epoch(epoch);
}

bool TcpTransport::rank_alive(int rank) const {
    if (rank < 0 || rank >= world_) return false;
    if (rank == rank_) return true;
    return phase_[static_cast<std::size_t>(rank)].load(
               std::memory_order_acquire) != kPhaseDead;
}

std::size_t TcpTransport::pending_with_tag_at_least(int rank, int min_tag) const {
    if (rank != rank_) return 0;  // other ranks' queues live in other processes
    return mailbox_.count_tag_at_least(min_tag);
}

std::vector<int> TcpTransport::take_reconnected(int rank) {
    require_local(rank, "take_reconnected");
    std::lock_guard<std::mutex> lock(links_mutex_);
    std::vector<int> out;
    out.swap(reconnected_);
    return out;
}

void TcpTransport::receiver_loop() {
    std::vector<std::byte> buf(64 * 1024);
    std::vector<pollfd> pfds;
    std::vector<int> pfd_rank;
    const auto patience = to_duration(reconnect_.give_up_after_s);
    while (running_.load(std::memory_order_acquire)) {
        // 1. Install handshake-complete connections the dialer handed over.
        std::vector<PendingInstall> installs;
        {
            std::lock_guard<std::mutex> lock(links_mutex_);
            installs.swap(installs_);
        }
        for (const auto& inst : installs) {
            install_fd(inst.peer, inst.fd, inst.session, /*from_dial=*/true);
        }
        // 2. Passive patience expiry: a downed link only the PEER can
        // re-dial (it is the higher rank) dies after the patience window.
        {
            std::lock_guard<std::mutex> lock(links_mutex_);
            const auto now = Clock::now();
            for (int r = rank_ + 1; r < world_; ++r) {
                auto& link = links_[static_cast<std::size_t>(r)];
                if (link.st.phase == fsm::LinkPhase::kDown &&
                    now - link.down_since > patience) {
                    if (fsm::link_expire(link.st)) link_mark_dead_locked(r);
                }
            }
        }
        // 3. Retire the fd of any link no longer up.
        for (int r = 0; r < world_; ++r) {
            const auto idx = static_cast<std::size_t>(r);
            if (r != rank_ &&
                phase_[idx].load(std::memory_order_acquire) != kPhaseUp &&
                peer_fds_[idx].load() >= 0) {
                retire_fd(r);
            }
        }
        // 4. Poll: wake pipe, resume listener, every up link.
        pfds.clear();
        pfd_rank.clear();
        pfds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
        pfd_rank.push_back(-1);
        if (listen_fd_ >= 0) {
            pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
            pfd_rank.push_back(-2);
        }
        for (int r = 0; r < world_; ++r) {
            const auto idx = static_cast<std::size_t>(r);
            const int fd = peer_fds_[idx].load();
            if (fd < 0 ||
                phase_[idx].load(std::memory_order_acquire) != kPhaseUp) {
                continue;
            }
            pfds.push_back(pollfd{fd, POLLIN, 0});
            pfd_rank.push_back(r);
        }
        const int rc =
            ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), /*ms=*/100);
        if (rc < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if (rc == 0) continue;
        if (pfds[0].revents != 0) {
            char drain[16];
            while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
            }
            continue;  // re-check running_ and re-scan link state
        }
        for (std::size_t i = 1; i < pfds.size(); ++i) {
            if (pfds[i].revents == 0) continue;
            if (pfd_rank[i] == -2) {
                accept_resume();
                continue;
            }
            const int peer = pfd_rank[i];
            const ssize_t n = ::recv(pfds[i].fd, buf.data(), buf.size(), 0);
            if (n > 0) {
                auto& decoder = decoders_[static_cast<std::size_t>(peer)];
                try {
                    decoder.feed(
                        std::span<const std::byte>(buf.data(),
                                                   static_cast<std::size_t>(n)));
                    while (auto frame = decoder.next()) {
                        if (frame->dst != rank_ || frame->msg.source != peer) {
                            // Misrouted or spoofed: the link is not
                            // trustworthy; tear it down wholesale.
                            frames_rejected_.fetch_add(1, std::memory_order_relaxed);
                            link_mark_down(peer);
                            break;
                        }
                        frames_received_.fetch_add(1, std::memory_order_relaxed);
                        mailbox_.push(std::move(frame->msg));
                    }
                } catch (const tcp::FrameError& e) {
                    frames_rejected_.fetch_add(1, std::memory_order_relaxed);
                    util::log_warn("tcp rank " + std::to_string(rank_) +
                                   ": downing link to peer " +
                                   std::to_string(peer) + ": " + e.what());
                    link_mark_down(peer);
                }
            } else if (n == 0) {
                // EOF. Mid-frame is a crash; a frame boundary is a clean
                // exit — either way the link is down and the reconnect FSM
                // decides whether the peer comes back.
                if (decoders_[static_cast<std::size_t>(peer)].mid_frame()) {
                    util::log_warn("tcp rank " + std::to_string(rank_) +
                                   ": peer " + std::to_string(peer) +
                                   " disconnected mid-frame");
                }
                link_mark_down(peer);
            } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
                link_mark_down(peer);
            }
        }
    }
}

void TcpTransport::shutdown() {
    std::call_once(shutdown_once_, [this] {
        running_.store(false, std::memory_order_release);
        wake_receiver();
        if (receiver_.joinable()) receiver_.join();
        if (dialer_.joinable()) dialer_.join();
        for (int r = 0; r < world_; ++r) {
            const int fd = peer_fds_[static_cast<std::size_t>(r)].exchange(-1);
            if (fd >= 0) ::close(fd);
        }
        for (const auto& inst : installs_) {
            if (inst.fd >= 0) ::close(inst.fd);
        }
        installs_.clear();
        if (listen_fd_ >= 0) {
            ::close(listen_fd_);
            listen_fd_ = -1;
        }
        if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
        if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
        wake_pipe_[0] = wake_pipe_[1] = -1;
        mailbox_.close();
    });
}

}  // namespace gtopk::comm
