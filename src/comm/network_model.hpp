// The alpha-beta (Hockney) cost model of a point-to-point message, the same
// model the paper uses throughout (Table I, Eqs. 5-7, Fig. 8).
//
// A transfer of n elements between two nodes costs
//     t = alpha + n * beta
// where alpha is the per-message startup latency and beta the per-element
// transmission time. The paper measures alpha = 0.436 ms and
// beta = 3.6e-5 ms per element on its 1 Gbps Ethernet cluster (Fig. 8);
// elements are 4 bytes (float32 gradients or int32 indices), which makes
// beta equivalent to ~111 MB/s — consistent with saturated 1GbE.
#pragma once

#include <cstdint>

namespace gtopk::comm {

struct NetworkModel {
    /// Per-message startup latency in seconds.
    double alpha_s = 0.436e-3;
    /// Per-element (4-byte word) transmission time in seconds.
    double beta_s = 3.6e-8;

    /// Time to move `bytes` bytes between two nodes.
    double transfer_time_s(std::uint64_t bytes) const {
        // beta is per 4-byte element; scale to bytes to stay exact for
        // payloads that are not multiples of 4.
        return alpha_s + static_cast<double>(bytes) * (beta_s / 4.0);
    }

    double transfer_time_elems(std::uint64_t elements) const {
        return alpha_s + static_cast<double>(elements) * beta_s;
    }

    /// The paper's measured 1 Gbps Ethernet testbed.
    static NetworkModel one_gbps_ethernet() { return NetworkModel{0.436e-3, 3.6e-8}; }

    /// A 10x faster network, used by ablation benches to show where the
    /// sparsification advantage shrinks.
    static NetworkModel ten_gbps_ethernet() { return NetworkModel{0.2e-3, 3.6e-9}; }

    /// Zero-cost network for pure-correctness tests (virtual time untouched).
    static NetworkModel free() { return NetworkModel{0.0, 0.0}; }
};

}  // namespace gtopk::comm
