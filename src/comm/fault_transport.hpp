// FaultInjectingTransport: a deterministic chaos decorator over any
// Transport, driven by a declarative, seeded FaultPlan.
//
// The gTop-k tree reduction assumes a lossless in-order fabric; this layer
// exists to falsify (or certify) that assumption under adversity. Per
// matched message it can drop, duplicate, delay (extra virtual-time
// latency), cross-stream reorder, or bit-corrupt the payload; it can also
// kill a rank outright after its Nth send. Faults that the mailbox's
// matching semantics mask (duplicates under fresh tags, cross-stream
// reorder, delay) must leave training bit-identical to the fault-free run;
// unmaskable faults (drop, kill) must surface as a typed CommError through
// the Communicator's receive deadline — never a hang, never silent
// divergence.
//
// Determinism: every (src, dst) edge forks its own util::Xoshiro256 stream
// from the plan seed, and an edge's state is only ever touched by the
// sending rank's thread (deliver runs on the sender). The per-edge fault
// schedule — which message ordinals get which faults — is therefore a pure
// function of (seed, plan, per-edge traffic), bit-reproducible across runs
// and independent of thread interleaving. Reordered messages are parked in
// a per-edge hold slot and released by the edge's next message (or by the
// receiver's poll), preserving per-(source, tag) FIFO — the only ordering
// the mailbox guarantees — while scrambling cross-stream order.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "comm/transport.hpp"
#include "util/rng.hpp"

namespace gtopk::obs {
class Counter;
}  // namespace gtopk::obs

namespace gtopk::comm {

/// One fault specification. A rule applies to every message whose
/// (source, dst, tag) matches — kAnySource / kAnyTag wildcard like the
/// mailbox. The FIRST matching rule in FaultPlan::rules wins; later rules
/// never stack on the same message.
struct FaultRule {
    int src = kAnySource;
    int dst = kAnySource;
    int tag = kAnyTag;

    // Probabilistic faults, each drawn independently per matched message
    // from the edge's deterministic stream.
    double drop_prob = 0.0;     // message vanishes
    double dup_prob = 0.0;      // message delivered twice
    double reorder_prob = 0.0;  // message parked, released out of order
    double corrupt_prob = 0.0;  // one random payload bit flipped
    double delay_prob = 0.0;    // arrival_time_s += extra_delay_s
    double extra_delay_s = 0.0;

    // Scheduled faults: fire on every n-th matched message of each edge
    // (1-based ordinal divisible by n), independent of the probabilities.
    std::uint64_t drop_every_n = 0;     // 0 = off
    std::uint64_t reorder_every_n = 0;  // 0 = off

    bool matches(int source, int dst_rank, int msg_tag) const {
        return (src == kAnySource || src == source) &&
               (dst == kAnySource || dst == dst_rank) &&
               (tag == kAnyTag || tag == msg_tag);
    }
};

/// Kill rank `rank` the moment it attempts its `after_sends`-th + 1 send:
/// that send and all later ones are swallowed, and the rank's next receive
/// throws CommError(RankKilled). Peers blocked on its traffic surface
/// CommError(RecvTimeout) via the Communicator deadline.
///
/// `at_progress >= 0` instead kills the rank the moment it reports that
/// application step via Transport::on_progress (trainers mark every
/// iteration boundary) — the send counter is then ignored. This places the
/// death at an exact iteration/collective boundary, which the recovery
/// tests need to pin the rollback point precisely.
struct KillSpec {
    int rank = -1;
    std::uint64_t after_sends = 0;
    std::int64_t at_progress = -1;  // -1 = send-count trigger instead
};

/// Declarative chaos scenario: a seed plus a rule list plus kill specs.
/// Same (seed, plan) => bit-identical per-edge fault schedule.
struct FaultPlan {
    std::uint64_t seed = 1;
    std::vector<FaultRule> rules;
    std::vector<KillSpec> kills;

    FaultPlan& add(FaultRule rule) {
        rules.push_back(rule);
        return *this;
    }
    FaultPlan& kill(int rank, std::uint64_t after_sends) {
        kills.push_back({rank, after_sends, -1});
        return *this;
    }
    /// Kill `rank` exactly when it reports application step `step` (the
    /// trainer's iteration boundary), not after a send count.
    FaultPlan& kill_at_step(int rank, std::int64_t step) {
        kills.push_back({rank, 0, step});
        return *this;
    }
};

/// Snapshot of fault events since construction (aggregate over all edges).
/// With a completed (non-aborted) run, these totals are deterministic for a
/// given (seed, plan); an aborted run truncates per-edge traffic at a
/// scheduling-dependent point, so only the per-edge prefix property holds.
struct FaultCounts {
    std::uint64_t delivered = 0;  // physical deliveries into the inner fabric
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t delayed = 0;
    std::uint64_t killed_sends = 0;  // sends swallowed on a killed rank

    std::uint64_t injected() const {
        return dropped + duplicated + reordered + corrupted + delayed + killed_sends;
    }
};

/// Flip `flips` uniformly random bits of `bytes` in place (no-op when
/// empty). Exposed so fuzz tests drive the exact corruption primitive the
/// transport injects.
void corrupt_bytes(std::span<std::byte> bytes, util::Xoshiro256& rng, int flips = 1);

class FaultInjectingTransport final : public Transport {
public:
    /// Decorate an existing transport (takes ownership).
    FaultInjectingTransport(std::unique_ptr<Transport> inner, FaultPlan plan);
    /// Convenience: fresh InProcTransport underneath.
    FaultInjectingTransport(int world_size, FaultPlan plan);

    int world_size() const override { return inner_->world_size(); }
    void deliver(int dst, Message msg) override;
    Message receive(int rank, int source, int tag) override;
    std::optional<Message> try_receive(int rank, int source, int tag) override;
    std::optional<Message> receive_for(int rank, int source, int tag,
                                       double timeout_s) override;
    void shutdown() override;
    void set_tracer(obs::Tracer* tracer) override;
    /// Forwarded to the inner fabric. A message parked in a reorder hold
    /// slot is still "in flight" for the wrap check's purposes, so count it.
    std::size_t pending_with_tag_at_least(int rank, int min_tag) const override;
    /// Purge stale-epoch messages parked in hold slots destined to `rank`,
    /// then forward the epoch floor to the inner fabric.
    void begin_epoch(int rank, int epoch) override;
    /// False once the plan (or kill_rank) declared `rank` dead — or the
    /// inner fabric did (a TCP peer whose reconnect budget is exhausted).
    bool rank_alive(int rank) const override {
        return !rank_killed(rank) && inner_->rank_alive(rank);
    }
    /// Fires any kill_at_step spec scheduled for (rank, step).
    void on_progress(int rank, std::int64_t step) override;
    bool shared_memory_fabric() const override {
        return inner_->shared_memory_fabric();
    }
    std::vector<int> take_reconnected(int rank) override {
        return inner_->take_reconnected(rank);
    }

    /// Manually kill a rank now (e.g. at a chosen training iteration), in
    /// addition to any plan-scheduled kills. Thread-safe.
    void kill_rank(int rank);
    bool rank_killed(int rank) const;

    const FaultPlan& plan() const { return plan_; }
    FaultCounts counts() const;
    Transport& inner() { return *inner_; }

private:
    struct Edge {
        util::Xoshiro256 rng;
        /// Matched-message ordinal per rule index (drives *_every_n).
        std::vector<std::uint64_t> rule_hits;
        Edge() : rng(0) {}
    };

    Edge& edge(int src, int dst) {
        return edges_[static_cast<std::size_t>(src) *
                          static_cast<std::size_t>(world_size()) +
                      static_cast<std::size_t>(dst)];
    }
    /// Physical delivery honoring the destination's hold slot.
    void deliver_through(int dst, Message msg);
    /// Release any message parked for `dst` into the inner transport.
    void flush_held(int dst);
    void count_event(std::atomic<std::uint64_t>& cell, obs::Counter* metric);

    std::unique_ptr<Transport> inner_;
    FaultPlan plan_;
    /// Per-(src, dst) fault state; only src's thread touches row src.
    std::vector<Edge> edges_;
    /// Reorder hold slots, one per (src, dst) edge; src's thread parks,
    /// src's next send or dst's receive poll releases — hence the lock.
    std::vector<std::optional<Message>> held_;
    mutable std::mutex held_mutex_;
    std::vector<std::atomic<bool>> killed_;
    /// Plan-scheduled kill threshold per rank (UINT64_MAX = never) and the
    /// rank's lifetime send attempts (only the rank's own thread writes).
    std::vector<std::uint64_t> kill_after_;
    std::vector<std::uint64_t> sends_attempted_;
    /// Scheduled-step kill per rank (INT64_MAX = never); fires in
    /// on_progress the moment the rank reports that step.
    std::vector<std::int64_t> kill_at_step_;

    std::atomic<std::uint64_t> delivered_{0};
    std::atomic<std::uint64_t> dropped_{0};
    std::atomic<std::uint64_t> duplicated_{0};
    std::atomic<std::uint64_t> reordered_{0};
    std::atomic<std::uint64_t> corrupted_{0};
    std::atomic<std::uint64_t> delayed_{0};
    std::atomic<std::uint64_t> killed_sends_{0};

    obs::Counter* m_dropped_ = nullptr;
    obs::Counter* m_duplicated_ = nullptr;
    obs::Counter* m_reordered_ = nullptr;
    obs::Counter* m_corrupted_ = nullptr;
    obs::Counter* m_delayed_ = nullptr;
    obs::Counter* m_killed_sends_ = nullptr;
};

}  // namespace gtopk::comm
