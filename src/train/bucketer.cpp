#include "train/bucketer.hpp"

#include <algorithm>
#include <stdexcept>

namespace gtopk::train {

std::vector<GradBucket> fuse_buckets(std::span<const std::size_t> seg_offsets,
                                     std::int64_t bucket_bytes) {
    if (seg_offsets.size() < 2) return {};
    for (std::size_t i = 1; i < seg_offsets.size(); ++i) {
        if (seg_offsets[i] < seg_offsets[i - 1]) {
            throw std::invalid_argument("fuse_buckets: offsets must ascend");
        }
    }
    const int num_segments = static_cast<int>(seg_offsets.size()) - 1;
    const std::size_t min_elems =
        bucket_bytes <= 0
            ? 0
            : (static_cast<std::size_t>(bucket_bytes) + sizeof(float) - 1) /
                  sizeof(float);

    // Walk tensors in backward (gradient-ready) order, closing a bucket as
    // soon as it reaches the fusion threshold. The LAST bucket closed (the
    // front-most one) may stay under the threshold — there is nothing left
    // to fuse it with.
    std::vector<GradBucket> buckets;
    int last = num_segments - 1;
    std::size_t accumulated = 0;
    for (int s = num_segments - 1; s >= 0; --s) {
        accumulated += seg_offsets[static_cast<std::size_t>(s) + 1] -
                       seg_offsets[static_cast<std::size_t>(s)];
        const bool close = min_elems == 0 || accumulated >= min_elems || s == 0;
        if (!close) continue;
        GradBucket b;
        b.begin = seg_offsets[static_cast<std::size_t>(s)];
        b.end = seg_offsets[static_cast<std::size_t>(last) + 1];
        b.first_segment = s;
        b.last_segment = last;
        buckets.push_back(b);
        last = s - 1;
        accumulated = 0;
    }
    // Emit in forward order; priority = forward index (front bucket first).
    std::reverse(buckets.begin(), buckets.end());
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        buckets[i].priority = static_cast<int>(i);
    }
    return buckets;
}

std::vector<double> bucket_ready_fractions(std::span<const GradBucket> buckets,
                                           std::size_t total_elems) {
    std::vector<double> ready(buckets.size(), 1.0);
    if (total_elems == 0) return ready;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        ready[i] = static_cast<double>(total_elems - buckets[i].begin) /
                   static_cast<double>(total_elems);
    }
    return ready;
}

}  // namespace gtopk::train
